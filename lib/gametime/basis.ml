module Paths = Prog.Paths
module Cfg = Prog.Cfg
module Testgen = Prog.Testgen

type basis_path = {
  path : Paths.path;
  vector : int array;
  test : (string * int) list;
}

type partial = {
  found : basis_path list;
  examined : int;
  reason : Budget.reason;
}

let rank_bound (g : Cfg.t) = Cfg.num_edges g - g.Cfg.nnodes + 2

let extract ?(max_paths = 100_000) ?assuming ?(budget = Budget.unlimited) p
    (g : Cfg.t) =
  let dim = Cfg.num_edges g in
  let span = Linalg.empty_span ~dim in
  let bound = rank_bound g in
  let meter = Budget.start budget in
  let lp =
    Obs.Loop.start "gametime"
      ~attrs:[ ("edges", Obs.Int dim); ("rank_bound", Obs.Int bound) ]
  in
  let sess = Testgen.new_session ?assuming p g in
  let acc = ref [] in
  let examined = ref 0 in
  (* a cut-short run loses basis paths, never gains wrong ones: every
     kept path is still feasibility-certified and independent *)
  let stopped = ref None in
  let take path =
    let vector = Paths.vector g path in
    if not (Linalg.in_span span vector) then begin
      (* independent direction: a candidate basis path, pending the
         feasibility oracle's verdict *)
      Obs.Loop.candidate lp ~attrs:[ ("rank", Obs.Int (Linalg.rank span)) ];
      let limits = Smt.Govern.limits_of_meter meter in
      let c0 = Testgen.session_conflicts sess in
      let q = Testgen.feasible_in ~limits sess path in
      Budget.charge_conflicts meter (Testgen.session_conflicts sess - c0);
      match q with
      | `Infeasible ->
        Obs.Loop.verdict lp "infeasible";
        Obs.Loop.counterexample lp
      | `Unknown r ->
        Obs.Loop.verdict lp "unknown";
        stopped := Some (Smt.Govern.reason_of_sat r)
      | `Test test ->
        Obs.Loop.verdict lp "feasible";
        ignore (Linalg.add_if_independent span vector);
        acc := { path; vector; test } :: !acc
    end
  in
  let rec consume seq =
    if Linalg.rank span < bound && !examined < max_paths && !stopped = None
    then begin
      match Budget.tick meter with
      | Some reason -> stopped := Some reason
      | None -> (
        match seq () with
        | Seq.Nil -> ()
        | Seq.Cons (path, rest) ->
          Obs.Loop.iteration lp !examined;
          incr examined;
          take path;
          consume rest)
    end
  in
  consume (Paths.enumerate g);
  let finish_attrs =
    [
      ("examined", Obs.Int !examined);
      ("basis", Obs.Int (List.length !acc));
      ("rank", Obs.Int (Linalg.rank span));
    ]
  in
  match !stopped with
  | None ->
    Obs.Loop.finish lp ~attrs:finish_attrs;
    Budget.Converged (List.rev !acc)
  | Some reason ->
    Obs.Loop.budget_exhausted lp
      ~reason:(Budget.reason_to_string reason)
      ~attrs:[ ("examined", Obs.Int !examined) ];
    Obs.Loop.finish lp
      ~attrs:(("outcome", Obs.String "exhausted") :: finish_attrs);
    Budget.Exhausted { found = List.rev !acc; examined = !examined; reason }
