module Paths = Prog.Paths
module Cfg = Prog.Cfg
module Testgen = Prog.Testgen

type basis_path = {
  path : Paths.path;
  vector : int array;
  test : (string * int) list;
}

let rank_bound (g : Cfg.t) = Cfg.num_edges g - g.Cfg.nnodes + 2

let extract ?(max_paths = 100_000) ?assuming p (g : Cfg.t) =
  let dim = Cfg.num_edges g in
  let span = Linalg.empty_span ~dim in
  let bound = rank_bound g in
  let lp =
    Obs.Loop.start "gametime"
      ~attrs:[ ("edges", Obs.Int dim); ("rank_bound", Obs.Int bound) ]
  in
  let sess = Testgen.new_session ?assuming p g in
  let acc = ref [] in
  let examined = ref 0 in
  let take path =
    let vector = Paths.vector g path in
    if not (Linalg.in_span span vector) then begin
      (* independent direction: a candidate basis path, pending the
         feasibility oracle's verdict *)
      Obs.Loop.candidate lp ~attrs:[ ("rank", Obs.Int (Linalg.rank span)) ];
      match Testgen.feasible_in sess path with
      | None ->
        Obs.Loop.verdict lp "infeasible";
        Obs.Loop.counterexample lp
      | Some test ->
        Obs.Loop.verdict lp "feasible";
        ignore (Linalg.add_if_independent span vector);
        acc := { path; vector; test } :: !acc
    end
  in
  let rec consume seq =
    if Linalg.rank span < bound && !examined < max_paths then begin
      match seq () with
      | Seq.Nil -> ()
      | Seq.Cons (path, rest) ->
        Obs.Loop.iteration lp !examined;
        incr examined;
        take path;
        consume rest
    end
  in
  consume (Paths.enumerate g);
  Obs.Loop.finish lp
    ~attrs:
      [
        ("examined", Obs.Int !examined);
        ("basis", Obs.Int (List.length !acc));
        ("rank", Obs.Int (Linalg.rank span));
      ];
  List.rev !acc
