(** The inductive inference engine of GameTime.

    Learns the (w, pi) timing model from end-to-end measurements: basis
    paths are executed in a uniformly random order over a number of
    trials (the game-theoretic online setting of Seshia–Rakhlin), and the
    per-basis-path mean execution time is the learned estimate of that
    path's length under the weight-plus-perturbation model. *)

type model = {
  basis : Basis.basis_path list;
  means : float array;  (** mean measured cycles per basis path *)
  samples : int array;  (** measurements taken per basis path *)
}

val learn :
  ?trials:int ->
  ?seed:int ->
  ?pool:Par.Pool.t ->
  platform:((string * int) list -> int) ->
  Basis.basis_path list ->
  model
(** [learn ~platform basis] runs [trials] end-to-end measurements
    (default: 10 per basis path), choosing which basis path to execute
    uniformly at random each trial. The random schedule is drawn up
    front from [seed], so with [?pool] the measurements fan out across
    domains and — provided [platform] is a pure function of the test
    case, as the simulated platforms here are — the learned model is
    identical to a sequential run. *)

val predict : model -> int array -> float option
(** Predicted execution time of a path given by its edge vector: express
    the vector in the basis and combine the learned lengths linearly.
    [None] if the vector is outside the span of the basis. *)
