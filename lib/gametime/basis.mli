(** Feasible basis path extraction (Fig. 5 of the paper, second box).

    Enumerates structural paths of the unrolled CFG and greedily keeps
    those that are (a) linearly independent of the paths kept so far and
    (b) feasible, as certified by the SMT-based deductive engine, which
    also produces the test case driving each kept path. The greedy rule
    over the linear matroid yields a maximal independent subset of the
    feasible path vectors. *)

type basis_path = {
  path : Prog.Paths.path;
  vector : int array;
  test : (string * int) list;  (** input valuation driving this path *)
}

(** What an exhausted extraction still holds: every path in [found] is
    feasibility-certified with a driving test case and the set is
    linearly independent — it just may not span the full rank bound. *)
type partial = {
  found : basis_path list;
  examined : int;
  reason : Budget.reason;
}

val extract :
  ?max_paths:int ->
  ?assuming:Smt.Bv.formula ->
  ?budget:Budget.t ->
  Prog.Lang.t ->
  Prog.Cfg.t ->
  (basis_path list, partial) Budget.outcome
(** [extract unrolled cfg] returns the feasible basis paths. [max_paths]
    bounds the structural paths examined (default 100_000); extraction
    also stops early once the rank bound [m - n + 2] is reached. The
    program must be the unrolled one the CFG was built from. [assuming]
    constrains the generated test cases (see {!Prog.Testgen.feasible}).

    [?budget] (default unlimited) meters the loop: iterations count
    examined structural paths, the conflict pool is drained by the
    feasibility queries, and a query abandoned mid-extraction stops it.
    [max_paths] running out still counts as convergence (it is the
    algorithm's own enumeration cap, not a resource budget). *)

val rank_bound : Prog.Cfg.t -> int
(** The dimension bound [m - n + 2] on the path-vector space. *)
