module Lang = Prog.Lang
module Cfg = Prog.Cfg
module Paths = Prog.Paths
module Testgen = Prog.Testgen
module Unroll = Prog.Unroll

type t = {
  program : Lang.t;
  unrolled : Lang.t;
  cfg : Cfg.t;
  basis : Basis.basis_path list;
  model : Learner.model;
  pin : (string * int) list;
}

let pin_formula (program : Lang.t) pin =
  let width = program.Lang.width in
  Smt.Bv.conj
    (List.map
       (fun (x, v) -> Smt.Bv.eq (Smt.Bv.var ~width x) (Smt.Bv.const ~width v))
       pin)

type partial = {
  analysis : t option;
  reason : Budget.reason;
}

let analyze ?(bound = 8) ?trials ?seed ?(pin = []) ?pool
    ?(budget = Budget.unlimited) ~platform program =
  Obs.with_span "gametime.analyze" ~attrs:[ ("bound", Obs.Int bound) ]
  @@ fun () ->
  let unrolled = Unroll.unroll ~bound program in
  let cfg = Cfg.of_program unrolled in
  let mk basis =
    let model =
      Obs.with_span "gametime.learn" (fun () ->
          Learner.learn ?trials ?seed ?pool ~platform basis)
    in
    { program; unrolled; cfg; basis; model; pin }
  in
  match
    Obs.with_span "gametime.basis" (fun () ->
        Basis.extract ~assuming:(pin_formula program pin) ~budget unrolled cfg)
  with
  | Budget.Converged basis -> Budget.Converged (mk basis)
  | Budget.Exhausted p ->
    (* a truncated basis still supports a (weaker) timing model; with no
       feasible path at all there is nothing to measure *)
    Budget.Exhausted
      {
        analysis =
          (match p.Basis.found with [] -> None | basis -> Some (mk basis));
        reason = p.Basis.reason;
      }

let predict_path t path = Learner.predict t.model (Paths.vector t.cfg path)

let feasible_paths t =
  Obs.with_span "gametime.feasible_paths" @@ fun () ->
  let assuming = pin_formula t.program t.pin in
  let sess = Testgen.new_session ~assuming t.unrolled t.cfg in
  Paths.enumerate t.cfg
  |> Seq.filter_map (fun path ->
         match Testgen.feasible_in sess path with
         | `Test test -> Some (path, test)
         (* Unknown (possible only under injected faults here — these
            queries are unbudgeted) conservatively drops the path *)
         | `Infeasible | `Unknown _ -> None)
  |> List.of_seq

let predictions t =
  List.filter_map
    (fun (path, test) ->
      Option.map (fun cy -> (path, test, cy)) (predict_path t path))
    (feasible_paths t)

let refine_with_spanner ?trials ?seed ?c ?pool ~platform t =
  let basis = Spanner.barycentric ?c t.basis ~candidates:(feasible_paths t) t.cfg in
  let model = Learner.learn ?trials ?seed ?pool ~platform basis in
  { t with basis; model }

type wcet = {
  predicted_cycles : float;
  test : (string * int) list;
  measured_cycles : int;
}

let wcet_opt t ~platform =
  match predictions t with
  | [] -> None
  | first :: rest ->
    let _, test, predicted_cycles =
      List.fold_left
        (fun ((_, _, best) as acc) ((_, _, cy) as cand) ->
          if cy > best then cand else acc)
        first rest
    in
    Some { predicted_cycles; test; measured_cycles = platform test }

let wcet t ~platform =
  match wcet_opt t ~platform with
  | None -> invalid_arg "Gametime.wcet: no feasible paths"
  | Some w -> w

let answer_ta t ~platform ~tau =
  let w = wcet t ~platform in
  if w.measured_cycles <= tau then `Yes else `No w.test

type hypothesis_quality = {
  mu_hat : float;
  rho_hat : float;
  margin_ok : bool;
  paths_checked : int;
}

let hypothesis_quality t ~platform =
  let rows =
    List.filter_map
      (fun (path, test) ->
        Option.map
          (fun pred -> (pred, float_of_int (platform test)))
          (predict_path t path))
      (feasible_paths t)
  in
  let mu_hat =
    List.fold_left (fun m (p, meas) -> max m (abs_float (p -. meas))) 0.0 rows
  in
  let rho_hat =
    match List.sort (fun (a, _) (b, _) -> compare b a) rows with
    | (top, _) :: (second, _) :: _ -> top -. second
    | _ -> infinity
  in
  {
    mu_hat;
    rho_hat;
    margin_ok = rho_hat > mu_hat;
    paths_checked = List.length rows;
  }

type distribution = (int * int) list

let histogram values =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Hashtbl.replace tbl v (1 + Option.value (Hashtbl.find_opt tbl v) ~default:0))
    values;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let predicted_distribution t =
  histogram
    (List.map
       (fun (_, _, cy) -> int_of_float (Float.round cy))
       (predictions t))

let measured_distribution t ~platform =
  histogram (List.map (fun (_, test) -> platform test) (feasible_paths t))
