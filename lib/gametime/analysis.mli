(** End-to-end GameTime driver (Section 3 of the paper).

    Pipeline of Fig. 5: unroll the program, build the CFG, extract
    feasible basis paths with SMT-generated test cases, measure them
    end-to-end on the platform under the game-theoretic learner, and use
    the learned model to predict per-path timing, the full execution-time
    distribution, and the worst case. *)

type t = {
  program : Prog.Lang.t;  (** original program *)
  unrolled : Prog.Lang.t;
  cfg : Prog.Cfg.t;
  basis : Basis.basis_path list;
  model : Learner.model;
  pin : (string * int) list;  (** inputs held fixed during analysis *)
}

(** What an exhausted analysis still holds: a driver over the truncated
    basis — its predictions are genuine measurements over genuinely
    feasible paths, but the basis may not span the path space, so
    predictions can be unavailable ([predict_path] = [None]) for more
    paths than usual. [None] when not even one basis path was found. *)
type partial = {
  analysis : t option;
  reason : Budget.reason;
}

val analyze :
  ?bound:int ->
  ?trials:int ->
  ?seed:int ->
  ?pin:(string * int) list ->
  ?pool:Par.Pool.t ->
  ?budget:Budget.t ->
  platform:((string * int) list -> int) ->
  Prog.Lang.t ->
  (t, partial) Budget.outcome
(** [bound] is the loop-unrolling bound (default 8). [pin] fixes some
    inputs to constants in every generated test case: problem <TA> is
    posed for a fixed starting environment state, and pinning the
    non-path-relevant inputs (e.g. the modexp base) fixes the data state
    the same way the paper's Fig. 6 experiment does. [pool] is
    forwarded to {!Learner.learn} for the measurement fan-out.

    [?budget] (default unlimited) meters basis extraction (see
    {!Basis.extract}); platform measurement of whatever basis was found
    is never cut short, so an [Exhausted] partial's model is still
    internally consistent. *)

val predict_path : t -> Prog.Paths.path -> float option

val refine_with_spanner :
  ?trials:int ->
  ?seed:int ->
  ?c:float ->
  ?pool:Par.Pool.t ->
  platform:((string * int) list -> int) ->
  t ->
  t
(** Replace the greedy basis with a [c]-approximate barycentric spanner
    of the feasible path set (Seshia–Rakhlin's basis choice) and relearn
    the timing model. Enumerates all feasible paths — use on kernels
    where that is tractable. *)

val feasible_paths : t -> (Prog.Paths.path * (string * int) list) list
(** Every feasible path with a driving test case. Exponential in program
    branching; intended for evaluation on small kernels as in Fig. 6. *)

type wcet = {
  predicted_cycles : float;
  test : (string * int) list;
  measured_cycles : int;  (** the prediction's test case, re-measured *)
}

val wcet_opt : t -> platform:((string * int) list -> int) -> wcet option
(** Predict the longest path, then execute its test case (the final step
    of GameTime's answer to problem <TA>). [None] when no feasible path
    has a prediction (e.g. a truncated basis from an exhausted
    {!analyze}). *)

val wcet : t -> platform:((string * int) list -> int) -> wcet
(** Like {!wcet_opt} but raises [Invalid_argument] when no prediction
    exists. *)

val answer_ta :
  t -> platform:((string * int) list -> int) -> tau:int ->
  [ `Yes | `No of (string * int) list ]
(** Problem <TA>: is the execution time always at most [tau]? A [`No]
    answer carries the witness test case. *)

(** Empirical quality of the (w, pi) structure hypothesis (Section 3.2):
    [mu_hat] estimates the perturbation bound mu_max as the largest
    |measured - predicted| over the feasible paths; [rho_hat] estimates
    the margin rho by which the predicted worst-case path leads the
    runner-up. The probabilistic soundness of Section 3.3 needs small mu
    relative to rho; [margin_ok] is the heuristic check
    [rho_hat > mu_hat] — with a larger perturbation the top-2 ordering
    is in doubt. *)
type hypothesis_quality = {
  mu_hat : float;
  rho_hat : float;
  margin_ok : bool;
  paths_checked : int;
}

val hypothesis_quality :
  t -> platform:((string * int) list -> int) -> hypothesis_quality
(** Measures every feasible path once — exponential in branching, like
    {!feasible_paths}. *)

type distribution = (int * int) list
(** Histogram: (cycle count, number of paths). *)

val predicted_distribution : t -> distribution
val measured_distribution :
  t -> platform:((string * int) list -> int) -> distribution
