type model = {
  basis : Basis.basis_path list;
  means : float array;
  samples : int array;
}

let learn ?trials ?(seed = 0x5EED) ?pool ~platform basis =
  let k = List.length basis in
  if k = 0 then invalid_arg "Learner.learn: empty basis";
  let trials = Option.value trials ~default:(10 * k) in
  let rng = Random.State.make [| seed |] in
  let basis_arr = Array.of_list basis in
  (* draw the whole random path schedule up front so it depends only on
     [seed], then measure; a pool fans the measurements out and the fold
     below recovers the exact sequential sums *)
  let schedule = Array.make trials 0 in
  for j = 0 to trials - 1 do
    schedule.(j) <- Random.State.int rng k
  done;
  let measure i = platform basis_arr.(i).Basis.test in
  let times =
    match pool with
    | Some pool when Par.Pool.jobs pool > 1 -> Par.map pool measure schedule
    | _ -> Array.map measure schedule
  in
  let sums = Array.make k 0.0 in
  let samples = Array.make k 0 in
  Array.iteri
    (fun j i ->
      sums.(i) <- sums.(i) +. float_of_int times.(j);
      samples.(i) <- samples.(i) + 1)
    schedule;
  (* uniform random choice can starve a path on small trial counts; take
     one deterministic measurement for any path never sampled *)
  Array.iteri
    (fun i n ->
      if n = 0 then begin
        sums.(i) <- float_of_int (measure i);
        samples.(i) <- 1
      end)
    samples;
  let means = Array.mapi (fun i s -> s /. float_of_int samples.(i)) sums in
  { basis; means; samples }

let predict m vector =
  let vectors = List.map (fun b -> b.Basis.vector) m.basis in
  match Linalg.solve vectors vector with
  | None -> None
  | Some coeffs -> Some (Linalg.dot_float coeffs m.means)
