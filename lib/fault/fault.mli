(** Deterministic seeded fault injection.

    Sciduction loops must stay sound when the deductive engine fails
    under them: a solver call answering Unknown, a pool submission whose
    worker dies, a domain that refuses to spawn. This module gives the
    libraries cheap probability-per-site hooks ({!fire}) that are
    compiled in everywhere but dormant by default — activation is always
    explicit ({!activate} / {!activate_from_env}), so production runs and
    the plain unit suite pay one atomic load per site and see no
    injected faults.

    Determinism: each site keeps its own atomic draw counter, and a draw
    is a pure hash of [(seed, site, counter)]. For a fixed seed, the
    k-th draw at a site fires or not independently of wall clock,
    scheduling, or the other sites — a sequential replay of the same
    query sequence injects the same faults. (Across racing domains the
    {e assignment} of draws to callers can vary; the draw sequence
    itself cannot.) *)

type site =
  | Solver_call  (** a [Sat] solve boundary: fault = spurious Unknown *)
  | Pool_submit
      (** a [Par] pool submission: fault = the worker "dies" before
          running the job; the submitter recovers at [await] *)
  | Domain_spawn
      (** [Domain.spawn] during pool creation: fault = spawn failure *)
  | Serve_job
      (** a verification-server job about to run: fault = the job dies
          before producing a verdict; the server answers its client with
          a typed error while other in-flight jobs proceed *)
  | Serve_reader
      (** a server per-connection reader mid-frame: fault = the reader
          thread dies; the daemon drops that client only *)
  | Serve_dispatch
      (** a server dispatcher that has just claimed a job: fault = the
          dispatcher thread dies mid-dispatch; the supervisor requeues
          the victim's job and re-arms the slot *)
  | Journal_write
      (** a job-journal append: fault = the write-ahead log write fails;
          the daemon refuses the submission with a typed error *)

val site_to_string : site -> string

val site_of_string : string -> site option
(** Inverse of {!site_to_string}; [None] for unknown names. *)

val all_sites : site list

exception Injected
(** The failure injected at [Pool_submit]/[Domain_spawn] (and the new
    server-side) sites. *)

val activate : ?probability:float -> ?sites:site list -> seed:int -> unit -> unit
(** Arm the injector. [probability] (default 0.05) is the per-draw fire
    probability at every armed site, clamped to [0..1]. [sites] (default
    all) restricts injection to the listed sites — draws at masked-out
    sites return [false] without consuming a draw index, so the armed
    sites' sequences are unchanged by the mask. Re-activating resets the
    draw counters. *)

val deactivate : unit -> unit
val active : unit -> bool
val seed : unit -> int option

val fire : site -> bool
(** One draw at [site]: [true] if a fault should be injected here. Never
    fires when dormant. *)

val injected : site -> int
(** How many draws at [site] have fired since the last {!activate}. *)

val parse_spec : string -> (int * float option, string) result
(** Parse a ["SEED"] or ["SEED:PROB"] spec (as taken by [--fault] and
    [SCIDUCTION_FAULT_SEED]). *)

val parse_sites : string -> (site list, string) result
(** Parse a comma-separated fault-site list (as taken by [--fault-sites]
    and [SCIDUCTION_FAULT_SITES]). *)

val activate_from_env : unit -> bool
(** Arm from [SCIDUCTION_FAULT_SEED] if set and well-formed (site filter
    from [SCIDUCTION_FAULT_SITES]); returns whether activation happened.
    A malformed spec is ignored. *)
