type site =
  | Solver_call
  | Pool_submit
  | Domain_spawn
  | Serve_job

let site_to_string = function
  | Solver_call -> "solver_call"
  | Pool_submit -> "pool_submit"
  | Domain_spawn -> "domain_spawn"
  | Serve_job -> "serve_job"

let site_index = function
  | Solver_call -> 0
  | Pool_submit -> 1
  | Domain_spawn -> 2
  | Serve_job -> 3

exception Injected

type config = {
  c_seed : int;
  threshold : int; (* fire when draw land below this, out of 2^30 *)
}

let state : config option Atomic.t = Atomic.make None
let draws = Array.init 4 (fun _ -> Atomic.make 0)
let fired = Array.init 4 (fun _ -> Atomic.make 0)

let scale = 1 lsl 30

let activate ?(probability = 0.05) ~seed () =
  let p = if probability < 0. then 0. else if probability > 1. then 1. else probability in
  Array.iter (fun a -> Atomic.set a 0) draws;
  Array.iter (fun a -> Atomic.set a 0) fired;
  Atomic.set state
    (Some { c_seed = seed; threshold = int_of_float (p *. float_of_int scale) })

let deactivate () = Atomic.set state None
let active () = Atomic.get state <> None
let seed () = Option.map (fun c -> c.c_seed) (Atomic.get state)

(* splitmix64-style avalanche over (seed, site, draw index); pure, so a
   given seed fixes the full fire/no-fire sequence at each site *)
let hash seed site k =
  let z = ref (seed lxor (site * 0x9E3779B9) lxor (k * 0x85EBCA6B)) in
  z := (!z lxor (!z lsr 30)) * 0x4F58476D1CE4E5B9;
  z := (!z lxor (!z lsr 27)) * 0x14D049BB133111EB;
  !z lxor (!z lsr 31)

let fire site =
  match Atomic.get state with
  | None -> false
  | Some c ->
    let i = site_index site in
    let k = Atomic.fetch_and_add draws.(i) 1 in
    let hit = hash c.c_seed i k land (scale - 1) < c.threshold in
    if hit then ignore (Atomic.fetch_and_add fired.(i) 1);
    hit

let injected site = Atomic.get fired.(site_index site)

let parse_spec spec =
  let bad () = Error (Printf.sprintf "bad fault spec %S (want SEED or SEED:PROB)" spec) in
  match String.index_opt spec ':' with
  | None -> (
    match int_of_string_opt (String.trim spec) with
    | Some s -> Ok (s, None)
    | None -> bad ())
  | Some i -> (
    let s = String.sub spec 0 i in
    let p = String.sub spec (i + 1) (String.length spec - i - 1) in
    match (int_of_string_opt (String.trim s), float_of_string_opt (String.trim p)) with
    | Some s, Some p when p >= 0. && p <= 1. -> Ok (s, Some p)
    | _ -> bad ())

let activate_from_env () =
  match Sys.getenv_opt "SCIDUCTION_FAULT_SEED" with
  | None | Some "" -> false
  | Some spec -> (
    match parse_spec spec with
    | Ok (seed, prob) ->
      activate ?probability:prob ~seed ();
      true
    | Error _ -> false)
