type site =
  | Solver_call
  | Pool_submit
  | Domain_spawn
  | Serve_job
  | Serve_reader
  | Serve_dispatch
  | Journal_write

let site_to_string = function
  | Solver_call -> "solver_call"
  | Pool_submit -> "pool_submit"
  | Domain_spawn -> "domain_spawn"
  | Serve_job -> "serve_job"
  | Serve_reader -> "serve_reader"
  | Serve_dispatch -> "serve_dispatch"
  | Journal_write -> "journal_write"

let site_index = function
  | Solver_call -> 0
  | Pool_submit -> 1
  | Domain_spawn -> 2
  | Serve_job -> 3
  | Serve_reader -> 4
  | Serve_dispatch -> 5
  | Journal_write -> 6

let all_sites =
  [ Solver_call; Pool_submit; Domain_spawn; Serve_job; Serve_reader;
    Serve_dispatch; Journal_write ]

let n_sites = List.length all_sites

let site_of_string s =
  List.find_opt (fun x -> site_to_string x = s) all_sites

exception Injected

type config = {
  c_seed : int;
  threshold : int; (* fire when draw land below this, out of 2^30 *)
  mask : int; (* bit per site_index: only masked-in sites ever fire *)
}

let state : config option Atomic.t = Atomic.make None
let draws = Array.init n_sites (fun _ -> Atomic.make 0)
let fired = Array.init n_sites (fun _ -> Atomic.make 0)

let scale = 1 lsl 30
let full_mask = (1 lsl n_sites) - 1

let activate ?(probability = 0.05) ?sites ~seed () =
  let p = if probability < 0. then 0. else if probability > 1. then 1. else probability in
  let mask =
    match sites with
    | None -> full_mask
    | Some l -> List.fold_left (fun m s -> m lor (1 lsl site_index s)) 0 l
  in
  Array.iter (fun a -> Atomic.set a 0) draws;
  Array.iter (fun a -> Atomic.set a 0) fired;
  Atomic.set state
    (Some { c_seed = seed; threshold = int_of_float (p *. float_of_int scale); mask })

let deactivate () = Atomic.set state None
let active () = Atomic.get state <> None
let seed () = Option.map (fun c -> c.c_seed) (Atomic.get state)

(* splitmix64-style avalanche over (seed, site, draw index); pure, so a
   given seed fixes the full fire/no-fire sequence at each site *)
let hash seed site k =
  let z = ref (seed lxor (site * 0x9E3779B9) lxor (k * 0x85EBCA6B)) in
  z := (!z lxor (!z lsr 30)) * 0x4F58476D1CE4E5B9;
  z := (!z lxor (!z lsr 27)) * 0x14D049BB133111EB;
  !z lxor (!z lsr 31)

let fire site =
  match Atomic.get state with
  | None -> false
  | Some c ->
    let i = site_index site in
    if c.mask land (1 lsl i) = 0 then false
    else begin
      let k = Atomic.fetch_and_add draws.(i) 1 in
      let hit = hash c.c_seed i k land (scale - 1) < c.threshold in
      if hit then ignore (Atomic.fetch_and_add fired.(i) 1);
      hit
    end

let injected site = Atomic.get fired.(site_index site)

let parse_spec spec =
  let bad () = Error (Printf.sprintf "bad fault spec %S (want SEED or SEED:PROB)" spec) in
  match String.index_opt spec ':' with
  | None -> (
    match int_of_string_opt (String.trim spec) with
    | Some s -> Ok (s, None)
    | None -> bad ())
  | Some i -> (
    let s = String.sub spec 0 i in
    let p = String.sub spec (i + 1) (String.length spec - i - 1) in
    match (int_of_string_opt (String.trim s), float_of_string_opt (String.trim p)) with
    | Some s, Some p when p >= 0. && p <= 1. -> Ok (s, Some p)
    | _ -> bad ())

let parse_sites spec =
  let names = String.split_on_char ',' spec in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      let n = String.trim n in
      if n = "" then go acc rest
      else
        match site_of_string n with
        | Some s -> go (s :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown fault site %S (one of %s)" n
               (String.concat ", " (List.map site_to_string all_sites))))
  in
  match go [] names with
  | Ok [] -> Error "empty fault site list"
  | r -> r

let activate_from_env () =
  match Sys.getenv_opt "SCIDUCTION_FAULT_SEED" with
  | None | Some "" -> false
  | Some spec -> (
    match parse_spec spec with
    | Ok (seed, prob) ->
      let sites =
        match Sys.getenv_opt "SCIDUCTION_FAULT_SITES" with
        | None | Some "" -> None
        | Some s -> ( match parse_sites s with Ok l -> Some l | Error _ -> None)
      in
      activate ?probability:prob ?sites ~seed ();
      true
    | Error _ -> false)
