(* Content-addressed LRU result cache.

   Keys are digests of the job's canonical content (Jobs.key), values
   are the verdict the client would have received. Only deterministic,
   budget-independent results are stored — the daemon never caches an
   EXHAUSTED partial, so a hit can be replayed under any budget without
   changing the answer. The table is small (hundreds of entries) and the
   eviction scan is O(capacity), which is noise next to a single solver
   call; recency is a monotone stamp, not a linked list. *)

type entry = { verdict : string; code : int; mutable stamp : int }

type t = {
  lock : Mutex.t;
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
}

let m_hits = Obs.Metrics.counter "server.cache_hits"
let m_misses = Obs.Metrics.counter "server.cache_misses"

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { lock = Mutex.create (); capacity; tbl = Hashtbl.create 64; tick = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.tick <- t.tick + 1;
        e.stamp <- t.tick;
        Obs.Metrics.incr m_hits;
        Some (e.verdict, e.code)
      | None ->
        Obs.Metrics.incr m_misses;
        None)

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let store t key ~verdict ~code =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e -> e.stamp <- t.tick (* same content => same verdict *)
      | None ->
        if Hashtbl.length t.tbl >= t.capacity then evict_oldest t;
        Hashtbl.replace t.tbl key { verdict; code; stamp = t.tick })

let size t = locked t (fun () -> Hashtbl.length t.tbl)
let hits () = Obs.Metrics.counter_value m_hits
let misses () = Obs.Metrics.counter_value m_misses
