(** The long-lived verification server.

    Listens on a Unix-domain socket, speaks the JSONL {!Protocol},
    multiplexes named jobs onto the {!Par} domain pool under per-job
    {!Budget} quotas, and reuses work across requests through the
    content-addressed result {!Cache} and the {!Warm} session store.
    Scheduling is FIFO with aging (effective priority
    [priority - age/aging_s], lowest first); cancellation — explicit
    [cancel], client disconnect, or shutdown — is cooperative through
    [Par.Cancel] tokens installed as each job's budget cancel hook, so
    even an in-flight solver call stops within a poll interval.

    {2 Durability}

    With [?journal], every accepted submission is written to the
    {!Journal} write-ahead log and fsync'd {e before} its ack; terminal
    answers append [done]/[cancelled] records. {!start} replays the log
    after a crash: cacheable verdicts repopulate the {!Cache}, and jobs
    that were acked but never finished are re-enqueued as ownerless
    work — their verdicts land in the cache, so a client that
    reconnects and resubmits the same spec is answered from it. A
    [kill -9] therefore loses no acked work and no cached verdict.

    {2 Overload and degradation}

    Admission is bounded by [?queue_limit] (the high watermark; the low
    watermark is half). At the high watermark submissions are shed with
    a typed [overloaded] error carrying [retry_after_s]. Shedding that
    persists past [?degrade_after_s], or dispatchers dying faster than
    one restart budget per death window, flips the daemon into degraded
    mode: cache hits and warm-family BMC jobs are still served, all
    other fresh work is shed. Degraded mode exits when the queue drains
    to the low watermark and dispatcher deaths have quieted. Sheds
    count on [server.shed_total] (Prometheus
    [sciduction_server_shed_total]); the mode is the [server.degraded]
    gauge and both appear in the [stats] reply.

    {2 Supervision}

    Each dispatcher runs under a supervisor that detects its death
    (real, or injected via the [Serve_dispatch] fault site), requeues
    the victim's job — at most [?restart_budget] times per job, then a
    typed [internal_error] to that client only — and re-arms the slot
    with a fresh thread, emitting [job_requeued] trace events. A reader
    death ([Serve_reader]) drops exactly that client; a journal-append
    death ([Journal_write]) refuses exactly that submission. One
    poisoned job can never wedge the daemon.

    Registry series (scraped via [--stats-socket]):
    [server.requests{,_done,_cancelled,_faulted}] counters,
    [server.request_ms] latency histogram (exported to Prometheus as
    [sciduction_request_seconds]), [server.requests_inflight] and
    [server.queue_depth] gauges, [server.shed_total],
    [server.jobs_requeued], [server.jobs_given_up],
    [server.dispatcher_restarts], [server.reader_crashes],
    [server.degraded], the [server.journal_*] series, plus the cache
    and warm-store hit/miss/eviction counters. *)

type t

val start :
  ?pool:Par.Pool.t ->
  ?dispatchers:int ->
  ?cache_capacity:int ->
  ?aging_s:float ->
  ?journal:string ->
  ?queue_limit:int ->
  ?retry_after_s:float ->
  ?degrade_after_s:float ->
  ?restart_budget:int ->
  ?warm_capacity:int ->
  socket:string ->
  unit ->
  (t, string) result
(** Bind, listen and serve in background threads. With [?pool], each of
    the [?dispatchers] (default: the pool's job count, else 1) executes
    its job as one pool task, so whole jobs run on distinct domains;
    the loops inside a job stay sequential, which keeps served verdicts
    bit-identical to one-shot CLI runs.

    [?journal] enables the write-ahead log at that path (replayed and
    compacted on startup; its [.lock] sibling serializes daemons).
    [?queue_limit] (default 64) is the admission high watermark;
    [?retry_after_s] (default 0.5) is the back-off hint shed clients
    receive; [?degrade_after_s] (default 1.0) is the sustained-overload
    window before degraded mode; [?restart_budget] (default 2) is the
    per-job dispatcher-death allowance; [?warm_capacity] bounds the
    warm-session store (default {!Warm.default_capacity}).

    A stale socket file is detected by a connect probe and replaced; a
    live daemon on the path, a non-socket file at the path, or a locked
    journal is an [Error], as is a bind/listen failure. *)

val wait : t -> unit
(** Block until shutdown is requested (by a [shutdown] request,
    {!request_shutdown}, or {!stop}). *)

val request_shutdown : t -> unit
(** Begin shutdown: refuse new submissions, set every in-flight job's
    cancel token, wake {!wait}. Idempotent, async-signal-safe enough to
    call from a signal handler. *)

val stop : t -> unit
(** Full teardown: request shutdown, join the acceptor, supervisor and
    dispatchers (in-flight jobs answer [cancelled] quickly via their
    tokens), answer still-queued jobs with [shutting_down], disconnect
    clients, join readers, close everything — including the journal and
    its lock file — and unlink the socket. Idempotent. *)
