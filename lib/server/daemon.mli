(** The long-lived verification server.

    Listens on a Unix-domain socket, speaks the JSONL {!Protocol},
    multiplexes named jobs onto the {!Par} domain pool under per-job
    {!Budget} quotas, and reuses work across requests through the
    content-addressed result {!Cache} and the {!Warm} session store.
    Scheduling is FIFO with aging (effective priority
    [priority - age/aging_s], lowest first); cancellation — explicit
    [cancel], client disconnect, or shutdown — is cooperative through
    [Par.Cancel] tokens installed as each job's budget cancel hook, so
    even an in-flight solver call stops within a poll interval.

    Registry series (scraped via [--stats-socket]):
    [server.requests{,_done,_cancelled,_faulted}] counters,
    [server.request_ms] latency histogram (exported to Prometheus as
    [sciduction_request_seconds]), [server.requests_inflight] (exported
    as [sciduction_requests_inflight]) and [server.queue_depth] gauges,
    plus the cache and warm-store hit/miss counters. *)

type t

val start :
  ?pool:Par.Pool.t ->
  ?dispatchers:int ->
  ?cache_capacity:int ->
  ?aging_s:float ->
  socket:string ->
  unit ->
  (t, string) result
(** Bind, listen and serve in background threads. With [?pool], each of
    the [?dispatchers] (default: the pool's job count, else 1) executes
    its job as one pool task, so whole jobs run on distinct domains;
    the loops inside a job stay sequential, which keeps served verdicts
    bit-identical to one-shot CLI runs. A stale socket file is
    replaced; the path is registered for SIGTERM cleanup. [Error] is a
    bind/listen failure. *)

val wait : t -> unit
(** Block until shutdown is requested (by a [shutdown] request,
    {!request_shutdown}, or {!stop}). *)

val request_shutdown : t -> unit
(** Begin shutdown: refuse new submissions, set every in-flight job's
    cancel token, wake {!wait}. Idempotent, async-signal-safe enough to
    call from a signal handler. *)

val stop : t -> unit
(** Full teardown: request shutdown, join the acceptor and dispatchers
    (in-flight jobs answer [cancelled] quickly via their tokens),
    answer still-queued jobs with [shutting_down], disconnect clients,
    join readers, close everything and unlink the socket. Idempotent. *)
