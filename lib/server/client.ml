(* Client side of the JSONL protocol: one connection per call, a
   request line out, responses read back until the call's terminal
   answer. Used by the CLI's submit/cancel/shutdown subcommands, by the
   --server routing of the loop subcommands, and by the tests.

   Submissions retry. A daemon restart shows up here as ECONNREFUSED /
   ECONNRESET / EPIPE / EOF-before-terminal; admission control shows up
   as a typed [overloaded {retry_after_s}]. Both are transient, so
   [submit] reconnects under jittered exponential backoff (honoring
   [retry_after_s] when the server named a wait). The jitter is a pure
   hash of the attempt index — no wall clock, no Random — and the sleep
   is a caller-replaceable hook, so a test (or a --fault replay) that
   pins [sleep] observes the exact same delay sequence every run.

   [duplicate_id] during a retry is also transient: it means our
   previous attempt's job is still live on the server (the dead
   connection's cancel is in flight, or a journal replay resurrected
   it) — backing off and resubmitting converges to that job's cached
   verdict. [internal_error] is transient too (journal write faults,
   dispatcher give-up): bounded retries either land after the hiccup or
   surface the error. All other typed errors are the caller's. *)

module P = Protocol

let m_retries = Obs.Metrics.counter "client.retries"
let m_reconnects = Obs.Metrics.counter "client.reconnects"

type failure = {
  fcode : string;
  fmessage : string;
  fretry_after_s : float option;
}

type outcome = { verdict : string; code : int; cached : bool; ms : float }

type retry = {
  attempts : int;
  base_s : float;
  cap_s : float;
  sleep : float -> unit;
}

let default_retry =
  { attempts = 5; base_s = 0.05; cap_s = 2.0; sleep = Thread.delay }

let no_retry = { default_retry with attempts = 1 }

(* splitmix64-style avalanche, as in Fault: deterministic jitter *)
let jitter_hash k =
  let z = ref (k lxor 0x9E3779B9) in
  z := (!z lxor (!z lsr 30)) * 0x4F58476D1CE4E5B9;
  z := (!z lxor (!z lsr 27)) * 0x14D049BB133111EB;
  let h = !z lxor (!z lsr 31) in
  float_of_int (h land 0xFFFF) /. 65536.0 (* [0, 1) *)

(* delay before attempt [k+1]: capped exponential, scaled into
   [0.75x, 1.25x] by the attempt-indexed jitter *)
let backoff_delay retry k =
  let base = Float.min retry.cap_s (retry.base_s *. (2.0 ** float_of_int k)) in
  base *. (0.75 +. (0.5 *. jitter_hash k))

let ids = Atomic.make 0

let fresh_id spec =
  Printf.sprintf "%s-%d-%d" (Jobs.kind spec) (Unix.getpid ())
    (Atomic.fetch_and_add ids 1)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let with_conn socket f =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket
         (Unix.error_message err))
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let request req =
          write_all fd (Obs.Json.to_string (P.request_to_json req) ^ "\n")
        in
        let next_response () =
          match input_line ic with
          | exception End_of_file -> Error "server closed the connection"
          | line -> P.parse_response line
        in
        try f ~request ~next_response
        with Unix.Unix_error (err, _, _) ->
          Error (Printf.sprintf "i/o with %s failed: %s" socket
                   (Unix.error_message err)))

let protocol_failure resp =
  Error
    (Printf.sprintf "unexpected response %s"
       (Obs.Json.to_string (P.response_to_json resp)))

let submit_once ~socket ~id ~priority ~timeout ~max_conflicts spec =
  let r =
    with_conn socket (fun ~request ~next_response ->
        request (P.Submit { P.id; spec; timeout; max_conflicts; priority });
        let rec await () =
          match next_response () with
          | Error msg -> Error msg
          | Ok (P.Ack _) -> await ()
          | Ok (P.Result r) ->
            Ok
              (Ok
                 {
                   verdict = r.verdict;
                   code = r.code;
                   cached = r.cached;
                   ms = r.ms;
                 })
          | Ok (P.Err e) ->
            Ok
              (Error
                 {
                   fcode = P.error_code_to_string e.code;
                   fmessage = e.message;
                   fretry_after_s = e.retry_after_s;
                 })
          | Ok other -> protocol_failure other
        in
        await ())
  in
  match r with
  | Error msg -> Error (`Transport msg)
  | Ok (Ok o) -> Ok o
  | Ok (Error f) -> Error (`Server f)

(* transient server answers: worth backing off and trying again *)
let transient_code = function
  | "overloaded" | "internal_error" | "duplicate_id" -> true
  | _ -> false

(* Submit one job and block until its verdict, retrying transient
   failures. [Error (`Transport _)] is a transport problem that
   survived every attempt; [Error (`Server f)] is the daemon's typed
   error (fault_injected, cancelled, ...). *)
let submit ~socket ?(retry = default_retry) ?id ?(priority = 0) ?timeout
    ?max_conflicts spec =
  let id = match id with Some id -> id | None -> fresh_id spec in
  let attempts = max 1 retry.attempts in
  let rec go k =
    match submit_once ~socket ~id ~priority ~timeout ~max_conflicts spec with
    | Ok _ as ok -> ok
    | Error e when k + 1 >= attempts -> Error e
    | Error e -> (
      let backoff = backoff_delay retry k in
      match e with
      | `Transport _ ->
        Obs.Metrics.incr m_retries;
        Obs.Metrics.incr m_reconnects;
        retry.sleep backoff;
        go (k + 1)
      | `Server f when transient_code f.fcode ->
        Obs.Metrics.incr m_retries;
        (* the server's own hint dominates the local schedule *)
        let delay =
          match f.fretry_after_s with
          | Some s when s > backoff -> s
          | _ -> backoff
        in
        retry.sleep delay;
        go (k + 1)
      | `Server _ -> Error e)
  in
  go 0

let retries () = Obs.Metrics.counter_value m_retries

let cancel ~socket ~id =
  with_conn socket (fun ~request ~next_response ->
      request (P.Cancel id);
      match next_response () with
      | Error msg -> Error msg
      | Ok (P.Ack _) -> Ok ()
      | Ok (P.Err e) ->
        Error
          (Printf.sprintf "%s: %s" (P.error_code_to_string e.code) e.message)
      | Ok other -> protocol_failure other)

let shutdown ~socket () =
  with_conn socket (fun ~request ~next_response ->
      request P.Shutdown;
      match next_response () with
      | Error msg -> Error msg
      | Ok P.Bye -> Ok ()
      | Ok (P.Err e) ->
        Error
          (Printf.sprintf "%s: %s" (P.error_code_to_string e.code) e.message)
      | Ok other -> protocol_failure other)

let ping ~socket () =
  with_conn socket (fun ~request ~next_response ->
      request P.Ping;
      match next_response () with
      | Error msg -> Error msg
      | Ok P.Pong -> Ok ()
      | Ok other -> protocol_failure other)

let stats ~socket () =
  with_conn socket (fun ~request ~next_response ->
      request P.Stats;
      match next_response () with
      | Error msg -> Error msg
      | Ok (P.StatsReply s) -> Ok s
      | Ok (P.Err e) ->
        Error
          (Printf.sprintf "%s: %s" (P.error_code_to_string e.code) e.message)
      | Ok other -> protocol_failure other)
