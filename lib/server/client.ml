(* Client side of the JSONL protocol: one connection per call, a
   request line out, responses read back until the call's terminal
   answer. Used by the CLI's submit/cancel/shutdown subcommands, by the
   --server routing of the loop subcommands, and by the tests. *)

module P = Protocol

type failure = { fcode : string; fmessage : string }

type outcome = { verdict : string; code : int; cached : bool; ms : float }

let ids = Atomic.make 0

let fresh_id spec =
  Printf.sprintf "%s-%d-%d" (Jobs.kind spec) (Unix.getpid ())
    (Atomic.fetch_and_add ids 1)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let with_conn socket f =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket
         (Unix.error_message err))
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let request req =
          write_all fd (Obs.Json.to_string (P.request_to_json req) ^ "\n")
        in
        let next_response () =
          match input_line ic with
          | exception End_of_file -> Error "server closed the connection"
          | line -> P.parse_response line
        in
        try f ~request ~next_response
        with Unix.Unix_error (err, _, _) ->
          Error (Printf.sprintf "i/o with %s failed: %s" socket
                   (Unix.error_message err)))

let protocol_failure resp =
  Error
    (Printf.sprintf "unexpected response %s"
       (Obs.Json.to_string (P.response_to_json resp)))

(* Submit one job and block until its verdict. [Error (`Failure _)] is
   a transport problem; [Error (`Server f)] is the daemon's typed
   error (fault_injected, cancelled, ...). *)
let submit ~socket ?id ?(priority = 0) ?timeout ?max_conflicts spec =
  let id = match id with Some id -> id | None -> fresh_id spec in
  let r =
    with_conn socket (fun ~request ~next_response ->
        request (P.Submit { P.id; spec; timeout; max_conflicts; priority });
        let rec await () =
          match next_response () with
          | Error msg -> Error msg
          | Ok (P.Ack _) -> await ()
          | Ok (P.Result r) ->
            Ok
              (Ok
                 {
                   verdict = r.verdict;
                   code = r.code;
                   cached = r.cached;
                   ms = r.ms;
                 })
          | Ok (P.Err e) ->
            Ok
              (Error
                 {
                   fcode = P.error_code_to_string e.code;
                   fmessage = e.message;
                 })
          | Ok other -> protocol_failure other
        in
        await ())
  in
  match r with
  | Error msg -> Error (`Transport msg)
  | Ok (Ok o) -> Ok o
  | Ok (Error f) -> Error (`Server f)

let cancel ~socket ~id =
  with_conn socket (fun ~request ~next_response ->
      request (P.Cancel id);
      match next_response () with
      | Error msg -> Error msg
      | Ok (P.Ack _) -> Ok ()
      | Ok (P.Err e) ->
        Error
          (Printf.sprintf "%s: %s" (P.error_code_to_string e.code) e.message)
      | Ok other -> protocol_failure other)

let shutdown ~socket () =
  with_conn socket (fun ~request ~next_response ->
      request P.Shutdown;
      match next_response () with
      | Error msg -> Error msg
      | Ok P.Bye -> Ok ()
      | Ok (P.Err e) ->
        Error
          (Printf.sprintf "%s: %s" (P.error_code_to_string e.code) e.message)
      | Ok other -> protocol_failure other)

let ping ~socket () =
  with_conn socket (fun ~request ~next_response ->
      request P.Ping;
      match next_response () with
      | Error msg -> Error msg
      | Ok P.Pong -> Ok ()
      | Ok other -> protocol_failure other)

let stats ~socket () =
  with_conn socket (fun ~request ~next_response ->
      request P.Stats;
      match next_response () with
      | Error msg -> Error msg
      | Ok (P.StatsReply s) -> Ok s
      | Ok (P.Err e) ->
        Error
          (Printf.sprintf "%s: %s" (P.error_code_to_string e.code) e.message)
      | Ok other -> protocol_failure other)
