(** Durable job journal: the daemon's append-only write-ahead log.

    One checksummed record per line ([<md5-hex> <json>\n]). The daemon
    appends [Submitted] (fsync'd before the submit ack), [Started],
    [Done] and [Cancelled] records; on startup {!recover} replays the
    log — tolerating a truncated or corrupt tail — compacts it down to
    live state, and hands back the jobs that were acked but never
    finished plus the cacheable verdicts, so a [kill -9] mid-solve
    loses no accepted work and no cached result.

    Cross-process exclusion is a [Unix.lockf] lock on a sibling
    [<path>.lock] file: it dies with the process (a crashed daemon
    never wedges the next start) and is explicitly released and
    unlinked by {!close}. *)

type submit = {
  sj_id : string;
  sj_key : string;  (** {!Jobs.key} of the spec, for cache rebuild *)
  sj_spec : Jobs.spec;
  sj_timeout : float option;
  sj_max_conflicts : int option;
  sj_priority : int;
  sj_starts : int;
      (** times a dispatcher picked this job without it reaching a
          terminal record — across crashes, this is the poisoned-job
          detector *)
}

type record =
  | Submitted of submit
  | Started of { id : string }
  | Done of {
      id : string;
      key : string;
      verdict : string;
      code : int;
      cacheable : bool;
    }
  | Cancelled of { id : string }
      (** any terminal answer that is not a reusable verdict: explicit
          cancel, typed error, shutdown, or give-up *)

type t

type replayed = {
  rj_pending : submit list;
      (** acked but never completed, in original submit order *)
  rj_results : (string * string * int) list;
      (** cacheable [(key, verdict, code)] verdicts, oldest first *)
  rj_records : int;  (** valid records read *)
  rj_dropped : int;  (** invalid tail lines dropped *)
}

val replay : string -> (replayed, string) result
(** Read-only replay of the journal at [path]; a missing file is an
    empty journal. Stops at the first invalid line and reports
    everything after it in [rj_dropped]. *)

val recover : path:string -> (t * replayed, string) result
(** Take the journal lock, {!replay}, rewrite the journal compacted to
    live state (fsync + atomic rename), and open it for appending.
    Fails if another live daemon holds the lock. *)

val append : ?sync:bool -> t -> record -> unit
(** Append one record; [sync] (default false) additionally fsyncs
    before returning — the daemon syncs exactly the [Submitted] records
    that back its acks. Raises [Fault.Injected] under an armed
    [Journal_write] fault site, and [Unix.Unix_error] on real I/O
    failure; callers own the policy (refuse the submit, or drop the
    record quietly). *)

val close : t -> unit
(** Fsync, close, release and unlink the lock file. Idempotent. *)

val line_of_record : record -> string
(** The on-disk line for a record, checksum and newline included
    (exposed for tests building journals by hand). *)
