(** Content-addressed LRU result cache.

    The daemon's cross-request memo: a repeat submission of the same
    canonical problem (same {!Jobs.key}) is answered from here without
    touching a solver. Entries hold the exact verdict string and exit
    code the first run produced, so a cache hit is bit-identical to the
    run it replays. Hits and misses feed the
    [server.cache_hits]/[server.cache_misses] registry counters (and
    through them the [/metrics] exposition). Thread-safe. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 entries; least-recently-used eviction. Raises
    [Invalid_argument] when [capacity < 1]. *)

val find : t -> string -> (string * int) option
(** [(verdict, code)] for a key, marking it most recently used. Counts
    a hit or a miss. *)

val store : t -> string -> verdict:string -> code:int -> unit
(** Insert (or refresh the recency of) a result. Callers only store
    deterministic converged results — never EXHAUSTED partials, whose
    content depends on the budget that cut them short. *)

val size : t -> int
val hits : unit -> int
val misses : unit -> int
