(* The versioned JSONL wire protocol.

   One JSON object per line in each direction. Every request names the
   protocol version; a line that is not JSON, not versioned, or longer
   than [max_line_bytes] is rejected with a typed error rather than a
   dropped connection, so clients can always distinguish "the server
   disliked my request" from "the server died". The codec is total in
   both directions: [parse_request] never raises, and every response
   the daemon can emit has a printer here and a parser used by the
   client. *)

module J = Obs.Json

let version = "sciduction.serve/1"
let max_line_bytes = 65536

type submit = {
  id : string;
  spec : Jobs.spec;
  timeout : float option;
  max_conflicts : int option;
  priority : int;
}

type request =
  | Submit of submit
  | Cancel of string
  | Ping
  | Stats
  | Shutdown

type error_code =
  | Parse_error  (** the line is not a JSON object *)
  | Oversized  (** the line exceeds {!max_line_bytes} *)
  | Bad_request  (** missing/ill-typed fields, or wrong protocol version *)
  | Unknown_op
  | Duplicate_id  (** the id names a job still queued or in flight *)
  | Unknown_job  (** cancel for an id the server is not running *)
  | Fault_injected  (** the job died under armed fault injection *)
  | Job_failed  (** the job raised; the message carries the exception *)
  | Cancelled  (** explicit cancel, client disconnect, or shutdown *)
  | Shutting_down  (** the server no longer accepts work *)
  | Overloaded
      (** admission control shed the job; [retry_after_s] hints when to
          come back. Additive in sciduction.serve/1: old clients degrade
          it to [Job_failed]. *)
  | Internal_error
      (** the server failed on its side of an accepted job — journal
          write failure, or a job that kept killing dispatchers past the
          restart budget *)

let error_code_to_string = function
  | Parse_error -> "parse_error"
  | Oversized -> "oversized"
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Duplicate_id -> "duplicate_id"
  | Unknown_job -> "unknown_job"
  | Fault_injected -> "fault_injected"
  | Job_failed -> "job_failed"
  | Cancelled -> "cancelled"
  | Shutting_down -> "shutting_down"
  | Overloaded -> "overloaded"
  | Internal_error -> "internal_error"

(* ----- request codec ----- *)

let str_member name j = Option.bind (J.member name j) J.to_str

let parse_request line =
  match J.parse line with
  | Error msg -> Error (Parse_error, "not a JSON line: " ^ msg)
  | Ok j -> (
    match str_member "v" j with
    | None -> Error (Bad_request, Printf.sprintf "missing protocol version %S" version)
    | Some v when v <> version ->
      Error
        ( Bad_request,
          Printf.sprintf "unsupported protocol version %S (want %S)" v version
        )
    | Some _ -> (
      match str_member "op" j with
      | None -> Error (Bad_request, "missing field \"op\"")
      | Some "ping" -> Ok Ping
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some "cancel" -> (
        match str_member "id" j with
        | Some id when id <> "" -> Ok (Cancel id)
        | _ -> Error (Bad_request, "cancel needs a non-empty \"id\""))
      | Some "submit" -> (
        match str_member "id" j with
        | None -> Error (Bad_request, "submit needs a non-empty \"id\"")
        | Some "" -> Error (Bad_request, "submit needs a non-empty \"id\"")
        | Some id -> (
          match J.member "job" j with
          | None -> Error (Bad_request, "submit needs a \"job\" object")
          | Some job -> (
            match Jobs.of_json job with
            | Error msg -> Error (Bad_request, "bad job: " ^ msg)
            | Ok spec ->
              let timeout =
                Option.bind (J.member "timeout" j) J.to_float
              in
              let max_conflicts =
                Option.bind (J.member "max_conflicts" j) J.to_int
              in
              let priority =
                Option.value ~default:0
                  (Option.bind (J.member "priority" j) J.to_int)
              in
              Ok (Submit { id; spec; timeout; max_conflicts; priority }))))
      | Some op -> Error (Unknown_op, Printf.sprintf "unknown op %S" op)))

let request_to_json req =
  let base op rest = J.Obj ((("v", J.String version) :: ("op", J.String op) :: rest)) in
  match req with
  | Ping -> base "ping" []
  | Stats -> base "stats" []
  | Shutdown -> base "shutdown" []
  | Cancel id -> base "cancel" [ ("id", J.String id) ]
  | Submit s ->
    base "submit"
      ([ ("id", J.String s.id); ("job", Jobs.to_json s.spec) ]
      @ (match s.timeout with
        | Some t -> [ ("timeout", J.Float t) ]
        | None -> [])
      @ (match s.max_conflicts with
        | Some n -> [ ("max_conflicts", J.Int n) ]
        | None -> [])
      @ if s.priority <> 0 then [ ("priority", J.Int s.priority) ] else [])

(* ----- response codec ----- *)

type response =
  | Ack of string
  | Result of {
      id : string;
      verdict : string;
      code : int;
      cached : bool;
      ms : float;
    }
  | Err of {
      code : error_code;
      message : string;
      id : string option;
      retry_after_s : float option;
    }
  | Pong
  | StatsReply of J.t
  | Bye

let response_to_json resp =
  let base ty rest = J.Obj (("v", J.String version) :: ("type", J.String ty) :: rest) in
  match resp with
  | Ack id -> base "ack" [ ("id", J.String id) ]
  | Result r ->
    base "result"
      [
        ("id", J.String r.id);
        ("verdict", J.String r.verdict);
        ("code", J.Int r.code);
        ("cached", J.Bool r.cached);
        ("ms", J.Float r.ms);
      ]
  | Err e ->
    base "error"
      ([
         ("code", J.String (error_code_to_string e.code));
         ("message", J.String e.message);
       ]
      @ (match e.id with Some id -> [ ("id", J.String id) ] | None -> [])
      @
      match e.retry_after_s with
      | Some s -> [ ("retry_after_s", J.Float s) ]
      | None -> [])
  | Pong -> base "pong" []
  | StatsReply s -> base "stats" [ ("stats", s) ]
  | Bye -> base "bye" []

let response_to_line resp = J.to_string (response_to_json resp) ^ "\n"

let parse_response line =
  match J.parse line with
  | Error msg -> Error ("malformed response: " ^ msg)
  | Ok j -> (
    let str name = str_member name j in
    match str "type" with
    | Some "pong" -> Ok Pong
    | Some "bye" -> Ok Bye
    | Some "stats" -> (
      match J.member "stats" j with
      | Some s -> Ok (StatsReply s)
      | None -> Error "stats response without a stats object")
    | Some "ack" -> (
      match str "id" with
      | Some id -> Ok (Ack id)
      | None -> Error "ack without an id")
    | Some "result" -> (
      match (str "id", str "verdict", Option.bind (J.member "code" j) J.to_int)
      with
      | Some id, Some verdict, Some code ->
        let cached =
          match J.member "cached" j with Some (J.Bool b) -> b | _ -> false
        in
        let ms =
          Option.value ~default:0.0
            (Option.bind (J.member "ms" j) J.to_float)
        in
        Ok (Result { id; verdict; code; cached; ms })
      | _ -> Error "result response missing id/verdict/code")
    | Some "error" -> (
      match (str "code", str "message") with
      | Some code, Some message ->
        let code =
          (* an unknown code string degrades to Job_failed rather than a
             parse failure: old clients survive new error codes *)
          List.assoc_opt code
            [
              ("parse_error", Parse_error); ("oversized", Oversized);
              ("bad_request", Bad_request); ("unknown_op", Unknown_op);
              ("duplicate_id", Duplicate_id); ("unknown_job", Unknown_job);
              ("fault_injected", Fault_injected); ("job_failed", Job_failed);
              ("cancelled", Cancelled); ("shutting_down", Shutting_down);
              ("overloaded", Overloaded); ("internal_error", Internal_error);
            ]
          |> Option.value ~default:Job_failed
        in
        let retry_after_s =
          Option.bind (J.member "retry_after_s" j) J.to_float
        in
        Ok (Err { code; message; id = str "id"; retry_after_s })
      | _ -> Error "error response missing code/message")
    | Some other -> Error (Printf.sprintf "unknown response type %S" other)
    | None -> Error "response without a type")
