(* Warm incremental solver sessions, keyed by problem family.

   A BMC query against a system the daemon has seen before should not
   rebuild the unrolling from frame 0: the family store keeps one
   persistent Bmc.session per transition-system fingerprint, together
   with the knowledge already extracted from it — the contiguously
   proved-clean prefix and the minimal counterexample, if one was found.
   A deeper query resumes the sweep at [proved + 1] over the warm
   session (reusing every Tseitin frame and learnt clause), which is
   where the overlapping-query speedup comes from.

   Sessions are single-threaded objects; the per-entry mutex serializes
   jobs of the same family while leaving different families free to run
   in parallel. Holding an entry across a whole sweep is deliberate —
   two concurrent queries against one solver would corrupt it. *)

type entry = {
  lock : Mutex.t;
  sess : Mc.Bmc.session;
  mutable proved : int; (* depths 0..proved are proved clean; -1 = none *)
  mutable cex : (int * bool array list) option; (* minimal cex, if found *)
}

type t = { lock : Mutex.t; tbl : (string, entry) Hashtbl.t }

let m_warm_hits = Obs.Metrics.counter "server.warm_hits"
let m_warm_cold = Obs.Metrics.counter "server.warm_cold"

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 16 }

let acquire t ~family mk_ts =
  Mutex.lock t.lock;
  let entry =
    match Hashtbl.find_opt t.tbl family with
    | Some e ->
      Obs.Metrics.incr m_warm_hits;
      e
    | None ->
      Obs.Metrics.incr m_warm_cold;
      let e =
        {
          lock = Mutex.create ();
          sess = Mc.Bmc.new_session (mk_ts ());
          proved = -1;
          cex = None;
        }
      in
      Hashtbl.replace t.tbl family e;
      e
  in
  Mutex.unlock t.lock;
  (* blocks while another job of the same family is mid-sweep *)
  Mutex.lock entry.lock;
  entry

let release (entry : entry) = Mutex.unlock entry.lock
let families t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let hits () = Obs.Metrics.counter_value m_warm_hits
let cold () = Obs.Metrics.counter_value m_warm_cold
