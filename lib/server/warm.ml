(* Warm incremental solver sessions, keyed by problem family.

   A BMC query against a system the daemon has seen before should not
   rebuild the unrolling from frame 0: the family store keeps one
   persistent Bmc.session per transition-system fingerprint, together
   with the knowledge already extracted from it — the contiguously
   proved-clean prefix and the minimal counterexample, if one was found.
   A deeper query resumes the sweep at [proved + 1] over the warm
   session (reusing every Tseitin frame and learnt clause), which is
   where the overlapping-query speedup comes from.

   Sessions are single-threaded objects; the per-entry mutex serializes
   jobs of the same family while leaving different families free to run
   in parallel. Holding an entry across a whole sweep is deliberate —
   two concurrent queries against one solver would corrupt it.

   The store is bounded: sessions hold a full Tseitin unrolling each, so
   an unbounded store is a slow memory leak under many-family traffic.
   Admitting a fresh family past [capacity] evicts the least-recently
   used idle entry (in-use entries are never evicted — [try_lock]
   probes for holders, so a mid-sweep session survives; the store can
   transiently exceed capacity while every entry is busy). Teardown of
   an evicted session is dropping the last reference: sessions are pure
   in-memory objects (solver + Tseitin context), with no descriptors to
   close, and any job that already acquired the entry keeps it alive
   until release. *)

type entry = {
  lock : Mutex.t;
  sess : Mc.Bmc.session;
  mutable proved : int; (* depths 0..proved are proved clean; -1 = none *)
  mutable cex : (int * bool array list) option; (* minimal cex, if found *)
  mutable stamp : int; (* last-acquire tick, for LRU eviction *)
}

type t = {
  lock : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
}

let m_warm_hits = Obs.Metrics.counter "server.warm_hits"
let m_warm_cold = Obs.Metrics.counter "server.warm_cold"
let m_warm_evictions = Obs.Metrics.counter "server.warm_evictions"

let default_capacity = 8

let create ?(capacity = default_capacity) () =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 16;
    capacity = max 1 capacity;
    tick = 0;
  }

(* caller holds t.lock. Evict LRU idle entries until under capacity; an
   entry whose mutex we cannot take is mid-sweep and immune. *)
let evict_to_capacity t =
  while
    Hashtbl.length t.tbl >= t.capacity
    &&
    let victim =
      Hashtbl.fold
        (fun family e best ->
          match best with
          | Some (_, b) when b.stamp <= e.stamp -> best
          | _ -> Some (family, e))
        t.tbl None
    in
    match victim with
    | None -> false
    | Some (family, e) ->
      if Mutex.try_lock e.lock then begin
        Hashtbl.remove t.tbl family;
        Mutex.unlock e.lock;
        Obs.Metrics.incr m_warm_evictions;
        true
      end
      else begin
        (* the LRU entry is busy; punt rather than scanning for the
           next-best — the next admission retries *)
        false
      end
  do
    ()
  done

let acquire t ~family mk_ts =
  Mutex.lock t.lock;
  t.tick <- t.tick + 1;
  let entry =
    match Hashtbl.find_opt t.tbl family with
    | Some e ->
      Obs.Metrics.incr m_warm_hits;
      e.stamp <- t.tick;
      e
    | None ->
      Obs.Metrics.incr m_warm_cold;
      evict_to_capacity t;
      let e =
        {
          lock = Mutex.create ();
          sess = Mc.Bmc.new_session (mk_ts ());
          proved = -1;
          cex = None;
          stamp = t.tick;
        }
      in
      Hashtbl.replace t.tbl family e;
      e
  in
  Mutex.unlock t.lock;
  (* blocks while another job of the same family is mid-sweep *)
  Mutex.lock entry.lock;
  entry

let release (entry : entry) = Mutex.unlock entry.lock

let mem t family =
  Mutex.lock t.lock;
  let r = Hashtbl.mem t.tbl family in
  Mutex.unlock t.lock;
  r

let families t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let capacity t = t.capacity
let hits () = Obs.Metrics.counter_value m_warm_hits
let cold () = Obs.Metrics.counter_value m_warm_cold
let evictions () = Obs.Metrics.counter_value m_warm_evictions
