(** Warm incremental solver sessions, keyed by problem family.

    One persistent {!Mc.Bmc.session} per transition-system fingerprint,
    carrying the proved-clean depth prefix and any counterexample
    already found, so a later query against the same system resumes
    where earlier ones stopped instead of re-unrolling from frame 0.
    Jobs of the same family serialize on the entry lock; distinct
    families proceed concurrently. *)

type entry = {
  lock : Mutex.t;
  sess : Mc.Bmc.session;
  mutable proved : int;
      (** depths [0..proved] proved clean; [-1] when nothing is known *)
  mutable cex : (int * bool array list) option;
      (** the minimal counterexample depth and its trace, once found *)
}

type t

val create : unit -> t

val acquire : t -> family:string -> (unit -> Mc.Ts.t) -> entry
(** Find (or create, building the system with the thunk) the family's
    entry, then lock it: the caller owns the session until {!release}.
    Blocks while another job of the same family holds it. Counts a
    [server.warm_hits] or [server.warm_cold] registry event. *)

val release : entry -> unit

val families : t -> int
val hits : unit -> int
val cold : unit -> int
