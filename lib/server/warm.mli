(** Warm incremental solver sessions, keyed by problem family.

    One persistent {!Mc.Bmc.session} per transition-system fingerprint,
    carrying the proved-clean depth prefix and any counterexample
    already found, so a later query against the same system resumes
    where earlier ones stopped instead of re-unrolling from frame 0.
    Jobs of the same family serialize on the entry lock; distinct
    families proceed concurrently.

    The store is LRU-bounded (default {!default_capacity} families):
    admitting a fresh family past capacity evicts the least recently
    used {e idle} entry — an entry mid-sweep is never evicted, so the
    store can transiently exceed capacity while every family is busy.
    Evicted sessions are pure in-memory objects; dropping the table's
    reference is the whole teardown. *)

type entry = {
  lock : Mutex.t;
  sess : Mc.Bmc.session;
  mutable proved : int;
      (** depths [0..proved] proved clean; [-1] when nothing is known *)
  mutable cex : (int * bool array list) option;
      (** the minimal counterexample depth and its trace, once found *)
  mutable stamp : int;  (** last-acquire tick, for LRU eviction *)
}

type t

val default_capacity : int
(** 8 families. *)

val create : ?capacity:int -> unit -> t
(** [capacity] (default {!default_capacity}, clamped to ≥ 1) bounds the
    number of resident families. *)

val acquire : t -> family:string -> (unit -> Mc.Ts.t) -> entry
(** Find (or create, building the system with the thunk) the family's
    entry, then lock it: the caller owns the session until {!release}.
    Blocks while another job of the same family holds it. Counts a
    [server.warm_hits] or [server.warm_cold] registry event. *)

val release : entry -> unit

val mem : t -> string -> bool
(** Whether the family currently has a resident session — what degraded
    admission consults to decide if a BMC job is a warm hit. *)

val families : t -> int
val capacity : t -> int
val hits : unit -> int
val cold : unit -> int

val evictions : unit -> int
(** Total LRU evictions (the [server.warm_evictions] counter). *)
