(* The long-lived verification server.

   One Unix-domain listener, one reader systhread per client, N
   dispatcher systhreads executing jobs (through the Par pool when one
   is given — each dispatcher submits one task and awaits it, so with a
   pool of J units roughly J jobs make progress on distinct domains).
   Shared state (the pending queue, the in-flight table, the client
   registry, the dispatcher slots) lives behind one mutex + condvar;
   the result cache, the warm-session store and the journal have their
   own locks.

   Scheduling is FIFO with aging: the queue is scanned for the lowest
   effective priority [priority - age/aging_s], ties broken by arrival
   order, so a high-priority stream cannot starve earlier cheap
   requests forever. Cancellation is cooperative end to end: every job
   owns a Par.Cancel token, installed as the Budget's cancel hook (and,
   through Govern.limits_of_meter, as the in-flight solver's stop
   callback), so an explicit cancel, a client disconnect, or shutdown
   stops a running solver within a poll interval.

   Durability: with a journal, every accepted submission is fsync'd to
   the write-ahead log before its ack, every terminal answer appends a
   [done]/[cancelled] record, and [start] replays the log — rebuilding
   the cache from [done] records and re-enqueueing acked-but-unfinished
   jobs as ownerless work whose verdicts land in the cache for the
   resubmitting client. A replayed job that already crashed the daemon
   more times than the restart budget is refused as poisoned.

   Overload: admission is bounded by a high/low watermark pair on the
   queue. At the high watermark submissions shed with a typed
   [overloaded {retry_after_s}] answer; when the shedding persists past
   a sustain window, or dispatchers keep dying, the daemon enters
   degraded mode — cache and warm-family hits are still served, fresh
   heavy jobs shed — and leaves it once the queue drains to the low
   watermark and dispatcher deaths quiet down.

   Supervision: each dispatcher runs in a slot that records the job it
   is holding. A dispatcher death (a real bug, or an injected
   [Serve_dispatch] fault) wakes the supervisor, which requeues the
   victim's job (bounded by the restart budget, then a typed
   [internal_error] to that client only), re-arms the slot with a fresh
   thread, and counts the death toward degraded-mode entry. A reader
   death ([Serve_reader]) costs only that client's connection.

   Write-side discipline: a reader holds the connection's write lock
   across [check + enqueue + ack], so a dispatcher (which takes the
   same lock to write the result) can never put a result on the wire
   before its ack. Lock order is always conn.wlock -> t.lock; the
   dispatcher and supervisor send while holding neither. *)

module P = Protocol

let m_requests = Obs.Metrics.counter "server.requests"
let m_done = Obs.Metrics.counter "server.requests_done"
let m_cancelled = Obs.Metrics.counter "server.requests_cancelled"
let m_faults = Obs.Metrics.counter "server.requests_faulted"
let m_request_ms = Obs.Metrics.histogram "server.request_ms"
let m_inflight = Obs.Metrics.gauge "server.requests_inflight"
let m_queue_depth = Obs.Metrics.gauge "server.queue_depth"
let m_shed = Obs.Metrics.counter "server.shed_total"
let m_degraded = Obs.Metrics.gauge "server.degraded"
let m_requeued = Obs.Metrics.counter "server.jobs_requeued"
let m_restarts = Obs.Metrics.counter "server.dispatcher_restarts"
let m_reader_crashes = Obs.Metrics.counter "server.reader_crashes"
let m_given_up = Obs.Metrics.counter "server.jobs_given_up"

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;
  mutable alive : bool;
}

type pending = {
  id : string;
  owner : conn option; (* None: replayed from the journal, no client *)
  spec : Jobs.spec;
  cache_key : string;
  timeout : float option;
  max_conflicts : int option;
  priority : int;
  enqueued : float;
  token : Par.Cancel.t;
  mutable requeues : int; (* dispatcher deaths survived, this process *)
}

type slot = {
  mutable th : Thread.t option;
  mutable current : pending option; (* the job a death would orphan *)
}

type t = {
  socket : string;
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr; (* wakes the acceptor *)
  stop_w : Unix.file_descr;
  done_r : Unix.file_descr; (* wakes [wait] *)
  done_w : Unix.file_descr;
  lock : Mutex.t;
  cond : Condition.t;
  mutable queue : pending list; (* arrival order *)
  inflight : (string, pending) Hashtbl.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable shutting_down : bool;
  cache : Cache.t;
  warm : Warm.t;
  pool : Par.Pool.t option;
  aging_s : float;
  journal : Journal.t option;
  queue_high : int;
  queue_low : int;
  retry_after_s : float;
  degrade_after_s : float;
  restart_budget : int;
  mutable degraded : bool;
  mutable overload_since : float option; (* first shed of the burst *)
  mutable death_times : float list; (* recent dispatcher deaths, newest first *)
  slots : slot array;
  mutable sup_dead : int list; (* slot indices awaiting supervision *)
  sup_cond : Condition.t;
  mutable supervisor : Thread.t option;
  mutable acceptor : Thread.t option;
  mutable stopped : bool;
}

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let send conn resp =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      if conn.alive then
        try write_all conn.fd (P.response_to_line resp)
        with Unix.Unix_error _ -> conn.alive <- false)

let send_owner p resp =
  match p.owner with Some conn -> send conn resp | None -> ()

let same_owner p conn =
  match p.owner with Some c -> c == conn | None -> false

let set_gauges t =
  (* caller holds t.lock *)
  Obs.Metrics.set_gauge m_queue_depth (float_of_int (List.length t.queue));
  Obs.Metrics.set_gauge m_inflight (float_of_int (Hashtbl.length t.inflight))

(* ----- journal plumbing ----- *)

(* the submit path is the only one allowed to fail loudly: a lost
   Submitted record means the ack's durability promise is broken, so
   the submission is refused. Terminal records degrade quietly — the
   worst case is one finished job replayed after a crash. *)
let journal_submit t (s : P.submit) cache_key =
  match t.journal with
  | None -> Ok ()
  | Some j -> (
    match
      Journal.append ~sync:true j
        (Journal.Submitted
           {
             sj_id = s.P.id;
             sj_key = cache_key;
             sj_spec = s.P.spec;
             sj_timeout = s.P.timeout;
             sj_max_conflicts = s.P.max_conflicts;
             sj_priority = s.P.priority;
             sj_starts = 0;
           })
    with
    | () -> Ok ()
    | exception Fault.Injected -> Error "injected fault at journal write"
    | exception e -> Error (Printexc.to_string e))

let journal_quiet t record =
  match t.journal with
  | None -> ()
  | Some j -> ( try Journal.append j record with _ -> ())

(* ----- degraded-mode state machine (callers hold t.lock) ----- *)

let enter_degraded t ~reason =
  if not t.degraded then begin
    t.degraded <- true;
    Obs.Metrics.set_gauge m_degraded 1.0;
    Obs.emit (Obs.Degraded_entered { loop = "server"; reason; attrs = [] })
  end

(* exit once pressure is demonstrably gone: queue at/below the low
   watermark and no dispatcher death for a full sustain window *)
let maybe_exit_degraded t =
  if
    t.degraded
    && List.length t.queue <= t.queue_low
    &&
    match t.death_times with
    | [] -> true
    | newest :: _ -> Unix.gettimeofday () -. newest >= t.degrade_after_s
  then begin
    t.degraded <- false;
    t.overload_since <- None;
    Obs.Metrics.set_gauge m_degraded 0.0;
    Obs.emit (Obs.Degraded_exited { loop = "server"; attrs = [] })
  end

(* ----- scheduler ----- *)

(* Lowest effective priority wins; the queue is kept in arrival order,
   so the first minimum found is also the oldest. Requeued and replayed
   jobs keep their original enqueue stamp, so aging sends them to the
   front of their priority class. *)
let pick_best t =
  match t.queue with
  | [] -> None
  | first :: _ ->
    let now = Unix.gettimeofday () in
    let eff p =
      float_of_int p.priority -. ((now -. p.enqueued) /. t.aging_s)
    in
    let best =
      List.fold_left
        (fun acc p -> if eff p < eff acc then p else acc)
        first t.queue
    in
    t.queue <- List.filter (fun p -> p != best) t.queue;
    Some best

let err_of_exn = function
  | Fault.Injected ->
    (P.Fault_injected, "injected fault: the job died before its verdict")
  | Failure msg -> (P.Job_failed, msg)
  | e -> (P.Job_failed, Printexc.to_string e)

let execute t (p : pending) =
  let t0 = Unix.gettimeofday () in
  let fail code message =
    journal_quiet t (Journal.Cancelled { id = p.id });
    send_owner p
      (P.Err { code; message; id = Some p.id; retry_after_s = None })
  in
  if Par.Cancel.is_set p.token then begin
    Obs.Metrics.incr m_cancelled;
    fail P.Cancelled (Printf.sprintf "job %s cancelled" p.id)
  end
  else if Fault.fire Fault.Serve_job then begin
    Obs.Metrics.incr m_faults;
    fail P.Fault_injected "injected fault: the job died before its verdict"
  end
  else begin
    let budget =
      Budget.limited ?seconds:p.timeout ?conflicts:p.max_conflicts
        ~cancel:(fun () -> Par.Cancel.is_set p.token)
        ()
    in
    (* the loop inside the job stays sequential (?pool is not passed
       down): parallelism comes from running whole jobs on distinct
       pool units, and verdicts stay identical to a --jobs 1 CLI run *)
    let run () = Jobs.run ~warm:t.warm ~budget p.spec in
    match
      match t.pool with
      | Some pool -> Par.await pool (Par.submit pool run)
      | None -> run ()
    with
    | exception e ->
      let code, message = err_of_exn e in
      if code = P.Fault_injected then Obs.Metrics.incr m_faults;
      fail code message
    | r ->
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Obs.Metrics.observe m_request_ms (int_of_float ms);
      if Par.Cancel.is_set p.token then begin
        Obs.Metrics.incr m_cancelled;
        fail P.Cancelled (Printf.sprintf "job %s cancelled" p.id)
      end
      else begin
        if r.Jobs.cacheable then
          Cache.store t.cache p.cache_key ~verdict:r.Jobs.verdict
            ~code:r.Jobs.code;
        journal_quiet t
          (Journal.Done
             {
               id = p.id;
               key = p.cache_key;
               verdict = r.Jobs.verdict;
               code = r.Jobs.code;
               cacheable = r.Jobs.cacheable;
             });
        Obs.Metrics.incr m_done;
        send_owner p
          (P.Result
             {
               id = p.id;
               verdict = r.Jobs.verdict;
               code = r.Jobs.code;
               cached = false;
               ms;
             })
      end
  end

(* ----- dispatchers and their supervisor ----- *)

let rec dispatcher_loop t (slot : slot) =
  Mutex.lock t.lock;
  let rec next () =
    if t.shutting_down then None
    else
      match pick_best t with
      | Some p -> Some p
      | None ->
        Condition.wait t.cond t.lock;
        next ()
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some p ->
    Hashtbl.replace t.inflight p.id p;
    slot.current <- Some p;
    set_gauges t;
    Mutex.unlock t.lock;
    (* an injected dispatcher death happens exactly here — after the
       claim, before the verdict — so the supervisor always finds the
       victim's job in the slot *)
    if Fault.fire Fault.Serve_dispatch then raise Fault.Injected;
    journal_quiet t (Journal.Started { id = p.id });
    (try execute t p
     with e ->
       journal_quiet t (Journal.Cancelled { id = p.id });
       send_owner p
         (P.Err
            {
              code = P.Job_failed;
              message = Printexc.to_string e;
              id = Some p.id;
              retry_after_s = None;
            }));
    Mutex.lock t.lock;
    Hashtbl.remove t.inflight p.id;
    slot.current <- None;
    set_gauges t;
    maybe_exit_degraded t;
    Mutex.unlock t.lock;
    dispatcher_loop t slot

let dispatcher_thread t i =
  try dispatcher_loop t t.slots.(i)
  with _ ->
    (* the dispatcher is dead; hand the slot to the supervisor *)
    Mutex.lock t.lock;
    t.sup_dead <- i :: t.sup_dead;
    Condition.signal t.sup_cond;
    Mutex.unlock t.lock

(* death-rate window for degraded-mode entry: this many deaths inside
   [death_window_s] means the fleet is sick, not one unlucky job *)
let death_window_s = 10.0

let supervisor t =
  let rec loop () =
    Mutex.lock t.lock;
    while t.sup_dead = [] && not t.shutting_down do
      Condition.wait t.sup_cond t.lock
    done;
    let deaths = t.sup_dead in
    t.sup_dead <- [];
    if deaths = [] then Mutex.unlock t.lock (* shutting down, all armed *)
    else begin
      let now = Unix.gettimeofday () in
      let actions = ref [] in
      List.iter
        (fun i ->
          let slot = t.slots.(i) in
          Obs.Metrics.incr m_restarts;
          t.death_times <-
            now
            :: List.filter
                 (fun ts -> now -. ts <= death_window_s)
                 t.death_times;
          (match slot.current with
          | None -> ()
          | Some p ->
            slot.current <- None;
            Hashtbl.remove t.inflight p.id;
            if t.shutting_down || Par.Cancel.is_set p.token then begin
              Obs.Metrics.incr m_cancelled;
              actions :=
                `Terminal
                  ( p,
                    P.Err
                      {
                        code = P.Cancelled;
                        message = Printf.sprintf "job %s cancelled" p.id;
                        id = Some p.id;
                        retry_after_s = None;
                      } )
                :: !actions
            end
            else if p.requeues >= t.restart_budget then begin
              (* poisoned: it has killed a dispatcher [restart_budget]+1
                 times. Give up on this job only *)
              Obs.Metrics.incr m_given_up;
              actions :=
                `Terminal
                  ( p,
                    P.Err
                      {
                        code = P.Internal_error;
                        message =
                          Printf.sprintf
                            "job %s crashed its dispatcher %d times; giving \
                             up"
                            p.id (p.requeues + 1);
                        id = Some p.id;
                        retry_after_s = None;
                      } )
                :: !actions
            end
            else begin
              p.requeues <- p.requeues + 1;
              Obs.Metrics.incr m_requeued;
              Obs.emit
                (Obs.Job_requeued
                   {
                     loop = "server";
                     id = p.id;
                     requeue = p.requeues;
                     restart_budget = t.restart_budget;
                     attrs = [];
                   });
              t.queue <- t.queue @ [ p ];
              Condition.signal t.cond
            end);
          if
            List.length t.death_times >= max 2 (Array.length t.slots)
            && not t.shutting_down
          then enter_degraded t ~reason:"dispatcher failures";
          if not t.shutting_down then
            slot.th <-
              Some (Thread.create (fun () -> dispatcher_thread t i) ()))
        deaths;
      set_gauges t;
      Mutex.unlock t.lock;
      (* sends happen outside t.lock (lock order conn.wlock -> t.lock) *)
      List.iter
        (fun (`Terminal (p, resp)) ->
          journal_quiet t (Journal.Cancelled { id = p.id });
          send_owner p resp)
        !actions;
      loop ()
    end
  in
  loop ()

(* ----- shutdown plumbing ----- *)

let request_shutdown t =
  Mutex.lock t.lock;
  let first = not t.shutting_down in
  t.shutting_down <- true;
  if first then begin
    (* stop in-flight work quickly; each job answers Cancelled *)
    Hashtbl.iter (fun _ p -> Par.Cancel.set p.token) t.inflight;
    Condition.broadcast t.cond;
    Condition.broadcast t.sup_cond
  end;
  Mutex.unlock t.lock;
  if first then begin
    (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1 : int)
     with Unix.Unix_error _ -> ());
    try ignore (Unix.write t.done_w (Bytes.of_string "x") 0 1 : int)
    with Unix.Unix_error _ -> ()
  end

(* ----- per-client reader ----- *)

let drop_client t conn =
  Mutex.lock t.lock;
  (* a vanished client cannot read results: cancel everything it owns *)
  let mine, rest = List.partition (fun p -> same_owner p conn) t.queue in
  t.queue <- rest;
  List.iter (fun p -> Par.Cancel.set p.token) mine;
  Hashtbl.iter
    (fun _ p -> if same_owner p conn then Par.Cancel.set p.token)
    t.inflight;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  if mine <> [] then Obs.Metrics.add m_cancelled (List.length mine);
  set_gauges t;
  Mutex.unlock t.lock;
  (* dequeued jobs never reach a dispatcher: give them their terminal
     journal record here or replay would resurrect them *)
  List.iter (fun p -> journal_quiet t (Journal.Cancelled { id = p.id })) mine;
  Mutex.lock conn.wlock;
  conn.alive <- false;
  Mutex.unlock conn.wlock;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* degraded admission: what still gets in is exactly what the daemon
   can answer without fresh heavy work — cache hits (handled before
   this) and BMC jobs whose family already has a warm session *)
let warm_admissible t spec =
  match spec with
  | Jobs.Bmc _ -> Warm.mem t.warm (Jobs.family spec)
  | _ -> false

let handle_submit t conn (s : P.submit) =
  Obs.Metrics.incr m_requests;
  let cache_key = Jobs.key s.P.spec in
  (* hold the write lock across decide + ack (+ cached result) so a
     dispatcher's result can never overtake the ack on the wire *)
  Mutex.lock conn.wlock;
  let replies =
    Mutex.lock t.lock;
    (* an idle daemon must not stay degraded forever: re-check the exit
       condition on traffic, not only on job completions *)
    maybe_exit_degraded t;
    let answer =
      if t.shutting_down then
        [
          P.Err
            {
              code = P.Shutting_down;
              message = "server is shutting down";
              id = Some s.P.id;
              retry_after_s = None;
            };
        ]
      else if
        Hashtbl.mem t.inflight s.P.id
        || List.exists (fun p -> p.id = s.P.id) t.queue
      then
        [
          P.Err
            {
              code = P.Duplicate_id;
              message =
                Printf.sprintf "a job named %S is already live" s.P.id;
              id = Some s.P.id;
              retry_after_s = None;
            };
        ]
      else begin
        match Cache.find t.cache cache_key with
        | Some (verdict, code) ->
          [
            P.Ack s.P.id;
            P.Result { id = s.P.id; verdict; code; cached = true; ms = 0.0 };
          ]
        | None ->
          let qlen = List.length t.queue in
          let now = Unix.gettimeofday () in
          let shed message =
            Obs.Metrics.incr m_shed;
            [
              P.Err
                {
                  code = P.Overloaded;
                  message;
                  id = Some s.P.id;
                  retry_after_s = Some t.retry_after_s;
                };
            ]
          in
          if qlen >= t.queue_high then begin
            (match t.overload_since with
            | None -> t.overload_since <- Some now
            | Some since ->
              if now -. since >= t.degrade_after_s then
                enter_degraded t ~reason:"sustained overload");
            shed
              (Printf.sprintf
                 "queue full (%d jobs); retry in %.2fs" qlen t.retry_after_s)
          end
          else if t.degraded && not (warm_admissible t s.P.spec) then
            shed "server degraded; only cache and warm-session hits admitted"
          else begin
            if qlen <= t.queue_low then t.overload_since <- None;
            match journal_submit t s cache_key with
            | Error msg ->
              [
                P.Err
                  {
                    code = P.Internal_error;
                    message = "journal write failed: " ^ msg;
                    id = Some s.P.id;
                    retry_after_s = Some t.retry_after_s;
                  };
              ]
            | Ok () ->
              t.queue <-
                t.queue
                @ [
                    {
                      id = s.P.id;
                      owner = Some conn;
                      spec = s.P.spec;
                      cache_key;
                      timeout = s.P.timeout;
                      max_conflicts = s.P.max_conflicts;
                      priority = s.P.priority;
                      enqueued = now;
                      token = Par.Cancel.create ();
                      requeues = 0;
                    };
                  ];
              set_gauges t;
              Condition.signal t.cond;
              [ P.Ack s.P.id ]
          end
      end
    in
    Mutex.unlock t.lock;
    answer
  in
  List.iter
    (fun resp ->
      if conn.alive then
        try write_all conn.fd (P.response_to_line resp)
        with Unix.Unix_error _ -> conn.alive <- false)
    replies;
  Mutex.unlock conn.wlock

let handle_cancel t conn id =
  let outcome =
    Mutex.lock t.lock;
    let r =
      match List.find_opt (fun p -> p.id = id) t.queue with
      | Some p ->
        t.queue <- List.filter (fun q -> q != p) t.queue;
        Par.Cancel.set p.token;
        set_gauges t;
        `Dequeued p
      | None -> (
        match Hashtbl.find_opt t.inflight id with
        | Some p ->
          Par.Cancel.set p.token;
          `Running
        | None -> `Unknown)
    in
    Mutex.unlock t.lock;
    r
  in
  match outcome with
  | `Dequeued p ->
    Obs.Metrics.incr m_cancelled;
    journal_quiet t (Journal.Cancelled { id = p.id });
    send conn (P.Ack id);
    (* the owner (usually the same connection) learns the job is gone *)
    send_owner p
      (P.Err
         {
           code = P.Cancelled;
           message = Printf.sprintf "job %s cancelled" id;
           id = Some id;
           retry_after_s = None;
         })
  | `Running -> send conn (P.Ack id) (* its dispatcher answers Cancelled *)
  | `Unknown ->
    send conn
      (P.Err
         {
           code = P.Unknown_job;
           message = Printf.sprintf "no live job named %S" id;
           id = Some id;
           retry_after_s = None;
         })

let stats_json t =
  Mutex.lock t.lock;
  let queued = List.length t.queue in
  let inflight = Hashtbl.length t.inflight in
  let clients = List.length t.conns in
  let degraded = t.degraded in
  let journaled = t.journal <> None in
  Mutex.unlock t.lock;
  Obs.Json.Obj
    [
      ("queued", Obs.Json.Int queued);
      ("inflight", Obs.Json.Int inflight);
      ("clients", Obs.Json.Int clients);
      ("done", Obs.Json.Int (Obs.Metrics.counter_value m_done));
      ("cancelled", Obs.Json.Int (Obs.Metrics.counter_value m_cancelled));
      ("faulted", Obs.Json.Int (Obs.Metrics.counter_value m_faults));
      ("cache_hits", Obs.Json.Int (Cache.hits ()));
      ("cache_misses", Obs.Json.Int (Cache.misses ()));
      ("warm_hits", Obs.Json.Int (Warm.hits ()));
      ("warm_families", Obs.Json.Int (Warm.families t.warm));
      ("warm_evictions", Obs.Json.Int (Warm.evictions ()));
      ("degraded", Obs.Json.Int (if degraded then 1 else 0));
      ("shed", Obs.Json.Int (Obs.Metrics.counter_value m_shed));
      ("requeued", Obs.Json.Int (Obs.Metrics.counter_value m_requeued));
      ( "dispatcher_restarts",
        Obs.Json.Int (Obs.Metrics.counter_value m_restarts) );
      ("journaled", Obs.Json.Bool journaled);
    ]

let handle_line t conn ~overflowed line =
  if overflowed then
    send conn
      (P.Err
         {
           code = P.Oversized;
           message =
             Printf.sprintf "request line exceeds %d bytes" P.max_line_bytes;
           id = None;
           retry_after_s = None;
         })
  else
    match P.parse_request line with
    | Error (code, message) ->
      send conn (P.Err { code; message; id = None; retry_after_s = None })
    | Ok P.Ping -> send conn P.Pong
    | Ok P.Stats -> send conn (P.StatsReply (stats_json t))
    | Ok P.Shutdown ->
      send conn P.Bye;
      request_shutdown t
    | Ok (P.Cancel id) -> handle_cancel t conn id
    | Ok (P.Submit s) -> handle_submit t conn s

let reader t conn =
  let chunk = Bytes.create 4096 in
  let line = Buffer.create 256 in
  let overflowed = ref false in
  (* nothing a request line does may escape the reader: an unexpected
     handler exception becomes a typed internal_error on this
     connection and the loop keeps reading *)
  let handle_line_safe ~overflowed s =
    try handle_line t conn ~overflowed s
    with
    | Fault.Injected as e -> raise e (* reader-death site, below *)
    | e ->
      send conn
        (P.Err
           {
             code = P.Internal_error;
             message = "request handler failed: " ^ Printexc.to_string e;
             id = None;
             retry_after_s = None;
           })
  in
  let feed b =
    if b = '\n' then begin
      let s = Buffer.contents line in
      Buffer.clear line;
      let over = !overflowed in
      overflowed := false;
      if s <> "" || over then handle_line_safe ~overflowed:over s
    end
    else if Buffer.length line >= P.max_line_bytes then overflowed := true
    else Buffer.add_char line b
  in
  let rec loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      if Fault.fire Fault.Serve_reader then raise Fault.Injected;
      for i = 0 to n - 1 do
        feed (Bytes.get chunk i)
      done;
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
  in
  (* a reader death — injected or real — costs exactly one client *)
  (try loop () with _ -> Obs.Metrics.incr m_reader_crashes);
  drop_client t conn

(* ----- acceptor ----- *)

let acceptor t =
  let buf = Bytes.create 1 in
  let rec loop () =
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
    | readable, _, _ when List.mem t.stop_r readable ->
      ignore (Unix.read t.stop_r buf 0 1 : int)
    | readable, _, _ when List.mem t.listen_fd readable ->
      (match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ ->
        let conn = { fd; wlock = Mutex.create (); alive = true } in
        Mutex.lock t.lock;
        t.conns <- conn :: t.conns;
        t.readers <- Thread.create (fun () -> reader t conn) () :: t.readers;
        Mutex.unlock t.lock
      | exception Unix.Unix_error _ -> ());
      loop ()
    | _ -> loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ----- lifecycle ----- *)

(* A leftover socket file from a crashed daemon must not block restart,
   but a live daemon's socket must: probe with a connect before
   unlinking (statsd just unlinks; the job server can afford the probe
   and the stronger guarantee). *)
let replace_stale_socket socket =
  match Unix.lstat socket with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot stat %s: %s" socket (Unix.error_message e))
  | st when st.Unix.st_kind <> Unix.S_SOCK ->
    Error
      (Printf.sprintf "%s exists and is not a socket; refusing to replace it"
         socket)
  | _ -> (
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then
      Error (Printf.sprintf "a live server is already on %s" socket)
    else
      match Unix.unlink socket with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot replace stale socket %s: %s" socket
             (Unix.error_message e)))

let start ?pool ?dispatchers ?(cache_capacity = 256) ?(aging_s = 5.0) ?journal
    ?(queue_limit = 64) ?(retry_after_s = 0.5) ?(degrade_after_s = 1.0)
    ?(restart_budget = 2) ?warm_capacity ~socket () =
  if aging_s <= 0.0 then invalid_arg "Daemon.start: aging_s must be positive";
  if queue_limit < 1 then
    invalid_arg "Daemon.start: queue_limit must be >= 1";
  if restart_budget < 0 then
    invalid_arg "Daemon.start: restart_budget must be >= 0";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match replace_stale_socket socket with
  | Error _ as e -> e
  | Ok () -> (
    let journal_state =
      match journal with
      | None -> Ok None
      | Some path -> (
        match Journal.recover ~path with
        | Ok (j, replayed) -> Ok (Some (j, replayed))
        | Error msg -> Error msg)
    in
    match journal_state with
    | Error msg -> Error msg
    | Ok journal_state -> (
      let close_journal () =
        match journal_state with
        | Some (j, _) -> Journal.close j
        | None -> ()
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX socket);
        Unix.listen fd 16
      with
      | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        close_journal ();
        Error
          (Printf.sprintf "cannot serve on %s: %s" socket
             (Unix.error_message err))
      | () ->
        let stop_r, stop_w = Unix.pipe ~cloexec:true () in
        let done_r, done_w = Unix.pipe ~cloexec:true () in
        let width =
          match dispatchers with
          | Some n ->
            if n < 1 then invalid_arg "Daemon.start: dispatchers must be >= 1";
            n
          | None -> ( match pool with Some p -> Par.Pool.jobs p | None -> 1)
        in
        let t =
          {
            socket;
            listen_fd = fd;
            stop_r;
            stop_w;
            done_r;
            done_w;
            lock = Mutex.create ();
            cond = Condition.create ();
            queue = [];
            inflight = Hashtbl.create 16;
            conns = [];
            readers = [];
            shutting_down = false;
            cache = Cache.create ~capacity:cache_capacity ();
            warm = Warm.create ?capacity:warm_capacity ();
            pool;
            aging_s;
            journal = Option.map fst journal_state;
            queue_high = queue_limit;
            queue_low = max 1 (queue_limit / 2);
            retry_after_s;
            degrade_after_s;
            restart_budget;
            degraded = false;
            overload_since = None;
            death_times = [];
            slots = Array.init width (fun _ -> { th = None; current = None });
            sup_dead = [];
            sup_cond = Condition.create ();
            supervisor = None;
            acceptor = None;
            stopped = false;
          }
        in
        (* crash recovery: verdicts back into the cache, acked-but-
           unfinished jobs back onto the queue as ownerless work whose
           results will be served from the cache on resubmission *)
        (match journal_state with
        | None -> ()
        | Some (_, replayed) ->
          List.iter
            (fun (key, verdict, code) ->
              Cache.store t.cache key ~verdict ~code)
            replayed.Journal.rj_results;
          let now = Unix.gettimeofday () in
          List.iter
            (fun (sj : Journal.submit) ->
              if sj.Journal.sj_starts > t.restart_budget then
                (* poisoned across restarts: it took down this many
                   whole daemons; refuse to resurrect it *)
                journal_quiet t (Journal.Cancelled { id = sj.Journal.sj_id })
              else
                t.queue <-
                  t.queue
                  @ [
                      {
                        id = sj.Journal.sj_id;
                        owner = None;
                        spec = sj.Journal.sj_spec;
                        cache_key = sj.Journal.sj_key;
                        timeout = sj.Journal.sj_timeout;
                        max_conflicts = sj.Journal.sj_max_conflicts;
                        priority = sj.Journal.sj_priority;
                        enqueued = now;
                        token = Par.Cancel.create ();
                        requeues = 0;
                      };
                    ])
            replayed.Journal.rj_pending;
          set_gauges t);
        Obs.Statsd.unlink_on_sigterm socket;
        t.supervisor <- Some (Thread.create (fun () -> supervisor t) ());
        Array.iteri
          (fun i slot ->
            slot.th <- Some (Thread.create (fun () -> dispatcher_thread t i) ()))
          t.slots;
        t.acceptor <- Some (Thread.create (fun () -> acceptor t) ());
        Ok t))

let wait t =
  let buf = Bytes.create 1 in
  let rec go () =
    match Unix.select [ t.done_r ] [] [] (-1.0) with
    | readable, _, _ when List.mem t.done_r readable ->
      ignore (Unix.read t.done_r buf 0 1 : int)
    | _ -> go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    request_shutdown t;
    Option.iter Thread.join t.acceptor;
    t.acceptor <- None;
    (* the dispatchers drain: in-flight jobs see their cancel tokens and
       answer quickly, then each thread observes shutting_down. The
       supervisor drains its death list first (it may still send
       terminal errors and must not respawn), then exits *)
    Mutex.lock t.lock;
    Condition.broadcast t.cond;
    Condition.broadcast t.sup_cond;
    Mutex.unlock t.lock;
    Option.iter Thread.join t.supervisor;
    t.supervisor <- None;
    Array.iter
      (fun slot ->
        Option.iter Thread.join slot.th;
        slot.th <- None)
      t.slots;
    (* whatever is still queued can no longer run *)
    Mutex.lock t.lock;
    let orphans = t.queue in
    t.queue <- [];
    let conns = t.conns in
    let readers = t.readers in
    set_gauges t;
    Mutex.unlock t.lock;
    List.iter
      (fun p ->
        journal_quiet t (Journal.Cancelled { id = p.id });
        send_owner p
          (P.Err
             {
               code = P.Shutting_down;
               message = "server is shutting down";
               id = Some p.id;
               retry_after_s = None;
             }))
      orphans;
    (* nudge the readers off their blocking reads, then join them *)
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join readers;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.stop_r; t.stop_w; t.done_r; t.done_w ];
    Option.iter Journal.close t.journal;
    Obs.Statsd.forget_unlink_on_sigterm t.socket;
    try Unix.unlink t.socket with Unix.Unix_error _ -> ()
  end
