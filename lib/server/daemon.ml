(* The long-lived verification server.

   One Unix-domain listener, one reader systhread per client, N
   dispatcher systhreads executing jobs (through the Par pool when one
   is given — each dispatcher submits one task and awaits it, so with a
   pool of J units roughly J jobs make progress on distinct domains).
   Shared state (the pending queue, the in-flight table, the client
   registry) lives behind one mutex + condvar; the result cache and the
   warm-session store have their own locks.

   Scheduling is FIFO with aging: the queue is scanned for the lowest
   effective priority [priority - age/aging_s], ties broken by arrival
   order, so a high-priority stream cannot starve earlier cheap
   requests forever. Cancellation is cooperative end to end: every job
   owns a Par.Cancel token, installed as the Budget's cancel hook (and,
   through Govern.limits_of_meter, as the in-flight solver's stop
   callback), so an explicit cancel, a client disconnect, or shutdown
   stops a running solver within a poll interval.

   Write-side discipline: a reader holds the connection's write lock
   across [check + enqueue + ack], so a dispatcher (which takes the
   same lock to write the result) can never put a result on the wire
   before its ack. Lock order is always conn.wlock -> t.lock; the
   dispatcher sends while holding neither. *)

module P = Protocol

let m_requests = Obs.Metrics.counter "server.requests"
let m_done = Obs.Metrics.counter "server.requests_done"
let m_cancelled = Obs.Metrics.counter "server.requests_cancelled"
let m_faults = Obs.Metrics.counter "server.requests_faulted"
let m_request_ms = Obs.Metrics.histogram "server.request_ms"
let m_inflight = Obs.Metrics.gauge "server.requests_inflight"
let m_queue_depth = Obs.Metrics.gauge "server.queue_depth"

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;
  mutable alive : bool;
}

type pending = {
  id : string;
  owner : conn;
  spec : Jobs.spec;
  cache_key : string;
  timeout : float option;
  max_conflicts : int option;
  priority : int;
  enqueued : float;
  token : Par.Cancel.t;
}

type t = {
  socket : string;
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr; (* wakes the acceptor *)
  stop_w : Unix.file_descr;
  done_r : Unix.file_descr; (* wakes [wait] *)
  done_w : Unix.file_descr;
  lock : Mutex.t;
  cond : Condition.t;
  mutable queue : pending list; (* arrival order *)
  inflight : (string, pending) Hashtbl.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable shutting_down : bool;
  cache : Cache.t;
  warm : Warm.t;
  pool : Par.Pool.t option;
  aging_s : float;
  mutable dispatchers : Thread.t list;
  mutable acceptor : Thread.t option;
  mutable stopped : bool;
}

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let send conn resp =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      if conn.alive then
        try write_all conn.fd (P.response_to_line resp)
        with Unix.Unix_error _ -> conn.alive <- false)

let set_gauges t =
  (* caller holds t.lock *)
  Obs.Metrics.set_gauge m_queue_depth (float_of_int (List.length t.queue));
  Obs.Metrics.set_gauge m_inflight (float_of_int (Hashtbl.length t.inflight))

(* ----- scheduler ----- *)

(* Lowest effective priority wins; the queue is kept in arrival order,
   so the first minimum found is also the oldest. *)
let pick_best t =
  match t.queue with
  | [] -> None
  | first :: _ ->
    let now = Unix.gettimeofday () in
    let eff p =
      float_of_int p.priority -. ((now -. p.enqueued) /. t.aging_s)
    in
    let best =
      List.fold_left
        (fun acc p -> if eff p < eff acc then p else acc)
        first t.queue
    in
    t.queue <- List.filter (fun p -> p != best) t.queue;
    Some best

let err_of_exn = function
  | Fault.Injected ->
    (P.Fault_injected, "injected fault: the job died before its verdict")
  | Failure msg -> (P.Job_failed, msg)
  | e -> (P.Job_failed, Printexc.to_string e)

let execute t (p : pending) =
  let t0 = Unix.gettimeofday () in
  let fail code message =
    send p.owner (P.Err { code; message; id = Some p.id })
  in
  if Par.Cancel.is_set p.token then begin
    Obs.Metrics.incr m_cancelled;
    fail P.Cancelled (Printf.sprintf "job %s cancelled" p.id)
  end
  else if Fault.fire Fault.Serve_job then begin
    Obs.Metrics.incr m_faults;
    fail P.Fault_injected "injected fault: the job died before its verdict"
  end
  else begin
    let budget =
      Budget.limited ?seconds:p.timeout ?conflicts:p.max_conflicts
        ~cancel:(fun () -> Par.Cancel.is_set p.token)
        ()
    in
    (* the loop inside the job stays sequential (?pool is not passed
       down): parallelism comes from running whole jobs on distinct
       pool units, and verdicts stay identical to a --jobs 1 CLI run *)
    let run () = Jobs.run ~warm:t.warm ~budget p.spec in
    match
      match t.pool with
      | Some pool -> Par.await pool (Par.submit pool run)
      | None -> run ()
    with
    | exception e ->
      let code, message = err_of_exn e in
      if code = P.Fault_injected then Obs.Metrics.incr m_faults;
      fail code message
    | r ->
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Obs.Metrics.observe m_request_ms (int_of_float ms);
      if Par.Cancel.is_set p.token then begin
        Obs.Metrics.incr m_cancelled;
        fail P.Cancelled (Printf.sprintf "job %s cancelled" p.id)
      end
      else begin
        if r.Jobs.cacheable then
          Cache.store t.cache p.cache_key ~verdict:r.Jobs.verdict
            ~code:r.Jobs.code;
        Obs.Metrics.incr m_done;
        send p.owner
          (P.Result
             {
               id = p.id;
               verdict = r.Jobs.verdict;
               code = r.Jobs.code;
               cached = false;
               ms;
             })
      end
  end

let rec dispatcher t =
  Mutex.lock t.lock;
  let rec next () =
    if t.shutting_down then None
    else
      match pick_best t with
      | Some p -> Some p
      | None ->
        Condition.wait t.cond t.lock;
        next ()
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some p ->
    Hashtbl.replace t.inflight p.id p;
    set_gauges t;
    Mutex.unlock t.lock;
    (try execute t p
     with e ->
       send p.owner
         (P.Err { code = P.Job_failed; message = Printexc.to_string e;
                  id = Some p.id }));
    Mutex.lock t.lock;
    Hashtbl.remove t.inflight p.id;
    set_gauges t;
    Mutex.unlock t.lock;
    dispatcher t

(* ----- shutdown plumbing ----- *)

let request_shutdown t =
  Mutex.lock t.lock;
  let first = not t.shutting_down in
  t.shutting_down <- true;
  if first then begin
    (* stop in-flight work quickly; each job answers Cancelled *)
    Hashtbl.iter (fun _ p -> Par.Cancel.set p.token) t.inflight;
    Condition.broadcast t.cond
  end;
  Mutex.unlock t.lock;
  if first then begin
    (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1 : int)
     with Unix.Unix_error _ -> ());
    try ignore (Unix.write t.done_w (Bytes.of_string "x") 0 1 : int)
    with Unix.Unix_error _ -> ()
  end

(* ----- per-client reader ----- *)

let drop_client t conn =
  Mutex.lock t.lock;
  (* a vanished client cannot read results: cancel everything it owns *)
  let mine, rest = List.partition (fun p -> p.owner == conn) t.queue in
  t.queue <- rest;
  List.iter (fun p -> Par.Cancel.set p.token) mine;
  Hashtbl.iter
    (fun _ p -> if p.owner == conn then Par.Cancel.set p.token)
    t.inflight;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  if mine <> [] then Obs.Metrics.add m_cancelled (List.length mine);
  set_gauges t;
  Mutex.unlock t.lock;
  Mutex.lock conn.wlock;
  conn.alive <- false;
  Mutex.unlock conn.wlock;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let handle_submit t conn (s : P.submit) =
  Obs.Metrics.incr m_requests;
  let cache_key = Jobs.key s.P.spec in
  (* hold the write lock across decide + ack (+ cached result) so a
     dispatcher's result can never overtake the ack on the wire *)
  Mutex.lock conn.wlock;
  let replies =
    Mutex.lock t.lock;
    let answer =
      if t.shutting_down then
        [
          P.Err
            {
              code = P.Shutting_down;
              message = "server is shutting down";
              id = Some s.P.id;
            };
        ]
      else if
        Hashtbl.mem t.inflight s.P.id
        || List.exists (fun p -> p.id = s.P.id) t.queue
      then
        [
          P.Err
            {
              code = P.Duplicate_id;
              message =
                Printf.sprintf "a job named %S is already live" s.P.id;
              id = Some s.P.id;
            };
        ]
      else begin
        match Cache.find t.cache cache_key with
        | Some (verdict, code) ->
          [
            P.Ack s.P.id;
            P.Result { id = s.P.id; verdict; code; cached = true; ms = 0.0 };
          ]
        | None ->
          t.queue <-
            t.queue
            @ [
                {
                  id = s.P.id;
                  owner = conn;
                  spec = s.P.spec;
                  cache_key;
                  timeout = s.P.timeout;
                  max_conflicts = s.P.max_conflicts;
                  priority = s.P.priority;
                  enqueued = Unix.gettimeofday ();
                  token = Par.Cancel.create ();
                };
              ];
          set_gauges t;
          Condition.signal t.cond;
          [ P.Ack s.P.id ]
      end
    in
    Mutex.unlock t.lock;
    answer
  in
  List.iter
    (fun resp ->
      if conn.alive then
        try write_all conn.fd (P.response_to_line resp)
        with Unix.Unix_error _ -> conn.alive <- false)
    replies;
  Mutex.unlock conn.wlock

let handle_cancel t conn id =
  let outcome =
    Mutex.lock t.lock;
    let r =
      match List.find_opt (fun p -> p.id = id) t.queue with
      | Some p ->
        t.queue <- List.filter (fun q -> q != p) t.queue;
        Par.Cancel.set p.token;
        set_gauges t;
        `Dequeued p
      | None -> (
        match Hashtbl.find_opt t.inflight id with
        | Some p ->
          Par.Cancel.set p.token;
          `Running
        | None -> `Unknown)
    in
    Mutex.unlock t.lock;
    r
  in
  match outcome with
  | `Dequeued p ->
    Obs.Metrics.incr m_cancelled;
    send conn (P.Ack id);
    (* the owner (usually the same connection) learns the job is gone *)
    send p.owner
      (P.Err
         {
           code = P.Cancelled;
           message = Printf.sprintf "job %s cancelled" id;
           id = Some id;
         })
  | `Running -> send conn (P.Ack id) (* its dispatcher answers Cancelled *)
  | `Unknown ->
    send conn
      (P.Err
         {
           code = P.Unknown_job;
           message = Printf.sprintf "no live job named %S" id;
           id = Some id;
         })

let stats_json t =
  Mutex.lock t.lock;
  let queued = List.length t.queue in
  let inflight = Hashtbl.length t.inflight in
  let clients = List.length t.conns in
  Mutex.unlock t.lock;
  Obs.Json.Obj
    [
      ("queued", Obs.Json.Int queued);
      ("inflight", Obs.Json.Int inflight);
      ("clients", Obs.Json.Int clients);
      ("done", Obs.Json.Int (Obs.Metrics.counter_value m_done));
      ("cancelled", Obs.Json.Int (Obs.Metrics.counter_value m_cancelled));
      ("faulted", Obs.Json.Int (Obs.Metrics.counter_value m_faults));
      ("cache_hits", Obs.Json.Int (Cache.hits ()));
      ("cache_misses", Obs.Json.Int (Cache.misses ()));
      ("warm_hits", Obs.Json.Int (Warm.hits ()));
      ("warm_families", Obs.Json.Int (Warm.families t.warm));
    ]

let handle_line t conn ~overflowed line =
  if overflowed then
    send conn
      (P.Err
         {
           code = P.Oversized;
           message =
             Printf.sprintf "request line exceeds %d bytes" P.max_line_bytes;
           id = None;
         })
  else
    match P.parse_request line with
    | Error (code, message) -> send conn (P.Err { code; message; id = None })
    | Ok P.Ping -> send conn P.Pong
    | Ok P.Stats -> send conn (P.StatsReply (stats_json t))
    | Ok P.Shutdown ->
      send conn P.Bye;
      request_shutdown t
    | Ok (P.Cancel id) -> handle_cancel t conn id
    | Ok (P.Submit s) -> handle_submit t conn s

let reader t conn =
  let chunk = Bytes.create 4096 in
  let line = Buffer.create 256 in
  let overflowed = ref false in
  let feed b =
    if b = '\n' then begin
      let s = Buffer.contents line in
      Buffer.clear line;
      let over = !overflowed in
      overflowed := false;
      if s <> "" || over then handle_line t conn ~overflowed:over s
    end
    else if Buffer.length line >= P.max_line_bytes then overflowed := true
    else Buffer.add_char line b
  in
  let rec loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      for i = 0 to n - 1 do
        feed (Bytes.get chunk i)
      done;
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  drop_client t conn

(* ----- acceptor ----- *)

let acceptor t =
  let buf = Bytes.create 1 in
  let rec loop () =
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
    | readable, _, _ when List.mem t.stop_r readable ->
      ignore (Unix.read t.stop_r buf 0 1 : int)
    | readable, _, _ when List.mem t.listen_fd readable ->
      (match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ ->
        let conn = { fd; wlock = Mutex.create (); alive = true } in
        Mutex.lock t.lock;
        t.conns <- conn :: t.conns;
        t.readers <- Thread.create (fun () -> reader t conn) () :: t.readers;
        Mutex.unlock t.lock
      | exception Unix.Unix_error _ -> ());
      loop ()
    | _ -> loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ----- lifecycle ----- *)

let start ?pool ?dispatchers ?(cache_capacity = 256) ?(aging_s = 5.0) ~socket
    () =
  if aging_s <= 0.0 then invalid_arg "Daemon.start: aging_s must be positive";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX socket);
    Unix.listen fd 16
  with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot serve on %s: %s" socket (Unix.error_message err))
  | () ->
    let stop_r, stop_w = Unix.pipe ~cloexec:true () in
    let done_r, done_w = Unix.pipe ~cloexec:true () in
    let width =
      match dispatchers with
      | Some n ->
        if n < 1 then invalid_arg "Daemon.start: dispatchers must be >= 1";
        n
      | None -> ( match pool with Some p -> Par.Pool.jobs p | None -> 1)
    in
    let t =
      {
        socket;
        listen_fd = fd;
        stop_r;
        stop_w;
        done_r;
        done_w;
        lock = Mutex.create ();
        cond = Condition.create ();
        queue = [];
        inflight = Hashtbl.create 16;
        conns = [];
        readers = [];
        shutting_down = false;
        cache = Cache.create ~capacity:cache_capacity ();
        warm = Warm.create ();
        pool;
        aging_s;
        dispatchers = [];
        acceptor = None;
        stopped = false;
      }
    in
    Obs.Statsd.unlink_on_sigterm socket;
    t.dispatchers <-
      List.init width (fun _ -> Thread.create (fun () -> dispatcher t) ());
    t.acceptor <- Some (Thread.create (fun () -> acceptor t) ());
    Ok t

let wait t =
  let buf = Bytes.create 1 in
  let rec go () =
    match Unix.select [ t.done_r ] [] [] (-1.0) with
    | readable, _, _ when List.mem t.done_r readable ->
      ignore (Unix.read t.done_r buf 0 1 : int)
    | _ -> go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    request_shutdown t;
    Option.iter Thread.join t.acceptor;
    t.acceptor <- None;
    (* the dispatchers drain: in-flight jobs see their cancel tokens and
       answer quickly, then each thread observes shutting_down *)
    Mutex.lock t.lock;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    List.iter Thread.join t.dispatchers;
    t.dispatchers <- [];
    (* whatever is still queued can no longer run *)
    Mutex.lock t.lock;
    let orphans = t.queue in
    t.queue <- [];
    let conns = t.conns in
    let readers = t.readers in
    set_gauges t;
    Mutex.unlock t.lock;
    List.iter
      (fun p ->
        send p.owner
          (P.Err
             {
               code = P.Shutting_down;
               message = "server is shutting down";
               id = Some p.id;
             }))
      orphans;
    (* nudge the readers off their blocking reads, then join them *)
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join readers;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.stop_r; t.stop_w; t.done_r; t.done_w ];
    Obs.Statsd.forget_unlink_on_sigterm t.socket;
    try Unix.unlink t.socket with Unix.Unix_error _ -> ()
  end
