(* Durable job journal: an append-only write-ahead log under the daemon.

   One record per line, [<md5-hex> <json>\n] — the checksum covers the
   raw JSON payload bytes, so replay never depends on the JSON printer
   round-tripping floats byte-for-byte. A [submitted] record is fsync'd
   before the daemon acks the submission; [started]/[done]/[cancelled]
   records ride along unsynced (losing a tail of them only means a
   completed job is replayed, never that an acked job is lost).

   Replay is truncated-tail tolerant: a half-written last line (the
   crash case) or any corrupt line stops replay at the last valid
   record, and everything before it is recovered losslessly. Recovery
   also compacts: the rewritten journal holds one [done] line per still
   cacheable verdict and one [submitted] line per job that was acked
   but never reached a terminal record, so the file stays proportional
   to live state across restarts instead of growing forever.

   A sibling [<path>.lock] file under [Unix.lockf] serializes daemons:
   the lock dies with the process, so a [kill -9] never wedges the next
   start, while two live daemons can never interleave appends. *)

module J = Obs.Json

type submit = {
  sj_id : string;
  sj_key : string;
  sj_spec : Jobs.spec;
  sj_timeout : float option;
  sj_max_conflicts : int option;
  sj_priority : int;
  sj_starts : int;
}

type record =
  | Submitted of submit
  | Started of { id : string }
  | Done of {
      id : string;
      key : string;
      verdict : string;
      code : int;
      cacheable : bool;
    }
  | Cancelled of { id : string }

type t = {
  fd : Unix.file_descr;
  lock_fd : Unix.file_descr;
  path : string;
  jlock : Mutex.t;
  mutable closed : bool;
}

let m_records = Obs.Metrics.counter "server.journal_records"
let m_replayed = Obs.Metrics.counter "server.journal_replayed_jobs"
let m_recovered = Obs.Metrics.counter "server.journal_recovered_results"
let m_dropped = Obs.Metrics.counter "server.journal_dropped_lines"

(* ----- record codec ----- *)

let record_to_json = function
  | Submitted s ->
    J.Obj
      ([
         ("op", J.String "submitted");
         ("id", J.String s.sj_id);
         ("key", J.String s.sj_key);
         ("job", Jobs.to_json s.sj_spec);
         ("priority", J.Int s.sj_priority);
         ("starts", J.Int s.sj_starts);
       ]
      @ (match s.sj_timeout with
        | Some x -> [ ("timeout", J.Float x) ]
        | None -> [])
      @
      match s.sj_max_conflicts with
      | Some n -> [ ("max_conflicts", J.Int n) ]
      | None -> [])
  | Started { id } -> J.Obj [ ("op", J.String "started"); ("id", J.String id) ]
  | Done d ->
    J.Obj
      [
        ("op", J.String "done");
        ("id", J.String d.id);
        ("key", J.String d.key);
        ("verdict", J.String d.verdict);
        ("code", J.Int d.code);
        ("cacheable", J.Bool d.cacheable);
      ]
  | Cancelled { id } ->
    J.Obj [ ("op", J.String "cancelled"); ("id", J.String id) ]

let record_of_json j =
  let str name = Option.bind (J.member name j) J.to_str in
  let int name = Option.bind (J.member name j) J.to_int in
  match str "op" with
  | Some "submitted" -> (
    match (str "id", str "key", J.member "job" j) with
    | Some id, Some key, Some job -> (
      match Jobs.of_json job with
      | Error msg -> Error ("bad job: " ^ msg)
      | Ok spec ->
        Ok
          (Submitted
             {
               sj_id = id;
               sj_key = key;
               sj_spec = spec;
               sj_timeout = Option.bind (J.member "timeout" j) J.to_float;
               sj_max_conflicts = int "max_conflicts";
               sj_priority = Option.value ~default:0 (int "priority");
               sj_starts = Option.value ~default:0 (int "starts");
             }))
    | _ -> Error "submitted record missing id/key/job")
  | Some "started" -> (
    match str "id" with
    | Some id -> Ok (Started { id })
    | None -> Error "started record missing id")
  | Some "done" -> (
    match (str "id", str "key", str "verdict", int "code") with
    | Some id, Some key, Some verdict, Some code ->
      let cacheable =
        match J.member "cacheable" j with Some (J.Bool b) -> b | _ -> false
      in
      Ok (Done { id; key; verdict; code; cacheable })
    | _ -> Error "done record missing id/key/verdict/code")
  | Some "cancelled" -> (
    match str "id" with
    | Some id -> Ok (Cancelled { id })
    | None -> Error "cancelled record missing id")
  | Some op -> Error (Printf.sprintf "unknown journal op %S" op)
  | None -> Error "journal record without an op"

let line_of_record r =
  let payload = J.to_string (record_to_json r) in
  Digest.to_hex (Digest.string payload) ^ " " ^ payload ^ "\n"

let parse_line line =
  match String.index_opt line ' ' with
  | None -> Error "journal line without a checksum"
  | Some i ->
    let sum = String.sub line 0 i in
    let payload = String.sub line (i + 1) (String.length line - i - 1) in
    if String.length sum <> 32 || Digest.to_hex (Digest.string payload) <> sum
    then Error "journal line checksum mismatch"
    else (
      match J.parse payload with
      | Error msg -> Error ("journal line not JSON: " ^ msg)
      | Ok j -> record_of_json j)

(* ----- replay ----- *)

type replayed = {
  rj_pending : submit list;  (** acked, no terminal record; submit order *)
  rj_results : (string * string * int) list;
      (** cacheable verdicts: (key, verdict, code), oldest first *)
  rj_records : int;
  rj_dropped : int;
}

let empty_replayed =
  { rj_pending = []; rj_results = []; rj_records = 0; rj_dropped = 0 }

let replay path =
  if not (Sys.file_exists path) then Ok empty_replayed
  else
    match open_in_bin path with
    | exception Sys_error msg -> Error msg
    | ic ->
      let pending : (string, submit) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] (* pending ids, newest first *) in
      let results = ref [] in
      let records = ref 0 in
      let dropped = ref 0 in
      let apply = function
        | Submitted s ->
          if not (Hashtbl.mem pending s.sj_id) then begin
            Hashtbl.replace pending s.sj_id s;
            order := s.sj_id :: !order
          end
        | Started { id } -> (
          match Hashtbl.find_opt pending id with
          | Some s ->
            Hashtbl.replace pending id { s with sj_starts = s.sj_starts + 1 }
          | None -> ())
        | Done d ->
          Hashtbl.remove pending d.id;
          if d.cacheable then results := (d.key, d.verdict, d.code) :: !results
        | Cancelled { id } -> Hashtbl.remove pending id
      in
      let rec read_lines () =
        match input_line ic with
        | exception End_of_file -> ()
        | line -> (
          match parse_line line with
          | Ok r ->
            incr records;
            apply r;
            read_lines ()
          | Error _ ->
            (* tolerate a truncated or corrupt tail: count every
               remaining line as dropped and stop — records before the
               first bad line are recovered losslessly *)
            incr dropped;
            let rec drain () =
              match input_line ic with
              | exception End_of_file -> ()
              | _ ->
                incr dropped;
                drain ()
            in
            drain ())
      in
      read_lines ();
      close_in_noerr ic;
      let rj_pending =
        List.rev !order
        |> List.filter_map (fun id -> Hashtbl.find_opt pending id)
      in
      Ok
        {
          rj_pending;
          rj_results = List.rev !results;
          rj_records = !records;
          rj_dropped = !dropped;
        }

(* ----- open / recover ----- *)

let lock_path path = path ^ ".lock"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

(* [lockf] records are per-process: a second open of the same journal
   from this process would be granted (and closing either fd drops the
   lock). The registry below closes that hole — cross-process exclusion
   stays with [lockf], same-process exclusion is this table. *)
let held : (string, unit) Hashtbl.t = Hashtbl.create 4
let held_mu = Mutex.create ()

let held_add path =
  Mutex.lock held_mu;
  let fresh = not (Hashtbl.mem held path) in
  if fresh then Hashtbl.replace held path ();
  Mutex.unlock held_mu;
  fresh

let held_remove path =
  Mutex.lock held_mu;
  Hashtbl.remove held path;
  Mutex.unlock held_mu

let take_lock path =
  if not (held_add path) then
    Error (Printf.sprintf "journal %s is locked by another daemon" path)
  else
    match
      Unix.openfile (lock_path path) [ Unix.O_CREAT; Unix.O_RDWR ] 0o644
    with
    | exception Unix.Unix_error (e, _, _) ->
      held_remove path;
      Error
        (Printf.sprintf "cannot open journal lock %s: %s" (lock_path path)
           (Unix.error_message e))
    | lock_fd -> (
      match Unix.lockf lock_fd Unix.F_TLOCK 0 with
      | () -> Ok lock_fd
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
        (try Unix.close lock_fd with Unix.Unix_error _ -> ());
        held_remove path;
        Error
          (Printf.sprintf "journal %s is locked by another daemon" path)
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close lock_fd with Unix.Unix_error _ -> ());
        held_remove path;
        Error
          (Printf.sprintf "cannot lock journal %s: %s" path
             (Unix.error_message e)))

let compact path (r : replayed) =
  let tmp = path ^ ".tmp" in
  match
    Unix.openfile tmp [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_TRUNC ] 0o644
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot write %s: %s" tmp (Unix.error_message e))
  | fd -> (
    match
      List.iter
        (fun (key, verdict, code) ->
          write_all fd
            (line_of_record
               (Done { id = ""; key; verdict; code; cacheable = true })))
        r.rj_results;
      List.iter
        (fun s -> write_all fd (line_of_record (Submitted s)))
        r.rj_pending;
      Unix.fsync fd
    with
    | () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try
         Unix.rename tmp path;
         Ok ()
       with Unix.Unix_error (e, _, _) ->
         Error
           (Printf.sprintf "cannot replace %s: %s" path (Unix.error_message e)))
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot write %s: %s" tmp (Unix.error_message e)))

let recover ~path =
  match take_lock path with
  | Error _ as e -> e
  | Ok lock_fd -> (
    let fail msg =
      (try Unix.close lock_fd with Unix.Unix_error _ -> ());
      held_remove path;
      Error msg
    in
    match replay path with
    | Error msg -> fail ("journal replay failed: " ^ msg)
    | Ok r -> (
      match compact path r with
      | Error msg -> fail msg
      | Ok () -> (
        match
          Unix.openfile path [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_APPEND ]
            0o644
        with
        | exception Unix.Unix_error (e, _, _) ->
          fail
            (Printf.sprintf "cannot open journal %s: %s" path
               (Unix.error_message e))
        | fd ->
          Obs.Metrics.add m_replayed (List.length r.rj_pending);
          Obs.Metrics.add m_recovered (List.length r.rj_results);
          Obs.Metrics.add m_dropped r.rj_dropped;
          Ok
            ( { fd; lock_fd; path; jlock = Mutex.create (); closed = false },
              r ))))

let append ?(sync = false) t r =
  if Fault.fire Fault.Journal_write then raise Fault.Injected;
  let line = line_of_record r in
  Mutex.lock t.jlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.jlock)
    (fun () ->
      if t.closed then failwith "journal closed";
      write_all t.fd line;
      if sync then Unix.fsync t.fd);
  Obs.Metrics.incr m_records

let close t =
  Mutex.lock t.jlock;
  if not t.closed then begin
    t.closed <- true;
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    (* release before unlink so a racing daemon either sees the lock or
       a fresh lock file, never a locked orphan *)
    (try Unix.lockf t.lock_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
    (try Unix.close t.lock_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink (lock_path t.path) with Unix.Unix_error _ -> ());
    held_remove t.path
  end;
  Mutex.unlock t.jlock
