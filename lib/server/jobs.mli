(** Named verification jobs over the six sciduction loops.

    A {!spec} is a serializable description of one problem — the same
    information the CLI flags carry — and {!run} is the single runner
    both front-ends share: the CLI's loop subcommands and the daemon's
    dispatchers call it with identical arguments, so a served verdict
    is bit-identical to the one-shot CLI verdict by construction.

    Specs are content-addressed: {!key} digests the canonical problem
    content plus the query bounds (the result-cache key) and {!family}
    digests the content alone (the warm-session key), so syntactically
    different submissions of the same system share cache entries and
    warm sessions. *)

type bmc_system = {
  shift : int option;
      (** [Some len]: the (safe) [len]-stage shift register; [None]:
          the mod counter below *)
  junk : int;
  bits : int;
  modulus : int;
  bad_value : int;
}

type spec =
  | Deobfuscate of { program : [ `P1 | `P2 ]; width : int }
  | Timing of { source : string option; bits : int; tau : int option }
      (** [source]: concrete program syntax to analyze ([None] = the
          built-in modexp with base pinned to 123); [bits] is the
          unrolling bound *)
  | Cegar of { junk : int; bits : int; modulus : int; bad_value : int }
  | Bmc of { system : bmc_system; max_depth : int }
  | Invgen of { circuit : [ `Ring | `Mod5 | `Twin | `Stuck ]; n : int }
  | Lstar of { states : int }

(** A finished job: the exact verdict text the CLI prints on stdout,
    its exit code, and whether the result may enter the cache
    ([cacheable] is false for EXHAUSTED partials, whose content depends
    on the budget that cut them short). *)
type outcome = { verdict : string; code : int; cacheable : bool }

val kind : spec -> string

val to_json : spec -> Obs.Json.t
val of_json : Obs.Json.t -> (spec, string) result
(** Field defaults mirror the CLI flag defaults, so [{"kind":"bmc"}]
    denotes the same job as a bare [sciduction_cli bmc]. *)

val key : spec -> string
(** Content digest including query bounds: the result-cache key. *)

val family : spec -> string
(** Content digest excluding bounds: the warm-session key. *)

val run :
  ?pool:Par.Pool.t -> ?warm:Warm.t -> ?budget:Budget.t -> spec -> outcome
(** Execute the job. [?pool] fans the loop itself out (the CLI's
    [--jobs] path); the daemon instead leaves the loop sequential and
    runs whole jobs concurrently, which keeps every verdict text
    width-independent. [?warm] (daemon only) resumes BMC sweeps from
    the family's warm session at the proved-prefix frontier. Raises
    [Failure] on an unrunnable spec (e.g. a timing source that does not
    parse). *)
