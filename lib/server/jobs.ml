(* Named verification jobs: one serializable spec per sciduction loop,
   plus the single runner both front-ends share.

   The CLI's loop subcommands and the daemon's dispatchers execute the
   SAME [run] below, so a served verdict is bit-identical to the
   one-shot CLI verdict by construction, not by testing alone: there is
   exactly one place that turns a loop outcome into a verdict string.
   [run] keeps the loops sequential unless handed a pool; the daemon
   passes [?pool:None] into the loops and gets its parallelism by
   running whole jobs concurrently instead, which also keeps bmc traces
   (and hence verdict texts) independent of the server's width.

   Specs also carry their content address: [key] digests the canonical
   problem content plus the query bounds (the cache key), [family]
   digests the content alone (the warm-session key), so two submissions
   that spell the same system differently still share cache entries and
   warm sessions. *)

module J = Obs.Json
module B = Prog.Benchmarks

type bmc_system = {
  shift : int option;  (* Some len: shift register; None: mod counter *)
  junk : int;
  bits : int;
  modulus : int;
  bad_value : int;
}

type spec =
  | Deobfuscate of { program : [ `P1 | `P2 ]; width : int }
  | Timing of { source : string option; bits : int; tau : int option }
  | Cegar of { junk : int; bits : int; modulus : int; bad_value : int }
  | Bmc of { system : bmc_system; max_depth : int }
  | Invgen of { circuit : [ `Ring | `Mod5 | `Twin | `Stuck ]; n : int }
  | Lstar of { states : int }

type outcome = { verdict : string; code : int; cacheable : bool }

let kind = function
  | Deobfuscate _ -> "deobfuscate"
  | Timing _ -> "timing"
  | Cegar _ -> "cegar"
  | Bmc _ -> "bmc"
  | Invgen _ -> "invgen"
  | Lstar _ -> "lstar"

(* ----- JSON codec -----

   Field defaults mirror the CLI flag defaults, so {"kind":"bmc"} is
   the same job as a bare `sciduction_cli bmc`. *)

let circuit_name = function
  | `Ring -> "ring"
  | `Mod5 -> "mod5"
  | `Twin -> "twin"
  | `Stuck -> "stuck"

let program_name = function `P1 -> "p1" | `P2 -> "p2"

let to_json spec =
  let ints l = List.map (fun (k, v) -> (k, J.Int v)) l in
  match spec with
  | Deobfuscate { program; width } ->
    J.Obj
      [
        ("kind", J.String "deobfuscate");
        ("program", J.String (program_name program));
        ("width", J.Int width);
      ]
  | Timing { source; bits; tau } ->
    J.Obj
      (("kind", J.String "timing")
       :: ("bits", J.Int bits)
       :: ((match tau with Some t -> [ ("tau", J.Int t) ] | None -> [])
          @ match source with
            | Some s -> [ ("source", J.String s) ]
            | None -> []))
  | Cegar { junk; bits; modulus; bad_value } ->
    J.Obj
      (("kind", J.String "cegar")
      :: ints
           [
             ("junk", junk); ("bits", bits); ("modulus", modulus);
             ("bad", bad_value);
           ])
  | Bmc { system = s; max_depth } ->
    J.Obj
      (("kind", J.String "bmc")
       :: ((match s.shift with Some len -> [ ("shift", J.Int len) ] | None -> [])
          @ ints
              [
                ("junk", s.junk); ("bits", s.bits); ("modulus", s.modulus);
                ("bad", s.bad_value); ("max_depth", max_depth);
              ]))
  | Invgen { circuit; n } ->
    J.Obj
      [
        ("kind", J.String "invgen");
        ("circuit", J.String (circuit_name circuit));
        ("n", J.Int n);
      ]
  | Lstar { states } ->
    J.Obj [ ("kind", J.String "lstar"); ("states", J.Int states) ]

let ( let* ) = Result.bind

let int_field ?default j name =
  match J.member name j with
  | Some v -> (
    match J.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S must be an integer" name))
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing field %S" name))

let opt_int_field j name =
  match J.member name j with
  | None -> Ok None
  | Some v -> (
    match J.to_int v with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let str_field ?default j name =
  match J.member name j with
  | Some v -> (
    match J.to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S must be a string" name))
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing field %S" name))

let positive what n =
  if n >= 1 then Ok n else Error (Printf.sprintf "%s must be >= 1" what)

let of_json j =
  let* k = str_field j "kind" in
  match k with
  | "deobfuscate" ->
    let* p = str_field ~default:"p2" j "program" in
    let* program =
      match p with
      | "p1" -> Ok `P1
      | "p2" -> Ok `P2
      | other -> Error (Printf.sprintf "unknown program %S (p1 or p2)" other)
    in
    let* width = Result.bind (int_field ~default:8 j "width") (positive "width") in
    Ok (Deobfuscate { program; width })
  | "timing" ->
    let* bits = Result.bind (int_field ~default:6 j "bits") (positive "bits") in
    let* tau = opt_int_field j "tau" in
    let* source =
      match J.member "source" j with
      | None -> Ok None
      | Some v -> (
        match J.to_str v with
        | Some s -> Ok (Some s)
        | None -> Error "field \"source\" must be a string")
    in
    Ok (Timing { source; bits; tau })
  | "cegar" ->
    let* junk = int_field ~default:8 j "junk" in
    let* bits = Result.bind (int_field ~default:3 j "bits") (positive "bits") in
    let* modulus = int_field ~default:6 j "modulus" in
    let* bad_value = int_field ~default:7 j "bad" in
    Ok (Cegar { junk; bits; modulus; bad_value })
  | "bmc" ->
    let* shift =
      match opt_int_field j "shift" with
      | Ok (Some len) -> Result.map Option.some (positive "shift" len)
      | other -> other
    in
    let* junk = int_field ~default:8 j "junk" in
    let* bits = Result.bind (int_field ~default:3 j "bits") (positive "bits") in
    let* modulus = int_field ~default:6 j "modulus" in
    let* bad_value = int_field ~default:7 j "bad" in
    let* max_depth = int_field ~default:16 j "max_depth" in
    Ok
      (Bmc
         { system = { shift; junk; bits; modulus; bad_value }; max_depth })
  | "invgen" ->
    let* c = str_field ~default:"mod5" j "circuit" in
    let* circuit =
      match c with
      | "ring" -> Ok `Ring
      | "mod5" -> Ok `Mod5
      | "twin" -> Ok `Twin
      | "stuck" -> Ok `Stuck
      | other ->
        Error
          (Printf.sprintf "unknown circuit %S (ring, mod5, twin or stuck)"
             other)
    in
    let* n = Result.bind (int_field ~default:4 j "n") (positive "n") in
    Ok (Invgen { circuit; n })
  | "lstar" ->
    let* states =
      Result.bind (int_field ~default:5 j "states") (positive "states")
    in
    Ok (Lstar { states })
  | other ->
    Error
      (Printf.sprintf
         "unknown job kind %S (deobfuscate, timing, cegar, bmc, invgen or \
          lstar)"
         other)

(* ----- content addressing ----- *)

let ts_fingerprint (ts : Mc.Ts.t) =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "l%d i%d init:" ts.Mc.Ts.num_latches ts.Mc.Ts.num_inputs;
  Array.iter
    (fun b -> Format.pp_print_char fmt (if b then '1' else '0'))
    ts.Mc.Ts.init;
  Array.iteri (fun i e -> Format.fprintf fmt " n%d=%a" i Mc.Ts.pp_expr e)
    ts.Mc.Ts.next;
  Format.fprintf fmt " bad=%a" Mc.Ts.pp_expr ts.Mc.Ts.bad;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let bmc_ts (s : bmc_system) =
  match s.shift with
  | Some len -> Mc.Systems.shift_register ~len
  | None ->
    Mc.Systems.mod_counter ~junk:s.junk ~bits:s.bits ~modulus:s.modulus
      ~bad_value:s.bad_value ()

let deobfuscate_problem program width =
  match program with
  | `P1 -> (B.interchange_obs_w ~width, Ogis.Component.fig8_p1, "fig8_p1")
  | `P2 -> (B.multiply45_obs_w ~width, Ogis.Component.fig8_p2, "fig8_p2")

let timing_problem source bits =
  match source with
  | Some text -> (
    match Prog.Syntax.parse text with
    | p -> (p, [])
    | exception Prog.Syntax.Parse_error { line; message } ->
      failwith (Printf.sprintf "timing source, line %d: %s" line message))
  | None -> (B.modexp ~bits (), [ ("base", 123) ])

(* The canonical problem content, bounds excluded: what a warm session
   may be shared across. *)
let content spec =
  match spec with
  | Deobfuscate { program; width } ->
    let obf, _library, libname = deobfuscate_problem program width in
    Printf.sprintf "deobfuscate|%s|w%d|%s"
      (Format.asprintf "%a" Prog.Lang.pp obf)
      width libname
  | Timing { source; bits; tau = _ } ->
    let program, pin = timing_problem source bits in
    Printf.sprintf "timing|%s|bound%d|pin:%s"
      (Format.asprintf "%a" Prog.Syntax.print program)
      bits
      (String.concat ","
         (List.map (fun (x, v) -> Printf.sprintf "%s=%d" x v) pin))
  | Cegar { junk; bits; modulus; bad_value } ->
    "cegar|"
    ^ ts_fingerprint
        (Mc.Systems.mod_counter ~junk ~bits ~modulus ~bad_value ())
  | Bmc { system; max_depth = _ } -> "bmc|" ^ ts_fingerprint (bmc_ts system)
  | Invgen { circuit; n } ->
    Printf.sprintf "invgen|%s|n%d" (circuit_name circuit) n
  | Lstar { states } -> Printf.sprintf "lstar|states%d" states

let bounds = function
  | Bmc { max_depth; _ } -> Printf.sprintf "|depth%d" max_depth
  | Timing { tau = Some t; _ } -> Printf.sprintf "|tau%d" t
  | _ -> ""

let family spec = Digest.to_hex (Digest.string (content spec))
let key spec = Digest.to_hex (Digest.string (content spec ^ bounds spec))

(* ----- the shared runner ----- *)

let exhausted reason =
  Printf.sprintf "EXHAUSTED (%s)" (Budget.reason_to_string reason)

let run_deobfuscate ?pool ~budget program width =
  let obf, library, _libname = deobfuscate_problem program width in
  Obs.info "obfuscated source:@.%a@.@." Prog.Lang.pp obf;
  match Ogis.Deobfuscate.run ?pool ~budget ~library obf with
  | Error (Ogis.Deobfuscate.Unrealizable _) ->
    {
      verdict = "synthesis failed: no library program fits the oracle";
      code = 1;
      cacheable = true;
    }
  | Error (Ogis.Deobfuscate.Exhausted p) ->
    {
      verdict =
        Printf.sprintf "%s: %d examples gathered, candidate %s"
          (exhausted p.Ogis.Synth.reason)
          (List.length p.Ogis.Synth.stats.Ogis.Synth.examples)
          (match p.Ogis.Synth.best with
          | Some _ -> "in hand"
          | None -> "none");
      code = 0;
      cacheable = false;
    }
  | Ok r ->
    Obs.info "re-synthesized in %.3fs (%d oracle queries):@.%a@."
      r.Ogis.Deobfuscate.seconds
      r.Ogis.Deobfuscate.stats.Ogis.Synth.oracle_queries Ogis.Straightline.pp
      r.Ogis.Deobfuscate.clean;
    let espec =
      {
        Ogis.Encode.width;
        ninputs = List.length obf.Prog.Lang.inputs;
        noutputs = List.length obf.Prog.Lang.outputs;
        library;
      }
    in
    let spec_fn =
      match program with
      | `P1 -> fun ts ->
          (match ts with [ s; d ] -> [ d; s ] | _ -> assert false)
      | `P2 -> fun ts ->
          (match ts with
          | [ y ] -> [ Smt.Bv.bmul y (Smt.Bv.const ~width 45) ]
          | _ -> assert false)
    in
    (match Ogis.Synth.verify_against espec r.Ogis.Deobfuscate.clean ~spec_fn with
    | Ok () ->
      {
        verdict = "verified equivalent to the specification";
        code = 0;
        cacheable = true;
      }
    | Error cex ->
      {
        verdict =
          Printf.sprintf "NOT equivalent; counterexample %s"
            (String.concat "," (List.map string_of_int cex));
        code = 1;
        cacheable = true;
      })

let run_timing ?pool ~budget source bits tau =
  let program, pin = timing_problem source bits in
  let pf = Microarch.Platform.create program in
  let platform = Microarch.Platform.time pf in
  let lines = Buffer.create 64 in
  let addf fmt =
    Printf.ksprintf
      (fun s ->
        if Buffer.length lines > 0 then Buffer.add_char lines '\n';
        Buffer.add_string lines s)
      fmt
  in
  let converged t =
    match Gametime.Analysis.wcet_opt t ~platform with
    | None ->
      addf "no feasible paths";
      1
    | Some w -> (
      Obs.info "basis paths: %d@." (List.length t.Gametime.Analysis.basis);
      addf "WCET %d cycles at %s" w.Gametime.Analysis.measured_cycles
        (String.concat ", "
           (List.map
              (fun (x, v) -> Printf.sprintf "%s=%d" x v)
              w.Gametime.Analysis.test));
      match tau with
      | None -> 0
      | Some tau -> (
        match Gametime.Analysis.answer_ta t ~platform ~tau with
        | `Yes ->
          addf "<TA>: execution time is always <= %d" tau;
          0
        | `No test ->
          addf "<TA>: NO — exp=%d takes %d cycles" (List.assoc "exp" test)
            (platform test);
          1))
  in
  let cacheable = ref true in
  let code =
    match
      Gametime.Analysis.analyze ~bound:bits ~seed:2012 ~pin ?pool ~budget
        ~platform program
    with
    | Budget.Converged t -> converged t
    | Budget.Exhausted { Gametime.Analysis.analysis; reason } ->
      cacheable := false;
      (match analysis with
      | None -> addf "%s: no basis path extracted" (exhausted reason)
      | Some t -> (
        addf "%s: truncated basis of %d paths" (exhausted reason)
          (List.length t.Gametime.Analysis.basis);
        match Gametime.Analysis.wcet_opt t ~platform with
        | Some w ->
          addf "longest predicted path so far: %d cycles"
            w.Gametime.Analysis.measured_cycles
        | None -> ()));
      0
  in
  { verdict = Buffer.contents lines; code; cacheable = !cacheable }

let run_cegar ~budget junk bits modulus bad_value =
  let t = Mc.Systems.mod_counter ~junk ~bits ~modulus ~bad_value () in
  Obs.info "system %s: %d latches@." t.Mc.Ts.name t.Mc.Ts.num_latches;
  match Mc.Cegar.verify ~budget t with
  | Budget.Converged (Mc.Cegar.Safe { abstract_latches; iterations; _ }) ->
    {
      verdict =
        Printf.sprintf "SAFE: %d visible latches after %d iterations"
          abstract_latches iterations;
      code = 0;
      cacheable = true;
    }
  | Budget.Converged (Mc.Cegar.Unsafe { trace; _ }) ->
    {
      verdict =
        Printf.sprintf "UNSAFE: counterexample of %d steps" (List.length trace);
      code = 1;
      cacheable = true;
    }
  | Budget.Exhausted p ->
    {
      verdict =
        Printf.sprintf "%s: %d visible latches after %d refinements, no verdict"
          (exhausted p.Mc.Cegar.reason)
          (List.length p.Mc.Cegar.visible)
          p.Mc.Cegar.iterations;
      code = 0;
      cacheable = false;
    }

let bmc_unsafe depth trace =
  {
    verdict =
      Printf.sprintf "UNSAFE: counterexample of %d steps at depth %d"
        (List.length trace) depth;
    code = 1;
    cacheable = true;
  }

let bmc_safe max_depth =
  {
    verdict = Printf.sprintf "SAFE within depth %d" max_depth;
    code = 0;
    cacheable = true;
  }

let bmc_exhausted reason proved max_depth =
  {
    verdict =
      Printf.sprintf "%s: proved clean through depth %d (of %d)"
        (exhausted reason) proved max_depth;
    code = 0;
    cacheable = false;
  }

let run_bmc ?pool ?warm ~budget ~family system max_depth =
  let mk () =
    let t = bmc_ts system in
    Obs.info "system %s: %d latches@." t.Mc.Ts.name t.Mc.Ts.num_latches;
    t
  in
  match warm with
  | None -> (
    let t = mk () in
    match Mc.Bmc.sweep ?pool ~budget t ~max_depth with
    | Budget.Converged (Some (depth, trace)) -> bmc_unsafe depth trace
    | Budget.Converged None -> bmc_safe max_depth
    | Budget.Exhausted p ->
      bmc_exhausted p.Mc.Bmc.reason p.Mc.Bmc.proved_depth max_depth)
  | Some store ->
    let entry = Warm.acquire store ~family mk in
    Fun.protect
      ~finally:(fun () -> Warm.release entry)
      (fun () ->
        match entry.Warm.cex with
        | Some (depth, trace) when depth <= max_depth ->
          (* the minimal counterexample is already in hand; a sweep from
             scratch would rediscover exactly this depth *)
          bmc_unsafe depth trace
        | _ ->
          let start = entry.Warm.proved + 1 in
          if start > max_depth then bmc_safe max_depth
          else (
            match
              Mc.Bmc.sweep_session ~start ~budget entry.Warm.sess ~max_depth
            with
            | Budget.Converged (Some (depth, trace)) ->
              entry.Warm.proved <- max entry.Warm.proved (depth - 1);
              entry.Warm.cex <- Some (depth, trace);
              bmc_unsafe depth trace
            | Budget.Converged None ->
              entry.Warm.proved <- max_depth;
              bmc_safe max_depth
            | Budget.Exhausted p ->
              entry.Warm.proved <- max entry.Warm.proved p.Mc.Bmc.proved_depth;
              bmc_exhausted p.Mc.Bmc.reason p.Mc.Bmc.proved_depth max_depth))

let run_invgen ?pool ~budget circuit n =
  let aig, bad =
    match circuit with
    | `Ring -> Invgen.Engine.ring_counter ~n
    | `Mod5 -> Invgen.Engine.counter_mod5 ()
    | `Twin -> Invgen.Engine.twin_registers ~len:n
    | `Stuck -> Invgen.Engine.stuck_bit
  in
  let verdict_name = function
    | Invgen.Induction.Proved -> "proved"
    | Invgen.Induction.Cex_in_base -> "cex-in-base"
    | Invgen.Induction.Unknown -> "unknown"
    | Invgen.Induction.Aborted _ -> "aborted"
  in
  match Invgen.Engine.run ?pool ~budget aig ~bad with
  | Budget.Converged r ->
    Obs.info "%d candidates from simulation, %d proven inductive@."
      r.Invgen.Engine.candidates
      (List.length r.Invgen.Engine.proven);
    {
      verdict =
        Printf.sprintf "with invariants: %s; unaided: %s"
          (verdict_name r.Invgen.Engine.verdict)
          (verdict_name r.Invgen.Engine.verdict_unaided);
      code =
        (match r.Invgen.Engine.verdict with
        | Invgen.Induction.Proved -> 0
        | _ -> 1);
      cacheable = true;
    }
  | Budget.Exhausted p ->
    {
      verdict =
        Printf.sprintf "%s: %d candidate invariants %s, property undecided"
          (exhausted p.Invgen.Engine.reason)
          (List.length p.Invgen.Engine.survivors)
          (if p.Invgen.Engine.filtered then "proven inductive"
           else "surviving (inductiveness unproven)");
      code = 0;
      cacheable = false;
    }

let run_lstar ~budget states =
  (* target: words over {0,1} whose number of 1s is divisible by [states] *)
  let target =
    Lstar.Dfa.make ~alphabet:2 ~start:0
      ~accept:(Array.init states (fun s -> s = 0))
      ~delta:(Array.init states (fun s -> [| s; (s + 1) mod states |]))
  in
  match Lstar.Learner.learn_exact ~budget ~target () with
  | Budget.Converged (h, st) ->
    Obs.info "%d membership queries, %d equivalence queries@."
      st.Lstar.Learner.membership_queries st.Lstar.Learner.equivalence_queries;
    {
      verdict =
        Printf.sprintf "learned %d-state DFA in %d rounds" h.Lstar.Dfa.num_states
          st.Lstar.Learner.rounds;
      code = (match Lstar.Dfa.equal h target with Ok () -> 0 | Error _ -> 1);
      cacheable = true;
    }
  | Budget.Exhausted p ->
    {
      verdict =
        Printf.sprintf "%s: %d rounds, last hypothesis %s"
          (exhausted p.Lstar.Learner.reason)
          p.Lstar.Learner.stats.Lstar.Learner.rounds
          (match p.Lstar.Learner.hypothesis with
          | Some h -> Printf.sprintf "has %d states" h.Lstar.Dfa.num_states
          | None -> "none");
      code = 0;
      cacheable = false;
    }

let run ?pool ?warm ?(budget = Budget.unlimited) spec =
  match spec with
  | Deobfuscate { program; width } -> run_deobfuscate ?pool ~budget program width
  | Timing { source; bits; tau } -> run_timing ?pool ~budget source bits tau
  | Cegar { junk; bits; modulus; bad_value } ->
    run_cegar ~budget junk bits modulus bad_value
  | Bmc { system; max_depth } ->
    run_bmc ?pool ?warm ~budget ~family:(family spec) system max_depth
  | Invgen { circuit; n } -> run_invgen ?pool ~budget circuit n
  | Lstar { states } -> run_lstar ~budget states
