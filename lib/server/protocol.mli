(** The versioned JSONL wire protocol between clients and the daemon.

    One JSON object per line in each direction, every line carrying the
    protocol version {!version}. Requests are [submit] (a named
    {!Jobs.spec} with optional per-request budget and priority),
    [cancel], [ping], [stats] and [shutdown]; responses are [ack],
    [result] (the verdict text, exit code, cache provenance and service
    time), typed [error]s, [pong], [stats] and [bye]. The codec is
    total: {!parse_request} never raises, and malformed or oversized
    input maps to a typed {!error_code} instead of a dropped
    connection. *)

val version : string
(** ["sciduction.serve/1"]. *)

val max_line_bytes : int
(** Longest accepted request line (65536 bytes); longer lines are
    answered with [Oversized]. *)

type submit = {
  id : string;  (** client-chosen name, unique among live jobs *)
  spec : Jobs.spec;
  timeout : float option;  (** per-request wall-clock budget *)
  max_conflicts : int option;  (** per-request pooled conflict budget *)
  priority : int;  (** lower runs first; aging prevents starvation *)
}

type request =
  | Submit of submit
  | Cancel of string
  | Ping
  | Stats
  | Shutdown

type error_code =
  | Parse_error  (** the line is not a JSON object *)
  | Oversized  (** the line exceeds {!max_line_bytes} *)
  | Bad_request  (** missing/ill-typed fields, or wrong protocol version *)
  | Unknown_op
  | Duplicate_id  (** the id names a job still queued or in flight *)
  | Unknown_job  (** cancel for an id the server is not running *)
  | Fault_injected  (** the job died under armed fault injection *)
  | Job_failed  (** the job raised; the message carries the exception *)
  | Cancelled  (** explicit cancel, client disconnect, or shutdown *)
  | Shutting_down  (** the server no longer accepts work *)
  | Overloaded
      (** admission control shed the job; the carrying [Err] sets
          [retry_after_s]. Additive in sciduction.serve/1: clients that
          predate it degrade the code string to [Job_failed]. *)
  | Internal_error
      (** the server failed on its side — journal write failure, or a
          job that kept killing dispatchers past the restart budget *)

val error_code_to_string : error_code -> string

val parse_request : string -> (request, error_code * string) result
val request_to_json : request -> Obs.Json.t

type response =
  | Ack of string
  | Result of {
      id : string;
      verdict : string;
      code : int;
      cached : bool;
      ms : float;
    }
  | Err of {
      code : error_code;
      message : string;
      id : string option;
      retry_after_s : float option;
          (** only set on [Overloaded]: seconds the client should wait
              before resubmitting *)
    }
  | Pong
  | StatsReply of Obs.Json.t
  | Bye

val response_to_json : response -> Obs.Json.t

val response_to_line : response -> string
(** The JSON rendering plus the terminating newline. *)

val parse_response : string -> (response, string) result
