(** Client side of the daemon's JSONL protocol.

    One connection per call: connect, send the request line, read until
    the call's terminal response. Backs the CLI's [submit], [cancel]
    and [shutdown] subcommands, the [--server] routing of the loop
    subcommands, and the tests.

    {!submit} is retrying: transport failures (daemon restarting —
    ECONNREFUSED, ECONNRESET, EPIPE, EOF before the terminal response)
    and transient typed errors ([overloaded] — honoring its
    [retry_after_s] — plus [internal_error] and [duplicate_id], which a
    dead previous attempt leaves behind) are reconnected under jittered
    exponential backoff. The jitter is a pure hash of the attempt
    index and the sleep is a hook in {!retry}, so tests and [--fault]
    replays see the exact same delay sequence every run. Retries count
    on the [client.retries] / [client.reconnects] registry series. *)

type failure = {
  fcode : string;
  fmessage : string;
  fretry_after_s : float option;
      (** the server's back-off hint, set on ["overloaded"] *)
}
(** A typed error the daemon answered with ([fcode] is the protocol
    error-code string, e.g. ["fault_injected"]). *)

type outcome = { verdict : string; code : int; cached : bool; ms : float }
(** A finished job as the daemon reported it: the exact CLI verdict
    text and exit code, whether it was served from the result cache,
    and the service time. *)

type retry = {
  attempts : int;  (** total attempts, clamped to ≥ 1 *)
  base_s : float;  (** first backoff delay *)
  cap_s : float;  (** backoff ceiling *)
  sleep : float -> unit;
      (** the clock hook; replace to observe or collapse delays *)
}

val default_retry : retry
(** 5 attempts, 50 ms base, 2 s cap, [Thread.delay]. *)

val no_retry : retry
(** Exactly one attempt — the pre-retry behavior. *)

val backoff_delay : retry -> int -> float
(** The deterministic delay slept after failed attempt [k] (0-based):
    capped exponential scaled by the attempt-indexed jitter. Exposed so
    tests can assert the exact schedule. *)

val submit :
  socket:string ->
  ?retry:retry ->
  ?id:string ->
  ?priority:int ->
  ?timeout:float ->
  ?max_conflicts:int ->
  Jobs.spec ->
  (outcome, [ `Server of failure | `Transport of string ]) result
(** Submit and block until the verdict, retrying per [?retry] (default
    {!default_retry}). [?id] defaults to a fresh process-unique name
    and is stable across the attempts of one call. [?timeout] /
    [?max_conflicts] become the job's server-side budget; lower
    [?priority] (default 0) runs first. *)

val retries : unit -> int
(** Total submit retries this process (the [client.retries] counter). *)

val cancel : socket:string -> id:string -> (unit, string) result
val shutdown : socket:string -> unit -> (unit, string) result
val ping : socket:string -> unit -> (unit, string) result

val stats : socket:string -> unit -> (Obs.Json.t, string) result
(** The daemon's scheduler/cache counters (the protocol [stats] op —
    distinct from the [--stats-socket] telemetry endpoint). *)
