(** Client side of the daemon's JSONL protocol.

    One connection per call: connect, send the request line, read until
    the call's terminal response. Backs the CLI's [submit], [cancel]
    and [shutdown] subcommands, the [--server] routing of the loop
    subcommands, and the tests. *)

type failure = { fcode : string; fmessage : string }
(** A typed error the daemon answered with ([fcode] is the protocol
    error-code string, e.g. ["fault_injected"]). *)

type outcome = { verdict : string; code : int; cached : bool; ms : float }
(** A finished job as the daemon reported it: the exact CLI verdict
    text and exit code, whether it was served from the result cache,
    and the service time. *)

val submit :
  socket:string ->
  ?id:string ->
  ?priority:int ->
  ?timeout:float ->
  ?max_conflicts:int ->
  Jobs.spec ->
  (outcome, [ `Server of failure | `Transport of string ]) result
(** Submit and block until the verdict. [?id] defaults to a fresh
    process-unique name; [?timeout]/[?max_conflicts] become the job's
    server-side budget; lower [?priority] (default 0) runs first. *)

val cancel : socket:string -> id:string -> (unit, string) result
val shutdown : socket:string -> unit -> (unit, string) result
val ping : socket:string -> unit -> (unit, string) result

val stats : socket:string -> unit -> (Obs.Json.t, string) result
(** The daemon's scheduler/cache counters (the protocol [stats] op —
    distinct from the [--stats-socket] telemetry endpoint). *)
