(** SMT-backed path feasibility and test generation.

    This is the deductive engine [D] of GameTime (Section 3.2): from each
    candidate basis path an SMT formula is generated that is satisfiable
    iff the path is feasible; the model is a test case driving execution
    down that path. *)

val feasible :
  ?assuming:Smt.Bv.formula ->
  Lang.t ->
  Cfg.t ->
  Paths.path ->
  [ `Test of (string * int) list
  | `Infeasible
  | `Unknown of Smt.Sat.reason ]
(** [`Test inputs] gives values for the program inputs that drive
    execution down exactly this path; [`Infeasible] means no input can;
    [`Unknown] means the solver abandoned the query (limits or injected
    fault) and neither is established. [assuming] conjoins an extra
    constraint over the inputs (used to pin some inputs to fixed values,
    e.g. a fixed modexp base). *)

(** {2 Persistent sessions}

    Checking many paths of the same program (basis extraction, full
    path enumeration) with {!feasible} rebuilds the encoding per path.
    A {!session} keeps one incremental solver: the [assuming] constraint
    is asserted once, and each path's condition is scoped in and
    retracted, so shared path prefixes are encoded once and conflict
    clauses carry across paths. *)

type session

val new_session : ?assuming:Smt.Bv.formula -> Lang.t -> Cfg.t -> session

val feasible_in :
  ?limits:Smt.Sat.limits ->
  session ->
  Paths.path ->
  [ `Test of (string * int) list
  | `Infeasible
  | `Unknown of Smt.Sat.reason ]
(** Same contract as {!feasible} against the session's program.
    [?limits], when given, is installed on the session's solver (and
    persists for later queries until replaced). *)

val session_conflicts : session -> int
(** Cumulative conflicts of the session's solver; callers metering a
    conflict pool charge per-query deltas of this. *)

val check_drives : Lang.t -> Cfg.t -> Paths.path -> (string * int) list -> bool
(** Validate (concretely) that [inputs] follows [path]: re-run symbolic
    execution's path condition under the concrete values. *)
