module Bv = Smt.Bv
module Solver = Smt.Solver

let feasible ?(assuming = Bv.tru) (p : Lang.t) g path =
  let r = Symexec.exec p g path in
  match Solver.check_formulas [ assuming; r.Symexec.path_condition ] with
  | Error () -> None
  | Ok env -> Some (List.map (fun x -> (x, env.Bv.bv x)) p.Lang.inputs)

(* Persistent session for checking many paths of one program: path
   conditions of sibling paths share long prefixes, so keeping one
   solver alive lets the bit-blast cache and learned clauses carry over;
   each query only scopes in its own path condition. *)
type session = {
  prog : Lang.t;
  cfg : Cfg.t;
  solver : Solver.t;
}

let new_session ?(assuming = Bv.tru) (p : Lang.t) g =
  let solver = Solver.create () in
  Solver.assert_formula solver assuming;
  { prog = p; cfg = g; solver }

let feasible_in sess path =
  let r = Symexec.exec sess.prog sess.cfg path in
  Solver.push sess.solver;
  Solver.assert_formula sess.solver r.Symexec.path_condition;
  let res =
    match Solver.check sess.solver with
    | Solver.Unsat -> None
    | Solver.Sat ->
      Some
        (List.map
           (fun x -> (x, Solver.value sess.solver x))
           sess.prog.Lang.inputs)
  in
  Solver.pop sess.solver;
  res

let check_drives (p : Lang.t) g path inputs =
  let r = Symexec.exec p g path in
  Bv.eval (Bv.env_of_alist inputs) r.Symexec.path_condition
