module Bv = Smt.Bv
module Solver = Smt.Solver

let feasible ?(assuming = Bv.tru) (p : Lang.t) g path =
  let r = Symexec.exec p g path in
  match Solver.check_formulas [ assuming; r.Symexec.path_condition ] with
  | `Unsat -> `Infeasible
  | `Unknown reason -> `Unknown reason
  | `Sat env -> `Test (List.map (fun x -> (x, env.Bv.bv x)) p.Lang.inputs)

(* Persistent session for checking many paths of one program: path
   conditions of sibling paths share long prefixes, so keeping one
   solver alive lets the bit-blast cache and learned clauses carry over;
   each query only scopes in its own path condition. *)
type session = {
  prog : Lang.t;
  cfg : Cfg.t;
  solver : Solver.t;
}

let new_session ?(assuming = Bv.tru) (p : Lang.t) g =
  let solver = Solver.create () in
  Solver.assert_formula solver assuming;
  { prog = p; cfg = g; solver }

let session_conflicts sess = (Solver.sat_stats sess.solver).Smt.Sat.conflicts

let feasible_in ?limits sess path =
  let r = Symexec.exec sess.prog sess.cfg path in
  Option.iter (Solver.set_limits sess.solver) limits;
  (* the scope's activation literal is what an unsat core blames, so
     name it after the edge-indicator vector of the path under test *)
  Solver.push_named sess.solver
    (Printf.sprintf "path[%s]"
       (String.concat "" (List.map string_of_int path)));
  Solver.assert_formula sess.solver r.Symexec.path_condition;
  let res =
    match Solver.check sess.solver with
    | Solver.Unsat -> `Infeasible
    | Solver.Unknown reason -> `Unknown reason
    | Solver.Sat ->
      `Test
        (List.map
           (fun x -> (x, Solver.value sess.solver x))
           sess.prog.Lang.inputs)
  in
  Solver.pop sess.solver;
  res

let check_drives (p : Lang.t) g path inputs =
  let r = Symexec.exec p g path in
  Bv.eval (Bv.env_of_alist inputs) r.Symexec.path_condition
