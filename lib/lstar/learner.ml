type stats = {
  membership_queries : int;
  equivalence_queries : int;
  rounds : int;
}

type partial = {
  hypothesis : Dfa.t option;
  stats : stats;
  reason : Budget.reason;
}

module Wset = Set.Make (struct
  type t = Dfa.word

  let compare = compare
end)

type table = {
  alphabet : int;
  mutable s : Wset.t; (* rows: prefix-closed *)
  mutable e : Wset.t; (* experiments: suffix-closed *)
  answers : (Dfa.word, bool) Hashtbl.t;
  membership : Dfa.word -> bool;
  mutable queries : int;
}

let m_membership = Obs.Metrics.counter "lstar.membership_queries"
let m_membership_cached = Obs.Metrics.counter "lstar.membership_cached"

let ask t w =
  match Hashtbl.find_opt t.answers w with
  | Some b ->
    Obs.Metrics.incr m_membership_cached;
    b
  | None ->
    t.queries <- t.queries + 1;
    Obs.Metrics.incr m_membership;
    let b = t.membership w in
    Hashtbl.add t.answers w b;
    b

let row t s = List.map (fun e -> ask t (s @ e)) (Wset.elements t.e)

let extensions t s = List.init t.alphabet (fun a -> s @ [ a ])

(* close and make consistent, repeatedly *)
let rec fix t =
  (* closedness: every one-letter extension's row appears among S rows *)
  let s_rows = List.map (fun s -> (row t s, s)) (Wset.elements t.s) in
  let missing =
    List.concat_map (extensions t) (Wset.elements t.s)
    |> List.find_opt (fun sa ->
           (not (Wset.mem sa t.s))
           && not (List.mem_assoc (row t sa) s_rows))
  in
  match missing with
  | Some sa ->
    t.s <- Wset.add sa t.s;
    fix t
  | None ->
    (* consistency: equal rows must have equal extensions *)
    let pairs =
      let elems = Wset.elements t.s in
      List.concat_map
        (fun s1 -> List.filter_map (fun s2 -> if s1 < s2 then Some (s1, s2) else None) elems)
        elems
    in
    let inconsistent =
      List.find_map
        (fun (s1, s2) ->
          if row t s1 = row t s2 then
            List.find_map
              (fun a ->
                let e_bad =
                  List.find_opt
                    (fun e -> ask t (s1 @ (a :: e)) <> ask t (s2 @ (a :: e)))
                    (Wset.elements t.e)
                in
                Option.map (fun e -> a :: e) e_bad)
              (List.init t.alphabet Fun.id)
          else None)
        pairs
    in
    (match inconsistent with
    | Some e ->
      t.e <- Wset.add e t.e;
      fix t
    | None -> ())

let hypothesis t =
  let elems = Wset.elements t.s in
  let rows = List.map (row t) elems in
  let distinct = List.sort_uniq compare rows in
  let index r =
    match List.find_index (fun r' -> r' = r) distinct with
    | Some i -> i
    | None -> assert false
  in
  let rep_of_row r = List.find (fun s -> row t s = r) elems in
  let delta =
    Array.of_list
      (List.map
         (fun r ->
           let s = rep_of_row r in
           Array.init t.alphabet (fun a -> index (row t (s @ [ a ]))))
         distinct)
  in
  let accept =
    Array.of_list
      (List.map (fun r -> ask t (rep_of_row r)) distinct)
  in
  Dfa.make ~alphabet:t.alphabet ~start:(index (row t [])) ~accept ~delta

let learn ~alphabet ~membership ~equivalence ?(max_rounds = 200)
    ?(budget = Budget.unlimited) () =
  let t =
    {
      alphabet;
      s = Wset.singleton [];
      e = Wset.singleton [];
      answers = Hashtbl.create 64;
      membership;
      queries = 0;
    }
  in
  let meter = Budget.start budget in
  let lp = Obs.Loop.start "lstar" ~attrs:[ ("alphabet", Obs.Int alphabet) ] in
  let eq_queries = ref 0 in
  let rec go round last_h =
    let stats () =
      {
        membership_queries = t.queries;
        equivalence_queries = !eq_queries;
        rounds = round - 1;
      }
    in
    match
      if round > max_rounds then Some Budget.Iterations
      else Budget.tick meter
    with
    | Some reason ->
      Obs.Loop.budget_exhausted lp
        ~reason:(Budget.reason_to_string reason)
        ~attrs:[ ("rounds", Obs.Int (round - 1)) ];
      Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "exhausted") ];
      Budget.Exhausted { hypothesis = last_h; stats = stats (); reason }
    | None ->
      go_round round
  and go_round round =
    Obs.Loop.iteration lp round
      ~attrs:[ ("rows", Obs.Int (Wset.cardinal t.s)) ];
    Obs.with_span "lstar.fix" (fun () -> fix t);
    let h = Obs.with_span "lstar.hypothesis" (fun () -> hypothesis t) in
    Obs.Loop.candidate lp ~attrs:[ ("states", Obs.Int h.Dfa.num_states) ];
    incr eq_queries;
    match equivalence h with
    | None ->
      Obs.Loop.verdict lp "equivalent";
      Obs.Loop.finish lp
        ~attrs:
          [
            ("outcome", Obs.String "learned");
            ("membership_queries", Obs.Int t.queries);
            ("rounds", Obs.Int round);
          ];
      Budget.Converged
        ( h,
          {
            membership_queries = t.queries;
            equivalence_queries = !eq_queries;
            rounds = round;
          } )
    | Some cex ->
      Obs.Loop.verdict lp "counterexample";
      Obs.Loop.counterexample lp ~attrs:[ ("length", Obs.Int (List.length cex)) ];
      (* add all prefixes of the counterexample to S *)
      let rec prefixes acc = function
        | [] -> acc
        | a :: rest -> prefixes ((List.hd acc @ [ a ]) :: acc) rest
      in
      List.iter (fun p -> t.s <- Wset.add p t.s) (prefixes [ [] ] cex);
      go (round + 1) (Some h)
  in
  go 1 None

let learn_exact ?budget ~target () =
  learn ~alphabet:target.Dfa.alphabet
    ~membership:(Dfa.accepts target)
    ~equivalence:(fun h ->
      match Dfa.equal h target with Ok () -> None | Error w -> Some w)
    ?budget ()
