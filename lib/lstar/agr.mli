(** Learning-based assume-guarantee reasoning
    (Cobleigh–Giannakopoulou–Păsăreanu style, as surveyed in Section 2.4).

    Components and properties are DFAs over a shared alphabet; parallel
    composition is language intersection. The non-circular rule

      M1 || A |= P        L(M2) ⊆ L(A)
      -----------------------------------
      M1 || M2 |= P

    is discharged by learning the assumption A with L*: the membership
    oracle answers from the weakest assumption
    WA = { w : w ∈ L(M1) ⇒ w ∈ L(P) }, and the equivalence oracle checks
    the two premises, feeding counterexamples back to the learner or
    reporting a real violation. *)

type result =
  | Holds of {
      assumption : Dfa.t;
      membership_queries : int;
      rounds : int;
    }
  | Violated of Dfa.word
      (** a word in L(M1) ∩ L(M2) \ L(P), i.e. a real counterexample *)

val check :
  ?budget:Budget.t ->
  m1:Dfa.t ->
  m2:Dfa.t ->
  prop:Dfa.t ->
  unit ->
  (result, Learner.partial) Budget.outcome
(** Both converged answers are unconditional: [Holds] is witnessed by a
    learned assumption discharging both premises, [Violated] by a
    concrete trace in L(M1) ∩ L(M2) \ L(P). [Exhausted] carries the
    learner's last hypothesis — a candidate assumption with no claim
    attached. *)

val weakest_assumption_member : m1:Dfa.t -> prop:Dfa.t -> Dfa.word -> bool
(** Membership in WA (exposed for tests). *)
