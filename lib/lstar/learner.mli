(** Angluin's L* algorithm.

    The inductive inference engine of the assume-guarantee instance
    (Section 2.4): learns a DFA from a membership oracle and an
    equivalence oracle. The observation table is kept closed and
    consistent; counterexamples are handled by adding all their prefixes
    to the row set (Angluin's original policy). *)

type stats = {
  membership_queries : int;
  equivalence_queries : int;
  rounds : int;
}

(** What an exhausted run still holds: the last hypothesis submitted to
    the equivalence oracle ([None] if not even one round finished) —
    consistent with every membership answer seen, but {e not} known
    equivalent to the target. *)
type partial = {
  hypothesis : Dfa.t option;
  stats : stats;
  reason : Budget.reason;
}

val learn :
  alphabet:int ->
  membership:(Dfa.word -> bool) ->
  equivalence:(Dfa.t -> Dfa.word option) ->
  ?max_rounds:int ->
  ?budget:Budget.t ->
  unit ->
  (Dfa.t * stats, partial) Budget.outcome
(** The returned DFA is the hypothesis the equivalence oracle accepted.
    [max_rounds] (default 200) and [?budget]'s iteration cap both bound
    the learning rounds; either running out — or the budget's deadline
    passing — returns [Exhausted] (L* issues no solver queries, so the
    conflict pool never drains here). *)

val learn_exact :
  ?budget:Budget.t ->
  target:Dfa.t ->
  unit ->
  (Dfa.t * stats, partial) Budget.outcome
(** Learn a known target by answering both oracle types from it; for
    testing, and for the ablation that counts queries. Always converges
    when unbudgeted (L* terminates on exact oracles). *)
