type result =
  | Holds of {
      assumption : Dfa.t;
      membership_queries : int;
      rounds : int;
    }
  | Violated of Dfa.word

let weakest_assumption_member ~m1 ~prop w =
  (not (Dfa.accepts m1 w)) || Dfa.accepts prop w

exception Real_violation of Dfa.word

let check ?budget ~m1 ~m2 ~prop () =
  if m1.Dfa.alphabet <> m2.Dfa.alphabet || m1.Dfa.alphabet <> prop.Dfa.alphabet
  then invalid_arg "Agr.check: alphabet mismatch";
  let membership = weakest_assumption_member ~m1 ~prop in
  let equivalence (a : Dfa.t) =
    (* premise 1: L(M1) ∩ L(A) ⊆ L(P) *)
    match Dfa.subset (Dfa.inter m1 a) prop with
    | Error w ->
      (* w ∈ M1 ∩ A but violates P. If M2 can also do w it is a real
         violation; otherwise A wrongly contains w. *)
      if Dfa.accepts m2 w then raise (Real_violation w) else Some w
    | Ok () -> (
      (* premise 2: L(M2) ⊆ L(A) *)
      match Dfa.subset m2 a with
      | Ok () -> None
      | Error w ->
        (* w ∈ M2 \ A. If w is in the weakest assumption, A is too
           small; otherwise running w against M1 violates P. *)
        if membership w then Some w else raise (Real_violation w))
  in
  match
    Learner.learn ~alphabet:m1.Dfa.alphabet ~membership ~equivalence ?budget ()
  with
  | Budget.Converged (a, stats) ->
    Budget.Converged
      (Holds
         {
           assumption = a;
           membership_queries = stats.Learner.membership_queries;
           rounds = stats.Learner.rounds;
         })
  | Budget.Exhausted p -> Budget.Exhausted p
  | exception Real_violation w -> Budget.Converged (Violated w)
