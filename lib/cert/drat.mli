(** An independent DRAT proof checker: forward reverse-unit-propagation
    (RUP) over a DIMACS formula and a DRAT proof log.

    This is the audit side of the proof plane and deliberately shares
    {e nothing} with the solver: literals are plain signed DIMACS
    integers, and the unit-propagation loop here is written against its
    own clause store — a bug in the solver's propagation cannot
    silently vouch for itself.

    Scope: RUP additions only (every clause our CDCL core logs is RUP
    with respect to what precedes it); a genuine RAT-but-not-RUP line
    is rejected, making the checker strictly more conservative than
    full DRAT. Deletion lines that match no live clause are ignored:
    the solver deletes clauses it may have strengthened in place, so
    the logged literals can differ from the original addition — and
    keeping the original clause is sound, since RUP is monotone in the
    clause set. *)

(** One DRAT proof line. *)
type line =
  | Add of int array
  | Delete of int array

type stats = {
  cnf_clauses : int;
  additions : int;  (** proof additions RUP-verified *)
  deletions : int;  (** deletion lines that matched a live clause *)
  propagations : int;  (** literals propagated across all RUP checks *)
}

val parse_dimacs : string -> (int array list, string) result
(** Tolerant DIMACS: comment lines and the [p cnf] header are skipped
    (the header is optional — spool files carry none), clauses are
    0-terminated and may span lines. *)

val parse_proof : string -> (line list, string) result
(** DRAT text: 0-terminated integer clauses, [d]-prefixed deletions,
    [c] comments skipped. *)

val check : int array list -> line list -> (stats, string) result
(** Verify that the proof derives the empty clause from the formula:
    every addition must be RUP with respect to the current clause
    database, deletions shrink it, and the run must reach either a
    verified empty clause or a root-level propagation conflict.
    [Error] explains the first offending line. *)

val check_files : cnf:string -> proof:string -> (stats, string) result
