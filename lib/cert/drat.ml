(* Forward RUP checking with its own two-watched-literal propagation.
   Nothing here touches the solver library: literals are the signed
   integers of the files, the clause store and the propagation queue
   are local, and the only sophistication is the standard one — to
   check that a clause C is implied, assume every literal of C false
   and demand that unit propagation over the current database reaches a
   conflict. Assumptions are undone by truncating the trail, so one
   state serves the whole proof. *)

type line =
  | Add of int array
  | Delete of int array

type stats = {
  cnf_clauses : int;
  additions : int;
  deletions : int;
  propagations : int;
}

(* growable int vector *)
module Iv = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 4 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let a = Array.make (2 * Array.length v.a) 0 in
      Array.blit v.a 0 a 0 v.n;
      v.a <- a
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let set v i x = v.a.(i) <- x
end

type state = {
  value : int array; (* var -> 0 unknown / 1 true / -1 false *)
  trail : Iv.t;
  mutable qhead : int;
  mutable clauses : int array array; (* slot per clause id, grown on demand *)
  mutable alive : Bytes.t;
  watches : Iv.t array; (* literal index -> watching clause ids *)
  tbl : (int list, int list) Hashtbl.t; (* sorted lits -> live ids *)
  mutable nclauses : int;
  mutable root_conflict : bool;
  mutable props : int;
}

let widx l = (2 * abs l) + if l < 0 then 1 else 0

(* 1 true, -1 false, 0 unassigned *)
let lv st l =
  let v = st.value.(abs l) in
  if v = 0 then 0 else if l > 0 then v else -v

let assign st l =
  st.value.(abs l) <- (if l > 0 then 1 else -1);
  Iv.push st.trail l

let undo_to st n =
  for i = st.trail.Iv.n - 1 downto n do
    st.value.(abs (Iv.get st.trail i)) <- 0
  done;
  st.trail.Iv.n <- n;
  st.qhead <- n

let create_state nv =
  {
    value = Array.make (nv + 1) 0;
    trail = Iv.create ();
    qhead = 0;
    clauses = Array.make 64 [||];
    alive = Bytes.make 64 '\000';
    watches = Array.init ((2 * nv) + 2) (fun _ -> Iv.create ());
    tbl = Hashtbl.create 256;
    nclauses = 0;
    root_conflict = false;
    props = 0;
  }

let key_of c = List.sort_uniq compare (Array.to_list c)

(* conflict clause id, or -1 at fixpoint *)
let propagate st =
  let confl = ref (-1) in
  while !confl < 0 && st.qhead < st.trail.Iv.n do
    let p = Iv.get st.trail st.qhead in
    st.qhead <- st.qhead + 1;
    st.props <- st.props + 1;
    let false_lit = -p in
    let ws = st.watches.(widx false_lit) in
    let n = ws.Iv.n in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Iv.get ws !i in
      incr i;
      if !confl >= 0 || Bytes.get st.alive ci = '\000' then begin
        (* conflict already found: keep; dead clause: drop *)
        if !confl >= 0 then begin
          Iv.set ws !j ci;
          incr j
        end
      end
      else begin
        let c = st.clauses.(ci) in
        if c.(0) = false_lit then begin
          c.(0) <- c.(1);
          c.(1) <- false_lit
        end;
        let first = c.(0) in
        if lv st first = 1 then begin
          Iv.set ws !j ci;
          incr j
        end
        else begin
          let len = Array.length c in
          let k = ref 2 in
          while !k < len && lv st c.(!k) = -1 do
            incr k
          done;
          if !k < len then begin
            (* relocate the watch *)
            c.(1) <- c.(!k);
            c.(!k) <- false_lit;
            Iv.push st.watches.(widx c.(1)) ci
          end
          else begin
            Iv.set ws !j ci;
            incr j;
            if lv st first = -1 then confl := ci else assign st first
          end
        end
      end
    done;
    ws.Iv.n <- !j
  done;
  !confl

(* Install a clause (already RUP-verified, or part of the formula).
   Watched literals must be non-false at the root, when available; a
   clause unit at the root assigns immediately, an all-false one flags
   the database inconsistent (which is a successful end state for a
   proof). The caller runs [propagate] afterwards. *)
let add_clause st c =
  (* logged clauses are pre-normalization and may repeat a literal; a
     duplicate would occupy both watch slots and blind propagation to
     the rest of the clause, so collapse repeats first *)
  let c =
    if Array.length c < 2 then c
    else Array.of_list (List.sort_uniq compare (Array.to_list c))
  in
  let id = st.nclauses in
  st.nclauses <- id + 1;
  if id >= Array.length st.clauses then begin
    let a = Array.make (2 * Array.length st.clauses) [||] in
    Array.blit st.clauses 0 a 0 id;
    st.clauses <- a;
    let b = Bytes.make (2 * Bytes.length st.alive) '\000' in
    Bytes.blit st.alive 0 b 0 id;
    st.alive <- b
  end;
  st.clauses.(id) <- c;
  Bytes.set st.alive id '\001';
  let key = key_of c in
  Hashtbl.replace st.tbl key
    (id :: Option.value (Hashtbl.find_opt st.tbl key) ~default:[]);
  let len = Array.length c in
  if len = 0 then st.root_conflict <- true
  else if len = 1 then begin
    match lv st c.(0) with
    | -1 -> st.root_conflict <- true
    | 0 -> assign st c.(0)
    | _ -> ()
  end
  else begin
    (* move up to two non-false literals into the watch slots *)
    let w = ref 0 in
    let i = ref 0 in
    while !w < 2 && !i < len do
      if lv st c.(!i) <> -1 then begin
        let tmp = c.(!w) in
        c.(!w) <- c.(!i);
        c.(!i) <- tmp;
        incr w
      end;
      incr i
    done;
    Iv.push st.watches.(widx c.(0)) id;
    Iv.push st.watches.(widx c.(1)) id;
    if !w = 0 then st.root_conflict <- true
    else if !w = 1 then begin
      (* unit under the root assignment *)
      match lv st c.(0) with
      | 0 -> assign st c.(0)
      | _ -> ()
    end
  end

exception Satisfied_at_root

(* Is [c] RUP w.r.t. the live database? Assume every literal false,
   propagate, demand a conflict; a literal already true at the root
   makes [c] a trivial consequence. State is restored before return. *)
let rup st c =
  let saved = st.trail.Iv.n in
  let ok =
    try
      Array.iter
        (fun l ->
          match lv st l with
          | 1 -> raise Satisfied_at_root
          | -1 -> ()
          | _ -> assign st (-l))
        c;
      propagate st >= 0
    with Satisfied_at_root -> true
  in
  undo_to st saved;
  ok

let delete_clause st c =
  let key = key_of c in
  match Hashtbl.find_opt st.tbl key with
  | None | Some [] -> false
  | Some (id :: rest) ->
    Bytes.set st.alive id '\000';
    if rest = [] then Hashtbl.remove st.tbl key
    else Hashtbl.replace st.tbl key rest;
    true

let check cnf proof =
  let nv =
    let m = ref 0 in
    let scan c = Array.iter (fun l -> m := max !m (abs l)) c in
    List.iter scan cnf;
    List.iter (function Add c | Delete c -> scan c) proof;
    !m
  in
  let st = create_state nv in
  List.iter (add_clause st) cnf;
  if (not st.root_conflict) && propagate st >= 0 then st.root_conflict <- true;
  let additions = ref 0 in
  let deletions = ref 0 in
  let verified_empty = ref false in
  let error = ref None in
  let lineno = ref 0 in
  (try
     List.iter
       (fun line ->
         incr lineno;
         match line with
         | Delete c ->
           if (not st.root_conflict) && delete_clause st c then incr deletions
         | Add c ->
           if st.root_conflict then begin
             (* the database already propagates to a conflict: every
                further clause, the empty one included, is vacuously RUP *)
             incr additions;
             if Array.length c = 0 then begin
               verified_empty := true;
               raise Exit
             end
           end
           else if not (rup st c) then begin
             error :=
               Some
                 (Printf.sprintf "proof line %d: clause is not RUP" !lineno);
             raise Exit
           end
           else begin
             incr additions;
             if Array.length c = 0 then begin
               verified_empty := true;
               raise Exit
             end;
             add_clause st c;
             if (not st.root_conflict) && propagate st >= 0 then
               st.root_conflict <- true
           end)
       proof
   with Exit -> ());
  match !error with
  | Some e -> Error e
  | None ->
    if !verified_empty || st.root_conflict then
      Ok
        {
          cnf_clauses = List.length cnf;
          additions = !additions;
          deletions = !deletions;
          propagations = st.props;
        }
    else Error "proof does not derive the empty clause"

(* ----- parsing ----- *)

let fold_lines text f =
  let n = String.length text in
  let start = ref 0 in
  let err = ref None in
  let i = ref 0 in
  while !err = None && !i <= n do
    if !i = n || text.[!i] = '\n' then begin
      (match f (String.sub text !start (!i - !start)) with
      | Ok () -> ()
      | Error e -> err := Some e);
      start := !i + 1
    end;
    incr i
  done;
  !err

let tokens line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (( <> ) "")

let parse_clauses ~drat text =
  let out = ref [] in
  let current = ref [] in
  let deleting = ref false in
  let handle tok =
    match tok with
    | "d" when drat && !current = [] && not !deleting ->
      deleting := true;
      Ok ()
    | _ -> (
      match int_of_string_opt tok with
      | None -> Error (Printf.sprintf "bad token %S" tok)
      | Some 0 ->
        let c = Array.of_list (List.rev !current) in
        out := (if !deleting then Delete c else Add c) :: !out;
        current := [];
        deleting := false;
        Ok ()
      | Some l ->
        current := l :: !current;
        Ok ())
  in
  let on_line line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' || line.[0] = 'p' then Ok ()
    else
      List.fold_left
        (fun acc tok -> match acc with Error _ -> acc | Ok () -> handle tok)
        (Ok ()) (tokens line)
  in
  match fold_lines text on_line with
  | Some e -> Error e
  | None ->
    if !current <> [] || !deleting then Error "unterminated clause"
    else Ok (List.rev !out)

let parse_dimacs text =
  match parse_clauses ~drat:false text with
  | Error e -> Error e
  | Ok lines ->
    Ok (List.map (function Add c -> c | Delete _ -> assert false) lines)

let parse_proof text = parse_clauses ~drat:true text

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_files ~cnf ~proof =
  match read_file cnf with
  | exception Sys_error e -> Error e
  | cnf_text -> (
    match read_file proof with
    | exception Sys_error e -> Error e
    | proof_text -> (
      match parse_dimacs cnf_text with
      | Error e -> Error (Printf.sprintf "%s: %s" cnf e)
      | Ok f -> (
        match parse_proof proof_text with
        | Error e -> Error (Printf.sprintf "%s: %s" proof e)
        | Ok p -> check f p)))
