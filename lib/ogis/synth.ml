module Bv = Smt.Bv
module Solver = Smt.Solver

type oracle = int list -> int list

type stats = {
  iterations : int;
  oracle_queries : int;
  examples : (int list * int list) list;
}

type outcome =
  | Synthesized of Straightline.t * stats
  | Unrealizable of stats

type partial = {
  best : Straightline.t option;
  stats : stats;
  reason : Budget.reason;
}

(* Candidate-vs-counterexample re-checking. Sequentially only the new
   example needs evaluating (the synthesis solver guarantees consistency
   with every older one); with a pool the whole example set is re-checked
   concurrently — [Straightline.eval] is pure, so the chunked fan-out is
   safe and the verdict identical. *)
let candidate_holds ?pool cand ex examples =
  let agrees (ins, outs) = Straightline.eval cand ins = outs in
  match pool with
  | Some pool when Par.Pool.jobs pool > 1 ->
    Array.for_all Fun.id
      (Par.map pool agrees (Array.of_list (ex :: examples)))
  | _ -> agrees ex

let synthesize ?(max_iterations = 64) ?initial_inputs ?(reuse = true) ?pool
    ?(budget = Budget.unlimited) (spec : Encode.spec) oracle =
  let meter = Budget.start budget in
  let lp =
    Obs.Loop.start "ogis"
      ~attrs:
        [
          ("width", Obs.Int spec.Encode.width);
          ("ninputs", Obs.Int spec.Encode.ninputs);
          ("reuse", Obs.Bool reuse);
          ("max_iterations", Obs.Int max_iterations);
        ]
  in
  let queries = ref 0 in
  let ask ins =
    incr queries;
    (ins, oracle ins)
  in
  let finished outcome =
    let st =
      match outcome with Synthesized (_, s) | Unrealizable s -> s
    in
    let label =
      match outcome with
      | Synthesized _ -> "synthesized"
      | Unrealizable _ -> "unrealizable"
    in
    Obs.Loop.finish lp
      ~attrs:
        [
          ("outcome", Obs.String label);
          ("iterations", Obs.Int st.iterations);
          ("oracle_queries", Obs.Int st.oracle_queries);
        ];
    Budget.Converged outcome
  in
  let exhausted ~best stats reason =
    Obs.Loop.budget_exhausted lp
      ~reason:(Budget.reason_to_string reason)
      ~attrs:[ ("iterations", Obs.Int stats.iterations) ];
    Obs.Loop.finish lp
      ~attrs:
        [
          ("outcome", Obs.String "exhausted");
          ("iterations", Obs.Int stats.iterations);
          ("oracle_queries", Obs.Int stats.oracle_queries);
        ];
    Budget.Exhausted { best; stats; reason }
  in
  let initial =
    (* deterministic initial probes: a richer starting example set prunes
       most wirings immediately and makes the final uniqueness proof much
       cheaper (Jha et al. seed with random examples for the same reason) *)
    let w = spec.Encode.width in
    let mask = (1 lsl w) - 1 in
    let patterns =
      [
        (fun _ -> 0);
        (fun _ -> 1);
        (fun j -> (0x5555 + j) land mask);
        (fun j -> (0xCC3 * (j + 7)) land mask);
      ]
    in
    Option.value initial_inputs
      ~default:
        (List.map
           (fun f -> List.init spec.Encode.ninputs f)
           patterns)
  in
  if reuse then (
    (* persistent solvers: each iteration only asserts the new example *)
    let sess = Encode.new_session spec in
    let charged q =
      let c0 = Encode.session_conflicts sess in
      let r = q () in
      Budget.charge_conflicts meter (Encode.session_conflicts sess - c0);
      r
    in
    let rec loop iterations candidate examples =
      let stats () =
        { iterations; oracle_queries = !queries; examples = List.rev examples }
      in
      match
        if iterations >= max_iterations then Some Budget.Iterations
        else Budget.tick meter
      with
      | Some reason -> exhausted ~best:candidate (stats ()) reason
      | None -> (
        Obs.Loop.iteration lp iterations
          ~attrs:[ ("examples", Obs.Int (List.length examples)) ];
        let limits = Smt.Govern.limits_of_meter meter in
        let retained = Option.is_some candidate in
        match
          match candidate with
          | Some c -> `Candidate c
          | None -> charged (fun () -> Encode.next_candidate ~limits sess)
        with
        | `Unrealizable -> finished (Unrealizable (stats ()))
        | `Unknown r ->
          exhausted ~best:candidate (stats ()) (Smt.Govern.reason_of_sat r)
        | `Candidate cand -> (
          Obs.Loop.candidate lp ~attrs:[ ("retained", Obs.Bool retained) ];
          match charged (fun () -> Encode.distinguishing ~limits sess cand) with
          | `Unique ->
            Obs.Loop.verdict lp "unique";
            finished (Synthesized (cand, stats ()))
          | `Unknown r ->
            exhausted ~best:(Some cand) (stats ()) (Smt.Govern.reason_of_sat r)
          | `Input input ->
            Obs.Loop.verdict lp "distinguished";
            let ex = ask input in
            Obs.Loop.counterexample lp;
            Encode.add_example sess ex;
            (* candidate retention: the distinguishing input separates
               the candidate from some alternative, so the oracle's
               answer falsifies at least one of the two — but not
               necessarily the candidate. When the oracle agrees with
               the candidate, only the alternative dies: skip the
               synthesis re-solve and keep the verifier's differs
               constraint in place, so the next distinguishing query is
               a pure strengthening of this one. *)
            let keep = candidate_holds ?pool cand ex examples in
            loop (iterations + 1)
              (if keep then Some cand else None)
              (ex :: examples)))
    in
    let seed = List.map ask initial in
    List.iter (Encode.add_example sess) seed;
    loop 0 None seed)
  else
    let charged q =
      let g0 = (Smt.Sat.global_stats ()).Smt.Sat.g_conflicts in
      let r = q () in
      Budget.charge_conflicts meter
        ((Smt.Sat.global_stats ()).Smt.Sat.g_conflicts - g0);
      r
    in
    let rec loop iterations best examples =
      let stats () =
        { iterations; oracle_queries = !queries; examples = List.rev examples }
      in
      match
        if iterations >= max_iterations then Some Budget.Iterations
        else Budget.tick meter
      with
      | Some reason -> exhausted ~best (stats ()) reason
      | None -> (
        Obs.Loop.iteration lp iterations
          ~attrs:[ ("examples", Obs.Int (List.length examples)) ];
        let limits = Smt.Govern.limits_of_meter meter in
        match
          charged (fun () -> Encode.synthesize_candidate ~limits spec ~examples)
        with
        | `Unrealizable -> finished (Unrealizable (stats ()))
        | `Unknown r -> exhausted ~best (stats ()) (Smt.Govern.reason_of_sat r)
        | `Candidate candidate -> (
          Obs.Loop.candidate lp;
          match
            charged (fun () ->
                Encode.distinguishing_input ~limits spec ~examples candidate)
          with
          | `Unique ->
            Obs.Loop.verdict lp "unique";
            finished (Synthesized (candidate, stats ()))
          | `Unknown r ->
            exhausted ~best:(Some candidate) (stats ())
              (Smt.Govern.reason_of_sat r)
          | `Input input ->
            Obs.Loop.verdict lp "distinguished";
            let ex = ask input in
            Obs.Loop.counterexample lp;
            loop (iterations + 1) (Some candidate) (ex :: examples)))
    in
    loop 0 None (List.map ask initial)

let verify_against (spec : Encode.spec) prog ~spec_fn =
  let w = spec.Encode.width in
  let inputs =
    List.init spec.Encode.ninputs (fun j ->
        Bv.var ~width:w (Printf.sprintf "cx%d" j))
  in
  let got = Straightline.to_terms prog inputs in
  let want = spec_fn inputs in
  if List.length got <> List.length want then
    invalid_arg "Synth.verify_against: output arity mismatch";
  let differs = Bv.disj (List.map2 Bv.neq got want) in
  (* unbudgeted one-shot: Unknown is only possible under fault injection,
     so a bounded retry always converges in practice *)
  let rec go retries =
    match Solver.check_formulas [ differs ] with
    | `Unsat -> Ok ()
    | `Sat env ->
      Error
        (List.init spec.Encode.ninputs (fun j ->
             env.Bv.bv (Printf.sprintf "cx%d" j)))
    | `Unknown _ when retries > 0 -> go (retries - 1)
    | `Unknown r ->
      failwith
        ("Synth.verify_against: no verdict (" ^ Smt.Sat.reason_to_string r ^ ")")
  in
  go 3
