module Bv = Smt.Bv
module Solver = Smt.Solver

type oracle = int list -> int list

type stats = {
  iterations : int;
  oracle_queries : int;
  examples : (int list * int list) list;
}

type outcome =
  | Synthesized of Straightline.t * stats
  | Unrealizable of stats
  | Out_of_budget of stats

(* Candidate-vs-counterexample re-checking. Sequentially only the new
   example needs evaluating (the synthesis solver guarantees consistency
   with every older one); with a pool the whole example set is re-checked
   concurrently — [Straightline.eval] is pure, so the chunked fan-out is
   safe and the verdict identical. *)
let candidate_holds ?pool cand ex examples =
  let agrees (ins, outs) = Straightline.eval cand ins = outs in
  match pool with
  | Some pool when Par.Pool.jobs pool > 1 ->
    Array.for_all Fun.id
      (Par.map pool agrees (Array.of_list (ex :: examples)))
  | _ -> agrees ex

let synthesize ?(max_iterations = 64) ?initial_inputs ?(reuse = true) ?pool
    (spec : Encode.spec) oracle =
  let lp =
    Obs.Loop.start "ogis"
      ~attrs:
        [
          ("width", Obs.Int spec.Encode.width);
          ("ninputs", Obs.Int spec.Encode.ninputs);
          ("reuse", Obs.Bool reuse);
          ("max_iterations", Obs.Int max_iterations);
        ]
  in
  let queries = ref 0 in
  let ask ins =
    incr queries;
    (ins, oracle ins)
  in
  let finished outcome =
    let st =
      match outcome with
      | Synthesized (_, s) | Unrealizable s | Out_of_budget s -> s
    in
    let label =
      match outcome with
      | Synthesized _ -> "synthesized"
      | Unrealizable _ -> "unrealizable"
      | Out_of_budget _ -> "out_of_budget"
    in
    Obs.Loop.finish lp
      ~attrs:
        [
          ("outcome", Obs.String label);
          ("iterations", Obs.Int st.iterations);
          ("oracle_queries", Obs.Int st.oracle_queries);
        ];
    outcome
  in
  let initial =
    (* deterministic initial probes: a richer starting example set prunes
       most wirings immediately and makes the final uniqueness proof much
       cheaper (Jha et al. seed with random examples for the same reason) *)
    let w = spec.Encode.width in
    let mask = (1 lsl w) - 1 in
    let patterns =
      [
        (fun _ -> 0);
        (fun _ -> 1);
        (fun j -> (0x5555 + j) land mask);
        (fun j -> (0xCC3 * (j + 7)) land mask);
      ]
    in
    Option.value initial_inputs
      ~default:
        (List.map
           (fun f -> List.init spec.Encode.ninputs f)
           patterns)
  in
  if reuse then (
    (* persistent solvers: each iteration only asserts the new example *)
    let sess = Encode.new_session spec in
    let rec loop iterations candidate examples =
      let stats () =
        { iterations; oracle_queries = !queries; examples = List.rev examples }
      in
      if iterations >= max_iterations then finished (Out_of_budget (stats ()))
      else begin
        Obs.Loop.iteration lp iterations
          ~attrs:[ ("examples", Obs.Int (List.length examples)) ];
        let retained = candidate <> None in
        let candidate =
          match candidate with
          | Some _ -> candidate
          | None -> Encode.next_candidate sess
        in
        match candidate with
        | None -> finished (Unrealizable (stats ()))
        | Some cand -> (
          Obs.Loop.candidate lp ~attrs:[ ("retained", Obs.Bool retained) ];
          match Encode.distinguishing sess cand with
          | None ->
            Obs.Loop.verdict lp "unique";
            finished (Synthesized (cand, stats ()))
          | Some input ->
            Obs.Loop.verdict lp "distinguished";
            let ex = ask input in
            Obs.Loop.counterexample lp;
            Encode.add_example sess ex;
            (* candidate retention: the distinguishing input separates
               the candidate from some alternative, so the oracle's
               answer falsifies at least one of the two — but not
               necessarily the candidate. When the oracle agrees with
               the candidate, only the alternative dies: skip the
               synthesis re-solve and keep the verifier's differs
               constraint in place, so the next distinguishing query is
               a pure strengthening of this one. *)
            let keep = candidate_holds ?pool cand ex examples in
            loop (iterations + 1)
              (if keep then Some cand else None)
              (ex :: examples))
      end
    in
    let seed = List.map ask initial in
    List.iter (Encode.add_example sess) seed;
    loop 0 None seed)
  else
    let rec loop iterations examples =
      let stats () =
        { iterations; oracle_queries = !queries; examples = List.rev examples }
      in
      if iterations >= max_iterations then finished (Out_of_budget (stats ()))
      else begin
        Obs.Loop.iteration lp iterations
          ~attrs:[ ("examples", Obs.Int (List.length examples)) ];
        match Encode.synthesize_candidate spec ~examples with
        | None -> finished (Unrealizable (stats ()))
        | Some candidate -> (
          Obs.Loop.candidate lp;
          match Encode.distinguishing_input spec ~examples candidate with
          | None ->
            Obs.Loop.verdict lp "unique";
            finished (Synthesized (candidate, stats ()))
          | Some input ->
            Obs.Loop.verdict lp "distinguished";
            let ex = ask input in
            Obs.Loop.counterexample lp;
            loop (iterations + 1) (ex :: examples))
      end
    in
    loop 0 (List.map ask initial)

let verify_against (spec : Encode.spec) prog ~spec_fn =
  let w = spec.Encode.width in
  let inputs =
    List.init spec.Encode.ninputs (fun j ->
        Bv.var ~width:w (Printf.sprintf "cx%d" j))
  in
  let got = Straightline.to_terms prog inputs in
  let want = spec_fn inputs in
  if List.length got <> List.length want then
    invalid_arg "Synth.verify_against: output arity mismatch";
  let differs = Bv.disj (List.map2 Bv.neq got want) in
  match Solver.check_formulas [ differs ] with
  | Error () -> Ok ()
  | Ok env ->
    Error (List.init spec.Encode.ninputs (fun j ->
        env.Bv.bv (Printf.sprintf "cx%d" j)))
