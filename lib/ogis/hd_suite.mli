(** A Hacker's-Delight-style benchmark suite.

    The ICSE 2010 paper behind Section 4 evaluates oracle-guided
    synthesis on 25 bit-manipulation programs from Hacker's Delight;
    this module reproduces a representative subset. Each benchmark
    packages the component library (the structure hypothesis), a
    reference implementation serving as the I/O oracle, and the formal
    specification used to verify the synthesized program. *)

type benchmark = {
  name : string;
  description : string;
  library : width:int -> Component.t list;
  arity : int;
  reference : width:int -> int list -> int list;  (** the I/O oracle *)
  spec : width:int -> Smt.Bv.term list -> Smt.Bv.term list;
}

val all : benchmark list

val find : string -> benchmark
(** Raises [Not_found]. *)

type outcome = {
  benchmark : benchmark;
  result :
    (Straightline.t * Synth.stats, (Synth.outcome, Synth.partial) Budget.outcome)
    result;
      (** [Error] carries the full non-success outcome (unrealizable, or
          exhausted with its partial) *)
  verified : bool;
  seconds : float;
}

val run : ?width:int -> ?pool:Par.Pool.t -> benchmark -> outcome
(** Synthesize at the given width (default 8) and verify the result
    against [spec] with an SMT equivalence query. [?pool] is forwarded
    to [Synth.synthesize] for the candidate re-check fan-out. *)

val run_all : ?width:int -> ?pool:Par.Pool.t -> unit -> outcome list
(** Run the whole suite, in [all]'s order. With [?pool], one pool task
    per benchmark (the benchmarks share no state); each benchmark's
    outcome — synthesized program, verification, statistics — is the
    same as a sequential run, only the wall-clock order of execution
    differs. *)
