(** The oracle-guided synthesis loop (Section 4.2 of the paper).

    Sciduction instance: the structure hypothesis H is "loop-free
    compositions of the component library"; the inductive engine I learns
    from distinguishing inputs; the deductive engine D is the SMT solver
    answering the candidate and distinguishing-input queries. The
    specification is only an I/O oracle. *)

type oracle = int list -> int list

type stats = {
  iterations : int;  (** distinguishing-input rounds *)
  oracle_queries : int;
  examples : (int list * int list) list;  (** final example set *)
}

type outcome =
  | Synthesized of Straightline.t * stats
  | Unrealizable of stats
      (** no library program is consistent with the I/O examples: the
          structure hypothesis is invalid and infeasibility is reported
          (left branch of Fig. 7) *)

(** What an exhausted run still holds: [best] is the last candidate
    consistent with every example seen (its uniqueness proof did not
    finish — it may still disagree with the oracle on unseen inputs),
    and [stats.examples] the oracle answers gathered, a sound warm-start
    via [?initial_inputs]. *)
type partial = {
  best : Straightline.t option;
  stats : stats;
  reason : Budget.reason;
}

val synthesize :
  ?max_iterations:int ->
  ?initial_inputs:int list list ->
  ?reuse:bool ->
  ?pool:Par.Pool.t ->
  ?budget:Budget.t ->
  Encode.spec ->
  oracle ->
  (outcome, partial) Budget.outcome
(** [synthesize spec oracle] runs the loop: synthesize a candidate
    consistent with the examples seen so far, ask for a distinguishing
    input, query the oracle on it, repeat. Starts from the all-zero
    input unless [initial_inputs] is given. With [reuse] (the default)
    one pair of incremental solvers persists across iterations via
    {!Encode.session}; [~reuse:false] rebuilds both encodings each
    iteration and exists as the benchmark baseline.

    [?pool] parallelizes the candidate-vs-counterexample re-check of the
    retention step across the whole example set; the loop's verdicts and
    iteration structure are unchanged.

    [?budget] (default unlimited) meters the loop: iterations count
    distinguishing rounds (also capped by [max_iterations], which now
    exhausts instead of answering a dedicated constructor), the conflict
    pool is drained by both solvers, and a query abandoned mid-loop
    exhausts with the corresponding reason. A [Converged] verdict is
    exact; [Exhausted] makes no claim beyond its [partial]. *)

val verify_against :
  Encode.spec ->
  Straightline.t ->
  spec_fn:(Smt.Bv.term list -> Smt.Bv.term list) ->
  (unit, int list) result
(** Structure-hypothesis testing (Section 6 of the paper): check the
    synthesized program equivalent to a formal specification with one
    SMT query. [Error cex] returns a counterexample input. *)
