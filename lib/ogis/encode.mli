(** The location-variable SMT encoding of component-based synthesis
    (Jha, Gulwani, Seshia, Tiwari — ICSE 2010, as summarized in Section 4
    of the paper).

    Each library component is used exactly once; integer-valued location
    variables choose where each component sits in the straight-line
    program and where its inputs come from. Well-formedness constrains
    locations (distinct outputs, acyclicity); connection constraints tie
    values at equal locations together per I/O example.

    Two queries are exposed, matching the two roles of the deductive
    engine in Section 4.2: synthesizing a candidate consistent with the
    examples, and finding a distinguishing input separating two
    non-equivalent consistent candidates. *)

type spec = {
  width : int;  (** word width of the synthesized program *)
  ninputs : int;
  noutputs : int;
  library : Component.t list;
}

val loc_width : spec -> int
(** Bits used for location variables. *)

val synthesize_candidate :
  spec -> examples:(int list * int list) list -> Straightline.t option
(** A program over the library consistent with every example, or [None]
    if no such program exists (the "infeasibility reported" branch of
    Fig. 7). *)

val distinguishing_input :
  spec ->
  examples:(int list * int list) list ->
  Straightline.t ->
  int list option
(** An input on which some other library program — also consistent with
    all examples — disagrees with the candidate; [None] means the
    candidate is semantically unique and synthesis can stop. *)

(** {2 Persistent sessions}

    [synthesize_candidate] and [distinguishing_input] rebuild both
    encodings from scratch on every call. A {!session} instead keeps two
    incremental solvers alive across the whole OGIS loop — one for the
    candidate query, one for the distinguishing-input query — so each
    iteration only asserts the constraints of the {e new} example, and
    clauses learned in earlier iterations keep pruning the search. *)

type session

val new_session : spec -> session
(** Fresh session with no examples: well-formedness asserted in both
    solvers, the symbolic distinguishing example asserted in the
    verification solver. *)

val add_example : session -> int list * int list -> unit
(** Assert one concrete I/O example in both solvers (permanently — the
    example set only grows). *)

val next_candidate : session -> Straightline.t option
(** Like {!synthesize_candidate} over all examples added so far. *)

val distinguishing : session -> Straightline.t -> int list option
(** Like {!distinguishing_input} over all examples added so far; the
    candidate-specific constraint is asserted in a scope and retracted
    before returning. *)
