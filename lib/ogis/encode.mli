(** The location-variable SMT encoding of component-based synthesis
    (Jha, Gulwani, Seshia, Tiwari — ICSE 2010, as summarized in Section 4
    of the paper).

    Each library component is used exactly once; integer-valued location
    variables choose where each component sits in the straight-line
    program and where its inputs come from. Well-formedness constrains
    locations (distinct outputs, acyclicity); connection constraints tie
    values at equal locations together per I/O example.

    Two queries are exposed, matching the two roles of the deductive
    engine in Section 4.2: synthesizing a candidate consistent with the
    examples, and finding a distinguishing input separating two
    non-equivalent consistent candidates. *)

type spec = {
  width : int;  (** word width of the synthesized program *)
  ninputs : int;
  noutputs : int;
  library : Component.t list;
}

val loc_width : spec -> int
(** Bits used for location variables. *)

val synthesize_candidate :
  ?limits:Smt.Sat.limits ->
  spec ->
  examples:(int list * int list) list ->
  [ `Candidate of Straightline.t
  | `Unrealizable
  | `Unknown of Smt.Sat.reason ]
(** A program over the library consistent with every example;
    [`Unrealizable] if no such program exists (the "infeasibility
    reported" branch of Fig. 7); [`Unknown] if the (optionally bounded)
    solver abandoned the query. *)

val distinguishing_input :
  ?limits:Smt.Sat.limits ->
  spec ->
  examples:(int list * int list) list ->
  Straightline.t ->
  [ `Input of int list | `Unique | `Unknown of Smt.Sat.reason ]
(** An input on which some other library program — also consistent with
    all examples — disagrees with the candidate; [`Unique] means the
    candidate is semantically unique and synthesis can stop. *)

(** {2 Persistent sessions}

    [synthesize_candidate] and [distinguishing_input] rebuild both
    encodings from scratch on every call. A {!session} instead keeps two
    incremental solvers alive across the whole OGIS loop — one for the
    candidate query, one for the distinguishing-input query — so each
    iteration only asserts the constraints of the {e new} example, and
    clauses learned in earlier iterations keep pruning the search. *)

type session

val new_session : spec -> session
(** Fresh session with no examples: well-formedness asserted in both
    solvers, the symbolic distinguishing example asserted in the
    verification solver. *)

val add_example : session -> int list * int list -> unit
(** Assert one concrete I/O example in both solvers (permanently — the
    example set only grows). *)

val next_candidate :
  ?limits:Smt.Sat.limits ->
  session ->
  [ `Candidate of Straightline.t
  | `Unrealizable
  | `Unknown of Smt.Sat.reason ]
(** Like {!synthesize_candidate} over all examples added so far.
    [?limits] bounds this query (installed on the session's synthesis
    solver; an abandoned query leaves the session usable). *)

val distinguishing :
  ?limits:Smt.Sat.limits ->
  session ->
  Straightline.t ->
  [ `Input of int list | `Unique | `Unknown of Smt.Sat.reason ]
(** Like {!distinguishing_input} over all examples added so far; the
    candidate-specific constraint is asserted in a scope and retracted
    before returning. *)

val session_conflicts : session -> int
(** Cumulative conflicts across both of the session's solvers; callers
    metering a conflict pool charge per-query deltas of this. *)
