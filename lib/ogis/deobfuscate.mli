(** Malware deobfuscation as program re-synthesis (Section 4.1).

    The obfuscated program is treated purely as an I/O oracle — the
    synthesizer never inspects its syntax, so the cost of synthesis
    depends on the program's intrinsic functionality, not on the
    obfuscations applied to it. *)

val oracle_of_program : Prog.Lang.t -> Synth.oracle
(** Wrap an interpreter run as an I/O oracle; inputs/outputs follow the
    program's declared input/output order. *)

type result = {
  clean : Straightline.t;
  stats : Synth.stats;
  seconds : float;
}

(** Why deobfuscation produced no clean program: the library cannot
    express the oracle at all, or the synthesis budget ran out first
    (the partial carries the best candidate and the examples gathered,
    a sound warm start for a retry). *)
type failure =
  | Unrealizable of Synth.stats
  | Exhausted of Synth.partial

val run :
  ?max_iterations:int ->
  ?initial_inputs:int list list ->
  ?reuse:bool ->
  ?pool:Par.Pool.t ->
  ?budget:Budget.t ->
  library:Component.t list ->
  Prog.Lang.t ->
  (result, failure) Stdlib.result
(** Deobfuscate a program against a component library. [Error] carries
    the non-success outcome. [initial_inputs], [reuse], [pool] and
    [budget] are forwarded to {!Synth.synthesize}. *)
