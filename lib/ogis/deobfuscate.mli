(** Malware deobfuscation as program re-synthesis (Section 4.1).

    The obfuscated program is treated purely as an I/O oracle — the
    synthesizer never inspects its syntax, so the cost of synthesis
    depends on the program's intrinsic functionality, not on the
    obfuscations applied to it. *)

val oracle_of_program : Prog.Lang.t -> Synth.oracle
(** Wrap an interpreter run as an I/O oracle; inputs/outputs follow the
    program's declared input/output order. *)

type result = {
  clean : Straightline.t;
  stats : Synth.stats;
  seconds : float;
}

val run :
  ?max_iterations:int ->
  ?initial_inputs:int list list ->
  ?reuse:bool ->
  ?pool:Par.Pool.t ->
  library:Component.t list ->
  Prog.Lang.t ->
  (result, Synth.outcome) Stdlib.result
(** Deobfuscate a program against a component library. [Error] carries
    the non-success outcome. [initial_inputs], [reuse] and [pool] are
    forwarded to {!Synth.synthesize}. *)
