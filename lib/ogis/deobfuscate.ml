module Lang = Prog.Lang
module Interp = Prog.Interp

let oracle_of_program (p : Lang.t) ins =
  let bound = List.map2 (fun x v -> (x, v)) p.Lang.inputs ins in
  List.map snd (Interp.run p bound)

type result = {
  clean : Straightline.t;
  stats : Synth.stats;
  seconds : float;
}

type failure =
  | Unrealizable of Synth.stats
  | Exhausted of Synth.partial

let run ?max_iterations ?initial_inputs ?reuse ?pool ?budget ~library
    (p : Lang.t) =
  let spec =
    {
      Encode.width = p.Lang.width;
      ninputs = List.length p.Lang.inputs;
      noutputs = List.length p.Lang.outputs;
      library;
    }
  in
  let t0 = Unix.gettimeofday () in
  match
    Synth.synthesize ?max_iterations ?initial_inputs ?reuse ?pool ?budget spec
      (oracle_of_program p)
  with
  | Budget.Converged (Synth.Synthesized (clean, stats)) ->
    Ok { clean; stats; seconds = Unix.gettimeofday () -. t0 }
  | Budget.Converged (Synth.Unrealizable stats) -> Error (Unrealizable stats)
  | Budget.Exhausted partial -> Error (Exhausted partial)
