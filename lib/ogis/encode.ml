module Bv = Smt.Bv
module Solver = Smt.Solver

type spec = {
  width : int;
  ninputs : int;
  noutputs : int;
  library : Component.t list;
}

let num_locations s = s.ninputs + List.length s.library

let loc_width s =
  (* must also represent the exclusive upper bound [num_locations s]
     itself, which appears as a constant in the range constraints *)
  let n = num_locations s in
  let rec bits k = if 1 lsl k > n then k else bits (k + 1) in
  bits 1

(* variable names; the per-example index [e] keeps value variables of
   different examples apart, so one persistent solver can accumulate
   examples (the symbolic distinguishing example uses the sentinel
   index -1, which no concrete example ever gets) *)
let lo i = Printf.sprintf "lo%d" i
let li i j = Printf.sprintf "li%d_%d" i j
let lout k = Printf.sprintf "lout%d" k
let vo e i = Printf.sprintf "vo%d_%d" e i
let vi e i j = Printf.sprintf "vi%d_%d_%d" e i j
let dx j = Printf.sprintf "dx%d" j

let lconst s v = Bv.const ~width:(loc_width s) v
let lvar s name = Bv.var ~width:(loc_width s) name

(* ---- well-formedness: ranges, distinct outputs, acyclicity ---- *)
let wfp s =
  let n = List.length s.library in
  let nloc = num_locations s in
  let ranges =
    List.concat
      (List.mapi
         (fun i (c : Component.t) ->
           let out_range =
             [
               Bv.ule (lconst s s.ninputs) (lvar s (lo i));
               Bv.ult (lvar s (lo i)) (lconst s nloc);
             ]
           in
           let in_ranges =
             List.concat
               (List.init c.Component.arity (fun j ->
                    [
                      Bv.ult (lvar s (li i j)) (lconst s nloc);
                      (* acyclicity *)
                      Bv.ult (lvar s (li i j)) (lvar s (lo i));
                    ]))
           in
           out_range @ in_ranges)
         s.library)
  in
  let lib = Array.of_list s.library in
  let distinct =
    List.concat
      (List.init n (fun i ->
           List.init (n - i - 1) (fun d ->
               let j = i + d + 1 in
               (* interchangeable identical components: break the symmetry
                  by ordering their output locations (strictness also
                  subsumes distinctness) *)
               if lib.(i).Component.name = lib.(j).Component.name then
                 Bv.ult (lvar s (lo i)) (lvar s (lo j))
               else Bv.neq (lvar s (lo i)) (lvar s (lo j)))))
  in
  let out_ranges =
    List.init s.noutputs (fun k -> Bv.ult (lvar s (lout k)) (lconst s nloc))
  in
  ranges @ distinct @ out_ranges

(* Connect a port to every possible source: the location variable [lport]
   selecting source [l] forces the port's value [vport] to equal the value
   there. Input locations are static constants; component output locations
   are the [lo] variables themselves — the wiring is dynamic, so the
   comparison must be against [lo i'], not against a fixed slot. *)
let port_connections s ~input_term e lport vport =
  let to_inputs =
    List.init s.ninputs (fun l ->
        Bv.fimplies (Bv.eq lport (lconst s l)) (Bv.eq vport (input_term l)))
  in
  let to_components =
    List.mapi
      (fun i' _ ->
        Bv.fimplies
          (Bv.eq lport (lvar s (lo i')))
          (Bv.eq vport (Bv.var ~width:s.width (vo e i'))))
      s.library
  in
  to_inputs @ to_components

(* ---- connection + semantics constraints for one example ---- *)
let example_constraints s ~input_term e =
  let conns = ref [] in
  List.iteri
    (fun i (c : Component.t) ->
      (* component semantics *)
      let args =
        List.init c.Component.arity (fun j -> Bv.var ~width:s.width (vi e i j))
      in
      conns :=
        Bv.eq (Bv.var ~width:s.width (vo e i)) (Component.apply c args)
        :: !conns;
      (* input port connections *)
      for j = 0 to c.Component.arity - 1 do
        conns :=
          port_connections s ~input_term e
            (lvar s (li i j))
            (Bv.var ~width:s.width (vi e i j))
          @ !conns
      done)
    s.library;
  !conns

(* program output k equals [term] in example [e] *)
let output_constraint s ~input_term e k term =
  Bv.conj (port_connections s ~input_term e (lvar s (lout k)) term)

let concrete_example_formulas s e (ins, outs) =
  let input_term j = Bv.const ~width:s.width (List.nth ins j) in
  example_constraints s ~input_term e
  @ List.mapi
      (fun k out ->
        output_constraint s ~input_term e k (Bv.const ~width:s.width out))
      outs

(* ---- decoding a model into a straight-line program ---- *)
let decode s (env : Bv.env) =
  let placed =
    List.mapi (fun i c -> (env.Bv.bv (lo i), i, c)) s.library
    |> List.sort compare
  in
  (* model location -> straight-line location *)
  let loc_map = Hashtbl.create 16 in
  for j = 0 to s.ninputs - 1 do
    Hashtbl.replace loc_map j j
  done;
  List.iteri
    (fun t (l, _, _) -> Hashtbl.replace loc_map l (s.ninputs + t))
    placed;
  let lines =
    List.map
      (fun (_, i, (c : Component.t)) ->
        let args =
          List.init c.Component.arity (fun j ->
              Hashtbl.find loc_map (env.Bv.bv (li i j)))
        in
        { Straightline.comp = c; args })
      placed
  in
  let outputs =
    List.init s.noutputs (fun k -> Hashtbl.find loc_map (env.Bv.bv (lout k)))
  in
  Straightline.make ~width:s.width ~ninputs:s.ninputs lines ~outputs

let synthesize_candidate ?limits s ~examples =
  let formulas =
    wfp s
    @ List.concat (List.mapi (concrete_example_formulas s) examples)
  in
  (* location variables may be unconstrained in corner cases (e.g. no
     examples); anchor them into range by the wfp constraints above *)
  match Solver.check_formulas ?limits formulas with
  | `Unsat -> `Unrealizable
  | `Unknown r -> `Unknown r
  | `Sat env -> `Candidate (decode s env)

(* ---- persistent incremental session ---- *)

(* Two solvers live for the whole OGIS run. The synthesis solver only
   ever gains constraints (each new example strengthens it), so it needs
   no retraction at all. The verification solver carries the symbolic
   "alternative program on a symbolic input" example permanently; the
   per-candidate "outputs differ" disjunction is a retractable
   assertion, and it is retracted only when the candidate actually
   changes: while the candidate survives (the common case once the loop
   converges), consecutive distinguishing queries are a monotone
   strengthening of one another, and the final uniqueness proof is an
   incremental continuation of the previous query's search rather than
   a from-scratch solve. Learned clauses and the bit-blasted encoding
   survive across iterations in both solvers. *)
type session = {
  sspec : spec;
  synth : Solver.t;
  verify : Solver.t;
  mutable nexamples : int;
  (* candidate whose differs-disjunction is currently asserted in
     [verify]; compared physically — the driving loop hands the same
     value back when it retains a candidate *)
  mutable differs : (Straightline.t * Solver.retractable) option;
}

let sym_example = -1
let sym_inputs s = List.init s.ninputs (fun j -> Bv.var ~width:s.width (dx j))

let new_session s =
  let synth = Solver.create () in
  let verify = Solver.create () in
  List.iter (Solver.assert_formula synth) (wfp s);
  List.iter (Solver.assert_formula verify) (wfp s);
  let sym = sym_inputs s in
  let input_term j = List.nth sym j in
  List.iter
    (Solver.assert_formula verify)
    (example_constraints s ~input_term sym_example);
  { sspec = s; synth; verify; nexamples = 0; differs = None }

let add_example sess ex =
  let e = sess.nexamples in
  sess.nexamples <- e + 1;
  let fs = concrete_example_formulas sess.sspec e ex in
  List.iter (Solver.assert_formula sess.synth) fs;
  (* named on the verification side: a uniqueness proof's unsat core
     then blames the examples that pinned the candidate down *)
  ignore
    (Solver.assert_named sess.verify (Printf.sprintf "ex%d" e) (Bv.conj fs)
      : Solver.retractable)

let session_conflicts sess =
  (Solver.sat_stats sess.synth).Smt.Sat.conflicts
  + (Solver.sat_stats sess.verify).Smt.Sat.conflicts

let next_candidate ?limits sess =
  Option.iter (Solver.set_limits sess.synth) limits;
  match Solver.check sess.synth with
  | Solver.Unsat -> `Unrealizable
  | Solver.Unknown r -> `Unknown r
  | Solver.Sat -> `Candidate (decode sess.sspec (Solver.model_env sess.synth))

let distinguishing ?limits sess candidate =
  let s = sess.sspec in
  (match sess.differs with
  | Some (prev, _) when prev == candidate -> ()
  | prev ->
    (match prev with
    | Some (_, r) -> Solver.retract sess.verify r
    | None -> ());
    let sym = sym_inputs s in
    let input_term j = List.nth sym j in
    let candidate_outs = Straightline.to_terms candidate sym in
    let differs =
      Bv.disj
        (List.mapi
           (fun k cand_out ->
             Bv.fnot (output_constraint s ~input_term sym_example k cand_out))
           candidate_outs)
    in
    let r = Solver.assert_named sess.verify "differs" differs in
    sess.differs <- Some (candidate, r));
  Option.iter (Solver.set_limits sess.verify) limits;
  match Solver.check sess.verify with
  | Solver.Unsat -> `Unique
  | Solver.Unknown r -> `Unknown r
  | Solver.Sat ->
    `Input (List.init s.ninputs (fun j -> Solver.value sess.verify (dx j)))

let distinguishing_input ?limits s ~examples candidate =
  let e_sym = List.length examples in
  let sym_inputs = List.init s.ninputs (fun j -> Bv.var ~width:s.width (dx j)) in
  let input_term j = List.nth sym_inputs j in
  let candidate_outs = Straightline.to_terms candidate sym_inputs in
  (* the alternative program's outputs differ on the symbolic input *)
  let differs =
    Bv.disj
      (List.mapi
         (fun k cand_out ->
           Bv.fnot (output_constraint s ~input_term e_sym k cand_out))
         candidate_outs)
  in
  let formulas =
    wfp s
    @ List.concat (List.mapi (concrete_example_formulas s) examples)
    @ example_constraints s ~input_term e_sym
    @ [ differs ]
  in
  match Solver.check_formulas ?limits formulas with
  | `Unsat -> `Unique
  | `Unknown r -> `Unknown r
  | `Sat env -> `Input (List.init s.ninputs (fun j -> env.Bv.bv (dx j)))
