module Bv = Smt.Bv

type benchmark = {
  name : string;
  description : string;
  library : width:int -> Component.t list;
  arity : int;
  reference : width:int -> int list -> int list;
  spec : width:int -> Bv.term list -> Bv.term list;
}

let mask ~width = (1 lsl width) - 1
let m ~width v = v land mask ~width
let one1 f ~width = function [ x ] -> [ m ~width (f ~width x) ] | _ -> invalid_arg "arity"
let one2 f ~width = function
  | [ x; y ] -> [ m ~width (f ~width x y) ]
  | _ -> invalid_arg "arity"

let s1 f ~width = function [ x ] -> [ (f ~width x : Bv.term) ] | _ -> invalid_arg "arity"
let s2 f ~width = function
  | [ x; y ] -> [ (f ~width x y : Bv.term) ]
  | _ -> invalid_arg "arity"

let c ~width v = Bv.const ~width v

let all =
  [
    {
      name = "hd01-turn-off-rightmost-1";
      description = "x & (x - 1)";
      library = (fun ~width:_ -> [ Component.dec; Component.and_ ]);
      arity = 1;
      reference = one1 (fun ~width:_ x -> x land (x - 1));
      spec = s1 (fun ~width x -> Bv.band x (Bv.bsub x (c ~width 1)));
    };
    {
      name = "hd02-test-power-of-2-mask";
      description = "x & (x + 1)  (0 iff x is 2^n - 1)";
      library = (fun ~width:_ -> [ Component.inc; Component.and_ ]);
      arity = 1;
      reference = one1 (fun ~width:_ x -> x land (x + 1));
      spec = s1 (fun ~width x -> Bv.band x (Bv.badd x (c ~width 1)));
    };
    {
      name = "hd03-isolate-rightmost-1";
      description = "x & -x";
      library = (fun ~width:_ -> [ Component.neg; Component.and_ ]);
      arity = 1;
      reference = one1 (fun ~width:_ x -> x land -x);
      spec = s1 (fun ~width:_ x -> Bv.band x (Bv.bneg x));
    };
    {
      name = "hd04-mask-trailing-0s";
      description = "~x & (x - 1)";
      library = (fun ~width:_ -> [ Component.not_; Component.dec; Component.and_ ]);
      arity = 1;
      reference = one1 (fun ~width:_ x -> lnot x land (x - 1));
      spec = s1 (fun ~width x -> Bv.band (Bv.bnot x) (Bv.bsub x (c ~width 1)));
    };
    {
      name = "hd05-propagate-rightmost-1";
      description = "x | (x - 1)";
      library = (fun ~width:_ -> [ Component.dec; Component.or_ ]);
      arity = 1;
      reference = one1 (fun ~width:_ x -> x lor (x - 1));
      spec = s1 (fun ~width x -> Bv.bor x (Bv.bsub x (c ~width 1)));
    };
    {
      name = "hd06-turn-on-rightmost-0";
      description = "x | (x + 1)";
      library = (fun ~width:_ -> [ Component.inc; Component.or_ ]);
      arity = 1;
      reference = one1 (fun ~width:_ x -> x lor (x + 1));
      spec = s1 (fun ~width x -> Bv.bor x (Bv.badd x (c ~width 1)));
    };
    {
      name = "hd07-isolate-rightmost-0";
      description = "~x & (x + 1)";
      library = (fun ~width:_ -> [ Component.not_; Component.inc; Component.and_ ]);
      arity = 1;
      reference = one1 (fun ~width:_ x -> lnot x land (x + 1));
      spec = s1 (fun ~width x -> Bv.band (Bv.bnot x) (Bv.badd x (c ~width 1)));
    };
    {
      name = "hd08-average-no-overflow";
      description = "(x & y) + ((x ^ y) >> 1)";
      library =
        (fun ~width:_ ->
          [ Component.and_; Component.xor; Component.lshr_const 1; Component.add ]);
      arity = 2;
      reference = one2 (fun ~width:_ x y -> (x land y) + ((x lxor y) lsr 1));
      spec =
        s2 (fun ~width x y ->
            Bv.badd (Bv.band x y) (Bv.blshr (Bv.bxor x y) (c ~width 1)));
    };
    {
      name = "hd09-xor-difference";
      description = "(x | y) - (x & y)  (= x ^ y)";
      library = (fun ~width:_ -> [ Component.or_; Component.and_; Component.sub ]);
      arity = 2;
      reference = one2 (fun ~width:_ x y -> (x lor y) - (x land y));
      spec = s2 (fun ~width:_ x y -> Bv.bxor x y);
    };
    {
      name = "hd10-not-equal-01";
      description = "1 <= (x ^ y) ? 1 : 0  (= x <> y as 0/1)";
      library = (fun ~width -> [ Component.xor; Component.ule01; Component.const ~width 1 ]);
      arity = 2;
      reference = one2 (fun ~width:_ x y -> if x <> y then 1 else 0);
      spec =
        s2 (fun ~width x y ->
            Bv.ite (Bv.eq x y) (c ~width 0) (c ~width 1));
    };
  ]

let find name = List.find (fun b -> b.name = name) all

type outcome = {
  benchmark : benchmark;
  result :
    (Straightline.t * Synth.stats, (Synth.outcome, Synth.partial) Budget.outcome)
    result;
  verified : bool;
  seconds : float;
}

let run ?(width = 8) ?pool b =
  let spec_record =
    { Encode.width; ninputs = b.arity; noutputs = 1; library = b.library ~width }
  in
  let t0 = Unix.gettimeofday () in
  let result =
    match Synth.synthesize ?pool spec_record (b.reference ~width) with
    | Budget.Converged (Synth.Synthesized (p, stats)) -> Ok (p, stats)
    | other -> Error other
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let verified =
    match result with
    | Error _ -> false
    | Ok (p, _) ->
      Synth.verify_against spec_record p ~spec_fn:(b.spec ~width) = Ok ()
  in
  { benchmark = b; result; verified; seconds }

(* Whole-suite fan-out: benchmarks are independent (each [run] builds
   its own solvers), so one pool task per benchmark; tasks must not
   nest, so the per-benchmark runs themselves stay sequential inside.
   Results come back in suite order. *)
let run_all ?(width = 8) ?pool () =
  match pool with
  | Some pool when Par.Pool.jobs pool > 1 ->
    Par.map_list pool (fun b -> run ~width b) all
  | _ -> List.map (fun b -> run ~width b) all
