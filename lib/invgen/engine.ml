type report = {
  candidates : int;
  proven : Candidates.t list;
  verdict : Induction.verdict;
  verdict_unaided : Induction.verdict;
}

type partial = {
  p_candidates : int;
  survivors : Candidates.t list;
  filtered : bool;
  reason : Budget.reason;
}

let string_of_verdict = function
  | Induction.Proved -> "proved"
  | Induction.Cex_in_base -> "cex_in_base"
  | Induction.Unknown -> "unknown"
  | Induction.Aborted _ -> "aborted"

let run ?frames ?seed ?pool ?(budget = Budget.unlimited) aig ~bad =
  let meter = Budget.start budget in
  let lp =
    Obs.Loop.start "invgen"
      ~attrs:[ ("latches", Obs.Int (Aig.num_latches aig)) ]
  in
  let exhaust ~p_candidates ~survivors ~filtered reason =
    Obs.Loop.budget_exhausted lp
      ~reason:(Budget.reason_to_string reason)
      ~attrs:
        [
          ("survivors", Obs.Int (List.length survivors));
          ("filtered", Obs.Bool filtered);
        ];
    Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "exhausted") ];
    Budget.Exhausted { p_candidates; survivors; filtered; reason }
  in
  let cands =
    Obs.with_span "invgen.simulate" (fun () ->
        Candidates.from_simulation ?frames ?seed ?pool aig)
  in
  (* the simulation-pruned candidate set is this loop's hypothesis *)
  Obs.Loop.candidate lp ~attrs:[ ("count", Obs.Int (List.length cands)) ];
  match Induction.filter_inductive ~loop:lp ~meter aig cands with
  | Budget.Exhausted (survivors, reason) ->
    exhaust ~p_candidates:(List.length cands) ~survivors ~filtered:false reason
  | Budget.Converged proven -> (
    (* the strengthened and unaided property checks are independent SAT
       problems over separate solvers, so with a pool they race on two
       domains; loop events are still emitted in the sequential order.
       The meter's counters are atomic, so the racing checks share the
       conflict pool safely. *)
    let emit_verdict v =
      Obs.Loop.verdict lp (string_of_verdict v)
        ~attrs:[ ("proven", Obs.Int (List.length proven)) ]
    in
    let verdict, verdict_unaided =
      match pool with
      | Some pool when Par.Pool.jobs pool > 1 ->
        let aided =
          Par.submit pool (fun () ->
              Induction.prove_property ~meter aig ~bad ~invariants:proven)
        and unaided =
          Par.submit pool (fun () ->
              Induction.prove_property ~meter aig ~bad ~invariants:[])
        in
        let v = Par.await pool aided in
        emit_verdict v;
        (v, Par.await pool unaided)
      | _ ->
        let v = Induction.prove_property ~meter aig ~bad ~invariants:proven in
        emit_verdict v;
        (v, Induction.prove_property ~meter aig ~bad ~invariants:[])
    in
    match verdict with
    | Induction.Aborted reason ->
      (* the fixpoint did finish: [survivors] are genuinely inductive
         even though the property check was cut short *)
      exhaust ~p_candidates:(List.length cands) ~survivors:proven
        ~filtered:true reason
    | _ ->
      Obs.Loop.finish lp
        ~attrs:
          [
            ("outcome", Obs.String (string_of_verdict verdict));
            ("unaided", Obs.String (string_of_verdict verdict_unaided));
          ];
      Budget.Converged
        { candidates = List.length cands; proven; verdict; verdict_unaided })

let ring_counter ~n =
  let aig = Aig.create () in
  let ls = List.init n (fun i -> Aig.latch ~init:(i = 0) aig) in
  let arr = Array.of_list ls in
  for i = 0 to n - 1 do
    Aig.connect aig arr.(i) arr.((i + n - 1) mod n)
  done;
  let bad = ref Aig.false_ in
  for i = 0 to n - 1 do
    bad := Aig.or2 aig !bad (Aig.and2 aig arr.(i) arr.((i + 1) mod n))
  done;
  (aig, !bad)

let counter_mod5 () =
  let aig = Aig.create () in
  let b0 = Aig.latch aig and b1 = Aig.latch aig and b2 = Aig.latch aig in
  let at4 = Aig.and2 aig b2 (Aig.and2 aig (Aig.neg b1) (Aig.neg b0)) in
  let gate x = Aig.and2 aig x (Aig.neg at4) in
  Aig.connect aig b0 (gate (Aig.neg b0));
  Aig.connect aig b1 (gate (Aig.xor2 aig b1 b0));
  Aig.connect aig b2 (gate (Aig.xor2 aig b2 (Aig.and2 aig b0 b1)));
  let bad = Aig.and2 aig b2 (Aig.and2 aig b1 b0) in
  (aig, bad)

let twin_registers ~len =
  let aig = Aig.create () in
  let x = Aig.input aig in
  let chain () =
    let stages = List.init len (fun _ -> Aig.latch aig) in
    let rec wire prev = function
      | [] -> prev
      | l :: rest ->
        Aig.connect aig l prev;
        wire l rest
    in
    wire x stages
  in
  let out1 = chain () in
  let out2 = chain () in
  (aig, Aig.xor2 aig out1 out2)

let stuck_bit =
  let aig = Aig.create () in
  let enable = Aig.input aig in
  let stuck = Aig.latch aig in
  (* next = stuck && enable: can never rise from 0 *)
  Aig.connect aig stuck (Aig.and2 aig stuck enable);
  let alarm = Aig.latch aig in
  Aig.connect aig alarm stuck;
  (aig, alarm)
