module Tseitin = Smt.Tseitin
module Sat = Smt.Sat

type verdict =
  | Proved
  | Cex_in_base
  | Unknown
  | Aborted of Budget.reason

(* shared by the metered entry points: bound one query by the meter's
   remaining pool, then charge what the query actually spent *)
let solve_metered ?meter sat assumptions =
  Option.iter
    (fun m -> Sat.set_limits sat (Smt.Govern.limits_of_meter m))
    meter;
  let c0 = Sat.num_conflicts sat in
  let r = Sat.solve_with_assumptions sat assumptions in
  Option.iter
    (fun m -> Budget.charge_conflicts m (Sat.num_conflicts sat - c0))
    meter;
  r

let tick_opt = function None -> None | Some m -> Budget.tick m

(* encode one combinational frame: node index -> Tseitin literal. AND
   operands always precede their gate (structural hashing allocates
   bottom-up), so one pass in index order suffices. *)
let encode_frame ctx aig ~latch_lits =
  let n = Aig.num_nodes aig in
  let m = Array.make n (Tseitin.false_ ctx) in
  let latch_index = Hashtbl.create 16 in
  List.iteri
    (fun k l -> Hashtbl.replace latch_index (Aig.node_of l) k)
    (Aig.latches aig);
  let lit_of l =
    let base = m.(Aig.node_of l) in
    if Aig.is_complemented l then Tseitin.not_ base else base
  in
  for i = 1 to n - 1 do
    m.(i) <-
      (if Aig.is_input_node aig i then Tseitin.fresh ctx
       else
         match Hashtbl.find_opt latch_index i with
         | Some k -> latch_lits.(k)
         | None -> (
           match Aig.and_operands aig i with
           | Some (a, b) -> Tseitin.and2 ctx (lit_of a) (lit_of b)
           | None -> Tseitin.false_ ctx))
  done;
  m

let lit_of m l =
  let base = m.(Aig.node_of l) in
  if Aig.is_complemented l then Smt.Lit.neg base else base

let candidate_lit ctx m = function
  | Candidates.Equiv (a, b) -> Tseitin.iff2 ctx (lit_of m a) (lit_of m b)
  | Candidates.Implies (a, b) -> Tseitin.implies ctx (lit_of m a) (lit_of m b)

let next_latch_lits aig m =
  Array.of_list
    (List.map
       (fun l ->
         match Aig.next_of aig l with
         | Some nx -> lit_of m nx
         | None -> invalid_arg "Induction: unconnected latch")
       (Aig.latches aig))

(* one filtering pass; [`Fixpoint] if all candidates survived *)
let filter_pass ?meter aig cands ~base =
  let ctx = Tseitin.create () in
  let init_lits =
    Array.map (fun b -> Tseitin.of_bool ctx b) (Aig.initial_state aig)
  in
  let frame_a_latches =
    if base then init_lits
    else Array.map (fun _ -> Tseitin.fresh ctx) init_lits
  in
  let m_a = encode_frame ctx aig ~latch_lits:frame_a_latches in
  let m_check =
    if base then m_a
    else begin
      (* assume all candidates in frame A, check in frame B *)
      List.iter (fun c -> Tseitin.assert_lit ctx (candidate_lit ctx m_a c)) cands;
      let latch_b = next_latch_lits aig m_a in
      encode_frame ctx aig ~latch_lits:latch_b
    end
  in
  let cand_lits = List.map (fun c -> (c, candidate_lit ctx m_check c)) cands in
  Tseitin.assert_lit ctx
    (Tseitin.or_list ctx (List.map (fun (_, l) -> Tseitin.not_ l) cand_lits));
  match solve_metered ?meter (Tseitin.solver ctx) [] with
  | Sat.Unsat -> `Fixpoint
  | Sat.Unknown r -> `Aborted (Smt.Govern.reason_of_sat r)
  | Sat.Sat ->
    `Survivors
      (List.filter_map
         (fun (c, l) -> if Tseitin.lit_of_model ctx l then Some c else None)
         cand_lits)

(* telemetry: one fixpoint pass = one loop iteration; candidates dropped
   by a pass are the counterexample that shrinks the survivor set *)
let pass_started loop ~base ~index ~survivors =
  Option.iter
    (fun lp ->
      Obs.Loop.iteration lp index
        ~attrs:
          [
            ("phase", Obs.String (if base then "base" else "step"));
            ("survivors", Obs.Int survivors);
          ])
    loop

let pass_dropped loop ~before ~after =
  Option.iter
    (fun lp ->
      Obs.Loop.counterexample lp
        ~attrs:[ ("dropped", Obs.Int (before - after)) ])
    loop

let fixpoint_fresh ?loop ?meter aig cands ~base =
  let rec go index cands =
    match cands with
    | [] -> Budget.Converged []
    | _ -> (
      match tick_opt meter with
      | Some reason -> Budget.Exhausted (cands, reason)
      | None -> (
        pass_started loop ~base ~index ~survivors:(List.length cands);
        match filter_pass ?meter aig cands ~base with
        | `Fixpoint -> Budget.Converged cands
        | `Aborted reason -> Budget.Exhausted (cands, reason)
        | `Survivors survivors ->
          pass_dropped loop ~before:(List.length cands)
            ~after:(List.length survivors);
          go (index + 1) survivors))
  in
  go 0 cands

(* Incremental fixpoint: one solver for all passes of one phase. The
   frames are encoded once. In the step phase each candidate gets a
   selector literal guarding its frame-A assumption, so the shrinking
   survivor set is expressed through assumptions instead of re-encoding;
   the per-pass "some survivor fails in the check frame" clause lives in
   a push/pop scope. Conflict clauses learned while refuting one pass
   carry over to the next. *)
let fixpoint ?loop ?meter aig cands ~base =
  match cands with
  | [] -> Budget.Converged []
  | _ ->
    let ctx = Tseitin.create () in
    let init_lits =
      Array.map (fun b -> Tseitin.of_bool ctx b) (Aig.initial_state aig)
    in
    let frame_a_latches =
      if base then init_lits
      else Array.map (fun _ -> Tseitin.fresh ctx) init_lits
    in
    let m_a = encode_frame ctx aig ~latch_lits:frame_a_latches in
    let m_check =
      if base then m_a
      else encode_frame ctx aig ~latch_lits:(next_latch_lits aig m_a)
    in
    (* (candidate, its check-frame literal, frame-A selector) *)
    let items =
      List.mapi
        (fun i c ->
          let sel =
            if base then None
            else begin
              let s = Tseitin.fresh ctx in
              Tseitin.assert_clause ctx
                [ Tseitin.not_ s; candidate_lit ctx m_a c ];
              (* an unsat core of the fixpoint pass then names which
                 frame-A candidate assumptions the proof leaned on *)
              Tseitin.name_lit ctx s (Printf.sprintf "cand%d" i);
              Some s
            end
          in
          (c, candidate_lit ctx m_check c, sel))
        cands
    in
    let sat = Tseitin.solver ctx in
    let cands_of items = List.map (fun (c, _, _) -> c) items in
    let rec go index survivors =
      match survivors with
      | [] -> Budget.Converged []
      | _ -> (
        match tick_opt meter with
        | Some reason -> Budget.Exhausted (cands_of survivors, reason)
        | None -> (
          pass_started loop ~base ~index ~survivors:(List.length survivors);
          let assumptions = List.filter_map (fun (_, _, s) -> s) survivors in
          Tseitin.push ctx;
          Tseitin.assert_clause ctx
            (List.map (fun (_, l, _) -> Tseitin.not_ l) survivors);
          let next =
            match solve_metered ?meter sat assumptions with
            | Sat.Unsat -> `Fixpoint
            | Sat.Unknown r -> `Aborted (Smt.Govern.reason_of_sat r)
            | Sat.Sat ->
              `Survivors
                (List.filter
                   (fun (_, l, _) -> Tseitin.lit_of_model ctx l)
                   survivors)
          in
          Tseitin.pop ctx;
          match next with
          | `Fixpoint -> Budget.Converged (cands_of survivors)
          | `Aborted reason -> Budget.Exhausted (cands_of survivors, reason)
          | `Survivors remaining ->
            pass_dropped loop ~before:(List.length survivors)
              ~after:(List.length remaining);
            go (index + 1) remaining))
    in
    go 0 items

let filter_inductive ?(reuse = true) ?loop ?meter aig cands =
  Aig.validate aig;
  let fixpoint = if reuse then fixpoint else fixpoint_fresh in
  match fixpoint ?loop ?meter aig cands ~base:true with
  | Budget.Exhausted _ as e -> e
  | Budget.Converged after_base -> fixpoint ?loop ?meter aig after_base ~base:false

let prove_property ?(k = 1) ?meter aig ~bad ~invariants =
  Aig.validate aig;
  if k < 1 then invalid_arg "Induction.prove_property: k must be positive";
  (* base: no bad state within the first k steps from the initial state *)
  let base =
    Obs.with_span "induction.base" ~attrs:[ ("k", Obs.Int k) ] @@ fun () ->
    let ctx = Tseitin.create () in
    let latch =
      ref (Array.map (fun b -> Tseitin.of_bool ctx b) (Aig.initial_state aig))
    in
    let bads = ref [] in
    for _ = 1 to k do
      let m = encode_frame ctx aig ~latch_lits:!latch in
      bads := lit_of m bad :: !bads;
      latch := next_latch_lits aig m
    done;
    Tseitin.assert_lit ctx (Tseitin.or_list ctx !bads);
    solve_metered ?meter (Tseitin.solver ctx) []
  in
  match base with
  | Sat.Sat -> Cex_in_base
  | Sat.Unknown r -> Aborted (Smt.Govern.reason_of_sat r)
  | Sat.Unsat ->
    (* step: k consecutive frames satisfying the invariants and ~bad,
       followed by a bad frame, must be unsatisfiable *)
    Obs.with_span "induction.step"
      ~attrs:
        [ ("k", Obs.Int k); ("invariants", Obs.Int (List.length invariants)) ]
    @@ fun () ->
    let ctx = Tseitin.create () in
    let latch =
      ref (Array.init (Aig.num_latches aig) (fun _ -> Tseitin.fresh ctx))
    in
    for _ = 1 to k do
      let m = encode_frame ctx aig ~latch_lits:!latch in
      List.iter
        (fun c -> Tseitin.assert_lit ctx (candidate_lit ctx m c))
        invariants;
      Tseitin.assert_lit ctx (Smt.Lit.neg (lit_of m bad));
      latch := next_latch_lits aig m
    done;
    let m_last = encode_frame ctx aig ~latch_lits:!latch in
    Tseitin.assert_lit ctx (lit_of m_last bad);
    (match solve_metered ?meter (Tseitin.solver ctx) [] with
    | Sat.Unsat -> Proved
    | Sat.Sat -> Unknown
    | Sat.Unknown r -> Aborted (Smt.Govern.reason_of_sat r))
