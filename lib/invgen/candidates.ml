type t =
  | Equiv of Aig.lit * Aig.lit
  | Implies of Aig.lit * Aig.lit

let holds_in aig ~latch_values ~input_values = function
  | Equiv (a, b) ->
    Aig.eval aig ~latch_values ~input_values a
    = Aig.eval aig ~latch_values ~input_values b
  | Implies (a, b) ->
    (not (Aig.eval aig ~latch_values ~input_values a))
    || Aig.eval aig ~latch_values ~input_values b

let lanes_mask = (1 lsl 62) - 1

let signature_of sig_ l =
  let w = sig_.(Aig.node_of l) in
  if Aig.is_complemented l then Array.map (fun x -> lnot x land lanes_mask) w
  else Array.copy w

let all_zero w = Array.for_all (fun x -> x = 0) w
let implies_sig a b =
  Array.for_all2 (fun wa wb -> wa land lnot wb land lanes_mask = 0) a b

let from_simulation ?(frames = 16) ?(seed = 99) ?implication_focus ?pool aig =
  Aig.validate aig;
  let sig_ = Aig.simulate_words aig ~frames ~seed in
  let n = Aig.num_nodes aig in
  let cands = ref [] in
  (* constants and equivalences over non-input, non-constant nodes; group
     by phase-normalized signature (lowest lane of frame 0 decides) *)
  let groups = Hashtbl.create 64 in
  (* inputs are free: candidates over them are simulation artifacts *)
  let is_candidate_node i = i > 0 && not (Aig.is_input_node aig i) in
  for i = 1 to n - 1 do
    if is_candidate_node i then begin
      let l = 2 * i in
      let s = signature_of sig_ l in
      if all_zero s then cands := Equiv (l, Aig.false_) :: !cands
      else if all_zero (signature_of sig_ (Aig.neg l)) then
        cands := Equiv (l, Aig.true_) :: !cands
      else begin
        (* normalize phase so complemented equivalences share a key *)
        let phase = s.(0) land 1 in
        let key =
          Array.to_list (if phase = 1 then signature_of sig_ (Aig.neg l) else s)
        in
        let l_norm = if phase = 1 then Aig.neg l else l in
        match Hashtbl.find_opt groups key with
        | None -> Hashtbl.replace groups key l_norm
        | Some rep -> cands := Equiv (l_norm, rep) :: !cands
      end
    end
  done;
  (* implications: an O(|focus|^2) scan over pure signature reads, so
     the rows fan out one pool task per antecedent literal; row order is
     preserved, giving the same candidate list as the sequential scan *)
  let focus =
    Option.value implication_focus ~default:(Aig.latches aig)
  in
  let lits = List.concat_map (fun l -> [ l; Aig.neg l ]) focus in
  let row a =
    List.filter_map
      (fun b ->
        if a <> b && a <> Aig.neg b then begin
          let sa = signature_of sig_ a and sb = signature_of sig_ b in
          if
            implies_sig sa sb && (not (all_zero sa))
            && not (all_zero (signature_of sig_ (Aig.neg b)))
          then Some (Implies (a, b))
          else None
        end
        else None)
      lits
  in
  let impls =
    match pool with
    | Some pool when Par.Pool.jobs pool > 1 ->
      List.concat (Par.map_list pool row lits)
    | _ -> List.concat_map row lits
  in
  List.rev !cands @ impls

let pp fmt = function
  | Equiv (a, b) -> Format.fprintf fmt "l%d == l%d" a b
  | Implies (a, b) -> Format.fprintf fmt "l%d => l%d" a b
