(** The end-to-end invariant generation pipeline (Section 2.4):
    hypothesize a structural form, prune candidates with simulation,
    prove the survivors by mutual induction, then use them to strengthen
    a safety property. *)

type report = {
  candidates : int;  (** matched the structure hypothesis + simulation *)
  proven : Candidates.t list;  (** the mutually inductive subset *)
  verdict : Induction.verdict;  (** for the property, with strengthening *)
  verdict_unaided : Induction.verdict;  (** plain induction, no invariants *)
}

(** What an exhausted run still holds. When [filtered] is true the
    fixpoint finished and [survivors] are genuinely mutually inductive
    (only the final property check was cut short); when false they are
    merely the candidates not yet refuted when the budget ran out. *)
type partial = {
  p_candidates : int;
  survivors : Candidates.t list;
  filtered : bool;
  reason : Budget.reason;
}

val run :
  ?frames:int ->
  ?seed:int ->
  ?pool:Par.Pool.t ->
  ?budget:Budget.t ->
  Aig.t ->
  bad:Aig.lit ->
  (report, partial) Budget.outcome
(** With [?pool], the candidate implication scan fans out across domains
    and the strengthened/unaided property checks run concurrently; the
    report is identical to a sequential run.

    [?budget] (default unlimited) meters the pipeline: iterations count
    fixpoint filtering passes, and every SAT query drains the shared
    conflict pool (the racing property checks overdraw by at most one
    in-flight query each). A [Converged] report is exact; the unaided
    verdict may read [Aborted] when the pool ran dry after the main
    verdict was already decided. *)

(** {2 Example circuits} *)

val ring_counter : n:int -> Aig.t * Aig.lit
(** One-hot rotating token over [n] latches; [bad] = two adjacent latches
    hot. *)

val counter_mod5 : unit -> Aig.t * Aig.lit
(** A 3-bit counter wrapping at 4; [bad] = count 7. The property is NOT
    inductive by itself (the unreachable state 6 steps to 7), so plain
    1-induction fails; the implications b2 => !b1 and b2 => !b0 found by
    simulation make it provable — the paper's motivating use of auxiliary
    invariants. *)

val twin_registers : len:int -> Aig.t * Aig.lit
(** Two shift registers fed by the same input; [bad] = outputs differ.
    Simulation discovers the stage-wise equivalences that prove it. *)

val stuck_bit : Aig.t * Aig.lit
(** A latch that can only ever stay 0, guarding a "bad" output. *)
