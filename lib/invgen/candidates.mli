(** Candidate invariants from random simulation.

    The structure hypothesis of the invariant-generation instance
    (Section 2.4): invariants are constants, (possibly complemented)
    equivalences, or implications over netlist literals. The inductive
    engine is deliberately rudimentary, exactly as the paper describes
    ABC's: keep every candidate matching the hypothesis that is
    consistent with the simulation signatures. *)

type t =
  | Equiv of Aig.lit * Aig.lit
      (** covers constants too: [Equiv (l, Aig.false_)] *)
  | Implies of Aig.lit * Aig.lit

val holds_in : Aig.t -> latch_values:bool array -> input_values:bool array -> t -> bool

val from_simulation :
  ?frames:int ->
  ?seed:int ->
  ?implication_focus:Aig.lit list ->
  ?pool:Par.Pool.t ->
  Aig.t ->
  t list
(** Constants and equivalences over all non-input nodes, plus
    implications among [implication_focus] literals and their negations
    (default: the latch literals). With [?pool] the quadratic
    implication scan fans out one task per antecedent literal; the
    result is identical to the sequential scan. *)

val pp : Format.formatter -> t -> unit
