(** SAT-based temporal induction — the deductive engine of the
    invariant-generation instance.

    [filter_inductive] runs the classic van-Eijk-style fixpoint: keep
    dropping candidates falsified in the base case or not preserved by
    one transition when all remaining candidates are assumed, until the
    surviving set is mutually inductive (and therefore holds in every
    reachable state).

    [prove_property] then performs k-induction on a property (default
    k = 1), optionally strengthened with proven invariants — the
    "strengthen the main safety property with auxiliary inductive
    invariants" workflow of Section 2.4. Deeper induction can substitute
    for strengthening: a property whose bad states have no length-k
    unreachable predecessor chain is k-inductive outright. *)

type verdict =
  | Proved
  | Cex_in_base
  | Unknown  (** the induction step failed; no conclusion *)

val filter_inductive :
  ?reuse:bool -> ?loop:Obs.Loop.t -> Aig.t -> Candidates.t list ->
  Candidates.t list
(** With [reuse] (the default) each phase of the fixpoint keeps one
    incremental solver across all filtering passes — selector literals
    turn the shrinking survivor set into solver assumptions;
    [~reuse:false] re-encodes both frames every pass (benchmark
    baseline). When [loop] is given, each filtering pass is reported as
    one telemetry iteration of that loop, and dropped candidates as its
    counterexamples. *)

val prove_property :
  ?k:int -> Aig.t -> bad:Aig.lit -> invariants:Candidates.t list -> verdict
