(** SAT-based temporal induction — the deductive engine of the
    invariant-generation instance.

    [filter_inductive] runs the classic van-Eijk-style fixpoint: keep
    dropping candidates falsified in the base case or not preserved by
    one transition when all remaining candidates are assumed, until the
    surviving set is mutually inductive (and therefore holds in every
    reachable state).

    [prove_property] then performs k-induction on a property (default
    k = 1), optionally strengthened with proven invariants — the
    "strengthen the main safety property with auxiliary inductive
    invariants" workflow of Section 2.4. Deeper induction can substitute
    for strengthening: a property whose bad states have no length-k
    unreachable predecessor chain is k-inductive outright. *)

type verdict =
  | Proved
  | Cex_in_base
  | Unknown  (** the induction step failed; no conclusion *)
  | Aborted of Budget.reason
      (** a solver query was cut short (budget, deadline or injected
          fault); no conclusion either way *)

val filter_inductive :
  ?reuse:bool ->
  ?loop:Obs.Loop.t ->
  ?meter:Budget.meter ->
  Aig.t ->
  Candidates.t list ->
  (Candidates.t list, Candidates.t list * Budget.reason) Budget.outcome
(** With [reuse] (the default) each phase of the fixpoint keeps one
    incremental solver across all filtering passes — selector literals
    turn the shrinking survivor set into solver assumptions;
    [~reuse:false] re-encodes both frames every pass (benchmark
    baseline). When [loop] is given, each filtering pass is reported as
    one telemetry iteration of that loop, and dropped candidates as its
    counterexamples.

    With [?meter], each pass charges one iteration and its query is
    bounded by the remaining conflict pool / deadline. [Converged]
    survivors are mutually inductive; [Exhausted] carries the survivor
    set at the moment the budget ran out — candidates not yet {e
    refuted}, with no inductiveness claim. *)

val prove_property :
  ?k:int ->
  ?meter:Budget.meter ->
  Aig.t ->
  bad:Aig.lit ->
  invariants:Candidates.t list ->
  verdict
(** [?meter] bounds the two SAT queries by the remaining pool and
    charges their conflicts; a cut-short query answers {!Aborted}. *)
