(** A minimal JSON value type with a printer and parser.

    The telemetry sinks emit JSON-lines traces and the Chrome
    [trace_event] export through this module, and the trace checker and
    tests parse them back, so printer and parser are kept mutually
    inverse on everything the sinks produce. No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Non-finite floats print as [null]
    (JSON has no NaN/infinity). *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON value; trailing garbage (other than whitespace) is an
    error. Numbers without [.]/[e] parse as [Int], the rest as
    [Float]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int] directly, or a [Float] with integral value. *)

val to_float : t -> float option
val to_str : t -> string option
