(** A process-wide registry of named counters, gauges and histograms.

    Instrumented code obtains its instrument once (typically at module
    initialization) and then updates it with a single atomic memory
    operation, so the always-on cost is one fetch-and-add — no hashing,
    no branching on an enable flag. The registry owns the names: asking
    for the same name twice returns the same instrument, and a [reset]
    zeroes values while keeping every registration alive.

    The registry is domain-safe: counters and gauges are atomics,
    histograms and the name table are mutex-guarded, so solvers running
    on [Par] pool domains update the same process-wide totals without
    losing increments.

    Counters are monotone event counts (solver conflicts, cache hits).
    Gauges are last-write-wins levels (learnt-DB size). Histograms
    record integer observations into power-of-two buckets and keep
    count/sum/min/max exactly (LBD distribution, assumption depth). *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find or register. Raises [Invalid_argument] if the name is already
    registered as a different instrument kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set_counter : counter -> int -> unit
(** Used by the legacy [Sat.reset_global_stats] shim; new code should
    reset through {!reset}. *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float
val histogram : string -> histogram
val observe : histogram -> int -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_max : histogram -> int

val hist_percentile : histogram -> float -> int
(** [hist_percentile h p] for [p] in (0, 100]: the inclusive upper bound
    of the first power-of-two bucket holding the ceil(p/100 * count)-th
    observation, clamped to the exact maximum (so [p = 100.0] is exact).
    0 when empty. Raises [Invalid_argument] when [p] is outside
    (0, 100] — a p0 or p101 is a caller bug, not a clampable request. *)

val percentile_of_buckets :
  buckets:(int * int) list -> count:int -> max:int -> float -> int
(** Same estimate (and same [p] validation) over an exported bucket
    list (snapshot form, or a bucket list parsed back from a trace's
    metrics record). *)

type snapshot_value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : int;
      min : int;  (** 0 when empty *)
      max : int;
      buckets : (int * int) list;
          (** (inclusive upper bound, observations) for non-empty
              power-of-two buckets: 0, 1, 3, 7, 15, ... *)
    }

val snapshot : unit -> (string * snapshot_value) list
(** Every registered instrument, sorted by name. *)

val to_json : snapshot_value -> Json.t
(** The trace/stats-endpoint rendering: counters as ints, gauges as
    floats, histograms as [{count, sum, min, max, buckets}]. *)

val reset : unit -> unit
(** Zero all values; registrations (and the refs instrumented code
    holds) stay valid. *)
