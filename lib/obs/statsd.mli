(** Scrapeable stats endpoint: a tiny HTTP/1.0 server on a Unix-domain
    socket that serves the {!Live} ticker's snapshots, rate windows and
    per-loop heartbeat/stall status while a run is in flight.

    Two targets:
    - [GET /metrics] — Prometheus text exposition (names sanitized to
      [sciduction_*]; histograms as cumulative [_bucket{le=...}] series,
      rates as [sciduction_rate{metric=...}] gauges, heartbeats as
      [sciduction_loop_*{loop=...}]);
    - [GET /json] (also [/]) — the same data in the {!Json} form traces
      use: the latest registry snapshot, per-interval and whole-window
      rates, and loop statuses.

    One request per connection, served sequentially from a dedicated
    domain; a scrape costs the run nothing but the snapshot read. This
    is the stats endpoint the future sciduction-as-a-service daemon
    mounts unchanged (ROADMAP item 1). *)

type t

val start : path:string -> ticker:Live.t -> unit -> (t, string) result
(** Bind and listen on Unix-domain socket [path] (a stale socket file
    is replaced) and serve scrapes from a background systhread until
    {!stop}. [Error] describes a bind/listen failure (bad directory,
    path too long for a socket address, ...). *)

val stop : t -> unit
(** Stop the server, join its thread and remove the socket file.
    Idempotent. *)

val unlink_on_sigterm : string -> unit
(** Register a Unix-socket path to be unlinked if the process receives
    SIGTERM (the service-manager kill path, which bypasses [Fun.protect]
    finalizers). The process-wide handler is installed lazily on first
    registration and exits with the conventional status 143 after the
    unlinks. {!start} registers its own path automatically; the
    verification server registers its listener socket too. *)

val forget_unlink_on_sigterm : string -> unit
(** Drop a path from the SIGTERM cleanup list (after an orderly unlink
    on the normal shutdown path). *)

val fetch : path:string -> ?target:string -> unit -> (string, string) result
(** Client side, for [sciduction_cli stats] and tests: connect to the
    socket at [path], request [target] (default [/json]) and return the
    response body. *)

val json_page : Live.t -> string
val prometheus_page : Live.t -> string
(** The page renderers, exposed for tests. *)
