type counter = int Atomic.t
type gauge = float Atomic.t

(* 1 + bits(v) buckets: observation v lands in bucket [bits v], whose
   inclusive upper bound is 2^bits - 1; bucket 0 holds v <= 0 *)
let nbuckets = 63

(* Counters and gauges are single atomics; histograms update four
   fields plus a bucket per observation, so they carry a private mutex
   (uncontended in sequential runs, and observations are far rarer than
   counter bumps). *)
type histogram = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int; (* max_int when empty *)
  mutable h_max : int;
  h_buckets : int array;
}

type entry =
  | C of counter
  | G of gauge
  | H of histogram

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

(* Guards the registry table itself (registration, snapshot, reset) —
   never the per-instrument updates. *)
let registry_lock = Mutex.create ()

let register name make describe =
  Mutex.lock registry_lock;
  let e =
    match Hashtbl.find_opt registry name with
    | Some e -> e
    | None ->
      let e = make () in
      Hashtbl.add registry name e;
      e
  in
  Mutex.unlock registry_lock;
  describe e

let kind_error name =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %s already registered as another kind" name)

let counter name =
  register name
    (fun () -> C (Atomic.make 0))
    (function C c -> c | _ -> kind_error name)

let incr (c : counter) = ignore (Atomic.fetch_and_add c 1 : int)
let add (c : counter) n = ignore (Atomic.fetch_and_add c n : int)
let counter_value (c : counter) = Atomic.get c
let set_counter (c : counter) n = Atomic.set c n

let gauge name =
  register name
    (fun () -> G (Atomic.make 0.0))
    (function G g -> g | _ -> kind_error name)

let set_gauge (g : gauge) v = Atomic.set g v
let gauge_value (g : gauge) = Atomic.get g

let histogram name =
  register name
    (fun () ->
      H
        {
          h_lock = Mutex.create ();
          h_count = 0;
          h_sum = 0;
          h_min = max_int;
          h_max = 0;
          h_buckets = Array.make nbuckets 0;
        })
    (function H h -> h | _ -> kind_error name)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      Stdlib.incr b;
      v := !v lsr 1
    done;
    min !b (nbuckets - 1)
  end

let observe h v =
  Mutex.lock h.h_lock;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1;
  Mutex.unlock h.h_lock

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_max h = h.h_max

let buckets_of_locked h =
  let buckets = ref [] in
  for b = nbuckets - 1 downto 0 do
    if h.h_buckets.(b) > 0 then
      buckets := ((1 lsl b) - 1, h.h_buckets.(b)) :: !buckets
  done;
  !buckets

let buckets_of h =
  Mutex.lock h.h_lock;
  let b = buckets_of_locked h in
  Mutex.unlock h.h_lock;
  b

let percentile_of_buckets ~buckets ~count ~max:hmax p =
  if not (p > 0.0 && p <= 100.0) then
    invalid_arg
      (Printf.sprintf "Obs.Metrics.percentile: p must be in (0, 100], got %g" p);
  if count <= 0 then 0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int count)) in
      if r < 1 then 1 else if r > count then count else r
    in
    let rec go cum = function
      | [] -> hmax
      | (le, n) :: rest ->
        let cum = cum + n in
        if cum >= rank then Stdlib.min le hmax else go cum rest
    in
    go 0 buckets
  end

let hist_percentile h p =
  percentile_of_buckets ~buckets:(buckets_of h) ~count:h.h_count ~max:h.h_max p

type snapshot_value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : int;
      min : int;
      max : int;
      buckets : (int * int) list;
    }

let snapshot () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun name e acc -> (name, e) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.map
    (fun (name, entry) ->
      let v =
        match entry with
        | C c -> Counter (Atomic.get c)
        | G g -> Gauge (Atomic.get g)
        | H h ->
          Mutex.lock h.h_lock;
          let v =
            Histogram
              {
                count = h.h_count;
                sum = h.h_sum;
                min = (if h.h_count = 0 then 0 else h.h_min);
                max = h.h_max;
                buckets = buckets_of_locked h;
              }
          in
          Mutex.unlock h.h_lock;
          v
      in
      (name, v))
    entries
  |> List.sort compare

let to_json = function
  | Counter c -> Json.Int c
  | Gauge g -> Json.Float g
  | Histogram { count; sum; min; max; buckets } ->
    Json.Obj
      [
        ("count", Json.Int count);
        ("sum", Json.Int sum);
        ("min", Json.Int min);
        ("max", Json.Int max);
        ( "buckets",
          Json.List
            (List.map
               (fun (le, n) -> Json.List [ Json.Int le; Json.Int n ])
               buckets) );
      ]

let reset () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.iter
    (function
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g 0.0
      | H h ->
        Mutex.lock h.h_lock;
        h.h_count <- 0;
        h.h_sum <- 0;
        h.h_min <- max_int;
        h.h_max <- 0;
        Array.fill h.h_buckets 0 nbuckets 0;
        Mutex.unlock h.h_lock)
    entries
