type sample = {
  ts : float;
  metrics : (string * Metrics.snapshot_value) list;
}

(* The ticker runs on a systhread of the spawning domain, NOT on a
   domain of its own: in OCaml 5 every extra domain participates in
   each stop-the-world minor collection, and on a single-core host the
   kernel round-trip to an otherwise-idle domain's backup thread costs
   the mutator ~0.7ms per minor GC — an allocation-heavy solver run
   can double in wall time from one sleeping domain. A thread blocked
   in [Unix.select] takes no part in the STW protocol and measures at
   noise level, and the tick's actual work is microseconds every
   interval. Stopping uses a self-pipe: the loop sleeps in [select]
   with the interval as timeout, and [stop] writes one byte to wake it
   immediately instead of waiting out the interval. *)
type t = {
  interval : float;
  capacity : int;
  on_tick : unit -> unit;
  lock : Mutex.t;
  ring : sample array;
  mutable count : int; (* samples ever pushed; ring slot = count mod capacity *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable thread : Thread.t option;
  mutable stopped : bool;
}

(* ----- GC sampling ----- *)

let m_gc_minor = Metrics.counter "gc.minor_collections"
let m_gc_major = Metrics.counter "gc.major_collections"
let m_gc_compactions = Metrics.counter "gc.compactions"
let m_gc_promoted = Metrics.counter "gc.promoted_words"
let m_gc_minor_words = Metrics.gauge "gc.minor_words"
let m_gc_heap_words = Metrics.gauge "gc.heap_words"
let m_gc_top_heap_words = Metrics.gauge "gc.top_heap_words"

let sample_gc () =
  let s = Gc.quick_stat () in
  Metrics.set_counter m_gc_minor s.Gc.minor_collections;
  Metrics.set_counter m_gc_major s.Gc.major_collections;
  Metrics.set_counter m_gc_compactions s.Gc.compactions;
  Metrics.set_counter m_gc_promoted (int_of_float s.Gc.promoted_words);
  Metrics.set_gauge m_gc_minor_words s.Gc.minor_words;
  Metrics.set_gauge m_gc_heap_words (float_of_int s.Gc.heap_words);
  Metrics.set_gauge m_gc_top_heap_words (float_of_int s.Gc.top_heap_words)

(* ----- ring ----- *)

let push t s =
  Mutex.lock t.lock;
  (* strictly monotone timestamps even if the wall clock steps back:
     rate denominators must stay positive *)
  let s =
    if t.count = 0 then s
    else begin
      let last = t.ring.((t.count - 1) mod t.capacity) in
      if s.ts > last.ts then s else { s with ts = last.ts +. 1e-9 }
    end
  in
  t.ring.(t.count mod t.capacity) <- s;
  t.count <- t.count + 1;
  Mutex.unlock t.lock

let tick_now t =
  sample_gc ();
  push t { ts = Unix.gettimeofday (); metrics = Metrics.snapshot () };
  t.on_tick ()

let run t =
  let buf = Bytes.create 1 in
  let rec loop () =
    match Unix.select [ t.stop_r ] [] [] t.interval with
    | [], _, _ ->
      tick_now t;
      loop ()
    | _ ->
      ignore (Unix.read t.stop_r buf 0 1 : int)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let start ?(interval_ms = 250) ?(capacity = 64) ?(on_tick = ignore) () =
  let interval = float_of_int (max 1 interval_ms) /. 1000.0 in
  let capacity = max 2 capacity in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      interval;
      capacity;
      on_tick;
      lock = Mutex.create ();
      ring = Array.make capacity { ts = neg_infinity; metrics = [] };
      count = 0;
      stop_r;
      stop_w;
      thread = None;
      stopped = false;
    }
  in
  tick_now t;
  t.thread <- Some (Thread.create run t);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1 : int);
    Option.iter Thread.join t.thread;
    t.thread <- None;
    Unix.close t.stop_r;
    Unix.close t.stop_w
  end

let interval_s t = t.interval

let samples t =
  Mutex.lock t.lock;
  let n = min t.count t.capacity in
  let out =
    List.init n (fun i -> t.ring.((t.count - n + i) mod t.capacity))
  in
  Mutex.unlock t.lock;
  out

let latest t =
  Mutex.lock t.lock;
  let s =
    if t.count = 0 then None
    else Some t.ring.((t.count - 1) mod t.capacity)
  in
  Mutex.unlock t.lock;
  s

(* ----- rates ----- *)

let rates_between ~prev ~cur =
  let dt = cur.ts -. prev.ts in
  if dt <= 0.0 then []
  else
    List.filter_map
      (fun (name, v) ->
        match v with
        | Metrics.Counter c when c > 0 ->
          let p =
            match List.assoc_opt name prev.metrics with
            | Some (Metrics.Counter p) -> p
            | _ -> 0
          in
          (* c < p means the counter was reset inside the window; its
             growth since the reset is the best available delta *)
          let delta = if c >= p then c - p else c in
          Some (name, float_of_int delta /. dt)
        | _ -> None)
      cur.metrics

let ends t =
  Mutex.lock t.lock;
  let r =
    if t.count < 2 then None
    else begin
      let n = min t.count t.capacity in
      Some
        ( t.ring.((t.count - n) mod t.capacity),
          t.ring.((t.count - 2) mod t.capacity),
          t.ring.((t.count - 1) mod t.capacity) )
    end
  in
  Mutex.unlock t.lock;
  r

let rates t =
  match ends t with
  | None -> []
  | Some (_, prev, cur) -> rates_between ~prev ~cur

let window_rates t =
  match ends t with
  | None -> []
  | Some (oldest, _, cur) -> rates_between ~prev:oldest ~cur

let window_seconds t =
  match ends t with
  | None -> 0.0
  | Some (oldest, _, cur) -> cur.ts -. oldest.ts
