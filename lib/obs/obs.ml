module Json = Json
module Metrics = Metrics
module Analyze = Analyze
module Heartbeat = Heartbeat
module Live = Live
module Statsd = Statsd

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string

type attrs = (string * value) list

(* ----- global state -----

   Shared across domains once a [Par] pool is in play. Three rules keep
   it coherent: (1) one process-wide [obs_lock] guards the sinks, the
   aggregate tables, and — crucially — the timestamp-and-emit step, so
   records land in the trace in emission order even when several domains
   finish spans at once; (2) span depth and the loop stack are
   domain-local (a worker's spans nest among themselves, not inside
   whatever the submitter happens to be doing); (3) every span/event
   record carries the emitting domain's id, so [trace_check] and
   [Analyze] reconstruct each domain's nesting separately. *)

let enabled_flag = ref false
let quiet_flag = ref false
let t0 = ref 0.0
let obs_lock = Mutex.create ()

let depth_key = Domain.DLS.new_key (fun () -> ref 0)
let loop_stack_key = Domain.DLS.new_key (fun () : string list ref -> ref [])
let depth () = Domain.DLS.get depth_key
let loop_stack () = Domain.DLS.get loop_stack_key
let dom_id () = (Domain.self () :> int)

type sink = {
  sink_name : string;
  emit : Json.t -> unit;
  close : unit -> unit;
}

let sinks : sink list ref = ref []

type span_agg = {
  mutable s_count : int;
  mutable s_total : float;
  mutable s_max : float;
}

let span_aggs : (string, span_agg) Hashtbl.t = Hashtbl.create 32

type loop_agg = {
  mutable l_runs : int;
  mutable l_iterations : int;
  mutable l_candidates : int;
  mutable l_cexes : int;
  mutable l_solver_calls : int;
  mutable l_elapsed : float;
}

let loop_aggs : (string, loop_agg) Hashtbl.t = Hashtbl.create 8
let now () = Unix.gettimeofday ()
let enabled () = !enabled_flag

let enable () =
  if not !enabled_flag then begin
    enabled_flag := true;
    t0 := now ()
  end

(* ----- record plumbing ----- *)

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b
  | String s -> Json.String s

let json_of_attrs attrs =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)

(* must be called with [obs_lock] held *)
let emit_record r = List.iter (fun s -> s.emit r) !sinks

let span_record ~t ~name ~dur ~depth ~attrs =
  Json.Obj
    [
      ("t", Json.Float t);
      ("kind", Json.String "span");
      ("name", Json.String name);
      ("dur", Json.Float dur);
      ("depth", Json.Int depth);
      ("dom", Json.Int (dom_id ()));
      ("attrs", json_of_attrs attrs);
    ]

let event_record ~t ~name ~loop ~attrs =
  Json.Obj
    [
      ("t", Json.Float t);
      ("kind", Json.String "event");
      ("name", Json.String name);
      ("loop", Json.String loop);
      ("dom", Json.Int (dom_id ()));
      ("attrs", json_of_attrs attrs);
    ]

let metrics_record () =
  Json.Obj
    [
      ("t", Json.Float (now () -. !t0));
      ("kind", Json.String "metrics");
      ( "metrics",
        Json.Obj
          (List.map
             (fun (name, v) -> (name, Metrics.to_json v))
             (Metrics.snapshot ())) );
    ]

let close_sinks () =
  List.iter (fun s -> s.close ()) !sinks;
  sinks := []

(* ----- heartbeat / progress plumbing -----

   [progress_interval] <= 0 keeps the progress channel silent, so
   traces written by existing callers are byte-for-byte what they were;
   the CLI turns it on only alongside the stats socket. Emission is
   piggybacked on [emit]'s Iteration branch with [obs_lock] already
   held, so a progress record can never interleave mid-trace-line and
   never outlives its loop's [loop_finished]. *)

let progress_interval = ref 0.0
let set_progress_interval s = progress_interval := s

(* loop name -> t of last progress record; obs_lock guards it *)
let last_progress : (string, float) Hashtbl.t = Hashtbl.create 8
let m_stalls = Metrics.counter "obs.stalls_detected"

let shutdown () =
  Mutex.lock obs_lock;
  if !enabled_flag && !sinks <> [] then emit_record (metrics_record ());
  close_sinks ();
  enabled_flag := false;
  Hashtbl.reset last_progress;
  Heartbeat.reset ();
  Mutex.unlock obs_lock;
  depth () := 0;
  loop_stack () := []

let reset () =
  Mutex.lock obs_lock;
  close_sinks ();
  enabled_flag := false;
  Hashtbl.reset span_aggs;
  Hashtbl.reset loop_aggs;
  Hashtbl.reset last_progress;
  progress_interval := 0.0;
  Heartbeat.reset ();
  Mutex.unlock obs_lock;
  depth () := 0;
  loop_stack () := [];
  Metrics.reset ()

(* ----- sinks ----- *)

let add_sink s =
  Mutex.lock obs_lock;
  sinks := !sinks @ [ s ];
  Mutex.unlock obs_lock

let jsonl_sink path =
  let oc = open_out path in
  {
    sink_name = path;
    emit =
      (fun r ->
        output_string oc (Json.to_string r);
        output_char oc '\n');
    close = (fun () -> close_out oc);
  }

let memory_sink () =
  let records = ref [] in
  ( {
      sink_name = "memory";
      emit = (fun r -> records := r :: !records);
      close = ignore;
    },
    fun () -> List.rev !records )

(* ----- spans ----- *)

type span = {
  sp_name : string;
  sp_start : float; (* seconds since t0 *)
  sp_depth : int;
  sp_attrs : attrs;
  sp_live : bool;
}

let null_span =
  { sp_name = ""; sp_start = 0.0; sp_depth = 0; sp_attrs = []; sp_live = false }

let start_span ?(attrs = []) name =
  if not !enabled_flag then null_span
  else begin
    let depth = depth () in
    let d = !depth in
    depth := d + 1;
    {
      sp_name = name;
      sp_start = now () -. !t0;
      sp_depth = d;
      sp_attrs = attrs;
      sp_live = true;
    }
  end

let span_agg_of name =
  match Hashtbl.find_opt span_aggs name with
  | Some a -> a
  | None ->
    let a = { s_count = 0; s_total = 0.0; s_max = 0.0 } in
    Hashtbl.add span_aggs name a;
    a

let end_span ?(attrs = []) sp =
  if sp.sp_live && !enabled_flag then begin
    let depth = depth () in
    if !depth > 0 then depth := !depth - 1;
    (* the clock is read inside the lock: emission time is t + dur, so
       serializing the read with the write keeps the trace in emission
       order across domains *)
    Mutex.lock obs_lock;
    let dur = now () -. !t0 -. sp.sp_start in
    let dur = if dur < 0.0 then 0.0 else dur in
    let a = span_agg_of sp.sp_name in
    a.s_count <- a.s_count + 1;
    a.s_total <- a.s_total +. dur;
    if dur > a.s_max then a.s_max <- dur;
    emit_record
      (span_record ~t:sp.sp_start ~name:sp.sp_name ~dur ~depth:sp.sp_depth
         ~attrs:(sp.sp_attrs @ attrs));
    Mutex.unlock obs_lock
  end

let with_span ?attrs name f =
  let sp = start_span ?attrs name in
  match f () with
  | r ->
    end_span sp;
    r
  | exception e ->
    end_span sp ~attrs:[ ("error", Bool true) ];
    raise e

(* ----- typed loop events ----- *)

type event =
  | Loop_started of { loop : string; attrs : attrs }
  | Iteration of { loop : string; index : int; attrs : attrs }
  | Candidate of { loop : string; attrs : attrs }
  | Oracle_verdict of { loop : string; verdict : string; attrs : attrs }
  | Counterexample of { loop : string; attrs : attrs }
  | Solver_call of { loop : string; result : string; attrs : attrs }
  | Certificate of { loop : string; attrs : attrs }
  | Progress of { loop : string; iteration : int; attrs : attrs }
  | Stall_detected of {
      loop : string;
      iteration : int;
      seconds_stalled : float;
      attrs : attrs;
    }
  | Budget_exhausted of { loop : string; reason : string; attrs : attrs }
  | Loop_finished of { loop : string; attrs : attrs }
  | Job_requeued of {
      loop : string;
      id : string;
      requeue : int;
      restart_budget : int;
      attrs : attrs;
    }
  | Degraded_entered of { loop : string; reason : string; attrs : attrs }
  | Degraded_exited of { loop : string; attrs : attrs }

let loop_agg_of name =
  match Hashtbl.find_opt loop_aggs name with
  | Some a -> a
  | None ->
    let a =
      {
        l_runs = 0;
        l_iterations = 0;
        l_candidates = 0;
        l_cexes = 0;
        l_solver_calls = 0;
        l_elapsed = 0.0;
      }
    in
    Hashtbl.add loop_aggs name a;
    a

let emit ev =
  if !enabled_flag then begin
    Mutex.lock obs_lock;
    let wall = now () in
    let t = wall -. !t0 in
    let name, loop, attrs =
      match ev with
      | Loop_started { loop; attrs } ->
        (loop_agg_of loop).l_runs <- (loop_agg_of loop).l_runs + 1;
        ("loop_started", loop, attrs)
      | Iteration { loop; index; attrs } ->
        (loop_agg_of loop).l_iterations <- (loop_agg_of loop).l_iterations + 1;
        ("iteration", loop, ("index", Int index) :: attrs)
      | Candidate { loop; attrs } ->
        (loop_agg_of loop).l_candidates <- (loop_agg_of loop).l_candidates + 1;
        ("candidate", loop, attrs)
      | Oracle_verdict { loop; verdict; attrs } ->
        ("oracle_verdict", loop, ("verdict", String verdict) :: attrs)
      | Counterexample { loop; attrs } ->
        (loop_agg_of loop).l_cexes <- (loop_agg_of loop).l_cexes + 1;
        ("counterexample", loop, attrs)
      | Solver_call { loop; result; attrs } ->
        if loop <> "" then
          (loop_agg_of loop).l_solver_calls
          <- (loop_agg_of loop).l_solver_calls + 1;
        ("solver_call", loop, ("result", String result) :: attrs)
      | Certificate { loop; attrs } -> ("certificate", loop, attrs)
      | Progress { loop; iteration; attrs } ->
        ("progress", loop, ("iteration", Int iteration) :: attrs)
      | Stall_detected { loop; iteration; seconds_stalled; attrs } ->
        ( "stall_detected",
          loop,
          ("iteration", Int iteration)
          :: ("seconds_stalled", Float seconds_stalled)
          :: attrs )
      | Budget_exhausted { loop; reason; attrs } ->
        ("budget_exhausted", loop, ("reason", String reason) :: attrs)
      | Loop_finished { loop; attrs } -> ("loop_finished", loop, attrs)
      | Job_requeued { loop; id; requeue; restart_budget; attrs } ->
        ( "job_requeued",
          loop,
          ("id", String id)
          :: ("requeue", Int requeue)
          :: ("restart_budget", Int restart_budget)
          :: attrs )
      | Degraded_entered { loop; reason; attrs } ->
        ("degraded_entered", loop, ("reason", String reason) :: attrs)
      | Degraded_exited { loop; attrs } -> ("degraded_exited", loop, attrs)
    in
    emit_record (event_record ~t ~name ~loop ~attrs);
    (* heartbeat bookkeeping and the derived progress channel, still
       under [obs_lock]: the watchdog can never see a loop advance
       before the advancing record is in the trace, and a progress
       record can never follow its loop's terminal event *)
    (match ev with
    | Loop_started { loop; _ } -> Heartbeat.started ~loop ~now:wall
    | Iteration { loop; index; attrs } ->
      (* parallel sweeps hand out iteration indices before taking the
         lock, so records may arrive out of order; the heartbeat keeps
         the max, which is what progress reports *)
      let reached =
        Heartbeat.beat ~loop ~now:wall ~iteration:index
          ~attrs:(List.map (fun (k, v) -> (k, json_of_value v)) attrs)
      in
      let iv = !progress_interval in
      if iv > 0.0 then begin
        let due =
          match Hashtbl.find_opt last_progress loop with
          | Some last -> t -. last >= iv
          | None -> true
        in
        if due then begin
          Hashtbl.replace last_progress loop t;
          emit_record
            (event_record ~t ~name:"progress" ~loop
               ~attrs:(("iteration", Int reached) :: attrs))
        end
      end
    | Budget_exhausted { loop; _ } | Loop_finished { loop; _ } ->
      Heartbeat.finish ~loop;
      Hashtbl.remove last_progress loop
    | Candidate _ | Oracle_verdict _ | Counterexample _ | Solver_call _
    | Certificate _ | Progress _ | Stall_detected _ | Job_requeued _
    | Degraded_entered _ | Degraded_exited _ ->
      ());
    Mutex.unlock obs_lock
  end

let check_stalls ~window =
  if !enabled_flag && window > 0.0 then begin
    Mutex.lock obs_lock;
    let wall = now () in
    let t = wall -. !t0 in
    List.iter
      (fun st ->
        Metrics.incr m_stalls;
        emit_record
          (event_record ~t ~name:"stall_detected" ~loop:st.Heartbeat.hb_loop
             ~attrs:
               [
                 ("iteration", Int st.Heartbeat.hb_iteration);
                 ( "seconds_stalled",
                   Float (wall -. st.Heartbeat.hb_last_advance) );
                 ("window", Float window);
               ]))
      (Heartbeat.poll ~now:wall ~window);
    Mutex.unlock obs_lock
  end

let current_loop () = match !(loop_stack ()) with [] -> "" | l :: _ -> l

module Loop = struct
  type t = {
    ln : string;
    lt0 : float;
    mutable alive : bool;
  }

  let start ?(attrs = []) name =
    if not !enabled_flag then { ln = name; lt0 = 0.0; alive = false }
    else begin
      let stack = loop_stack () in
      stack := name :: !stack;
      emit (Loop_started { loop = name; attrs });
      { ln = name; lt0 = now (); alive = true }
    end

  let name l = l.ln

  let iteration ?(attrs = []) l index =
    if l.alive then emit (Iteration { loop = l.ln; index; attrs })

  let candidate ?(attrs = []) l =
    if l.alive then emit (Candidate { loop = l.ln; attrs })

  let verdict ?(attrs = []) l verdict =
    if l.alive then emit (Oracle_verdict { loop = l.ln; verdict; attrs })

  let counterexample ?(attrs = []) l =
    if l.alive then emit (Counterexample { loop = l.ln; attrs })

  let budget_exhausted ?(attrs = []) l ~reason =
    if l.alive then emit (Budget_exhausted { loop = l.ln; reason; attrs })

  let finish ?(attrs = []) l =
    if l.alive then begin
      l.alive <- false;
      let elapsed = now () -. l.lt0 in
      Mutex.lock obs_lock;
      (loop_agg_of l.ln).l_elapsed <- (loop_agg_of l.ln).l_elapsed +. elapsed;
      Mutex.unlock obs_lock;
      let stack = loop_stack () in
      (match !stack with
      | top :: rest when top = l.ln -> stack := rest
      | s -> stack := List.filter (fun n -> n <> l.ln) s);
      emit
        (Loop_finished
           { loop = l.ln; attrs = attrs @ [ ("elapsed", Float elapsed) ] })
    end
end

let solver_call ~result attrs =
  if !enabled_flag then
    emit (Solver_call { loop = current_loop (); result; attrs })

(* ----- console ----- *)

let set_quiet q = quiet_flag := q
let quiet () = !quiet_flag

(* stderr, so diagnostics compose with piping a verdict from stdout *)
let info fmt =
  if !quiet_flag then Format.ifprintf Format.err_formatter fmt
  else Format.eprintf fmt

let pp_summary ppf () =
  let line fmt = Format.fprintf ppf fmt in
  line "@.== telemetry summary ==@.";
  (* per-loop timings *)
  Mutex.lock obs_lock;
  let loops =
    Hashtbl.fold (fun n a acc -> (n, a) :: acc) loop_aggs []
    |> List.sort compare
  in
  if loops <> [] then begin
    line "@.loops:@.";
    line "  %-10s %5s %6s %6s %6s %7s %9s %9s@." "loop" "runs" "iters" "cands"
      "cexes" "solves" "seconds" "ms/iter";
    List.iter
      (fun (n, a) ->
        line "  %-10s %5d %6d %6d %6d %7d %9.3f %9.2f@." n a.l_runs
          a.l_iterations a.l_candidates a.l_cexes a.l_solver_calls a.l_elapsed
          (if a.l_iterations = 0 then 0.0
           else 1000.0 *. a.l_elapsed /. float_of_int a.l_iterations))
      loops
  end;
  (* span table, by total time *)
  let spans =
    Hashtbl.fold (fun n a acc -> (n, a) :: acc) span_aggs []
    |> List.sort (fun (_, a) (_, b) -> compare b.s_total a.s_total)
  in
  Mutex.unlock obs_lock;
  if spans <> [] then begin
    line "@.spans:@.";
    line "  %-24s %7s %9s %9s %9s@." "span" "count" "total(s)" "mean(ms)"
      "max(ms)";
    List.iter
      (fun (n, a) ->
        line "  %-24s %7d %9.3f %9.2f %9.2f@." n a.s_count a.s_total
          (1000.0 *. a.s_total /. float_of_int (max 1 a.s_count))
          (1000.0 *. a.s_max))
      spans
  end;
  (* metrics registry *)
  let metrics = Metrics.snapshot () in
  if metrics <> [] then begin
    line "@.metrics:@.";
    List.iter
      (fun (name, v) ->
        match v with
        | Metrics.Counter c -> line "  %-28s %d@." name c
        | Metrics.Gauge g -> line "  %-28s %g@." name g
        | Metrics.Histogram { count; sum; min = _; max; buckets } ->
          let pct p = Metrics.percentile_of_buckets ~buckets ~count ~max p in
          line "  %-28s count=%d mean=%.1f p50=%d p90=%d p99=%d max=%d@." name
            count
            (if count = 0 then 0.0 else float_of_int sum /. float_of_int count)
            (pct 50.0) (pct 90.0) (pct 99.0) max)
      metrics;
    (* derived: bit-blast cache hit rate *)
    let cval name =
      match List.assoc_opt name metrics with
      | Some (Metrics.Counter c) -> c
      | _ -> 0
    in
    let hits = cval "bitblast.term_cache_hits" + cval "bitblast.formula_cache_hits" in
    let misses =
      cval "bitblast.term_cache_misses" + cval "bitblast.formula_cache_misses"
    in
    if hits + misses > 0 then
      line "@.  bitblast cache hit rate      %.1f%% (%d/%d)@."
        (100.0 *. float_of_int hits /. float_of_int (hits + misses))
        hits (hits + misses);
    (* derived: cross-context recipe-cache hit rate *)
    let shared_hits = cval "bitblast.shared_hits" in
    let shared_misses = cval "bitblast.shared_misses" in
    if shared_hits + shared_misses > 0 then
      line "  shared recipe hit rate       %.1f%% (%d/%d)@."
        (100.0
        *. float_of_int shared_hits
        /. float_of_int (shared_hits + shared_misses))
        shared_hits
        (shared_hits + shared_misses);
    (* derived: portfolio clause-sharing traffic (imports can exceed
       exports: every export is importable by each other member) *)
    let exported = cval "portfolio.clauses_exported" in
    let imported = cval "portfolio.clauses_imported" in
    let dropped = cval "exchange.dropped" in
    if exported + imported > 0 then begin
      line "  clause sharing               %d exported, %d imported@."
        exported imported;
      if dropped > 0 then
        line "  clauses dropped in transit   %d (%.1f%% of exports)@." dropped
          (100.0 *. float_of_int dropped /. float_of_int (max 1 exported))
    end;
    (* derived: proof & certificate plane *)
    let proof_bytes = cval "proof.bytes" in
    let certs = cval "proof.certificates" in
    if proof_bytes > 0 || certs > 0 then
      line "  proof plane                  %d bytes logged, %d certificate%s@."
        proof_bytes certs
        (if certs = 1 then "" else "s");
    let checked = cval "cert.clauses_checked" in
    if checked > 0 then
      line "  certificates audited         %d clauses RUP-checked@." checked
  end

(* ----- Chrome trace_event export ----- *)

let export_chrome ~input ~output =
  match open_in input with
  | exception Sys_error msg -> Error msg
  | ic ->
    let events = ref [] in
    let push e = events := e :: !events in
    let err = ref None in
    let lineno = ref 0 in
    (try
       while !err = None do
         let line = input_line ic in
         incr lineno;
         if String.trim line <> "" then begin
           match Json.parse line with
           | Error msg ->
             err := Some (Printf.sprintf "line %d: %s" !lineno msg)
           | Ok r -> (
             let field k = Json.member k r in
             let str k = Option.bind (field k) Json.to_str in
             let num k = Option.bind (field k) Json.to_float in
             let us v = Json.Float (1e6 *. v) in
             let common name ph t =
               [
                 ("name", Json.String name);
                 ("ph", Json.String ph);
                 ("ts", us t);
                 ("pid", Json.Int 1);
                 ("tid", Json.Int 1);
               ]
             in
             match (str "kind", str "name", num "t") with
             | Some "span", Some name, Some t ->
               let dur = Option.value (num "dur") ~default:0.0 in
               let args =
                 Option.value (field "attrs") ~default:(Json.Obj [])
               in
               push
                 (Json.Obj
                    (common name "X" t
                    @ [ ("dur", us dur); ("args", args) ]))
             | Some "event", Some name, Some t ->
               let loop = Option.value (str "loop") ~default:"" in
               let label = if loop = "" then name else loop ^ "." ^ name in
               let args =
                 Option.value (field "attrs") ~default:(Json.Obj [])
               in
               push
                 (Json.Obj
                    (common label "i" t
                    @ [ ("s", Json.String "t"); ("args", args) ]))
             | Some "metrics", _, Some t ->
               (* counters only; histograms don't fit Chrome's "C" shape *)
               (match field "metrics" with
               | Some (Json.Obj fields) ->
                 List.iter
                   (fun (name, v) ->
                     match v with
                     | Json.Int _ | Json.Float _ ->
                       push
                         (Json.Obj
                            (common name "C" t
                            @ [ ("args", Json.Obj [ ("value", v) ]) ]))
                     | _ -> ())
                   fields
               | _ -> ())
             | _ ->
               err := Some (Printf.sprintf "line %d: unknown record" !lineno))
         end
       done
     with End_of_file -> ());
    close_in ic;
    (match !err with
    | Some msg -> Error msg
    | None ->
      let oc = open_out output in
      output_string oc
        (Json.to_string (Json.Obj [ ("traceEvents", Json.List (List.rev !events)) ]));
      output_char oc '\n';
      close_out oc;
      Ok ())
