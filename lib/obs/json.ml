type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----- printing ----- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* %.12g keeps microsecond resolution on multi-hour timestamps and
         stays a valid JSON number *)
      let s = Printf.sprintf "%.12g" f in
      Buffer.add_string b s
    end
    else Buffer.add_string b "null"
  | String s -> add_escaped b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_escaped b k;
        Buffer.add_char b ':';
        to_buffer b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ----- parsing ----- *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code b code =
    (* enough for the \uXXXX escapes our printer emits (BMP only) *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> utf8_of_code b code
          | None -> fail "bad \\u escape")
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* ----- accessors ----- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
