(** The read side of the telemetry system: parse a JSON-lines trace
    back into typed records and compute the quantities the paper's
    evaluation argues about — per-loop convergence diagnostics
    (iterations to fixpoint, counterexample yield, solver-time
    attribution), a span flame profile (self vs. total time over the
    reconstructed span tree), and a cross-trace regression diff with
    configurable thresholds.

    Everything here is offline: it reads traces that {!Obs} wrote, it
    never touches the live registry, and it has no dependencies beyond
    {!Json} and {!Metrics} (for histogram percentiles). *)

(** {1 Trace ingestion} *)

(** One trace line, typed. Span attributes keep their JSON values so
    callers can pull loop-specific fields ([depth], [conflicts], ...)
    without this module hard-coding every instrument. *)
type record =
  | Span of {
      t : float;  (** start, seconds since [Obs.enable] *)
      name : string;
      dur : float;
      depth : int;
      dom : int;  (** emitting domain; 0 in single-domain traces *)
      attrs : (string * Json.t) list;
    }
  | Event of {
      t : float;
      name : string;
      loop : string;
      attrs : (string * Json.t) list;
    }
  | Snapshot of { t : float; metrics : (string * Json.t) list }

val record_of_json : Json.t -> (record, string) result

val load : string -> (record list, string) result
(** Read a JSONL trace file; blank lines are skipped, the first
    malformed line aborts with its line number. *)

(** {1 Convergence diagnostics} *)

(** Trend of the per-iteration wall time across one loop run, from a
    least-squares fit: a converging loop spends less per round as the
    example set pins the space down; a thrashing loop pays more for
    each round than the last (total drift beyond twice the mean). *)
type trend =
  | Converging
  | Steady
  | Thrashing

val trend_to_string : trend -> string

type iteration = {
  it_index : int;  (** the loop's own index attribute *)
  it_start : float;
  it_dur : float;  (** until the next iteration or loop end *)
  it_candidates : int;
  it_cexes : int;
  it_solver_calls : int;
  it_sat : int;
  it_unsat : int;
  it_conflicts : int;
  it_propagations : int;
}

type loop_run = {
  lr_loop : string;
  lr_run : int;  (** 1-based among runs of the same loop name *)
  lr_start : float;
  lr_finish : float;  (** last event seen when truncated *)
  lr_elapsed : float;
      (** the loop's own [elapsed] attribute when present, else
          [lr_finish -. lr_start] *)
  lr_outcome : string;  (** [outcome] attribute of [loop_finished], or "" *)
  lr_truncated : bool;  (** no [loop_finished] in the trace *)
  lr_iterations : iteration list;  (** in loop order *)
  lr_candidates : int;
  lr_cexes : int;
  lr_verdicts : (string * int) list;  (** verdict string -> count, sorted *)
  lr_solver_calls : int;
  lr_sat : int;
  lr_unsat : int;
  lr_conflicts : int;
  lr_propagations : int;
  lr_certs : int;  (** certificate events attributed to this run *)
  lr_proof_bytes : int;  (** summed DRAT bytes over those certificates *)
  lr_cores : (string * int) list;
      (** blamed constraint-name sets (comma-joined) -> count, sorted *)
  lr_trend : trend;
  lr_slope_ms : float;  (** fitted ms-per-iteration drift per round *)
}

(** {1 Span flame profile} *)

type frame = {
  fr_path : string list;  (** root-to-leaf span names *)
  fr_count : int;
  fr_total : float;  (** summed durations *)
  fr_self : float;  (** total minus direct children *)
}

type t = {
  a_records : int;
  a_spans : int;
  a_events : int;
  a_wall : float;  (** last emission time in the trace *)
  a_complete : bool;  (** trace ends with a metrics snapshot *)
  a_loops : loop_run list;  (** in start order *)
  a_frames : frame list;  (** aggregated by path, hottest self-time first *)
  a_metrics : (string * Json.t) list;  (** final snapshot, [] if absent *)
  a_orphan_spans : int;
      (** completed spans whose enclosing span never completed *)
}

val analyze : record list -> t

val pp_report : ?top:int -> Format.formatter -> t -> unit
(** The human-readable report: header, per-loop convergence tables with
    iteration detail, the top-[top] flame paths, and the final metrics
    snapshot with histogram percentiles. *)

val pp_audit : Format.formatter -> t -> unit
(** The audit view behind [sciduction_cli explain]: per loop run, the
    verdict, its solver-call tally, and — when the run was traced with
    the proof plane on — the certificates issued and the named
    constraints their unsat cores blamed. *)

val summary_json : t -> Json.t
(** Machine output; also the baseline format {!key_figures} reads back. *)

(** {1 Cross-trace diff} *)

(** Maximum allowed current/baseline ratio per metric class. Timing
    comparisons additionally ignore sides that are both under
    [min_seconds] (scheduler noise). *)
type thresholds = {
  seconds : float;
  conflicts : float;
  propagations : float;
  iterations : float;
  solves : float;
  min_seconds : float;
}

val default_thresholds : thresholds

type finding = {
  f_key : string;
  f_base : float;
  f_cur : float;
  f_ratio : float;  (** current / baseline *)
  f_limit : float;
  f_regressed : bool;  (** false for an improvement past 1/limit *)
}

val key_figures : Json.t -> (string * float) list
(** Flatten the numeric leaves of a summary (or any comparable JSON
    document, e.g. BENCH_solver.json) into dotted keys. Lists are only
    descended when their elements carry a ["name"] field (which becomes
    the path segment); histogram bucket arrays are skipped. A top-level
    ["summary"] wrapper is unwrapped. *)

val diff :
  ?thresholds:thresholds ->
  base:(string * float) list ->
  (string * float) list ->
  finding list
(** [diff ~base cur] compares keys present on both sides whose name places them in a
    threshold class ([seconds]/[elapsed], [conflicts], [propagations],
    [iterations], [solves]/[solver_calls]); returns regressions and
    symmetric improvements, worst ratio first. *)

val regressed : finding list -> bool

val pp_findings : Format.formatter -> finding list -> unit
val findings_json : finding list -> Json.t

(** {1 Report driver}

    Shared by [bin/trace_report.exe] and the CLI [report] subcommand. *)

val run_report :
  ?top:int ->
  ?json:bool ->
  ?against:string ->
  ?baseline:string ->
  ?thresholds:thresholds ->
  string ->
  (int, string) result
(** Analyze the trace at the given path and print the report (or, with
    [json], the machine summary) to stdout. With [against] (a second
    trace) or [baseline] (a saved summary or BENCH-style JSON document)
    also print the diff and a pass/fail verdict. Returns the suggested
    exit code: [Ok 0] on pass, [Ok 1] on regression, [Error _] on I/O or
    parse failure. *)
