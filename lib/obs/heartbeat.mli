(** Per-loop liveness registry behind the live telemetry plane.

    Every loop event stream feeds a small table of "when did this loop
    last make progress": [Obs] records a beat on each iteration event
    (under its emission lock), the [Live] ticker polls the table for
    loops whose last advance is older than the stall window, and the
    [Statsd] endpoint reads the table from its own domain to answer
    scrapes. The table never influences execution — a stalled flag is
    a diagnosis, not a termination ([Budget] owns termination).

    A loop advances when a beat carries a strictly larger iteration
    index than any seen for the current run. Parallel sweeps hand out
    iteration indices with a fetch-and-add and may emit them out of
    order; keeping the per-loop maximum makes the reported iteration
    (and hence the [progress] trace events derived from it) monotone.

    All operations are serialized on one private mutex, so readers on
    other domains (the watchdog, the stats server) see consistent
    entries. *)

type status = {
  hb_loop : string;
  hb_iteration : int;  (** highest iteration index this run; -1 before any *)
  hb_beats : int;  (** beats recorded this run (= iteration events seen) *)
  hb_last_advance : float;  (** wall-clock time of the last advance *)
  hb_stalled : bool;
  hb_stalled_since : float option;
  hb_attrs : (string * Json.t) list;
      (** attributes of the latest advancing beat (depth, budget left, ...) *)
}

val started : loop:string -> now:float -> unit
(** A new run of [loop] began: (re)create its entry with iteration -1,
    so a loop that hangs before its first iteration still stalls. *)

val beat : loop:string -> now:float -> iteration:int -> attrs:(string * Json.t) list -> int
(** Record an iteration event. Advances the entry (and clears a stalled
    flag) when [iteration] exceeds the current maximum; creates the
    entry if {!started} was never seen. Returns the per-run maximum
    iteration index after the beat. *)

val finish : loop:string -> unit
(** The run ended (finished or exhausted): drop the entry. The watchdog
    can no longer flag the loop, so a stall never outlives its loop. *)

val poll : now:float -> window:float -> status list
(** Mark every active loop whose last advance is more than [window]
    seconds old as stalled and return the {e newly} stalled ones (loops
    already flagged are not returned again until they recover). *)

val active : unit -> status list
(** All live entries, sorted by loop name (for the stats endpoint). *)

val reset : unit -> unit
