(* Offline analysis over JSONL telemetry traces: typed ingestion,
   per-loop convergence diagnostics, span flame profiles, and the
   cross-trace regression diff behind the perf baseline gate. *)

(* ----- ingestion ----- *)

type record =
  | Span of {
      t : float;
      name : string;
      dur : float;
      depth : int;
      dom : int;
      attrs : (string * Json.t) list;
    }
  | Event of {
      t : float;
      name : string;
      loop : string;
      attrs : (string * Json.t) list;
    }
  | Snapshot of { t : float; metrics : (string * Json.t) list }

let record_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let num k = Option.bind (Json.member k j) Json.to_float in
  let fields k =
    match Json.member k j with Some (Json.Obj f) -> f | _ -> []
  in
  match (str "kind", num "t") with
  | None, _ -> Error "record without a kind"
  | _, None -> Error "record without a timestamp"
  | Some "span", Some t -> (
    match (str "name", num "dur") with
    | None, _ -> Error "span without a name"
    | _, None -> Error "span without a duration"
    | Some name, Some dur ->
      let depth =
        Option.value ~default:0 (Option.bind (Json.member "depth" j) Json.to_int)
      in
      (* traces predating the dom field are all single-domain *)
      let dom =
        Option.value ~default:0 (Option.bind (Json.member "dom" j) Json.to_int)
      in
      Ok (Span { t; name; dur; depth; dom; attrs = fields "attrs" }))
  | Some "event", Some t -> (
    match str "name" with
    | None -> Error "event without a name"
    | Some name ->
      let loop = Option.value ~default:"" (str "loop") in
      Ok (Event { t; name; loop; attrs = fields "attrs" }))
  | Some "metrics", Some t -> Ok (Snapshot { t; metrics = fields "metrics" })
  | Some kind, _ -> Error (Printf.sprintf "unknown record kind %S" kind)

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let records = ref [] in
    let err = ref None in
    let lineno = ref 0 in
    (try
       while !err = None do
         let line = input_line ic in
         incr lineno;
         if String.trim line <> "" then begin
           match Json.parse line with
           | Error msg -> err := Some (Printf.sprintf "line %d: %s" !lineno msg)
           | Ok j -> (
             match record_of_json j with
             | Error msg ->
               err := Some (Printf.sprintf "line %d: %s" !lineno msg)
             | Ok r -> records := r :: !records)
         end
       done
     with End_of_file -> ());
    close_in ic;
    (match !err with
    | Some msg -> Error msg
    | None ->
      if !records = [] then Error "empty trace" else Ok (List.rev !records))

(* ----- attribute helpers ----- *)

let attr_str attrs k =
  match List.assoc_opt k attrs with Some (Json.String s) -> Some s | _ -> None

let attr_int attrs k =
  match List.assoc_opt k attrs with
  | Some v -> Option.value ~default:0 (Json.to_int v)
  | None -> 0

let attr_float attrs k =
  match List.assoc_opt k attrs with
  | Some v -> Json.to_float v
  | None -> None

(* ----- convergence diagnostics ----- *)

type trend =
  | Converging
  | Steady
  | Thrashing

let trend_to_string = function
  | Converging -> "converging"
  | Steady -> "steady"
  | Thrashing -> "thrashing"

type iteration = {
  it_index : int;
  it_start : float;
  it_dur : float;
  it_candidates : int;
  it_cexes : int;
  it_solver_calls : int;
  it_sat : int;
  it_unsat : int;
  it_conflicts : int;
  it_propagations : int;
}

type loop_run = {
  lr_loop : string;
  lr_run : int;
  lr_start : float;
  lr_finish : float;
  lr_elapsed : float;
  lr_outcome : string;
  lr_truncated : bool;
  lr_iterations : iteration list;
  lr_candidates : int;
  lr_cexes : int;
  lr_verdicts : (string * int) list;
  lr_solver_calls : int;
  lr_sat : int;
  lr_unsat : int;
  lr_conflicts : int;
  lr_propagations : int;
  lr_certs : int;
  lr_proof_bytes : int;
  lr_cores : (string * int) list;
  lr_trend : trend;
  lr_slope_ms : float;
}

(* mutable builders, frozen into the public records once the run ends *)
type it_b = {
  bi_index : int;
  bi_start : float;
  mutable bi_dur : float;
  mutable bi_candidates : int;
  mutable bi_cexes : int;
  mutable bi_solver_calls : int;
  mutable bi_sat : int;
  mutable bi_unsat : int;
  mutable bi_conflicts : int;
  mutable bi_propagations : int;
}

type run_b = {
  rb_loop : string;
  rb_run : int;
  rb_start : float;
  mutable rb_last : float;
  mutable rb_finish : float option;
  mutable rb_elapsed : float option;
  mutable rb_outcome : string;
  mutable rb_iterations : it_b list; (* newest first *)
  mutable rb_candidates : int;
  mutable rb_cexes : int;
  mutable rb_solver_calls : int;
  mutable rb_sat : int;
  mutable rb_unsat : int;
  mutable rb_conflicts : int;
  mutable rb_propagations : int;
  mutable rb_certs : int;
  mutable rb_proof_bytes : int;
  rb_cores : (string, int) Hashtbl.t;
  rb_verdicts : (string, int) Hashtbl.t;
}

(* least-squares slope of the per-iteration durations; the trend label
   compares the fitted drift across the whole run against the mean, so
   a loop only reads as thrashing when late rounds dwarf early ones *)
let fit_trend durs =
  let n = List.length durs in
  if n < 3 then (Steady, 0.0)
  else begin
    let fn = float_of_int n in
    let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
    List.iteri
      (fun i d ->
        let x = float_of_int i in
        sx := !sx +. x;
        sy := !sy +. d;
        sxx := !sxx +. (x *. x);
        sxy := !sxy +. (x *. d))
      durs;
    let denom = (fn *. !sxx) -. (!sx *. !sx) in
    let slope =
      if denom = 0.0 then 0.0 else ((fn *. !sxy) -. (!sx *. !sy)) /. denom
    in
    let mean = !sy /. fn in
    if mean <= 0.0 then (Steady, 0.0)
    else begin
      let drift = slope *. float_of_int (n - 1) /. mean in
      let label =
        if drift >= 2.0 then Thrashing
        else if drift <= -0.75 then Converging
        else Steady
      in
      (label, 1000.0 *. slope)
    end
  end

let freeze_run rb =
  let finish = Option.value ~default:rb.rb_last rb.rb_finish in
  (* the open iteration ends when the run does *)
  (match rb.rb_iterations with
  | it :: _ when it.bi_dur < 0.0 ->
    it.bi_dur <- Float.max 0.0 (finish -. it.bi_start)
  | _ -> ());
  let iterations =
    List.rev_map
      (fun b ->
        {
          it_index = b.bi_index;
          it_start = b.bi_start;
          it_dur = (if b.bi_dur < 0.0 then 0.0 else b.bi_dur);
          it_candidates = b.bi_candidates;
          it_cexes = b.bi_cexes;
          it_solver_calls = b.bi_solver_calls;
          it_sat = b.bi_sat;
          it_unsat = b.bi_unsat;
          it_conflicts = b.bi_conflicts;
          it_propagations = b.bi_propagations;
        })
      rb.rb_iterations
  in
  let trend, slope_ms = fit_trend (List.map (fun i -> i.it_dur) iterations) in
  {
    lr_loop = rb.rb_loop;
    lr_run = rb.rb_run;
    lr_start = rb.rb_start;
    lr_finish = finish;
    lr_elapsed =
      Option.value ~default:(Float.max 0.0 (finish -. rb.rb_start))
        rb.rb_elapsed;
    lr_outcome = rb.rb_outcome;
    lr_truncated = rb.rb_finish = None;
    lr_iterations = iterations;
    lr_candidates = rb.rb_candidates;
    lr_cexes = rb.rb_cexes;
    lr_verdicts =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) rb.rb_verdicts []
      |> List.sort compare;
    lr_solver_calls = rb.rb_solver_calls;
    lr_sat = rb.rb_sat;
    lr_unsat = rb.rb_unsat;
    lr_conflicts = rb.rb_conflicts;
    lr_propagations = rb.rb_propagations;
    lr_certs = rb.rb_certs;
    lr_proof_bytes = rb.rb_proof_bytes;
    lr_cores =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) rb.rb_cores []
      |> List.sort compare;
    lr_trend = trend;
    lr_slope_ms = slope_ms;
  }

(* ----- span tree reconstruction ----- *)

type frame = {
  fr_path : string list;
  fr_count : int;
  fr_total : float;
  fr_self : float;
}

type node = {
  n_name : string;
  n_t : float;
  n_end : float;
  n_depth : int;
  n_children : node list; (* chronological *)
}

(* Spans arrive in completion order (children before parents), so a
   pending stack of completed subtrees reconstructs the tree: a new span
   at depth d adopts the pending spans at depth d+1 that fit inside its
   interval. Deeper or earlier leftovers mean the enclosing span never
   completed (a truncated trace); they surface as roots and are counted
   as orphans. *)
let span_forest_one spans =
  let eps = 1e-9 in
  let pending = ref [] in
  let roots = ref [] in
  let orphans = ref 0 in
  List.iter
    (fun (name, t, dur, depth) ->
      let n_end = t +. dur in
      let rec take acc = function
        | top :: rest when top.n_depth > depth -> take (top :: acc) rest
        | rest -> (acc, rest)
      in
      let deeper, rest = take [] !pending in
      let children, strays =
        List.partition
          (fun c ->
            c.n_depth = depth + 1
            && c.n_t >= t -. eps
            && c.n_end <= n_end +. eps)
          deeper
      in
      orphans := !orphans + List.length strays;
      roots := List.rev_append strays !roots;
      pending :=
        { n_name = name; n_t = t; n_end; n_depth = depth; n_children = children }
        :: rest)
    spans;
  List.iter
    (fun n ->
      if n.n_depth > 0 then incr orphans;
      roots := n :: !roots)
    !pending;
  (List.sort (fun a b -> compare a.n_t b.n_t) !roots, !orphans)

(* Depth is domain-local, so completion-order reconstruction only makes
   sense within one domain: group the spans by their [dom] field, build
   each domain's forest, then merge the roots chronologically. *)
let span_forest spans =
  let by_dom : (int, (string * float * float * int) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let order = ref [] in
  List.iter
    (fun (dom, span) ->
      match Hashtbl.find_opt by_dom dom with
      | Some l -> l := span :: !l
      | None ->
        Hashtbl.add by_dom dom (ref [ span ]);
        order := dom :: !order)
    spans;
  let roots, orphans =
    List.fold_left
      (fun (roots, orphans) dom ->
        let l = Hashtbl.find by_dom dom in
        let r, o = span_forest_one (List.rev !l) in
        (List.rev_append r roots, orphans + o))
      ([], 0) !order
  in
  (List.sort (fun a b -> compare a.n_t b.n_t) roots, orphans)

let frames_of_forest roots =
  let tbl : (string list, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let rec walk path n =
    let path = path @ [ n.n_name ] in
    let dur = Float.max 0.0 (n.n_end -. n.n_t) in
    let child_time =
      List.fold_left
        (fun acc c -> acc +. Float.max 0.0 (c.n_end -. c.n_t))
        0.0 n.n_children
    in
    let self = Float.max 0.0 (dur -. child_time) in
    (match Hashtbl.find_opt tbl path with
    | Some (c, total, s) ->
      incr c;
      total := !total +. dur;
      s := !s +. self
    | None -> Hashtbl.add tbl path (ref 1, ref dur, ref self));
    List.iter (walk path) n.n_children
  in
  List.iter (walk []) roots;
  Hashtbl.fold
    (fun path (c, total, self) acc ->
      { fr_path = path; fr_count = !c; fr_total = !total; fr_self = !self }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.fr_self a.fr_self)

(* ----- the analysis ----- *)

type t = {
  a_records : int;
  a_spans : int;
  a_events : int;
  a_wall : float;
  a_complete : bool;
  a_loops : loop_run list;
  a_frames : frame list;
  a_metrics : (string * Json.t) list;
  a_orphan_spans : int;
}

let analyze records =
  let open_runs : (string, run_b) Hashtbl.t = Hashtbl.create 8 in
  let run_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let runs = ref [] in
  (* start order, newest first *)
  let spans = ref [] in
  let metrics = ref [] in
  let wall = ref 0.0 in
  let nspans = ref 0 and nevents = ref 0 in
  let last_kind = ref `Other in
  let start_run loop t =
    let run = 1 + Option.value ~default:0 (Hashtbl.find_opt run_counts loop) in
    Hashtbl.replace run_counts loop run;
    let rb =
      {
        rb_loop = loop;
        rb_run = run;
        rb_start = t;
        rb_last = t;
        rb_finish = None;
        rb_elapsed = None;
        rb_outcome = "";
        rb_iterations = [];
        rb_candidates = 0;
        rb_cexes = 0;
        rb_solver_calls = 0;
        rb_sat = 0;
        rb_unsat = 0;
        rb_conflicts = 0;
        rb_propagations = 0;
        rb_certs = 0;
        rb_proof_bytes = 0;
        rb_cores = Hashtbl.create 4;
        rb_verdicts = Hashtbl.create 4;
      }
    in
    Hashtbl.replace open_runs loop rb;
    runs := rb :: !runs;
    rb
  in
  let current loop t =
    match Hashtbl.find_opt open_runs loop with
    | Some rb ->
      rb.rb_last <- t;
      rb
    | None -> start_run loop t (* tolerated: event before loop_started *)
  in
  List.iter
    (fun r ->
      match r with
      | Span { t; name; dur; depth; dom; attrs = _ } ->
        incr nspans;
        wall := Float.max !wall (t +. dur);
        spans := (dom, (name, t, dur, depth)) :: !spans;
        last_kind := `Other
      | Snapshot { t; metrics = m } ->
        wall := Float.max !wall t;
        metrics := m;
        last_kind := `Metrics
      | Event { t; name; loop; attrs } -> (
        incr nevents;
        wall := Float.max !wall t;
        last_kind := `Other;
        match name with
        | "loop_started" ->
          (* a stale open run of the same name is a truncated trace *)
          ignore (start_run loop t)
        | "loop_finished" ->
          let rb = current loop t in
          rb.rb_finish <- Some t;
          rb.rb_elapsed <- attr_float attrs "elapsed";
          (match attr_str attrs "outcome" with
          | Some o -> rb.rb_outcome <- o
          | None -> ());
          Hashtbl.remove open_runs loop
        | "iteration" ->
          let rb = current loop t in
          (match rb.rb_iterations with
          | prev :: _ when prev.bi_dur < 0.0 ->
            prev.bi_dur <- Float.max 0.0 (t -. prev.bi_start)
          | _ -> ());
          rb.rb_iterations <-
            {
              bi_index = attr_int attrs "index";
              bi_start = t;
              bi_dur = -1.0;
              bi_candidates = 0;
              bi_cexes = 0;
              bi_solver_calls = 0;
              bi_sat = 0;
              bi_unsat = 0;
              bi_conflicts = 0;
              bi_propagations = 0;
            }
            :: rb.rb_iterations
        | "candidate" ->
          let rb = current loop t in
          rb.rb_candidates <- rb.rb_candidates + 1;
          (match rb.rb_iterations with
          | it :: _ -> it.bi_candidates <- it.bi_candidates + 1
          | [] -> ())
        | "counterexample" ->
          let rb = current loop t in
          rb.rb_cexes <- rb.rb_cexes + 1;
          (match rb.rb_iterations with
          | it :: _ -> it.bi_cexes <- it.bi_cexes + 1
          | [] -> ())
        | "oracle_verdict" ->
          let rb = current loop t in
          let v = Option.value ~default:"" (attr_str attrs "verdict") in
          Hashtbl.replace rb.rb_verdicts v
            (1 + Option.value ~default:0 (Hashtbl.find_opt rb.rb_verdicts v))
        | "solver_call" ->
          if loop <> "" then begin
            let rb = current loop t in
            let result = Option.value ~default:"" (attr_str attrs "result") in
            let conflicts = attr_int attrs "conflicts" in
            let propagations = attr_int attrs "propagations" in
            rb.rb_solver_calls <- rb.rb_solver_calls + 1;
            if result = "sat" then rb.rb_sat <- rb.rb_sat + 1;
            if result = "unsat" then rb.rb_unsat <- rb.rb_unsat + 1;
            rb.rb_conflicts <- rb.rb_conflicts + conflicts;
            rb.rb_propagations <- rb.rb_propagations + propagations;
            match rb.rb_iterations with
            | it :: _ ->
              it.bi_solver_calls <- it.bi_solver_calls + 1;
              if result = "sat" then it.bi_sat <- it.bi_sat + 1;
              if result = "unsat" then it.bi_unsat <- it.bi_unsat + 1;
              it.bi_conflicts <- it.bi_conflicts + conflicts;
              it.bi_propagations <- it.bi_propagations + propagations
            | [] -> ()
          end
        | "certificate" ->
          (* portfolio workers certify with an empty loop name; those
             certificates still count in the proof.certificates metric
             but cannot be attributed to a loop run here *)
          if loop <> "" then begin
            let rb = current loop t in
            rb.rb_certs <- rb.rb_certs + 1;
            rb.rb_proof_bytes <- rb.rb_proof_bytes + attr_int attrs "proof_bytes";
            match attr_str attrs "core" with
            | Some core when core <> "" ->
              Hashtbl.replace rb.rb_cores core
                (1 + Option.value ~default:0 (Hashtbl.find_opt rb.rb_cores core))
            | _ -> ()
          end
        | _ -> ()))
    records;
  Hashtbl.iter (fun _ rb -> rb.rb_finish <- None) open_runs;
  let roots, orphans = span_forest (List.rev !spans) in
  {
    a_records = List.length records;
    a_spans = !nspans;
    a_events = !nevents;
    a_wall = !wall;
    a_complete = !last_kind = `Metrics;
    a_loops = List.rev_map freeze_run !runs;
    a_frames = frames_of_forest roots;
    a_metrics = !metrics;
    a_orphan_spans = orphans;
  }

(* ----- metrics snapshot helpers (parsed from JSON, not the registry) ----- *)

let buckets_of_json j =
  match j with
  | Json.List items ->
    List.filter_map
      (fun pair ->
        match pair with
        | Json.List [ le; n ] -> (
          match (Json.to_int le, Json.to_int n) with
          | Some le, Some n -> Some (le, n)
          | _ -> None)
        | _ -> None)
      items
  | _ -> []

(* count/sum/min/max/buckets objects written by the trace's final
   snapshot; returns (count, sum, max, buckets) *)
let histogram_of_json j =
  match
    ( Option.bind (Json.member "count" j) Json.to_int,
      Option.bind (Json.member "sum" j) Json.to_int,
      Option.bind (Json.member "max" j) Json.to_int )
  with
  | Some count, Some sum, Some max ->
    Some
      ( count,
        sum,
        max,
        buckets_of_json (Option.value ~default:Json.Null (Json.member "buckets" j))
      )
  | _ -> None

(* ----- report rendering ----- *)

let pp_path ppf path =
  Format.pp_print_string ppf (String.concat ";" path)

let pp_run ppf lr =
  let line fmt = Format.fprintf ppf fmt in
  let iters = List.length lr.lr_iterations in
  line "  %-10s %3d %6d %6d %6d %7d %5d/%-5d %9.3f %8.2f  %-10s %s%s@."
    lr.lr_loop lr.lr_run iters lr.lr_candidates lr.lr_cexes lr.lr_solver_calls
    lr.lr_sat lr.lr_unsat lr.lr_elapsed
    (if iters = 0 then 0.0
     else 1000.0 *. lr.lr_elapsed /. float_of_int iters)
    (trend_to_string lr.lr_trend)
    (if lr.lr_outcome = "" then "-" else lr.lr_outcome)
    (if lr.lr_truncated then " (truncated)" else "")

let pp_iteration_detail ppf lr =
  let line fmt = Format.fprintf ppf fmt in
  let iters = lr.lr_iterations in
  let n = List.length iters in
  if n > 0 then begin
    line "    %s run %d: %d iterations, trend %s (%+.2f ms/iter)" lr.lr_loop
      lr.lr_run n
      (trend_to_string lr.lr_trend)
      lr.lr_slope_ms;
    if lr.lr_verdicts <> [] then begin
      line ", verdicts:";
      List.iter (fun (v, c) -> line " %s=%d" v c) lr.lr_verdicts
    end;
    line "@.";
    let shown =
      if n <= 12 then iters
      else begin
        (* keep the slowest rounds: those are the diagnosis *)
        let slowest =
          List.sort (fun a b -> compare b.it_dur a.it_dur) iters
          |> List.filteri (fun i _ -> i < 12)
        in
        List.filter (fun it -> List.memq it slowest) iters
      end
    in
    line "    %6s %9s %9s %7s %5s %6s %10s %6s@." "iter" "t(s)" "dur(ms)"
      "solves" "sat" "unsat" "conflicts" "cexes";
    List.iter
      (fun it ->
        line "    %6d %9.3f %9.2f %7d %5d %6d %10d %6d@." it.it_index
          it.it_start (1000.0 *. it.it_dur) it.it_solver_calls it.it_sat
          it.it_unsat it.it_conflicts it.it_cexes)
      shown;
    if List.length shown < n then
      line "    (%d of %d iterations shown: the slowest)@."
        (List.length shown) n
  end

(* The audit view behind `sciduction_cli explain`: for every loop run,
   which verdicts were certified and which named constraints the unsat
   cores blamed. A run with unsat solver calls but no certificates was
   recorded without --proof (or only its portfolio workers certified,
   which the trace cannot attribute to a loop). *)
let pp_audit ppf a =
  let line fmt = Format.fprintf ppf fmt in
  if a.a_loops = [] then line "no loop runs in this trace@."
  else
    List.iter
      (fun lr ->
        line "%s run %d: %s%s@." lr.lr_loop lr.lr_run
          (if lr.lr_outcome = "" then "(no outcome)" else lr.lr_outcome)
          (if lr.lr_truncated then " (truncated)" else "");
        line "  %d solver calls (%d sat, %d unsat), %d iterations@."
          lr.lr_solver_calls lr.lr_sat lr.lr_unsat
          (List.length lr.lr_iterations);
        if lr.lr_certs = 0 then begin
          if lr.lr_unsat > 0 then
            line
              "  no certificates: %d unsat verdict(s) unaudited (run with \
               --proof PREFIX to certify them)@."
              lr.lr_unsat
        end
        else begin
          line "  %d certificate(s), %d DRAT bytes@." lr.lr_certs
            lr.lr_proof_bytes;
          if lr.lr_cores = [] then
            line "  every certified core is empty: the constraints are \
                  jointly unsatisfiable with no assumption to blame@."
          else
            List.iter
              (fun (core, n) ->
                line "  blamed %d time%s: %s@." n
                  (if n = 1 then "" else "s")
                  core)
              lr.lr_cores
        end)
      a.a_loops

let pp_metrics ppf metrics =
  let line fmt = Format.fprintf ppf fmt in
  List.iter
    (fun (name, v) ->
      match v with
      | Json.Int c -> line "  %-28s %d@." name c
      | Json.Float g -> line "  %-28s %g@." name g
      | Json.Obj _ -> (
        match histogram_of_json v with
        | Some (count, sum, max, buckets) ->
          let pct p =
            Metrics.percentile_of_buckets ~buckets ~count ~max p
          in
          line "  %-28s count=%d mean=%.1f p50=%d p90=%d p99=%d max=%d@." name
            count
            (if count = 0 then 0.0 else float_of_int sum /. float_of_int count)
            (pct 50.0) (pct 90.0) (pct 99.0) max
        | None -> ())
      | _ -> ())
    metrics;
  (* derived lines, mirroring the live registry's pp_summary *)
  let cval name =
    match List.assoc_opt name metrics with Some (Json.Int c) -> c | _ -> 0
  in
  let shared_hits = cval "bitblast.shared_hits" in
  let shared_misses = cval "bitblast.shared_misses" in
  if shared_hits + shared_misses > 0 then
    line "  shared recipe hit rate       %.1f%% (%d/%d)@."
      (100.0
      *. float_of_int shared_hits
      /. float_of_int (shared_hits + shared_misses))
      shared_hits
      (shared_hits + shared_misses);
  let exported = cval "portfolio.clauses_exported" in
  let imported = cval "portfolio.clauses_imported" in
  let dropped = cval "exchange.dropped" in
  if exported + imported > 0 then begin
    line "  clause sharing               %d exported, %d imported@." exported
      imported;
    if dropped > 0 then
      line "  clauses dropped in transit   %d (%.1f%% of exports)@." dropped
        (100.0 *. float_of_int dropped /. float_of_int (max 1 exported))
  end

let pp_report ?(top = 12) ppf a =
  let line fmt = Format.fprintf ppf fmt in
  line "records %d (%d spans, %d events), wall %.3fs, %s@." a.a_records
    a.a_spans a.a_events a.a_wall
    (if a.a_complete then "complete" else "TRUNCATED (no final metrics)");
  if a.a_orphan_spans > 0 then
    line "!! %d span(s) without a completed enclosing span@." a.a_orphan_spans;
  if a.a_loops <> [] then begin
    line "@.loops:@.";
    line "  %-10s %3s %6s %6s %6s %7s %11s %9s %8s  %-10s %s@." "loop" "run"
      "iters" "cands" "cexes" "solves" "sat/unsat" "seconds" "ms/iter" "trend"
      "outcome";
    List.iter (pp_run ppf) a.a_loops;
    line "@.";
    List.iter (pp_iteration_detail ppf) a.a_loops
  end;
  if a.a_frames <> [] then begin
    let total_self =
      List.fold_left (fun acc f -> acc +. f.fr_self) 0.0 a.a_frames
    in
    line "@.flame profile (self time over the span tree):@.";
    line "  %6s %9s %9s %7s  %s@." "self%" "self(s)" "total(s)" "count" "path";
    List.iteri
      (fun i f ->
        if i < top then
          line "  %5.1f%% %9.3f %9.3f %7d  %a@."
            (if total_self > 0.0 then 100.0 *. f.fr_self /. total_self else 0.0)
            f.fr_self f.fr_total f.fr_count pp_path f.fr_path)
      a.a_frames;
    if List.length a.a_frames > top then
      line "  (%d more paths)@." (List.length a.a_frames - top)
  end;
  if a.a_metrics <> [] then begin
    line "@.metrics:@.";
    pp_metrics ppf a.a_metrics
  end

(* ----- machine summary ----- *)

let json_of_iteration it =
  Json.Obj
    [
      ("index", Json.Int it.it_index);
      ("t", Json.Float it.it_start);
      ("ms", Json.Float (1000.0 *. it.it_dur));
      ("solver_calls", Json.Int it.it_solver_calls);
      ("sat", Json.Int it.it_sat);
      ("unsat", Json.Int it.it_unsat);
      ("conflicts", Json.Int it.it_conflicts);
      ("candidates", Json.Int it.it_candidates);
      ("counterexamples", Json.Int it.it_cexes);
    ]

let json_of_run lr =
  Json.Obj
    [
      ("name", Json.String lr.lr_loop);
      ("run", Json.Int lr.lr_run);
      ("seconds", Json.Float lr.lr_elapsed);
      ("iterations", Json.Int (List.length lr.lr_iterations));
      ("candidates", Json.Int lr.lr_candidates);
      ("counterexamples", Json.Int lr.lr_cexes);
      ("solver_calls", Json.Int lr.lr_solver_calls);
      ("sat", Json.Int lr.lr_sat);
      ("unsat", Json.Int lr.lr_unsat);
      ("conflicts", Json.Int lr.lr_conflicts);
      ("propagations", Json.Int lr.lr_propagations);
      ("certificates", Json.Int lr.lr_certs);
      ("proof_bytes", Json.Int lr.lr_proof_bytes);
      ( "cores",
        Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) lr.lr_cores) );
      ("trend", Json.String (trend_to_string lr.lr_trend));
      ("slope_ms_per_round", Json.Float lr.lr_slope_ms);
      ("outcome", Json.String lr.lr_outcome);
      ("truncated", Json.Bool lr.lr_truncated);
      ( "verdicts",
        Json.Obj (List.map (fun (v, c) -> (v, Json.Int c)) lr.lr_verdicts) );
      ( "iteration_detail",
        Json.List (List.map json_of_iteration lr.lr_iterations) );
    ]

let json_of_metric v =
  match histogram_of_json v with
  | Some (count, sum, max, buckets) ->
    let pct p = Metrics.percentile_of_buckets ~buckets ~count ~max p in
    Json.Obj
      [
        ("count", Json.Int count);
        ("sum", Json.Int sum);
        ("p50", Json.Int (pct 50.0));
        ("p90", Json.Int (pct 90.0));
        ("p99", Json.Int (pct 99.0));
        ("max", Json.Int max);
      ]
  | None -> v

let summary_json a =
  Json.Obj
    [
      ("schema", Json.String "sciduction.trace-report/1");
      ("records", Json.Int a.a_records);
      ("spans", Json.Int a.a_spans);
      ("events", Json.Int a.a_events);
      ("wall_seconds", Json.Float a.a_wall);
      ("complete", Json.Bool a.a_complete);
      ("orphan_spans", Json.Int a.a_orphan_spans);
      ("loops", Json.List (List.map json_of_run a.a_loops));
      ( "flame",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("path", Json.String (String.concat ";" f.fr_path));
                   ("count", Json.Int f.fr_count);
                   ("self_seconds", Json.Float f.fr_self);
                   ("total_seconds", Json.Float f.fr_total);
                 ])
             a.a_frames) );
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, json_of_metric v)) a.a_metrics)
      );
    ]

(* ----- cross-trace diff ----- *)

type thresholds = {
  seconds : float;
  conflicts : float;
  propagations : float;
  iterations : float;
  solves : float;
  min_seconds : float;
}

let default_thresholds =
  {
    seconds = 1.5;
    conflicts = 1.4;
    propagations = 1.4;
    iterations = 1.25;
    solves = 1.25;
    min_seconds = 0.05;
  }

type finding = {
  f_key : string;
  f_base : float;
  f_cur : float;
  f_ratio : float;
  f_limit : float;
  f_regressed : bool;
}

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rec flatten prefix j acc =
  let seg k = if prefix = "" then k else prefix ^ "." ^ k in
  match j with
  | Json.Int i -> (prefix, float_of_int i) :: acc
  | Json.Float f -> (prefix, f) :: acc
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) -> if k = "buckets" then acc else flatten (seg k) v acc)
      acc fields
  | Json.List items ->
    (* only descend into named collections (benchmarks, loops); indexed
       or per-iteration data is too positional to gate on *)
    List.fold_left
      (fun acc item ->
        match
          Option.bind (Json.member "name" item) Json.to_str
        with
        | Some name ->
          let run =
            Option.value ~default:1
              (Option.bind (Json.member "run" item) Json.to_int)
          in
          let name = if run > 1 then Printf.sprintf "%s#%d" name run else name in
          flatten (seg name) item acc
        | None -> acc)
      acc items
  | _ -> acc

let key_figures j =
  let j =
    match Json.member "summary" j with Some inner -> inner | None -> j
  in
  List.rev (flatten "" j [])

let class_of_key th key =
  if contains key "seconds" || contains key "elapsed" then
    Some (`Seconds th.seconds)
  else if contains key "conflicts" then Some (`Plain th.conflicts)
  else if contains key "propagations" then Some (`Plain th.propagations)
  else if contains key "iterations" then Some (`Plain th.iterations)
  else if contains key "solves" || contains key "solver_calls" then
    Some (`Plain th.solves)
  else None

let diff ?(thresholds = default_thresholds) ~base cur =
  let findings =
    List.filter_map
      (fun (key, cv) ->
        match (class_of_key thresholds key, List.assoc_opt key base) with
        | None, _ | _, None -> None
        | Some cls, Some bv ->
          let limit =
            match cls with `Seconds l -> l | `Plain l -> l
          in
          let timing = match cls with `Seconds _ -> true | `Plain _ -> false in
          if timing && cv < thresholds.min_seconds && bv < thresholds.min_seconds
          then None
          else begin
            let ratio =
              if bv > 0.0 then cv /. bv
              else if cv > 0.0 then infinity
              else 1.0
            in
            if ratio > limit then
              Some
                {
                  f_key = key;
                  f_base = bv;
                  f_cur = cv;
                  f_ratio = ratio;
                  f_limit = limit;
                  f_regressed = true;
                }
            else if ratio < 1.0 /. limit then
              Some
                {
                  f_key = key;
                  f_base = bv;
                  f_cur = cv;
                  f_ratio = ratio;
                  f_limit = limit;
                  f_regressed = false;
                }
            else None
          end)
      cur
  in
  List.sort
    (fun a b ->
      compare (b.f_regressed, b.f_ratio) (a.f_regressed, a.f_ratio))
    findings

let regressed findings = List.exists (fun f -> f.f_regressed) findings

let pp_findings ppf findings =
  let line fmt = Format.fprintf ppf fmt in
  if findings = [] then line "  no deltas beyond thresholds@."
  else
    List.iter
      (fun f ->
        line "  %-10s %-44s %12g -> %-12g %6.2fx (limit %.2fx)@."
          (if f.f_regressed then "REGRESSION" else "improved")
          f.f_key f.f_base f.f_cur f.f_ratio f.f_limit)
      findings

let findings_json findings =
  Json.List
    (List.map
       (fun f ->
         Json.Obj
           [
             ("key", Json.String f.f_key);
             ("base", Json.Float f.f_base);
             ("current", Json.Float f.f_cur);
             ("ratio", Json.Float f.f_ratio);
             ("limit", Json.Float f.f_limit);
             ("regression", Json.Bool f.f_regressed);
           ])
       findings)

(* ----- report driver (shared by trace_report.exe and the CLI) ----- *)

let read_json_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    (match Json.parse content with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let run_report ?(top = 12) ?(json = false) ?against ?baseline
    ?(thresholds = default_thresholds) path =
  match load path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok records -> (
    let a = analyze records in
    let base =
      match (against, baseline) with
      | Some _, Some _ -> Error "--against and --baseline are exclusive"
      | Some other, None -> (
        match load other with
        | Error msg -> Error (Printf.sprintf "%s: %s" other msg)
        | Ok records -> Ok (Some (other, key_figures (summary_json (analyze records)))))
      | None, Some file -> (
        match read_json_file file with
        | Error msg -> Error msg
        | Ok j -> Ok (Some (file, key_figures j)))
      | None, None -> Ok None
    in
    match base with
    | Error msg -> Error msg
    | Ok base ->
      let summary = summary_json a in
      let findings =
        Option.map
          (fun (source, base) ->
            (source, diff ~thresholds ~base (key_figures summary)))
          base
      in
      let code =
        match findings with
        | Some (_, fs) when regressed fs -> 1
        | _ -> 0
      in
      if json then begin
        let doc =
          Json.Obj
            (("summary", summary)
            ::
            (match findings with
            | None -> []
            | Some (source, fs) ->
              [
                ( "baseline",
                  Json.Obj
                    [
                      ("source", Json.String source);
                      ("findings", findings_json fs);
                      ( "verdict",
                        Json.String (if code = 0 then "pass" else "fail") );
                    ] );
              ]))
        in
        print_endline (Json.to_string doc)
      end
      else begin
        Format.printf "== trace report: %s ==@.%a" path (pp_report ~top) a;
        (match findings with
        | None -> ()
        | Some (source, fs) ->
          Format.printf "@.regression check against %s:@.%a" source
            pp_findings fs;
          Format.printf "verdict: %s@."
            (if code = 0 then "PASS" else "FAIL"));
        Format.print_flush ()
      end;
      Ok code)
