(* A deliberately tiny HTTP/1.0-over-Unix-socket server: one request
   per connection, first line parsed for the target, response written
   whole, connection closed. That is all a scraper (curl --unix-socket,
   Prometheus, [sciduction_cli stats]) needs, and it keeps the server a
   single select loop on one background systhread — a scrape never
   touches the domains doing the solving, and the thread itself (like
   the ticker's, see live.ml) adds no stop-the-world participant. *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* ----- page renderers ----- *)

let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    name

(* ----- SIGTERM socket cleanup -----

   A daemon killed by the service manager gets SIGTERM, not a chance to
   run its [Fun.protect] finalizers, and would leave a stale socket file
   behind. Every live Unix-socket path (stats endpoints here, the
   verification server's listener) registers itself; a process-wide
   handler — installed lazily on first registration, so ordinary runs
   never touch signal state — unlinks them all and exits with the
   conventional 128+15. OCaml runs signal handlers at safe points on
   the main thread, so the unlinks race nothing. *)

let cleanup_lock = Mutex.create ()
let cleanup_paths : string list ref = ref []
let sigterm_installed = ref false

let on_sigterm _ =
  let paths =
    Mutex.lock cleanup_lock;
    let ps = !cleanup_paths in
    cleanup_paths := [];
    Mutex.unlock cleanup_lock;
    ps
  in
  List.iter (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ()) paths;
  exit 143

let unlink_on_sigterm path =
  Mutex.lock cleanup_lock;
  if not (List.mem path !cleanup_paths) then
    cleanup_paths := path :: !cleanup_paths;
  if not !sigterm_installed then begin
    sigterm_installed := true;
    try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_sigterm)
    with Invalid_argument _ | Sys_error _ -> ()
  end;
  Mutex.unlock cleanup_lock

let forget_unlink_on_sigterm path =
  Mutex.lock cleanup_lock;
  cleanup_paths := List.filter (fun p -> p <> path) !cleanup_paths;
  Mutex.unlock cleanup_lock

let latest_metrics ticker =
  match Live.latest ticker with
  | Some s -> s.Live.metrics
  | None -> Metrics.snapshot ()

let prometheus_page ticker =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.bprintf buf fmt in
  List.iter
    (fun (name, v) ->
      (* The registry keeps integer-friendly units (the server observes
         request latency in milliseconds); the exposition follows the
         Prometheus base-unit convention, so the request histogram is
         renamed and rescaled to seconds on the way out. *)
      let n, scale =
        match name with
        | "server.request_ms" -> ("sciduction_request_seconds", 1e-3)
        | "server.requests_inflight" -> ("sciduction_requests_inflight", 1.0)
        | _ -> ("sciduction_" ^ sanitize name, 1.0)
      in
      match v with
      | Metrics.Counter c -> line "# TYPE %s counter\n%s %d\n" n n c
      | Metrics.Gauge g -> line "# TYPE %s gauge\n%s %g\n" n n g
      | Metrics.Histogram { count; sum; min = _; max = _; buckets } ->
        line "# TYPE %s histogram\n" n;
        let cum = ref 0 in
        List.iter
          (fun (le, k) ->
            cum := !cum + k;
            if scale = 1.0 then line "%s_bucket{le=\"%d\"} %d\n" n le !cum
            else
              line "%s_bucket{le=\"%g\"} %d\n" n
                (float_of_int le *. scale)
                !cum)
          buckets;
        line "%s_bucket{le=\"+Inf\"} %d\n" n count;
        if scale = 1.0 then line "%s_sum %d\n" n sum
        else line "%s_sum %g\n" n (float_of_int sum *. scale);
        line "%s_count %d\n" n count)
    (latest_metrics ticker);
  let rate_series label rs =
    if rs <> [] then begin
      line "# TYPE %s gauge\n" label;
      List.iter (fun (name, r) -> line "%s{metric=%S} %.6f\n" label name r) rs
    end
  in
  rate_series "sciduction_rate" (Live.rates ticker);
  rate_series "sciduction_window_rate" (Live.window_rates ticker);
  let loops = Heartbeat.active () in
  if loops <> [] then begin
    let series label value =
      line "# TYPE %s gauge\n" label;
      List.iter
        (fun st -> line "%s{loop=%S} %s\n" label st.Heartbeat.hb_loop (value st))
        loops
    in
    let now = Unix.gettimeofday () in
    series "sciduction_loop_iteration" (fun st ->
        string_of_int st.Heartbeat.hb_iteration);
    series "sciduction_loop_stalled" (fun st ->
        if st.Heartbeat.hb_stalled then "1" else "0");
    series "sciduction_loop_seconds_since_advance" (fun st ->
        Printf.sprintf "%.3f" (now -. st.Heartbeat.hb_last_advance))
  end;
  Buffer.contents buf

let json_of_loop now st =
  Json.Obj
    [
      ("loop", Json.String st.Heartbeat.hb_loop);
      ("iteration", Json.Int st.Heartbeat.hb_iteration);
      ("beats", Json.Int st.Heartbeat.hb_beats);
      ( "seconds_since_advance",
        Json.Float (now -. st.Heartbeat.hb_last_advance) );
      ("stalled", Json.Bool st.Heartbeat.hb_stalled);
      ("attrs", Json.Obj st.Heartbeat.hb_attrs);
    ]

let json_page ticker =
  let now = Unix.gettimeofday () in
  let rates rs = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) rs) in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "sciduction.stats/1");
         ( "ts",
           Json.Float
             (match Live.latest ticker with
             | Some s -> s.Live.ts
             | None -> now) );
         ("interval_s", Json.Float (Live.interval_s ticker));
         ("samples", Json.Int (List.length (Live.samples ticker)));
         ("window_s", Json.Float (Live.window_seconds ticker));
         ( "metrics",
           Json.Obj
             (List.map
                (fun (k, v) -> (k, Metrics.to_json v))
                (latest_metrics ticker)) );
         ("rates", rates (Live.rates ticker));
         ("window_rates", rates (Live.window_rates ticker));
         ( "loops",
           Json.List (List.map (json_of_loop now) (Heartbeat.active ())) );
       ])
  ^ "\n"

(* ----- server ----- *)

type t = {
  sd_path : string;
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable thread : Thread.t option;
  mutable stopped : bool;
}

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let handle_client ticker fd =
  (* a stuck or hostile client may cost this one bounded read, never
     the select loop forever *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0
   with Unix.Unix_error _ -> ());
  let buf = Bytes.create 1024 in
  let n = try Unix.read fd buf 0 1024 with Unix.Unix_error _ -> 0 in
  let first_line =
    let req = Bytes.sub_string buf 0 (max 0 n) in
    match String.index_opt req '\n' with
    | Some i -> String.trim (String.sub req 0 i)
    | None -> String.trim req
  in
  let target =
    match String.split_on_char ' ' first_line with
    | _meth :: tgt :: _ when tgt <> "" -> tgt
    | _ -> "/json"
  in
  let resp =
    match target with
    | "/metrics" ->
      response ~status:"200 OK" ~content_type:"text/plain; version=0.0.4"
        (prometheus_page ticker)
    | "/" | "/json" ->
      response ~status:"200 OK" ~content_type:"application/json"
        (json_page ticker)
    | "/healthz" ->
      (* liveness only: reachable server = serving process alive; stall
         diagnostics stay on /json where they carry per-loop detail *)
      response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
    | _ ->
      response ~status:"404 Not Found" ~content_type:"text/plain"
        (Printf.sprintf "unknown target %s; try /json, /metrics or /healthz\n"
           target)
  in
  (try write_all fd resp with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve t ticker =
  let buf = Bytes.create 1 in
  let rec loop () =
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
    | readable, _, _ when List.mem t.stop_r readable ->
      ignore (Unix.read t.stop_r buf 0 1 : int)
    | readable, _, _ when List.mem t.listen_fd readable ->
      (match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ -> handle_client ticker fd
      | exception Unix.Unix_error _ -> ());
      loop ()
    | _ -> loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let start ~path ~ticker () =
  (* a dead client mid-write must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* replace a stale socket file from a crashed run; a live server on
     the same path loses it, like rebinding a TCP port with SO_REUSEADDR *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16
  with
  | () ->
    let stop_r, stop_w = Unix.pipe ~cloexec:true () in
    let t =
      { sd_path = path; listen_fd = fd; stop_r; stop_w; thread = None;
        stopped = false }
    in
    t.thread <- Some (Thread.create (fun () -> serve t ticker) ());
    unlink_on_sigterm path;
    Ok t
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot serve stats on %s: %s" path
         (Unix.error_message err))

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1 : int);
    Option.iter Thread.join t.thread;
    t.thread <- None;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.stop_r; t.stop_w ];
    forget_unlink_on_sigterm t.sd_path;
    (try Unix.unlink t.sd_path with Unix.Unix_error _ -> ())
  end

(* ----- client ----- *)

let fetch ~path ?(target = "/json") () =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (err, _, _) ->
    close ();
    Error
      (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message err))
  | () -> (
    match
      write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target);
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf
    with
    | exception Unix.Unix_error (err, _, _) ->
      close ();
      Error (Printf.sprintf "scrape of %s failed: %s" path
               (Unix.error_message err))
    | raw -> (
      close ();
      let header_end = ref None in
      let n = String.length raw in
      (try
         for i = 0 to n - 4 do
           if !header_end = None && String.sub raw i 4 = "\r\n\r\n" then
             header_end := Some i
         done
       with Invalid_argument _ -> ());
      match !header_end with
      | None -> Error "malformed response (no header terminator)"
      | Some i ->
        let status_line =
          match String.index_opt raw '\r' with
          | Some j -> String.sub raw 0 j
          | None -> raw
        in
        let body = String.sub raw (i + 4) (n - i - 4) in
        (match String.split_on_char ' ' status_line with
        | _http :: "200" :: _ -> Ok body
        | _http :: code :: _ ->
          Error (Printf.sprintf "server answered %s: %s" code (String.trim body))
        | _ -> Error "malformed response (no status line)")))
