(** The live half of the telemetry plane: a background ticker that
    samples the {!Metrics} registry into a bounded ring of timestamped
    snapshots and derives per-interval rates from consecutive deltas.

    The hot path is untouched: instrumented code still performs its one
    fetch-and-add per counter bump whether or not a ticker is running —
    the ticker only {e reads} the registry, from a background systhread,
    every [interval_ms]. A systhread rather than a domain on purpose:
    an extra domain joins every stop-the-world minor collection, which
    on a single-core host taxes an allocation-heavy solver run by
    ~0.7ms {e per minor GC}, while a thread parked in [Unix.select]
    costs nothing (see the [live] bench experiment).
    Each tick also refreshes the GC metrics
    ([gc.minor_collections], [gc.major_collections], [gc.compactions],
    [gc.promoted_words], plus heap-size gauges) from [Gc.quick_stat],
    so allocation pressure and the stop-all-domains collection cadence
    are visible in the same rate window as solver counters, and then
    runs the caller's [on_tick] hook (the CLI points it at
    [Obs.check_stalls]).

    Timestamps in the ring are strictly monotone (a wall-clock step
    back is clamped), so rate denominators are always positive. The
    ring keeps the last [capacity] samples; older ones fall off. *)

type sample = {
  ts : float;  (** wall-clock seconds (Unix epoch), strictly monotone *)
  metrics : (string * Metrics.snapshot_value) list;
}

type t

val start : ?interval_ms:int -> ?capacity:int -> ?on_tick:(unit -> unit) -> unit -> t
(** Take one sample immediately, then start a thread that samples every
    [interval_ms] (default 250, clamped to >= 1) until {!stop}. The
    ring holds [capacity] samples (default 64, clamped to >= 2). *)

val stop : t -> unit
(** Wake and join the ticker thread. Idempotent. *)

val tick_now : t -> unit
(** Take one sample synchronously on the calling domain (tests, and a
    final sample at shutdown). Safe alongside the background ticker. *)

val interval_s : t -> float
val samples : t -> sample list
(** Retained samples, oldest first (at most [capacity]). *)

val latest : t -> sample option

val rates_between : prev:sample -> cur:sample -> (string * float) list
(** Per-second rate of every counter with a positive current value,
    from the delta between two samples. A counter that shrank between
    the samples was reset mid-window; its growth since the reset is the
    best available delta (Prometheus [rate()] semantics), so a
    [Metrics.reset] never yields a negative rate. Empty when the
    samples do not advance time. *)

val rates : t -> (string * float) list
(** {!rates_between} the two newest samples — the per-interval rates
    (conflicts/s, propagations/s, ...). Empty until two samples exist. *)

val window_rates : t -> (string * float) list
(** {!rates_between} the oldest and newest retained samples: the same
    rates smoothed over the whole ring. *)

val window_seconds : t -> float
(** Time spanned by the retained samples (0 with fewer than two). *)

val sample_gc : unit -> unit
(** Refresh the [gc.*] registry entries from [Gc.quick_stat]. Called on
    every tick; exposed so one-shot snapshots can include GC stats. *)
