type status = {
  hb_loop : string;
  hb_iteration : int;
  hb_beats : int;
  hb_last_advance : float;
  hb_stalled : bool;
  hb_stalled_since : float option;
  hb_attrs : (string * Json.t) list;
}

type entry = {
  mutable e_iteration : int;
  mutable e_beats : int;
  mutable e_last_advance : float;
  mutable e_stalled : bool;
  mutable e_stalled_since : float option;
  mutable e_attrs : (string * Json.t) list;
}

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 8

let status_of loop e =
  {
    hb_loop = loop;
    hb_iteration = e.e_iteration;
    hb_beats = e.e_beats;
    hb_last_advance = e.e_last_advance;
    hb_stalled = e.e_stalled;
    hb_stalled_since = e.e_stalled_since;
    hb_attrs = e.e_attrs;
  }

let fresh now =
  {
    e_iteration = -1;
    e_beats = 0;
    e_last_advance = now;
    e_stalled = false;
    e_stalled_since = None;
    e_attrs = [];
  }

let started ~loop ~now =
  Mutex.lock lock;
  Hashtbl.replace table loop (fresh now);
  Mutex.unlock lock

let beat ~loop ~now ~iteration ~attrs =
  Mutex.lock lock;
  let e =
    match Hashtbl.find_opt table loop with
    | Some e -> e
    | None ->
      let e = fresh now in
      Hashtbl.add table loop e;
      e
  in
  e.e_beats <- e.e_beats + 1;
  if iteration > e.e_iteration then begin
    e.e_iteration <- iteration;
    e.e_last_advance <- now;
    e.e_stalled <- false;
    e.e_stalled_since <- None;
    e.e_attrs <- attrs
  end;
  let it = e.e_iteration in
  Mutex.unlock lock;
  it

let finish ~loop =
  Mutex.lock lock;
  Hashtbl.remove table loop;
  Mutex.unlock lock

let poll ~now ~window =
  Mutex.lock lock;
  let newly = ref [] in
  Hashtbl.iter
    (fun loop e ->
      if (not e.e_stalled) && now -. e.e_last_advance > window then begin
        e.e_stalled <- true;
        e.e_stalled_since <- Some now;
        newly := status_of loop e :: !newly
      end)
    table;
  Mutex.unlock lock;
  List.sort compare !newly

let active () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun loop e acc -> status_of loop e :: acc) table [] in
  Mutex.unlock lock;
  List.sort compare all

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock
