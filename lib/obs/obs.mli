(** Telemetry for the sciduction stack: hierarchical timed spans, a
    typed event log for the counterexample-guided loops, the process-wide
    metrics registry, and pluggable sinks (JSON-lines trace files, an
    in-memory collector for tests, a console summary, and a Chrome
    [trace_event] exporter for flamegraph viewing).

    Tracing is off by default and designed to cost ~nothing while off:
    {!start_span} reads no clock and allocates nothing observable, the
    loop event emitters return immediately, and only the registry
    counters (plain increments that predate this library) stay live.
    [enable] starts the monotonic-origin clock; every record carries a
    timestamp in seconds since then.

    The library is domain-safe: the metrics registry uses atomics, sink
    writes and aggregate updates are serialized under one lock (records
    reach a JSONL trace whole, in emission order), and span depth and
    the current-loop stack are domain-local, so tasks on a [Par] pool
    trace independently. Each span/event record carries a [dom] field
    (the emitting domain's id); [trace_check] and {!Analyze} reconstruct
    nesting per domain. Spans must start and end on the same domain. *)

module Json = Json
module Metrics = Metrics

module Analyze = Analyze
(** The read side: trace ingestion, convergence diagnostics, flame
    profiles, and the cross-trace regression diff. *)

module Heartbeat = Heartbeat
(** Per-loop liveness ledger behind {!check_stalls} and the stats
    endpoint's loop table. *)

module Live = Live
(** The snapshot ticker: a background thread sampling the metrics
    registry (and [Gc.quick_stat]) into a bounded ring, with
    per-interval and whole-window rates derived from consecutive
    snapshots. *)

module Statsd = Statsd
(** The scrapeable stats endpoint over a Unix-domain socket, serving
    the ticker's data as Prometheus text ([/metrics]) or JSON
    ([/json]). *)

(** Attribute values attached to spans and events. *)
type value =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string

type attrs = (string * value) list

(** {1 Lifecycle} *)

val enable : unit -> unit
(** Turn tracing on and zero the trace clock. Idempotent. *)

val enabled : unit -> bool

val shutdown : unit -> unit
(** Emit the final metrics-snapshot record, flush and close every sink,
    and disable tracing. Aggregates survive for {!pp_summary}. *)

val reset : unit -> unit
(** Testing/bench hook: disable, drop sinks without emitting the final
    record, clear span/loop aggregates and the metrics registry values. *)

(** {1 Sinks} *)

type sink = {
  sink_name : string;
  emit : Json.t -> unit;  (** one record; JSONL sinks write one line *)
  close : unit -> unit;
}

val add_sink : sink -> unit

val jsonl_sink : string -> sink
(** Opens [path] for writing; each record becomes one JSON line. *)

val memory_sink : unit -> sink * (unit -> Json.t list)
(** The second component returns the records collected so far, in
    emission order. *)

(** {1 Spans}

    Records carry [t] (start, seconds since [enable]), [dur], [depth]
    (nesting level at entry) and attributes; they are emitted at span
    end, so a trace lists spans in completion order. *)

type span

val null_span : span

val start_span : ?attrs:attrs -> string -> span
(** Inert when disabled. *)

val end_span : ?attrs:attrs -> span -> unit
(** End attributes are appended after the start attributes. Ending
    [null_span] (or any span started while disabled) is a no-op. *)

val with_span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** Ends the span on exceptions too, tagging it [error=true]. *)

(** {1 Typed loop events}

    The shared vocabulary of the paper's counterexample-guided loops
    (OGIS, CEGAR, BMC, invariant generation, L*, GameTime): an
    iteration begins, a candidate is proposed, an oracle delivers a
    verdict, a counterexample joins the example set, a solver call
    completes. Each event names its loop, so interleaved loops (CEGAR
    driving BMC) stay distinguishable in one trace. *)

type event =
  | Loop_started of { loop : string; attrs : attrs }
  | Iteration of { loop : string; index : int; attrs : attrs }
  | Candidate of { loop : string; attrs : attrs }
  | Oracle_verdict of { loop : string; verdict : string; attrs : attrs }
  | Counterexample of { loop : string; attrs : attrs }
  | Solver_call of { loop : string; result : string; attrs : attrs }
  | Certificate of { loop : string; attrs : attrs }
      (** a proof certificate was issued for an unsat solver verdict
          (see [Smt.Proof]); carries [cert], [proof_bytes], [core_size]
          and the core's constraint names. Emitted at most once per
          solver call, directly after the matching [solver_call]
          record. *)
  | Progress of { loop : string; iteration : int; attrs : attrs }
      (** rate-limited liveness heartbeat: the highest iteration the
          loop has reached, plus whatever the iteration carried (depth,
          budget remaining). Synthesized by [emit] from [Iteration]
          when {!set_progress_interval} is positive — at most one per
          loop per interval — so callers rarely emit it directly. *)
  | Stall_detected of {
      loop : string;
      iteration : int;
      seconds_stalled : float;
      attrs : attrs;
    }
      (** the watchdog ({!check_stalls}) saw no iteration advance for a
          full window. Diagnostic only: nothing is killed, and the loop
          may advance again afterwards. *)
  | Budget_exhausted of { loop : string; reason : string; attrs : attrs }
      (** the loop's resource budget ran out; terminal for the loop —
          only [Loop_finished] may follow for the same loop *)
  | Loop_finished of { loop : string; attrs : attrs }
  | Job_requeued of {
      loop : string;
      id : string;
      requeue : int;
      restart_budget : int;
      attrs : attrs;
    }
      (** server plane ([loop = "server"]): a dispatcher died while
          holding this job; the supervisor put it back on the queue.
          [requeue] is the victim's cumulative requeue count, always
          [<= restart_budget] — past the budget the job is given up with
          a typed [internal_error] instead. *)
  | Degraded_entered of { loop : string; reason : string; attrs : attrs }
      (** server plane: sustained overload or repeated dispatcher
          failure; the daemon now sheds fresh heavy jobs and only serves
          cache/warm hits *)
  | Degraded_exited of { loop : string; attrs : attrs }
      (** server plane: pressure receded; normal admission resumed *)

val emit : event -> unit
(** No-op while disabled. *)

val set_progress_interval : float -> unit
(** Minimum seconds between [progress] records per loop; [0.] (the
    default) disables the progress channel entirely, keeping existing
    traces unchanged. *)

val check_stalls : window:float -> unit
(** Watchdog tick: emit a [stall_detected] record (and bump the
    [obs.stalls_detected] counter) for every active loop whose last
    iteration advance is more than [window] seconds old. Each stall is
    reported once until the loop advances again. Called from the
    {!Live} ticker's [on_tick]; safe from any domain, and a no-op while
    disabled or when [window <= 0.]. *)

(** Scoped helper over {!emit}: tracks the active loop (so solver calls
    attribute themselves to it) and feeds the per-loop aggregates behind
    {!pp_summary}. *)
module Loop : sig
  type t

  val start : ?attrs:attrs -> string -> t
  val name : t -> string
  val iteration : ?attrs:attrs -> t -> int -> unit
  val candidate : ?attrs:attrs -> t -> unit
  val verdict : ?attrs:attrs -> t -> string -> unit
  val counterexample : ?attrs:attrs -> t -> unit

  val budget_exhausted : ?attrs:attrs -> t -> reason:string -> unit
  (** The loop is stopping short on an exhausted budget; emit just
      before the final {!finish}. *)

  val finish : ?attrs:attrs -> t -> unit
  (** Also records the loop's wall time. Idempotent. *)
end

val current_loop : unit -> string
(** Name of the innermost active loop, or [""]. *)

val solver_call : result:string -> attrs -> unit
(** Emitted by the SAT core after each solve, with the per-call stats
    delta as attributes; attributed to {!current_loop}. *)

(** {1 Console} *)

val set_quiet : bool -> unit

val quiet : unit -> bool

val info : ('a, Format.formatter, unit) format -> 'a
(** Diagnostic printf to {e stderr}, suppressed by [set_quiet true], so
    diagnostics compose with piping a verdict from stdout. Final
    verdicts should use plain [Format.printf]. *)

val pp_summary : Format.formatter -> unit -> unit
(** The console stats summary: per-loop iteration timings, hottest
    spans, and the metrics registry (SAT counters, bitblast cache hit
    rate, histogram percentiles, ...). Callers conventionally print it
    to stderr for the same stdout-composability reason as {!info}. *)

(** {1 Chrome trace_event export} *)

val export_chrome : input:string -> output:string -> (unit, string) result
(** Convert a JSON-lines trace to Chrome's [trace_event] JSON format
    (load via chrome://tracing or https://ui.perfetto.dev): spans become
    complete ["X"] events, loop events become instants, the final
    metrics record becomes counter events. *)
