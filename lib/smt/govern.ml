let limits_of_meter m =
  {
    Sat.no_limits with
    Sat.max_conflicts = Budget.remaining_conflicts m;
    deadline = Budget.deadline m;
    stop = Budget.cancel_hook m;
  }

let reason_of_sat = function
  | Sat.Budget_exhausted -> Budget.Conflicts
  | Sat.Deadline -> Budget.Deadline
  | Sat.Interrupted -> Budget.Solver
