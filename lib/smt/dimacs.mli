(** DIMACS CNF reading and writing.

    Standard interchange format for the SAT solver, so instances can be
    exported to (or imported from) external tools. *)

type problem = {
  nvars : int;
  clauses : Lit.t list list;
}

val parse : string -> problem
(** Parse DIMACS CNF text. Accepts comment lines ([c ...]), a [p cnf]
    header, and 0-terminated clauses (possibly spanning lines). Raises
    [Failure] on malformed input or out-of-range literals. *)

val parse_file : string -> problem

val print : Format.formatter -> problem -> unit
(** Render in DIMACS format (with a [p cnf] header). *)

val to_string : problem -> string

val write_file : string -> problem -> unit
(** Write the problem to [path] in DIMACS format; {!parse_file}
    round-trips it. Used to emit certificate artifacts ([core.cnf],
    proof obligations) that stand alone. *)

val with_core : problem -> Lit.t list -> problem
(** [with_core p core] is [p] strengthened with one unit clause per
    core literal — the self-contained proof obligation of an [Unsat]
    verdict whose failed assumptions were [core]: it is unsatisfiable
    exactly when the core is genuine, checkable by any DIMACS solver. *)

val solve : problem -> Dpll.result
(** Decide with the CDCL solver ({!Sat}); the model (if any) is reported
    in the same representation as the reference solver's for easy
    checking. *)
