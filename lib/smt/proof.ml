(* Append-only proof spools with lazy materialization. A stream buffers
   clause lines in memory and opens its file only on buffer overflow or
   at the first certificate, so solvers that never prove anything
   unsatisfiable (scratch encoders, probe contexts, SAT-only runs) cost
   a Buffer and nothing else. Certificates are prefix pointers into the
   spool files plus the verdict's core, recorded as one JSON line in a
   shared index; the spool itself is never rewritten. *)

let m_bytes = Obs.Metrics.counter "proof.bytes"
let m_clauses = Obs.Metrics.counter "proof.clauses_logged"
let m_deletions = Obs.Metrics.counter "proof.deletions_logged"
let m_certs = Obs.Metrics.counter "proof.certificates"
let m_core_size = Obs.Metrics.histogram "proof.core_size"

let spill_threshold = 1 lsl 18 (* 256 KiB of buffered lines *)

type stream = {
  st_path : string;
  st_buf : Buffer.t;
  mutable st_chan : out_channel option;
  mutable st_bytes : int; (* total appended = on disk + buffered *)
  mutable st_scratch : Bytes.t; (* line being rendered, grown on demand *)
}

type spool = {
  sp_id : int;
  sp_shared : bool;
  sp_lock : Mutex.t;
  cnf : stream;
  drat : stream;
  mutable sp_cnf_clauses : int;
  (* registry deltas batched here and pushed at certify/disable: two
     atomic adds per logged clause are measurable against an encoder
     that generates clauses every few hundred nanoseconds *)
  mutable sp_pending_bytes : int;
  mutable sp_pending_clauses : int;
  mutable sp_pending_dels : int;
}

type plane = {
  pl_prefix : string;
  pl_lock : Mutex.t;
  mutable pl_idx : out_channel option; (* opened at enable *)
  mutable pl_next_spool : int;
  mutable pl_next_cert : int;
  mutable pl_spools : spool list;
}

let plane : plane option Atomic.t = Atomic.make None

let mk_stream path =
  {
    st_path = path;
    st_buf = Buffer.create 128;
    st_chan = None;
    st_bytes = 0;
    st_scratch = Bytes.create 256;
  }

(* Materialize the buffered tail. The first flush creates (and
   truncates) the file; later flushes append through the kept-open
   channel. No [flush ch]: the channel's own buffering batches the
   write syscalls, and [close_stream] (reached from [disable]) flushes
   before anything reads the file — a per-certificate flush costs a
   syscall per verdict, which dominates sub-20ms verification runs.
   Caller holds the spool lock. *)
let flush_stream st =
  if Buffer.length st.st_buf > 0 || st.st_chan <> None then begin
    let ch =
      match st.st_chan with
      | Some ch -> ch
      | None ->
        let ch =
          open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 st.st_path
        in
        st.st_chan <- Some ch;
        ch
    in
    Buffer.output_buffer ch st.st_buf;
    Buffer.clear st.st_buf
  end

(* Decimal rendering without going through [string_of_int] or the
   Buffer per-char path: a clause line is rendered into the stream's
   scratch bytes with unchecked writes (the caller sized it first) and
   handed to the Buffer in one piece. The spool sees one int per
   literal of every asserted and learnt clause, so this path runs at
   clause-generation speed during encoding — it has to be cheap. *)
let rec write_uint b pos n =
  let pos = if n >= 10 then write_uint b pos (n / 10) else pos in
  Bytes.unsafe_set b pos (Char.unsafe_chr (Char.code '0' + (n mod 10)));
  pos + 1

let write_int b pos n =
  if n < 0 then begin
    Bytes.unsafe_set b pos '-';
    write_uint b (pos + 1) (-n)
  end
  else write_uint b pos n

let ensure_scratch st n =
  if Bytes.length st.st_scratch < n then
    st.st_scratch <- Bytes.create (max n (2 * Bytes.length st.st_scratch))

(* Close out one clause line rendered into the scratch up to [pos]:
   terminating 0, byte accounting, spill check. Returns the line
   length. Caller holds the spool lock when the spool is shared. *)
let finish_line st pos =
  let b = st.st_scratch in
  Bytes.unsafe_set b pos '0';
  Bytes.unsafe_set b (pos + 1) '\n';
  let len = pos + 2 in
  Buffer.add_subbytes st.st_buf b 0 len;
  st.st_bytes <- st.st_bytes + len;
  if Buffer.length st.st_buf >= spill_threshold then flush_stream st;
  len

(* worst case per literal: sign + 19 digits + space *)
let lit_width = 21

let start_line st prefix n =
  ensure_scratch st (String.length prefix + (lit_width * n) + 2);
  Bytes.blit_string prefix 0 st.st_scratch 0 (String.length prefix);
  String.length prefix

let append_clause ?(prefix = "") st n get =
  let pos = ref (start_line st prefix n) in
  let b = st.st_scratch in
  for i = 0 to n - 1 do
    pos := write_int b !pos (Lit.to_int (get i));
    Bytes.unsafe_set b !pos ' ';
    incr pos
  done;
  finish_line st !pos

let append_clause_list st lits =
  let pos = ref (start_line st "" (List.length lits)) in
  let b = st.st_scratch in
  List.iter
    (fun l ->
      pos := write_int b !pos (Lit.to_int l);
      Bytes.unsafe_set b !pos ' ';
      incr pos)
    lits;
  finish_line st !pos

(* A private spool belongs to exactly one solver and is only ever
   touched from that solver's thread, so the lock is pure overhead on
   the per-clause path; the shared portfolio spool genuinely needs it. *)
let lock_if_shared sp = if sp.sp_shared then Mutex.lock sp.sp_lock
let unlock_if_shared sp = if sp.sp_shared then Mutex.unlock sp.sp_lock

(* A certificate references both spool files by path, so they must
   exist on disk even when nothing was ever logged — a root-level
   conflict learns no clauses and leaves the DRAT stream empty. Only
   the file is created here: buffered lines land at spill or at
   [close_stream], and nothing reads a spool before [disable] closes
   it — flushing per certificate costs ~15us of cold-cache channel
   work per verdict, which dominates sub-20ms verification runs. *)
let materialize st =
  if st.st_chan = None then
    st.st_chan <-
      Some (open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 st.st_path)

let close_stream st =
  match st.st_chan with
  | None -> () (* never materialized: drop the buffer, create nothing *)
  | Some ch ->
    Buffer.output_buffer ch st.st_buf;
    Buffer.clear st.st_buf;
    st.st_chan <- None;
    close_out_noerr ch

let meter sp added =
  sp.sp_pending_bytes <- sp.sp_pending_bytes + added;
  sp.sp_pending_clauses <- sp.sp_pending_clauses + 1

(* Push batched deltas to the registry. Caller holds the spool lock
   when the spool is shared. *)
let sync_metrics sp =
  if sp.sp_pending_bytes > 0 then begin
    Obs.Metrics.add m_bytes sp.sp_pending_bytes;
    sp.sp_pending_bytes <- 0
  end;
  if sp.sp_pending_clauses > 0 then begin
    Obs.Metrics.add m_clauses sp.sp_pending_clauses;
    sp.sp_pending_clauses <- 0
  end;
  if sp.sp_pending_dels > 0 then begin
    Obs.Metrics.add m_deletions sp.sp_pending_dels;
    sp.sp_pending_dels <- 0
  end

let enabled () = Atomic.get plane <> None

let active_prefix () =
  match Atomic.get plane with
  | Some p -> Some p.pl_prefix
  | None -> None

let disable () =
  match Atomic.exchange plane None with
  | None -> ()
  | Some p ->
    Mutex.lock p.pl_lock;
    List.iter
      (fun sp ->
        Mutex.lock sp.sp_lock;
        sync_metrics sp;
        close_stream sp.cnf;
        close_stream sp.drat;
        Mutex.unlock sp.sp_lock)
      p.pl_spools;
    p.pl_spools <- [];
    (match p.pl_idx with
    | Some ch ->
      p.pl_idx <- None;
      close_out_noerr ch
    | None -> ());
    Mutex.unlock p.pl_lock

let enable ~prefix =
  disable ();
  let idx =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 (prefix ^ ".idx")
  in
  Atomic.set plane
    (Some
       {
         pl_prefix = prefix;
         pl_lock = Mutex.create ();
         pl_idx = Some idx;
         pl_next_spool = 0;
         pl_next_cert = 0;
         pl_spools = [];
       })

let create_spool ?(shared = false) () =
  match Atomic.get plane with
  | None -> None
  | Some p ->
    Mutex.lock p.pl_lock;
    let id = p.pl_next_spool in
    p.pl_next_spool <- id + 1;
    let base = Printf.sprintf "%s.s%d" p.pl_prefix id in
    let sp =
      {
        sp_id = id;
        sp_shared = shared;
        sp_lock = Mutex.create ();
        cnf = mk_stream (base ^ ".cnf");
        drat = mk_stream (base ^ ".drat");
        sp_cnf_clauses = 0;
        sp_pending_bytes = 0;
        sp_pending_clauses = 0;
        sp_pending_dels = 0;
      }
    in
    p.pl_spools <- sp :: p.pl_spools;
    Mutex.unlock p.pl_lock;
    Some sp

let is_shared sp = sp.sp_shared

let log_original sp lits =
  lock_if_shared sp;
  sp.sp_cnf_clauses <- sp.sp_cnf_clauses + 1;
  meter sp (append_clause_list sp.cnf lits);
  unlock_if_shared sp

let log_learnt sp c =
  lock_if_shared sp;
  meter sp (append_clause sp.drat (Array.length c) (Array.get c));
  unlock_if_shared sp

let log_learnt_unit sp l =
  lock_if_shared sp;
  meter sp (append_clause sp.drat 1 (fun _ -> l));
  unlock_if_shared sp

let log_delete sp c =
  (* deletions are only logged on private spools (a shared spool's
     clauses may be live in a sibling solver), so no lock is needed *)
  if not sp.sp_shared then begin
    sp.sp_pending_bytes <-
      sp.sp_pending_bytes
      + append_clause ~prefix:"d " sp.drat (Array.length c) (Array.get c);
    sp.sp_pending_dels <- sp.sp_pending_dels + 1
  end

type cert = {
  cert_id : int;
  cert_cnf : string;
  cert_cnf_bytes : int;
  cert_drat : string;
  cert_drat_bytes : int;
  cert_core_size : int;
}

let certify sp ~core ~names ~maxvar ~loop =
  match Atomic.get plane with
  | None -> None
  | Some p ->
    Mutex.lock sp.sp_lock;
    (* The core clause (negated failed assumptions) is itself RUP with
       respect to everything logged so far, so appending it keeps the
       spool a valid proof log for later certificates. The empty clause
       is NOT appended — it would terminate every longer reconstruction
       early — the checker adds it when rebuilding this verdict's pair. *)
    if core <> [] then begin
      let arr = Array.of_list core in
      meter sp (append_clause sp.drat (Array.length arr) (fun i -> Lit.neg arr.(i)))
    end;
    sync_metrics sp;
    materialize sp.cnf;
    materialize sp.drat;
    let c =
      {
        cert_id = 0 (* patched below, under the plane lock *);
        cert_cnf = sp.cnf.st_path;
        cert_cnf_bytes = sp.cnf.st_bytes;
        cert_drat = sp.drat.st_path;
        cert_drat_bytes = sp.drat.st_bytes;
        cert_core_size = List.length core;
      }
    in
    let cnf_clauses = sp.sp_cnf_clauses in
    Mutex.unlock sp.sp_lock;
    Mutex.lock p.pl_lock;
    let id = p.pl_next_cert in
    p.pl_next_cert <- id + 1;
    let c = { c with cert_id = id } in
    (match p.pl_idx with
    | Some ch ->
      let line =
        Obs.Json.to_string
          (Obs.Json.Obj
             [
               ("cert", Obs.Json.Int id);
               ("spool", Obs.Json.Int sp.sp_id);
               ("loop", Obs.Json.String loop);
               ("cnf", Obs.Json.String c.cert_cnf);
               ("cnf_bytes", Obs.Json.Int c.cert_cnf_bytes);
               ("cnf_clauses", Obs.Json.Int cnf_clauses);
               ("maxvar", Obs.Json.Int maxvar);
               ("drat", Obs.Json.String c.cert_drat);
               ("drat_bytes", Obs.Json.Int c.cert_drat_bytes);
               ( "core",
                 Obs.Json.List
                   (List.map (fun l -> Obs.Json.Int (Lit.to_int l)) core) );
               ( "names",
                 Obs.Json.List
                   (List.map (fun n -> Obs.Json.String n) names) );
             ])
      in
      output_string ch line;
      output_char ch '\n'
    | None -> ());
    Mutex.unlock p.pl_lock;
    Obs.Metrics.incr m_certs;
    Obs.Metrics.observe m_core_size c.cert_core_size;
    Some c

let read_index ~prefix =
  let path = prefix ^ ".idx" in
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let rec go acc =
      match input_line ic with
      | exception End_of_file ->
        close_in_noerr ic;
        Ok (List.rev acc)
      | "" -> go acc
      | line -> (
        match Obs.Json.parse line with
        | Ok j -> go (j :: acc)
        | Error e ->
          close_in_noerr ic;
          Error (Printf.sprintf "%s: bad index line: %s" path e))
    in
    go []
