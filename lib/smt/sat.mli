(** A CDCL SAT solver with MiniSat-style incrementality.

    Implements the standard conflict-driven clause learning architecture:
    two-watched-literal unit propagation with blocking literals, first-UIP
    conflict analysis with non-chronological backjumping, VSIDS variable
    activities with phase saving, Luby-sequence restarts, and a learned
    clause database with LBD (glue) tracking and periodic geometric
    reduction. This is the deductive engine [D] underneath every
    bit-vector query in the repository.

    The solver is fully incremental: clauses can be added between
    [solve] calls, queries can carry assumption literals, and
    {!push}/{!pop} open retractable scopes implemented with activation
    literals, so counterexample-guided loops keep one solver (and its
    learned clauses) alive across iterations. *)

type t

(** Why a solve stopped without a verdict. *)
type reason =
  | Budget_exhausted
      (** a {!limits} counter (conflicts/propagations/steps) ran out *)
  | Deadline  (** the {!limits} wall-clock deadline passed *)
  | Interrupted
      (** the {!set_terminate} callback answered [true], or a fault was
          injected at the solve boundary (see [Fault]) *)

val reason_to_string : reason -> string
(** ["budget_exhausted"] / ["deadline"] / ["interrupted"]. *)

type result =
  | Sat
  | Unsat
  | Unknown of reason
      (** The query was abandoned. The solver is left at decision level
          0 with clauses, learned clauses and statistics intact, so it
          remains usable; no model is available. *)

(** Cumulative solver statistics (since [create]). *)
type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;  (** literals propagated *)
  restarts : int;
  solves : int;  (** [solve]/[solve_with_assumptions] calls *)
  learnts : int;  (** learned clauses currently alive *)
  learnts_deleted : int;  (** learned clauses removed by DB reduction *)
  db_reductions : int;
  clauses : int;  (** total clauses alive (problem + learnt) *)
  vars : int;
  lbd_sum : int;  (** sum of learned-clause LBDs (unit learnts count 1) *)
  lbd_max : int;
  max_assumption_depth : int;
      (** largest assumption count (explicit + scope literals) any solve
          carried *)
}

type global_stats = {
  g_solves : int;
  g_conflicts : int;
  g_propagations : int;
}

val create :
  ?learnt_limit:int ->
  ?seed:int ->
  ?default_phase:bool ->
  ?restart_base:int ->
  ?proof:bool ->
  unit ->
  t
(** [learnt_limit] overrides the initial learned-clause cap (before
    geometric growth); the default is derived from the problem size.
    Mainly useful to force database reductions in tests.

    The remaining knobs diversify the search without affecting
    soundness, so a portfolio can race differently-configured solvers on
    the same instance (see [Portfolio]):
    - [seed] (default 0 = off) deterministically jitters initial
      variable activities, perturbing the branching order;
    - [default_phase] (default [false]) is the polarity a variable is
      first decided with, before phase saving takes over;
    - [restart_base] (default 100) scales the Luby restart schedule:
      the [i]-th search segment allows [restart_base * luby i]
      conflicts.

    [proof] (default [true]) attaches a fresh proof spool when the
    proof plane is enabled (see [Proof]); pass [false] for solvers
    whose proof stream is managed externally, e.g. portfolio members
    writing to a shared spool via {!set_proof}. *)

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_learnts : t -> int
val num_conflicts : t -> int
(** Conflicts encountered during all [solve] calls so far. *)

val stats : t -> stats

val global_stats : unit -> global_stats
(** Process-wide totals across {e all} solver instances, surviving
    solver teardown; used by the bench harness to compare fresh-solver
    loops against persistent-solver loops. A thin shim over the
    [Obs.Metrics] registry ([sat.solves] / [sat.conflicts] /
    [sat.propagations]), so these totals and a metrics snapshot can
    never drift apart. *)

val reset_global_stats : unit -> unit
(** Zeroes only the three counters above; prefer [Obs.Metrics.reset] to
    clear the whole registry. *)

val add_clause : t -> Lit.t list -> unit
(** Add a clause. Tautologies are dropped; the empty clause makes the
    instance trivially unsatisfiable. All mentioned variables must have
    been allocated with [new_var]. Clauses may be added freely between
    [solve] calls. Inside an open {!push} scope the clause is guarded by
    the scope's activation literal and disappears at the matching
    {!pop}. *)

val add_clause_permanent : t -> Lit.t list -> unit
(** Like {!add_clause} but never scope-guarded: the clause survives every
    [pop]. Encoders whose output wires are cached across scopes (Tseitin
    gate definitions) must use this. *)

val push : t -> unit
(** Open an assumption-literal scope: subsequent {!add_clause}s are
    retractable by the matching {!pop}. Scopes nest. *)

val push_named : t -> string -> unit
(** Like {!push}, but names the scope's activation variable so unsat
    cores blaming this scope render readably (see {!core_names}). *)

val pop : t -> unit
(** Close the innermost scope, permanently retracting its clauses.
    Learned clauses derived from them remain (they are satisfied by the
    retired activation literal and eventually reclaimed by database
    reduction). Raises [Invalid_argument] without an open scope. *)

val num_scopes : t -> int

val solve : t -> result
(** Decide satisfiability under the currently open scopes. May be called
    repeatedly, with clauses added between calls. *)

val solve_with_assumptions : t -> Lit.t list -> result
(** Like [solve] but additionally under the given assumption literals. *)

val value : t -> int -> bool
(** [value s v] is the truth value of variable [v] in the model found by
    the last successful [solve]. Unassigned variables read as [false]. *)

val model : t -> bool array
(** The full model (indexed by variable) after a [Sat] answer. *)

val luby : int -> int
(** The Luby restart sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8…
    Iterative; exposed for testing. *)

(** {2 Resource limits and cooperative cancellation}

    Limits make a single solve call abandonable: when any counter runs
    out or the deadline passes, the call returns [Unknown] with the
    matching {!reason} instead of a verdict, at decision level 0 and
    fully usable for further queries. The counter limits are
    deterministic — they bound per-call deltas and are checked at the
    top of every search step, before the step can conclude [Sat] or
    [Unsat] — while the deadline is polled every 128 steps and is
    inherently wall-clock dependent. A trivially unsatisfiable instance
    (empty clause already derived, or assumptions false at the root)
    still answers [Unsat]: no search happens, so no budget applies. *)

type limits = {
  max_conflicts : int option;  (** conflicts allowed for one call *)
  max_propagations : int option;  (** literal propagations for one call *)
  max_steps : int option;  (** search steps (conflicts + decisions) *)
  deadline : float option;
      (** absolute wall-clock cutoff, [Unix.gettimeofday] scale *)
  stop : (unit -> bool) option;
      (** cooperative cancellation hook, polled with the deadline (every
          128 steps): answering [true] abandons the call with
          [Unknown Interrupted]. Unlike {!set_terminate} — which one
          owner (the portfolio) installs directly on a solver it built —
          the hook rides inside the limits record, so budget bridges
          like [Govern.limits_of_meter] propagate it to every solver a
          loop constructs without the loop knowing it exists. The
          verification server cancels in-flight jobs through this. *)
}

val no_limits : limits

val set_limits : t -> limits -> unit
(** Install limits for subsequent solve calls (each call is bounded
    independently: counters limit per-call deltas). Persists until
    changed or {!clear_limits}. *)

val clear_limits : t -> unit

val limits : t -> limits

val set_terminate : t -> (unit -> bool) option -> unit
(** Install (or with [None], remove) a cooperative termination callback,
    polled from the search loop every few dozen steps. Used by the
    portfolio front-end to cancel losing solvers; the callback must be
    cheap and safe to call from another domain's token (e.g.
    [Par.Cancel.is_set]). *)

(** {2 Learnt-clause sharing}

    Cooperating solvers working on the {e same} CNF (identical variable
    numbering, e.g. portfolio members) can exchange learned clauses:
    every learnt is a logical consequence of the shared problem, so
    adopting any subset of another member's learnts preserves both
    [Sat] and [Unsat] verdicts. The hooks keep the solver decoupled
    from any particular transport (see [Exchange] for the lock-free
    ring the portfolio uses). *)

type share = {
  export : lbd:int -> Lit.t array -> unit;
      (** called on every learned clause (unit learnts export with LBD
          1), from the search hot path: it must be cheap, must not
          block, and must copy the array if it retains it — the solver
          hands over its live clause *)
  import : unit -> (int * Lit.t array) list;
      (** polled at restart boundaries (decision level 0); returns
          [(lbd, literals)] pairs to adopt. Satisfied-at-root and
          tautological clauses are dropped, units enqueue at level 0,
          an empty clause settles the instance [Unsat], and imported
          clauses keep their foreign LBD so database reduction can
          reclaim them. Clauses mentioning variables the solver never
          allocated are ignored. *)
}

val set_share : t -> share option -> unit
(** Install (or with [None], remove) the sharing hooks. *)

(** {2 Unsat cores and proof certificates}

    Every [Unsat] verdict records the subset of its assumption literals
    (explicit assumptions and open-scope activation literals) that the
    final conflict actually depended on — MiniSat-style final-conflict
    analysis, run unconditionally so verdicts and solver behaviour are
    identical whether or not anyone reads the core. When the proof
    plane is enabled ([Proof.enable]), each [Unsat] additionally issues
    a DRAT-backed certificate and emits an [Obs] [certificate] event. *)

val unsat_core : t -> Lit.t list
(** The failed assumptions of the most recent [Unsat], as assumed
    (empty for verdicts that hold without assumptions, e.g. a
    root-level conflict). Meaningless after a [Sat]/[Unknown] answer. *)

val core_names : t -> string list
(** {!unsat_core} rendered through the names registered with
    {!set_name}/{!push_named}; unnamed literals render as ["lit<n>"]
    (their signed DIMACS integer). *)

val set_name : t -> int -> string -> unit
(** [set_name s v name] names variable [v]'s constraint for core
    reporting (activation literals of named assertions, selector
    variables of candidate clauses, ...). *)

val set_proof : t -> Proof.spool option -> unit
(** Attach (or detach) the proof spool this solver logs to. Normally
    managed by {!create}; the portfolio attaches one shared spool to
    every member. *)

val proof_spool : t -> Proof.spool option
