(** Portfolio SAT solving: race diversified CDCL configurations on one
    CNF, first verdict wins, losers are cancelled.

    Soundness is inherited, not negotiated: every configuration is the
    same sound-and-complete {!Sat} solver, differing only in search
    heuristics (initial polarity, branching-order jitter, restart
    schedule), so whichever instance answers first answers correctly and
    every instance would eventually agree. The verdict is therefore
    bit-for-bit identical to a sequential run; only {e which} model a
    satisfiable instance yields (and how long the race takes) can
    differ. Cancelled solvers still merge their per-solve statistics
    into the [Obs.Metrics] registry; the race itself counts under
    [portfolio.races] / [portfolio.cancelled]. *)

(** One diversified solver configuration (the knobs of [Sat.create]). *)
type config = {
  seed : int;  (** branching-order jitter; 0 = off *)
  default_phase : bool;  (** initial decision polarity *)
  restart_base : int;  (** Luby schedule scale (conflicts per unit) *)
}

val vanilla : config
(** [Sat.create]'s own defaults: seed 0, phase [false], base 100. *)

val default_configs : int -> config list
(** [n] configurations for an [n]-wide race. Index 0 is {!vanilla}, so
    narrow portfolios degrade gracefully to the plain solver; the others
    alternate polarity, carry distinct seeds, and halve or double the
    restart base. *)

type outcome = {
  result : Sat.result;
      (** [Unknown] only when every member (and the retry) stopped
          without a verdict — possible only under {!Sat.limits} or
          fault injection *)
  model : bool array option;  (** the winner's model, on [Sat] *)
  winner : int;  (** index into the raced configuration list *)
  raced : int;  (** configurations actually raced *)
  retried : bool;
      (** the race produced no verdict and the vanilla configuration was
          re-run sequentially *)
}

val solve :
  ?pool:Par.Pool.t ->
  ?configs:config list ->
  ?limits:Sat.limits ->
  ?share:bool ->
  Dimacs.problem ->
  outcome
(** Decide the CNF. Without [?pool] (or with a single configuration)
    this runs exactly one solver — the first configuration, by default
    {!vanilla} — sequentially. With a pool, one task per configuration
    is raced under a shared [Par.Cancel] token ([?configs] defaults to
    [default_configs (Par.Pool.jobs pool)]); the first verdict sets the
    token and the siblings stop at their next termination poll.

    With [?share] (the default), racing members also {e cooperate}:
    each exports its low-LBD learnt clauses (LBD <= 4, length-capped)
    into a bounded wait-free [Exchange] and adopts the others' exports
    at its restart boundaries. Shared clauses are logical consequences
    of the common CNF, so the verdict is unaffected — only the wall
    clock and which model a satisfiable instance yields can change.
    Traffic counts under [portfolio.clauses_exported] /
    [portfolio.clauses_imported]. [~share:false] restores the pure
    race.

    [?limits] bounds every member's solve call ([Sat.set_limits]). A
    member that exhausts its limits (or hits an injected fault) reports
    [Unknown] and is simply not a winner; if {e no} member produces a
    verdict, the vanilla configuration is retried once sequentially
    (under the same limits) and its answer — possibly [Unknown] — is
    the outcome. Raises [Invalid_argument] on an empty [?configs]. *)
