type t = {
  sat : Sat.t;
  tt : Lit.t;
  mutable tap : (Lit.t list -> unit) option;
}

(* fresh gate outputs actually encoded (constant-folded calls don't count) *)
let m_gates = Obs.Metrics.counter "tseitin.gates"
let m_gate_clauses = Obs.Metrics.counter "tseitin.clauses"

let create () =
  let sat = Sat.create () in
  let v = Sat.new_var sat in
  let tt = Lit.pos v in
  Sat.add_clause_permanent sat [ tt ];
  { sat; tt; tap = None }

let set_tap t f = t.tap <- f

(* every permanent (definitional) clause flows through here so a tap —
   the CNF recipe recorder — sees exactly what an encoding emitted *)
let emit t c =
  (match t.tap with None -> () | Some f -> f c);
  Sat.add_clause_permanent t.sat c

let solver t = t.sat
let true_ t = t.tt
let false_ t = Lit.neg t.tt
let of_bool t b = if b then true_ t else false_ t
let fresh t = Lit.pos (Sat.new_var t.sat)
let assert_lit t l = Sat.add_clause t.sat [ l ]
let assert_clause t c = Sat.add_clause t.sat c

(* Assertions that must survive scope pops: definitional constraints whose
   wires are cached by encoders (e.g. the bit blaster's divider). *)
let assert_permanent t l = emit t [ l ]
let push t = Sat.push t.sat
let push_named t name = Sat.push_named t.sat name
let pop t = Sat.pop t.sat
let name_lit t l name = Sat.set_name t.sat (Lit.var l) name
let not_ l = Lit.neg l

let is_true t l = l = t.tt
let is_false t l = l = Lit.neg t.tt

let and2 t a b =
  if is_false t a || is_false t b then false_ t
  else if is_true t a then b
  else if is_true t b then a
  else if a = b then a
  else if a = Lit.neg b then false_ t
  else begin
    let o = fresh t in
    Obs.Metrics.incr m_gates;
    Obs.Metrics.add m_gate_clauses 3;
    emit t [ Lit.neg o; a ];
    emit t [ Lit.neg o; b ];
    emit t [ o; Lit.neg a; Lit.neg b ];
    o
  end

let or2 t a b = Lit.neg (and2 t (Lit.neg a) (Lit.neg b))

let xor2 t a b =
  if is_false t a then b
  else if is_false t b then a
  else if is_true t a then Lit.neg b
  else if is_true t b then Lit.neg a
  else if a = b then false_ t
  else if a = Lit.neg b then true_ t
  else begin
    let o = fresh t in
    Obs.Metrics.incr m_gates;
    Obs.Metrics.add m_gate_clauses 4;
    emit t [ Lit.neg o; a; b ];
    emit t [ Lit.neg o; Lit.neg a; Lit.neg b ];
    emit t [ o; Lit.neg a; b ];
    emit t [ o; a; Lit.neg b ];
    o
  end

let iff2 t a b = Lit.neg (xor2 t a b)
let implies t a b = or2 t (Lit.neg a) b

let mux t c a b =
  if is_true t c then a
  else if is_false t c then b
  else if a = b then a
  else begin
    let o = fresh t in
    Obs.Metrics.incr m_gates;
    Obs.Metrics.add m_gate_clauses 4;
    emit t [ Lit.neg c; Lit.neg a; o ];
    emit t [ Lit.neg c; a; Lit.neg o ];
    emit t [ c; Lit.neg b; o ];
    emit t [ c; b; Lit.neg o ];
    o
  end

let and_list t = List.fold_left (and2 t) (true_ t)
let or_list t = List.fold_left (or2 t) (false_ t)

let full_adder t a b cin =
  let axb = xor2 t a b in
  let sum = xor2 t axb cin in
  let carry = or2 t (and2 t a b) (and2 t axb cin) in
  (sum, carry)

let lit_of_model t l =
  let v = Sat.value t.sat (Lit.var l) in
  if Lit.sign l then v else not v
