(** User-facing QF_BV satisfiability interface.

    This is the deductive engine handed to the sciduction applications:
    assert formulas, check, read back a model. The solver is incremental
    in both senses: "assert more, check again" (monotone strengthening),
    and retraction via {!push}/{!pop} scopes or individual
    {!assert_retractable} assertions — both implemented with activation
    literals over one persistent CDCL instance, so bit-blasted encodings
    of shared subterms and learned clauses are reused across the queries
    of a counterexample-guided loop. *)

type t

type answer =
  | Sat
  | Unsat
  | Unknown of Sat.reason
      (** The query was abandoned (budget, deadline, interrupt or
          injected fault); the solver remains usable. See
          {!set_limits}. *)

val create : unit -> t

val assert_formula : t -> Bv.formula -> unit
(** Assert a formula. Inside an open {!push} scope the assertion is
    retracted by the matching {!pop}; otherwise it is permanent. *)

val push : t -> unit
(** Open a retractable assertion scope. Scopes nest. *)

val push_named : t -> string -> unit
(** Like {!push} but names the scope: when a later [Unsat] blames the
    formulas asserted inside it, {!unsat_core} reports this name. *)

val pop : t -> unit
(** Close the innermost scope, retracting the formulas asserted inside
    it. The bit-blast cache survives: re-asserting a formula whose
    subterms were already encoded costs no new clauses. *)

type retractable

val assert_retractable : t -> Bv.formula -> retractable
(** Assert a formula that can later be withdrawn with {!retract},
    independently of the scope stack. *)

val assert_named : t -> string -> Bv.formula -> retractable
(** {!assert_retractable} plus a human-readable name for unsat-core
    reporting: an [Unsat] whose final conflict depended on this
    assertion lists [name] in {!unsat_core}. *)

val retract : t -> retractable -> unit
(** Withdraw a retractable assertion. Raises [Invalid_argument] if it is
    not currently active. *)

val check : t -> answer
(** Decide satisfiability of everything currently asserted. May be
    called any number of times, interleaved with assertions. *)

val unsat_core : t -> string list
(** After an [Unsat] answer: the names of the retractable assertions
    and scopes the verdict actually depended on (named via
    {!assert_named}/{!push_named}; anonymous ones render as
    ["lit<n>"]). Empty when the permanent clauses alone are
    inconsistent. Meaningless after [Sat]/[Unknown]. *)

val unsat_core_lits : t -> Lit.t list
(** The raw failed-assumption literals behind {!unsat_core}. *)

val value : t -> string -> int
(** Model value of a bit-vector variable after a [Sat] answer; variables
    the solver never saw read as 0. *)

val bool_value : t -> string -> bool
val model_env : t -> Bv.env

val set_limits : t -> Sat.limits -> unit
(** Bound subsequent {!check} calls (each independently); an exhausted
    call answers [Unknown]. See [Sat.set_limits]. *)

val clear_limits : t -> unit

val check_formulas :
  ?limits:Sat.limits ->
  Bv.formula list ->
  [ `Sat of Bv.env | `Unsat | `Unknown of Sat.reason ]
(** One-shot convenience: satisfiability of a conjunction in a fresh
    solver. [`Sat env] carries the model. Counterexample-guided loops
    should prefer a persistent [t]. *)

val sat_stats : t -> Sat.stats
(** Statistics of the underlying CDCL solver. *)

val stats : t -> string
(** Human-readable solver statistics. *)
