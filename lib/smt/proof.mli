(** The proof/certificate plane: DRAT proof logging for the SAT core
    and per-verdict certificates over append-only spools.

    When the plane is enabled (CLI [--proof PREFIX]), every solver
    instance gets a {e spool}: a pair of append-only streams, one for
    the problem clauses the solver was given (DIMACS clause lines, no
    header) and one for the clauses it learned (DRAT: additions and
    [d]-prefixed deletions). Streams buffer in memory and touch the
    filesystem only when a buffer overflows or a certificate is issued,
    so the many short-lived scratch solvers (CNF-recipe recorders,
    probe contexts) never create files.

    A certificate is issued at each [Unsat] verdict: the spool is
    flushed, the verdict's unsat core is appended to the DRAT stream as
    a clause (the negation of the failed assumptions — itself a RUP
    consequence of everything before it, so later certificates over the
    same spool remain checkable), and one JSON line goes to
    [PREFIX.idx] recording byte offsets into both streams plus the core
    and its human-readable constraint names. A checker reconstructs the
    verdict's DIMACS/DRAT pair as: the CNF prefix plus one unit clause
    per core assumption; the DRAT prefix plus the empty clause.

    Cooperating solvers on the same CNF (portfolio members exchanging
    learnt clauses) share one spool: the log is totally ordered under
    the spool lock and every clause is logged by its learner before it
    is published, so an importer's later learnts always follow their
    antecedents in the log — reverse unit propagation is monotone in
    the clause set, which also makes import itself log-free. Deletions
    are suppressed on shared spools (a clause deleted by one member may
    still be live in another). *)

type spool

val enable : prefix:string -> unit
(** Turn the plane on. Spool files are created as [PREFIX.s<id>.cnf] /
    [PREFIX.s<id>.drat] (lazily) and the index at [PREFIX.idx]
    (eagerly, truncating any stale one). Re-enabling with a new prefix
    finalizes the old plane first. *)

val disable : unit -> unit
(** Flush and close every materialized spool and the index; buffered
    data of spools that never certified is dropped (their files were
    never created). Idempotent. *)

val enabled : unit -> bool

val active_prefix : unit -> string option

val create_spool : ?shared:bool -> unit -> spool option
(** A fresh spool under the active plane, [None] while disabled.
    [shared] marks a spool appended by multiple cooperating solvers:
    deletion logging is suppressed ({!log_delete} becomes a no-op). *)

val is_shared : spool -> bool

val log_original : spool -> Lit.t list -> unit
(** Append a problem clause (pre-normalization literals: the logged
    formula is what the caller asserted, not the solver's simplified
    form) to the CNF stream. *)

val log_learnt : spool -> Lit.t array -> unit
(** Append a learnt clause to the DRAT stream. Must be called before
    the clause is shared with any other solver on the same spool. *)

val log_learnt_unit : spool -> Lit.t -> unit

val log_delete : spool -> Lit.t array -> unit
(** Append a [d] line. No-op on shared spools. *)

(** What {!certify} recorded, echoed to the telemetry plane. *)
type cert = {
  cert_id : int;
  cert_cnf : string;  (** CNF spool path *)
  cert_cnf_bytes : int;
  cert_drat : string;  (** DRAT spool path *)
  cert_drat_bytes : int;  (** prefix length {e including} the core clause *)
  cert_core_size : int;
}

val certify :
  spool ->
  core:Lit.t list ->
  names:string list ->
  maxvar:int ->
  loop:string ->
  cert option
(** Issue a certificate for an [Unsat] verdict just delivered by a
    solver writing to this spool: append the core clause, flush both
    streams to disk, and record an index line. [core] is the blamed
    subset of the assumption literals (as assumed); [names] its
    human-readable constraint names, positionally aligned. [None] when
    the plane was disabled after the spool was created. *)

val read_index : prefix:string -> (Obs.Json.t list, string) result
(** The certificate index as parsed JSON lines, oldest first. *)
