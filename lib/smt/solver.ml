type t = {
  bb : Bitblast.t;
  mutable retractables : Lit.t list; (* active retractable activation lits *)
}

type answer =
  | Sat
  | Unsat
  | Unknown of Sat.reason

type retractable = Lit.t

let create () = { bb = Bitblast.create (); retractables = [] }
let sat t = Tseitin.solver (Bitblast.context t.bb)
let assert_formula t f = Bitblast.assert_formula t.bb f

let push t = Tseitin.push (Bitblast.context t.bb)
let push_named t name = Tseitin.push_named (Bitblast.context t.bb) name
let pop t = Tseitin.pop (Bitblast.context t.bb)

let assert_retractable t f =
  let ctx = Bitblast.context t.bb in
  let l = Bitblast.formula t.bb f in
  let a = Tseitin.fresh ctx in
  Sat.add_clause_permanent (sat t) [ Lit.neg a; l ];
  t.retractables <- a :: t.retractables;
  a

let assert_named t name f =
  let a = assert_retractable t f in
  Sat.set_name (sat t) (Lit.var a) name;
  a

let retract t a =
  if not (List.memq a t.retractables) then
    invalid_arg "Solver.retract: not an active retractable assertion";
  t.retractables <- List.filter (fun x -> x <> a) t.retractables;
  (* permanently satisfies the guarded clause *)
  Sat.add_clause_permanent (sat t) [ Lit.neg a ]

let check t =
  Obs.with_span "smt.check"
    ~attrs:[ ("retractables", Obs.Int (List.length t.retractables)) ]
    (fun () ->
      match Sat.solve_with_assumptions (sat t) t.retractables with
      | Sat.Sat -> Sat
      | Sat.Unsat -> Unsat
      | Sat.Unknown reason -> Unknown reason)

let unsat_core t = Sat.core_names (sat t)
let unsat_core_lits t = Sat.unsat_core (sat t)

let value t name = Option.value (Bitblast.value_of t.bb name) ~default:0

let bool_value t name =
  Option.value (Bitblast.bool_value_of t.bb name) ~default:false

let model_env t = Bitblast.model_env t.bb

let set_limits t l = Sat.set_limits (sat t) l
let clear_limits t = Sat.clear_limits (sat t)

let check_formulas ?limits fs =
  let t = create () in
  Option.iter (set_limits t) limits;
  List.iter (assert_formula t) fs;
  match check t with
  | Sat -> `Sat (model_env t)
  | Unsat -> `Unsat
  | Unknown reason -> `Unknown reason

let sat_stats t = Sat.stats (sat t)

let stats t =
  let st = sat_stats t in
  Printf.sprintf
    "vars=%d clauses=%d learnts=%d conflicts=%d restarts=%d reductions=%d"
    st.Sat.vars st.Sat.clauses st.Sat.learnts st.Sat.conflicts st.Sat.restarts
    st.Sat.db_reductions
