(** Bridge between loop-level budgets and per-call solver limits.

    A loop meters its whole run with a [Budget.meter]; each solver call
    it makes is bounded by what is left in the meter at that moment
    (conflict pool remainder + the absolute deadline). The loop charges
    the call's conflict delta back into the meter afterwards. *)

val limits_of_meter : Budget.meter -> Sat.limits
(** Per-call limits from the meter's remaining conflict pool, its
    deadline, and the budget's cancellation hook (installed as the
    limits' [stop] callback, so a cancelled job's in-flight solver call
    abandons within a poll interval); other counters unlimited. *)

val reason_of_sat : Sat.reason -> Budget.reason
(** Map a solver's abandonment reason onto the loop-level vocabulary:
    conflict-budget exhaustion, deadline, or (for interrupts and
    injected faults) [Budget.Solver]. *)
