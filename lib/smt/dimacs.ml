type problem = {
  nvars : int;
  clauses : Lit.t list list;
}

let parse text =
  let tokens_of line = String.split_on_char ' ' line |> List.filter (( <> ) "") in
  let lines = String.split_on_char '\n' text in
  let nvars = ref (-1) in
  let nclauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> failwith (Printf.sprintf "Dimacs.parse: bad token %S" tok)
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some i ->
      if !nvars < 0 then failwith "Dimacs.parse: literal before header";
      if abs i > !nvars then
        failwith (Printf.sprintf "Dimacs.parse: literal %d out of range" i);
      current := Lit.of_int i :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match tokens_of line with
        | [ "p"; "cnf"; nv; nc ] -> (
          match (int_of_string_opt nv, int_of_string_opt nc) with
          | Some nv, Some nc ->
            nvars := nv;
            nclauses := nc
          | _ -> failwith "Dimacs.parse: bad header")
        | _ -> failwith "Dimacs.parse: bad header"
      end
      else List.iter handle_token (tokens_of line))
    lines;
  if !nvars < 0 then failwith "Dimacs.parse: missing header";
  if !current <> [] then failwith "Dimacs.parse: unterminated clause";
  let clauses = List.rev !clauses in
  if !nclauses >= 0 && List.length clauses <> !nclauses then
    failwith
      (Printf.sprintf "Dimacs.parse: header declares %d clauses, found %d"
         !nclauses (List.length clauses));
  { nvars = !nvars; clauses }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let print fmt p =
  Format.fprintf fmt "p cnf %d %d@." p.nvars (List.length p.clauses);
  List.iter
    (fun clause ->
      List.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_int l)) clause;
      Format.fprintf fmt "0@.")
    p.clauses

let to_string p = Format.asprintf "%a" print p

let write_file path p =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  print fmt p;
  Format.pp_print_flush fmt ();
  close_out oc

(* The self-contained proof obligation behind an unsat-core verdict:
   the formula strengthened with one unit clause per failed assumption.
   Unsatisfiable exactly when the core is genuine, so the artifact can
   be re-checked by any DIMACS solver with no context. *)
let with_core p core =
  { p with clauses = p.clauses @ List.map (fun l -> [ l ]) core }

let solve p =
  let s = Sat.create () in
  for _ = 1 to p.nvars do
    ignore (Sat.new_var s)
  done;
  List.iter (Sat.add_clause s) p.clauses;
  (* no limits are ever set here, so Unknown can only come from fault
     injection; this two-valued convenience retries through it *)
  let rec go retries =
    match Sat.solve s with
    | Sat.Unsat -> Dpll.Unsat
    | Sat.Sat -> Dpll.Sat (Array.init p.nvars (Sat.value s))
    | Sat.Unknown _ when retries > 0 -> go (retries - 1)
    | Sat.Unknown reason ->
      failwith ("Dimacs.solve: no verdict (" ^ Sat.reason_to_string reason ^ ")")
  in
  go 3
