let m_term_hits = Obs.Metrics.counter "bitblast.term_cache_hits"
let m_term_misses = Obs.Metrics.counter "bitblast.term_cache_misses"
let m_formula_hits = Obs.Metrics.counter "bitblast.formula_cache_hits"
let m_formula_misses = Obs.Metrics.counter "bitblast.formula_cache_misses"

(* cross-context recipe cache traffic (see [Cnfcache]): a hit replays a
   previously recorded operator encoding instead of re-encoding it *)
let m_shared_hits = Obs.Metrics.counter "bitblast.shared_hits"
let m_shared_misses = Obs.Metrics.counter "bitblast.shared_misses"

type t = {
  ctx : Tseitin.t;
  tmemo : (Bv.term, Lit.t array) Hashtbl.t;
  fmemo : (Bv.formula, Lit.t) Hashtbl.t;
  vars : (string, Lit.t array) Hashtbl.t;
  bvars : (string, Lit.t) Hashtbl.t;
}

let create () =
  {
    ctx = Tseitin.create ();
    tmemo = Hashtbl.create 64;
    fmemo = Hashtbl.create 64;
    vars = Hashtbl.create 16;
    bvars = Hashtbl.create 16;
  }

let context t = t.ctx

(* a blaster over an existing context, for running the encoders inside
   [Cnfcache.record]'s scratch context *)
let scratch ctx =
  {
    ctx;
    tmemo = Hashtbl.create 4;
    fmemo = Hashtbl.create 4;
    vars = Hashtbl.create 4;
    bvars = Hashtbl.create 4;
  }

let var_wires t ~width name =
  match Hashtbl.find_opt t.vars name with
  | Some bits ->
    if Array.length bits <> width then
      invalid_arg
        (Printf.sprintf "Bitblast: variable %s used at widths %d and %d" name
           (Array.length bits) width);
    bits
  | None ->
    let bits = Array.init width (fun _ -> Tseitin.fresh t.ctx) in
    Hashtbl.add t.vars name bits;
    bits

let bool_var t name =
  match Hashtbl.find_opt t.bvars name with
  | Some l -> l
  | None ->
    let l = Tseitin.fresh t.ctx in
    Hashtbl.add t.bvars name l;
    l

let const_bits t ~width v =
  Array.init width (fun i -> Tseitin.of_bool t.ctx (v land (1 lsl i) <> 0))

(* ripple-carry addition; returns (sum bits, carry out) *)
let adder t a b cin =
  let w = Array.length a in
  let sum = Array.make w cin in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = Tseitin.full_adder t.ctx a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

let negate t a =
  let w = Array.length a in
  let nota = Array.map Lit.neg a in
  let zero = const_bits t ~width:w 0 in
  fst (adder t nota zero (Tseitin.true_ t.ctx))

(* shift-and-add multiplier over [w_out] output bits; inputs are [w_in]
   wide. Used both for ordinary (truncating, w_out = w_in) multiplication
   and for the exact double-width product in the division encoding. *)
let multiplier t a b w_out =
  let w_in = Array.length a in
  let ff = Tseitin.false_ t.ctx in
  let acc = ref (Array.make w_out ff) in
  for i = 0 to min (w_in - 1) (w_out - 1) do
    (* partial product: (b << i) masked by a.(i), over w_out bits *)
    let partial =
      Array.init w_out (fun j ->
          if j < i || j - i >= w_in then ff
          else Tseitin.and2 t.ctx a.(i) b.(j - i))
    in
    acc := fst (adder t !acc partial ff)
  done;
  !acc

let mux_bits t c a b = Array.map2 (fun x y -> Tseitin.mux t.ctx c x y) a b

(* unsigned a < b, folding from LSB to MSB *)
let ult_bits t a b =
  let lt = ref (Tseitin.false_ t.ctx) in
  for i = 0 to Array.length a - 1 do
    let bit_lt = Tseitin.and2 t.ctx (Lit.neg a.(i)) b.(i) in
    let bit_eq = Tseitin.iff2 t.ctx a.(i) b.(i) in
    lt := Tseitin.or2 t.ctx bit_lt (Tseitin.and2 t.ctx bit_eq !lt)
  done;
  !lt

let eq_bits t a b =
  let acc = ref (Tseitin.true_ t.ctx) in
  for i = 0 to Array.length a - 1 do
    acc := Tseitin.and2 t.ctx !acc (Tseitin.iff2 t.ctx a.(i) b.(i))
  done;
  !acc

(* flip sign bits to reduce signed comparison to unsigned *)
let flip_msb a =
  let w = Array.length a in
  Array.mapi (fun i l -> if i = w - 1 then Lit.neg l else l) a

let stage_bits width =
  let rec go k = if 1 lsl k >= width then k else go (k + 1) in
  go 0

(* barrel shifter; [fill] supplies shifted-in bits, [dir] is the shift
   direction for one stage *)
let barrel t a amount ~fill ~shift_one =
  let w = Array.length a in
  let k = stage_bits w in
  let res = ref a in
  for i = 0 to k - 1 do
    let shifted = shift_one !res (1 lsl i) in
    res := mux_bits t amount.(i) shifted !res
  done;
  (* amount >= 2^k (hence >= w): result is all fill *)
  let high = ref (Tseitin.false_ t.ctx) in
  for i = k to Array.length amount - 1 do
    high := Tseitin.or2 t.ctx !high amount.(i)
  done;
  mux_bits t !high (Array.map (fun _ -> fill) a) !res

let shl_bits t a amount =
  let ff = Tseitin.false_ t.ctx in
  let shift_one bits n =
    Array.init (Array.length bits) (fun j -> if j < n then ff else bits.(j - n))
  in
  barrel t a amount ~fill:ff ~shift_one

let lshr_bits t a amount =
  let w = Array.length a in
  let ff = Tseitin.false_ t.ctx in
  let shift_one bits n =
    Array.init w (fun j -> if j + n >= w then ff else bits.(j + n))
  in
  barrel t a amount ~fill:ff ~shift_one

let ashr_bits t a amount =
  let w = Array.length a in
  let sign = a.(w - 1) in
  let shift_one bits n =
    Array.init w (fun j -> if j + n >= w then sign else bits.(j + n))
  in
  barrel t a amount ~fill:sign ~shift_one

let rec term t (e : Bv.term) : Lit.t array =
  match Hashtbl.find_opt t.tmemo e with
  | Some bits ->
    Obs.Metrics.incr m_term_hits;
    bits
  | None ->
    Obs.Metrics.incr m_term_misses;
    let bits = term_uncached t e in
    Hashtbl.add t.tmemo e bits;
    bits

and term_uncached t (e : Bv.term) =
  let w = Bv.width e in
  match e with
  | Bv.Const { width; value } -> const_bits t ~width value
  | Bv.Var { width; name } -> var_wires t ~width name
  | Bv.Unop (Bv.Bnot, a) -> Array.map Lit.neg (term t a)
  | Bv.Unop (Bv.Bneg, a) -> negate t (term t a)
  | Bv.Binop (op, a, b) -> binop t op (term t a) (term t b) w
  | Bv.Ite (c, a, b) ->
    let cl = formula t c in
    mux_bits t cl (term t a) (term t b)

and binop t op a b w =
  let ff = Tseitin.false_ t.ctx in
  match op with
  | Bv.Band -> Array.map2 (Tseitin.and2 t.ctx) a b
  | Bv.Bor -> Array.map2 (Tseitin.or2 t.ctx) a b
  | Bv.Bxor -> Array.map2 (Tseitin.xor2 t.ctx) a b
  | Bv.Badd -> fst (adder t a b ff)
  | Bv.Bsub -> fst (adder t a (Array.map Lit.neg b) (Tseitin.true_ t.ctx))
  | Bv.Bmul ->
    (shared t ~tag:"mul" ~w a b ~build:(fun s a b ->
         [| multiplier s a b (Array.length a) |]))
      .(0)
  | Bv.Budiv -> (shared_div t ~w a b).(0)
  | Bv.Burem -> (shared_div t ~w a b).(1)
  | Bv.Bshl ->
    (shared t ~tag:"shl" ~w a b ~build:(fun s a b -> [| shl_bits s a b |])).(0)
  | Bv.Blshr ->
    (shared t ~tag:"lshr" ~w a b ~build:(fun s a b -> [| lshr_bits s a b |]))
      .(0)
  | Bv.Bashr ->
    (shared t ~tag:"ashr" ~w a b ~build:(fun s a b -> [| ashr_bits s a b |]))
      .(0)

(* Expensive operators go through the cross-context recipe cache: the
   first encoding of (operator, width) anywhere in the process is
   recorded over fresh canonical inputs, every later one — in this
   context or any other, on any domain — replays the recorded clause
   skeleton (see [Cnfcache]). Bypassed when an input wire is constant:
   replaying the general circuit would forfeit the eager constant
   folding a direct encoding enjoys (e.g. multiplication by a constant
   collapses most partial products). *)
and shared t ~tag ~w a b ~build =
  let symbolic l =
    not (l = Tseitin.true_ t.ctx || l = Tseitin.false_ t.ctx)
  in
  if w < 2 || not (Array.for_all symbolic a && Array.for_all symbolic b)
  then build t a b
  else begin
    let key = Printf.sprintf "%s:%d" tag w in
    let r =
      match Cnfcache.find ~key with
      | Some r ->
        Obs.Metrics.incr m_shared_hits;
        r
      | None ->
        Obs.Metrics.incr m_shared_misses;
        let r =
          Cnfcache.record ~n_inputs:(2 * w) (fun ctx inputs ->
              build (scratch ctx) (Array.sub inputs 0 w)
                (Array.sub inputs w w))
        in
        Cnfcache.install ~key r
    in
    Cnfcache.replay r t.ctx (Array.append a b)
  end

(* one recipe covers both quotient and remainder, like [divider] *)
and shared_div t ~w a b =
  shared t ~tag:"div" ~w a b ~build:(fun s a b ->
      let q, r = divider s a b in
      [| q; r |])

(* Algebraic division: introduce fresh q, r with
     b = 0  ->  q = all-ones /\ r = a
     b <> 0 ->  q*b + r = a (exactly, via a 2w-bit product) /\ r < b.
   q and r are functionally determined, so asserting these definitional
   constraints at the top level is sound even under negation. *)
and divider t a b =
  let w = Array.length a in
  let ctx = t.ctx in
  let q = Array.init w (fun _ -> Tseitin.fresh ctx) in
  let r = Array.init w (fun _ -> Tseitin.fresh ctx) in
  let b_zero = eq_bits t b (const_bits t ~width:w 0) in
  (* zero-divisor case *)
  let q_ones = eq_bits t q (const_bits t ~width:w ((1 lsl w) - 1)) in
  let r_eq_a = eq_bits t r a in
  let zero_case = Tseitin.and2 ctx q_ones r_eq_a in
  (* nonzero case: exact 2w-bit product *)
  let prod = multiplier t q b (2 * w) in
  let r_ext =
    Array.init (2 * w) (fun i -> if i < w then r.(i) else Tseitin.false_ ctx)
  in
  let sum, carry = adder t prod r_ext (Tseitin.false_ ctx) in
  let low_eq =
    eq_bits t (Array.sub sum 0 w) a
  in
  let high_zero =
    let acc = ref (Tseitin.true_ ctx) in
    for i = w to (2 * w) - 1 do
      acc := Tseitin.and2 ctx !acc (Lit.neg sum.(i))
    done;
    Tseitin.and2 ctx !acc (Lit.neg carry)
  in
  let r_lt_b = ult_bits t r b in
  let nz_case =
    Tseitin.and_list ctx [ low_eq; high_zero; r_lt_b ]
  in
  (* permanent: the q/r wires are memoized with the term, so their
     definition must survive any scope pop *)
  Tseitin.assert_permanent ctx (Tseitin.mux ctx b_zero zero_case nz_case);
  (q, r)

and formula t (f : Bv.formula) : Lit.t =
  match Hashtbl.find_opt t.fmemo f with
  | Some l ->
    Obs.Metrics.incr m_formula_hits;
    l
  | None ->
    Obs.Metrics.incr m_formula_misses;
    let l = formula_uncached t f in
    Hashtbl.add t.fmemo f l;
    l

and formula_uncached t (f : Bv.formula) =
  let ctx = t.ctx in
  match f with
  | Bv.Btrue -> Tseitin.true_ ctx
  | Bv.Bfalse -> Tseitin.false_ ctx
  | Bv.Pvar name -> bool_var t name
  | Bv.Eq (a, b) -> eq_bits t (term t a) (term t b)
  | Bv.Ult (a, b) -> ult_bits t (term t a) (term t b)
  | Bv.Ule (a, b) -> Lit.neg (ult_bits t (term t b) (term t a))
  | Bv.Slt (a, b) -> ult_bits t (flip_msb (term t a)) (flip_msb (term t b))
  | Bv.Sle (a, b) ->
    Lit.neg (ult_bits t (flip_msb (term t b)) (flip_msb (term t a)))
  | Bv.Fnot g -> Lit.neg (formula t g)
  | Bv.Fand (a, b) -> Tseitin.and2 ctx (formula t a) (formula t b)
  | Bv.For (a, b) -> Tseitin.or2 ctx (formula t a) (formula t b)
  | Bv.Fxor (a, b) -> Tseitin.xor2 ctx (formula t a) (formula t b)

let assert_formula t f = Tseitin.assert_lit t.ctx (formula t f)

let value_of t name =
  match Hashtbl.find_opt t.vars name with
  | None -> None
  | Some bits ->
    let v = ref 0 in
    Array.iteri
      (fun i l -> if Tseitin.lit_of_model t.ctx l then v := !v lor (1 lsl i))
      bits;
    Some !v

let bool_value_of t name =
  Option.map (Tseitin.lit_of_model t.ctx) (Hashtbl.find_opt t.bvars name)

let model_env t =
  {
    Bv.bv = (fun name -> Option.value (value_of t name) ~default:0);
    Bv.bool = (fun name -> Option.value (bool_value_of t name) ~default:false);
  }

let check ?(limits = Sat.no_limits) ?(assumptions = []) t =
  let s = Tseitin.solver t.ctx in
  Sat.set_limits s limits;
  Sat.solve_with_assumptions s assumptions
