type config = {
  seed : int;
  default_phase : bool;
  restart_base : int;
}

let vanilla = { seed = 0; default_phase = false; restart_base = 100 }

(* Config 0 is always the vanilla solver, so a 1-wide portfolio (and the
   no-pool path) is bit-for-bit the plain [Sat] run. The rest rotate
   polarity, jitter the branching order with distinct seeds, and stretch
   or shrink the Luby schedule. *)
let default_configs n =
  List.init n (fun i ->
      if i = 0 then vanilla
      else
        {
          seed = 0x5eed + (7919 * i);
          default_phase = i land 1 = 1;
          restart_base = (match i mod 3 with 0 -> 100 | 1 -> 50 | _ -> 200);
        })

type outcome = {
  result : Sat.result;
  model : bool array option;
  winner : int;
  raced : int;
  retried : bool;
}

let m_races = Obs.Metrics.counter "portfolio.races"
let m_cancelled = Obs.Metrics.counter "portfolio.cancelled"
let m_unknowns = Obs.Metrics.counter "portfolio.unknowns"
let m_retries = Obs.Metrics.counter "portfolio.retries"
let m_sequential = Obs.Metrics.counter "portfolio.sequential"
let m_exported = Obs.Metrics.counter "portfolio.clauses_exported"
let m_imported = Obs.Metrics.counter "portfolio.clauses_imported"

(* Export policy: only glue-ish clauses travel. Low-LBD clauses are the
   ones CDCL itself considers worth keeping, and a length cap bounds
   both copy cost and the propagation overhead the importer inherits. *)
let share_max_lbd = 4
let share_max_len = 32
let share_capacity = 256

(* Sharing hooks for member [i] of a race over [ex]: filter on export,
   adopt everything on import. Members solve the same CNF with the same
   variable numbering, so clauses transfer verbatim. *)
let share_hooks ex i =
  {
    Sat.export =
      (fun ~lbd lits ->
        if lbd <= share_max_lbd && Array.length lits <= share_max_len then begin
          Exchange.publish ex ~worker:i ~lbd lits;
          Obs.Metrics.incr m_exported
        end);
    Sat.import =
      (fun () ->
        let cs = Exchange.drain ex ~worker:i in
        (match cs with
        | [] -> ()
        | cs -> Obs.Metrics.add m_imported (List.length cs));
        cs);
  }

(* Members attach to one shared proof spool instead of creating their
   own: the race solves a single CNF (logged once, below), and the
   spool's lock totally orders everyone's learnts, with each clause
   logged by its learner before [Exchange.publish] can hand it to
   anyone else — so every import's antecedent precedes it in the log
   and reverse unit propagation goes through without the importer
   logging anything. *)
let mk_solver ?(limits = Sat.no_limits) ?proof (p : Dimacs.problem) config =
  let s =
    Sat.create ~seed:config.seed ~default_phase:config.default_phase
      ~restart_base:config.restart_base ~proof:false ()
  in
  Sat.set_proof s proof;
  Sat.set_limits s limits;
  for _ = 1 to p.Dimacs.nvars do
    ignore (Sat.new_var s : int)
  done;
  List.iter (Sat.add_clause s) p.Dimacs.clauses;
  s

let run_sequential ?limits ?proof p config ~winner ~raced ~retried =
  Obs.Metrics.incr m_sequential;
  let s = mk_solver ?limits ?proof p config in
  let result = Sat.solve s in
  let model = if result = Sat.Sat then Some (Sat.model s) else None in
  { result; model; winner; raced; retried }

let solve ?pool ?configs ?limits ?(share = true) (p : Dimacs.problem) =
  let configs =
    match configs with
    | Some [] -> invalid_arg "Portfolio.solve: empty config list"
    | Some cs -> cs
    | None ->
      default_configs (match pool with Some pl -> Par.Pool.jobs pl | None -> 1)
  in
  let proof =
    match Proof.create_spool ~shared:true () with
    | None -> None
    | Some sp ->
      List.iter (Proof.log_original sp) p.Dimacs.clauses;
      Some sp
  in
  match (pool, configs) with
  | None, c0 :: _ | Some _, [ c0 ] ->
    run_sequential ?limits ?proof p c0 ~winner:0 ~raced:1 ~retried:false
  | Some pool, configs ->
    Obs.Metrics.incr m_races;
    let ex =
      if share then
        Some
          (Exchange.create
             ~workers:(List.length configs)
             ~capacity:share_capacity)
      else None
    in
    let thunks =
      List.mapi
        (fun i config token ->
          let s = mk_solver ?limits ?proof p config in
          Sat.set_terminate s (Some (fun () -> Par.Cancel.is_set token));
          Option.iter (fun ex -> Sat.set_share s (Some (share_hooks ex i))) ex;
          match Sat.solve s with
          | Sat.Unknown _ ->
            (* no verdict: a cancelled loser, or a member that ran out
               of budget / hit an injected fault — not a winner either
               way *)
            Obs.Metrics.incr
              (if Par.Cancel.is_set token then m_cancelled else m_unknowns);
            None
          | result ->
            let model =
              if result = Sat.Sat then Some (Sat.model s) else None
            in
            Some (i, result, model))
        configs
    in
    (match Par.first_some pool thunks with
    | Some (winner, result, model) ->
      { result; model; winner; raced = List.length configs; retried = false }
    | None ->
      (* every member stopped without a verdict: retry once on the
         vanilla configuration before conceding Unknown *)
      Obs.Metrics.incr m_retries;
      run_sequential ?limits ?proof p (List.hd configs) ~winner:0
        ~raced:(List.length configs) ~retried:true)
  | None, [] -> assert false
