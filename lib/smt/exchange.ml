(* Bounded lock-free learnt-clause exchange between portfolio workers.

   Layout: one single-writer ring ("outbox") per worker plus one private
   read-cursor row per (reader, writer) pair. A worker publishes into
   its own outbox only, so the write side needs no synchronisation
   beyond the atomic publication order (slot first, then head); a
   reader walks every other worker's outbox from its private cursor to
   the outbox head, so the read side takes no locks and never waits —
   both operations are wait-free.

   Each slot stores its absolute sequence number alongside the payload
   in one boxed value, so a reader can tell a slot that still holds the
   clause it expects (stored seq = wanted seq) from one the writer has
   already lapped (stored seq > wanted seq). Overflow therefore drops
   the oldest unread clauses per reader and publication never blocks —
   a slow importer costs itself clauses, not the exporter time. *)

type slot = (int * int * Lit.t array) option Atomic.t
(* (sequence, lbd, literals); None = never written *)

type outbox = {
  slots : slot array;
  head : int Atomic.t; (* next sequence number this writer will use *)
}

type t = {
  workers : int;
  capacity : int;
  boxes : outbox array;
  cursors : int array array;
      (* [cursors.(r).(w)]: next sequence reader [r] wants from writer
         [w]'s outbox. Row [r] is touched only by worker [r]. *)
  lost : int Atomic.t;
      (* clauses some reader wanted but the writer had already lapped;
         each loss was silent by design, this makes the total visible *)
}

let m_dropped = Obs.Metrics.counter "exchange.dropped"

let create ~workers ~capacity =
  if workers < 1 then invalid_arg "Exchange.create: workers must be >= 1";
  if capacity < 1 then invalid_arg "Exchange.create: capacity must be >= 1";
  {
    workers;
    capacity;
    boxes =
      Array.init workers (fun _ ->
          {
            slots = Array.init capacity (fun _ -> Atomic.make None);
            head = Atomic.make 0;
          });
    cursors = Array.make_matrix workers workers 0;
    lost = Atomic.make 0;
  }

let workers t = t.workers
let capacity t = t.capacity
let dropped t = Atomic.get t.lost

let publish t ~worker ~lbd lits =
  let box = t.boxes.(worker) in
  let seq = Atomic.get box.head in
  Atomic.set box.slots.(seq mod t.capacity) (Some (seq, lbd, Array.copy lits));
  (* heads only move forward, and only their owner moves them; the
     store above must be visible before the new head is (sequential
     consistency of both atomics gives that) *)
  Atomic.set box.head (seq + 1)

let published t =
  Array.fold_left (fun acc box -> acc + Atomic.get box.head) 0 t.boxes

(* Everything worker [worker] has not yet seen from the other outboxes,
   oldest first per writer; its own outbox is skipped (a solver never
   re-imports what it exported). Advances the cursors. *)
let drain t ~worker =
  let out = ref [] in
  let drops = ref 0 in
  for w = t.workers - 1 downto 0 do
    if w <> worker then begin
      let box = t.boxes.(w) in
      let head = Atomic.get box.head in
      let wanted = t.cursors.(worker).(w) in
      let cur = max wanted (head - t.capacity) in
      (* sequences below [cur] were overwritten before this reader got
         to them: already-lapped drops *)
      drops := !drops + (cur - wanted);
      for seq = head - 1 downto cur do
        match Atomic.get box.slots.(seq mod t.capacity) with
        | Some (seq', lbd, lits) when seq' = seq ->
          out := (lbd, lits) :: !out
        | _ ->
          (* lapped between reading [head] and this slot, or the write
             at [seq] is not yet visible: drop, never wait *)
          incr drops
      done;
      t.cursors.(worker).(w) <- head
    end
  done;
  if !drops > 0 then begin
    ignore (Atomic.fetch_and_add t.lost !drops : int);
    Obs.Metrics.add m_dropped !drops
  end;
  !out
