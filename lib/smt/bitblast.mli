(** Bit-blasting of QF_BV into CNF.

    Every {!Bv.term} is lowered to an array of wires (LSB first) over a
    {!Tseitin} context; formulas lower to a single wire. Lowering is
    memoized so shared sub-DAGs are encoded once. This is the standard
    eager QF_BV decision procedure (as in STP or Boolector): adders are
    ripple-carry, multipliers shift-and-add, shifts barrel shifters, and
    division is defined algebraically with auxiliary quotient/remainder
    wires. *)

type t

val create : unit -> t
val context : t -> Tseitin.t

val term : t -> Bv.term -> Lit.t array
(** Lower a term to its wires, LSB first. *)

val formula : t -> Bv.formula -> Lit.t
val assert_formula : t -> Bv.formula -> unit

val var_wires : t -> width:int -> string -> Lit.t array
(** The wires of a named bit-vector variable (created on first use). *)

val value_of : t -> string -> int option
(** Unsigned value of a named variable in the current SAT model; [None]
    if the variable was never mentioned. *)

val bool_value_of : t -> string -> bool option
val model_env : t -> Bv.env
(** Environment reading back the last model (unknown names read as 0). *)

val check : ?limits:Sat.limits -> ?assumptions:Lit.t list -> t -> Sat.result
(** Decide everything asserted so far on the underlying solver,
    optionally under per-call {!Sat.limits} (installed before the call
    and left in place) and assumption literals. [Unknown] means the
    limits ran out or the call was interrupted; the context stays
    usable. *)
