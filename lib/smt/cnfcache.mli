(** Cross-context CNF recipe cache.

    Bit-blasting the expensive bit-vector operators (multipliers,
    dividers, barrel shifters) produces the {e same} clause skeleton
    every time for a given operator and width — only the variable
    numbers differ. A {!recipe} captures that skeleton once, in a
    throwaway context with canonical numbering, and {!replay} splices
    it into any other context by substituting the actual input wires
    and a fresh block of auxiliary variables. The global table is
    shared across every solver, session and domain in the process, so
    parallel BMC workers and portfolio members each pay the encoding
    cost of an operator once per process instead of once per context.

    Soundness: a recipe's clauses are the (pre-normalization) output of
    the real encoder over unconstrained fresh inputs — the fully
    general circuit, with no cross-input constant folding — so the
    substituted instance is definitionally equivalent to re-running the
    encoder. Replayed clauses are added permanently (gate definitions
    must survive scope pops) and re-normalized by the receiving solver.
    Callers should bypass the cache when an input wire is constant:
    replaying the general circuit is correct but forfeits the eager
    constant folding a direct encoding would enjoy.

    Determinism: recording is deterministic (fresh scratch context,
    canonical numbering), and when several domains race to record one
    key the first install wins — but every candidate is identical, so
    the outcome never depends on the interleaving.

    Telemetry note: a recipe's gates count toward [tseitin.gates] once,
    at record time; replays add clauses directly to the solver. The
    caller-facing hit/miss traffic is counted by [Bitblast] under
    [bitblast.shared_hits] / [bitblast.shared_misses]. *)

type recipe

val record :
  n_inputs:int -> (Tseitin.t -> Lit.t array -> Lit.t array array) -> recipe
(** [record ~n_inputs build] runs [build] in a fresh scratch context on
    [n_inputs] fresh input wires and captures every permanent clause it
    emits (via the context's tap) together with its output wires.
    [build] must be a pure encoder: everything it does besides
    allocating fresh wires and emitting permanent clauses is lost. *)

val replay : recipe -> Tseitin.t -> Lit.t array -> Lit.t array array
(** [replay r ctx inputs] splices the recipe into [ctx]: allocates
    fresh auxiliary variables, maps the canonical inputs to [inputs]
    (sign-composed), adds every clause permanently, and returns the
    mapped output wires. Raises [Invalid_argument] when [inputs]
    doesn't match the recipe's arity. *)

val find : key:string -> recipe option
(** Look the key up in the process-global sharded table. *)

val install : key:string -> recipe -> recipe
(** Publish a recipe under the key and return the table's winner: the
    argument, or a recipe another domain installed first. *)

val clear : unit -> unit
(** Empty the global table (tests and benchmarks isolating runs). *)

val cached_recipes : unit -> int
(** Number of recipes currently in the global table. *)

val n_inputs : recipe -> int

val n_aux : recipe -> int
(** Auxiliary variables a replay will allocate. *)

val n_clauses : recipe -> int
