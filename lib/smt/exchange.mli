(** Bounded, lock-free learnt-clause exchange for cooperating solvers.

    One single-writer ring buffer ("outbox") per worker plus a private
    read cursor per (reader, writer) pair: {!publish} writes only the
    calling worker's own ring and {!drain} only reads the others, so
    both sides are wait-free. The rings are bounded — when a writer
    laps a slow reader, the reader silently loses the overwritten
    (oldest) clauses; publication never blocks.

    Clauses travel as copies, so neither side can alias the other's
    arrays. Dropping any subset of the traffic is always sound: shared
    clauses are logical consequences of the common problem, never part
    of it. *)

type t

val create : workers:int -> capacity:int -> t
(** [capacity] is the per-worker ring size (clauses retained per
    outbox). Raises [Invalid_argument] unless both are >= 1. *)

val workers : t -> int
val capacity : t -> int

val publish : t -> worker:int -> lbd:int -> Lit.t array -> unit
(** Append a clause to [worker]'s own outbox (copied), overwriting the
    oldest entry when the ring is full. Wait-free; must only be called
    from the owning worker. *)

val drain : t -> worker:int -> (int * Lit.t array) list
(** All clauses other workers published that [worker] has not yet
    drained, as [(lbd, literals)] pairs, oldest first per writer; the
    worker's own exports are excluded. Advances [worker]'s cursors.
    Wait-free; must only be called from the owning worker. *)

val published : t -> int
(** Total clauses ever published across all outboxes. *)

val dropped : t -> int
(** Total clauses lost to ring overflow across all readers so far: a
    clause a reader wanted but the writer had already lapped counts
    once per reader that missed it. Drops are detected at {!drain}
    time, mirrored into the [exchange.dropped] registry counter, and
    benign for soundness — this exists so a sharing setup that is
    quietly discarding most of its traffic shows up in [--stats]. *)
