module Ivec = Vec.Ivec

type reason =
  | Budget_exhausted
  | Deadline
  | Interrupted

let reason_to_string = function
  | Budget_exhausted -> "budget_exhausted"
  | Deadline -> "deadline"
  | Interrupted -> "interrupted"

type result =
  | Sat
  | Unsat
  | Unknown of reason

type limits = {
  max_conflicts : int option;
  max_propagations : int option;
  max_steps : int option;
  deadline : float option; (* absolute, [Unix.gettimeofday] scale *)
  stop : (unit -> bool) option; (* cancellation hook, polled with the deadline *)
}

let no_limits =
  { max_conflicts = None; max_propagations = None; max_steps = None;
    deadline = None; stop = None }

type share = {
  export : lbd:int -> Lit.t array -> unit;
  import : unit -> (int * Lit.t array) list;
}

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  solves : int;
  learnts : int;
  learnts_deleted : int;
  db_reductions : int;
  clauses : int;
  vars : int;
  lbd_sum : int;
  lbd_max : int;
  max_assumption_depth : int;
}

(* Fleet-wide counters live in the Obs metrics registry: the bench
   harness compares fresh-solver loops (which discard each solver, and
   with it its per-instance counters) against persistent-solver loops,
   so query/conflict totals must survive solver teardown. Hot-path
   counters are batched into the registry as per-solve deltas. *)
let m_solves = Obs.Metrics.counter "sat.solves"
let m_conflicts = Obs.Metrics.counter "sat.conflicts"
let m_propagations = Obs.Metrics.counter "sat.propagations"
let m_decisions = Obs.Metrics.counter "sat.decisions"
let m_restarts = Obs.Metrics.counter "sat.restarts"
let m_clauses_added = Obs.Metrics.counter "sat.clauses_added"
let m_learnts_deleted = Obs.Metrics.counter "sat.learnts_deleted"
let m_db_reductions = Obs.Metrics.counter "sat.db_reductions"
let m_learnt_db = Obs.Metrics.gauge "sat.learnt_db_size"
let m_lbd = Obs.Metrics.histogram "sat.lbd"
let m_assumption_depth = Obs.Metrics.histogram "sat.assumption_depth"

type global_stats = {
  g_solves : int;
  g_conflicts : int;
  g_propagations : int;
}

(* Thin shim over the registry, kept for the bench harness; the registry
   is the single source of truth, so the two views cannot drift. *)
let global_stats () =
  {
    g_solves = Obs.Metrics.counter_value m_solves;
    g_conflicts = Obs.Metrics.counter_value m_conflicts;
    g_propagations = Obs.Metrics.counter_value m_propagations;
  }

let reset_global_stats () =
  Obs.Metrics.set_counter m_solves 0;
  Obs.Metrics.set_counter m_conflicts 0;
  Obs.Metrics.set_counter m_propagations 0

type t = {
  mutable ok : bool; (* false once an empty clause has been derived *)
  mutable clauses : int array Vec.t;
  mutable clbd : Ivec.t; (* per clause: -1 = problem clause, else LBD *)
  mutable watches : Ivec.t array;
      (* indexed by literal; (clause index, blocking literal) pairs *)
  mutable assign : int array; (* per var: 1 true, 0 false, -1 unassigned *)
  mutable level : int array;
  mutable reason : int array; (* clause index or -1 *)
  mutable phase : bool array; (* saved polarity *)
  mutable activity : float array;
  mutable heap_pos : int array; (* position in [heap], -1 if absent *)
  heap : Ivec.t;
  trail : Ivec.t;
  trail_lim : Ivec.t;
  scopes : Ivec.t; (* activation variables of open assumption scopes *)
  out_learnt : Ivec.t; (* conflict-analysis buffer *)
  scratch : Ivec.t; (* pre-minimization copy, for mark clearing *)
  mutable seen : Bytes.t;
  mutable level_mark : int array; (* LBD computation, stamped by mark_gen *)
  mutable mark_gen : int;
  mutable qhead : int;
  mutable nvars : int;
  mutable var_inc : float;
  mutable saved_model : bool array;
  (* learned-clause database control *)
  mutable n_learnts : int; (* live learned clauses *)
  mutable max_learnts : int; (* 0 = not yet initialized *)
  learnt_limit : int; (* initial cap override from [create], 0 = auto *)
  mutable simp_trail : int; (* root-trail size at the last simplification *)
  (* statistics *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable solves : int;
  mutable learnts_deleted : int;
  mutable db_reductions : int;
  mutable lbd_sum : int;
  mutable lbd_max : int;
  mutable max_assumption_depth : int;
  (* diversification knobs (portfolio solving) *)
  default_phase : bool;
  seed : int;
  restart_base : int;
  (* cooperative cancellation *)
  mutable terminate : (unit -> bool) option;
  mutable poll : int; (* countdown to the next terminate poll *)
  (* learnt-clause sharing (portfolio solving) *)
  mutable share : share option;
  (* per-solve resource limits; the base_* fields snapshot the
     cumulative counters at the start of the current solve, so a limit
     bounds the delta of that one call *)
  mutable limits : limits;
  mutable steps : int; (* cumulative search steps (conflicts+decisions) *)
  mutable base_conflicts : int;
  mutable base_propagations : int;
  mutable base_steps : int;
  (* proof/certificate plane *)
  mutable proof : Proof.spool option;
  names : (int, string) Hashtbl.t; (* var -> constraint name, for cores *)
  mutable last_core : Lit.t list; (* failed assumptions of the last Unsat *)
}

let create ?(learnt_limit = 0) ?(seed = 0) ?(default_phase = false)
    ?(restart_base = 100) ?(proof = true) () =
  if restart_base < 1 then invalid_arg "Sat.create: restart_base must be >= 1";
  {
    ok = true;
    clauses = Vec.create ();
    clbd = Ivec.create ();
    watches = [||];
    assign = [||];
    level = [||];
    reason = [||];
    phase = [||];
    activity = [||];
    heap_pos = [||];
    heap = Ivec.create ();
    trail = Ivec.create ();
    trail_lim = Ivec.create ();
    scopes = Ivec.create ();
    out_learnt = Ivec.create ();
    scratch = Ivec.create ();
    seen = Bytes.create 0;
    level_mark = [||];
    mark_gen = 0;
    qhead = 0;
    nvars = 0;
    var_inc = 1.0;
    saved_model = [||];
    n_learnts = 0;
    max_learnts = 0;
    learnt_limit;
    simp_trail = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    solves = 0;
    learnts_deleted = 0;
    db_reductions = 0;
    lbd_sum = 0;
    lbd_max = 0;
    max_assumption_depth = 0;
    default_phase;
    seed;
    restart_base;
    terminate = None;
    poll = 0;
    share = None;
    limits = no_limits;
    steps = 0;
    base_conflicts = 0;
    base_propagations = 0;
    base_steps = 0;
    proof = (if proof then Proof.create_spool () else None);
    names = Hashtbl.create 7;
    last_core = [];
  }

let num_vars s = s.nvars
let num_clauses s = Vec.size s.clauses
let num_conflicts s = s.conflicts
let num_learnts s = s.n_learnts

let stats s =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    restarts = s.restarts;
    solves = s.solves;
    learnts = s.n_learnts;
    learnts_deleted = s.learnts_deleted;
    db_reductions = s.db_reductions;
    clauses = Vec.size s.clauses;
    vars = s.nvars;
    lbd_sum = s.lbd_sum;
    lbd_max = s.lbd_max;
    max_assumption_depth = s.max_assumption_depth;
  }

(* ----- variable order heap (max-heap on activity) ----- *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    let vi = Ivec.get s.heap i and vp = Ivec.get s.heap p in
    if heap_lt s vi vp then begin
      Ivec.set s.heap i vp;
      Ivec.set s.heap p vi;
      s.heap_pos.(vp) <- i;
      s.heap_pos.(vi) <- p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let n = Ivec.size s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  if l < n then begin
    let c =
      if r < n && heap_lt s (Ivec.get s.heap r) (Ivec.get s.heap l) then r
      else l
    in
    let vi = Ivec.get s.heap i and vc = Ivec.get s.heap c in
    if heap_lt s vc vi then begin
      Ivec.set s.heap i vc;
      Ivec.set s.heap c vi;
      s.heap_pos.(vc) <- i;
      s.heap_pos.(vi) <- c;
      heap_down s c
    end
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Ivec.push s.heap v;
    s.heap_pos.(v) <- Ivec.size s.heap - 1;
    heap_up s (Ivec.size s.heap - 1)
  end

let heap_pop_max s =
  let top = Ivec.get s.heap 0 in
  let lst = Ivec.pop s.heap in
  s.heap_pos.(top) <- -1;
  if Ivec.size s.heap > 0 then begin
    Ivec.set s.heap 0 lst;
    s.heap_pos.(lst) <- 0;
    heap_down s 0
  end;
  top

(* ----- variables ----- *)

let grow_to len arr fill =
  let n = Array.length arr in
  if len <= n then arr
  else begin
    let a = Array.make (max len (max 16 (2 * n))) fill in
    Array.blit arr 0 a 0 n;
    a
  end

(* Deterministic avalanche of (seed, var): the low bits drive the
   initial-activity jitter that perturbs the variable order. *)
let mix seed v =
  let h = ref (seed + (v * 0x9E3779B9)) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x45D9F3B;
  h := !h lxor (!h lsr 16);
  h := !h * 0x45D9F3B;
  h := !h lxor (!h lsr 16);
  !h land 0x3FFFFFFF

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_to s.nvars s.assign (-1);
  s.level <- grow_to s.nvars s.level 0;
  s.reason <- grow_to s.nvars s.reason (-1);
  s.phase <- grow_to s.nvars s.phase false;
  s.activity <- grow_to s.nvars s.activity 0.0;
  s.heap_pos <- grow_to s.nvars s.heap_pos (-1);
  s.level_mark <- grow_to (s.nvars + 1) s.level_mark (-1);
  if Bytes.length s.seen < s.nvars then begin
    let b = Bytes.make (max 16 (2 * s.nvars)) '\000' in
    Bytes.blit s.seen 0 b 0 (Bytes.length s.seen);
    s.seen <- b
  end;
  if Array.length s.watches < 2 * s.nvars then begin
    let w = Array.init (max 32 (4 * s.nvars)) (fun _ -> Ivec.create ()) in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w
  end;
  s.phase.(v) <- s.default_phase;
  (* sub-var_inc jitter: invisible once real bumps arrive, but it breaks
     the insertion-order tie among untouched variables, so different
     seeds start their searches in different corners *)
  if s.seed <> 0 then
    s.activity.(v) <- float_of_int (mix s.seed v) *. 1e-12;
  heap_insert s v;
  v

let lit_value s l =
  let a = s.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = Ivec.size s.trail_lim

let enqueue s p reason =
  let v = Lit.var p in
  assert (s.assign.(v) < 0);
  s.assign.(v) <- (if Lit.sign p then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Ivec.push s.trail p

let new_decision_level s = Ivec.push s.trail_lim (Ivec.size s.trail)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Ivec.get s.trail_lim lvl in
    for i = Ivec.size s.trail - 1 downto bound do
      let p = Ivec.get s.trail i in
      let v = Lit.var p in
      s.phase.(v) <- Lit.sign p;
      s.assign.(v) <- -1;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.qhead <- bound;
    Ivec.shrink s.trail bound;
    Ivec.shrink s.trail_lim lvl
  end

(* ----- activity ----- *)

let var_rescale s =
  for v = 0 to s.nvars - 1 do
    s.activity.(v) <- s.activity.(v) *. 1e-100
  done;
  s.var_inc <- s.var_inc *. 1e-100

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then var_rescale s;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* ----- clauses ----- *)

(* Watch lists hold (clause index, blocking literal) pairs; the blocker is
   some other literal of the clause, checked before the clause itself is
   touched so satisfied clauses cost one array read instead of a cache
   miss on the clause. *)
let attach s ci =
  let c = Vec.get s.clauses ci in
  Ivec.push s.watches.(c.(0)) ci;
  Ivec.push s.watches.(c.(0)) c.(1);
  Ivec.push s.watches.(c.(1)) ci;
  Ivec.push s.watches.(c.(1)) c.(0)

let push_clause s c ~lbd =
  Vec.push s.clauses c;
  Ivec.push s.clbd lbd;
  let ci = Vec.size s.clauses - 1 in
  if lbd >= 0 then s.n_learnts <- s.n_learnts + 1;
  attach s ci;
  ci

(* Normalize a root-level clause: sorted literals, tautologies and
   clauses satisfied at level 0 signalled as [None], false literals
   dropped. One linear pass over the sorted literals: positive and
   negative occurrences of a variable encode as adjacent integers
   (2v, 2v+1), so a tautology shows up as two neighbours with equal
   [Lit.var]; level-0 values fold in the same pass. *)
let normalize_root_clause s lits =
  let lits = List.sort_uniq compare lits in
  let rec scan acc = function
    | [] -> Some (List.rev acc)
    | l :: rest ->
      if match rest with
        | l' :: _ -> Lit.var l' = Lit.var l
        | [] -> false
      then None (* p and ~p: tautology *)
      else (
        match lit_value s l with
        | 1 -> None (* already satisfied at level 0 *)
        | 0 -> scan acc rest (* false at level 0: drop the literal *)
        | _ -> scan (l :: acc) rest)
  in
  scan [] lits

(* [add_clause_permanent] ignores open assumption scopes: the clause is
   part of the problem forever. Tseitin gate definitions go through here
   because encoders cache the wires they return across scope pops. *)
let add_clause_permanent s lits =
  assert (decision_level s = 0);
  if s.ok then begin
    (* log the caller's literals, not the normalized form: the proof's
       CNF must be the asserted formula (root-level strengthening is
       transparent to unit propagation, so a checker derives the same
       consequences either way) *)
    (match s.proof with
    | Some sp -> Proof.log_original sp lits
    | None -> ());
    match normalize_root_clause s lits with
    | None -> ()
    | Some [] -> s.ok <- false
    | Some [ p ] -> enqueue s p (-1)
    | Some lits ->
      Obs.Metrics.incr m_clauses_added;
      ignore (push_clause s (Array.of_list lits) ~lbd:(-1))
  end

(* ----- assumption-literal scopes ----- *)

let num_scopes s = Ivec.size s.scopes

let push s =
  let v = new_var s in
  Ivec.push s.scopes v

let pop s =
  if Ivec.size s.scopes = 0 then invalid_arg "Sat.pop: no open scope";
  cancel_until s 0;
  let v = Ivec.pop s.scopes in
  (* permanently satisfies (and thereby retracts) every clause guarded by
     this scope's activation literal *)
  add_clause_permanent s [ Lit.neg_of v ]

(* Clauses added inside a scope carry the negated activation literal of
   the innermost scope; the literal is assumed true during [solve], so
   the clause is active exactly while the scope is open. *)
let add_clause s lits =
  if Ivec.size s.scopes = 0 then add_clause_permanent s lits
  else add_clause_permanent s (Lit.neg_of (Ivec.last s.scopes) :: lits)

(* ----- propagation ----- *)

let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < Ivec.size s.trail do
    let p = Ivec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let false_lit = Lit.neg p in
    let ws = s.watches.(false_lit) in
    let n = Ivec.size ws in
    let j = ref 0 in
    let i = ref 0 in
    let keep ci blocker =
      Ivec.set ws !j ci;
      Ivec.set ws (!j + 1) blocker;
      j := !j + 2
    in
    while !i < n do
      let ci = Ivec.get ws !i in
      let blocker = Ivec.get ws (!i + 1) in
      i := !i + 2;
      if !confl >= 0 then
        (* conflict already found: keep remaining watches untouched *)
        keep ci blocker
      else if lit_value s blocker = 1 then keep ci blocker
      else begin
        let c = Vec.get s.clauses ci in
        if c.(0) = false_lit then begin
          c.(0) <- c.(1);
          c.(1) <- false_lit
        end;
        let first = c.(0) in
        if lit_value s first = 1 then keep ci first
        else begin
          let len = Array.length c in
          let k = ref 2 in
          while !k < len && lit_value s c.(!k) = 0 do
            incr k
          done;
          if !k < len then begin
            (* found a replacement watch *)
            c.(1) <- c.(!k);
            c.(!k) <- false_lit;
            Ivec.push s.watches.(c.(1)) ci;
            Ivec.push s.watches.(c.(1)) first
          end
          else begin
            keep ci first;
            if lit_value s first = 0 then confl := ci else enqueue s first ci
          end
        end
      end
    done;
    Ivec.shrink ws !j
  done;
  !confl

(* ----- learned-clause database reduction ----- *)

let locked s ci =
  let c = Vec.get s.clauses ci in
  let v = Lit.var c.(0) in
  s.assign.(v) >= 0 && s.reason.(v) = ci

(* Delete the worst half of the learned clauses by LBD (ties broken
   towards longer clauses); glue clauses (LBD <= 2) and clauses currently
   acting as reasons are kept. The database is compacted in place:
   surviving clauses are renumbered, watches rebuilt, reasons remapped. *)
let reduce_db s =
  s.db_reductions <- s.db_reductions + 1;
  Obs.Metrics.incr m_db_reductions;
  let cand = ref [] in
  let ncand = ref 0 in
  for ci = 0 to Vec.size s.clauses - 1 do
    let lbd = Ivec.get s.clbd ci in
    if lbd > 2 && not (locked s ci) then begin
      cand := (lbd, Array.length (Vec.get s.clauses ci), ci) :: !cand;
      incr ncand
    end
  done;
  (* worst first: highest LBD, then longest *)
  let cand = List.sort (fun a b -> compare b a) !cand in
  let ndelete = min !ncand (s.n_learnts / 2) in
  let delete = Bytes.make (Vec.size s.clauses) '\000' in
  List.iteri
    (fun i (_, _, ci) -> if i < ndelete then Bytes.set delete ci '\001')
    cand;
  (* deletion lines keep an offline checker's database (and its unit
     propagation) small; on a shared spool they are suppressed — a
     clause this member discards may still be live in another *)
  (match s.proof with
  | Some sp when not (Proof.is_shared sp) ->
    for ci = 0 to Vec.size s.clauses - 1 do
      if Bytes.get delete ci = '\001' then
        Proof.log_delete sp (Vec.get s.clauses ci)
    done
  | _ -> ());
  let old_clauses = s.clauses and old_clbd = s.clbd in
  let remap = Array.make (Vec.size old_clauses) (-1) in
  let clauses = Vec.create () and clbd = Ivec.create () in
  for ci = 0 to Vec.size old_clauses - 1 do
    if Bytes.get delete ci = '\000' then begin
      remap.(ci) <- Vec.size clauses;
      Vec.push clauses (Vec.get old_clauses ci);
      Ivec.push clbd (Ivec.get old_clbd ci)
    end
  done;
  s.clauses <- clauses;
  s.clbd <- clbd;
  s.n_learnts <- s.n_learnts - ndelete;
  s.learnts_deleted <- s.learnts_deleted + ndelete;
  Obs.Metrics.add m_learnts_deleted ndelete;
  Array.iter Ivec.clear s.watches;
  for ci = 0 to Vec.size s.clauses - 1 do
    attach s ci
  done;
  (* only clauses locked as reasons survive, so the remap is total on the
     reason pointers of assigned variables *)
  for v = 0 to s.nvars - 1 do
    if s.reason.(v) >= 0 then s.reason.(v) <- remap.(s.reason.(v))
  done;
  s.max_learnts <- (s.max_learnts * 11 / 10) + 16

(* ----- level-0 simplification ----- *)

(* Remove clauses satisfied at the root level and strengthen the rest by
   deleting their root-false literals. Retraction (scope pops,
   [Solver.retract]) works by asserting a unit that permanently
   satisfies every clause of the retired scope, so a long-lived
   incremental solver accumulates dead clauses in its watch lists; this
   sweep reclaims them. Must be called at decision level 0 with
   propagation at fixpoint, so no surviving clause is all-false or
   unit. *)
let simplify s =
  (* root-level facts never need their reasons again: conflict analysis
     ignores level-0 literals — and this releases every clause lock *)
  for i = 0 to Ivec.size s.trail - 1 do
    s.reason.(Lit.var (Ivec.get s.trail i)) <- -1
  done;
  let old_clauses = s.clauses and old_clbd = s.clbd in
  let clauses = Vec.create () and clbd = Ivec.create () in
  for ci = 0 to Vec.size old_clauses - 1 do
    let c = Vec.get old_clauses ci in
    let len = Array.length c in
    let sat = ref false in
    let k = ref 0 in
    for j = 0 to len - 1 do
      match lit_value s c.(j) with
      | 1 -> sat := true
      | 0 -> ()
      | _ ->
        c.(!k) <- c.(j);
        incr k
    done;
    if !sat then begin
      if Ivec.get old_clbd ci >= 0 then begin
        s.n_learnts <- s.n_learnts - 1;
        s.learnts_deleted <- s.learnts_deleted + 1;
        Obs.Metrics.incr m_learnts_deleted
      end
    end
    else begin
      let c = if !k = len then c else Array.sub c 0 !k in
      Vec.push clauses c;
      Ivec.push clbd (Ivec.get old_clbd ci)
    end
  done;
  s.clauses <- clauses;
  s.clbd <- clbd;
  Array.iter Ivec.clear s.watches;
  for ci = 0 to Vec.size s.clauses - 1 do
    attach s ci
  done;
  s.simp_trail <- Ivec.size s.trail

(* ----- conflict analysis (first UIP) ----- *)

(* Number of distinct decision levels among [n] literals produced by
   [get]; the literal-block distance of Audemard–Simon. *)
let lbd_of s n get =
  s.mark_gen <- s.mark_gen + 1;
  let gen = s.mark_gen in
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    let lvl = s.level.(Lit.var (get i)) in
    if s.level_mark.(lvl) <> gen then begin
      s.level_mark.(lvl) <- gen;
      incr distinct
    end
  done;
  !distinct

(* Fills [s.out_learnt] with the learnt clause (asserting literal first,
   a literal of the backjump level second) and returns the backjump
   level. Uses the persistent [seen]/[out_learnt]/[scratch] buffers: no
   lists are allocated on this path. *)
let analyze s confl =
  let out = s.out_learnt in
  let seen = s.seen in
  Ivec.clear out;
  Ivec.push out 0 (* slot 0: asserting literal, patched below *);
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (Ivec.size s.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = Vec.get s.clauses !confl in
    let start = if !p < 0 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = Lit.var q in
      if (not (Bytes.unsafe_get seen v = '\001')) && s.level.(v) > 0 then begin
        Bytes.unsafe_set seen v '\001';
        var_bump s v;
        if s.level.(v) >= decision_level s then incr path_c
        else Ivec.push out q
      end
    done;
    (* find the next marked literal on the trail *)
    while Bytes.get seen (Lit.var (Ivec.get s.trail !index)) <> '\001' do
      decr index
    done;
    p := Ivec.get s.trail !index;
    decr index;
    Bytes.set seen (Lit.var !p) '\000';
    decr path_c;
    if !path_c > 0 then confl := s.reason.(Lit.var !p) else continue := false
  done;
  Ivec.set out 0 (Lit.neg !p);
  (* local clause minimization (Sörensson–Biere): a literal is redundant
     when every antecedent in its reason clause is already in the learnt
     clause (still marked seen) or assigned at level 0 *)
  let scratch = s.scratch in
  Ivec.clear scratch;
  for i = 0 to Ivec.size out - 1 do
    Ivec.push scratch (Ivec.get out i)
  done;
  let j = ref 1 in
  for i = 1 to Ivec.size out - 1 do
    let q = Ivec.get out i in
    let r = s.reason.(Lit.var q) in
    let redundant =
      r >= 0
      && Array.for_all
           (fun pl ->
             Lit.var pl = Lit.var q
             || Bytes.get seen (Lit.var pl) = '\001'
             || s.level.(Lit.var pl) = 0)
           (Vec.get s.clauses r)
    in
    if not redundant then begin
      Ivec.set out !j q;
      incr j
    end
  done;
  Ivec.shrink out !j;
  (* clear marks of every literal considered, removed ones included *)
  for i = 1 to Ivec.size scratch - 1 do
    Bytes.set seen (Lit.var (Ivec.get scratch i)) '\000'
  done;
  (* backjump level = max level among the non-asserting literals; that
     literal moves to slot 1 so it is watched after learning *)
  if Ivec.size out = 1 then 0
  else begin
    let best = ref 1 in
    for i = 2 to Ivec.size out - 1 do
      if s.level.(Lit.var (Ivec.get out i)) > s.level.(Lit.var (Ivec.get out !best))
      then best := i
    done;
    let tmp = Ivec.get out 1 in
    Ivec.set out 1 (Ivec.get out !best);
    Ivec.set out !best tmp;
    s.level.(Lit.var (Ivec.get out 1))
  end

(* ----- search ----- *)

exception Found of result
exception Stop of reason

let set_terminate s f =
  s.terminate <- f;
  s.poll <- 0

let set_share s sh = s.share <- sh

(* Hand a freshly learned clause to the share hook. The array is the
   live one about to enter the clause database: the callback must copy
   whatever it decides to keep (Exchange.publish does). *)
let export_learnt s ~lbd c =
  match s.share with
  | None -> ()
  | Some sh -> sh.export ~lbd c

(* Adopt foreign learnt clauses at a restart boundary (decision level
   0). Shared clauses are logical consequences of the common problem,
   so adding any subset preserves the verdict; each is normalized like
   a root-level clause — satisfied or tautological ones are dropped,
   units enqueue at level 0, an empty one proves unsatisfiability. The
   clause keeps its foreign LBD, so database reduction can reclaim it
   like any home-grown learnt. Clauses mentioning unallocated variables
   are rejected outright (a misconfigured exchange must not crash the
   solver). *)
let import_shared s =
  match s.share with
  | None -> ()
  | Some sh ->
    List.iter
      (fun (lbd, lits) ->
        if
          s.ok
          && Array.for_all (fun l -> Lit.var l < s.nvars) lits
        then
          match normalize_root_clause s (Array.to_list lits) with
          | None -> () (* tautology, or already satisfied at level 0 *)
          | Some [] -> s.ok <- false
          | Some [ p ] -> enqueue s p (-1)
          | Some lits ->
            ignore (push_clause s (Array.of_list lits) ~lbd:(max 1 lbd)))
      (sh.import ())

let set_limits s l =
  s.limits <- l;
  s.poll <- 0

let clear_limits s = s.limits <- no_limits
let limits s = s.limits

(* Run once per search step (conflict or decision), before that step
   does any work — so a pre-set terminate flag or an already-exhausted
   budget deterministically beats a verdict the same step would have
   produced. The counter limits are exact (checked every step); the
   terminate callback and the wall clock are only consulted every 128
   steps, keeping cancellation latency well under a restart at no
   measurable cost to the hot loop. *)
let check_stop s =
  s.steps <- s.steps + 1;
  (match s.limits.max_conflicts with
  | Some m when s.conflicts - s.base_conflicts >= m ->
    raise (Stop Budget_exhausted)
  | _ -> ());
  (match s.limits.max_propagations with
  | Some m when s.propagations - s.base_propagations >= m ->
    raise (Stop Budget_exhausted)
  | _ -> ());
  (match s.limits.max_steps with
  | Some m when s.steps - s.base_steps >= m -> raise (Stop Budget_exhausted)
  | _ -> ());
  match (s.terminate, s.limits.stop, s.limits.deadline) with
  | None, None, None -> ()
  | terminate, stop, deadline ->
    s.poll <- s.poll - 1;
    if s.poll <= 0 then begin
      s.poll <- 128;
      (match terminate with
      | Some f when f () -> raise (Stop Interrupted)
      | _ -> ());
      (match stop with
      | Some f when f () -> raise (Stop Interrupted)
      | _ -> ());
      match deadline with
      | Some d when Unix.gettimeofday () > d -> raise (Stop Deadline)
      | _ -> ()
    end

let luby i =
  (* Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
     Iterative form of "find the enclosing 2^k - 1 block, recurse into its
     tail": total work O(log^2 i), no recursion. *)
  let i = ref i in
  let res = ref (-1) in
  while !res < 0 do
    let k = ref 1 in
    while (1 lsl !k) - 1 < !i do
      incr k
    done;
    if (1 lsl !k) - 1 = !i then res := 1 lsl (!k - 1)
    else i := !i - (1 lsl (!k - 1)) + 1
  done;
  !res

let save_model s =
  let m = Array.make s.nvars false in
  for v = 0 to s.nvars - 1 do
    m.(v) <- s.assign.(v) = 1
  done;
  s.saved_model <- m

let handle_conflict s ci =
  s.conflicts <- s.conflicts + 1;
  if decision_level s = 0 then begin
    (* root conflict: independent of any assumption, so the core is
       empty and the empty clause is derivable by propagation alone *)
    s.last_core <- [];
    raise (Found Unsat)
  end;
  let blevel = analyze s ci in
  cancel_until s blevel;
  let out = s.out_learnt in
  (if Ivec.size out = 1 then begin
     Obs.Metrics.observe m_lbd 1;
     s.lbd_sum <- s.lbd_sum + 1;
     if s.lbd_max = 0 then s.lbd_max <- 1;
     (* log before export: on a shared spool the clause must be in the
        log before any other member can learn from it *)
     (match s.proof with
     | Some sp -> Proof.log_learnt_unit sp (Ivec.get out 0)
     | None -> ());
     if s.share <> None then export_learnt s ~lbd:1 [| Ivec.get out 0 |];
     enqueue s (Ivec.get out 0) (-1)
   end
   else begin
     let c = Array.init (Ivec.size out) (Ivec.get out) in
     let lbd = lbd_of s (Array.length c) (Array.get c) in
     Obs.Metrics.observe m_lbd lbd;
     s.lbd_sum <- s.lbd_sum + lbd;
     if lbd > s.lbd_max then s.lbd_max <- lbd;
     (match s.proof with
     | Some sp -> Proof.log_learnt sp c
     | None -> ());
     export_learnt s ~lbd c;
     let ci = push_clause s c ~lbd in
     enqueue s c.(0) ci
   end);
  var_decay s

(* Final-conflict analysis (MiniSat's analyzeFinal): which assumptions
   are to blame for a conflict found while establishing them? Mark the
   seed literals' variables, walk the trail top-down replacing each
   marked propagated literal by its reason clause; the pseudo-decisions
   that remain are the culpable assumptions, returned as assumed (the
   negated core is a clause implied by the problem — it is RUP with
   respect to the clause database, which is what {!Proof.certify}
   appends). Root-level literals never contribute. Only runs on the
   Unsat path, so the cost is invisible to searching. *)
let analyze_final s seed_n seed_get =
  if decision_level s = 0 then []
  else begin
    let seen = s.seen in
    let marked = ref 0 in
    let mark l =
      let v = Lit.var l in
      if s.level.(v) > 0 && Bytes.get seen v <> '\001' then begin
        Bytes.set seen v '\001';
        incr marked
      end
    in
    for i = 0 to seed_n - 1 do
      mark (seed_get i)
    done;
    let core = ref [] in
    let bound = Ivec.get s.trail_lim 0 in
    let i = ref (Ivec.size s.trail - 1) in
    while !marked > 0 && !i >= bound do
      let p = Ivec.get s.trail !i in
      let v = Lit.var p in
      if Bytes.get seen v = '\001' then begin
        Bytes.set seen v '\000';
        decr marked;
        let r = s.reason.(v) in
        if r < 0 then core := p :: !core
        else begin
          (* slot 0 of a reason clause is the literal it propagated —
             marking it again would leave [v] seen forever and poison
             later conflict analyses *)
          let c = Vec.get s.clauses r in
          for j = 1 to Array.length c - 1 do
            mark c.(j)
          done
        end
      end;
      decr i
    done;
    !core
  end

(* Re-establish assumptions as pseudo-decisions; raises [Found Unsat] when
   an assumption is already false under the current prefix. Both failure
   sites record the subset of assumptions responsible in [last_core]. *)
let rec assume s assumptions =
  if decision_level s < Array.length assumptions then begin
    let p = assumptions.(decision_level s) in
    match lit_value s p with
    | 1 ->
      new_decision_level s;
      assume s assumptions
    | 0 ->
      (* [p] is false under the prefix: blame [p] plus whatever forced
         its complement *)
      s.last_core <- p :: analyze_final s 1 (fun _ -> p);
      raise (Found Unsat)
    | _ ->
      new_decision_level s;
      enqueue s p (-1);
      (* propagate before the next assumption so values are visible *)
      let ci = propagate s in
      if ci >= 0 then begin
        let c = Vec.get s.clauses ci in
        s.last_core <- analyze_final s (Array.length c) (Array.get c);
        raise (Found Unsat)
      end
      else assume s assumptions
  end

let decide s =
  let rec pick () =
    if Ivec.size s.heap = 0 then None
    else
      let v = heap_pop_max s in
      if s.assign.(v) < 0 then Some v else pick ()
  in
  match pick () with
  | None ->
    save_model s;
    raise (Found Sat)
  | Some v ->
    s.decisions <- s.decisions + 1;
    new_decision_level s;
    enqueue s (Lit.make v s.phase.(v)) (-1)

let search s assumptions budget =
  let local = ref 0 in
  let rec loop () =
    check_stop s;
    let ci = propagate s in
    if ci >= 0 then begin
      incr local;
      handle_conflict s ci;
      if s.max_learnts > 0 && s.n_learnts > s.max_learnts then reduce_db s;
      loop ()
    end
    else if !local >= budget then begin
      cancel_until s 0;
      s.restarts <- s.restarts + 1;
      `Restart
    end
    else begin
      assume s assumptions;
      decide s;
      loop ()
    end
  in
  loop ()

let run_solve s assumptions =
  (* every Unsat path below either leaves this (core-less verdicts:
     empty clause already derived, root-level conflict) or overwrites
     it with the failed assumptions *)
  s.last_core <- [];
  if not s.ok then Unsat
  else begin
    (* limits bound this one call: snapshot the cumulative counters *)
    s.base_conflicts <- s.conflicts;
    s.base_propagations <- s.propagations;
    s.base_steps <- s.steps;
    (* the cap tracks problem size: an incremental solver keeps gaining
       clauses after its first solve, and must not be stuck with the cap
       a small prefix of the problem suggested *)
    if s.learnt_limit > 0 then begin
      if s.max_learnts = 0 then s.max_learnts <- s.learnt_limit
    end
    else
      s.max_learnts <-
        max s.max_learnts (max 2000 ((Vec.size s.clauses - s.n_learnts) / 3));
    (* scope activation literals are standing assumptions *)
    let assumptions =
      Array.of_list
        (List.map Lit.pos (Ivec.to_list s.scopes) @ assumptions)
    in
    (* settle the root level, then sweep out clauses retired since the
       last solve (retracted scopes leave permanently satisfied clauses
       behind; fresh root units strengthen what remains) *)
    if propagate s >= 0 then s.ok <- false
    else if Ivec.size s.trail > s.simp_trail then simplify s;
    if not s.ok then Unsat
    else
      try
        (* foreign clauses come aboard at restart boundaries only: the
           solver is at decision level 0 there, so imported units can
           enqueue directly and new clauses need no backtracking *)
        let rec run i =
          import_shared s;
          if not s.ok then raise (Found Unsat);
          match search s assumptions (s.restart_base * luby i) with
          | `Restart -> run (i + 1)
        in
        run 1
      with
      | Found r ->
        cancel_until s 0;
        r
      | Stop reason ->
        (* budget/deadline/interrupt: back out to level 0 with clauses
           and statistics intact — the solver stays usable *)
        cancel_until s 0;
        Unknown reason
  end

let set_name s v name = Hashtbl.replace s.names v name

let name_of_lit s l =
  match Hashtbl.find_opt s.names (Lit.var l) with
  | Some n -> n
  | None -> Printf.sprintf "lit%d" (Lit.to_int l)

let unsat_core s = s.last_core
let core_names s = List.map (name_of_lit s) s.last_core
let set_proof s sp = s.proof <- sp
let proof_spool s = s.proof

let push_named s name =
  let v = new_var s in
  Hashtbl.replace s.names v name;
  Ivec.push s.scopes v

let solve_with_assumptions s assumptions =
  s.solves <- s.solves + 1;
  Obs.Metrics.incr m_solves;
  let adepth = List.length assumptions + Ivec.size s.scopes in
  Obs.Metrics.observe m_assumption_depth adepth;
  if adepth > s.max_assumption_depth then s.max_assumption_depth <- adepth;
  let sp =
    if Obs.enabled () then Obs.start_span "sat.solve" else Obs.null_span
  in
  let c0 = s.conflicts and d0 = s.decisions in
  let p0 = s.propagations and r0 = s.restarts in
  (* an injected fault at the solve boundary stands in for a crashed or
     unreachable engine: the call reports Unknown without searching *)
  let r =
    if Fault.fire Fault.Solver_call then Ok (Unknown Interrupted)
    else
      match run_solve s assumptions with
      | r -> Ok r
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  (* fleet-wide registry totals, batched as per-solve deltas *)
  Obs.Metrics.add m_conflicts (s.conflicts - c0);
  Obs.Metrics.add m_decisions (s.decisions - d0);
  Obs.Metrics.add m_propagations (s.propagations - p0);
  Obs.Metrics.add m_restarts (s.restarts - r0);
  Obs.Metrics.set_gauge m_learnt_db (float_of_int s.n_learnts);
  if Obs.enabled () then begin
    let result =
      match r with
      | Ok Sat -> "sat"
      | Ok Unsat -> "unsat"
      | Ok (Unknown reason) -> reason_to_string reason
      | Error _ -> "error"
    in
    let delta =
      [
        ("conflicts", Obs.Int (s.conflicts - c0));
        ("decisions", Obs.Int (s.decisions - d0));
        ("propagations", Obs.Int (s.propagations - p0));
        ("restarts", Obs.Int (s.restarts - r0));
        ("vars", Obs.Int s.nvars);
        ("clauses", Obs.Int (Vec.size s.clauses));
        ("learnts", Obs.Int s.n_learnts);
        ("assumptions", Obs.Int adepth);
      ]
    in
    Obs.end_span sp ~attrs:(("result", Obs.String result) :: delta);
    Obs.solver_call ~result delta
  end;
  (* certificate issue rides the Unsat path only, after the solver_call
     event so a trace reader can pair the two (at most one certificate
     per unsat verdict); with the plane disabled the spool is [None]
     and nothing here runs *)
  (match (r, s.proof) with
  | Ok Unsat, Some spool -> (
    let core = s.last_core in
    let loop = Obs.current_loop () in
    match
      Proof.certify spool ~core ~names:(core_names s) ~maxvar:s.nvars ~loop
    with
    | Some c ->
      if Obs.enabled () then
        Obs.emit
          (Obs.Certificate
             {
               loop;
               attrs =
                 [
                   ("cert", Obs.Int c.Proof.cert_id);
                   ("core_size", Obs.Int c.Proof.cert_core_size);
                   ("proof_bytes", Obs.Int c.Proof.cert_drat_bytes);
                   ("cnf_bytes", Obs.Int c.Proof.cert_cnf_bytes);
                   ( "core",
                     Obs.String (String.concat "," (core_names s)) );
                 ];
             })
    | None -> ())
  | _ -> ());
  match r with
  | Ok r -> r
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let solve s = solve_with_assumptions s []

let value s v =
  if v < Array.length s.saved_model then s.saved_model.(v) else false

let model s = Array.copy s.saved_model
