(** Tseitin-style gate encoding on top of {!Sat}.

    A context wraps a SAT solver and provides boolean "wires" (literals)
    plus gate constructors that emit the defining clauses. Constant wires
    are folded away eagerly, so downstream encoders (notably the bit
    blaster) can be written naively and still produce compact CNF. *)

type t

val create : unit -> t
val solver : t -> Sat.t

val true_ : t -> Lit.t
val false_ : t -> Lit.t
val of_bool : t -> bool -> Lit.t
val fresh : t -> Lit.t
(** A fresh unconstrained wire. *)

val assert_lit : t -> Lit.t -> unit
(** Constrain a wire to be true (adds a unit clause). Inside an open
    {!push} scope the assertion is retracted by the matching {!pop};
    gate-definition clauses are always permanent, so wires cached across
    scopes stay well-defined. *)

val assert_clause : t -> Lit.t list -> unit

val assert_permanent : t -> Lit.t -> unit
(** Assert a wire true regardless of open scopes. For definitional
    constraints whose wires outlive the current scope (e.g. the bit
    blaster's division encoding). *)

val push : t -> unit
(** Open a retractable assertion scope on the underlying solver. *)

val push_named : t -> string -> unit
(** Like {!push}, but names the scope for unsat-core reporting (see
    [Sat.push_named]). *)

val pop : t -> unit
(** Close the innermost scope, retracting its assertions. *)

val name_lit : t -> Lit.t -> string -> unit
(** Name a wire's variable for unsat-core reporting: when the wire is
    assumed at a check and ends up in the core, it renders as [name]. *)

val not_ : Lit.t -> Lit.t
val and2 : t -> Lit.t -> Lit.t -> Lit.t
val or2 : t -> Lit.t -> Lit.t -> Lit.t
val xor2 : t -> Lit.t -> Lit.t -> Lit.t
val iff2 : t -> Lit.t -> Lit.t -> Lit.t
val implies : t -> Lit.t -> Lit.t -> Lit.t
val mux : t -> Lit.t -> Lit.t -> Lit.t -> Lit.t
(** [mux t c a b] is [if c then a else b]. *)

val and_list : t -> Lit.t list -> Lit.t
val or_list : t -> Lit.t list -> Lit.t

val full_adder : t -> Lit.t -> Lit.t -> Lit.t -> Lit.t * Lit.t
(** [full_adder t a b cin] is [(sum, carry_out)]. *)

val lit_of_model : t -> Lit.t -> bool
(** Value of a wire in the model of the last successful solve. *)

val set_tap : t -> (Lit.t list -> unit) option -> unit
(** Install (or with [None], remove) an observer of every {e permanent}
    clause the context emits — gate definitions and
    {!assert_permanent}s, in emission order, before solver-side
    normalization. Used by [Cnfcache] to record an encoding once and
    replay it into other contexts; scoped {!assert_clause}s are not
    definitional and are not tapped. *)
