(* A recipe is an encoding captured in canonical variable numbering:
   scratch var 0 is the true wire, vars 1..n_inputs are the inputs (in
   the order the builder received them), and everything above is
   auxiliary. Recording runs the builder in a throwaway context, so the
   numbering is reproducible: the same builder always yields the same
   recipe, which is what makes the global table deterministic even when
   several domains race to record the same key. *)
type recipe = {
  n_inputs : int;
  n_aux : int;
  clauses : Lit.t array array;  (* emission order, scratch numbering *)
  outputs : Lit.t array array;  (* scratch numbering *)
}

let n_inputs r = r.n_inputs
let n_aux r = r.n_aux
let n_clauses r = Array.length r.clauses

let record ~n_inputs build =
  let ctx = Tseitin.create () in
  (* var 0 is the context's true wire; the next [n_inputs] fresh wires
     are therefore exactly vars 1..n_inputs *)
  let inputs = Array.init n_inputs (fun _ -> Tseitin.fresh ctx) in
  let clauses = ref [] in
  Tseitin.set_tap ctx (Some (fun c -> clauses := Array.of_list c :: !clauses));
  let outputs = build ctx inputs in
  Tseitin.set_tap ctx None;
  let n_total = Sat.num_vars (Tseitin.solver ctx) in
  {
    n_inputs;
    n_aux = n_total - 1 - n_inputs;
    clauses = Array.of_list (List.rev !clauses);
    outputs;
  }

let replay r ctx inputs =
  if Array.length inputs <> r.n_inputs then
    invalid_arg "Cnfcache.replay: input arity mismatch";
  let sat = Tseitin.solver ctx in
  let aux = Array.init r.n_aux (fun _ -> Sat.new_var sat) in
  (* base (positive) literal standing for a scratch variable *)
  let base v =
    if v = 0 then Tseitin.true_ ctx
    else if v <= r.n_inputs then inputs.(v - 1)
    else Lit.pos aux.(v - r.n_inputs - 1)
  in
  let subst l =
    let m = base (Lit.var l) in
    if Lit.sign l then m else Lit.neg m
  in
  Array.iter
    (fun c ->
      Sat.add_clause_permanent sat (List.map subst (Array.to_list c)))
    r.clauses;
  Array.map (Array.map subst) r.outputs

(* ---- global sharded table ---- *)

(* Mutex-striped: a key's shard is its hash modulo [shards]. Lookups and
   installs from concurrent domains (parallel BMC workers, portfolio
   members' encoders) only contend when they hash to the same stripe,
   and the critical sections are a hashtable probe — recording itself
   happens outside any lock. *)
let shards = 16

type shard = { mu : Mutex.t; table : (string, recipe) Hashtbl.t }

let table =
  Array.init shards (fun _ ->
      { mu = Mutex.create (); table = Hashtbl.create 32 })

let shard_of key = table.(Hashtbl.hash key mod shards)

let find ~key =
  let sh = shard_of key in
  Mutex.lock sh.mu;
  let r = Hashtbl.find_opt sh.table key in
  Mutex.unlock sh.mu;
  r

let install ~key r =
  let sh = shard_of key in
  Mutex.lock sh.mu;
  let winner =
    match Hashtbl.find_opt sh.table key with
    | Some existing -> existing (* first install wins *)
    | None ->
      Hashtbl.add sh.table key r;
      r
  in
  Mutex.unlock sh.mu;
  winner

let clear () =
  Array.iter
    (fun sh ->
      Mutex.lock sh.mu;
      Hashtbl.reset sh.table;
      Mutex.unlock sh.mu)
    table

let cached_recipes () =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.mu;
      let n = Hashtbl.length sh.table in
      Mutex.unlock sh.mu;
      acc + n)
    0 table
