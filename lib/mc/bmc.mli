(** SAT-based bounded model checking.

    Unrolls the transition system to a fixed depth through the Tseitin
    layer and asks the CDCL solver whether a bad state is reachable
    within the bound. CEGAR uses it as the spuriousness check for
    abstract counterexamples (the "SAT solver" half of the deductive
    engine in Fig. 3). *)

val compile :
  Smt.Tseitin.t ->
  state:Smt.Lit.t array ->
  input:Smt.Lit.t array ->
  Ts.expr ->
  Smt.Lit.t
(** Lower a boolean expression over the given state/input wires. *)

(** One bounded query's answer. [`Cex] carries a concrete input trace
    (one valuation per executed step) reaching a bad state within the
    bound; [`Unknown] means the solver abandoned the query (limits,
    interrupt or injected fault) — the depth is {e not} proved clean. *)
type query =
  [ `Cex of bool array list | `No_cex | `Unknown of Smt.Sat.reason ]

val check : ?limits:Smt.Sat.limits -> Ts.t -> depth:int -> query
(** [check ts ~depth] decides whether a bad state is reachable within
    [depth] steps. One-shot: builds a fresh solver per call (bounded by
    [?limits] if given); loops that query repeated depths should use a
    {!session}. *)

(** {2 Persistent sessions}

    One solver for a whole sequence of bounded queries against the same
    transition system. The unrolling is extended lazily and shared
    between queries; only the "bad within the bound" assertion is
    per-query (scoped), so learned clauses about the transition relation
    carry across depths. *)

type session

val new_session : Ts.t -> session

val check_depth : ?limits:Smt.Sat.limits -> session -> depth:int -> query
(** Same contract as {!check}. Depths may be queried in any order.
    [?limits], when given, is installed on the session's solver (and
    persists for later queries until replaced). *)

val check_range : ?limits:Smt.Sat.limits -> session -> lo:int -> hi:int -> query
(** One scoped query for "a bad state is reachable at some step in
    [lo..hi]": [`No_cex] proves the {e whole} range clean in a single
    solver call. A [`Cex] trace is genuine but its length — the step
    reaching the bad state — may be anywhere in [0..hi], including
    below [lo]: the query does not constrain the earlier steps, so the
    model may stumble into a shallower bad state. [check_range ~lo:0
    ~hi:d] is exactly {!check_depth}[ ~depth:d]. Raises
    [Invalid_argument] when [lo < 0] or [hi < lo]. *)

val session_conflicts : session -> int
(** Cumulative conflicts of the session's solver; callers metering a
    conflict pool charge per-query deltas of this. *)

val session_system : session -> Ts.t
val session_frames : session -> int
(** Steps unrolled so far — how warm the session is. *)

(** What an exhausted sweep still established: every depth in
    [start..proved_depth] is proved clean (no bad state reachable that
    shallow), and nothing is claimed past it. [proved_depth] is
    [start - 1] when not even the first depth finished. *)
type partial = {
  proved_depth : int;
  reason : Budget.reason;
}

val sweep :
  ?start:int ->
  ?pool:Par.Pool.t ->
  ?workers:int ->
  ?budget:Budget.t ->
  Ts.t ->
  max_depth:int ->
  ((int * bool array list) option, partial) Budget.outcome
(** The standard BMC loop over one persistent session: query depths
    [start..max_depth] in turn — [Converged (Some (depth, trace))] for
    the first reachable bad state, [Converged None] when the whole range
    is clean. Emits one telemetry loop iteration per depth.

    [?budget] (default unlimited) meters the whole sweep: iterations
    count queried depths, the conflict pool is drained by every solver
    call, and the deadline cuts the run short mid-query. On exhaustion
    the sweep returns [Exhausted] with the deepest fully-proved depth
    and emits a [budget_exhausted] loop event. A budgeted sequential
    sweep's verdicts agree with the unbudgeted run on the proved
    prefix (the limit checks never alter the search itself).

    With [?pool] (of more than one job), workers claim contiguous depth
    ranges from a shared atomic queue (work stealing: no depth is ever
    solved twice, nobody idles behind a static stripe), each keeping
    one persistent session it extends monotonically. A claimed range is
    decided by one {!check_range} query and, when satisfiable, refined
    downward to its minimal counterexample depth; a worker that finds a
    counterexample publishes the depth through a shared atomic and the
    others stop claiming past it. The minimal reachable depth — and
    hence the verdict — is identical to the sequential sweep, though
    the concrete trace may differ. Under a budget the workers share one
    conflict pool (overdraw bounded by one in-flight query per worker),
    iterations meter {e claims} rather than depths, and the proved
    prefix on exhaustion counts only contiguously proved depths.

    [?workers] overrides how many claim-loop workers are submitted to
    the pool. By default the width is [min (Pool.jobs pool)
    (Domain.recommended_domain_count ())]: cooperating workers all
    allocate, and OCaml's minor GC synchronizes every domain, so
    running more workers than hardware threads only adds convoy stalls
    — the claim queue and verdict are the same at any width. Raises
    [Invalid_argument] when [workers < 1].

    Once a worker records a counterexample through the shared
    best-depth atomic, subsequent claims are seeded from that frontier:
    sized against [best - 1] rather than [max_depth], so late workers
    take progressively finer ranges near the suspected counterexample
    region instead of cold ranges the best depth made moot. *)

val sweep_session :
  ?start:int ->
  ?budget:Budget.t ->
  session ->
  max_depth:int ->
  ((int * bool array list) option, partial) Budget.outcome
(** The sequential sweep over a caller-owned (possibly warm) session:
    query depths [start..max_depth] in turn, reusing every frame and
    learnt clause already in the session. The caller owns the claim
    that depths below [start] are clean — the verification server
    tracks the proved prefix per problem family and resumes sweeps at
    [proved + 1], which is where the warm-query speedup over a cold CLI
    invocation comes from. Verdicts equal {!sweep}'s for the same
    [start]. Raises [Invalid_argument] when [start < 0]. *)
