(** SAT-based bounded model checking.

    Unrolls the transition system to a fixed depth through the Tseitin
    layer and asks the CDCL solver whether a bad state is reachable
    within the bound. CEGAR uses it as the spuriousness check for
    abstract counterexamples (the "SAT solver" half of the deductive
    engine in Fig. 3). *)

val compile :
  Smt.Tseitin.t ->
  state:Smt.Lit.t array ->
  input:Smt.Lit.t array ->
  Ts.expr ->
  Smt.Lit.t
(** Lower a boolean expression over the given state/input wires. *)

val check : Ts.t -> depth:int -> bool array list option
(** [check ts ~depth] returns a concrete input trace reaching a bad
    state after at most [depth] steps, or [None] if none exists within
    the bound. The trace has one input valuation per executed step.
    One-shot: builds a fresh solver per call; loops that query repeated
    depths should use a {!session}. *)

(** {2 Persistent sessions}

    One solver for a whole sequence of bounded queries against the same
    transition system. The unrolling is extended lazily and shared
    between queries; only the "bad within the bound" assertion is
    per-query (scoped), so learned clauses about the transition relation
    carry across depths. *)

type session

val new_session : Ts.t -> session

val check_depth : session -> depth:int -> bool array list option
(** Same contract as {!check}. Depths may be queried in any order. *)

val sweep :
  ?start:int ->
  ?pool:Par.Pool.t ->
  Ts.t ->
  max_depth:int ->
  (int * bool array list) option
(** The standard BMC loop over one persistent session: query depths
    [start..max_depth] in turn, returning [(depth, trace)] for the first
    reachable bad state, or [None] when the whole range is clean. Emits
    one telemetry loop iteration per depth.

    With [?pool] (of more than one job), depths are striped across the
    pool's concurrency units, one persistent session per stripe, and a
    stripe that finds a counterexample cuts the others short at the
    next depth boundary; the minimal reachable depth — and hence the
    verdict — is identical to the sequential sweep, though the concrete
    trace may differ. *)
