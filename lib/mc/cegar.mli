(** Counterexample-guided abstraction refinement (Fig. 3 of the paper).

    Sciduction instance: H is the abstract domain (which latches are
    visible), I walks the lattice of localization abstractions guided by
    spurious counterexamples, and D is the explicit-state model checker
    on the abstraction plus the SAT-based spuriousness check. Because
    the concrete system is itself an admissible abstraction, C_H = C_S
    and soundness is unconditional. *)

type result =
  | Safe of {
      visible : int list;  (** the final abstraction's visible latches *)
      iterations : int;
      abstract_latches : int;
    }
  | Unsafe of {
      trace : bool array list;  (** validated concrete input trace *)
      iterations : int;
    }

(** How to choose the latch revealed after a spurious counterexample. *)
type refinement =
  | Most_referenced
      (** the hidden latch most referenced by the visible logic — a
          syntactic version-space walk down the abstraction lattice *)
  | Decision_tree of { samples : int; seed : int }
      (** Gupta-style learning: sample reachable states (random walks)
          and bad states (SAT models), learn a decision tree separating
          them, and reveal the most informative hidden feature *)

(** What an exhausted run still holds: the visible-latch set of the
    last abstraction tried, after [iterations] completed refinements.
    No safety claim is made (the abstraction's check did not finish),
    but the set is a sound restart point: re-running with
    [?initial_visible] set to it resumes where the budget ran out. *)
type partial = {
  visible : int list;
  iterations : int;
  reason : Budget.reason;
}

val verify :
  ?initial_visible:int list ->
  ?max_iterations:int ->
  ?refinement:refinement ->
  ?reuse:bool ->
  ?budget:Budget.t ->
  Ts.t ->
  (result, partial) Budget.outcome
(** [initial_visible] defaults to the support of the bad predicate;
    [refinement] to [Most_referenced]. With [reuse] (the default) all
    spuriousness checks share one incremental {!Bmc.session};
    [~reuse:false] rebuilds the BMC solver per check (benchmark
    baseline).

    [?budget] (default unlimited) meters the refinement loop:
    iterations are refinements (also capped by [max_iterations], which
    now exhausts instead of raising), the conflict pool is drained by
    the spuriousness checks, and a solver that answers Unknown mid-loop
    exhausts with [reason = Solver]. Verdicts that do converge are
    unconditional: [Safe] rests on the over-approximating abstraction,
    [Unsafe] on a replayed concrete trace — a starved solver can delay
    but never flip them. Raises [Failure] only if refinement runs out
    of candidates (cannot happen for well-formed systems: the full
    system is a valid refinement). *)

val decision_tree_candidates :
  Ts.t -> visible:int list -> samples:int -> seed:int -> int list
(** The decision-tree strategy's ranked hidden-latch candidates
    (exposed for tests and the refinement ablation). *)
