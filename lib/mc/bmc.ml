module Tseitin = Smt.Tseitin
module Sat = Smt.Sat
module Lit = Smt.Lit

let compile ctx ~state ~input e =
  let rec go = function
    | Ts.T -> Tseitin.true_ ctx
    | Ts.F -> Tseitin.false_ ctx
    | Ts.V i -> state.(i)
    | Ts.In i -> input.(i)
    | Ts.Not a -> Tseitin.not_ (go a)
    | Ts.And (a, b) -> Tseitin.and2 ctx (go a) (go b)
    | Ts.Or (a, b) -> Tseitin.or2 ctx (go a) (go b)
    | Ts.Xor (a, b) -> Tseitin.xor2 ctx (go a) (go b)
  in
  go e

(* replay the model's inputs and truncate the trace at the first bad
   state *)
let trace_of_inputs (ts : Ts.t) all_inputs =
  let rec truncate state steps_taken inputs_left =
    if Ts.is_bad ts state then Some (List.rev steps_taken)
    else
      match inputs_left with
      | [] -> None (* model exists, so this cannot happen *)
      | input :: rest ->
        truncate (Ts.step ts ~state ~input) (input :: steps_taken) rest
  in
  truncate ts.Ts.init [] all_inputs

type query =
  [ `Cex of bool array list | `No_cex | `Unknown of Smt.Sat.reason ]

let check ?(limits = Sat.no_limits) (ts : Ts.t) ~depth =
  Obs.with_span "bmc.check" ~attrs:[ ("depth", Obs.Int depth) ] @@ fun () ->
  let ctx = Tseitin.create () in
  let state0 =
    Array.map (fun b -> Tseitin.of_bool ctx b) ts.Ts.init
  in
  (* bad at step 0..depth; inputs.(t) drives step t -> t+1 *)
  let inputs = ref [] in
  let bads = ref [ compile ctx ~state:state0 ~input:[||] ts.Ts.bad ] in
  let state = ref state0 in
  for _t = 1 to depth do
    let input = Array.init ts.Ts.num_inputs (fun _ -> Tseitin.fresh ctx) in
    inputs := input :: !inputs;
    let next =
      Array.map (fun e -> compile ctx ~state:!state ~input e) ts.Ts.next
    in
    state := next;
    bads := compile ctx ~state:next ~input:[||] ts.Ts.bad :: !bads
  done;
  let inputs = Array.of_list (List.rev !inputs) in
  let bads = List.rev !bads in
  Tseitin.assert_lit ctx (Tseitin.or_list ctx bads);
  Sat.set_limits (Tseitin.solver ctx) limits;
  match Sat.solve_with_assumptions (Tseitin.solver ctx) [] with
  | Sat.Unsat -> `No_cex
  | Sat.Unknown reason -> `Unknown reason
  | Sat.Sat -> (
    let value l = Tseitin.lit_of_model ctx l in
    let all_inputs =
      Array.to_list (Array.map (fun inp -> Array.map value inp) inputs)
    in
    match trace_of_inputs ts all_inputs with
    | Some trace -> `Cex trace
    | None -> `No_cex)

(* ---- persistent incremental session ---- *)

(* The unrolled transition relation is monotone in the depth: frame t's
   wires never change once built. A session therefore keeps one Tseitin
   context alive, extends the unrolling lazily, and per query only
   asserts "some bad within the bound" inside a push/pop scope. Repeated
   queries at growing depths — the shape of both BMC loops and CEGAR's
   spuriousness checks — reuse every frame and every learned clause. *)
type session = {
  ts : Ts.t;
  ctx : Tseitin.t;
  mutable frames : int;  (* steps unrolled so far *)
  mutable state : Lit.t array;  (* state wires after [frames] steps *)
  mutable inputs_rev : Lit.t array list;
  mutable bads_rev : Lit.t list;  (* frames+1 entries, newest first *)
}

let new_session (ts : Ts.t) =
  let ctx = Tseitin.create () in
  let state0 = Array.map (fun b -> Tseitin.of_bool ctx b) ts.Ts.init in
  {
    ts;
    ctx;
    frames = 0;
    state = state0;
    inputs_rev = [];
    bads_rev = [ compile ctx ~state:state0 ~input:[||] ts.Ts.bad ];
  }

let extend sess depth =
  while sess.frames < depth do
    let input =
      Array.init sess.ts.Ts.num_inputs (fun _ -> Tseitin.fresh sess.ctx)
    in
    sess.inputs_rev <- input :: sess.inputs_rev;
    let next =
      Array.map
        (fun e -> compile sess.ctx ~state:sess.state ~input e)
        sess.ts.Ts.next
    in
    sess.state <- next;
    sess.bads_rev <-
      compile sess.ctx ~state:next ~input:[||] sess.ts.Ts.bad :: sess.bads_rev;
    sess.frames <- sess.frames + 1
  done

let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l)

let rec take n l =
  if n <= 0 then []
  else match l with [] -> [] | x :: rest -> x :: take (n - 1) rest

let session_conflicts sess = Sat.num_conflicts (Tseitin.solver sess.ctx)

(* One scoped query: "bad at some step in [lo..hi]". The unrolling is
   extended to [hi]; a model yields a genuine input trace (replayed on
   the concrete system and truncated at its first bad state), whose
   length can be {e below} [lo] — the model constrains nothing about the
   earlier steps, so it is free to stumble into a shallower bad state.
   [lo = 0] is the classic cumulative query. *)
let check_between ?limits sess ~span ~lo ~hi =
  Obs.with_span span ~attrs:[ ("depth", Obs.Int hi); ("lo", Obs.Int lo) ]
  @@ fun () ->
  extend sess hi;
  let ctx = sess.ctx in
  Option.iter (Sat.set_limits (Tseitin.solver ctx)) limits;
  (* steps lo..hi in ascending order, as the cumulative query built it *)
  let bads = List.rev (take (hi - lo + 1) (drop (sess.frames - hi) sess.bads_rev)) in
  (* the scope's activation literal is the assumption an unsat core
     blames, so name it after the property it guards *)
  Tseitin.push_named ctx
    (if lo = hi then Printf.sprintf "bad[%d]" lo
     else Printf.sprintf "bad[%d..%d]" lo hi);
  Tseitin.assert_lit ctx (Tseitin.or_list ctx bads);
  let result =
    match Sat.solve_with_assumptions (Tseitin.solver ctx) [] with
    | Sat.Unsat -> `No_cex
    | Sat.Unknown reason -> `Unknown reason
    | Sat.Sat -> (
      let value l = Tseitin.lit_of_model ctx l in
      let all_inputs =
        List.map
          (fun inp -> Array.map value inp)
          (take hi (List.rev sess.inputs_rev))
      in
      match trace_of_inputs sess.ts all_inputs with
      | Some trace -> `Cex trace
      | None -> `No_cex)
  in
  Tseitin.pop ctx;
  result

let check_depth ?limits sess ~depth =
  check_between ?limits sess ~span:"bmc.check_depth" ~lo:0 ~hi:depth

let check_range ?limits sess ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Bmc.check_range";
  check_between ?limits sess ~span:"bmc.check_range" ~lo ~hi

type partial = {
  proved_depth : int;
  reason : Budget.reason;
}

(* Budget headroom attached to every iteration record, so a progress
   heartbeat mid-sweep answers "how much runway is left" without a
   second channel; unlimited dimensions are omitted, not sent as
   sentinels. *)
let budget_attrs meter =
  let conflicts =
    match Budget.remaining_conflicts meter with
    | Some n -> [ ("conflicts_left", Obs.Int n) ]
    | None -> []
  in
  match Budget.deadline meter with
  | Some dl ->
    ("deadline_in", Obs.Float (dl -. Unix.gettimeofday ())) :: conflicts
  | None -> conflicts

(* the budget_exhausted loop event, then finish: terminal for the loop *)
let exhaust lp ~proved_depth reason =
  Obs.Loop.budget_exhausted lp
    ~reason:(Budget.reason_to_string reason)
    ~attrs:[ ("proved_depth", Obs.Int proved_depth) ];
  Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "exhausted") ];
  Budget.Exhausted { proved_depth; reason }

(* Parallel sweep over a shared work-stealing depth queue.

   A single atomic ([next]) is the queue head: a worker claims the next
   unproved contiguous depth range with a CAS, so no depth is ever
   solved twice and an idle worker steals the frontier instead of
   idling behind a static stripe. Claims use guided self-scheduling —
   about [remaining / (2*jobs)] depths per claim, shrinking to single
   depths near the end — big enough that one ranged query amortizes a
   claim, small enough that workers stay balanced.

   Each worker keeps one persistent incremental session and extends its
   unrolling monotonically across claims. A claim [lo..hi] is decided
   by {e one} ranged query ("bad at some step in [lo..hi]") instead of
   [hi-lo+1] cumulative ones: an unsat answer proves the whole range
   clean in one solver call, which is where the parallel sweep's
   algorithmic advantage over the depth-at-a-time sequential loop comes
   from. A sat answer yields a genuine trace of some length [d]; the
   worker then refines downward ("bad in [lo..d-1]") until the range's
   minimal counterexample depth is found, marking the depths it proves
   clean along the way.

   Minimality of the reported depth: claims are handed out in ascending
   order, so when [lo..hi] is claimed every depth below [lo] is already
   claimed by someone, and a completed claim below the final best depth
   either proved its depths clean or would have recorded a shallower
   counterexample (impossible below the minimum — traces are replayed
   on the concrete system, so every recorded depth is genuine). Hence,
   absent an exhaustion, all depths below the shared best are proved
   clean and the reported depth equals the sequential sweep's; only the
   concrete trace can differ. On exhaustion the cex is reported only if
   everything below it is proved; otherwise the sweep returns the
   contiguous proved prefix, like the sequential loop.

   Worker count: cooperation, unlike the portfolio's racing, gains
   nothing from more workers than hardware threads. BMC workers all
   allocate heavily (each extends its own unrolling) and OCaml's minor
   collections synchronize every running domain, so oversubscribing
   cores turns each collection into a scheduling convoy — the old
   striped sweep's 0.18x "speedup" on a single-core host was exactly
   this. The claim width is therefore capped at
   [Domain.recommended_domain_count]: on a machine with fewer cores
   than [jobs] the sweep runs fewer workers over the same claim queue —
   same claims, same verdict, no convoy. *)
let sweep_par ~start ~meter ?workers pool (ts : Ts.t) ~max_depth =
  let width =
    match workers with
    | Some w ->
      if w < 1 then invalid_arg "Bmc.sweep: workers must be >= 1";
      w
    | None ->
      max 1 (min (Par.Pool.jobs pool) (Domain.recommended_domain_count ()))
  in
  let lp =
    Obs.Loop.start "bmc"
      ~attrs:
        [
          ("start", Obs.Int start);
          ("max_depth", Obs.Int max_depth);
          ("latches", Obs.Int ts.Ts.num_latches);
          ("inputs", Obs.Int ts.Ts.num_inputs);
          ("jobs", Obs.Int (Par.Pool.jobs pool));
          ("workers", Obs.Int width);
        ]
  in
  let best = Atomic.make max_int in
  let iter_ix = Atomic.make 0 in
  let rec record depth =
    let cur = Atomic.get best in
    if depth < cur && not (Atomic.compare_and_set best cur depth) then
      record depth
  in
  (* per-depth clean flags (each depth has exactly one prover: no
     races) for the proved-prefix computation, plus the first
     exhaustion reason *)
  let nstatus = max 0 (max_depth - start + 1) in
  let status = Array.make (max 1 nstatus) false in
  let stopped = Atomic.make None in
  let record_stop reason =
    ignore (Atomic.compare_and_set stopped None (Some reason) : bool)
  in
  (* the work queue: next depth nobody has claimed yet. Claim sizing is
     seeded from the shared best-depth atomic: once any worker has
     recorded a counterexample at depth [b], the only work that still
     matters is proving [..b-1] clean, so late claims are sized against
     that frontier instead of the cold [max_depth] — near a suspected
     counterexample region the claims shrink and the remaining workers
     refine close to the frontier rather than grabbing ranges the best
     depth already made moot. *)
  let next = Atomic.make start in
  let rec claim () =
    let lo = Atomic.get next in
    let frontier = min max_depth (Atomic.get best - 1) in
    if lo > frontier then None
    else begin
      let chunk = max 1 ((frontier - lo + 1) / (2 * width)) in
      let hi = min frontier (lo + chunk - 1) in
      if Atomic.compare_and_set next lo (hi + 1) then Some (lo, hi)
      else claim ()
    end
  in
  let worker _w () =
    let sess = new_session ts in
    let solver = Tseitin.solver sess.ctx in
    let found = ref None in
    let note depth trace =
      record depth;
      match !found with
      | Some (d, _) when d <= depth -> ()
      | _ -> found := Some (depth, trace)
    in
    let running = ref true in
    while !running do
      match claim () with
      | None -> running := false
      | Some (lo, hi) -> (
        (* depths at or past the best known counterexample are moot *)
        let hi = min hi (Atomic.get best - 1) in
        if lo > hi then running := false
        else
          match Budget.tick meter with
          | Some reason ->
            record_stop reason;
            running := false
          | None -> (
            Obs.Loop.iteration lp
              (Atomic.fetch_and_add iter_ix 1)
              ~attrs:
                (("depth", Obs.Int lo) :: ("hi", Obs.Int hi)
                :: budget_attrs meter);
            Sat.set_limits solver (Smt.Govern.limits_of_meter meter);
            let solve_range lo hi =
              let c0 = Sat.num_conflicts solver in
              let q = check_range sess ~lo ~hi in
              Budget.charge_conflicts meter (Sat.num_conflicts solver - c0);
              q
            in
            match solve_range lo hi with
            | `No_cex ->
              for d = lo to hi do
                status.(d - start) <- true
              done;
              Obs.Loop.verdict lp "no_cex"
                ~attrs:[ ("depth", Obs.Int lo); ("hi", Obs.Int hi) ]
            | `Unknown r ->
              record_stop (Smt.Govern.reason_of_sat r);
              running := false
            | `Cex trace ->
              (* refine to this claim's minimal counterexample depth;
                 the trace can land below [lo], where minimality is the
                 earlier claims' responsibility *)
              let rec refine trace =
                let d = List.length trace in
                note d trace;
                if d > lo then
                  match solve_range lo (d - 1) with
                  | `No_cex ->
                    for i = lo to d - 1 do
                      status.(i - start) <- true
                    done
                  | `Cex trace' -> refine trace'
                  | `Unknown r -> record_stop (Smt.Govern.reason_of_sat r)
              in
              refine trace))
    done;
    !found
  in
  let futures = List.init width (fun w -> Par.submit pool (worker w)) in
  let results = Par.await_all pool futures in
  let first =
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | Some (da, _), Some (db, _) -> if db < da then r else acc
        | None, r -> r
        | acc, None -> acc)
      None results
  in
  let prefix_proved depth =
    let ok = ref true in
    for i = 0 to depth - start - 1 do
      if not status.(i) then ok := false
    done;
    !ok
  in
  match first with
  | Some (depth, trace)
    when Atomic.get stopped = None || prefix_proved depth ->
    Obs.Loop.counterexample lp
      ~attrs:[ ("length", Obs.Int (List.length trace)) ];
    Obs.Loop.verdict lp "unsafe" ~attrs:[ ("depth", Obs.Int depth) ];
    Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "unsafe") ];
    Budget.Converged (Some (depth, trace))
  | _ -> (
    match Atomic.get stopped with
    | None ->
      Obs.Loop.finish lp
        ~attrs:[ ("outcome", Obs.String "safe_within_bound") ];
      Budget.Converged None
    | Some reason ->
      (* deepest depth below which every depth was proved clean *)
      let proved = ref (start - 1) in
      (try
         for i = 0 to nstatus - 1 do
           if status.(i) then proved := start + i else raise Exit
         done
       with Exit -> ());
      exhaust lp ~proved_depth:!proved reason)

(* The classic BMC loop: one persistent session, depths start..max_depth
   in turn. Each depth is one loop iteration, so a trace of a sweep
   shows where the solving time concentrates as the unrolling grows.
   The session may be warm (frames and learnt clauses from earlier
   sweeps carry over); the caller owns the claim that depths below
   [start] are already proved clean. *)
let sweep_over ~start ~meter sess ~max_depth =
  let ts = sess.ts in
  let lp =
    Obs.Loop.start "bmc"
      ~attrs:
        [
          ("start", Obs.Int start);
          ("max_depth", Obs.Int max_depth);
          ("latches", Obs.Int ts.Ts.num_latches);
          ("inputs", Obs.Int ts.Ts.num_inputs);
          ("warm_frames", Obs.Int sess.frames);
        ]
  in
  let solver = Tseitin.solver sess.ctx in
  let rec go depth i =
    if depth > max_depth then begin
      Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "safe_within_bound") ];
      Budget.Converged None
    end
    else
      match Budget.tick meter with
      | Some reason -> exhaust lp ~proved_depth:(depth - 1) reason
      | None -> (
        Obs.Loop.iteration lp i
          ~attrs:(("depth", Obs.Int depth) :: budget_attrs meter);
        Sat.set_limits solver (Smt.Govern.limits_of_meter meter);
        let c0 = Sat.num_conflicts solver in
        let q = check_depth sess ~depth in
        Budget.charge_conflicts meter (Sat.num_conflicts solver - c0);
        match q with
        | `Cex trace ->
          Obs.Loop.counterexample lp
            ~attrs:[ ("length", Obs.Int (List.length trace)) ];
          Obs.Loop.verdict lp "unsafe" ~attrs:[ ("depth", Obs.Int depth) ];
          Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "unsafe") ];
          Budget.Converged (Some (depth, trace))
        | `No_cex ->
          Obs.Loop.verdict lp "no_cex" ~attrs:[ ("depth", Obs.Int depth) ];
          go (depth + 1) (i + 1)
        | `Unknown r ->
          exhaust lp ~proved_depth:(depth - 1) (Smt.Govern.reason_of_sat r))
  in
  go start 0

let sweep ?(start = 0) ?pool ?workers ?(budget = Budget.unlimited)
    (ts : Ts.t) ~max_depth =
  let meter = Budget.start budget in
  match pool with
  | Some pool when Par.Pool.jobs pool > 1 ->
    sweep_par ~start ~meter ?workers pool ts ~max_depth
  | _ -> sweep_over ~start ~meter (new_session ts) ~max_depth

let sweep_session ?(start = 0) ?(budget = Budget.unlimited) sess ~max_depth =
  if start < 0 then invalid_arg "Bmc.sweep_session: start must be >= 0";
  sweep_over ~start ~meter:(Budget.start budget) sess ~max_depth

let session_system sess = sess.ts
let session_frames sess = sess.frames
