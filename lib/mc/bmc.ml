module Tseitin = Smt.Tseitin
module Sat = Smt.Sat
module Lit = Smt.Lit

let compile ctx ~state ~input e =
  let rec go = function
    | Ts.T -> Tseitin.true_ ctx
    | Ts.F -> Tseitin.false_ ctx
    | Ts.V i -> state.(i)
    | Ts.In i -> input.(i)
    | Ts.Not a -> Tseitin.not_ (go a)
    | Ts.And (a, b) -> Tseitin.and2 ctx (go a) (go b)
    | Ts.Or (a, b) -> Tseitin.or2 ctx (go a) (go b)
    | Ts.Xor (a, b) -> Tseitin.xor2 ctx (go a) (go b)
  in
  go e

(* replay the model's inputs and truncate the trace at the first bad
   state *)
let trace_of_inputs (ts : Ts.t) all_inputs =
  let rec truncate state steps_taken inputs_left =
    if Ts.is_bad ts state then Some (List.rev steps_taken)
    else
      match inputs_left with
      | [] -> None (* model exists, so this cannot happen *)
      | input :: rest ->
        truncate (Ts.step ts ~state ~input) (input :: steps_taken) rest
  in
  truncate ts.Ts.init [] all_inputs

type query =
  [ `Cex of bool array list | `No_cex | `Unknown of Smt.Sat.reason ]

let check ?(limits = Sat.no_limits) (ts : Ts.t) ~depth =
  Obs.with_span "bmc.check" ~attrs:[ ("depth", Obs.Int depth) ] @@ fun () ->
  let ctx = Tseitin.create () in
  let state0 =
    Array.map (fun b -> Tseitin.of_bool ctx b) ts.Ts.init
  in
  (* bad at step 0..depth; inputs.(t) drives step t -> t+1 *)
  let inputs = ref [] in
  let bads = ref [ compile ctx ~state:state0 ~input:[||] ts.Ts.bad ] in
  let state = ref state0 in
  for _t = 1 to depth do
    let input = Array.init ts.Ts.num_inputs (fun _ -> Tseitin.fresh ctx) in
    inputs := input :: !inputs;
    let next =
      Array.map (fun e -> compile ctx ~state:!state ~input e) ts.Ts.next
    in
    state := next;
    bads := compile ctx ~state:next ~input:[||] ts.Ts.bad :: !bads
  done;
  let inputs = Array.of_list (List.rev !inputs) in
  let bads = List.rev !bads in
  Tseitin.assert_lit ctx (Tseitin.or_list ctx bads);
  Sat.set_limits (Tseitin.solver ctx) limits;
  match Sat.solve_with_assumptions (Tseitin.solver ctx) [] with
  | Sat.Unsat -> `No_cex
  | Sat.Unknown reason -> `Unknown reason
  | Sat.Sat -> (
    let value l = Tseitin.lit_of_model ctx l in
    let all_inputs =
      Array.to_list (Array.map (fun inp -> Array.map value inp) inputs)
    in
    match trace_of_inputs ts all_inputs with
    | Some trace -> `Cex trace
    | None -> `No_cex)

(* ---- persistent incremental session ---- *)

(* The unrolled transition relation is monotone in the depth: frame t's
   wires never change once built. A session therefore keeps one Tseitin
   context alive, extends the unrolling lazily, and per query only
   asserts "some bad within the bound" inside a push/pop scope. Repeated
   queries at growing depths — the shape of both BMC loops and CEGAR's
   spuriousness checks — reuse every frame and every learned clause. *)
type session = {
  ts : Ts.t;
  ctx : Tseitin.t;
  mutable frames : int;  (* steps unrolled so far *)
  mutable state : Lit.t array;  (* state wires after [frames] steps *)
  mutable inputs_rev : Lit.t array list;
  mutable bads_rev : Lit.t list;  (* frames+1 entries, newest first *)
}

let new_session (ts : Ts.t) =
  let ctx = Tseitin.create () in
  let state0 = Array.map (fun b -> Tseitin.of_bool ctx b) ts.Ts.init in
  {
    ts;
    ctx;
    frames = 0;
    state = state0;
    inputs_rev = [];
    bads_rev = [ compile ctx ~state:state0 ~input:[||] ts.Ts.bad ];
  }

let extend sess depth =
  while sess.frames < depth do
    let input =
      Array.init sess.ts.Ts.num_inputs (fun _ -> Tseitin.fresh sess.ctx)
    in
    sess.inputs_rev <- input :: sess.inputs_rev;
    let next =
      Array.map
        (fun e -> compile sess.ctx ~state:sess.state ~input e)
        sess.ts.Ts.next
    in
    sess.state <- next;
    sess.bads_rev <-
      compile sess.ctx ~state:next ~input:[||] sess.ts.Ts.bad :: sess.bads_rev;
    sess.frames <- sess.frames + 1
  done

let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l)

let rec take n l =
  if n <= 0 then []
  else match l with [] -> [] | x :: rest -> x :: take (n - 1) rest

let session_conflicts sess = Sat.num_conflicts (Tseitin.solver sess.ctx)

let check_depth ?limits sess ~depth =
  Obs.with_span "bmc.check_depth" ~attrs:[ ("depth", Obs.Int depth) ]
  @@ fun () ->
  extend sess depth;
  let ctx = sess.ctx in
  Option.iter (Sat.set_limits (Tseitin.solver ctx)) limits;
  let bads = List.rev (drop (sess.frames - depth) sess.bads_rev) in
  Tseitin.push ctx;
  Tseitin.assert_lit ctx (Tseitin.or_list ctx bads);
  let result =
    match Sat.solve_with_assumptions (Tseitin.solver ctx) [] with
    | Sat.Unsat -> `No_cex
    | Sat.Unknown reason -> `Unknown reason
    | Sat.Sat -> (
      let value l = Tseitin.lit_of_model ctx l in
      let all_inputs =
        List.map
          (fun inp -> Array.map value inp)
          (take depth (List.rev sess.inputs_rev))
      in
      match trace_of_inputs sess.ts all_inputs with
      | Some trace -> `Cex trace
      | None -> `No_cex)
  in
  Tseitin.pop ctx;
  result

(* Parallel sweep: depths are striped across the pool's concurrency
   units, each stripe owning its own persistent incremental session over
   its residue class (depth = start + w, start + w + jobs, ...), so
   frame reuse and learned clauses survive within a stripe just as they
   do across the whole sequential sweep. A shared atomic records the
   shallowest counterexample depth found so far; stripes skip depths at
   or past it. Any recorded depth is a genuine counterexample depth, so
   every depth below the minimal one is still checked by its owner —
   the reported depth is therefore the same minimal depth the
   sequential sweep finds. Only the concrete trace can differ from the
   sequential one (each stripe's solver sees its own query history,
   though that history is itself deterministic below the minimal
   counterexample depth). *)
type partial = {
  proved_depth : int;
  reason : Budget.reason;
}

(* the budget_exhausted loop event, then finish: terminal for the loop *)
let exhaust lp ~proved_depth reason =
  Obs.Loop.budget_exhausted lp
    ~reason:(Budget.reason_to_string reason)
    ~attrs:[ ("proved_depth", Obs.Int proved_depth) ];
  Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "exhausted") ];
  Budget.Exhausted { proved_depth; reason }

let sweep_par ~start ~meter pool (ts : Ts.t) ~max_depth =
  let width = Par.Pool.jobs pool in
  let lp =
    Obs.Loop.start "bmc"
      ~attrs:
        [
          ("start", Obs.Int start);
          ("max_depth", Obs.Int max_depth);
          ("latches", Obs.Int ts.Ts.num_latches);
          ("inputs", Obs.Int ts.Ts.num_inputs);
          ("jobs", Obs.Int width);
        ]
  in
  let best = Atomic.make max_int in
  let iter_ix = Atomic.make 0 in
  let rec record depth =
    let cur = Atomic.get best in
    if depth < cur && not (Atomic.compare_and_set best cur depth) then
      record depth
  in
  (* per-depth clean flags (distinct indices per stripe: no races) for
     the proved-prefix computation, plus the first exhaustion reason *)
  let nstatus = max 0 (max_depth - start + 1) in
  let status = Array.make (max 1 nstatus) false in
  let stopped = Atomic.make None in
  let record_stop reason =
    ignore (Atomic.compare_and_set stopped None (Some reason) : bool)
  in
  let stripe w () =
    let sess = new_session ts in
    let solver = Tseitin.solver sess.ctx in
    let found = ref None in
    let d = ref (start + w) in
    while !d <= max_depth && !d < Atomic.get best do
      let depth = !d in
      match Budget.tick meter with
      | Some reason ->
        record_stop reason;
        d := max_depth + 1
      | None -> (
        Obs.Loop.iteration lp
          (Atomic.fetch_and_add iter_ix 1)
          ~attrs:[ ("depth", Obs.Int depth) ];
        Sat.set_limits solver (Smt.Govern.limits_of_meter meter);
        let c0 = Sat.num_conflicts solver in
        let q = check_depth sess ~depth in
        Budget.charge_conflicts meter (Sat.num_conflicts solver - c0);
        match q with
        | `Cex trace ->
          found := Some (depth, trace);
          record depth;
          (* deeper depths in this stripe are moot: a counterexample at
             [depth] subsumes them *)
          d := max_depth + 1
        | `No_cex ->
          status.(depth - start) <- true;
          Obs.Loop.verdict lp "no_cex" ~attrs:[ ("depth", Obs.Int depth) ];
          d := depth + width
        | `Unknown r ->
          record_stop (Smt.Govern.reason_of_sat r);
          d := max_depth + 1)
    done;
    !found
  in
  let futures = List.init width (fun w -> Par.submit pool (stripe w)) in
  let results = Par.await_all pool futures in
  let first =
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | Some (da, _), Some (db, _) -> if db < da then r else acc
        | None, r -> r
        | acc, None -> acc)
      None results
  in
  match first with
  | Some (depth, trace) ->
    Obs.Loop.counterexample lp
      ~attrs:[ ("length", Obs.Int (List.length trace)) ];
    Obs.Loop.verdict lp "unsafe" ~attrs:[ ("depth", Obs.Int depth) ];
    Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "unsafe") ];
    Budget.Converged (Some (depth, trace))
  | None -> (
    match Atomic.get stopped with
    | None ->
      Obs.Loop.finish lp
        ~attrs:[ ("outcome", Obs.String "safe_within_bound") ];
      Budget.Converged None
    | Some reason ->
      (* deepest depth below which every depth was proved clean; with
         striping, depths past a stalled stripe's frontier don't count
         even if their owner got further *)
      let proved = ref (start - 1) in
      (try
         for i = 0 to nstatus - 1 do
           if status.(i) then proved := start + i else raise Exit
         done
       with Exit -> ());
      exhaust lp ~proved_depth:!proved reason)

(* The classic BMC loop: one persistent session, depths 0..max_depth in
   turn. Each depth is one loop iteration, so a trace of a sweep shows
   where the solving time concentrates as the unrolling grows. *)
let sweep_seq ~start ~meter (ts : Ts.t) ~max_depth =
  let lp =
    Obs.Loop.start "bmc"
      ~attrs:
        [
          ("start", Obs.Int start);
          ("max_depth", Obs.Int max_depth);
          ("latches", Obs.Int ts.Ts.num_latches);
          ("inputs", Obs.Int ts.Ts.num_inputs);
        ]
  in
  let sess = new_session ts in
  let solver = Tseitin.solver sess.ctx in
  let rec go depth i =
    if depth > max_depth then begin
      Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "safe_within_bound") ];
      Budget.Converged None
    end
    else
      match Budget.tick meter with
      | Some reason -> exhaust lp ~proved_depth:(depth - 1) reason
      | None -> (
        Obs.Loop.iteration lp i ~attrs:[ ("depth", Obs.Int depth) ];
        Sat.set_limits solver (Smt.Govern.limits_of_meter meter);
        let c0 = Sat.num_conflicts solver in
        let q = check_depth sess ~depth in
        Budget.charge_conflicts meter (Sat.num_conflicts solver - c0);
        match q with
        | `Cex trace ->
          Obs.Loop.counterexample lp
            ~attrs:[ ("length", Obs.Int (List.length trace)) ];
          Obs.Loop.verdict lp "unsafe" ~attrs:[ ("depth", Obs.Int depth) ];
          Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "unsafe") ];
          Budget.Converged (Some (depth, trace))
        | `No_cex ->
          Obs.Loop.verdict lp "no_cex" ~attrs:[ ("depth", Obs.Int depth) ];
          go (depth + 1) (i + 1)
        | `Unknown r ->
          exhaust lp ~proved_depth:(depth - 1) (Smt.Govern.reason_of_sat r))
  in
  go start 0

let sweep ?(start = 0) ?pool ?(budget = Budget.unlimited) (ts : Ts.t)
    ~max_depth =
  let meter = Budget.start budget in
  match pool with
  | Some pool when Par.Pool.jobs pool > 1 ->
    sweep_par ~start ~meter pool ts ~max_depth
  | _ -> sweep_seq ~start ~meter ts ~max_depth
