type result =
  | Safe of {
      visible : int list;
      iterations : int;
      abstract_latches : int;
    }
  | Unsafe of {
      trace : bool array list;
      iterations : int;
    }

type refinement =
  | Most_referenced
  | Decision_tree of { samples : int; seed : int }

(* states reachable by random walks, as negative examples *)
let sample_reachable (ts : Ts.t) ~samples ~seed =
  let rng = Random.State.make [| seed |] in
  let acc = ref [] in
  for _ = 1 to samples do
    let state = ref (Array.copy ts.Ts.init) in
    let steps = Random.State.int rng 32 in
    for _ = 1 to steps do
      let input =
        Array.init ts.Ts.num_inputs (fun _ -> Random.State.bool rng)
      in
      state := Ts.step ts ~state:!state ~input
    done;
    acc := Array.copy !state :: !acc
  done;
  !acc

(* models of the bad predicate, as positive examples *)
let sample_bad (ts : Ts.t) ~samples =
  let ctx = Smt.Tseitin.create () in
  let latch = Array.init ts.Ts.num_latches (fun _ -> Smt.Tseitin.fresh ctx) in
  Smt.Tseitin.assert_lit ctx (Bmc.compile ctx ~state:latch ~input:[||] ts.Ts.bad);
  let sat = Smt.Tseitin.solver ctx in
  let acc = ref [] in
  (try
     for _ = 1 to samples do
       match Smt.Sat.solve_with_assumptions sat [] with
       (* Unknown: stop sampling — fewer positive examples only weakens
          the learned refinement hint, never soundness *)
       | Smt.Sat.Unsat | Smt.Sat.Unknown _ -> raise Exit
       | Smt.Sat.Sat ->
         let model =
           Array.map (fun l -> Smt.Tseitin.lit_of_model ctx l) latch
         in
         acc := model :: !acc;
         (* block this model *)
         Smt.Tseitin.assert_clause ctx
           (Array.to_list
              (Array.mapi
                 (fun i l -> if model.(i) then Smt.Lit.neg l else l)
                 latch))
     done
   with Exit -> ());
  !acc

(* the hidden latch that best separates reachable from bad states, by
   decision-tree induction (Gupta-style learning for refinement) *)
let decision_tree_candidates (ts : Ts.t) ~visible ~samples ~seed =
  let reachable = sample_reachable ts ~samples ~seed in
  let bad = sample_bad ts ~samples in
  if bad = [] then []
  else begin
    let examples =
      List.map (fun s -> (s, false)) reachable
      @ List.map (fun s -> (s, true)) bad
    in
    let tree = Sciduction.Dtree.learn ~nfeatures:ts.Ts.num_latches examples in
    List.filter
      (fun f -> not (List.mem f visible))
      (Sciduction.Dtree.features_used tree)
  end

let bad_support (ts : Ts.t) =
  let latches = Array.make ts.Ts.num_latches false in
  let inputs = Array.make (max ts.Ts.num_inputs 1) false in
  Ts.support ts.Ts.bad ~latches ~inputs;
  let acc = ref [] in
  for i = ts.Ts.num_latches - 1 downto 0 do
    if latches.(i) then acc := i :: !acc
  done;
  !acc

type partial = {
  visible : int list;
  iterations : int;
  reason : Budget.reason;
}

let verify ?initial_visible ?(max_iterations = 64)
    ?(refinement = Most_referenced) ?(reuse = true)
    ?(budget = Budget.unlimited) (ts : Ts.t) =
  let initial = Option.value initial_visible ~default:(bad_support ts) in
  let meter = Budget.start budget in
  let lp =
    Obs.Loop.start "cegar"
      ~attrs:
        [
          ("latches", Obs.Int ts.Ts.num_latches);
          ("inputs", Obs.Int ts.Ts.num_inputs);
          ("reuse", Obs.Bool reuse);
        ]
  in
  let exhaust ~visible ~iterations reason =
    Obs.Loop.budget_exhausted lp
      ~reason:(Budget.reason_to_string reason)
      ~attrs:[ ("iterations", Obs.Int iterations) ];
    Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "exhausted") ];
    Budget.Exhausted { visible; iterations; reason }
  in
  (* one BMC session answers every spuriousness check of the loop; with
     [~reuse:false] each check rebuilds its solver (benchmark baseline) *)
  let bmc = if reuse then Some (Bmc.new_session ts) else None in
  let concretize ~depth =
    let limits = Smt.Govern.limits_of_meter meter in
    match bmc with
    | Some sess ->
      let c0 = Bmc.session_conflicts sess in
      let q = Bmc.check_depth ~limits sess ~depth in
      Budget.charge_conflicts meter (Bmc.session_conflicts sess - c0);
      q
    | None ->
      (* fresh solver per check: its conflicts are only visible through
         the process-wide registry *)
      let g0 = (Smt.Sat.global_stats ()).Smt.Sat.g_conflicts in
      let q = Bmc.check ~limits ts ~depth in
      Budget.charge_conflicts meter
        ((Smt.Sat.global_stats ()).Smt.Sat.g_conflicts - g0);
      q
  in
  let rec loop visible iterations =
    match
      if iterations >= max_iterations then Some Budget.Iterations
      else Budget.tick meter
    with
    | Some reason -> exhaust ~visible ~iterations reason
    | None -> real_loop visible iterations
  and real_loop visible iterations =
    Obs.Loop.iteration lp iterations
      ~attrs:[ ("visible", Obs.Int (List.length visible)) ];
    let a = Abstraction.localize ts ~visible in
    (* the abstraction is this loop's candidate: a localization that may
       or may not prove the property *)
    Obs.Loop.candidate lp
      ~attrs:[ ("visible", Obs.Int (List.length visible)) ];
    match Reach.check a.Abstraction.abstract with
    | Reach.Safe _ ->
      Obs.Loop.verdict lp "abstract_safe";
      Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "safe") ];
      Budget.Converged
        (Safe
           {
             visible;
             iterations = iterations + 1;
             abstract_latches = List.length visible;
           })
    | Reach.Cex abstract_trace -> (
      let depth = List.length abstract_trace in
      Obs.Loop.verdict lp "abstract_cex" ~attrs:[ ("depth", Obs.Int depth) ];
      match concretize ~depth with
      | `Cex trace ->
        assert (Reach.replay ts trace);
        Obs.Loop.verdict lp "concrete";
        Obs.Loop.finish lp ~attrs:[ ("outcome", Obs.String "unsafe") ];
        Budget.Converged (Unsafe { trace; iterations = iterations + 1 })
      | `Unknown r ->
        (* without the spuriousness verdict the loop can neither report
           Unsafe nor refine; stop with the abstraction proved so far *)
        exhaust ~visible ~iterations:(iterations + 1)
          (Smt.Govern.reason_of_sat r)
      | `No_cex -> (
        (* abstract counterexample refuted by BMC: a spurious cex is the
           counterexample that drives refinement *)
        Obs.Loop.counterexample lp ~attrs:[ ("depth", Obs.Int depth) ];
        (* pick a hidden latch to reveal *)
        let hidden_all =
          List.filter
            (fun i -> not (List.mem i visible))
            (List.init ts.Ts.num_latches Fun.id)
        in
        let strategy_candidates =
          match refinement with
          | Most_referenced -> Abstraction.referenced_hidden a
          | Decision_tree { samples; seed } ->
            decision_tree_candidates ts ~visible ~samples
              ~seed:(seed + iterations)
        in
        let candidates =
          match strategy_candidates with [] -> hidden_all | cs -> cs
        in
        match candidates with
        | [] ->
          Obs.Loop.finish lp
            ~attrs:[ ("outcome", Obs.String "refinement_stuck") ];
          failwith "Cegar.verify: spurious counterexample but nothing to refine"
        | pick :: _ -> loop (List.sort compare (pick :: visible)) (iterations + 1)))
  in
  loop initial 0
