type t = {
  iterations : int option;
  conflicts : int option;
  seconds : float option;
  cancel : (unit -> bool) option;
}

let unlimited =
  { iterations = None; conflicts = None; seconds = None; cancel = None }

let limited ?iterations ?conflicts ?seconds ?cancel () =
  { iterations; conflicts; seconds; cancel }

let is_unlimited b =
  b.iterations = None && b.conflicts = None && b.seconds = None
  && b.cancel = None

let pp ppf b =
  if is_unlimited b then Format.fprintf ppf "unlimited"
  else begin
    let sep = ref "" in
    let field name pp_v v =
      Format.fprintf ppf "%s%s=%a" !sep name pp_v v;
      sep := ","
    in
    Option.iter (field "iterations" Format.pp_print_int) b.iterations;
    Option.iter (field "conflicts" Format.pp_print_int) b.conflicts;
    Option.iter (fun s -> field "seconds" Format.pp_print_float s) b.seconds;
    Option.iter
      (fun _ -> field "cancellable" Format.pp_print_bool true)
      b.cancel
  end

type reason =
  | Iterations
  | Conflicts
  | Deadline
  | Solver
  | Cancelled

let reason_to_string = function
  | Iterations -> "iterations"
  | Conflicts -> "conflicts"
  | Deadline -> "deadline"
  | Solver -> "solver"
  | Cancelled -> "cancelled"

type ('a, 'p) outcome =
  | Converged of 'a
  | Exhausted of 'p

type meter = {
  b : t;
  iters : int Atomic.t;
  confl : int Atomic.t;
  dl : float option; (* absolute, fixed at [start] *)
}

let start b =
  {
    b;
    iters = Atomic.make 0;
    confl = Atomic.make 0;
    dl = Option.map (fun s -> Unix.gettimeofday () +. s) b.seconds;
  }

let budget m = m.b

let check m =
  match m.b.cancel with
  | Some cancelled when cancelled () -> Some Cancelled
  | _ -> (
    match m.b.iterations with
    | Some cap when Atomic.get m.iters >= cap -> Some Iterations
    | _ -> (
      match m.b.conflicts with
      | Some cap when Atomic.get m.confl >= cap -> Some Conflicts
      | _ -> (
        match m.dl with
        | Some d when Unix.gettimeofday () > d -> Some Deadline
        | _ -> None)))

let tick m =
  ignore (Atomic.fetch_and_add m.iters 1);
  check m

let charge_conflicts m n = if n > 0 then ignore (Atomic.fetch_and_add m.confl n)
let used_iterations m = Atomic.get m.iters
let used_conflicts m = Atomic.get m.confl

let remaining_conflicts m =
  Option.map (fun cap -> max 0 (cap - Atomic.get m.confl)) m.b.conflicts

let deadline m = m.dl
let cancel_hook m = m.b.cancel
