(** Resource budgets for counterexample-guided loops.

    Every sciduction loop alternates inductive guesses with calls into
    the deductive engine, and neither side is bounded a priori: a loop
    either converges or runs forever. A {!t} caps a run along three
    axes — loop iterations, a pooled allowance of SAT conflicts shared
    by every solver call the loop makes, and a wall-clock deadline —
    and a {!meter} meters a single run against it. Loops that run out
    return [Exhausted] with the best partial answer accumulated so far
    (see {!outcome}) instead of diverging or raising.

    Iteration and conflict accounting is deterministic: the same query
    sequence exhausts at the same point on every run. Only the deadline
    is inherently wall-clock dependent. *)

type t = {
  iterations : int option;  (** max loop iterations, [None] = unlimited *)
  conflicts : int option;
      (** pooled SAT-conflict allowance across all solver calls *)
  seconds : float option;  (** wall-clock allowance for the whole run *)
  cancel : (unit -> bool) option;
      (** cooperative cancellation hook: once it answers [true], the
          loop stops at its next budget check (and, through
          [Smt.Govern.limits_of_meter], any in-flight solver call stops
          at its next poll) with reason {!Cancelled}. Must be cheap and
          safe to call from any domain — an [Atomic.get] like
          [Par.Cancel.is_set]. The verification server cancels jobs on
          client disconnect through this. *)
}

val unlimited : t
(** No caps on any axis; metering against it never exhausts. *)

val limited :
  ?iterations:int ->
  ?conflicts:int ->
  ?seconds:float ->
  ?cancel:(unit -> bool) ->
  unit ->
  t

val is_unlimited : t -> bool

val pp : Format.formatter -> t -> unit

(** Why a run stopped short of convergence. *)
type reason =
  | Iterations  (** the iteration cap was reached *)
  | Conflicts  (** the pooled conflict allowance ran dry *)
  | Deadline  (** the wall-clock deadline passed *)
  | Solver
      (** the deductive engine answered Unknown for a non-budget reason
          (cooperative interrupt, injected fault) *)
  | Cancelled
      (** the budget's [cancel] hook fired between solver calls. A
          cancellation observed {e inside} a solver call surfaces as
          [Solver] instead (the solver only reports a generic
          interrupt); callers that own the hook — the server — check it
          directly to classify the outcome. *)

val reason_to_string : reason -> string

(** A budgeted loop either converges to its usual result or stops with
    the best partial answer it had when the budget ran out. *)
type ('a, 'p) outcome =
  | Converged of 'a
  | Exhausted of 'p

(** {2 Metering a run} *)

type meter
(** Mutable per-run accounting against one {!t}. Safe to share across
    domains (counters are atomic); the deadline is fixed at
    {!start}. *)

val start : t -> meter

val budget : meter -> t

val tick : meter -> reason option
(** Charge one loop iteration, then report the first exhausted axis if
    any (iterations, then conflicts, then deadline). The iteration that
    trips the cap is {e not} run: callers check before doing the work. *)

val check : meter -> reason option
(** Like {!tick} without charging an iteration. *)

val charge_conflicts : meter -> int -> unit
(** Drain part of the pooled conflict allowance (a per-solver-call
    delta). *)

val used_iterations : meter -> int
val used_conflicts : meter -> int

val remaining_conflicts : meter -> int option
(** Conflicts left in the pool ([None] = unlimited); never negative. *)

val deadline : meter -> float option
(** Absolute deadline ([Unix.gettimeofday] scale) fixed when the meter
    started; [None] = no deadline. *)

val cancel_hook : meter -> (unit -> bool) option
(** The budget's cancellation hook, for bridges that install it on
    solvers ([Smt.Govern.limits_of_meter]). *)
