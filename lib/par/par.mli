(** Domain-based parallel execution for the counterexample-guided loops.

    A fixed-size pool of OCaml 5 domains behind a work queue, with
    chunked {!map}/{!iter}, structured {!await_all}, cooperative
    {!Cancel} tokens and exception funneling back to the submitter. The
    pool is the only place the repository spawns domains; everything
    else takes an optional [?pool] argument and stays sequential (and
    bit-for-bit identical to the pre-parallel behaviour) when it is
    omitted.

    Tasks must be self-contained: they may use the {!Obs} registry
    (domain-safe) and build their own solvers, but must not share
    mutable state with other tasks, and must not [await] from inside a
    task (workers never block on other tasks, which keeps the pool
    deadlock-free). *)

exception Cancelled
(** Raised by {!Cancel.check} inside a task whose token has been set. *)

(** Cooperative cancellation tokens: a racing task polls its token and
    stops early once a sibling has produced the answer. *)
module Cancel : sig
  type t

  val create : unit -> t

  val none : t
  (** A shared token that is never set; do not [set] it. *)

  val set : t -> unit
  val is_set : t -> bool

  val check : t -> unit
  (** Raise {!Cancelled} if the token is set. *)
end

module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** A pool with [jobs] units of concurrency (default
      [Domain.recommended_domain_count ()]): [jobs - 1] worker domains
      plus the submitter, which executes queued tasks while it waits in
      [await]. [jobs = 1] spawns no domains at all — every task runs
      sequentially on the submitter, in submission order.

      If a [Domain.spawn] fails mid-creation (resource exhaustion, or
      an injected [Fault.Domain_spawn]), the workers that did start are
      torn down and joined, and the returned pool is sequential
      ([jobs = 1]) — degraded, never leaking domains. *)

  val jobs : t -> int

  val shutdown : t -> unit
  (** Drain nothing: signal the workers to exit after the tasks already
      running and join them. Idempotent. Submitting to a shut-down pool
      raises [Invalid_argument]. *)

  val with_pool : ?jobs:int -> (t -> 'a) -> 'a
  (** [create], run, [shutdown] (on exceptions too). *)
end

val parse_jobs : string -> (int, string) result
(** Parse a user-supplied jobs count: a positive integer (surrounding
    whitespace tolerated). The error is a human-readable reason —
    non-integer, or below 1 — without any prefix, so callers can
    attribute it to their own flag or variable name. *)

val env_jobs : ?default:int -> unit -> int
(** Concurrency requested by the [SCIDUCTION_JOBS] environment variable,
    or [default] (itself defaulting to 1) when unset or unparsable.
    Lets CI exercise the whole test suite under a pool without every
    test site growing a flag. *)

val env_jobs_exn : ?default:int -> unit -> int
(** Like {!env_jobs} but strict: a set-but-invalid [SCIDUCTION_JOBS]
    raises [Failure] (with the {!parse_jobs} reason) instead of being
    silently replaced by the default. Front-ends that own the user
    interaction (the CLI) use this to turn a typo into a diagnostic
    rather than a surprising sequential run. *)

(** {1 Futures} *)

type 'a future

val submit : Pool.t -> (unit -> 'a) -> 'a future
(** Enqueue a task. Its exceptions are caught and re-raised by
    {!await}. *)

val await : Pool.t -> 'a future -> 'a
(** Block until the task settles, executing other queued tasks of the
    pool while waiting. Re-raises the task's exception. *)

val await_all : Pool.t -> 'a future list -> 'a list
(** Await every future (so no task is left running), then return the
    results in order — or re-raise the {e first} failure after all have
    settled. *)

(** {1 Fan-out combinators} *)

val map : ?chunk:int -> Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], in [chunk]-sized blocks (default: enough
    blocks for 4 per concurrency unit). Results land in input order;
    exceptions funnel to the submitter. *)

val iter : ?chunk:int -> Pool.t -> ('a -> unit) -> 'a array -> unit

val map_list : Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], one task per element (use for coarse-grained
    elements like whole solver runs). *)

val first_some : Pool.t -> (Cancel.t -> 'a option) list -> 'a option
(** Race the thunks: each receives a shared token, set as soon as any
    thunk returns [Some]. The first winner's value is returned after
    every thunk has stopped; losers' {!Cancelled} exceptions are
    swallowed, any other exception is re-raised only when nobody won.
    The portfolio front-end in [Smt.Portfolio] is the main client. *)
