exception Cancelled

module Cancel = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let none = Atomic.make false
  let set t = Atomic.set t true
  let is_set t = Atomic.get t
  let check t = if Atomic.get t then raise Cancelled
end

(* Scheduler telemetry. Pool tasks are coarse — a whole solver run, a
   map chunk — so a gauge store on each queue transition and two clock
   reads per task are noise next to the task body; nothing here touches
   a solver's inner loop. *)
let m_tasks_submitted = Obs.Metrics.counter "par.tasks_submitted"
let m_tasks_completed = Obs.Metrics.counter "par.tasks_completed"

let m_tasks_stolen = Obs.Metrics.counter "par.tasks_stolen"
(* queued tasks the submitter ran itself while waiting in [await] *)

let m_spawn_fallback = Obs.Metrics.counter "par.spawn_fallback"
let m_queue_depth = Obs.Metrics.gauge "par.queue_depth"
let m_worker_busy = Obs.Metrics.histogram "par.worker_busy_us"
let m_worker_idle = Obs.Metrics.histogram "par.worker_idle_us"

let note_queue_depth q =
  Obs.Metrics.set_gauge m_queue_depth (float_of_int (Queue.length q))

let observe_us h seconds = Obs.Metrics.observe h (int_of_float (1e6 *. seconds))

(* A job is a closure that runs a task and stores its outcome in the
   task's future; the queue never sees result types. *)
type job = unit -> unit

type pool = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  jobs : int;
  mutable workers : unit Domain.t list;
  mutable closing : bool;
}

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fut_lock : Mutex.t;
  settled : Condition.t;
  mutable state : 'a state;
  mutable orphan : job option;
      (* set when an injected Pool_submit fault "loses" the job in
         flight: it was never queued, and the first awaiter runs it
         inline instead (worker death + submitter-side recovery) *)
}

(* Pop a job if one is queued. Blocking variant used by workers only;
   returns None when the pool is closing and the queue has drained. *)
let try_pop p =
  Mutex.lock p.lock;
  let job = if Queue.is_empty p.queue then None else Some (Queue.pop p.queue) in
  (match job with Some _ -> note_queue_depth p.queue | None -> ());
  Mutex.unlock p.lock;
  job

let pop_blocking p =
  Mutex.lock p.lock;
  let rec wait () =
    if not (Queue.is_empty p.queue) then Some (Queue.pop p.queue)
    else if p.closing then None
    else begin
      Condition.wait p.nonempty p.lock;
      wait ()
    end
  in
  let job = wait () in
  (match job with Some _ -> note_queue_depth p.queue | None -> ());
  Mutex.unlock p.lock;
  job

let worker_loop p =
  let rec go () =
    let idle_from = Unix.gettimeofday () in
    match pop_blocking p with
    | None -> ()
    | Some job ->
      let busy_from = Unix.gettimeofday () in
      observe_us m_worker_idle (busy_from -. idle_from);
      job ();
      observe_us m_worker_busy (Unix.gettimeofday () -. busy_from);
      go ()
  in
  go ()

module Pool = struct
  type t = pool

  let mk jobs =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      jobs;
      workers = [];
      closing = false;
    }

  let spawn_worker p =
    if Fault.fire Fault.Domain_spawn then raise Fault.Injected;
    Domain.spawn (fun () -> worker_loop p)

  let create ?jobs () =
    let jobs =
      match jobs with
      | Some n ->
        if n < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
        n
      | None -> Domain.recommended_domain_count ()
    in
    let p = mk jobs in
    let spawned = ref [] in
    match
      for _ = 2 to jobs do
        spawned := spawn_worker p :: !spawned
      done
    with
    | () ->
      p.workers <- List.rev !spawned;
      p
    | exception _ ->
      (* a spawn failed mid-creation: tear down the workers that did
         start instead of leaking domains, then degrade to a sequential
         pool (jobs=1), which every ?pool fan-out treats as "run
         sequentially" *)
      Mutex.lock p.lock;
      p.closing <- true;
      Condition.broadcast p.nonempty;
      Mutex.unlock p.lock;
      List.iter Domain.join !spawned;
      Obs.Metrics.incr m_spawn_fallback;
      mk 1

  let jobs p = p.jobs

  let shutdown p =
    Mutex.lock p.lock;
    let ws = p.workers in
    p.closing <- true;
    p.workers <- [];
    Condition.broadcast p.nonempty;
    Mutex.unlock p.lock;
    List.iter Domain.join ws

  let with_pool ?jobs f =
    let p = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
end

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | None ->
    Error (Printf.sprintf "invalid jobs count %S (expected an integer)" s)
  | Some n when n < 1 -> Error (Printf.sprintf "jobs must be >= 1 (got %d)" n)
  | Some n -> Ok n

let env_jobs ?(default = 1) () =
  match Sys.getenv_opt "SCIDUCTION_JOBS" with
  | None -> default
  | Some s -> ( match parse_jobs s with Ok n -> n | Error _ -> default)

let env_jobs_exn ?(default = 1) () =
  match Sys.getenv_opt "SCIDUCTION_JOBS" with
  | None -> default
  | Some s -> (
    match parse_jobs s with
    | Ok n -> n
    | Error msg -> failwith ("SCIDUCTION_JOBS: " ^ msg))

let settle fut st =
  Mutex.lock fut.fut_lock;
  fut.state <- st;
  Condition.broadcast fut.settled;
  Mutex.unlock fut.fut_lock

let submit p task =
  let fut =
    { fut_lock = Mutex.create (); settled = Condition.create ();
      state = Pending; orphan = None }
  in
  let job () =
    (match task () with
    | v -> settle fut (Done v)
    | exception e -> settle fut (Failed (e, Printexc.get_raw_backtrace ())));
    Obs.Metrics.incr m_tasks_completed
  in
  if Fault.fire Fault.Pool_submit then begin
    (* injected worker death: the job is lost in flight (never queued);
       the first awaiter recovers it inline *)
    Obs.Metrics.incr m_tasks_submitted;
    fut.orphan <- Some job;
    fut
  end
  else begin
    Mutex.lock p.lock;
    if p.closing then begin
      Mutex.unlock p.lock;
      invalid_arg "Par.submit: pool is shut down"
    end;
    Queue.push job p.queue;
    Obs.Metrics.incr m_tasks_submitted;
    note_queue_depth p.queue;
    Condition.signal p.nonempty;
    Mutex.unlock p.lock;
    fut
  end

let settled_value fut =
  match fut.state with
  | Done v -> Some (Ok v)
  | Failed (e, bt) -> Some (Error (e, bt))
  | Pending -> None

(* The submitter helps drain the queue while its future is pending, so
   a jobs=1 pool degenerates to plain sequential execution and larger
   pools never idle the calling domain. Only when the queue is empty
   (our task is running on a worker) do we block on the future. *)
let claim_orphan fut =
  Mutex.lock fut.fut_lock;
  let j = fut.orphan in
  fut.orphan <- None;
  Mutex.unlock fut.fut_lock;
  j

let await p fut =
  (* recover a job lost to an injected submit fault: run it inline, so
     the future settles with the task's real outcome and concurrent
     waiters wake as usual *)
  (match claim_orphan fut with Some job -> job () | None -> ());
  let rec loop () =
    Mutex.lock fut.fut_lock;
    let v = settled_value fut in
    Mutex.unlock fut.fut_lock;
    match v with
    | Some r -> r
    | None -> (
      match try_pop p with
      | Some job ->
        Obs.Metrics.incr m_tasks_stolen;
        job ();
        loop ()
      | None ->
        Mutex.lock fut.fut_lock;
        while settled_value fut = None do
          Condition.wait fut.settled fut.fut_lock
        done;
        let r = Option.get (settled_value fut) in
        Mutex.unlock fut.fut_lock;
        r)
  in
  match loop () with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let await_all p futs =
  (* settle everything before raising, so a failure in one task never
     leaves siblings running behind the caller's back *)
  let settled =
    List.map
      (fun fut ->
        match await p fut with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      futs
  in
  List.map
    (function
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    settled

let default_chunk p n = max 1 (n / (Pool.jobs p * 4))

let map ?chunk p f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c ->
        if c < 1 then invalid_arg "Par.map: chunk must be >= 1";
        c
      | None -> default_chunk p n
    in
    let out = Array.make n None in
    let rec spawn lo acc =
      if lo >= n then acc
      else begin
        let hi = min n (lo + chunk) in
        let fut =
          submit p (fun () ->
              for i = lo to hi - 1 do
                out.(i) <- Some (f xs.(i))
              done)
        in
        spawn hi (fut :: acc)
      end
    in
    let futs = List.rev (spawn 0 []) in
    ignore (await_all p futs : unit list);
    Array.map
      (function
        | Some v -> v
        | None -> assert false)
      out
  end

let iter ?chunk p f xs = ignore (map ?chunk p f xs : unit array)

let map_list p f xs =
  let futs = List.map (fun x -> submit p (fun () -> f x)) xs in
  await_all p futs

let first_some p thunks =
  let token = Cancel.create () in
  let winner = Atomic.make None in
  let futs =
    List.map
      (fun thunk ->
        submit p (fun () ->
            match thunk token with
            | Some v ->
              (* first writer wins; everyone else backs off *)
              if Atomic.compare_and_set winner None (Some v) then
                Cancel.set token
            | None -> ()))
      thunks
  in
  let outcomes =
    List.map
      (fun fut ->
        match await p fut with
        | () -> None
        | exception Cancelled -> None
        | exception e -> Some (e, Printexc.get_raw_backtrace ()))
      futs
  in
  match Atomic.get winner with
  | Some _ as w -> w
  | None -> (
    match List.find_opt Option.is_some outcomes with
    | Some (Some (e, bt)) -> Printexc.raise_with_backtrace e bt
    | _ -> None)
