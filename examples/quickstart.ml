(* Quickstart: a five-minute tour of the library.

   Run with:  dune exec examples/quickstart.exe

   1. decide a bit-vector formula with the built-in SMT solver;
   2. synthesize a tiny program from an I/O oracle (Section 4);
   3. print the paper's Table 1 through the sciduction framework. *)

module Bv = Smt.Bv
module Solver = Smt.Solver

let banner title = Format.printf "@.=== %s ===@." title

(* -- 1. the deductive engine ---------------------------------------- *)

let smt_demo () =
  banner "1. SMT: is there an 8-bit x with x*x = 57121 mod 256?";
  let x = Bv.var ~width:8 "x" in
  let f = Bv.eq (Bv.bmul x x) (Bv.const ~width:8 57121) in
  match Solver.check_formulas [ f ] with
  | `Sat env -> Format.printf "sat: x = %d@." (env.Bv.bv "x")
  | `Unsat -> Format.printf "unsat@."
  | `Unknown r ->
    Format.printf "unknown (%s)@." (Smt.Sat.reason_to_string r)

(* -- 2. oracle-guided synthesis ------------------------------------- *)

let synthesis_demo () =
  banner "2. Synthesis: recover x & (x-1) from its I/O behaviour alone";
  let spec =
    {
      Ogis.Encode.width = 8;
      ninputs = 1;
      noutputs = 1;
      library = [ Ogis.Component.dec; Ogis.Component.and_ ];
    }
  in
  let oracle = function
    | [ x ] -> [ x land (x - 1) land 0xFF ]
    | _ -> assert false
  in
  match Ogis.Synth.synthesize spec oracle with
  | Budget.Converged (Ogis.Synth.Synthesized (prog, stats)) ->
    Format.printf "%a@.(%d oracle queries, %d distinguishing rounds)@."
      Ogis.Straightline.pp prog stats.Ogis.Synth.oracle_queries
      stats.Ogis.Synth.iterations
  | _ -> Format.printf "synthesis failed@."

(* -- 3. the framework ------------------------------------------------ *)

let table_demo () =
  banner "3. The three sciduction instances of the paper (Table 1)";
  Format.printf "%a@." Sciduction.Instances.pp_table
    Sciduction.Instances.table1;
  Format.printf "@.Also implemented (Section 2.4):@.%a@."
    Sciduction.Instances.pp_table Sciduction.Instances.section24

let () =
  smt_demo ();
  synthesis_demo ();
  table_demo ()
