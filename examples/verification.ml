(* The Section 2.4 sciduction instances in action: CEGAR, L*-based
   assume-guarantee reasoning, and simulation-guided invariant generation.

   Run with:  dune exec examples/verification.exe *)

let banner title = Format.printf "@.=== %s ===@." title

(* -- CEGAR ----------------------------------------------------------- *)

let cegar_demo () =
  banner "CEGAR with localization abstraction (Fig. 3)";
  let t = Mc.Systems.mod_counter ~junk:10 ~bits:3 ~modulus:6 ~bad_value:7 () in
  Format.printf "system: %s — %d latches (%d of them property-irrelevant)@."
    t.Mc.Ts.name t.Mc.Ts.num_latches 10;
  (match Mc.Cegar.verify t with
  | Budget.Converged (Mc.Cegar.Safe { abstract_latches; iterations; visible })
    ->
    Format.printf
      "SAFE with only %d visible latches (%d iterations): %s@."
      abstract_latches iterations
      (String.concat "," (List.map string_of_int visible))
  | Budget.Converged (Mc.Cegar.Unsafe _) ->
    Format.printf "unexpectedly unsafe@."
  | Budget.Exhausted _ -> Format.printf "budget ran out@.");
  let buggy = Mc.Systems.request_grant in
  match Mc.Cegar.verify buggy with
  | Budget.Converged (Mc.Cegar.Unsafe { trace; _ }) ->
    Format.printf "%s: UNSAFE, counterexample of %d steps@."
      buggy.Mc.Ts.name (List.length trace)
  | Budget.Converged (Mc.Cegar.Safe _) -> Format.printf "bug missed!@."
  | Budget.Exhausted _ -> Format.printf "budget ran out@."

(* -- Assume-guarantee ------------------------------------------------- *)

let agr_demo () =
  banner "Learning assumptions for compositional verification (L*)";
  let alternator =
    Lstar.Dfa.make ~alphabet:2 ~start:0 ~accept:[| true; true |]
      ~delta:[| [| 1; 0 |]; [| 1; 0 |] |]
  in
  let strict =
    Lstar.Dfa.make ~alphabet:2 ~start:0
      ~accept:[| true; true; false |]
      ~delta:[| [| 1; 2 |]; [| 2; 0 |]; [| 2; 2 |] |]
  in
  let prop =
    Lstar.Dfa.make ~alphabet:2 ~start:0
      ~accept:[| true; true; false |]
      ~delta:[| [| 1; 0 |]; [| 2; 0 |]; [| 2; 2 |] |]
  in
  match Lstar.Agr.check ~m1:alternator ~m2:strict ~prop () with
  | Budget.Converged
      (Lstar.Agr.Holds { assumption; membership_queries; rounds }) ->
    Format.printf
      "M1 || M2 |= P holds; learned a %d-state assumption in %d rounds (%d membership queries)@."
      assumption.Lstar.Dfa.num_states rounds membership_queries
  | Budget.Converged (Lstar.Agr.Violated w) ->
    Format.printf "violated by %s@."
      (String.concat "" (List.map string_of_int w))
  | Budget.Exhausted _ -> Format.printf "budget ran out@."

(* -- Invariant generation --------------------------------------------- *)

let invgen_demo () =
  banner "Invariant generation: simulate, hypothesize, prove by induction";
  let aig, bad = Invgen.Engine.counter_mod5 () in
  let r =
    match Invgen.Engine.run aig ~bad with
    | Budget.Converged r -> r
    | Budget.Exhausted _ -> failwith "unbudgeted run exhausted"
  in
  Format.printf "mod-5 counter, property: count never reaches 7@.";
  Format.printf "  plain 1-induction: %s@."
    (match r.Invgen.Engine.verdict_unaided with
    | Invgen.Induction.Proved -> "proved"
    | Invgen.Induction.Unknown -> "UNKNOWN (property is not inductive)"
    | Invgen.Induction.Cex_in_base -> "cex in base"
    | Invgen.Induction.Aborted _ -> "aborted");
  Format.printf "  %d candidates from simulation, %d proved inductive:@."
    r.Invgen.Engine.candidates
    (List.length r.Invgen.Engine.proven);
  List.iter
    (fun c -> Format.printf "    %a@." Invgen.Candidates.pp c)
    r.Invgen.Engine.proven;
  Format.printf "  with the invariants: %s@."
    (match r.Invgen.Engine.verdict with
    | Invgen.Induction.Proved -> "PROVED"
    | _ -> "still unknown")

let () =
  cegar_demo ();
  agr_demo ();
  invgen_demo ()
