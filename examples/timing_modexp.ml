(* GameTime timing analysis of modular exponentiation (Section 3).

   Run with:  dune exec examples/timing_modexp.exe [exponent-bits]

   Builds the modexp kernel, compiles it for the cycle-accurate platform,
   extracts feasible basis paths with the SMT engine, learns the (w, pi)
   timing model from end-to-end measurements, and reports per-path
   predictions, the execution-time distribution, and the WCET with its
   witness test case. *)

module Gt = Gametime.Analysis
module Basis = Gametime.Basis
module B = Prog.Benchmarks
module Platform = Microarch.Platform

let () =
  let bits =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 6
  in
  let program = B.modexp ~bits () in
  let pf = Platform.create program in
  let platform = Platform.time pf in
  Format.printf "Program: modexp with a %d-bit exponent (%d paths)@." bits
    (1 lsl bits);
  Format.printf "Platform: in-order pipeline, %d instructions of code@.@."
    (Platform.code_size pf);
  let t =
    match
      Gt.analyze ~bound:bits ~seed:2012 ~pin:[ ("base", 123) ] ~platform
        program
    with
    | Budget.Converged t -> t
    | Budget.Exhausted _ -> failwith "unbudgeted analysis exhausted"
  in
  Format.printf "Feasible basis paths: %d (rank bound %d)@." (List.length t.Gt.basis)
    (Basis.rank_bound t.Gt.cfg);
  List.iteri
    (fun i b ->
      Format.printf "  b%d: exp=%3d -> %d cycles@." i
        (List.assoc "exp" b.Basis.test)
        (platform b.Basis.test))
    t.Gt.basis;
  (* predicted vs measured for every feasible path *)
  let paths = Gt.feasible_paths t in
  let errs =
    List.filter_map
      (fun (path, test) ->
        Option.map
          (fun pred ->
            let meas = float_of_int (platform test) in
            abs_float (pred -. meas) /. meas)
          (Gt.predict_path t path))
      paths
  in
  let mean_err = List.fold_left ( +. ) 0.0 errs /. float_of_int (List.length errs) in
  Format.printf "@.Prediction over all %d paths: mean relative error %.2f%%@."
    (List.length paths) (100.0 *. mean_err);
  let w = Gt.wcet t ~platform in
  Format.printf "WCET: predicted %.0f cycles, measured %d, witness exp=%d@."
    w.Gt.predicted_cycles w.Gt.measured_cycles
    (List.assoc "exp" w.Gt.test);
  (* the <TA> question *)
  let tau = w.Gt.measured_cycles - 1 in
  (match Gt.answer_ta t ~platform ~tau with
  | `No test ->
    Format.printf
      "<TA> is the time always <= %d? NO — exp=%d takes %d cycles@." tau
      (List.assoc "exp" test) (platform test)
  | `Yes -> Format.printf "<TA> unexpectedly YES@.");
  (* distribution sketch *)
  Format.printf "@.Execution-time distribution (measured | predicted):@.";
  let meas = Gt.measured_distribution t ~platform in
  let pred = Gt.predicted_distribution t in
  let count d v = Option.value (List.assoc_opt v d) ~default:0 in
  let all = List.sort_uniq compare (List.map fst meas @ List.map fst pred) in
  List.iter
    (fun v ->
      Format.printf "  %5d cycles: %-3d | %-3d %s@." v (count meas v)
        (count pred v)
        (String.make (count meas v) '#'))
    all
