(* Robustness contract: deterministic fault injection, solver-boundary
   faults surfacing as [Unknown], pool degradation without leaked
   domains, [set_terminate] racing the final verdict, a fully starved
   portfolio, and loop soundness under injected faults — a faulted run
   may give up ([Exhausted] / [Unknown]) but must never flip a
   verdict. *)

module Sat = Smt.Sat
module Lit = Smt.Lit

let with_faults ?probability ~seed f =
  Fault.activate ?probability ~seed ();
  Fun.protect ~finally:Fault.deactivate f

(* ------------------------------------------------------------------ *)
(* the injector itself                                                 *)
(* ------------------------------------------------------------------ *)

let test_parse_spec () =
  (match Fault.parse_spec "42" with
  | Ok (42, None) -> ()
  | _ -> Alcotest.fail "plain seed should parse");
  (match Fault.parse_spec " 7 : 0.25 " with
  | Ok (7, Some p) when abs_float (p -. 0.25) < 1e-9 -> ()
  | _ -> Alcotest.fail "seed:prob should parse");
  List.iter
    (fun s ->
      match Fault.parse_spec s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S should be rejected" s)
    [ ""; "x"; "4:"; "4:x"; ":0.5"; "4:1.5"; "4:-0.1" ]

let draws n = List.init n (fun _ -> Fault.fire Fault.Solver_call)

let test_deterministic_draws () =
  with_faults ~probability:0.5 ~seed:42 (fun () ->
      let a = draws 64 in
      let fired = List.length (List.filter Fun.id a) in
      if fired = 0 || fired = 64 then
        Alcotest.failf "p=0.5 drew %d/64 fires" fired;
      Alcotest.(check int)
        "injected counter matches the fires" fired
        (Fault.injected Fault.Solver_call);
      (* re-arming with the same seed replays the same sequence *)
      Fault.activate ~probability:0.5 ~seed:42 ();
      Alcotest.(check (list bool)) "same seed, same draws" a (draws 64);
      (* sites draw independently: interleaving another site's draws
         does not perturb this site's sequence *)
      Fault.activate ~probability:0.5 ~seed:42 ();
      let interleaved =
        List.init 64 (fun _ ->
            ignore (Fault.fire Fault.Pool_submit);
            Fault.fire Fault.Solver_call)
      in
      Alcotest.(check (list bool)) "sites are independent" a interleaved;
      (* a different seed gives a different sequence *)
      Fault.activate ~probability:0.5 ~seed:43 ();
      if draws 64 = a then
        Alcotest.fail "seeds 42 and 43 drew identical 64-draw sequences")

let test_dormant_never_fires () =
  Fault.deactivate ();
  Alcotest.(check bool) "inactive after deactivate" false (Fault.active ());
  for _ = 1 to 1000 do
    if Fault.fire Fault.Solver_call || Fault.fire Fault.Pool_submit then
      Alcotest.fail "dormant injector fired"
  done

let test_activate_from_env () =
  Unix.putenv "SCIDUCTION_FAULT_SEED" "19:0.5";
  Alcotest.(check bool) "well-formed spec arms" true (Fault.activate_from_env ());
  Alcotest.(check (option int)) "seed taken from the spec" (Some 19) (Fault.seed ());
  Fault.deactivate ();
  Unix.putenv "SCIDUCTION_FAULT_SEED" "nonsense";
  Alcotest.(check bool) "malformed spec is ignored" false (Fault.activate_from_env ());
  Alcotest.(check bool) "still dormant" false (Fault.active ());
  Unix.putenv "SCIDUCTION_FAULT_SEED" ""

(* ------------------------------------------------------------------ *)
(* solver boundary                                                     *)
(* ------------------------------------------------------------------ *)

let tiny_solver () =
  let s = Sat.create () in
  for _ = 1 to 4 do
    ignore (Sat.new_var s)
  done;
  Sat.add_clause s [ Lit.pos 0; Lit.pos 1 ];
  Sat.add_clause s [ Lit.neg_of 0; Lit.pos 2 ];
  Sat.add_clause s [ Lit.pos 3 ];
  s

let test_solver_fault_is_unknown () =
  let s = tiny_solver () in
  with_faults ~probability:1.0 ~seed:5 (fun () ->
      match Sat.solve s with
      | Sat.Unknown Sat.Interrupted -> ()
      | _ -> Alcotest.fail "faulted solve must answer Unknown Interrupted");
  (* the solver is untouched by the injected fault and recovers *)
  match Sat.solve s with
  | Sat.Sat -> ()
  | _ -> Alcotest.fail "solver unusable after an injected fault"

(* Pigeonhole: n+1 pigeons in n holes, var p(i,h) = i * n + h; UNSAT
   and needs real search, so limits and interrupts have something to
   cut short. *)
let pigeonhole n =
  let s = Sat.create () in
  let v i h = (i * n) + h in
  for _ = 1 to (n + 1) * n do
    ignore (Sat.new_var s)
  done;
  for i = 0 to n do
    Sat.add_clause s (List.init n (fun h -> Lit.pos (v i h)))
  done;
  for h = 0 to n - 1 do
    for i = 0 to n do
      for j = i + 1 to n do
        Sat.add_clause s [ Lit.neg_of (v i h); Lit.neg_of (v j h) ]
      done
    done
  done;
  s

let test_terminate_races_verdict () =
  (* a pre-set terminate is polled before the first search step, so it
     deterministically beats the verdict *)
  let s = pigeonhole 4 in
  Sat.set_terminate s (Some (fun () -> true));
  (match Sat.solve s with
  | Sat.Unknown Sat.Interrupted -> ()
  | _ -> Alcotest.fail "pre-set terminate must interrupt");
  Sat.set_terminate s None;
  (match Sat.solve s with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "solver must recover its verdict after an interrupt");
  (* a callback turning true after k polls either loses the race (the
     full verdict lands first) or interrupts — never a flipped verdict *)
  List.iter
    (fun k ->
      let s = pigeonhole 4 in
      let polls = ref 0 in
      Sat.set_terminate s
        (Some
           (fun () ->
             incr polls;
             !polls > k));
      match Sat.solve s with
      | Sat.Unsat | Sat.Unknown Sat.Interrupted -> ()
      | Sat.Sat -> Alcotest.fail "interrupt flipped an unsat instance to sat"
      | Sat.Unknown r ->
        Alcotest.failf "unexpected reason %s" (Sat.reason_to_string r))
    [ 0; 1; 2; 5; 50 ];
  (* cross-domain: the flag flips concurrently with the search; the
     verdict must be Unsat or a clean interrupt whichever way the race
     goes *)
  List.iter
    (fun _ ->
      let s = pigeonhole 5 in
      let flag = Atomic.make false in
      let d = Domain.spawn (fun () -> Atomic.set flag true) in
      Sat.set_terminate s (Some (fun () -> Atomic.get flag));
      let r = Sat.solve s in
      Domain.join d;
      match r with
      | Sat.Unsat | Sat.Unknown Sat.Interrupted -> ()
      | Sat.Sat -> Alcotest.fail "racing interrupt flipped the verdict"
      | Sat.Unknown r ->
        Alcotest.failf "unexpected reason %s" (Sat.reason_to_string r))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* pool degradation                                                    *)
(* ------------------------------------------------------------------ *)

let test_submit_orphans_recovered () =
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      with_faults ~probability:1.0 ~seed:11 (fun () ->
          let futs = List.init 8 (fun i -> Par.submit pool (fun () -> i * i)) in
          Alcotest.(check (list int))
            "orphaned jobs recovered at await"
            (List.init 8 (fun i -> i * i))
            (Par.await_all pool futs);
          if Fault.injected Fault.Pool_submit = 0 then
            Alcotest.fail "no submit faults fired at probability 1"))

let test_spawn_failure_falls_back () =
  with_faults ~probability:1.0 ~seed:3 (fun () ->
      let pool = Par.Pool.create ~jobs:4 () in
      Alcotest.(check int)
        "total spawn failure degrades to sequential" 1 (Par.Pool.jobs pool);
      let f = Par.submit pool (fun () -> 41 + 1) in
      Alcotest.(check int) "degraded pool still runs tasks" 42
        (Par.await pool f);
      Par.Pool.shutdown pool);
  (* partial spawn failures: creation never raises, the pool always
     computes, shutdown always joins cleanly (nothing leaks) *)
  List.iter
    (fun seed ->
      with_faults ~probability:0.5 ~seed (fun () ->
          let pool = Par.Pool.create ~jobs:4 () in
          let jobs = Par.Pool.jobs pool in
          if jobs <> 1 && jobs <> 4 then
            Alcotest.failf "seed %d: pool neither degraded nor whole (%d jobs)"
              seed jobs;
          let got = Par.map pool (fun x -> x * 2) (Array.init 32 Fun.id) in
          Alcotest.(check (array int))
            "results survive injected submit faults"
            (Array.init 32 (fun i -> i * 2))
            got;
          Par.Pool.shutdown pool))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* portfolio starvation                                                *)
(* ------------------------------------------------------------------ *)

let pigeonhole_problem n =
  let v i h = (i * n) + h in
  let at_least =
    List.init (n + 1) (fun i -> List.init n (fun h -> Lit.pos (v i h)))
  in
  let at_most =
    List.concat
      (List.init n (fun h ->
           List.concat
             (List.init (n + 1) (fun i ->
                  List.filter_map
                    (fun j ->
                      if j > i then
                        Some [ Lit.neg_of (v i h); Lit.neg_of (v j h) ]
                      else None)
                    (List.init (n + 1) Fun.id)))))
  in
  { Smt.Dimacs.nvars = (n + 1) * n; clauses = at_least @ at_most }

let test_portfolio_all_unknown () =
  let p = pigeonhole_problem 4 in
  let limits = { Sat.no_limits with Sat.max_conflicts = Some 0 } in
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      let o = Smt.Portfolio.solve ~pool ~limits p in
      (match o.Smt.Portfolio.result with
      | Sat.Unknown _ -> ()
      | Sat.Sat | Sat.Unsat ->
        Alcotest.fail "a fully starved portfolio cannot have a verdict");
      Alcotest.(check bool)
        "the vanilla retry was attempted" true o.Smt.Portfolio.retried;
      Alcotest.(check bool)
        "no model on Unknown" true
        (o.Smt.Portfolio.model = None))

(* ------------------------------------------------------------------ *)
(* budgeted BMC: the exhausted prefix is exactly the unbudgeted one    *)
(* ------------------------------------------------------------------ *)

let test_bmc_exhaustion_prefix () =
  let ts =
    Mc.Systems.mod_counter ~junk:10 ~bits:4 ~modulus:11 ~bad_value:15 ()
  in
  let max_depth = 24 in
  (match Mc.Bmc.sweep ts ~max_depth with
  | Budget.Converged None -> ()
  | _ -> Alcotest.fail "the system should be clean to depth 24");
  (* size the pool off the full sweep's real appetite so exhaustion
     lands mid-sweep whatever the solver's conflict behaviour *)
  let total =
    let sess = Mc.Bmc.new_session ts in
    for d = 0 to max_depth do
      ignore (Mc.Bmc.check_depth sess ~depth:d)
    done;
    Mc.Bmc.session_conflicts sess
  in
  if total < 4 then
    Alcotest.failf "sweep too easy to starve (%d conflicts total)" total;
  let budget = Budget.limited ~conflicts:(total / 2) () in
  match Mc.Bmc.sweep ~budget ts ~max_depth with
  | Budget.Converged _ ->
    Alcotest.fail "half the conflict appetite cannot finish the sweep"
  | Budget.Exhausted { Mc.Bmc.proved_depth; reason } ->
    (match reason with
    | Budget.Conflicts -> ()
    | r ->
      Alcotest.failf "expected Conflicts exhaustion, got %s"
        (Budget.reason_to_string r));
    if proved_depth >= max_depth then
      Alcotest.fail "exhausted sweep claims the whole range";
    (* every depth the partial claims proved agrees with an unbudgeted
       one-shot check *)
    for d = 0 to proved_depth do
      match Mc.Bmc.check ts ~depth:d with
      | `No_cex -> ()
      | `Cex _ -> Alcotest.failf "proved depth %d flips unbudgeted" d
      | `Unknown _ -> Alcotest.fail "unbudgeted check answered Unknown"
    done

(* ------------------------------------------------------------------ *)
(* loop soundness under fault                                          *)
(* ------------------------------------------------------------------ *)

let test_loops_sound_under_fault () =
  let safe = Mc.Systems.mod_counter ~junk:4 ~bits:3 ~modulus:6 ~bad_value:7 () in
  let unsafe =
    Mc.Systems.mod_counter ~junk:4 ~bits:3 ~modulus:8 ~bad_value:5 ()
  in
  let aig, bad = Invgen.Engine.counter_mod5 () in
  List.iter
    (fun seed ->
      with_faults ~probability:0.2 ~seed (fun () ->
          (match Mc.Cegar.verify safe with
          | Budget.Converged (Mc.Cegar.Unsafe _) ->
            Alcotest.failf "seed %d: fault flipped a safe system to unsafe" seed
          | Budget.Converged (Mc.Cegar.Safe _) | Budget.Exhausted _ -> ());
          (match Mc.Cegar.verify unsafe with
          | Budget.Converged (Mc.Cegar.Safe _) ->
            Alcotest.failf "seed %d: fault flipped an unsafe system to safe"
              seed
          | Budget.Converged (Mc.Cegar.Unsafe _) | Budget.Exhausted _ -> ());
          (match Mc.Bmc.sweep safe ~max_depth:12 with
          | Budget.Converged (Some _) ->
            Alcotest.failf "seed %d: faulted sweep found a phantom cex" seed
          | Budget.Converged None | Budget.Exhausted _ -> ());
          match Invgen.Engine.run aig ~bad with
          | Budget.Converged r ->
            (* anything a faulted converged run proves must be genuinely
               inductive: the clean run proves a superset *)
            let clean =
              Fault.deactivate ();
              let c =
                match Invgen.Engine.run aig ~bad with
                | Budget.Converged c -> c
                | Budget.Exhausted _ ->
                  Alcotest.fail "clean invgen run exhausted"
              in
              Fault.activate ~probability:0.2 ~seed ();
              c
            in
            if
              List.length r.Invgen.Engine.proven
              > List.length clean.Invgen.Engine.proven
            then
              Alcotest.failf "seed %d: faulted run proved more than the clean"
                seed
          | Budget.Exhausted _ -> ()))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "fault"
    [
      ( "injector",
        [
          Alcotest.test_case "parse_spec" `Quick test_parse_spec;
          Alcotest.test_case "deterministic draws" `Quick
            test_deterministic_draws;
          Alcotest.test_case "dormant never fires" `Quick
            test_dormant_never_fires;
          Alcotest.test_case "activate from env" `Quick test_activate_from_env;
        ] );
      ( "solver",
        [
          Alcotest.test_case "fault answers Unknown" `Quick
            test_solver_fault_is_unknown;
          Alcotest.test_case "terminate races the verdict" `Quick
            test_terminate_races_verdict;
          Alcotest.test_case "starved portfolio" `Quick
            test_portfolio_all_unknown;
        ] );
      ( "pool",
        [
          Alcotest.test_case "submit orphans recovered" `Quick
            test_submit_orphans_recovered;
          Alcotest.test_case "spawn failure falls back" `Quick
            test_spawn_failure_falls_back;
        ] );
      ( "loops",
        [
          Alcotest.test_case "bmc exhaustion prefix" `Quick
            test_bmc_exhaustion_prefix;
          Alcotest.test_case "sound under fault" `Quick
            test_loops_sound_under_fault;
        ] );
    ]
