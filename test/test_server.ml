(* The verification server. Protocol tests pin the codec (total in both
   directions, spec JSON round-trips losslessly); daemon tests drive a
   real listener over a temp socket: verdicts bit-identical to a direct
   Jobs.run, the content-addressed cache answering repeats, warm BMC
   sessions resuming across requests, typed errors for malformed and
   oversized lines, cancellation on explicit cancel and on mid-job
   disconnect, fault isolation, and --proof certificates from served
   jobs passing the independent DRAT checker. *)

module P = Server.Protocol
module Jobs = Server.Jobs
module Daemon = Server.Daemon
module Client = Server.Client
module Json = Obs.Json
module Proof = Smt.Proof
module Drat = Cert.Drat

(* ------------------------------------------------------------------ *)
(* fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "test_server_%d_%d.sock" (Unix.getpid ()) !sock_counter)

let with_daemon ?dispatchers f =
  let socket = fresh_socket () in
  match Daemon.start ?dispatchers ~socket () with
  | Error e -> Alcotest.failf "daemon start: %s" e
  | Ok d -> Fun.protect ~finally:(fun () -> Daemon.stop d) (fun () -> f socket)

(* a small shift register: SAFE through any depth, solved in well under
   a second, and (being all-unsat) a certificate per depth with --proof *)
let shift_spec ?(len = 12) max_depth =
  Jobs.Bmc
    {
      system =
        { shift = Some len; junk = 8; bits = 3; modulus = 6; bad_value = 7 };
      max_depth;
    }

(* a deep sweep over a wide counter: reliably outlives the instant
   between ack and cancel/disconnect, and stops quickly once its budget
   cancel hook fires *)
let slow_spec =
  Jobs.Bmc
    {
      system =
        { shift = None; junk = 40; bits = 3; modulus = 6; bad_value = 7 };
      max_depth = 500;
    }

let stat socket name =
  match Client.stats ~socket () with
  | Error e -> Alcotest.failf "stats: %s" e
  | Ok j -> (
    match Option.bind (Json.member name j) Json.to_int with
    | Some v -> v
    | None -> Alcotest.failf "stats reply lacks %s" name)

(* poll the stats op until [pred] holds; the daemon's counters move in
   background threads, so give them a bounded moment *)
let eventually socket name pred =
  let rec go tries =
    let v = stat socket name in
    if pred v then v
    else if tries = 0 then v
    else begin
      Thread.delay 0.05;
      go (tries - 1)
    end
  in
  go 100

(* ----- raw wire access, for the malformed-input tests ----- *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (fd, Unix.in_channel_of_descr fd)

let send_raw fd line =
  let s = line ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let recv fd_ic =
  match input_line (snd fd_ic) with
  | exception End_of_file -> Alcotest.fail "server closed the connection"
  | line -> (
    match P.parse_response line with
    | Ok r -> r
    | Error e -> Alcotest.failf "unparseable response %S: %s" line e)

let send_req fd req = send_raw fd (Json.to_string (P.request_to_json req))

let err_code = function
  | P.Err { code; _ } -> P.error_code_to_string code
  | r -> Alcotest.failf "expected an error, got %s" (P.response_to_line r)

(* ------------------------------------------------------------------ *)
(* codec                                                               *)
(* ------------------------------------------------------------------ *)

let all_specs =
  [
    Jobs.Deobfuscate { program = `P1; width = 6 };
    Jobs.Timing { source = None; bits = 5; tau = Some 400 };
    Jobs.Timing
      {
        source =
          Some "program tiny (a) -> (x) width 8 {\n  x := a + 1;\n}\n";
        bits = 4;
        tau = None;
      };
    Jobs.Cegar { junk = 5; bits = 3; modulus = 6; bad_value = 7 };
    shift_spec 9;
    Jobs.Invgen { circuit = `Twin; n = 3 };
    Jobs.Lstar { states = 4 };
  ]

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      match Jobs.of_json (Jobs.to_json spec) with
      | Error e -> Alcotest.failf "%s: %s" (Jobs.kind spec) e
      | Ok spec' ->
        Alcotest.(check bool)
          (Jobs.kind spec ^ " survives JSON")
          true (spec = spec');
        Alcotest.(check string)
          (Jobs.kind spec ^ " key stable")
          (Jobs.key spec) (Jobs.key spec'))
    all_specs

let test_request_roundtrip () =
  let requests =
    [
      P.Ping; P.Stats; P.Shutdown; P.Cancel "job-7";
      P.Submit
        {
          P.id = "bmc-1";
          spec = shift_spec 9;
          timeout = Some 2.5;
          max_conflicts = Some 4000;
          priority = -2;
        };
      P.Submit
        {
          P.id = "lstar-1";
          spec = Jobs.Lstar { states = 4 };
          timeout = None;
          max_conflicts = None;
          priority = 0;
        };
    ]
  in
  List.iter
    (fun req ->
      match P.parse_request (Json.to_string (P.request_to_json req)) with
      | Error (_, msg) -> Alcotest.failf "request rejected: %s" msg
      | Ok req' ->
        Alcotest.(check bool) "request survives the wire" true (req = req'))
    requests

let test_response_roundtrip () =
  let responses =
    [
      P.Ack "a"; P.Pong; P.Bye;
      P.Result
        { id = "a"; verdict = "SAFE within depth 9"; code = 0; cached = true;
          ms = 12.5 };
      P.Err { code = P.Fault_injected; message = "boom"; id = Some "a" };
      P.Err { code = P.Oversized; message = "too long"; id = None };
      P.StatsReply (Json.Obj [ ("queued", Json.Int 3) ]);
    ]
  in
  List.iter
    (fun resp ->
      match P.parse_response (Json.to_string (P.response_to_json resp)) with
      | Error e -> Alcotest.failf "response rejected: %s" e
      | Ok resp' ->
        Alcotest.(check bool) "response survives the wire" true (resp = resp'))
    responses

let test_parse_request_total () =
  let expect code line =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error (c, _) ->
      Alcotest.(check string) line
        (P.error_code_to_string code)
        (P.error_code_to_string c)
  in
  expect P.Parse_error "not json";
  expect P.Parse_error "{\"v\": }";
  expect P.Bad_request "{\"op\":\"ping\"}";
  expect P.Bad_request "{\"v\":\"sciduction.serve/0\",\"op\":\"ping\"}";
  expect P.Bad_request
    (Printf.sprintf "{\"v\":%S,\"op\":\"submit\",\"id\":\"x\"}" P.version);
  expect P.Bad_request (Printf.sprintf "{\"v\":%S}" P.version);
  expect P.Unknown_op (Printf.sprintf "{\"v\":%S,\"op\":\"fly\"}" P.version)

(* ------------------------------------------------------------------ *)
(* serving: verdict parity, cache, warm sessions                       *)
(* ------------------------------------------------------------------ *)

let test_served_verdict_matches_direct () =
  with_daemon @@ fun socket ->
  let spec = shift_spec ~len:12 14 in
  let direct = Jobs.run spec in
  (match Client.submit ~socket spec with
  | Error _ -> Alcotest.fail "submit failed"
  | Ok o ->
    Alcotest.(check string) "served verdict is the one-shot verdict"
      direct.Jobs.verdict o.Client.verdict;
    Alcotest.(check int) "served exit code too" direct.Jobs.code
      o.Client.code;
    Alcotest.(check bool) "first answer is computed" false o.Client.cached);
  match Client.submit ~socket spec with
  | Error _ -> Alcotest.fail "repeat submit failed"
  | Ok o ->
    Alcotest.(check bool) "repeat answer comes from the cache" true
      o.Client.cached;
    Alcotest.(check string) "cached verdict identical" direct.Jobs.verdict
      o.Client.verdict

let test_unsafe_verdict_matches_direct () =
  with_daemon @@ fun socket ->
  (* reachable bad value: the UNSAFE path, trace text included *)
  let spec =
    Jobs.Bmc
      {
        system =
          { shift = None; junk = 2; bits = 3; modulus = 6; bad_value = 4 };
        max_depth = 16;
      }
  in
  let direct = Jobs.run spec in
  match Client.submit ~socket spec with
  | Error _ -> Alcotest.fail "submit failed"
  | Ok o ->
    Alcotest.(check string) "served UNSAFE verdict identical"
      direct.Jobs.verdict o.Client.verdict;
    Alcotest.(check int) "exit code 1" 1 o.Client.code

let test_warm_sessions_resume () =
  with_daemon @@ fun socket ->
  let before = stat socket "warm_hits" in
  let shallow = shift_spec ~len:16 6 and deep = shift_spec ~len:16 12 in
  (match Client.submit ~socket shallow with
  | Ok o ->
    Alcotest.(check string) "shallow verdict" (Jobs.run shallow).Jobs.verdict
      o.Client.verdict
  | Error _ -> Alcotest.fail "shallow submit failed");
  (match Client.submit ~socket deep with
  | Ok o ->
    (* the warm continuation must answer exactly like a cold sweep *)
    Alcotest.(check string) "warm verdict is the cold verdict"
      (Jobs.run deep).Jobs.verdict o.Client.verdict;
    Alcotest.(check bool) "deep query is not a cache hit" false
      o.Client.cached
  | Error _ -> Alcotest.fail "deep submit failed");
  Alcotest.(check bool) "the deep query resumed the warm session" true
    (stat socket "warm_hits" > before)

let test_concurrent_clients_isolated () =
  with_daemon ~dispatchers:2 @@ fun socket ->
  let spec_a = shift_spec ~len:10 12
  and spec_b = Jobs.Cegar { junk = 6; bits = 3; modulus = 6; bad_value = 7 } in
  let expect_a = (Jobs.run spec_a).Jobs.verdict
  and expect_b = (Jobs.run spec_b).Jobs.verdict in
  let got_a = ref (Error (`Transport "unset"))
  and got_b = ref (Error (`Transport "unset")) in
  let ta = Thread.create (fun () -> got_a := Client.submit ~socket spec_a) ()
  and tb = Thread.create (fun () -> got_b := Client.submit ~socket spec_b) () in
  Thread.join ta;
  Thread.join tb;
  (match !got_a with
  | Ok o ->
    Alcotest.(check string) "client A got A's verdict" expect_a
      o.Client.verdict
  | Error _ -> Alcotest.fail "client A failed");
  match !got_b with
  | Ok o ->
    Alcotest.(check string) "client B got B's verdict" expect_b
      o.Client.verdict
  | Error _ -> Alcotest.fail "client B failed"

(* ------------------------------------------------------------------ *)
(* typed errors on the wire                                            *)
(* ------------------------------------------------------------------ *)

let test_malformed_lines_typed () =
  with_daemon @@ fun socket ->
  let conn = raw_connect socket in
  Fun.protect ~finally:(fun () -> Unix.close (fst conn)) @@ fun () ->
  let fd = fst conn in
  send_raw fd "this is not json";
  Alcotest.(check string) "garbage -> parse_error" "parse_error"
    (err_code (recv conn));
  send_raw fd "{\"op\":\"ping\"}";
  Alcotest.(check string) "unversioned -> bad_request" "bad_request"
    (err_code (recv conn));
  send_raw fd (Printf.sprintf "{\"v\":%S,\"op\":\"levitate\"}" P.version);
  Alcotest.(check string) "unknown op -> unknown_op" "unknown_op"
    (err_code (recv conn));
  (* the connection survives every rejection *)
  send_req fd P.Ping;
  (match recv conn with
  | P.Pong -> ()
  | r -> Alcotest.failf "expected pong, got %s" (P.response_to_line r));
  (* a line past the cap is answered [oversized], not dropped *)
  send_raw fd
    (Printf.sprintf "{\"v\":%S,\"op\":\"ping\",\"pad\":%S}" P.version
       (String.make (P.max_line_bytes + 1024) 'x'));
  Alcotest.(check string) "oversized line -> oversized" "oversized"
    (err_code (recv conn));
  send_req fd P.Ping;
  match recv conn with
  | P.Pong -> ()
  | r -> Alcotest.failf "expected pong after oversized, got %s"
           (P.response_to_line r)

let test_cancel_unknown_job () =
  with_daemon @@ fun socket ->
  match Client.cancel ~socket ~id:"no-such-job" with
  | Ok () -> Alcotest.fail "cancelling a phantom job succeeded"
  | Error msg ->
    Alcotest.(check bool) "typed unknown_job error" true
      (String.length msg >= 11 && String.sub msg 0 11 = "unknown_job")

let test_duplicate_id_and_explicit_cancel () =
  with_daemon ~dispatchers:1 @@ fun socket ->
  let conn = raw_connect socket in
  Fun.protect ~finally:(fun () -> Unix.close (fst conn)) @@ fun () ->
  let fd = fst conn in
  let submit id spec =
    P.Submit { P.id; spec; timeout = None; max_conflicts = None; priority = 0 }
  in
  (* [block] occupies the only dispatcher, so [dup] stays queued *)
  send_req fd (submit "block" slow_spec);
  (match recv conn with
  | P.Ack "block" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  send_req fd (submit "dup" (Jobs.Lstar { states = 3 }));
  (match recv conn with
  | P.Ack "dup" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  send_req fd (submit "dup" (Jobs.Lstar { states = 3 }));
  Alcotest.(check string) "live id refused" "duplicate_id"
    (err_code (recv conn));
  (* cancelling the queued job answers the canceller and the owner; the
     two lines share this connection in either order *)
  send_req fd (P.Cancel "dup");
  let classify = function
    | P.Ack "dup" -> `Ack
    | P.Err { code = P.Cancelled; id = Some "dup"; _ } -> `Cancelled
    | r -> Alcotest.failf "unexpected response %s" (P.response_to_line r)
  in
  let a = classify (recv conn) and b = classify (recv conn) in
  Alcotest.(check bool) "cancel ack and owner notification" true
    ((a = `Ack && b = `Cancelled) || (a = `Cancelled && b = `Ack))

let test_disconnect_cancels_inflight () =
  with_daemon @@ fun socket ->
  let before = stat socket "cancelled" in
  let conn = raw_connect socket in
  send_req (fst conn)
    (P.Submit
       {
         P.id = "doomed"; spec = slow_spec; timeout = None;
         max_conflicts = None; priority = 0;
       });
  (match recv conn with
  | P.Ack "doomed" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  (* the client vanishes mid-job: its work must be torn down, not run
     to completion against nobody *)
  Unix.close (fst conn);
  let cancelled = eventually socket "cancelled" (fun v -> v > before) in
  Alcotest.(check bool) "disconnect cancelled the job" true
    (cancelled > before);
  ignore (eventually socket "inflight" (fun v -> v = 0) : int)

(* ------------------------------------------------------------------ *)
(* fault isolation                                                     *)
(* ------------------------------------------------------------------ *)

let test_fault_is_typed_and_isolated () =
  with_daemon ~dispatchers:2 @@ fun socket ->
  Fun.protect ~finally:Fault.deactivate @@ fun () ->
  (* [survivor] starts running before the injector arms, so its draw at
     the Serve_job site already happened and cannot fire *)
  let conn = raw_connect socket in
  Fun.protect ~finally:(fun () -> Unix.close (fst conn)) @@ fun () ->
  send_req (fst conn)
    (P.Submit
       {
         P.id = "survivor"; spec = slow_spec; timeout = None;
         max_conflicts = None; priority = 0;
       });
  (match recv conn with
  | P.Ack "survivor" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  ignore (eventually socket "inflight" (fun v -> v >= 1) : int);
  Fault.activate ~probability:1.0 ~seed:77 ();
  (match Client.submit ~socket (Jobs.Lstar { states = 3 }) with
  | Error (`Server f) ->
    Alcotest.(check string) "faulted job answers a typed error"
      "fault_injected" f.Client.fcode
  | Ok _ -> Alcotest.fail "armed fault did not fire"
  | Error (`Transport msg) -> Alcotest.failf "transport error: %s" msg);
  Fault.deactivate ();
  (* the server survives the fault and serves the next job *)
  (match Client.submit ~socket (Jobs.Lstar { states = 3 }) with
  | Ok o ->
    Alcotest.(check string) "post-fault job runs normally"
      (Jobs.run (Jobs.Lstar { states = 3 })).Jobs.verdict o.Client.verdict
  | Error _ -> Alcotest.fail "post-fault submit failed");
  (* the in-flight job was untouched by the fault: it is still live and
     answers its own (cancelled) verdict rather than fault_injected *)
  send_req (fst conn) (P.Cancel "survivor");
  let saw_fault = ref false and saw_cancel = ref false in
  for _ = 1 to 2 do
    match recv conn with
    | P.Ack "survivor" -> ()
    | P.Err { code = P.Cancelled; _ } -> saw_cancel := true
    | P.Err { code = P.Fault_injected; _ } -> saw_fault := true
    | r -> Alcotest.failf "unexpected response %s" (P.response_to_line r)
  done;
  Alcotest.(check bool) "survivor was not fault-killed" false !saw_fault;
  Alcotest.(check bool) "survivor answered its cancel" true !saw_cancel

(* ------------------------------------------------------------------ *)
(* --proof through the server                                          *)
(* ------------------------------------------------------------------ *)

let read_prefix path n =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic n

let reconstruct entry =
  let get f k =
    match Option.bind (Json.member k entry) f with
    | Some v -> v
    | None -> Alcotest.failf "index entry lacks %s" k
  in
  let str k = get Json.to_str k in
  let num k = get Json.to_int k in
  let core =
    match Json.member "core" entry with
    | Some (Json.List l) -> List.filter_map Json.to_int l
    | _ -> []
  in
  let cnf =
    Printf.sprintf "p cnf %d %d\n" (num "maxvar")
      (num "cnf_clauses" + List.length core)
    ^ read_prefix (str "cnf") (num "cnf_bytes")
    ^ String.concat "" (List.map (fun l -> Printf.sprintf "%d 0\n" l) core)
  in
  let drat = read_prefix (str "drat") (num "drat_bytes") ^ "0\n" in
  (cnf, drat)

let cleanup_spools prefix =
  let dir = Filename.dirname prefix and base = Filename.basename prefix in
  Array.iter
    (fun f ->
      if
        String.length f > String.length base
        && String.sub f 0 (String.length base) = base
      then Sys.remove (Filename.concat dir f))
    (Sys.readdir dir)

let test_served_proofs_check () =
  let prefix =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "test_server_proof_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Proof.disable ();
      cleanup_spools prefix)
  @@ fun () ->
  Proof.enable ~prefix;
  with_daemon (fun socket ->
      match Client.submit ~socket (shift_spec ~len:10 8) with
      | Error _ -> Alcotest.fail "submit failed"
      | Ok o ->
        Alcotest.(check int) "safe sweep" 0 o.Client.code);
  Proof.disable ();
  match Proof.read_index ~prefix with
  | Error e -> Alcotest.failf "index unreadable: %s" e
  | Ok entries ->
    Alcotest.(check bool) "served unsat verdicts issued certificates" true
      (entries <> []);
    List.iteri
      (fun i entry ->
        let cnf, drat = reconstruct entry in
        match (Drat.parse_dimacs cnf, Drat.parse_proof drat) with
        | Ok c, Ok p -> (
          match Drat.check c p with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "certificate %d rejected: %s" i e)
        | Error e, _ | _, Error e ->
          Alcotest.failf "certificate %d unparseable: %s" i e)
      entries

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "specs round-trip JSON" `Quick
            test_spec_roundtrip;
          Alcotest.test_case "requests round-trip the wire" `Quick
            test_request_roundtrip;
          Alcotest.test_case "responses round-trip the wire" `Quick
            test_response_roundtrip;
          Alcotest.test_case "parser is total and typed" `Quick
            test_parse_request_total;
        ] );
      ( "serving",
        [
          Alcotest.test_case "served verdict == direct run" `Quick
            test_served_verdict_matches_direct;
          Alcotest.test_case "unsafe verdict == direct run" `Quick
            test_unsafe_verdict_matches_direct;
          Alcotest.test_case "warm sessions resume" `Quick
            test_warm_sessions_resume;
          Alcotest.test_case "concurrent clients isolated" `Quick
            test_concurrent_clients_isolated;
        ] );
      ( "errors",
        [
          Alcotest.test_case "malformed lines answer typed" `Quick
            test_malformed_lines_typed;
          Alcotest.test_case "cancel of unknown job" `Quick
            test_cancel_unknown_job;
          Alcotest.test_case "duplicate id and explicit cancel" `Quick
            test_duplicate_id_and_explicit_cancel;
          Alcotest.test_case "disconnect cancels in-flight work" `Quick
            test_disconnect_cancels_inflight;
        ] );
      ( "faults",
        [
          Alcotest.test_case "typed error, others complete" `Quick
            test_fault_is_typed_and_isolated;
        ] );
      ( "proof",
        [
          Alcotest.test_case "served certificates verify" `Quick
            test_served_proofs_check;
        ] );
    ]
