(* The verification server. Protocol tests pin the codec (total in both
   directions, spec JSON round-trips losslessly); daemon tests drive a
   real listener over a temp socket: verdicts bit-identical to a direct
   Jobs.run, the content-addressed cache answering repeats, warm BMC
   sessions resuming across requests (and evicting LRU past capacity),
   typed errors for malformed and oversized lines, cancellation on
   explicit cancel and on mid-job disconnect, fault isolation, and
   --proof certificates from served jobs passing the independent DRAT
   checker. The robustness suites cover the journal (checksummed
   replay, truncated-tail tolerance, crash recovery, the cross-process
   lock), admission control (typed overload sheds carrying retry_after_s
   and the degraded-mode cycle), dispatcher supervision (requeue under
   injected death, bounded give-up), a malformed-wire fuzz corpus, the
   retrying client's deterministic backoff schedule, and stale-socket
   replacement at bind. *)

module P = Server.Protocol
module Jobs = Server.Jobs
module Daemon = Server.Daemon
module Client = Server.Client
module Journal = Server.Journal
module Json = Obs.Json
module Proof = Smt.Proof
module Drat = Cert.Drat

(* ------------------------------------------------------------------ *)
(* fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let sock_counter = ref 0

let fresh_path ext =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "test_server_%d_%d%s" (Unix.getpid ()) !sock_counter ext)

let fresh_socket () = fresh_path ".sock"

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let with_daemon ?dispatchers ?journal ?queue_limit ?retry_after_s
    ?degrade_after_s ?restart_budget ?warm_capacity f =
  let socket = fresh_socket () in
  match
    Daemon.start ?dispatchers ?journal ?queue_limit ?retry_after_s
      ?degrade_after_s ?restart_budget ?warm_capacity ~socket ()
  with
  | Error e -> Alcotest.failf "daemon start: %s" e
  | Ok d -> Fun.protect ~finally:(fun () -> Daemon.stop d) (fun () -> f socket)

(* a small shift register: SAFE through any depth, solved in well under
   a second, and (being all-unsat) a certificate per depth with --proof *)
let shift_spec ?(len = 12) max_depth =
  Jobs.Bmc
    {
      system =
        { shift = Some len; junk = 8; bits = 3; modulus = 6; bad_value = 7 };
      max_depth;
    }

(* a deep sweep over a wide counter: reliably outlives the instant
   between ack and cancel/disconnect, and stops quickly once its budget
   cancel hook fires *)
let slow_spec =
  Jobs.Bmc
    {
      system =
        { shift = None; junk = 40; bits = 3; modulus = 6; bad_value = 7 };
      max_depth = 500;
    }

let stat socket name =
  match Client.stats ~socket () with
  | Error e -> Alcotest.failf "stats: %s" e
  | Ok j -> (
    match Option.bind (Json.member name j) Json.to_int with
    | Some v -> v
    | None -> Alcotest.failf "stats reply lacks %s" name)

(* poll the stats op until [pred] holds; the daemon's counters move in
   background threads, so give them a bounded moment *)
let eventually socket name pred =
  let rec go tries =
    let v = stat socket name in
    if pred v then v
    else if tries = 0 then v
    else begin
      Thread.delay 0.05;
      go (tries - 1)
    end
  in
  go 100

(* ----- raw wire access, for the malformed-input tests ----- *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (fd, Unix.in_channel_of_descr fd)

let send_raw fd line =
  let s = line ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let recv fd_ic =
  match input_line (snd fd_ic) with
  | exception End_of_file -> Alcotest.fail "server closed the connection"
  | line -> (
    match P.parse_response line with
    | Ok r -> r
    | Error e -> Alcotest.failf "unparseable response %S: %s" line e)

let send_req fd req = send_raw fd (Json.to_string (P.request_to_json req))

let err_code = function
  | P.Err { code; _ } -> P.error_code_to_string code
  | r -> Alcotest.failf "expected an error, got %s" (P.response_to_line r)

(* ------------------------------------------------------------------ *)
(* codec                                                               *)
(* ------------------------------------------------------------------ *)

let all_specs =
  [
    Jobs.Deobfuscate { program = `P1; width = 6 };
    Jobs.Timing { source = None; bits = 5; tau = Some 400 };
    Jobs.Timing
      {
        source =
          Some "program tiny (a) -> (x) width 8 {\n  x := a + 1;\n}\n";
        bits = 4;
        tau = None;
      };
    Jobs.Cegar { junk = 5; bits = 3; modulus = 6; bad_value = 7 };
    shift_spec 9;
    Jobs.Invgen { circuit = `Twin; n = 3 };
    Jobs.Lstar { states = 4 };
  ]

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      match Jobs.of_json (Jobs.to_json spec) with
      | Error e -> Alcotest.failf "%s: %s" (Jobs.kind spec) e
      | Ok spec' ->
        Alcotest.(check bool)
          (Jobs.kind spec ^ " survives JSON")
          true (spec = spec');
        Alcotest.(check string)
          (Jobs.kind spec ^ " key stable")
          (Jobs.key spec) (Jobs.key spec'))
    all_specs

let test_request_roundtrip () =
  let requests =
    [
      P.Ping; P.Stats; P.Shutdown; P.Cancel "job-7";
      P.Submit
        {
          P.id = "bmc-1";
          spec = shift_spec 9;
          timeout = Some 2.5;
          max_conflicts = Some 4000;
          priority = -2;
        };
      P.Submit
        {
          P.id = "lstar-1";
          spec = Jobs.Lstar { states = 4 };
          timeout = None;
          max_conflicts = None;
          priority = 0;
        };
    ]
  in
  List.iter
    (fun req ->
      match P.parse_request (Json.to_string (P.request_to_json req)) with
      | Error (_, msg) -> Alcotest.failf "request rejected: %s" msg
      | Ok req' ->
        Alcotest.(check bool) "request survives the wire" true (req = req'))
    requests

let test_response_roundtrip () =
  let responses =
    [
      P.Ack "a"; P.Pong; P.Bye;
      P.Result
        { id = "a"; verdict = "SAFE within depth 9"; code = 0; cached = true;
          ms = 12.5 };
      P.Err
        {
          code = P.Fault_injected;
          message = "boom";
          id = Some "a";
          retry_after_s = None;
        };
      P.Err
        {
          code = P.Oversized;
          message = "too long";
          id = None;
          retry_after_s = None;
        };
      P.Err
        {
          code = P.Overloaded;
          message = "queue full";
          id = Some "b";
          retry_after_s = Some 0.5;
        };
      P.Err
        {
          code = P.Internal_error;
          message = "journal write failed";
          id = Some "c";
          retry_after_s = None;
        };
      P.StatsReply (Json.Obj [ ("queued", Json.Int 3) ]);
    ]
  in
  List.iter
    (fun resp ->
      match P.parse_response (Json.to_string (P.response_to_json resp)) with
      | Error e -> Alcotest.failf "response rejected: %s" e
      | Ok resp' ->
        Alcotest.(check bool) "response survives the wire" true (resp = resp'))
    responses

let test_parse_request_total () =
  let expect code line =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error (c, _) ->
      Alcotest.(check string) line
        (P.error_code_to_string code)
        (P.error_code_to_string c)
  in
  expect P.Parse_error "not json";
  expect P.Parse_error "{\"v\": }";
  expect P.Bad_request "{\"op\":\"ping\"}";
  expect P.Bad_request "{\"v\":\"sciduction.serve/0\",\"op\":\"ping\"}";
  expect P.Bad_request
    (Printf.sprintf "{\"v\":%S,\"op\":\"submit\",\"id\":\"x\"}" P.version);
  expect P.Bad_request (Printf.sprintf "{\"v\":%S}" P.version);
  expect P.Unknown_op (Printf.sprintf "{\"v\":%S,\"op\":\"fly\"}" P.version)

(* ------------------------------------------------------------------ *)
(* serving: verdict parity, cache, warm sessions                       *)
(* ------------------------------------------------------------------ *)

let test_served_verdict_matches_direct () =
  with_daemon @@ fun socket ->
  let spec = shift_spec ~len:12 14 in
  let direct = Jobs.run spec in
  (match Client.submit ~socket spec with
  | Error _ -> Alcotest.fail "submit failed"
  | Ok o ->
    Alcotest.(check string) "served verdict is the one-shot verdict"
      direct.Jobs.verdict o.Client.verdict;
    Alcotest.(check int) "served exit code too" direct.Jobs.code
      o.Client.code;
    Alcotest.(check bool) "first answer is computed" false o.Client.cached);
  match Client.submit ~socket spec with
  | Error _ -> Alcotest.fail "repeat submit failed"
  | Ok o ->
    Alcotest.(check bool) "repeat answer comes from the cache" true
      o.Client.cached;
    Alcotest.(check string) "cached verdict identical" direct.Jobs.verdict
      o.Client.verdict

let test_unsafe_verdict_matches_direct () =
  with_daemon @@ fun socket ->
  (* reachable bad value: the UNSAFE path, trace text included *)
  let spec =
    Jobs.Bmc
      {
        system =
          { shift = None; junk = 2; bits = 3; modulus = 6; bad_value = 4 };
        max_depth = 16;
      }
  in
  let direct = Jobs.run spec in
  match Client.submit ~socket spec with
  | Error _ -> Alcotest.fail "submit failed"
  | Ok o ->
    Alcotest.(check string) "served UNSAFE verdict identical"
      direct.Jobs.verdict o.Client.verdict;
    Alcotest.(check int) "exit code 1" 1 o.Client.code

let test_warm_sessions_resume () =
  with_daemon @@ fun socket ->
  let before = stat socket "warm_hits" in
  let shallow = shift_spec ~len:16 6 and deep = shift_spec ~len:16 12 in
  (match Client.submit ~socket shallow with
  | Ok o ->
    Alcotest.(check string) "shallow verdict" (Jobs.run shallow).Jobs.verdict
      o.Client.verdict
  | Error _ -> Alcotest.fail "shallow submit failed");
  (match Client.submit ~socket deep with
  | Ok o ->
    (* the warm continuation must answer exactly like a cold sweep *)
    Alcotest.(check string) "warm verdict is the cold verdict"
      (Jobs.run deep).Jobs.verdict o.Client.verdict;
    Alcotest.(check bool) "deep query is not a cache hit" false
      o.Client.cached
  | Error _ -> Alcotest.fail "deep submit failed");
  Alcotest.(check bool) "the deep query resumed the warm session" true
    (stat socket "warm_hits" > before)

let test_concurrent_clients_isolated () =
  with_daemon ~dispatchers:2 @@ fun socket ->
  let spec_a = shift_spec ~len:10 12
  and spec_b = Jobs.Cegar { junk = 6; bits = 3; modulus = 6; bad_value = 7 } in
  let expect_a = (Jobs.run spec_a).Jobs.verdict
  and expect_b = (Jobs.run spec_b).Jobs.verdict in
  let got_a = ref (Error (`Transport "unset"))
  and got_b = ref (Error (`Transport "unset")) in
  let ta = Thread.create (fun () -> got_a := Client.submit ~socket spec_a) ()
  and tb = Thread.create (fun () -> got_b := Client.submit ~socket spec_b) () in
  Thread.join ta;
  Thread.join tb;
  (match !got_a with
  | Ok o ->
    Alcotest.(check string) "client A got A's verdict" expect_a
      o.Client.verdict
  | Error _ -> Alcotest.fail "client A failed");
  match !got_b with
  | Ok o ->
    Alcotest.(check string) "client B got B's verdict" expect_b
      o.Client.verdict
  | Error _ -> Alcotest.fail "client B failed"

(* ------------------------------------------------------------------ *)
(* typed errors on the wire                                            *)
(* ------------------------------------------------------------------ *)

let test_malformed_lines_typed () =
  with_daemon @@ fun socket ->
  let conn = raw_connect socket in
  Fun.protect ~finally:(fun () -> Unix.close (fst conn)) @@ fun () ->
  let fd = fst conn in
  send_raw fd "this is not json";
  Alcotest.(check string) "garbage -> parse_error" "parse_error"
    (err_code (recv conn));
  send_raw fd "{\"op\":\"ping\"}";
  Alcotest.(check string) "unversioned -> bad_request" "bad_request"
    (err_code (recv conn));
  send_raw fd (Printf.sprintf "{\"v\":%S,\"op\":\"levitate\"}" P.version);
  Alcotest.(check string) "unknown op -> unknown_op" "unknown_op"
    (err_code (recv conn));
  (* the connection survives every rejection *)
  send_req fd P.Ping;
  (match recv conn with
  | P.Pong -> ()
  | r -> Alcotest.failf "expected pong, got %s" (P.response_to_line r));
  (* a line past the cap is answered [oversized], not dropped *)
  send_raw fd
    (Printf.sprintf "{\"v\":%S,\"op\":\"ping\",\"pad\":%S}" P.version
       (String.make (P.max_line_bytes + 1024) 'x'));
  Alcotest.(check string) "oversized line -> oversized" "oversized"
    (err_code (recv conn));
  send_req fd P.Ping;
  match recv conn with
  | P.Pong -> ()
  | r -> Alcotest.failf "expected pong after oversized, got %s"
           (P.response_to_line r)

let test_cancel_unknown_job () =
  with_daemon @@ fun socket ->
  match Client.cancel ~socket ~id:"no-such-job" with
  | Ok () -> Alcotest.fail "cancelling a phantom job succeeded"
  | Error msg ->
    Alcotest.(check bool) "typed unknown_job error" true
      (String.length msg >= 11 && String.sub msg 0 11 = "unknown_job")

let test_duplicate_id_and_explicit_cancel () =
  with_daemon ~dispatchers:1 @@ fun socket ->
  let conn = raw_connect socket in
  Fun.protect ~finally:(fun () -> Unix.close (fst conn)) @@ fun () ->
  let fd = fst conn in
  let submit id spec =
    P.Submit { P.id; spec; timeout = None; max_conflicts = None; priority = 0 }
  in
  (* [block] occupies the only dispatcher, so [dup] stays queued *)
  send_req fd (submit "block" slow_spec);
  (match recv conn with
  | P.Ack "block" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  send_req fd (submit "dup" (Jobs.Lstar { states = 3 }));
  (match recv conn with
  | P.Ack "dup" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  send_req fd (submit "dup" (Jobs.Lstar { states = 3 }));
  Alcotest.(check string) "live id refused" "duplicate_id"
    (err_code (recv conn));
  (* cancelling the queued job answers the canceller and the owner; the
     two lines share this connection in either order *)
  send_req fd (P.Cancel "dup");
  let classify = function
    | P.Ack "dup" -> `Ack
    | P.Err { code = P.Cancelled; id = Some "dup"; _ } -> `Cancelled
    | r -> Alcotest.failf "unexpected response %s" (P.response_to_line r)
  in
  let a = classify (recv conn) and b = classify (recv conn) in
  Alcotest.(check bool) "cancel ack and owner notification" true
    ((a = `Ack && b = `Cancelled) || (a = `Cancelled && b = `Ack))

let test_disconnect_cancels_inflight () =
  with_daemon @@ fun socket ->
  let before = stat socket "cancelled" in
  let conn = raw_connect socket in
  send_req (fst conn)
    (P.Submit
       {
         P.id = "doomed"; spec = slow_spec; timeout = None;
         max_conflicts = None; priority = 0;
       });
  (match recv conn with
  | P.Ack "doomed" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  (* the client vanishes mid-job: its work must be torn down, not run
     to completion against nobody *)
  Unix.close (fst conn);
  let cancelled = eventually socket "cancelled" (fun v -> v > before) in
  Alcotest.(check bool) "disconnect cancelled the job" true
    (cancelled > before);
  ignore (eventually socket "inflight" (fun v -> v = 0) : int)

(* ------------------------------------------------------------------ *)
(* fault isolation                                                     *)
(* ------------------------------------------------------------------ *)

let test_fault_is_typed_and_isolated () =
  with_daemon ~dispatchers:2 @@ fun socket ->
  Fun.protect ~finally:Fault.deactivate @@ fun () ->
  (* [survivor] starts running before the injector arms, so its draw at
     the Serve_job site already happened and cannot fire *)
  let conn = raw_connect socket in
  Fun.protect ~finally:(fun () -> Unix.close (fst conn)) @@ fun () ->
  send_req (fst conn)
    (P.Submit
       {
         P.id = "survivor"; spec = slow_spec; timeout = None;
         max_conflicts = None; priority = 0;
       });
  (match recv conn with
  | P.Ack "survivor" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  ignore (eventually socket "inflight" (fun v -> v >= 1) : int);
  (* only the job site: an armed reader/dispatcher site would kill the
     connection instead of answering the typed job fault under test *)
  Fault.activate ~probability:1.0 ~sites:[ Fault.Serve_job ] ~seed:77 ();
  (match Client.submit ~socket (Jobs.Lstar { states = 3 }) with
  | Error (`Server f) ->
    Alcotest.(check string) "faulted job answers a typed error"
      "fault_injected" f.Client.fcode
  | Ok _ -> Alcotest.fail "armed fault did not fire"
  | Error (`Transport msg) -> Alcotest.failf "transport error: %s" msg);
  Fault.deactivate ();
  (* the server survives the fault and serves the next job *)
  (match Client.submit ~socket (Jobs.Lstar { states = 3 }) with
  | Ok o ->
    Alcotest.(check string) "post-fault job runs normally"
      (Jobs.run (Jobs.Lstar { states = 3 })).Jobs.verdict o.Client.verdict
  | Error _ -> Alcotest.fail "post-fault submit failed");
  (* the in-flight job was untouched by the fault: it is still live and
     answers its own (cancelled) verdict rather than fault_injected *)
  send_req (fst conn) (P.Cancel "survivor");
  let saw_fault = ref false and saw_cancel = ref false in
  for _ = 1 to 2 do
    match recv conn with
    | P.Ack "survivor" -> ()
    | P.Err { code = P.Cancelled; _ } -> saw_cancel := true
    | P.Err { code = P.Fault_injected; _ } -> saw_fault := true
    | r -> Alcotest.failf "unexpected response %s" (P.response_to_line r)
  done;
  Alcotest.(check bool) "survivor was not fault-killed" false !saw_fault;
  Alcotest.(check bool) "survivor answered its cancel" true !saw_cancel

(* ------------------------------------------------------------------ *)
(* --proof through the server                                          *)
(* ------------------------------------------------------------------ *)

let read_prefix path n =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic n

let reconstruct entry =
  let get f k =
    match Option.bind (Json.member k entry) f with
    | Some v -> v
    | None -> Alcotest.failf "index entry lacks %s" k
  in
  let str k = get Json.to_str k in
  let num k = get Json.to_int k in
  let core =
    match Json.member "core" entry with
    | Some (Json.List l) -> List.filter_map Json.to_int l
    | _ -> []
  in
  let cnf =
    Printf.sprintf "p cnf %d %d\n" (num "maxvar")
      (num "cnf_clauses" + List.length core)
    ^ read_prefix (str "cnf") (num "cnf_bytes")
    ^ String.concat "" (List.map (fun l -> Printf.sprintf "%d 0\n" l) core)
  in
  let drat = read_prefix (str "drat") (num "drat_bytes") ^ "0\n" in
  (cnf, drat)

let cleanup_spools prefix =
  let dir = Filename.dirname prefix and base = Filename.basename prefix in
  Array.iter
    (fun f ->
      if
        String.length f > String.length base
        && String.sub f 0 (String.length base) = base
      then Sys.remove (Filename.concat dir f))
    (Sys.readdir dir)

let test_served_proofs_check () =
  let prefix =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "test_server_proof_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Proof.disable ();
      cleanup_spools prefix)
  @@ fun () ->
  Proof.enable ~prefix;
  with_daemon (fun socket ->
      match Client.submit ~socket (shift_spec ~len:10 8) with
      | Error _ -> Alcotest.fail "submit failed"
      | Ok o ->
        Alcotest.(check int) "safe sweep" 0 o.Client.code);
  Proof.disable ();
  match Proof.read_index ~prefix with
  | Error e -> Alcotest.failf "index unreadable: %s" e
  | Ok entries ->
    Alcotest.(check bool) "served unsat verdicts issued certificates" true
      (entries <> []);
    List.iteri
      (fun i entry ->
        let cnf, drat = reconstruct entry in
        match (Drat.parse_dimacs cnf, Drat.parse_proof drat) with
        | Ok c, Ok p -> (
          match Drat.check c p with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "certificate %d rejected: %s" i e)
        | Error e, _ | _, Error e ->
          Alcotest.failf "certificate %d unparseable: %s" i e)
      entries

(* ------------------------------------------------------------------ *)
(* journal: checksummed records, tail tolerance, crash recovery        *)
(* ------------------------------------------------------------------ *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rm_f path = try Sys.remove path with Sys_error _ -> ()

let submit_rec ?(starts = 0) id spec =
  Journal.Submitted
    {
      Journal.sj_id = id;
      sj_key = Jobs.key spec;
      sj_spec = spec;
      sj_timeout = None;
      sj_max_conflicts = None;
      sj_priority = 0;
      sj_starts = starts;
    }

(* damage one payload byte; the checksum must catch it *)
let corrupt line =
  let i = String.length line - 3 in
  String.mapi
    (fun j c -> if j = i then (if c = 'x' then 'y' else 'x') else c)
    line

let test_journal_replay_roundtrip () =
  let path = fresh_path ".journal" in
  Fun.protect ~finally:(fun () -> rm_f path) @@ fun () ->
  let a = shift_spec ~len:10 6 and b = Jobs.Lstar { states = 3 } in
  let records =
    [
      submit_rec "a" a;
      Journal.Started { id = "a" };
      submit_rec "b" b;
      Journal.Done
        {
          id = "b"; key = Jobs.key b; verdict = "LEARNED 3-state machine";
          code = 0; cacheable = true;
        };
      Journal.Cancelled { id = "never-submitted" };
    ]
  in
  write_file path (String.concat "" (List.map Journal.line_of_record records));
  match Journal.replay path with
  | Error e -> Alcotest.failf "replay: %s" e
  | Ok r ->
    Alcotest.(check int) "all records read" 5 r.Journal.rj_records;
    Alcotest.(check int) "nothing dropped" 0 r.Journal.rj_dropped;
    Alcotest.(check (list (pair string int))) "only the started job pends"
      [ ("a", 1) ]
      (List.map
         (fun s -> (s.Journal.sj_id, s.Journal.sj_starts))
         r.Journal.rj_pending);
    Alcotest.(check bool) "pending spec survives the round-trip" true
      ((List.hd r.Journal.rj_pending).Journal.sj_spec = a);
    Alcotest.(check (list (triple string string int)))
      "the cacheable verdict is recovered"
      [ (Jobs.key b, "LEARNED 3-state machine", 0) ]
      r.Journal.rj_results;
    (* a journal that never existed is an empty journal *)
    match Journal.replay (path ^ ".nope") with
    | Error e -> Alcotest.failf "missing-file replay: %s" e
    | Ok r ->
      Alcotest.(check int) "no records" 0 r.Journal.rj_records;
      Alcotest.(check int) "no pending" 0 (List.length r.Journal.rj_pending)

let test_journal_tail_tolerance () =
  let path = fresh_path ".journal" in
  Fun.protect ~finally:(fun () -> rm_f path) @@ fun () ->
  let a = shift_spec ~len:10 6 and b = Jobs.Lstar { states = 3 } in
  let good =
    [ submit_rec "a" a; Journal.Started { id = "a" }; submit_rec "b" b ]
  in
  let done_b =
    Journal.Done
      { id = "b"; key = Jobs.key b; verdict = "x"; code = 0; cacheable = true }
  in
  let tail =
    (* a bit-flipped record, then a half-written one: a crash mid-append *)
    corrupt (Journal.line_of_record done_b)
    ^
    let l = Journal.line_of_record (submit_rec "c" a) in
    String.sub l 0 (String.length l / 2)
  in
  write_file path
    (String.concat "" (List.map Journal.line_of_record good) ^ tail);
  match Journal.replay path with
  | Error e -> Alcotest.failf "replay: %s" e
  | Ok r ->
    Alcotest.(check int) "the intact prefix is applied" 3 r.Journal.rj_records;
    Alcotest.(check int) "the damaged tail is dropped" 2 r.Journal.rj_dropped;
    Alcotest.(check (list string)) "b's lost Done leaves it pending"
      [ "a"; "b" ]
      (List.map (fun s -> s.Journal.sj_id) r.Journal.rj_pending)

let test_journal_crash_recovery () =
  let path = fresh_path ".journal" in
  Fun.protect ~finally:(fun () ->
      rm_f path;
      rm_f (path ^ ".lock"))
  @@ fun () ->
  let spec_a = shift_spec ~len:13 10 and spec_b = shift_spec ~len:14 9 in
  let direct_b = Jobs.run spec_b in
  (* the journal a kill -9 would leave behind: an acked job with no
     terminal record, and a finished job whose verdict was cacheable *)
  write_file path
    (Journal.line_of_record (submit_rec "replayed-a" spec_a)
    ^ Journal.line_of_record
        (Journal.Done
           {
             id = "gone";
             key = Jobs.key spec_b;
             verdict = direct_b.Jobs.verdict;
             code = direct_b.Jobs.code;
             cacheable = true;
           }));
  with_daemon ~journal:path (fun socket ->
      (* the acked-but-unfinished job reruns without any client *)
      ignore (eventually socket "done" (fun v -> v >= 1) : int);
      (match Client.submit ~socket spec_b with
      | Error _ -> Alcotest.fail "submit of recovered-verdict spec failed"
      | Ok o ->
        Alcotest.(check bool) "journal rebuilt the cache" true o.Client.cached;
        Alcotest.(check string) "recovered verdict byte-identical"
          direct_b.Jobs.verdict o.Client.verdict);
      (match Client.submit ~socket spec_a with
      | Error _ -> Alcotest.fail "submit of replayed spec failed"
      | Ok o ->
        Alcotest.(check bool) "replayed job's verdict serves from cache" true
          o.Client.cached;
        Alcotest.(check string) "replayed verdict is the direct verdict"
          (Jobs.run spec_a).Jobs.verdict o.Client.verdict);
      (* the journal is single-owner: a second daemon must be refused *)
      match Daemon.start ~socket:(fresh_socket ()) ~journal:path () with
      | Ok d ->
        Daemon.stop d;
        Alcotest.fail "two daemons shared one journal"
      | Error e ->
        Alcotest.(check bool) "lock named in the refusal" true
          (contains e "lock"));
  (* after a clean stop: no pending work, no stale lock *)
  Alcotest.(check bool) "lock file released" false
    (Sys.file_exists (path ^ ".lock"));
  match Journal.replay path with
  | Error e -> Alcotest.failf "post-stop replay: %s" e
  | Ok r ->
    Alcotest.(check int) "every acked job reached a terminal record" 0
      (List.length r.Journal.rj_pending);
    Alcotest.(check bool) "both verdicts are on disk" true
      (List.length r.Journal.rj_results >= 2)

(* ------------------------------------------------------------------ *)
(* admission control and degraded mode                                 *)
(* ------------------------------------------------------------------ *)

let blank_submit id spec =
  P.Submit { P.id; spec; timeout = None; max_conflicts = None; priority = 0 }

let test_overload_shed_and_client_retry () =
  with_daemon ~dispatchers:1 ~queue_limit:1 ~retry_after_s:0.07
    ~degrade_after_s:30.0
  @@ fun socket ->
  let conn = raw_connect socket in
  Fun.protect ~finally:(fun () ->
      try Unix.close (fst conn) with Unix.Unix_error _ -> ())
  @@ fun () ->
  let fd = fst conn in
  send_req fd (blank_submit "block" slow_spec);
  (match recv conn with
  | P.Ack "block" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  ignore (eventually socket "inflight" (fun v -> v >= 1) : int);
  send_req fd (blank_submit "q1" (Jobs.Lstar { states = 3 }));
  (match recv conn with
  | P.Ack "q1" -> ()
  | r -> Alcotest.failf "expected ack, got %s" (P.response_to_line r));
  (* the queue is at its high watermark: shed, typed, with the hint *)
  send_req fd (blank_submit "q2" (Jobs.Lstar { states = 5 }));
  (match recv conn with
  | P.Err { code = P.Overloaded; id = Some "q2"; retry_after_s = Some s; _ }
    ->
    Alcotest.(check (float 1e-6)) "hint is the configured retry_after_s" 0.07
      s
  | r -> Alcotest.failf "expected overloaded, got %s" (P.response_to_line r));
  Alcotest.(check bool) "shed counted" true (stat socket "shed" >= 1);
  (* a retrying client rides the burst out; its first delay is the
     server's hint (larger than its own base backoff), and the call
     lands once the queue drains *)
  let sleeps = ref [] in
  let retry =
    {
      Client.attempts = 60;
      base_s = 0.01;
      cap_s = 0.02;
      sleep =
        (fun d ->
          sleeps := d :: !sleeps;
          Thread.delay d);
    }
  in
  let r0 = Client.retries () in
  let canceller =
    Thread.create
      (fun () ->
        Thread.delay 0.15;
        ignore (Client.cancel ~socket ~id:"q1" : (unit, string) result);
        ignore (Client.cancel ~socket ~id:"block" : (unit, string) result))
      ()
  in
  let spec = Jobs.Lstar { states = 4 } in
  let res = Client.submit ~socket ~retry spec in
  Thread.join canceller;
  (match res with
  | Ok o ->
    Alcotest.(check string) "the retried submit got the real verdict"
      (Jobs.run spec).Jobs.verdict o.Client.verdict
  | Error _ -> Alcotest.fail "retrying client never landed");
  (match List.rev !sleeps with
  | first :: _ ->
    Alcotest.(check (float 1e-6)) "first backoff honors the server hint"
      0.07 first
  | [] -> Alcotest.fail "client landed without ever being shed");
  Alcotest.(check bool) "client retries counted" true (Client.retries () > r0)

let test_degraded_mode_cycle () =
  with_daemon ~dispatchers:1 ~queue_limit:4 ~degrade_after_s:0.0
    ~retry_after_s:0.05
  @@ fun socket ->
  (* a resident warm family first: degraded mode must keep serving it *)
  let warm_shallow = shift_spec ~len:15 6 and warm_deep = shift_spec ~len:15 12 in
  (match Client.submit ~socket warm_shallow with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "pre-warm submit failed");
  let conn_block = raw_connect socket
  and conn_fill = raw_connect socket
  and conn_warm = raw_connect socket in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun c -> try Unix.close (fst c) with Unix.Unix_error _ -> ())
        [ conn_block; conn_fill; conn_warm ])
  @@ fun () ->
  let submit conn id spec =
    send_req (fst conn) (blank_submit id spec);
    match recv conn with
    | P.Ack got when got = id -> `Ack
    | P.Err { code; retry_after_s; _ } ->
      `Err (P.error_code_to_string code, retry_after_s)
    | r -> Alcotest.failf "unexpected response %s" (P.response_to_line r)
  in
  (* wedge the only dispatcher, then fill the queue to the watermark *)
  (match submit conn_block "block" slow_spec with
  | `Ack -> ()
  | `Err _ -> Alcotest.fail "blocker shed");
  ignore (eventually socket "inflight" (fun v -> v >= 1) : int);
  List.iter
    (fun id ->
      match submit conn_fill id (Jobs.Lstar { states = 3 }) with
      | `Ack -> ()
      | `Err _ -> Alcotest.failf "%s shed below the watermark" id)
    [ "q1"; "q2"; "q3"; "q4" ];
  (* watermark hit: first shed opens the sustain window; with a
     zero-length window the second shed flips the daemon degraded *)
  (match submit conn_fill "q5" (Jobs.Lstar { states = 3 }) with
  | `Err ("overloaded", Some s) ->
    Alcotest.(check (float 1e-6)) "shed carries the hint" 0.05 s
  | _ -> Alcotest.fail "q5 was not shed overloaded");
  (match submit conn_fill "q6" (Jobs.Lstar { states = 3 }) with
  | `Err ("overloaded", _) -> ()
  | _ -> Alcotest.fail "q6 was not shed");
  Alcotest.(check int) "daemon is degraded" 1 (stat socket "degraded");
  Alcotest.(check bool) "sheds counted" true (stat socket "shed" >= 2);
  (* drop below the high watermark: still degraded, so fresh non-warm
     work is shed while the warm family is admitted *)
  (match Client.cancel ~socket ~id:"q4" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cancel q4: %s" e);
  (match recv conn_fill with
  | P.Err { code = P.Cancelled; id = Some "q4"; _ } -> ()
  | r -> Alcotest.failf "expected q4's cancel, got %s" (P.response_to_line r));
  (match submit conn_fill "fresh" (Jobs.Lstar { states = 4 }) with
  | `Err ("overloaded", _) -> ()
  | _ -> Alcotest.fail "degraded daemon admitted fresh non-warm work");
  (match submit conn_warm "warmjob" warm_deep with
  | `Ack -> ()
  | `Err _ -> Alcotest.fail "degraded daemon shed a warm-family job");
  (* drain the queue: pressure gone, no dispatcher deaths → exit *)
  List.iter
    (fun id -> ignore (Client.cancel ~socket ~id : (unit, string) result))
    [ "q1"; "q2"; "q3"; "block" ];
  (match recv conn_warm with
  | P.Result { id = "warmjob"; verdict; cached; _ } ->
    Alcotest.(check string) "warm verdict is the cold verdict"
      (Jobs.run warm_deep).Jobs.verdict verdict;
    Alcotest.(check bool) "computed, not cached" false cached
  | r -> Alcotest.failf "unexpected response %s" (P.response_to_line r));
  ignore (eventually socket "degraded" (fun v -> v = 0) : int);
  Alcotest.(check int) "degraded exited after the drain" 0
    (stat socket "degraded");
  match Client.submit ~socket ~retry:Client.no_retry (Jobs.Lstar { states = 4 })
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "recovered daemon refused fresh work"

(* ------------------------------------------------------------------ *)
(* dispatcher supervision                                              *)
(* ------------------------------------------------------------------ *)

let test_supervisor_requeues_and_job_survives () =
  with_daemon ~dispatchers:1 ~restart_budget:5 @@ fun socket ->
  Fun.protect ~finally:Fault.deactivate @@ fun () ->
  (* pick a seed whose Serve_dispatch draw sequence is fire, no-fire:
     the first claim kills the dispatcher, the requeued claim runs *)
  let rec find_seed s =
    Fault.activate ~probability:0.5 ~sites:[ Fault.Serve_dispatch ] ~seed:s ();
    let a = Fault.fire Fault.Serve_dispatch in
    let b = Fault.fire Fault.Serve_dispatch in
    Fault.deactivate ();
    if a && not b then s else find_seed (s + 1)
  in
  let seed = find_seed 0 in
  (* the registry counters are process-global: assert deltas *)
  let rq0 = stat socket "requeued" and rs0 = stat socket "dispatcher_restarts" in
  Fault.activate ~probability:0.5 ~sites:[ Fault.Serve_dispatch ] ~seed ();
  let spec = Jobs.Lstar { states = 4 } in
  (match Client.submit ~socket ~retry:Client.no_retry spec with
  | Ok o ->
    Alcotest.(check string) "verdict survived the dispatcher death"
      (Jobs.run spec).Jobs.verdict o.Client.verdict;
    Alcotest.(check bool) "computed, not cached" false o.Client.cached
  | Error _ -> Alcotest.fail "submit failed despite the requeue");
  Fault.deactivate ();
  Alcotest.(check int) "exactly one requeue" 1 (stat socket "requeued" - rq0);
  Alcotest.(check int) "exactly one restart" 1
    (stat socket "dispatcher_restarts" - rs0)

let test_supervisor_gives_up_typed () =
  with_daemon ~dispatchers:1 ~restart_budget:1 ~degrade_after_s:0.2
  @@ fun socket ->
  Fun.protect ~finally:Fault.deactivate @@ fun () ->
  let rq0 = stat socket "requeued" and rs0 = stat socket "dispatcher_restarts" in
  Fault.activate ~probability:1.0 ~sites:[ Fault.Serve_dispatch ] ~seed:11 ();
  (match
     Client.submit ~socket ~retry:Client.no_retry (Jobs.Lstar { states = 3 })
   with
  | Error (`Server f) ->
    Alcotest.(check string) "give-up is a typed internal_error"
      "internal_error" f.Client.fcode
  | Ok _ -> Alcotest.fail "poisoned job returned a verdict"
  | Error (`Transport m) -> Alcotest.failf "transport error: %s" m);
  Alcotest.(check bool) "budget+1 dispatcher deaths" true
    (stat socket "dispatcher_restarts" - rs0 >= 2);
  Alcotest.(check int) "one requeue before giving up" 1
    (stat socket "requeued" - rq0);
  Fault.deactivate ();
  (* two deaths in the window flipped the daemon degraded; the slot was
     re-armed, so a retrying client rides out the recovery *)
  let spec = Jobs.Lstar { states = 4 } in
  match
    Client.submit ~socket
      ~retry:{ Client.default_retry with attempts = 20; base_s = 0.1 }
      spec
  with
  | Ok o ->
    Alcotest.(check string) "post-give-up verdict correct"
      (Jobs.run spec).Jobs.verdict o.Client.verdict
  | Error _ -> Alcotest.fail "daemon did not recover after give-up"

(* ------------------------------------------------------------------ *)
(* reader fuzz corpus                                                  *)
(* ------------------------------------------------------------------ *)

let write_sub fd s off len = ignore (Unix.write_substring fd s off len : int)

let test_reader_fuzz_corpus () =
  with_daemon @@ fun socket ->
  let conn = raw_connect socket in
  Fun.protect ~finally:(fun () ->
      try Unix.close (fst conn) with Unix.Unix_error _ -> ())
  @@ fun () ->
  let fd = fst conn in
  let expect_err what line =
    send_raw fd line;
    match recv conn with
    | P.Err _ -> ()
    | r ->
      Alcotest.failf "%s: expected a typed error, got %s" what
        (P.response_to_line r)
  in
  expect_err "truncated json" "{\"v\":\"sciduction";
  expect_err "nul byte in string" "{\"v\":\"a\000b\"}";
  expect_err "binary garbage" "\xff\xfe\x00\x01\x7f";
  expect_err "bare array" "[1,2,3]";
  expect_err "empty object" "{}";
  (* a frame split across writes is reassembled, not rejected *)
  let ping = Json.to_string (P.request_to_json P.Ping) ^ "\n" in
  let half = String.length ping / 2 in
  write_sub fd ping 0 half;
  Thread.delay 0.05;
  write_sub fd ping half (String.length ping - half);
  (match recv conn with
  | P.Pong -> ()
  | r -> Alcotest.failf "split ping: got %s" (P.response_to_line r));
  (* a peer dying mid-frame must not take the server down *)
  let fd2, _ = raw_connect socket in
  let partial = "{\"v\":\"sciduction.serve/1\",\"op\":\"sub" in
  write_sub fd2 partial 0 (String.length partial);
  Unix.close fd2;
  (* nor a peer that floods an unterminated oversized frame and leaves *)
  let fd3, _ = raw_connect socket in
  let flood = String.make 100_000 '{' in
  write_sub fd3 flood 0 (String.length flood);
  Unix.close fd3;
  Thread.delay 0.1;
  send_req fd P.Ping;
  (match recv conn with
  | P.Pong -> ()
  | r -> Alcotest.failf "post-fuzz ping: got %s" (P.response_to_line r));
  let spec = Jobs.Lstar { states = 3 } in
  match Client.submit ~socket spec with
  | Ok o ->
    Alcotest.(check string) "server still serves real work"
      (Jobs.run spec).Jobs.verdict o.Client.verdict
  | Error _ -> Alcotest.fail "submit after fuzzing failed"

(* ------------------------------------------------------------------ *)
(* warm store LRU bound                                                *)
(* ------------------------------------------------------------------ *)

let test_warm_lru_eviction () =
  with_daemon ~warm_capacity:1 @@ fun socket ->
  let ev0 = stat socket "warm_evictions" in
  let fam_a = shift_spec ~len:10 6 and fam_b = shift_spec ~len:11 6 in
  (match Client.submit ~socket fam_a with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "family A submit failed");
  Alcotest.(check int) "one resident family" 1 (stat socket "warm_families");
  (match Client.submit ~socket fam_b with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "family B submit failed");
  Alcotest.(check bool) "admitting B evicted A" true
    (stat socket "warm_evictions" > ev0);
  Alcotest.(check int) "still one resident family" 1
    (stat socket "warm_families");
  (* the evicted family restarts cold — and still answers correctly *)
  let deep_a = shift_spec ~len:10 12 in
  match Client.submit ~socket deep_a with
  | Ok o ->
    Alcotest.(check string) "evicted family recomputed correctly"
      (Jobs.run deep_a).Jobs.verdict o.Client.verdict;
    Alcotest.(check bool) "not a cache hit" false o.Client.cached
  | Error _ -> Alcotest.fail "deep submit after eviction failed"

(* ------------------------------------------------------------------ *)
(* retrying client                                                     *)
(* ------------------------------------------------------------------ *)

let test_client_backoff_schedule () =
  (* nothing listens on this socket: every attempt is a transport
     failure, and the recorded sleeps must be the published schedule *)
  let socket = fresh_socket () in
  let sleeps = ref [] in
  let retry =
    {
      Client.attempts = 4;
      base_s = 0.01;
      cap_s = 0.05;
      sleep = (fun d -> sleeps := d :: !sleeps);
    }
  in
  let r0 = Client.retries () in
  (match Client.submit ~socket ~retry (Jobs.Lstar { states = 3 }) with
  | Error (`Transport _) -> ()
  | Ok _ -> Alcotest.fail "submit to a dead socket succeeded"
  | Error (`Server _) -> Alcotest.fail "dead socket answered a typed error");
  let got = List.rev !sleeps in
  Alcotest.(check int) "one sleep per failed attempt but the last" 3
    (List.length got);
  List.iteri
    (fun k d ->
      Alcotest.(check (float 1e-12)) "deterministic jittered delay"
        (Client.backoff_delay retry k)
        d)
    got;
  Alcotest.(check int) "retries counted" 3 (Client.retries () - r0)

let test_client_reconnects_across_restart () =
  let socket = fresh_socket () in
  (* a daemon lived and died here; the client starts against nothing *)
  (match Daemon.start ~socket () with
  | Error e -> Alcotest.failf "first daemon start: %s" e
  | Ok d -> Daemon.stop d);
  let d2 = ref None in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        match Daemon.start ~socket () with
        | Ok d -> d2 := Some d
        | Error _ -> ())
      ()
  in
  let spec = Jobs.Lstar { states = 4 } in
  let r0 = Client.retries () in
  let res =
    Client.submit ~socket
      ~retry:{ Client.default_retry with attempts = 40; base_s = 0.05 }
      spec
  in
  Thread.join starter;
  Fun.protect ~finally:(fun () -> Option.iter Daemon.stop !d2) @@ fun () ->
  match res with
  | Ok o ->
    Alcotest.(check string) "verdict after riding out the restart"
      (Jobs.run spec).Jobs.verdict o.Client.verdict;
    Alcotest.(check bool) "reconnects were needed and counted" true
      (Client.retries () > r0)
  | Error _ -> Alcotest.fail "client did not ride out the restart"

(* ------------------------------------------------------------------ *)
(* socket lifecycle at bind                                            *)
(* ------------------------------------------------------------------ *)

let test_stale_socket_handling () =
  (* a socket file left by a dead listener is probed and replaced *)
  let path = fresh_socket () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1;
  Unix.close fd;
  Alcotest.(check bool) "stale file present" true (Sys.file_exists path);
  (match Daemon.start ~socket:path () with
  | Error e -> Alcotest.failf "stale socket not replaced: %s" e
  | Ok d ->
    Fun.protect ~finally:(fun () -> Daemon.stop d) @@ fun () ->
    (match Client.ping ~socket:path () with
    | Ok () -> ()
    | Error e -> Alcotest.failf "ping after replacement: %s" e));
  (* a live daemon on the path is refused, not clobbered *)
  with_daemon (fun live ->
      (match Daemon.start ~socket:live () with
      | Ok d ->
        Daemon.stop d;
        Alcotest.fail "second daemon bound over a live one"
      | Error e ->
        Alcotest.(check bool) "refusal names the live server" true
          (contains e "live"));
      match Client.ping ~socket:live () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "live daemon harmed by the probe: %s" e);
  (* an unrelated file is never unlinked *)
  let reg = fresh_path ".txt" in
  write_file reg "precious";
  Fun.protect ~finally:(fun () -> rm_f reg) @@ fun () ->
  (match Daemon.start ~socket:reg () with
  | Ok d ->
    Daemon.stop d;
    Alcotest.fail "daemon replaced a regular file"
  | Error e ->
    Alcotest.(check bool) "refusal says not-a-socket" true
      (contains e "not a socket"));
  let ic = open_in_bin reg in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  Alcotest.(check string) "file content untouched" "precious"
    (really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "specs round-trip JSON" `Quick
            test_spec_roundtrip;
          Alcotest.test_case "requests round-trip the wire" `Quick
            test_request_roundtrip;
          Alcotest.test_case "responses round-trip the wire" `Quick
            test_response_roundtrip;
          Alcotest.test_case "parser is total and typed" `Quick
            test_parse_request_total;
        ] );
      ( "serving",
        [
          Alcotest.test_case "served verdict == direct run" `Quick
            test_served_verdict_matches_direct;
          Alcotest.test_case "unsafe verdict == direct run" `Quick
            test_unsafe_verdict_matches_direct;
          Alcotest.test_case "warm sessions resume" `Quick
            test_warm_sessions_resume;
          Alcotest.test_case "concurrent clients isolated" `Quick
            test_concurrent_clients_isolated;
        ] );
      ( "errors",
        [
          Alcotest.test_case "malformed lines answer typed" `Quick
            test_malformed_lines_typed;
          Alcotest.test_case "cancel of unknown job" `Quick
            test_cancel_unknown_job;
          Alcotest.test_case "duplicate id and explicit cancel" `Quick
            test_duplicate_id_and_explicit_cancel;
          Alcotest.test_case "disconnect cancels in-flight work" `Quick
            test_disconnect_cancels_inflight;
        ] );
      ( "faults",
        [
          Alcotest.test_case "typed error, others complete" `Quick
            test_fault_is_typed_and_isolated;
        ] );
      ( "journal",
        [
          Alcotest.test_case "records replay losslessly" `Quick
            test_journal_replay_roundtrip;
          Alcotest.test_case "corrupt and truncated tails dropped" `Quick
            test_journal_tail_tolerance;
          Alcotest.test_case "crash recovery loses no acked work" `Quick
            test_journal_crash_recovery;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload sheds; client retries land" `Quick
            test_overload_shed_and_client_retry;
          Alcotest.test_case "degraded mode enter/serve-warm/exit" `Quick
            test_degraded_mode_cycle;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "dispatcher death requeues the job" `Quick
            test_supervisor_requeues_and_job_survives;
          Alcotest.test_case "poisoned job gives up typed" `Quick
            test_supervisor_gives_up_typed;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "malformed wire corpus" `Quick
            test_reader_fuzz_corpus;
        ] );
      ( "warm",
        [
          Alcotest.test_case "LRU eviction past capacity" `Quick
            test_warm_lru_eviction;
        ] );
      ( "client",
        [
          Alcotest.test_case "backoff schedule deterministic" `Quick
            test_client_backoff_schedule;
          Alcotest.test_case "reconnects across a restart" `Quick
            test_client_reconnects_across_restart;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "stale socket replaced, live refused" `Quick
            test_stale_socket_handling;
        ] );
      ( "proof",
        [
          Alcotest.test_case "served certificates verify" `Quick
            test_served_proofs_check;
        ] );
    ]
