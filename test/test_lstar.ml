(* Tests for the L*/assume-guarantee instance: DFA algebra, Angluin's
   algorithm, and the learning-based compositional rule. *)

module Dfa = Lstar.Dfa
module Learner = Lstar.Learner
module Agr = Lstar.Agr

(* parity of symbol-0 occurrences: accepts words with an even count *)
let even_zeros =
  Dfa.make ~alphabet:2 ~start:0
    ~accept:[| true; false |]
    ~delta:[| [| 1; 0 |]; [| 0; 1 |] |]

(* no two consecutive 1s *)
let no_11 =
  Dfa.make ~alphabet:2 ~start:0
    ~accept:[| true; true; false |]
    ~delta:[| [| 0; 1 |]; [| 0; 2 |]; [| 2; 2 |] |]

(* ------------------------------------------------------------------ *)
(* DFA algebra                                                         *)
(* ------------------------------------------------------------------ *)

let test_run_accepts () =
  Alcotest.(check bool) "empty word" true (Dfa.accepts even_zeros []);
  Alcotest.(check bool) "one zero" false (Dfa.accepts even_zeros [ 0 ]);
  Alcotest.(check bool) "two zeros" true (Dfa.accepts even_zeros [ 0; 1; 0 ]);
  Alcotest.(check bool) "11 rejected" false (Dfa.accepts no_11 [ 0; 1; 1 ]);
  Alcotest.(check bool) "101 accepted" true (Dfa.accepts no_11 [ 1; 0; 1 ])

let test_complement () =
  let c = Dfa.complement even_zeros in
  List.iter
    (fun w ->
      Alcotest.(check bool) "flipped" (not (Dfa.accepts even_zeros w))
        (Dfa.accepts c w))
    [ []; [ 0 ]; [ 0; 0 ]; [ 1; 0; 1 ] ]

let test_product () =
  let both = Dfa.inter even_zeros no_11 in
  List.iter
    (fun w ->
      Alcotest.(check bool) "intersection semantics"
        (Dfa.accepts even_zeros w && Dfa.accepts no_11 w)
        (Dfa.accepts both w))
    [ []; [ 0 ]; [ 0; 0 ]; [ 1; 1 ]; [ 0; 1; 0; 1 ]; [ 1; 0; 1 ] ]

let test_emptiness () =
  (match Dfa.find_accepted (Dfa.empty ~alphabet:2) with
  | None -> ()
  | Some _ -> Alcotest.fail "empty language");
  match Dfa.find_accepted (Dfa.inter no_11 (Dfa.complement no_11)) with
  | None -> ()
  | Some _ -> Alcotest.fail "L and not L intersect"

let test_subset () =
  (* words that avoid symbol 1 completely satisfy no_11 *)
  let no_ones =
    Dfa.make ~alphabet:2 ~start:0 ~accept:[| true; false |]
      ~delta:[| [| 0; 1 |]; [| 1; 1 |] |]
  in
  (match Dfa.subset no_ones no_11 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "no-ones subset of no-11");
  match Dfa.subset no_11 no_ones with
  | Error w ->
    Alcotest.(check bool) "witness in difference" true
      (Dfa.accepts no_11 w && not (Dfa.accepts no_ones w))
  | Ok () -> Alcotest.fail "inclusion is strict"

let test_minimize () =
  (* blow up even_zeros with duplicated states via product with universal *)
  let fat = Dfa.inter even_zeros (Dfa.universal ~alphabet:2) in
  let slim = Dfa.minimize fat in
  Alcotest.(check int) "two states suffice" 2 slim.Dfa.num_states;
  match Dfa.equal slim even_zeros with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "minimization changed the language"

let test_of_words () =
  let d = Dfa.of_words ~alphabet:2 [ [ 0; 1 ]; [ 1 ]; [] ] in
  List.iter
    (fun (w, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "word %s" (String.concat "" (List.map string_of_int w)))
        expect (Dfa.accepts d w))
    [ ([], true); ([ 1 ], true); ([ 0; 1 ], true); ([ 0 ], false); ([ 1; 1 ], false) ]

(* ------------------------------------------------------------------ *)
(* L*                                                                  *)
(* ------------------------------------------------------------------ *)

let conv = function
  | Budget.Converged x -> x
  | Budget.Exhausted _ -> Alcotest.fail "unbudgeted run exhausted"

let check_learns target expected_states =
  let h, stats = conv (Learner.learn_exact ~target ()) in
  (match Dfa.equal h target with
  | Ok () -> ()
  | Error w ->
    Alcotest.failf "learned wrong language (cex %s)"
      (String.concat "" (List.map string_of_int w)));
  Alcotest.(check int) "minimal hypothesis" expected_states
    (Dfa.minimize h).Dfa.num_states;
  Alcotest.(check bool) "polynomially many queries" true
    (stats.Learner.membership_queries < 500)

let test_lstar_even_zeros () = check_learns even_zeros 2
let test_lstar_no11 () = check_learns no_11 3

let test_lstar_finite_language () =
  (* minimal DFA: start, "0", "01", one merged accepting state for "010"
     and "1", and the dead state *)
  check_learns (Dfa.of_words ~alphabet:2 [ [ 0; 1; 0 ]; [ 1 ] ]) 5

let test_lstar_universal () = check_learns (Dfa.universal ~alphabet:3) 1

let prop_lstar_random_dfas =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 5 in
      let* accept = array_size (return n) bool in
      let* delta =
        array_size (return n) (array_size (return 2) (int_range 0 (n - 1)))
      in
      return (Dfa.make ~alphabet:2 ~start:0 ~accept ~delta))
  in
  QCheck2.Test.make ~name:"L* learns random DFAs exactly" ~count:60
    ~print:(fun d -> Format.asprintf "%a" Dfa.pp d)
    gen
    (fun target ->
      match Learner.learn_exact ~target () with
      | Budget.Converged (h, _) -> Dfa.equal h target = Ok ()
      | Budget.Exhausted _ -> false)

(* ------------------------------------------------------------------ *)
(* Assume-guarantee                                                    *)
(* ------------------------------------------------------------------ *)

(* alphabet {0 = acquire, 1 = release}: M1 allows anything but enforces
   nothing; M2 always alternates acquire/release; P = no two consecutive
   acquires *)
let alternator =
  Dfa.make ~alphabet:2 ~start:0
    ~accept:[| true; true |]
    ~delta:[| [| 1; 0 |]; [| 1; 0 |] |]

(* M2 proper: alternates, rejects double acquire or stray release *)
let strict_alternator =
  Dfa.make ~alphabet:2 ~start:0
    ~accept:[| true; true; false |]
    ~delta:[| [| 1; 2 |]; [| 2; 0 |]; [| 2; 2 |] |]

let no_double_acquire =
  Dfa.make ~alphabet:2 ~start:0
    ~accept:[| true; true; false |]
    ~delta:[| [| 1; 0 |]; [| 2; 0 |]; [| 2; 2 |] |]

let test_agr_holds () =
  match
    conv
      (Agr.check ~m1:alternator ~m2:strict_alternator
         ~prop:no_double_acquire ())
  with
  | Agr.Holds { assumption; _ } ->
    (* the assumption must cover M2 and keep M1 safe *)
    (match Dfa.subset strict_alternator assumption with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "premise 2 violated by final assumption");
    (match Dfa.subset (Dfa.inter alternator assumption) no_double_acquire with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "premise 1 violated by final assumption")
  | Agr.Violated _ -> Alcotest.fail "composition satisfies the property"

let test_agr_violated () =
  (* M2 = unconstrained can double-acquire *)
  match
    conv (Agr.check ~m1:alternator ~m2:alternator ~prop:no_double_acquire ())
  with
  | Agr.Violated w ->
    Alcotest.(check bool) "witness is a real violation" true
      (Dfa.accepts alternator w && not (Dfa.accepts no_double_acquire w))
  | Agr.Holds _ -> Alcotest.fail "double acquire is reachable"

let test_weakest_assumption () =
  Alcotest.(check bool) "safe word in WA" true
    (Agr.weakest_assumption_member ~m1:alternator ~prop:no_double_acquire [ 0; 1 ]);
  Alcotest.(check bool) "violating word not in WA" false
    (Agr.weakest_assumption_member ~m1:alternator ~prop:no_double_acquire [ 0; 0 ])

let test_agr_matches_monolithic () =
  (* differential: the rule's verdict equals the direct product check *)
  let cases =
    [
      (alternator, strict_alternator, no_double_acquire);
      (alternator, alternator, no_double_acquire);
      (strict_alternator, alternator, no_double_acquire);
      (no_11, even_zeros, no_11);
      (even_zeros, no_11, Dfa.universal ~alphabet:2);
    ]
  in
  List.iter
    (fun (m1, m2, prop) ->
      let direct = Dfa.subset (Dfa.inter m1 m2) prop = Ok () in
      let agr =
        match conv (Agr.check ~m1 ~m2 ~prop ()) with
        | Agr.Holds _ -> true
        | Agr.Violated _ -> false
      in
      Alcotest.(check bool) "AGR = monolithic" direct agr)
    cases

(* ------------------------------------------------------------------ *)
(* Assumption mining from traces                                       *)
(* ------------------------------------------------------------------ *)

module Mining = Lstar.Mining

let test_prefix_tree () =
  let d = Mining.prefix_tree ~alphabet:2 [ [ 0; 1 ]; [ 0; 0 ] ] in
  List.iter
    (fun (w, expect) ->
      Alcotest.(check bool)
        (String.concat "" (List.map string_of_int w))
        expect (Lstar.Dfa.accepts d w))
    [
      ([], true); ([ 0 ], true); ([ 0; 1 ], true); ([ 0; 0 ], true);
      ([ 1 ], false); ([ 0; 1; 0 ], false);
    ]

let test_mining_generalizes_periodic_traces () =
  (* a few alternation traces generalize to the infinite alternation *)
  let traces = [ [ 0; 1; 0; 1; 0; 1 ]; [ 0; 1 ] ] in
  let mined = Mining.mine ~alphabet:2 ~k:1 traces in
  Alcotest.(check bool) "consistent" true (Mining.consistent mined traces);
  Alcotest.(check bool) "prefix closed" true (Mining.is_prefix_closed mined);
  (* accepts alternations far longer than any trace *)
  let long = List.concat (List.init 20 (fun _ -> [ 0; 1 ])) in
  Alcotest.(check bool) "generalized beyond the traces" true
    (Lstar.Dfa.accepts mined long);
  Alcotest.(check bool) "still rejects double-0" false
    (Lstar.Dfa.accepts mined [ 0; 0 ])

let test_mining_k_controls_generalization () =
  (* with a large k nothing merges: the language stays the prefixes *)
  let traces = [ [ 0; 1; 0; 1 ] ] in
  let exact = Mining.mine ~alphabet:2 ~k:10 traces in
  Alcotest.(check bool) "no generalization at large k" false
    (Lstar.Dfa.accepts exact [ 0; 1; 0; 1; 0; 1 ]);
  let loose = Mining.mine ~alphabet:2 ~k:1 traces in
  Alcotest.(check bool) "generalization at k=1" true
    (Lstar.Dfa.accepts loose [ 0; 1; 0; 1; 0; 1 ])

let test_mining_always_consistent =
  QCheck2.Test.make ~name:"mined assumptions accept their traces" ~count:150
    ~print:(fun traces ->
      String.concat " "
        (List.map (fun w -> String.concat "" (List.map string_of_int w)) traces))
    QCheck2.Gen.(
      list_size (int_range 1 4) (list_size (int_range 0 6) (int_range 0 1)))
    (fun traces ->
      List.for_all
        (fun k ->
          let mined = Mining.mine ~alphabet:2 ~k traces in
          Mining.consistent mined traces && Mining.is_prefix_closed mined)
        [ 1; 2; 3 ])

let test_mined_assumption_in_agr () =
  (* mine M2's behaviour from traces and discharge the AGR premises with
     the mined assumption directly (no L* needed) *)
  let traces = [ [ 0; 1; 0; 1 ]; [ 0; 1 ]; [] ] in
  let mined = Mining.mine ~alphabet:2 ~k:1 traces in
  (match Dfa.subset (Dfa.inter alternator mined) no_double_acquire with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "premise 1 fails with the mined assumption");
  match Dfa.subset strict_alternator mined with
  | Ok () -> ()
  | Error w ->
    Alcotest.failf "premise 2 fails: %s escapes the mined assumption"
      (String.concat "" (List.map string_of_int w))

let gen_dfa =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* accept = array_size (return n) bool in
    let* delta =
      array_size (return n) (array_size (return 2) (int_range 0 (n - 1)))
    in
    return (Dfa.make ~alphabet:2 ~start:0 ~accept ~delta))

let prop_agr_random =
  QCheck2.Test.make ~name:"AGR verdict = monolithic check on random triples"
    ~count:80
    ~print:(fun (m1, m2, p) ->
      Format.asprintf "m1=%a@.m2=%a@.p=%a" Dfa.pp m1 Dfa.pp m2 Dfa.pp p)
    QCheck2.Gen.(triple gen_dfa gen_dfa gen_dfa)
    (fun (m1, m2, prop) ->
      let direct = Dfa.subset (Dfa.inter m1 m2) prop = Ok () in
      match conv (Agr.check ~m1 ~m2 ~prop ()) with
      | Agr.Holds _ -> direct
      | Agr.Violated w ->
        (not direct)
        && Dfa.accepts m1 w && Dfa.accepts m2 w && not (Dfa.accepts prop w))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lstar"
    [
      ( "dfa",
        [
          Alcotest.test_case "run/accepts" `Quick test_run_accepts;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "emptiness" `Quick test_emptiness;
          Alcotest.test_case "subset with witness" `Quick test_subset;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "finite languages" `Quick test_of_words;
        ] );
      ( "lstar",
        [
          Alcotest.test_case "even zeros" `Quick test_lstar_even_zeros;
          Alcotest.test_case "no 11" `Quick test_lstar_no11;
          Alcotest.test_case "finite language" `Quick test_lstar_finite_language;
          Alcotest.test_case "universal" `Quick test_lstar_universal;
        ]
        @ qsuite [ prop_lstar_random_dfas ] );
      ( "agr",
        [
          Alcotest.test_case "property holds via assumption" `Quick
            test_agr_holds;
          Alcotest.test_case "real violation reported" `Quick test_agr_violated;
          Alcotest.test_case "weakest assumption membership" `Quick
            test_weakest_assumption;
          Alcotest.test_case "agrees with monolithic check" `Quick
            test_agr_matches_monolithic;
        ]
        @ qsuite [ prop_agr_random ] );
      ( "mining",
        [
          Alcotest.test_case "prefix tree" `Quick test_prefix_tree;
          Alcotest.test_case "generalizes periodic traces" `Quick
            test_mining_generalizes_periodic_traces;
          Alcotest.test_case "k controls generalization" `Quick
            test_mining_k_controls_generalization;
          Alcotest.test_case "mined assumption discharges AGR" `Quick
            test_mined_assumption_in_agr;
        ]
        @ qsuite [ test_mining_always_consistent ] );
    ]
