(* Tests for the SMT substrate: literals, CDCL SAT, Tseitin gates, the
   bit-vector AST and the bit blaster. The most important tests here are
   differential: CDCL vs the naive DPLL reference on random CNF, and the
   bit blaster vs the big-step evaluator on random QF_BV formulas. *)

module Lit = Smt.Lit
module Sat = Smt.Sat
module Dpll = Smt.Dpll
module Tseitin = Smt.Tseitin
module Bv = Smt.Bv
module Bitblast = Smt.Bitblast
module Solver = Smt.Solver

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

let test_lit_roundtrip () =
  for v = 0 to 20 do
    let p = Lit.pos v and n = Lit.neg_of v in
    Alcotest.(check int) "var of pos" v (Lit.var p);
    Alcotest.(check int) "var of neg" v (Lit.var n);
    Alcotest.(check bool) "sign pos" true (Lit.sign p);
    Alcotest.(check bool) "sign neg" false (Lit.sign n);
    Alcotest.(check int) "neg involution" p (Lit.neg (Lit.neg p));
    Alcotest.(check int) "of_int . to_int pos" p (Lit.of_int (Lit.to_int p));
    Alcotest.(check int) "of_int . to_int neg" n (Lit.of_int (Lit.to_int n))
  done

(* ------------------------------------------------------------------ *)
(* Vectors                                                             *)
(* ------------------------------------------------------------------ *)

module Vec = Smt.Vec

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "size" 100 (Vec.size v);
  Alcotest.(check int) "get" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 7);
  Alcotest.(check int) "last" (99 * 99) (Vec.last v);
  Alcotest.(check int) "pop" (99 * 99) (Vec.pop v);
  Vec.shrink v 5;
  Alcotest.(check (list int)) "to_list after shrink" [ 0; 1; 4; 9; 16 ]
    (Vec.to_list v);
  let total = ref 0 in
  Vec.iter (fun x -> total := !total + x) v;
  Alcotest.(check int) "iter" 30 !total;
  Alcotest.(check (list int)) "of_list roundtrip" [ 3; 1; 2 ]
    (Vec.to_list (Vec.of_list [ 3; 1; 2 ]))

let test_ivec_basics () =
  let v = Vec.Ivec.create () in
  for i = 0 to 9 do
    Vec.Ivec.push v i
  done;
  Alcotest.(check int) "size" 10 (Vec.Ivec.size v);
  Vec.Ivec.set v 0 42;
  Alcotest.(check int) "set/get" 42 (Vec.Ivec.get v 0);
  Alcotest.(check int) "last" 9 (Vec.Ivec.last v);
  Alcotest.(check int) "pop" 9 (Vec.Ivec.pop v);
  Vec.Ivec.shrink v 3;
  Alcotest.(check (list int)) "to_list" [ 42; 1; 2 ] (Vec.Ivec.to_list v);
  Vec.Ivec.clear v;
  Alcotest.(check int) "clear" 0 (Vec.Ivec.size v)

(* ------------------------------------------------------------------ *)
(* SAT solver                                                          *)
(* ------------------------------------------------------------------ *)

let mk_solver nvars =
  let s = Sat.create () in
  for _ = 1 to nvars do
    ignore (Sat.new_var s)
  done;
  s

let test_sat_trivial () =
  let s = mk_solver 2 in
  Sat.add_clause s [ Lit.pos 0 ];
  Sat.add_clause s [ Lit.neg_of 1 ];
  (match Sat.solve s with
  | Sat.Sat -> ()
  | Sat.Unsat -> Alcotest.fail "expected sat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Alcotest.(check bool) "v0 true" true (Sat.value s 0);
  Alcotest.(check bool) "v1 false" false (Sat.value s 1)

let test_sat_empty_clause () =
  let s = mk_solver 1 in
  Sat.add_clause s [ Lit.pos 0 ];
  Sat.add_clause s [ Lit.neg_of 0 ];
  match Sat.solve s with
  | Sat.Unsat -> ()
  | Sat.Sat -> Alcotest.fail "expected unsat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown"

let test_sat_propagation_chain () =
  (* x0 and a chain x_i -> x_{i+1}; then force ~x_n: unsat *)
  let n = 30 in
  let s = mk_solver (n + 1) in
  Sat.add_clause s [ Lit.pos 0 ];
  for i = 0 to n - 1 do
    Sat.add_clause s [ Lit.neg_of i; Lit.pos (i + 1) ]
  done;
  Sat.add_clause s [ Lit.neg_of n ];
  match Sat.solve s with
  | Sat.Unsat -> ()
  | Sat.Sat -> Alcotest.fail "expected unsat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown"

(* Pigeonhole: n+1 pigeons in n holes, var p(i,h) = i * n + h. *)
let pigeonhole n =
  let s = mk_solver ((n + 1) * n) in
  let v i h = (i * n) + h in
  for i = 0 to n do
    Sat.add_clause s (List.init n (fun h -> Lit.pos (v i h)))
  done;
  for h = 0 to n - 1 do
    for i = 0 to n do
      for j = i + 1 to n do
        Sat.add_clause s [ Lit.neg_of (v i h); Lit.neg_of (v j h) ]
      done
    done
  done;
  s

let test_sat_pigeonhole () =
  List.iter
    (fun n ->
      match Sat.solve (pigeonhole n) with
      | Sat.Unsat -> ()
      | Sat.Sat -> Alcotest.failf "PHP(%d) should be unsat" n
      | Sat.Unknown _ -> Alcotest.fail "unexpected unknown")
    [ 2; 3; 4; 5 ]

let test_sat_assumptions () =
  (* (x0 \/ x1) /\ (~x0 \/ x1): x1 false forces unsat; x1 true is sat *)
  let s = mk_solver 2 in
  Sat.add_clause s [ Lit.pos 0; Lit.pos 1 ];
  Sat.add_clause s [ Lit.neg_of 0; Lit.pos 1 ];
  (match Sat.solve_with_assumptions s [ Lit.neg_of 1 ] with
  | Sat.Unsat -> ()
  | Sat.Sat -> Alcotest.fail "expected unsat under ~x1"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  (match Sat.solve_with_assumptions s [ Lit.pos 1 ] with
  | Sat.Sat -> ()
  | Sat.Unsat -> Alcotest.fail "expected sat under x1"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Alcotest.(check bool) "assumption honoured" true (Sat.value s 1)

let test_sat_luby () =
  (* the canonical prefix of the 1-indexed Luby sequence *)
  Alcotest.(check (list int))
    "luby prefix"
    [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ]
    (List.init 15 (fun i -> Sat.luby (i + 1)));
  (* spot-check deeper entries: position 2^k - 1 is 2^(k-1) *)
  Alcotest.(check int) "luby 31" 16 (Sat.luby 31);
  Alcotest.(check int) "luby 63" 32 (Sat.luby 63);
  Alcotest.(check int) "luby 64" 1 (Sat.luby 64)

let test_sat_incremental () =
  let s = mk_solver 3 in
  Sat.add_clause s [ Lit.pos 0; Lit.pos 1 ];
  (match Sat.solve_with_assumptions s [] with
  | Sat.Sat -> ()
  | Sat.Unsat -> Alcotest.fail "sat expected"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Sat.add_clause s [ Lit.neg_of 0 ];
  Sat.add_clause s [ Lit.neg_of 1 ];
  match Sat.solve_with_assumptions s [] with
  | Sat.Unsat -> ()
  | Sat.Sat -> Alcotest.fail "unsat expected after strengthening"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown"

(* random k-CNF for the differential test *)
let gen_cnf =
  QCheck2.Gen.(
    let* nvars = int_range 1 12 in
    let* nclauses = int_range 1 50 in
    let gen_lit =
      let* v = int_range 0 (nvars - 1) in
      let* s = bool in
      return (Lit.make v s)
    in
    let gen_clause =
      let* len = int_range 1 4 in
      list_size (return len) gen_lit
    in
    let* clauses = list_size (return nclauses) gen_clause in
    return (nvars, clauses))

let print_cnf (nvars, clauses) =
  Printf.sprintf "nvars=%d cnf=%s" nvars
    (String.concat " & "
       (List.map
          (fun c ->
            "(" ^ String.concat "|" (List.map (fun l -> string_of_int (Lit.to_int l)) c) ^ ")")
          clauses))

let prop_cdcl_vs_dpll =
  QCheck2.Test.make ~name:"CDCL agrees with reference DPLL" ~count:500
    ~print:print_cnf gen_cnf (fun (nvars, clauses) ->
      let s = mk_solver nvars in
      List.iter (Sat.add_clause s) clauses;
      let cdcl = Sat.solve s in
      let ref_result = Dpll.solve ~nvars clauses in
      match (cdcl, ref_result) with
      | Sat.Sat, Dpll.Sat _ ->
        (* also check that the CDCL model really satisfies the formula *)
        let m = Array.init nvars (Sat.value s) in
        Dpll.eval m clauses
      | Sat.Unsat, Dpll.Unsat -> true
      | Sat.Unknown _, _ -> false
      | Sat.Sat, Dpll.Unsat | Sat.Unsat, Dpll.Sat _ -> false)

(* ------------------------------------------------------------------ *)
(* Tseitin gates                                                       *)
(* ------------------------------------------------------------------ *)

let gate_truth_table name build expected =
  (* for each input combination, build a fresh context, constrain inputs,
     solve and read the gate output *)
  List.iteri
    (fun idx (va, vb) ->
      let t = Tseitin.create () in
      let a = Tseitin.fresh t and b = Tseitin.fresh t in
      let o = build t a b in
      Tseitin.assert_lit t (if va then a else Lit.neg a);
      Tseitin.assert_lit t (if vb then b else Lit.neg b);
      (match Sat.solve (Tseitin.solver t) with
      | Sat.Sat -> ()
      | Sat.Unsat -> Alcotest.failf "%s: inputs should be satisfiable" name
      | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
      Alcotest.(check bool)
        (Printf.sprintf "%s row %d" name idx)
        (expected va vb)
        (Tseitin.lit_of_model t o))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_tseitin_gates () =
  gate_truth_table "and" Tseitin.and2 (fun a b -> a && b);
  gate_truth_table "or" Tseitin.or2 (fun a b -> a || b);
  gate_truth_table "xor" Tseitin.xor2 (fun a b -> a <> b);
  gate_truth_table "iff" Tseitin.iff2 (fun a b -> a = b);
  gate_truth_table "implies" Tseitin.implies (fun a b -> (not a) || b)

let test_tseitin_mux () =
  List.iter
    (fun (vc, va, vb) ->
      let t = Tseitin.create () in
      let c = Tseitin.fresh t and a = Tseitin.fresh t and b = Tseitin.fresh t in
      let o = Tseitin.mux t c a b in
      let fix l v = Tseitin.assert_lit t (if v then l else Lit.neg l) in
      fix c vc;
      fix a va;
      fix b vb;
      (match Sat.solve (Tseitin.solver t) with
      | Sat.Sat -> ()
      | Sat.Unsat -> Alcotest.fail "mux inputs satisfiable"
      | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
      Alcotest.(check bool) "mux" (if vc then va else vb) (Tseitin.lit_of_model t o))
    [
      (false, false, false); (false, false, true); (false, true, false);
      (false, true, true); (true, false, false); (true, false, true);
      (true, true, false); (true, true, true);
    ]

let test_tseitin_constants () =
  let t = Tseitin.create () in
  let a = Tseitin.fresh t in
  Alcotest.(check int) "and true" a (Tseitin.and2 t (Tseitin.true_ t) a);
  Alcotest.(check int) "and false" (Tseitin.false_ t)
    (Tseitin.and2 t (Tseitin.false_ t) a);
  Alcotest.(check int) "or false" a (Tseitin.or2 t (Tseitin.false_ t) a);
  Alcotest.(check int) "xor with self" (Tseitin.false_ t) (Tseitin.xor2 t a a);
  Alcotest.(check int) "xor true" (Lit.neg a) (Tseitin.xor2 t (Tseitin.true_ t) a)

(* ------------------------------------------------------------------ *)
(* Bv evaluation                                                       *)
(* ------------------------------------------------------------------ *)

let test_bv_constant_folding () =
  let w = 8 in
  let c v = Bv.const ~width:w v in
  let check name expected t =
    match (t : Bv.term) with
    | Bv.Const { value; _ } -> Alcotest.(check int) name expected value
    | _ -> Alcotest.failf "%s: expected constant folding" name
  in
  check "add wraps" 4 (Bv.badd (c 250) (c 10));
  check "sub wraps" 246 (Bv.bsub (c 0) (c 10));
  check "mul wraps" 144 (Bv.bmul (c 20) (c 20));
  check "div" 6 (Bv.budiv (c 20) (c 3));
  check "div by zero" 255 (Bv.budiv (c 20) (c 0));
  check "rem" 2 (Bv.burem (c 20) (c 3));
  check "rem by zero" 20 (Bv.burem (c 20) (c 0));
  check "shl" 40 (Bv.bshl (c 10) (c 2));
  check "shl overflow" 0 (Bv.bshl (c 10) (c 9));
  check "lshr" 2 (Bv.blshr (c 10) (c 2));
  check "ashr sign" 255 (Bv.bashr (c 0x80) (c 7));
  check "not" 245 (Bv.bnot (c 10));
  check "neg" 246 (Bv.bneg (c 10))

let test_bv_signed () =
  let w = 4 in
  Alcotest.(check int) "to_signed 0xF" (-1) (Bv.to_signed ~width:w 0xF);
  Alcotest.(check int) "to_signed 7" 7 (Bv.to_signed ~width:w 7);
  Alcotest.(check int) "to_signed 8" (-8) (Bv.to_signed ~width:w 8);
  let c v = Bv.const ~width:w v in
  Alcotest.(check bool) "slt -1 < 0" true (Bv.slt (c 0xF) (c 0) = Bv.tru);
  Alcotest.(check bool) "ult 0xF > 0" true (Bv.ult (c 0) (c 0xF) = Bv.tru)

let test_bv_width_mismatch () =
  let a = Bv.var ~width:8 "a" and b = Bv.var ~width:4 "b" in
  Alcotest.check_raises "badd width mismatch"
    (Invalid_argument "Bv.badd: width mismatch (8 vs 4)") (fun () ->
      ignore (Bv.badd a b))

let test_bv_vars () =
  let a = Bv.var ~width:8 "a" and b = Bv.var ~width:8 "b" in
  let f = Bv.fand (Bv.eq (Bv.badd a b) b) (Bv.ult a b) in
  Alcotest.(check (list (pair string int)))
    "formula vars"
    [ ("a", 8); ("b", 8) ]
    (Bv.formula_vars f)

(* ------------------------------------------------------------------ *)
(* Bit blaster: differential against the evaluator                     *)
(* ------------------------------------------------------------------ *)

let gen_term width =
  QCheck2.Gen.(
    sized_size (int_range 0 4) @@ fix (fun self n ->
        if n = 0 then
          oneof
            [
              (let* v = int_range 0 ((1 lsl width) - 1) in
               return (Bv.const ~width v));
              oneofl [ Bv.var ~width "x"; Bv.var ~width "y"; Bv.var ~width "z" ];
            ]
        else
          let sub = self (n / 2) in
          oneof
            [
              (let* a = sub in
               let* op = oneofl [ Bv.bnot; Bv.bneg ] in
               return (op a));
              (let* a = sub and* b = sub in
               let* op =
                 oneofl
                   [
                     Bv.band; Bv.bor; Bv.bxor; Bv.badd; Bv.bsub; Bv.bmul;
                     Bv.budiv; Bv.burem; Bv.bshl; Bv.blshr; Bv.bashr;
                   ]
               in
               return (op a b));
            ]))

let gen_formula width =
  QCheck2.Gen.(
    let atom =
      let* a = gen_term width and* b = gen_term width in
      let* op = oneofl [ Bv.eq; Bv.ult; Bv.ule; Bv.slt; Bv.sle ] in
      return (op a b)
    in
    sized_size (int_range 0 3) @@ fix (fun self n ->
        if n = 0 then atom
        else
          let sub = self (n / 2) in
          oneof
            [
              atom;
              (let* f = sub in
               return (Bv.fnot f));
              (let* a = sub and* b = sub in
               let* op = oneofl [ Bv.fand; Bv.for_; Bv.fxor ] in
               return (op a b));
            ]))

let bb_width = 5

let gen_formula_env =
  QCheck2.Gen.(
    let* f = gen_formula bb_width in
    let m = (1 lsl bb_width) - 1 in
    let* vx = int_range 0 m and* vy = int_range 0 m and* vz = int_range 0 m in
    return (f, vx, vy, vz))

let print_formula_env (f, vx, vy, vz) =
  Format.asprintf "%a with x=%d y=%d z=%d" Bv.pp f vx vy vz

let prop_bitblast_vs_eval =
  QCheck2.Test.make ~name:"bit blaster agrees with evaluator" ~count:400
    ~print:print_formula_env gen_formula_env (fun (f, vx, vy, vz) ->
      let env = Bv.env_of_alist [ ("x", vx); ("y", vy); ("z", vz) ] in
      let expected = Bv.eval env f in
      let solver = Solver.create () in
      let fix name v =
        Solver.assert_formula solver
          (Bv.eq (Bv.var ~width:bb_width name) (Bv.const ~width:bb_width v))
      in
      fix "x" vx;
      fix "y" vy;
      fix "z" vz;
      Solver.assert_formula solver f;
      match Solver.check solver with
      | Solver.Sat -> expected
      | Solver.Unsat -> not expected
      | Solver.Unknown _ -> false)

let prop_model_satisfies =
  QCheck2.Test.make ~name:"models returned by the solver satisfy the formula"
    ~count:300
    ~print:(fun f -> Format.asprintf "%a" Bv.pp f)
    (gen_formula bb_width)
    (fun f ->
      match Solver.check_formulas [ f ] with
      | `Unknown _ -> false
      | `Sat env -> Bv.eval env f
      | `Unsat ->
        (* cross-check with brute force over the three variables *)
        let m = (1 lsl bb_width) - 1 in
        let found = ref false in
        for vx = 0 to m do
          for vy = 0 to m do
            for vz = 0 to m do
              if
                (not !found)
                && Bv.eval (Bv.env_of_alist [ ("x", vx); ("y", vy); ("z", vz) ]) f
              then found := true
            done
          done
        done;
        not !found)

let test_divider_circuit () =
  (* exercise the division encoding with symbolic operands *)
  let w = 6 in
  List.iter
    (fun (a, b) ->
      let x = Bv.var ~width:w "x" and y = Bv.var ~width:w "y" in
      let solver = Solver.create () in
      Solver.assert_formula solver (Bv.eq x (Bv.const ~width:w a));
      Solver.assert_formula solver (Bv.eq y (Bv.const ~width:w b));
      Solver.assert_formula solver
        (Bv.eq (Bv.var ~width:w "q") (Bv.budiv x y));
      Solver.assert_formula solver
        (Bv.eq (Bv.var ~width:w "r") (Bv.burem x y));
      (match Solver.check solver with
      | Solver.Sat -> ()
      | Solver.Unsat -> Alcotest.fail "division instance must be sat"
      | Solver.Unknown _ -> Alcotest.fail "unexpected unknown");
      let expected_q = if b = 0 then (1 lsl w) - 1 else a / b in
      let expected_r = if b = 0 then a else a mod b in
      Alcotest.(check int)
        (Printf.sprintf "q of %d/%d" a b)
        expected_q (Solver.value solver "q");
      Alcotest.(check int)
        (Printf.sprintf "r of %d/%d" a b)
        expected_r (Solver.value solver "r"))
    [ (17, 5); (63, 1); (63, 63); (0, 7); (42, 0); (13, 13); (7, 9) ]

(* ------------------------------------------------------------------ *)
(* cross-context CNF recipe cache                                      *)
(* ------------------------------------------------------------------ *)

let test_cnfcache_cross_context_hits () =
  Smt.Cnfcache.clear ();
  let hits = Obs.Metrics.counter "bitblast.shared_hits" in
  let misses = Obs.Metrics.counter "bitblast.shared_misses" in
  Obs.Metrics.set_counter hits 0;
  Obs.Metrics.set_counter misses 0;
  let w = 4 in
  let product_at k =
    let solver = Solver.create () in
    let x = Bv.var ~width:w "x" and y = Bv.var ~width:w "y" in
    Solver.assert_formula solver
      (Bv.eq (Bv.bmul x y) (Bv.const ~width:w k));
    match Solver.check solver with
    | Solver.Sat ->
      let vx = Solver.value solver "x" and vy = Solver.value solver "y" in
      Alcotest.(check int)
        (Printf.sprintf "model multiplies to %d" k)
        k
        (vx * vy mod (1 lsl w));
      true
    | Solver.Unsat -> false
    | Solver.Unknown _ -> Alcotest.fail "unexpected unknown"
  in
  (* first context records the mul:4 recipe, the rest replay it *)
  Alcotest.(check bool) "6 is a product" true (product_at 6);
  Alcotest.(check int) "first encoding misses" 1
    (Obs.Metrics.counter_value misses);
  Alcotest.(check bool) "13 is a product" true (product_at 13);
  Alcotest.(check bool) "9 is a product" true (product_at 9);
  Alcotest.(check int) "later contexts hit the shared recipe" 2
    (Obs.Metrics.counter_value hits);
  Alcotest.(check int) "one recipe in the table" 1
    (Smt.Cnfcache.cached_recipes ())

let test_cnfcache_constant_bypass () =
  Smt.Cnfcache.clear ();
  let hits = Obs.Metrics.counter "bitblast.shared_hits" in
  let misses = Obs.Metrics.counter "bitblast.shared_misses" in
  Obs.Metrics.set_counter hits 0;
  Obs.Metrics.set_counter misses 0;
  let w = 4 in
  let solver = Solver.create () in
  let x = Bv.var ~width:w "x" in
  (* multiplication by a constant folds eagerly; the recipe cache must
     stay out of the way *)
  Solver.assert_formula solver
    (Bv.eq (Bv.bmul x (Bv.const ~width:w 3)) (Bv.const ~width:w 9));
  (match Solver.check solver with
  | Solver.Sat -> Alcotest.(check int) "3x=9" 3 (Solver.value solver "x")
  | _ -> Alcotest.fail "3x=9 must be sat");
  Alcotest.(check int) "no recipe traffic on constant operands" 0
    (Obs.Metrics.counter_value hits + Obs.Metrics.counter_value misses)

let test_cnfcache_record_replay () =
  (* record a tiny encoder and replay it twice into one context: the
     two instances must constrain their own wires independently *)
  let recipe =
    Smt.Cnfcache.record ~n_inputs:2 (fun ctx inputs ->
        [| [| Smt.Tseitin.and2 ctx inputs.(0) inputs.(1) |] |])
  in
  Alcotest.(check int) "two inputs" 2 (Smt.Cnfcache.n_inputs recipe);
  Alcotest.(check int) "one aux (the gate output)" 1
    (Smt.Cnfcache.n_aux recipe);
  Alcotest.(check int) "three gate clauses" 3
    (Smt.Cnfcache.n_clauses recipe);
  let ctx = Smt.Tseitin.create () in
  let a = Smt.Tseitin.fresh ctx and b = Smt.Tseitin.fresh ctx in
  let o1 = (Smt.Cnfcache.replay recipe ctx [| a; b |]).(0).(0) in
  let o2 = (Smt.Cnfcache.replay recipe ctx [| b; a |]).(0).(0) in
  let sat = Smt.Tseitin.solver ctx in
  let solve assumptions = Smt.Sat.solve_with_assumptions sat assumptions in
  Alcotest.(check bool) "a&b with both true" true
    (solve [ a; b; o1; o2 ] = Smt.Sat.Sat);
  Alcotest.(check bool) "output forced false when an input is false" true
    (solve [ a; Smt.Lit.neg b; o1 ] = Smt.Sat.Unsat);
  Alcotest.(check bool) "replays are independent instances" true
    (solve [ Smt.Lit.neg a; b; Smt.Lit.neg o1; o2 ] = Smt.Sat.Unsat);
  match Smt.Cnfcache.replay recipe ctx [| a |] with
  | _ -> Alcotest.fail "arity mismatch must be rejected"
  | exception Invalid_argument _ -> ()

let test_solver_unsat_arith () =
  (* x + 1 = x is unsatisfiable at any width *)
  let x = Bv.var ~width:8 "x" in
  match Solver.check_formulas [ Bv.eq (Bv.badd x (Bv.const ~width:8 1)) x ] with
  | `Unsat -> ()
  | `Sat _ -> Alcotest.fail "x+1=x should be unsat"
  | `Unknown _ -> Alcotest.fail "unexpected unknown"

let test_solver_xor_swap () =
  (* the classic xor swap: after three xors, values are exchanged. Checked
     by asserting the negation is unsat at width 8. *)
  let w = 8 in
  let a = Bv.var ~width:w "a" and b = Bv.var ~width:w "b" in
  let a1 = Bv.bxor a b in
  let b1 = Bv.bxor a1 b in
  let a2 = Bv.bxor a1 b1 in
  (* now b1 = a, a2 = b *)
  let good = Bv.fand (Bv.eq b1 a) (Bv.eq a2 b) in
  match Solver.check_formulas [ Bv.fnot good ] with
  | `Unsat -> ()
  | `Sat _ -> Alcotest.fail "xor swap identity should hold"
  | `Unknown _ -> Alcotest.fail "unexpected unknown"

(* ------------------------------------------------------------------ *)
(* DIMACS                                                              *)
(* ------------------------------------------------------------------ *)

module Dimacs = Smt.Dimacs

let test_dimacs_roundtrip () =
  let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let p = Dimacs.parse text in
  Alcotest.(check int) "nvars" 3 p.Dimacs.nvars;
  Alcotest.(check int) "clauses" 2 (List.length p.Dimacs.clauses);
  let p2 = Dimacs.parse (Dimacs.to_string p) in
  Alcotest.(check bool) "roundtrip" true (p = p2)

let test_dimacs_multiline_clause () =
  let p = Dimacs.parse "p cnf 4 1\n1 2\n3 -4 0\n" in
  Alcotest.(check int) "one clause of four" 4
    (List.length (List.hd p.Dimacs.clauses))

let test_dimacs_errors () =
  let fails s =
    match Dimacs.parse s with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  fails "1 2 0\n";
  fails "p cnf 2 1\n5 0\n";
  fails "p cnf 2 1\n1 2\n";
  fails "p cnf 2 9\n1 0\n"

let test_dimacs_solve () =
  (match Dimacs.solve (Dimacs.parse "p cnf 2 2\n1 0\n-1 2 0\n") with
  | Dpll.Sat m ->
    Alcotest.(check bool) "x1" true m.(0);
    Alcotest.(check bool) "x2" true m.(1)
  | Dpll.Unsat -> Alcotest.fail "satisfiable");
  match Dimacs.solve (Dimacs.parse "p cnf 1 2\n1 0\n-1 0\n") with
  | Dpll.Unsat -> ()
  | Dpll.Sat _ -> Alcotest.fail "unsatisfiable"

let prop_dimacs_roundtrip =
  QCheck2.Test.make ~name:"dimacs print/parse roundtrip" ~count:200
    ~print:print_cnf gen_cnf (fun (nvars, clauses) ->
      (* drop empty clauses: DIMACS cannot express them unambiguously
         in our generator's range *)
      let clauses = List.filter (( <> ) []) clauses in
      let p = { Dimacs.nvars; clauses } in
      Dimacs.parse (Dimacs.to_string p) = p)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "smt"
    [
      ( "lit",
        [ Alcotest.test_case "roundtrip and involution" `Quick test_lit_roundtrip ] );
      ( "vec",
        [
          Alcotest.test_case "polymorphic vectors" `Quick test_vec_basics;
          Alcotest.test_case "int vectors" `Quick test_ivec_basics;
        ] );
      ( "sat",
        [
          Alcotest.test_case "trivial units" `Quick test_sat_trivial;
          Alcotest.test_case "contradiction" `Quick test_sat_empty_clause;
          Alcotest.test_case "propagation chain" `Quick test_sat_propagation_chain;
          Alcotest.test_case "pigeonhole unsat" `Quick test_sat_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_sat_assumptions;
          Alcotest.test_case "luby sequence" `Quick test_sat_luby;
          Alcotest.test_case "incremental strengthening" `Quick test_sat_incremental;
        ] );
      qsuite "sat-qcheck" [ prop_cdcl_vs_dpll ];
      ( "tseitin",
        [
          Alcotest.test_case "gate truth tables" `Quick test_tseitin_gates;
          Alcotest.test_case "mux truth table" `Quick test_tseitin_mux;
          Alcotest.test_case "constant folding" `Quick test_tseitin_constants;
        ] );
      ( "bv",
        [
          Alcotest.test_case "constant folding semantics" `Quick
            test_bv_constant_folding;
          Alcotest.test_case "signed interpretation" `Quick test_bv_signed;
          Alcotest.test_case "width mismatch rejected" `Quick
            test_bv_width_mismatch;
          Alcotest.test_case "free variables" `Quick test_bv_vars;
        ] );
      ( "bitblast",
        [
          Alcotest.test_case "division circuit" `Quick test_divider_circuit;
          Alcotest.test_case "x+1=x unsat" `Quick test_solver_unsat_arith;
          Alcotest.test_case "xor swap identity" `Quick test_solver_xor_swap;
        ] );
      ( "cnfcache",
        [
          Alcotest.test_case "recipes hit across contexts" `Quick
            test_cnfcache_cross_context_hits;
          Alcotest.test_case "constant operands bypass the cache" `Quick
            test_cnfcache_constant_bypass;
          Alcotest.test_case "record/replay round trip" `Quick
            test_cnfcache_record_replay;
        ] );
      qsuite "bitblast-qcheck" [ prop_bitblast_vs_eval; prop_model_satisfies ];
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "multiline clauses" `Quick
            test_dimacs_multiline_clause;
          Alcotest.test_case "malformed inputs rejected" `Quick
            test_dimacs_errors;
          Alcotest.test_case "solve" `Quick test_dimacs_solve;
        ] );
      qsuite "dimacs-qcheck" [ prop_dimacs_roundtrip ];
    ]
