(* Regression suite for the incremental SAT API, driven by DIMACS
   instances. These tests exercise exactly the access patterns the
   counterexample-guided loops rely on: solve / add-clause / solve
   sequences on one long-lived solver, assumption-literal scopes
   (push/pop) flipping instances between sat and unsat, and model
   soundness after the learned-clause database has been reduced (forced
   with [Sat.create ~learnt_limit]). Every model the CDCL solver
   produces is checked against the clauses with the reference
   evaluator. *)

module Lit = Smt.Lit
module Sat = Smt.Sat
module Dpll = Smt.Dpll
module Dimacs = Smt.Dimacs
module Bv = Smt.Bv
module Solver = Smt.Solver

(* ------------------------------------------------------------------ *)
(* DIMACS fixtures                                                     *)
(* ------------------------------------------------------------------ *)

(* x1..x4 in a satisfiable ring of implications plus a seed unit *)
let ring_cnf = "p cnf 4 5\n1 0\n-1 2 0\n-2 3 0\n-3 4 0\n-4 1 0\n"

(* an 8-variable instance with several models *)
let multi_cnf =
  "c multi-model instance\n\
   p cnf 8 9\n\
   1 2 3 0\n\
   -1 4 0\n\
   -2 5 0\n\
   -3 6 0\n\
   4 5 6 0\n\
   -7 -8 0\n\
   7 8 0\n\
   -4 -5 7 0\n\
   -6 8 0\n"

(* clauses that, added on top of [ring_cnf], make it unsatisfiable *)
let ring_killer = "p cnf 4 1\n-2 -4 0\n"

let load ?learnt_limit text =
  let p = Dimacs.parse text in
  let s = Sat.create ?learnt_limit () in
  for _ = 1 to p.Dimacs.nvars do
    ignore (Sat.new_var s)
  done;
  List.iter (Sat.add_clause s) p.Dimacs.clauses;
  (s, p)

let model_of s (p : Dimacs.problem) = Array.init p.Dimacs.nvars (Sat.value s)

let check_model name s (p : Dimacs.problem) =
  Alcotest.(check bool)
    (name ^ ": model satisfies all clauses")
    true
    (Dpll.eval (model_of s p) p.Dimacs.clauses)

(* ------------------------------------------------------------------ *)
(* solve / add-clause / solve sequences                                *)
(* ------------------------------------------------------------------ *)

let test_solve_add_solve () =
  let s, p = load ring_cnf in
  (match Sat.solve s with
  | Sat.Sat -> check_model "ring" s p
  | Sat.Unsat -> Alcotest.fail "ring should be sat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  (* the ring forces all variables true *)
  for v = 0 to 3 do
    Alcotest.(check bool) (Printf.sprintf "x%d forced" (v + 1)) true
      (Sat.value s v)
  done;
  let killer = Dimacs.parse ring_killer in
  List.iter (Sat.add_clause s) killer.Dimacs.clauses;
  match Sat.solve s with
  | Sat.Unsat -> ()
  | Sat.Sat -> Alcotest.fail "ring + killer should be unsat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown"

(* Enumerate all models of [multi_cnf] by repeatedly blocking the last
   model — the canonical solve/add-clause/solve loop — and compare the
   count against brute force. *)
let test_model_enumeration () =
  let s, p = load multi_cnf in
  let n = p.Dimacs.nvars in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Sat.solve s with
    | Sat.Unsat -> continue := false
    | Sat.Unknown _ -> Alcotest.fail "unexpected unknown"
    | Sat.Sat ->
      check_model "enum" s p;
      incr count;
      if !count > 1 lsl n then Alcotest.fail "enumeration did not terminate";
      Sat.add_clause s
        (List.init n (fun v -> Lit.make v (not (Sat.value s v))))
  done;
  let brute = ref 0 in
  for bits = 0 to (1 lsl n) - 1 do
    let m = Array.init n (fun v -> bits land (1 lsl v) <> 0) in
    if Dpll.eval m p.Dimacs.clauses then incr brute
  done;
  Alcotest.(check int) "model count matches brute force" !brute !count

(* ------------------------------------------------------------------ *)
(* assumption scopes                                                   *)
(* ------------------------------------------------------------------ *)

let test_scope_flip () =
  let s, p = load multi_cnf in
  (match Sat.solve s with
  | Sat.Sat -> check_model "base" s p
  | Sat.Unsat -> Alcotest.fail "base should be sat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Sat.push s;
  let killer = Dimacs.parse "p cnf 8 3\n-1 0\n-2 0\n-3 0\n" in
  List.iter (Sat.add_clause s) killer.Dimacs.clauses;
  (match Sat.solve s with
  | Sat.Unsat -> ()
  | Sat.Sat -> Alcotest.fail "scoped killer should make it unsat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Sat.pop s;
  (match Sat.solve s with
  | Sat.Sat -> check_model "after pop" s p
  | Sat.Unsat -> Alcotest.fail "pop must restore satisfiability"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Alcotest.(check int) "scopes closed" 0 (Sat.num_scopes s)

let test_scope_nesting () =
  let s, p = load multi_cnf in
  Sat.push s;
  Sat.add_clause s [ Lit.neg_of 0 ];
  (* ~x1 *)
  Sat.push s;
  Sat.add_clause s [ Lit.neg_of 1 ];
  Sat.add_clause s [ Lit.neg_of 2 ];
  (* ~x1 /\ ~x2 /\ ~x3 contradicts clause (1 2 3) *)
  (match Sat.solve s with
  | Sat.Unsat -> ()
  | Sat.Sat -> Alcotest.fail "inner scope should be unsat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Sat.pop s;
  (match Sat.solve s with
  | Sat.Sat ->
    check_model "outer scope" s p;
    Alcotest.(check bool) "outer clause still active" false (Sat.value s 0)
  | Sat.Unsat -> Alcotest.fail "outer scope alone should be sat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Sat.pop s;
  (match Sat.solve s with
  | Sat.Sat -> check_model "all popped" s p
  | Sat.Unsat -> Alcotest.fail "unscoped instance should be sat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Alcotest.check_raises "pop without scope"
    (Invalid_argument "Sat.pop: no open scope") (fun () -> Sat.pop s)

let test_assumptions_vs_scopes () =
  (* assumptions and scopes compose: under an open scope forcing ~x7,
     assuming x8 must still work, and the combination is consistent
     with clause (7 8) *)
  let s, p = load multi_cnf in
  Sat.push s;
  Sat.add_clause s [ Lit.neg_of 6 ];
  (match Sat.solve_with_assumptions s [ Lit.pos 7 ] with
  | Sat.Sat ->
    check_model "scope+assumption" s p;
    Alcotest.(check bool) "x7 false" false (Sat.value s 6);
    Alcotest.(check bool) "x8 true" true (Sat.value s 7)
  | Sat.Unsat -> Alcotest.fail "should be sat"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  (* assuming x7 under the same scope contradicts the scoped unit *)
  (match Sat.solve_with_assumptions s [ Lit.pos 6 ] with
  | Sat.Unsat -> ()
  | Sat.Sat -> Alcotest.fail "assumption contradicting scope"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  Sat.pop s;
  match Sat.solve_with_assumptions s [ Lit.pos 6 ] with
  | Sat.Sat -> check_model "after pop" s p
  | Sat.Unsat -> Alcotest.fail "x7 is free again after pop"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown"

(* ------------------------------------------------------------------ *)
(* clause-database reduction                                           *)
(* ------------------------------------------------------------------ *)

(* deterministic pseudo-random CNF (seeded LCG; no global Random state) *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (* take high bits: the low bits of an LCG cycle with tiny period *)
    (!state lsr 15) mod bound

let random_cnf ~seed ~nvars ~nclauses =
  let next = lcg seed in
  let clause _ =
    List.init 3 (fun _ -> Lit.make (next nvars) (next 2 = 0))
  in
  { Dimacs.nvars; clauses = List.init nclauses clause }

(* With a tiny learnt limit, a conflict-heavy instance is forced through
   many database reductions; answers and models must be unaffected. *)
let test_db_reduction_unsat () =
  let n = 7 in
  (* pigeonhole PHP(8,7): hard enough to learn thousands of clauses *)
  let s = Sat.create ~learnt_limit:20 () in
  for _ = 1 to (n + 1) * n do
    ignore (Sat.new_var s)
  done;
  let v i h = (i * n) + h in
  for i = 0 to n do
    Sat.add_clause s (List.init n (fun h -> Lit.pos (v i h)))
  done;
  for h = 0 to n - 1 do
    for i = 0 to n do
      for j = i + 1 to n do
        Sat.add_clause s [ Lit.neg_of (v i h); Lit.neg_of (v j h) ]
      done
    done
  done;
  (match Sat.solve s with
  | Sat.Unsat -> ()
  | Sat.Sat -> Alcotest.fail "PHP(8,7) must stay unsat under reduction"
  | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
  let st = Sat.stats s in
  Alcotest.(check bool) "database was reduced" true (st.Sat.db_reductions > 0);
  Alcotest.(check bool) "learnts were deleted" true
    (st.Sat.learnts_deleted > 0)

let test_db_reduction_models () =
  (* near-threshold random 3-CNF: enough conflicts to trigger reductions
     with a small cap; every sat answer's model is checked, and every
     answer is cross-checked against a fresh unconstrained solver *)
  let checked_reductions = ref 0 in
  for seed = 1 to 20 do
    let p = random_cnf ~seed ~nvars:50 ~nclauses:215 in
    let constrained = Sat.create ~learnt_limit:8 () in
    let fresh = Sat.create () in
    List.iter
      (fun s ->
        for _ = 1 to p.Dimacs.nvars do
          ignore (Sat.new_var s)
        done;
        List.iter (Sat.add_clause s) p.Dimacs.clauses)
      [ constrained; fresh ];
    let a = Sat.solve constrained and b = Sat.solve fresh in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: answers agree" seed)
      true (a = b);
    (match a with
    | Sat.Sat -> check_model (Printf.sprintf "seed %d" seed) constrained p
    | Sat.Unsat -> ()
    | Sat.Unknown _ -> Alcotest.fail "unexpected unknown");
    let st = Sat.stats constrained in
    if st.Sat.db_reductions > 0 then incr checked_reductions
  done;
  Alcotest.(check bool) "some instances exercised reduction" true
    (!checked_reductions > 0)

let test_reduction_then_increment () =
  (* after heavy reduction the solver must remain usable incrementally:
     keep strengthening a sat random instance until it goes unsat, and
     agree with the reference solver at every step *)
  let p = random_cnf ~seed:42 ~nvars:24 ~nclauses:96 in
  let s = Sat.create ~learnt_limit:8 () in
  for _ = 1 to p.Dimacs.nvars do
    ignore (Sat.new_var s)
  done;
  List.iter (Sat.add_clause s) p.Dimacs.clauses;
  let extra = random_cnf ~seed:77 ~nvars:24 ~nclauses:60 in
  let added = ref p.Dimacs.clauses in
  List.iter
    (fun c ->
      Sat.add_clause s c;
      added := c :: !added;
      let got = Sat.solve s in
      let want = Dpll.solve ~nvars:p.Dimacs.nvars !added in
      match (got, want) with
      | Sat.Sat, Dpll.Sat _ ->
        Alcotest.(check bool) "incremental model sound" true
          (Dpll.eval (Array.init p.Dimacs.nvars (Sat.value s)) !added)
      | Sat.Unsat, Dpll.Unsat -> ()
      | Sat.Unknown _, _ -> Alcotest.fail "unexpected unknown"
      | Sat.Sat, Dpll.Unsat | Sat.Unsat, Dpll.Sat _ ->
        Alcotest.fail "incremental answer diverged from reference")
    (List.filteri (fun i _ -> i < 12) extra.Dimacs.clauses)

(* ------------------------------------------------------------------ *)
(* Solver-level (QF_BV) incrementality                                 *)
(* ------------------------------------------------------------------ *)

let test_solver_push_pop () =
  let w = 8 in
  let x = Bv.var ~width:w "x" in
  let c v = Bv.const ~width:w v in
  let s = Solver.create () in
  Solver.assert_formula s (Bv.ult x (c 10));
  (match Solver.check s with
  | Solver.Sat -> Alcotest.(check bool) "x < 10" true (Solver.value s "x" < 10)
  | Solver.Unsat -> Alcotest.fail "x < 10 is sat"
  | Solver.Unknown _ -> Alcotest.fail "unexpected unknown");
  Solver.push s;
  Solver.assert_formula s (Bv.ult (c 20) x);
  (match Solver.check s with
  | Solver.Unsat -> ()
  | Solver.Sat -> Alcotest.fail "x < 10 /\\ x > 20 is unsat"
  | Solver.Unknown _ -> Alcotest.fail "unexpected unknown");
  Solver.pop s;
  (match Solver.check s with
  | Solver.Sat -> Alcotest.(check bool) "restored" true (Solver.value s "x" < 10)
  | Solver.Unsat -> Alcotest.fail "pop must restore satisfiability"
  | Solver.Unknown _ -> Alcotest.fail "unexpected unknown");
  let r = Solver.assert_retractable s (Bv.eq x (c 3)) in
  (match Solver.check s with
  | Solver.Sat -> Alcotest.(check int) "pinned" 3 (Solver.value s "x")
  | Solver.Unsat -> Alcotest.fail "x = 3 consistent with x < 10"
  | Solver.Unknown _ -> Alcotest.fail "unexpected unknown");
  Solver.retract s r;
  Solver.assert_formula s (Bv.fnot (Bv.eq x (c 3)));
  match Solver.check s with
  | Solver.Sat ->
    let v = Solver.value s "x" in
    Alcotest.(check bool) "x < 10 and x <> 3" true (v < 10 && v <> 3)
  | Solver.Unsat -> Alcotest.fail "still satisfiable after retraction"
  | Solver.Unknown _ -> Alcotest.fail "unexpected unknown"

let () =
  Alcotest.run "sat-regress"
    [
      ( "incremental",
        [
          Alcotest.test_case "solve/add-clause/solve" `Quick
            test_solve_add_solve;
          Alcotest.test_case "model enumeration by blocking" `Quick
            test_model_enumeration;
        ] );
      ( "scopes",
        [
          Alcotest.test_case "push/pop flips sat" `Quick test_scope_flip;
          Alcotest.test_case "nested scopes" `Quick test_scope_nesting;
          Alcotest.test_case "assumptions compose with scopes" `Quick
            test_assumptions_vs_scopes;
        ] );
      ( "db-reduction",
        [
          Alcotest.test_case "unsat preserved under reduction" `Quick
            test_db_reduction_unsat;
          Alcotest.test_case "models sound under reduction" `Quick
            test_db_reduction_models;
          Alcotest.test_case "incremental use after reduction" `Quick
            test_reduction_then_increment;
        ] );
      ( "solver",
        [
          Alcotest.test_case "push/pop and retractables over QF_BV" `Quick
            test_solver_push_pop;
        ] );
    ]
