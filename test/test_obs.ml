(* Tests for the telemetry library: JSON codec, metrics registry, span
   nesting/timing, sinks, disabled-mode cost model, the Chrome exporter,
   and an end-to-end traced OGIS run whose event stream must be
   well-formed. *)

module Json = Obs.Json
module Metrics = Obs.Metrics

let with_memory_trace f =
  Obs.reset ();
  let sink, records = Obs.memory_sink () in
  Obs.add_sink sink;
  Obs.enable ();
  let r = f () in
  Obs.shutdown ();
  (r, records ())

let str_field k r =
  match Option.bind (Json.member k r) Json.to_str with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "missing string field %s" k)

let num_field k r =
  match Option.bind (Json.member k r) Json.to_float with
  | Some f -> f
  | None -> Alcotest.fail (Printf.sprintf "missing numeric field %s" k)

let kind_of = str_field "kind"

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 1.5);
        ("bool", Json.Bool true);
        ("null", Json.Null);
        ("str", Json.String "line\nbreak \"quoted\" tab\t\\done");
        ("ctrl", Json.String "\001\031");
        ( "nested",
          Json.List [ Json.Int 1; Json.Obj [ ("k", Json.String "v") ]; Json.Null ]
        );
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Error msg -> Alcotest.fail msg
  | Ok v' -> Alcotest.(check bool) "roundtrip equal" true (v = v')

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted invalid %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{\"a\":1} x" ]

let test_json_unicode_escape () =
  (match Json.parse {|"a\u00e9b\u0041"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "decoded" "a\xc3\xa9bA" s
  | _ -> Alcotest.fail "unicode escape");
  (* control characters round-trip through the printer's \u escapes *)
  match Json.parse (Json.to_string (Json.String "\001\031")) with
  | Ok v -> Alcotest.(check bool) "ctrl roundtrip" true (v = Json.String "\001\031")
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_registry () =
  Obs.reset ();
  let c = Metrics.counter "test.counter" in
  let c' = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.add c' 4;
  Alcotest.(check int) "shared instrument" 5 (Metrics.counter_value c);
  (match Metrics.gauge "test.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c);
  Alcotest.(check bool) "registration survives reset" true
    (List.mem_assoc "test.counter" (Metrics.snapshot ()))

let test_histogram () =
  Obs.reset ();
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 100 ];
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.(check int) "sum" 106 (Metrics.hist_sum h);
  Alcotest.(check int) "max" 100 (Metrics.hist_max h);
  match List.assoc "test.hist" (Metrics.snapshot ()) with
  | Metrics.Histogram { count; sum; min; max; buckets } ->
    Alcotest.(check int) "snap count" 4 count;
    Alcotest.(check int) "snap sum" 106 sum;
    Alcotest.(check int) "snap min" 1 min;
    Alcotest.(check int) "snap max" 100 max;
    (* every bucket upper bound is of the form 2^k - 1, and the bucket
       counts cover all observations *)
    Alcotest.(check int) "bucketed" 4
      (List.fold_left (fun a (_, n) -> a + n) 0 buckets);
    List.iter
      (fun (le, _) ->
        Alcotest.(check bool) "pow2-1 bound" true
          (le >= 0 && (le land (le + 1)) = 0))
      buckets
  | _ -> Alcotest.fail "snapshot kind"

let test_histogram_percentiles () =
  Obs.reset ();
  let h = Metrics.histogram "test.pct" in
  (* empty histogram: every percentile is 0 *)
  Alcotest.(check int) "empty p50" 0 (Metrics.hist_percentile h 50.0);
  List.iter (Metrics.observe h) [ 1; 2; 3; 100 ];
  (* ranks land in pow2-1 buckets: p50 covers {1,2} -> bucket bound 3;
     p90 and p100 land in the last bucket, clamped to the exact max *)
  Alcotest.(check int) "p50" 3 (Metrics.hist_percentile h 50.0);
  Alcotest.(check int) "p90" 100 (Metrics.hist_percentile h 90.0);
  Alcotest.(check int) "p100" 100 (Metrics.hist_percentile h 100.0);
  (* p outside (0, 100] is a caller bug, not a clampable request *)
  (match Metrics.hist_percentile h 0.0 with
  | _ -> Alcotest.fail "p0 should raise"
  | exception Invalid_argument _ -> ());
  (match Metrics.hist_percentile h 100.5 with
  | _ -> Alcotest.fail "p100.5 should raise"
  | exception Invalid_argument _ -> ());
  (* a single observation answers every percentile *)
  let h1 = Metrics.histogram "test.pct1" in
  Metrics.observe h1 7;
  Alcotest.(check int) "single p50" 7 (Metrics.hist_percentile h1 50.0);
  Alcotest.(check int) "single p99" 7 (Metrics.hist_percentile h1 99.0);
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let (), records =
    with_memory_trace (fun () ->
        Obs.with_span "outer" (fun () ->
            Obs.with_span "inner" (fun () -> ());
            Obs.with_span "inner" (fun () -> ())))
  in
  let spans = List.filter (fun r -> kind_of r = "span") records in
  (* spans are emitted at end time: both inners before the outer *)
  (match List.map (str_field "name") spans with
  | [ "inner"; "inner"; "outer" ] -> ()
  | names -> Alcotest.fail ("bad span order: " ^ String.concat "," names));
  let outer = List.nth spans 2 and inner = List.hd spans in
  Alcotest.(check int) "outer depth" 0
    (int_of_float (num_field "depth" outer));
  Alcotest.(check int) "inner depth" 1
    (int_of_float (num_field "depth" inner));
  (* timing monotonicity: child starts after the parent, fits inside it *)
  Alcotest.(check bool) "durations non-negative" true
    (List.for_all (fun s -> num_field "dur" s >= 0.0) spans);
  Alcotest.(check bool) "inner starts after outer" true
    (num_field "t" inner >= num_field "t" outer);
  Alcotest.(check bool) "inner within outer" true
    (num_field "t" inner +. num_field "dur" inner
    <= num_field "t" outer +. num_field "dur" outer +. 1e-9)

let test_span_error_attr () =
  let (), records =
    with_memory_trace (fun () ->
        try Obs.with_span "boom" (fun () -> failwith "x")
        with Failure _ -> ())
  in
  match List.filter (fun r -> kind_of r = "span") records with
  | [ s ] ->
    let attrs = Option.get (Json.member "attrs" s) in
    Alcotest.(check bool) "error tagged" true
      (Json.member "error" attrs = Some (Json.Bool true))
  | _ -> Alcotest.fail "expected one span"

(* ------------------------------------------------------------------ *)
(* Disabled mode                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_emits_nothing () =
  Obs.reset ();
  let sink, records = Obs.memory_sink () in
  Obs.add_sink sink;
  (* no enable: spans and events must not reach the sink *)
  Obs.with_span "quiet" (fun () -> ());
  let lp = Obs.Loop.start "quietloop" in
  Obs.Loop.iteration lp 0;
  Obs.Loop.finish lp;
  Obs.emit (Obs.Candidate { loop = "quietloop"; attrs = [] });
  Obs.solver_call ~result:"sat" [];
  Alcotest.(check int) "no records" 0 (List.length (records ()));
  (* the registry stays live even when tracing is off *)
  let c = Metrics.counter "test.disabled" in
  Metrics.incr c;
  Alcotest.(check int) "counters still count" 1 (Metrics.counter_value c);
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* JSONL sink round-trip                                               *)
(* ------------------------------------------------------------------ *)

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Obs.reset ();
  Obs.add_sink (Obs.jsonl_sink path);
  Obs.enable ();
  let lp = Obs.Loop.start "demo" ~attrs:[ ("size", Obs.Int 3) ] in
  Obs.Loop.iteration lp 0;
  Obs.Loop.verdict lp "ok" ~attrs:[ ("score", Obs.Float 0.5) ];
  Obs.Loop.finish lp;
  Obs.shutdown ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let records =
    List.rev_map
      (fun line ->
        match Json.parse line with
        | Ok r -> r
        | Error msg -> Alcotest.fail (Printf.sprintf "bad line %S: %s" line msg))
      !lines
  in
  (* loop_started, iteration, oracle_verdict, loop_finished, metrics *)
  Alcotest.(check int) "record count" 5 (List.length records);
  (match List.map kind_of records with
  | [ "event"; "event"; "event"; "event"; "metrics" ] -> ()
  | ks -> Alcotest.fail ("bad kinds: " ^ String.concat "," ks));
  let verdict = List.nth records 2 in
  Alcotest.(check string) "verdict loop" "demo" (str_field "loop" verdict);
  let attrs = Option.get (Json.member "attrs" verdict) in
  Alcotest.(check bool) "verdict attr" true
    (Json.member "verdict" attrs = Some (Json.String "ok"));
  Alcotest.(check (float 1e-9)) "float attr" 0.5
    (Option.get (Option.bind (Json.member "score" attrs) Json.to_float))

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)
(* ------------------------------------------------------------------ *)

let test_chrome_export () =
  let trace = Filename.temp_file "obs_test" ".jsonl" in
  Obs.reset ();
  Obs.add_sink (Obs.jsonl_sink trace);
  Obs.enable ();
  Metrics.incr (Metrics.counter "test.chrome");
  Obs.with_span "work" (fun () ->
      let lp = Obs.Loop.start "demo" in
      Obs.Loop.iteration lp 0;
      Obs.Loop.finish lp);
  Obs.shutdown ();
  let out = Filename.temp_file "obs_test" ".json" in
  (match Obs.export_chrome ~input:trace ~output:out with
  | Error msg -> Alcotest.fail msg
  | Ok () -> ());
  let ic = open_in out in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove trace;
  Sys.remove out;
  match Json.parse content with
  | Error msg -> Alcotest.fail msg
  | Ok doc -> (
    match Json.member "traceEvents" doc with
    | Some (Json.List events) ->
      let phs =
        List.filter_map
          (fun e -> Option.bind (Json.member "ph" e) Json.to_str)
          events
      in
      Alcotest.(check bool) "has complete span" true (List.mem "X" phs);
      Alcotest.(check bool) "has instant" true (List.mem "i" phs);
      Alcotest.(check bool) "has counter" true (List.mem "C" phs)
    | _ -> Alcotest.fail "no traceEvents")

let test_chrome_export_errors () =
  (* missing input file *)
  (match
     Obs.export_chrome ~input:"/nonexistent/trace.jsonl"
       ~output:(Filename.temp_file "obs_test" ".json")
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted a missing input file");
  (* malformed line: the error names the offending line *)
  let bad = Filename.temp_file "obs_test" ".jsonl" in
  let oc = open_out bad in
  output_string oc "not json\n";
  close_out oc;
  let out = Filename.temp_file "obs_test" ".json" in
  (match Obs.export_chrome ~input:bad ~output:out with
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names line 1" msg)
      true
      (let re = "line 1" in
       let rec contains i =
         i + String.length re <= String.length msg
         && (String.sub msg i (String.length re) = re || contains (i + 1))
       in
       contains 0)
  | Ok () -> Alcotest.fail "accepted a malformed line");
  Sys.remove bad;
  (try Sys.remove out with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* End-to-end: traced OGIS run                                         *)
(* ------------------------------------------------------------------ *)

let test_traced_ogis_run () =
  let width = 8 in
  let spec =
    {
      Ogis.Encode.width;
      ninputs = 1;
      noutputs = 1;
      library = [ Ogis.Component.dec; Ogis.Component.and_ ];
    }
  in
  let mask = (1 lsl width) - 1 in
  let oracle = function
    | [ x ] -> [ x land (x - 1) land mask ]
    | _ -> assert false
  in
  let outcome, records =
    with_memory_trace (fun () -> Ogis.Synth.synthesize spec oracle)
  in
  let stats =
    match outcome with
    | Budget.Converged (Ogis.Synth.Synthesized (_, stats)) -> stats
    | _ -> Alcotest.fail "synthesis failed"
  in
  let ogis_events =
    List.filter
      (fun r -> kind_of r = "event" && str_field "loop" r = "ogis")
      records
  in
  let names = List.map (str_field "name") ogis_events in
  (* the event stream brackets correctly *)
  Alcotest.(check string) "starts with loop_started" "loop_started"
    (List.hd names);
  Alcotest.(check string) "ends with loop_finished" "loop_finished"
    (List.nth names (List.length names - 1));
  let count n = List.length (List.filter (( = ) n) names) in
  Alcotest.(check int) "one start" 1 (count "loop_started");
  Alcotest.(check int) "one finish" 1 (count "loop_finished");
  (* [stats.iterations] counts counterexample rounds; the final round
     (unique candidate) also enters the loop and logs an iteration *)
  Alcotest.(check int) "one iteration event per loop round"
    (stats.Ogis.Synth.iterations + 1)
    (count "iteration");
  (* every candidate gets an oracle verdict *)
  Alcotest.(check int) "verdict per candidate" (count "candidate")
    (count "oracle_verdict");
  (* 4 deterministic seed probes; every further oracle query is driven
     by a distinguishing input and logged as a counterexample *)
  Alcotest.(check int) "counterexamples match oracle queries"
    (stats.Ogis.Synth.oracle_queries - 4)
    (count "counterexample");
  (* iteration → candidate → oracle_verdict, in that order per round *)
  let rec well_formed = function
    | "iteration" :: "candidate" :: "oracle_verdict" :: rest ->
      well_formed
        (match rest with "counterexample" :: r -> r | r -> r)
    | "iteration" :: rest ->
      (* budget/unrealizable rounds have no candidate *)
      well_formed rest
    | [ "loop_finished" ] -> true
    | _ -> false
  in
  let rounds =
    List.filter (fun n -> n <> "solver_call") (List.tl names)
  in
  Alcotest.(check bool) "per-round event shape" true (well_formed rounds);
  (* solver calls were attributed to the ogis loop *)
  Alcotest.(check bool) "solver calls attributed" true
    (count "solver_call" > 0);
  Obs.reset ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter registry" `Quick test_counter_registry;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and timing" `Quick test_span_nesting;
          Alcotest.test_case "error attr" `Quick test_span_error_attr;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "disabled emits nothing" `Quick
            test_disabled_emits_nothing;
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_sink_roundtrip;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
          Alcotest.test_case "chrome export errors" `Quick
            test_chrome_export_errors;
        ] );
      ( "loops",
        [ Alcotest.test_case "traced ogis run" `Quick test_traced_ogis_run ] );
    ]
