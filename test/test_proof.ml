(* The proof & certificate plane. The checker tests pin down the audit
   contract on hand-built formulas: RUP additions accepted, non-RUP
   additions and proofs that never derive the empty clause rejected.
   The integration tests drive the real pipeline — solver verdicts
   logged to spools, certificates reconstructed exactly as the CLI
   does, then verified by the independent checker — including the
   shared-spool portfolio path, and check the no-observer-effect claim:
   search statistics are bit-identical with the plane on and off. *)

module Lit = Smt.Lit
module Sat = Smt.Sat
module Dpll = Smt.Dpll
module Dimacs = Smt.Dimacs
module Proof = Smt.Proof
module Portfolio = Smt.Portfolio
module Drat = Cert.Drat
module Json = Obs.Json

let tmp_prefix tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "test_proof_%s_%d" tag (Unix.getpid ()))

(* deterministic pseudo-random CNF (seeded LCG; no global Random state) *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (!state lsr 15) mod bound

let random_cnf ~seed ~nvars ~nclauses =
  let next = lcg seed in
  let clause _ = List.init 3 (fun _ -> Lit.make (next nvars) (next 2 = 0)) in
  { Dimacs.nvars; clauses = List.init nclauses clause }

let solve_problem ?seed (p : Dimacs.problem) =
  let s = Sat.create ?seed () in
  for _ = 1 to p.Dimacs.nvars do
    ignore (Sat.new_var s : int)
  done;
  List.iter (Sat.add_clause s) p.Dimacs.clauses;
  let r = Sat.solve s in
  (r, Sat.stats s)

let ring_unsat_cnf =
  "p cnf 4 6\n1 0\n-1 2 0\n-2 3 0\n-3 4 0\n-4 1 0\n-2 -4 0\n"

(* ------------------------------------------------------------------ *)
(* DIMACS round-trips                                                  *)
(* ------------------------------------------------------------------ *)

let test_dimacs_roundtrip () =
  let p = random_cnf ~seed:11 ~nvars:20 ~nclauses:60 in
  let path = tmp_prefix "roundtrip" ^ ".cnf" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Dimacs.write_file path p;
  let q = Dimacs.parse_file path in
  Alcotest.(check int) "nvars survive" p.Dimacs.nvars q.Dimacs.nvars;
  Alcotest.(check bool) "clauses survive" true (p.Dimacs.clauses = q.Dimacs.clauses);
  let r = Dimacs.parse (Dimacs.to_string p) in
  Alcotest.(check bool) "to_string round-trips" true
    (p.Dimacs.nvars = r.Dimacs.nvars && p.Dimacs.clauses = r.Dimacs.clauses)

let test_with_core_obligation () =
  let p = Dimacs.parse ring_unsat_cnf in
  let core = [ Lit.pos 0; Lit.neg 2 ] in
  let q = Dimacs.with_core p core in
  Alcotest.(check int) "one unit per core literal"
    (List.length p.Dimacs.clauses + 2)
    (List.length q.Dimacs.clauses);
  Alcotest.(check bool) "units appended, base clauses untouched" true
    (q.Dimacs.clauses = p.Dimacs.clauses @ [ [ Lit.pos 0 ]; [ Lit.neg 2 ] ])

(* ------------------------------------------------------------------ *)
(* checker on hand-built proofs                                        *)
(* ------------------------------------------------------------------ *)

let check_strings cnf proof =
  match (Drat.parse_dimacs cnf, Drat.parse_proof proof) with
  | Ok c, Ok p -> Drat.check c p
  | Error e, _ | _, Error e -> Error e

let test_checker_accepts_rup () =
  (* 2-variable contradiction: [1] is RUP, then the empty clause is *)
  let cnf = "1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n" in
  match check_strings cnf "1 0\n0\n" with
  | Error e -> Alcotest.failf "valid proof rejected: %s" e
  | Ok st ->
    Alcotest.(check int) "cnf clauses" 4 st.Drat.cnf_clauses;
    Alcotest.(check int) "additions verified" 2 st.Drat.additions

let test_checker_root_conflict () =
  (* the formula refutes itself by unit propagation: an empty proof is
     already a certificate *)
  match check_strings "1 0\n-1 2 0\n-2 0\n" "" with
  | Error e -> Alcotest.failf "root conflict not accepted: %s" e
  | Ok _ -> ()

let test_checker_rejects_non_rup () =
  (* satisfiable formula: the empty clause can never be RUP *)
  (match check_strings "1 2 0\n" "0\n" with
  | Ok _ -> Alcotest.fail "empty clause accepted over a satisfiable CNF"
  | Error e ->
    Alcotest.(check bool) "explains the offending line" true
      (String.length e > 0));
  (* a proof that checks line-by-line but never derives the empty
     clause proves nothing *)
  match check_strings "1 2 0\n-2 0\n" "1 0\n" with
  | Ok _ -> Alcotest.fail "incomplete proof accepted"
  | Error _ -> ()

let test_checker_deletions () =
  (* deletion of a live clause is honoured; deleting a clause that was
     never added (strengthened-in-place case) is ignored, not fatal *)
  let cnf = "1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n1 2 3 0\n" in
  (* the deletions come first: once the unit [1] lands, propagation
     conflicts at the root and the remaining lines are vacuous *)
  match check_strings cnf "d 1 2 3 0\nd 7 8 0\n1 0\n0\n" with
  | Error e -> Alcotest.failf "proof with deletions rejected: %s" e
  | Ok st ->
    Alcotest.(check int) "live deletion counted" 1 st.Drat.deletions

(* ------------------------------------------------------------------ *)
(* certificate reconstruction (mirrors the CLI's check-proof)          *)
(* ------------------------------------------------------------------ *)

let read_prefix path n =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic n

let reconstruct entry =
  let get f k =
    match Option.bind (Json.member k entry) f with
    | Some v -> v
    | None -> Alcotest.failf "index entry lacks %s" k
  in
  let str k = get Json.to_str k in
  let num k = get Json.to_int k in
  let core =
    match Json.member "core" entry with
    | Some (Json.List l) -> List.filter_map Json.to_int l
    | _ -> []
  in
  let cnf =
    Printf.sprintf "p cnf %d %d\n" (num "maxvar")
      (num "cnf_clauses" + List.length core)
    ^ read_prefix (str "cnf") (num "cnf_bytes")
    ^ String.concat ""
        (List.map (fun l -> Printf.sprintf "%d 0\n" l) core)
  in
  let drat = read_prefix (str "drat") (num "drat_bytes") ^ "0\n" in
  (cnf, drat)

let cleanup_spools prefix =
  let dir = Filename.dirname prefix and base = Filename.basename prefix in
  Array.iter
    (fun f ->
      if String.length f > String.length base
         && String.sub f 0 (String.length base) = base
      then Sys.remove (Filename.concat dir f))
    (Sys.readdir dir)

(* run [f] with the plane logging under a fresh prefix, hand the index
   entries to [use] while the spool files still exist, then clean up *)
let with_plane tag f use =
  let prefix = tmp_prefix tag in
  Fun.protect
    ~finally:(fun () ->
      Proof.disable ();
      cleanup_spools prefix)
  @@ fun () ->
  Proof.enable ~prefix;
  let () = f () in
  Proof.disable ();
  match Proof.read_index ~prefix with
  | Error e -> Alcotest.failf "index unreadable: %s" e
  | Ok entries -> use entries

let check_entries where entries =
  Alcotest.(check bool) (where ^ ": certificates issued") true
    (entries <> []);
  List.iteri
    (fun i entry ->
      let cnf, drat = reconstruct entry in
      match check_strings cnf drat with
      | Ok _ -> ()
      | Error e ->
        let dump ext text =
          let path = Printf.sprintf "/tmp/failcert%d.%s" i ext in
          let oc = open_out path in
          output_string oc text;
          close_out oc
        in
        dump "cnf" cnf;
        dump "drat" drat;
        Alcotest.failf "%s: certificate %d rejected: %s" where i e)
    entries

let test_solver_certificates_verified () =
  let instances =
    Dimacs.parse ring_unsat_cnf
    :: List.init 8 (fun i -> random_cnf ~seed:(300 + i) ~nvars:40 ~nclauses:180)
  in
  let unsat = ref 0 in
  with_plane "solo"
    (fun () ->
      List.iter
        (fun p ->
          match solve_problem p with
          | Sat.Unsat, _ -> incr unsat
          | _ -> ())
        instances)
    (fun entries ->
      Alcotest.(check bool) "some instance was unsat" true (!unsat > 0);
      Alcotest.(check int) "one certificate per unsat verdict" !unsat
        (List.length entries);
      check_entries "solo solver" entries)

let test_portfolio_shared_spool_verified () =
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let instances =
    Dimacs.parse ring_unsat_cnf
    :: List.init 6 (fun i -> random_cnf ~seed:(700 + i) ~nvars:40 ~nclauses:180)
  in
  (* a 4-way race with clause sharing writes one totally-ordered spool;
     the winner's certificate must still check on its prefix *)
  with_plane "portfolio"
    (fun () ->
      List.iter
        (fun p -> ignore (Portfolio.solve ~pool p : Portfolio.outcome))
        instances)
    (check_entries "shared spool")

let test_verdicts_identical_proof_on_off () =
  let instances =
    List.init 6 (fun i -> random_cnf ~seed:(40 + i) ~nvars:50 ~nclauses:215)
  in
  let plain = List.map (solve_problem ~seed:5) instances in
  let logged =
    let prefix = tmp_prefix "observer" in
    Fun.protect
      ~finally:(fun () ->
        Proof.disable ();
        cleanup_spools prefix)
    @@ fun () ->
    Proof.enable ~prefix;
    List.map (solve_problem ~seed:5) instances
  in
  List.iteri
    (fun i ((r0, st0), (r1, st1)) ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d: verdict unchanged" i)
        true (r0 = r1);
      Alcotest.(check bool)
        (Printf.sprintf "instance %d: search bit-identical" i)
        true
        ((st0.Sat.decisions, st0.Sat.conflicts, st0.Sat.propagations)
        = (st1.Sat.decisions, st1.Sat.conflicts, st1.Sat.propagations)))
    (List.combine plain logged)

(* ------------------------------------------------------------------ *)
(* unsat cores                                                         *)
(* ------------------------------------------------------------------ *)

let test_assumption_core_named () =
  let s = Sat.create () in
  let vp = Sat.new_var s and vq = Sat.new_var s and vr = Sat.new_var s in
  Sat.set_name s vp "P";
  Sat.set_name s vq "Q";
  Sat.set_name s vr "R";
  Sat.add_clause s [ Lit.neg_of vp; Lit.neg_of vq ];
  let r =
    Sat.solve_with_assumptions s [ Lit.pos vp; Lit.pos vq; Lit.pos vr ]
  in
  Alcotest.(check bool) "unsat under assumptions" true (r = Sat.Unsat);
  let names = Sat.core_names s in
  Alcotest.(check bool) "core is nonempty" true (names <> []);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "blamed constraint %s is a culprit" n)
        true
        (n = "P" || n = "Q"))
    names;
  (* the core's standalone proof obligation really is unsatisfiable *)
  let obligation =
    Dimacs.with_core
      { Dimacs.nvars = 3; clauses = [ [ Lit.neg_of vp; Lit.neg_of vq ] ] }
      (Sat.unsat_core s)
  in
  Alcotest.(check bool) "with_core obligation unsat" true
    (Dimacs.solve obligation = Dpll.Unsat);
  (* the innocent assumption must stay sat-able with the culprits gone *)
  Alcotest.(check bool) "R alone is satisfiable" true
    (Sat.solve_with_assumptions s [ Lit.pos vr ] = Sat.Sat)

let () =
  Alcotest.run "proof"
    [
      ( "dimacs",
        [
          Alcotest.test_case "write/parse round-trip" `Quick
            test_dimacs_roundtrip;
          Alcotest.test_case "with_core appends unit obligations" `Quick
            test_with_core_obligation;
        ] );
      ( "checker",
        [
          Alcotest.test_case "accepts a RUP refutation" `Quick
            test_checker_accepts_rup;
          Alcotest.test_case "accepts a root-level conflict" `Quick
            test_checker_root_conflict;
          Alcotest.test_case "rejects non-RUP and incomplete proofs" `Quick
            test_checker_rejects_non_rup;
          Alcotest.test_case "deletions honoured, unmatched ignored" `Quick
            test_checker_deletions;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "solo verdicts reconstruct and verify" `Quick
            test_solver_certificates_verified;
          Alcotest.test_case "shared portfolio spool verifies" `Quick
            test_portfolio_shared_spool_verified;
          Alcotest.test_case "logging never perturbs the search" `Quick
            test_verdicts_identical_proof_on_off;
        ] );
      ( "cores",
        [
          Alcotest.test_case "named core blames only culprits" `Quick
            test_assumption_core_named;
        ] );
    ]
