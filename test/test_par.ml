(* The domain pool and the portfolio SAT front-end. The pool tests pin
   down the contract the fan-out adapters rely on: results in input
   order, exceptions funneled to the submitter without wedging the pool,
   pools reusable across loop iterations, and cooperative cancellation
   that actually stops losing tasks. The portfolio tests check the
   soundness claim — parallel verdicts bit-for-bit equal to sequential
   ones — on the DIMACS regression instances, and that the Sat
   diversification knobs change the search without changing answers. *)

module Lit = Smt.Lit
module Sat = Smt.Sat
module Dpll = Smt.Dpll
module Dimacs = Smt.Dimacs
module Portfolio = Smt.Portfolio

exception Boom

(* ------------------------------------------------------------------ *)
(* pool basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_map_matches_sequential () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 1000 (fun i -> i) in
      let got = Par.map pool (fun x -> (x * x) + 1) xs in
      let want = Array.map (fun x -> (x * x) + 1) xs in
      Alcotest.(check (array int)) "map = Array.map" want got;
      let got_small = Par.map ~chunk:1 pool (fun x -> -x) (Array.sub xs 0 7) in
      Alcotest.(check (array int))
        "chunk:1 map = Array.map"
        (Array.init 7 (fun i -> -i))
        got_small)

let test_map_list_order () =
  Par.Pool.with_pool ~jobs:3 (fun pool ->
      let got = Par.map_list pool (fun x -> 2 * x) [ 5; 1; 4; 1; 3 ] in
      Alcotest.(check (list int)) "order preserved" [ 10; 2; 8; 2; 6 ] got)

let test_iter_covers_all () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let sum = Atomic.make 0 in
      Par.iter pool
        (fun x -> ignore (Atomic.fetch_and_add sum x : int))
        (Array.init 100 (fun i -> i + 1));
      Alcotest.(check int) "every element visited once" 5050 (Atomic.get sum))

let test_sequential_degeneration () =
  (* jobs = 1 spawns no domains; everything runs on the submitter *)
  Par.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Par.Pool.jobs pool);
      let got = Par.map pool (fun x -> x + 1) (Array.init 10 (fun i -> i)) in
      Alcotest.(check (array int))
        "map works without workers"
        (Array.init 10 (fun i -> i + 1))
        got)

(* ------------------------------------------------------------------ *)
(* exception funneling                                                 *)
(* ------------------------------------------------------------------ *)

let test_exception_funnel () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let futs =
        List.init 8 (fun i ->
            Par.submit pool (fun () -> if i = 3 then raise Boom else i))
      in
      (match Par.await_all pool futs with
      | _ -> Alcotest.fail "await_all must re-raise the task's exception"
      | exception Boom -> ());
      (* the failure must not wedge the pool: it keeps executing tasks *)
      let got = Par.map pool (fun x -> x * 10) [| 1; 2; 3 |] in
      Alcotest.(check (array int))
        "pool usable after a failed task" [| 10; 20; 30 |] got)

let test_reuse_across_loops () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 5 do
        let got =
          Par.map pool (fun x -> x * round) (Array.init 50 (fun i -> i))
        in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 50 (fun i -> i * round))
          got
      done)

(* ------------------------------------------------------------------ *)
(* cancellation                                                        *)
(* ------------------------------------------------------------------ *)

let test_first_some_cancels_losers () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let losers_stopped = Atomic.make 0 in
      let loser token =
        match
          while true do
            Par.Cancel.check token
          done
        with
        | () -> None
        | exception Par.Cancelled ->
          ignore (Atomic.fetch_and_add losers_stopped 1 : int);
          None
      in
      let winner _token = Some 42 in
      (* this test terminates only if cancellation reaches the spinning
         losers; the winner's verdict must come through regardless *)
      let got = Par.first_some pool [ loser; winner; loser; loser ] in
      Alcotest.(check (option int)) "winner's value" (Some 42) got;
      Alcotest.(check int) "all losers observed cancellation" 3
        (Atomic.get losers_stopped))

let test_first_some_no_winner () =
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      let got = Par.first_some pool [ (fun _ -> None); (fun _ -> None) ] in
      Alcotest.(check (option int)) "no winner" None got;
      match Par.first_some pool [ (fun _ -> None); (fun _ -> raise Boom) ] with
      | _ -> Alcotest.fail "loser-free failure must re-raise"
      | exception Boom -> ())

(* ------------------------------------------------------------------ *)
(* obs under domains                                                   *)
(* ------------------------------------------------------------------ *)

let test_metrics_concurrent_exact () =
  let c = Obs.Metrics.counter "test_par.concurrent" in
  Obs.Metrics.set_counter c 0;
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      Par.iter pool
        (fun _ ->
          for _ = 1 to 1000 do
            Obs.Metrics.incr c
          done)
        (Array.make 16 ()));
  Alcotest.(check int) "no lost increments" 16000 (Obs.Metrics.counter_value c)

let test_spans_from_domains () =
  Obs.reset ();
  let sink, records = Obs.memory_sink () in
  Obs.add_sink sink;
  Obs.enable ();
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      Par.iter pool
        (fun i -> Obs.with_span "par.task" (fun () -> ignore (Sys.opaque_identity (i * i) : int)))
        (Array.init 32 (fun i -> i)));
  Obs.shutdown ();
  let spans =
    List.filter_map
      (fun r ->
        match Obs.Analyze.record_of_json r with
        | Ok (Obs.Analyze.Span { name; depth; dom; _ }) -> Some (name, depth, dom)
        | _ -> None)
      (records ())
  in
  Alcotest.(check int) "one span per task" 32 (List.length spans);
  List.iter
    (fun (name, depth, dom) ->
      Alcotest.(check string) "span name" "par.task" name;
      Alcotest.(check int) "domain-local depth" 0 depth;
      Alcotest.(check bool) "dom id present" true (dom >= 0))
    spans;
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Sat diversification                                                 *)
(* ------------------------------------------------------------------ *)

(* deterministic pseudo-random CNF (seeded LCG; no global Random state) *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (!state lsr 15) mod bound

let random_cnf ~seed ~nvars ~nclauses =
  let next = lcg seed in
  let clause _ = List.init 3 (fun _ -> Lit.make (next nvars) (next 2 = 0)) in
  { Dimacs.nvars; clauses = List.init nclauses clause }

let solve_with ?seed ?default_phase ?restart_base (p : Dimacs.problem) =
  let s = Sat.create ?seed ?default_phase ?restart_base () in
  for _ = 1 to p.Dimacs.nvars do
    ignore (Sat.new_var s : int)
  done;
  List.iter (Sat.add_clause s) p.Dimacs.clauses;
  let r = Sat.solve s in
  (r, Sat.stats s, s)

let test_seed_diversification () =
  let diverged = ref false in
  for i = 1 to 8 do
    let p = random_cnf ~seed:(100 + i) ~nvars:60 ~nclauses:255 in
    let r0, st0, s0 = solve_with ~seed:0 p in
    let r1, st1, _ = solve_with ~seed:987654321 p in
    Alcotest.(check bool)
      (Printf.sprintf "instance %d: seeds agree on sat/unsat" i)
      true (r0 = r1);
    if r0 = Sat.Sat then
      Alcotest.(check bool)
        (Printf.sprintf "instance %d: model sound" i)
        true
        (Dpll.eval (Array.init p.Dimacs.nvars (Sat.value s0)) p.Dimacs.clauses);
    if
      (st0.Sat.decisions, st0.Sat.conflicts, st0.Sat.propagations)
      <> (st1.Sat.decisions, st1.Sat.conflicts, st1.Sat.propagations)
    then diverged := true
  done;
  Alcotest.(check bool)
    "some instance explored a different decision sequence" true !diverged

let test_phase_default_changes_first_model () =
  (* every clause has a positive literal, so all-true satisfies it: a
     phase-true solver decides straight into a model *)
  let p =
    { Dimacs.nvars = 30;
      clauses =
        List.init 60 (fun i ->
            [ Lit.pos (i mod 30); Lit.make ((i + 7) mod 30) (i mod 3 = 0) ]) }
  in
  let r_true, st_true, s = solve_with ~default_phase:true p in
  let r_false, _, _ = solve_with ~default_phase:false p in
  Alcotest.(check bool) "phase knobs agree on satisfiability" true
    (r_true = Sat.Sat && r_false = Sat.Sat);
  Alcotest.(check bool) "all-true model found without conflicts" true
    (st_true.Sat.conflicts = 0);
  Alcotest.(check bool) "model sound" true
    (Dpll.eval (Array.init p.Dimacs.nvars (Sat.value s)) p.Dimacs.clauses)

(* ------------------------------------------------------------------ *)
(* portfolio vs sequential on the DIMACS regression instances          *)
(* ------------------------------------------------------------------ *)

let ring_cnf = "p cnf 4 5\n1 0\n-1 2 0\n-2 3 0\n-3 4 0\n-4 1 0\n"

let multi_cnf =
  "p cnf 8 9\n1 2 3 0\n-1 4 0\n-2 5 0\n-3 6 0\n4 5 6 0\n-7 -8 0\n7 8 0\n\
   -4 -5 7 0\n-6 8 0\n"

let ring_unsat_cnf =
  "p cnf 4 6\n1 0\n-1 2 0\n-2 3 0\n-3 4 0\n-4 1 0\n-2 -4 0\n"

let test_portfolio_agrees_with_sequential () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let instances =
        [ Dimacs.parse ring_cnf; Dimacs.parse multi_cnf;
          Dimacs.parse ring_unsat_cnf ]
        @ List.init 10 (fun i ->
              random_cnf ~seed:(500 + i) ~nvars:40 ~nclauses:172)
      in
      List.iteri
        (fun i p ->
          let seq = Portfolio.solve p in
          Alcotest.(check int) "sequential races one solver" 1 seq.Portfolio.raced;
          let par = Portfolio.solve ~pool p in
          Alcotest.(check bool)
            (Printf.sprintf "instance %d: verdicts identical" i)
            true
            (seq.Portfolio.result = par.Portfolio.result);
          Alcotest.(check int)
            (Printf.sprintf "instance %d: full race" i)
            (Par.Pool.jobs pool) par.Portfolio.raced;
          match par.Portfolio.model with
          | Some m ->
            Alcotest.(check bool)
              (Printf.sprintf "instance %d: winner's model sound" i)
              true
              (Dpll.eval m p.Dimacs.clauses)
          | None ->
            Alcotest.(check bool)
              (Printf.sprintf "instance %d: no model only on unsat" i)
              true
              (par.Portfolio.result = Sat.Unsat))
        instances)


(* ------------------------------------------------------------------ *)
(* learnt-clause exchange                                              *)
(* ------------------------------------------------------------------ *)

let clause lits = Array.of_list (List.map (fun v -> Lit.pos v) lits)

let test_exchange_roundtrip () =
  let ex = Smt.Exchange.create ~workers:3 ~capacity:8 in
  Smt.Exchange.publish ex ~worker:0 ~lbd:2 (clause [ 1; 2 ]);
  Smt.Exchange.publish ex ~worker:1 ~lbd:3 (clause [ 3 ]);
  (* a worker never re-imports its own exports *)
  let mine = Smt.Exchange.drain ex ~worker:0 in
  Alcotest.(check int) "own outbox excluded" 1 (List.length mine);
  Alcotest.(check bool)
    "worker 0 sees worker 1's clause" true
    (match mine with [ (3, c) ] -> c = clause [ 3 ] | _ -> false);
  (* draining is cursor-based: nothing new, nothing returned *)
  Alcotest.(check int) "drain is idempotent" 0
    (List.length (Smt.Exchange.drain ex ~worker:0));
  let theirs = Smt.Exchange.drain ex ~worker:2 in
  Alcotest.(check int) "third party sees both" 2 (List.length theirs);
  Alcotest.(check int) "published totals" 2 (Smt.Exchange.published ex)

let test_exchange_overflow_drops_oldest () =
  let capacity = 4 in
  let ex = Smt.Exchange.create ~workers:2 ~capacity in
  Alcotest.(check int) "no drops before any traffic" 0
    (Smt.Exchange.dropped ex);
  (* publish well past capacity: never blocks, oldest entries are
     overwritten in place *)
  for i = 1 to 11 do
    Smt.Exchange.publish ex ~worker:0 ~lbd:2 (clause [ i ])
  done;
  let got = Smt.Exchange.drain ex ~worker:1 in
  Alcotest.(check int) "only the newest [capacity] survive" capacity
    (List.length got);
  Alcotest.(check bool)
    "survivors are the most recent, oldest first" true
    (List.map snd got = List.map (fun i -> clause [ i ]) [ 8; 9; 10; 11 ]);
  (* the 7 lapped clauses are no longer silent: the drain counted them *)
  Alcotest.(check int) "lap drops counted" 7 (Smt.Exchange.dropped ex);
  (* the reader's cursor has caught up; later traffic flows normally *)
  Smt.Exchange.publish ex ~worker:0 ~lbd:1 (clause [ 12 ]);
  Alcotest.(check bool)
    "post-overflow publish delivered" true
    (List.map snd (Smt.Exchange.drain ex ~worker:1) = [ clause [ 12 ] ]);
  Alcotest.(check int) "published counts every publish" 12
    (Smt.Exchange.published ex);
  Alcotest.(check int) "clean drain adds no drops" 7 (Smt.Exchange.dropped ex)

(* The export hook must not perturb the search: a solver that exports
   into an exchange nobody else writes to (so every import drains
   empty) must take exactly the decision sequence of a plain solver. *)
let test_share_export_does_not_perturb () =
  let p = random_cnf ~seed:4242 ~nvars:60 ~nclauses:255 in
  let r0, st0, _ = solve_with ~seed:17 p in
  let ex = Smt.Exchange.create ~workers:2 ~capacity:64 in
  let s = Sat.create ~seed:17 () in
  for _ = 1 to p.Dimacs.nvars do
    ignore (Sat.new_var s : int)
  done;
  List.iter (Sat.add_clause s) p.Dimacs.clauses;
  Sat.set_share s
    (Some
       {
         Sat.export =
           (fun ~lbd lits -> Smt.Exchange.publish ex ~worker:0 ~lbd lits);
         Sat.import = (fun () -> Smt.Exchange.drain ex ~worker:0);
       });
  let r1 = Sat.solve s in
  let st1 = Sat.stats s in
  Alcotest.(check bool) "verdicts equal" true (r0 = r1);
  Alcotest.(check bool)
    "decision sequence untouched" true
    ((st0.Sat.decisions, st0.Sat.conflicts, st0.Sat.propagations)
    = (st1.Sat.decisions, st1.Sat.conflicts, st1.Sat.propagations));
  Alcotest.(check bool)
    "learnt clauses were exported" true
    (Smt.Exchange.published ex > 0)

let test_share_import_filters () =
  let s = Sat.create () in
  let vp = Sat.new_var s and vq = Sat.new_var s and vr = Sat.new_var s in
  let p = Lit.pos vp and q = Lit.pos vq and r = Lit.pos vr in
  Sat.add_clause s [ p ];
  Sat.add_clause s [ q; r ];
  let batch = ref [] in
  Sat.set_share s
    (Some
       {
         Sat.export = (fun ~lbd:_ _ -> ());
         Sat.import =
           (fun () ->
             let b = !batch in
             batch := [];
             b);
       });
  Alcotest.(check bool) "baseline sat" true (Sat.solve s = Sat.Sat);
  let learnts0 = (Sat.stats s).Sat.learnts in
  (* satisfied at root (p is a root unit) and out-of-range clauses must
     both be dropped on import *)
  batch :=
    [ (2, [| p; q |]); (1, [| Lit.pos 99 |]) ];
  Alcotest.(check bool) "still sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check int)
    "satisfied/foreign imports never stored" learnts0
    (Sat.stats s).Sat.learnts;
  (* a genuinely new consequence is adopted *)
  batch := [ (2, [| q; Lit.neg r |]) ];
  Alcotest.(check bool) "sat after real import" true (Sat.solve s = Sat.Sat);
  Alcotest.(check int)
    "imported clause stored as a learnt" (learnts0 + 1)
    (Sat.stats s).Sat.learnts

let test_portfolio_share_verdicts_stable () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let instances =
        [ Dimacs.parse ring_cnf; Dimacs.parse multi_cnf;
          Dimacs.parse ring_unsat_cnf ]
        @ List.init 6 (fun i ->
              random_cnf ~seed:(900 + i) ~nvars:50 ~nclauses:215)
      in
      List.iteri
        (fun i p ->
          let seq = Portfolio.solve p in
          let shared = Portfolio.solve ~pool p in
          let pure = Portfolio.solve ~pool ~share:false p in
          let again = Portfolio.solve ~pool p in
          Alcotest.(check bool)
            (Printf.sprintf "instance %d: sharing preserves the verdict" i)
            true
            (seq.Portfolio.result = shared.Portfolio.result
            && seq.Portfolio.result = pure.Portfolio.result
            && seq.Portfolio.result = again.Portfolio.result);
          match shared.Portfolio.model with
          | Some m ->
            Alcotest.(check bool)
              (Printf.sprintf "instance %d: shared-race model sound" i)
              true
              (Dpll.eval m p.Dimacs.clauses)
          | None ->
            Alcotest.(check bool)
              (Printf.sprintf "instance %d: no model only on unsat" i)
              true
              (shared.Portfolio.result = Sat.Unsat))
        instances)

(* ------------------------------------------------------------------ *)
(* jobs parsing                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse_jobs () =
  let ok s n =
    Alcotest.(check bool)
      (Printf.sprintf "parse %S" s)
      true
      (Par.parse_jobs s = Ok n)
  in
  let err s =
    Alcotest.(check bool)
      (Printf.sprintf "reject %S" s)
      true
      (match Par.parse_jobs s with Error _ -> true | Ok _ -> false)
  in
  ok "1" 1;
  ok "4" 4;
  ok " 8 " 8;
  err "0";
  err "-3";
  err "abc";
  err "2.5";
  err ""

let test_env_jobs_strict () =
  let orig = Sys.getenv_opt "SCIDUCTION_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SCIDUCTION_JOBS" (Option.value orig ~default:""))
  @@ fun () ->
  Unix.putenv "SCIDUCTION_JOBS" "3";
  Alcotest.(check int) "valid env, lenient" 3 (Par.env_jobs ~default:1 ());
  Alcotest.(check int) "valid env, strict" 3 (Par.env_jobs_exn ~default:1 ());
  Unix.putenv "SCIDUCTION_JOBS" "zero";
  Alcotest.(check int) "lenient falls back on garbage" 5
    (Par.env_jobs ~default:5 ());
  (match Par.env_jobs_exn ~default:5 () with
  | _ -> Alcotest.fail "strict must reject a garbage SCIDUCTION_JOBS"
  | exception Failure _ -> ());
  Unix.putenv "SCIDUCTION_JOBS" "0";
  match Par.env_jobs_exn () with
  | _ -> Alcotest.fail "strict must reject a non-positive SCIDUCTION_JOBS"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* fan-out adapters                                                    *)
(* ------------------------------------------------------------------ *)

(* replay a BMC trace: the final state after consuming every input must
   be bad (that is where [Bmc.check] truncates) *)
let trace_reaches_bad ts trace =
  let state =
    List.fold_left
      (fun state input -> Mc.Ts.step ts ~state ~input)
      ts.Mc.Ts.init trace
  in
  Mc.Ts.is_bad ts state

let test_bmc_sweep_agreement () =
  (* CI sets SCIDUCTION_JOBS to exercise wider pools; locally default 2 *)
  let jobs = max 2 (Par.env_jobs ~default:2 ()) in
  Par.Pool.with_pool ~jobs @@ fun pool ->
  List.iter
    (fun (name, ts, max_depth) ->
      let unwrap = function
        | Budget.Converged r -> r
        | Budget.Exhausted _ ->
          Alcotest.failf "%s: unbudgeted sweep exhausted" name
      in
      let seq = unwrap (Mc.Bmc.sweep ts ~max_depth) in
      (* force [jobs] claim-loop workers even where the hardware cap
         would pick fewer, so the concurrent path (shared queue, best
         CAS, status marking) is exercised on any machine *)
      let par = unwrap (Mc.Bmc.sweep ~pool ~workers:jobs ts ~max_depth) in
      match (seq, par) with
      | None, None -> ()
      | Some (d_seq, _), Some (d_par, trace) ->
        Alcotest.(check int) (name ^ ": minimal depth") d_seq d_par;
        Alcotest.(check bool)
          (name ^ ": parallel trace reaches bad") true
          (trace_reaches_bad ts trace)
      | Some _, None -> Alcotest.failf "%s: parallel sweep missed the cex" name
      | None, Some _ -> Alcotest.failf "%s: parallel sweep invented a cex" name)
    [
      ( "safe",
        Mc.Systems.mod_counter ~junk:6 ~bits:3 ~modulus:6 ~bad_value:7 (),
        12 );
      ( "unsafe",
        Mc.Systems.mod_counter ~junk:4 ~bits:3 ~modulus:8 ~bad_value:5 (),
        12 );
    ]

let test_invgen_agreement () =
  Par.Pool.with_pool ~jobs:3 @@ fun pool ->
  List.iter
    (fun (name, (aig, bad)) ->
      let unwrap = function
        | Budget.Converged r -> r
        | Budget.Exhausted _ ->
          Alcotest.failf "%s: unbudgeted invgen run exhausted" name
      in
      let seq = unwrap (Invgen.Engine.run aig ~bad) in
      let par = unwrap (Invgen.Engine.run ~pool aig ~bad) in
      Alcotest.(check int)
        (name ^ ": candidates") seq.Invgen.Engine.candidates
        par.Invgen.Engine.candidates;
      Alcotest.(check bool)
        (name ^ ": proven sets equal") true
        (seq.Invgen.Engine.proven = par.Invgen.Engine.proven);
      Alcotest.(check bool)
        (name ^ ": verdicts equal") true
        (seq.Invgen.Engine.verdict = par.Invgen.Engine.verdict
        && seq.Invgen.Engine.verdict_unaided = par.Invgen.Engine.verdict_unaided))
    [
      ("mod5", Invgen.Engine.counter_mod5 ());
      ("ring4", Invgen.Engine.ring_counter ~n:4);
    ]

let test_gametime_learner_agreement () =
  Par.Pool.with_pool ~jobs:3 @@ fun pool ->
  let program = Prog.Benchmarks.modexp ~bits:4 () in
  let pf = Microarch.Platform.create program in
  let platform = Microarch.Platform.time pf in
  let unwrap = function
    | Budget.Converged t -> t
    | Budget.Exhausted _ -> Alcotest.fail "unbudgeted analysis exhausted"
  in
  let seq =
    unwrap (Gametime.Analysis.analyze ~bound:4 ~seed:7 ~platform program)
  in
  let par =
    unwrap (Gametime.Analysis.analyze ~bound:4 ~seed:7 ~pool ~platform program)
  in
  Alcotest.(check bool)
    "learned means identical" true
    (seq.Gametime.Analysis.model.Gametime.Learner.means
    = par.Gametime.Analysis.model.Gametime.Learner.means);
  Alcotest.(check bool)
    "sample counts identical" true
    (seq.Gametime.Analysis.model.Gametime.Learner.samples
    = par.Gametime.Analysis.model.Gametime.Learner.samples)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "map_list preserves order" `Quick
            test_map_list_order;
          Alcotest.test_case "iter covers every element" `Quick
            test_iter_covers_all;
          Alcotest.test_case "jobs=1 runs on the submitter" `Quick
            test_sequential_degeneration;
          Alcotest.test_case "exceptions funnel without wedging" `Quick
            test_exception_funnel;
          Alcotest.test_case "reuse across loop iterations" `Quick
            test_reuse_across_loops;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "first_some cancels losers" `Quick
            test_first_some_cancels_losers;
          Alcotest.test_case "no winner, failures re-raised" `Quick
            test_first_some_no_winner;
        ] );
      ( "obs",
        [
          Alcotest.test_case "concurrent counters are exact" `Quick
            test_metrics_concurrent_exact;
          Alcotest.test_case "spans carry domain ids" `Quick
            test_spans_from_domains;
        ] );
      ( "diversification",
        [
          Alcotest.test_case "seeds diverge but agree" `Quick
            test_seed_diversification;
          Alcotest.test_case "phase default steers the search" `Quick
            test_phase_default_changes_first_model;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "parallel verdicts = sequential verdicts" `Quick
            test_portfolio_agrees_with_sequential;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "publish/drain roundtrip" `Quick
            test_exchange_roundtrip;
          Alcotest.test_case "overflow drops oldest, never blocks" `Quick
            test_exchange_overflow_drops_oldest;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "export alone does not perturb the search"
            `Quick test_share_export_does_not_perturb;
          Alcotest.test_case "satisfied and foreign imports dropped" `Quick
            test_share_import_filters;
          Alcotest.test_case "shared-race verdicts stable and sequential"
            `Quick test_portfolio_share_verdicts_stable;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "parse_jobs accepts positives only" `Quick
            test_parse_jobs;
          Alcotest.test_case "strict env validation raises" `Quick
            test_env_jobs_strict;
        ] );
      ( "adapters",
        [
          Alcotest.test_case "bmc sweep agrees with sequential" `Quick
            test_bmc_sweep_agreement;
          Alcotest.test_case "invgen report agrees with sequential" `Quick
            test_invgen_agreement;
          Alcotest.test_case "gametime model is bit-identical" `Quick
            test_gametime_learner_agreement;
        ] );
    ]
