(* Tests for the trace-analysis module: ingestion, convergence
   diagnostics on synthetic loops (converging, thrashing, truncated),
   span flame profiles, the cross-trace diff, and an end-to-end traced
   OGIS run analyzed straight from the memory sink. *)

module Json = Obs.Json
module Analyze = Obs.Analyze

(* ------------------------------------------------------------------ *)
(* synthetic record builders                                           *)
(* ------------------------------------------------------------------ *)

let ev ?(attrs = []) t name loop =
  Json.Obj
    [
      ("t", Json.Float t);
      ("kind", Json.String "event");
      ("name", Json.String name);
      ("loop", Json.String loop);
      ("attrs", Json.Obj attrs);
    ]

let span t name dur depth =
  Json.Obj
    [
      ("t", Json.Float t);
      ("kind", Json.String "span");
      ("name", Json.String name);
      ("dur", Json.Float dur);
      ("depth", Json.Int depth);
      ("attrs", Json.Obj []);
    ]

let snap t = Json.Obj [ ("t", Json.Float t); ("kind", Json.String "metrics"); ("metrics", Json.Obj []) ]

let parse_all js =
  List.map
    (fun j ->
      match Analyze.record_of_json j with
      | Ok r -> r
      | Error msg -> Alcotest.fail msg)
    js

(* a loop whose per-iteration durations are given by [durs]: iteration k
   starts when iteration k-1's duration has elapsed, and loop_finished
   closes the last one *)
let loop_trace ?(loop = "demo") ?(outcome = "done") durs =
  let started = ev 0.0 "loop_started" loop in
  let rec go t k acc = function
    | [] -> (t, List.rev acc)
    | d :: rest ->
      go (t +. d) (k + 1)
        (ev t "iteration" loop ~attrs:[ ("index", Json.Int k) ] :: acc)
        rest
  in
  let t_end, iters = go 0.0 0 [] durs in
  let finished =
    ev t_end "loop_finished" loop
      ~attrs:
        [ ("elapsed", Json.Float t_end); ("outcome", Json.String outcome) ]
  in
  (started :: iters) @ [ finished; snap (t_end +. 0.001) ]

let the_loop a =
  match a.Analyze.a_loops with
  | [ lr ] -> lr
  | loops ->
    Alcotest.fail (Printf.sprintf "expected one loop run, got %d"
                     (List.length loops))

(* ------------------------------------------------------------------ *)
(* convergence diagnostics                                             *)
(* ------------------------------------------------------------------ *)

let test_converging_loop () =
  let a =
    Analyze.analyze (parse_all (loop_trace [ 1.6; 0.8; 0.4; 0.2; 0.1 ]))
  in
  let lr = the_loop a in
  Alcotest.(check int) "iterations" 5 (List.length lr.Analyze.lr_iterations);
  Alcotest.(check string) "trend" "converging"
    (Analyze.trend_to_string lr.Analyze.lr_trend);
  Alcotest.(check bool) "negative slope" true (lr.Analyze.lr_slope_ms < 0.0);
  Alcotest.(check string) "outcome" "done" lr.Analyze.lr_outcome;
  Alcotest.(check bool) "not truncated" false lr.Analyze.lr_truncated;
  Alcotest.(check bool) "complete" true a.Analyze.a_complete;
  (* iteration durations were recovered from the event gaps *)
  let durs = List.map (fun i -> i.Analyze.it_dur) lr.Analyze.lr_iterations in
  List.iter2
    (fun got want -> Alcotest.(check (float 1e-9)) "dur" want got)
    durs
    [ 1.6; 0.8; 0.4; 0.2; 0.1 ]

let test_thrashing_loop () =
  let a =
    Analyze.analyze (parse_all (loop_trace [ 0.1; 0.2; 0.4; 0.8; 1.6 ]))
  in
  let lr = the_loop a in
  Alcotest.(check string) "trend" "thrashing"
    (Analyze.trend_to_string lr.Analyze.lr_trend);
  Alcotest.(check bool) "positive slope" true (lr.Analyze.lr_slope_ms > 0.0)

let test_steady_loop () =
  (* mild linear growth must NOT read as thrashing *)
  let a =
    Analyze.analyze (parse_all (loop_trace [ 0.10; 0.11; 0.12; 0.13; 0.14 ]))
  in
  Alcotest.(check string) "trend" "steady"
    (Analyze.trend_to_string (the_loop a).Analyze.lr_trend)

let test_truncated_loop () =
  (* loop_started + iterations, then the trace just stops *)
  let records =
    parse_all
      [
        ev 0.0 "loop_started" "demo";
        ev 0.1 "iteration" "demo" ~attrs:[ ("index", Json.Int 0) ];
        ev 0.5 "iteration" "demo" ~attrs:[ ("index", Json.Int 1) ];
      ]
  in
  let a = Analyze.analyze records in
  let lr = the_loop a in
  Alcotest.(check bool) "truncated" true lr.Analyze.lr_truncated;
  Alcotest.(check bool) "incomplete" false a.Analyze.a_complete;
  Alcotest.(check int) "iterations survive" 2
    (List.length lr.Analyze.lr_iterations)

let test_per_iteration_attribution () =
  (* candidates, cexes and solver calls land on the iteration that is
     open when they happen *)
  let records =
    parse_all
      [
        ev 0.0 "loop_started" "demo";
        ev 0.1 "iteration" "demo" ~attrs:[ ("index", Json.Int 0) ];
        ev 0.2 "candidate" "demo";
        ev 0.3 "solver_call" "demo"
          ~attrs:
            [
              ("result", Json.String "sat");
              ("conflicts", Json.Int 7);
              ("propagations", Json.Int 100);
            ];
        ev 0.4 "oracle_verdict" "demo"
          ~attrs:[ ("verdict", Json.String "wrong") ];
        ev 0.5 "counterexample" "demo";
        ev 0.6 "iteration" "demo" ~attrs:[ ("index", Json.Int 1) ];
        ev 0.7 "solver_call" "demo"
          ~attrs:
            [
              ("result", Json.String "unsat");
              ("conflicts", Json.Int 3);
              ("propagations", Json.Int 50);
            ];
        ev 0.8 "loop_finished" "demo"
          ~attrs:[ ("outcome", Json.String "ok") ];
        snap 0.9;
      ]
  in
  let lr = the_loop (Analyze.analyze records) in
  Alcotest.(check int) "run sat" 1 lr.Analyze.lr_sat;
  Alcotest.(check int) "run unsat" 1 lr.Analyze.lr_unsat;
  Alcotest.(check int) "run conflicts" 10 lr.Analyze.lr_conflicts;
  Alcotest.(check int) "run propagations" 150 lr.Analyze.lr_propagations;
  Alcotest.(check (list (pair string int))) "verdicts" [ ("wrong", 1) ]
    lr.Analyze.lr_verdicts;
  match lr.Analyze.lr_iterations with
  | [ it0; it1 ] ->
    Alcotest.(check int) "it0 candidates" 1 it0.Analyze.it_candidates;
    Alcotest.(check int) "it0 cexes" 1 it0.Analyze.it_cexes;
    Alcotest.(check int) "it0 conflicts" 7 it0.Analyze.it_conflicts;
    Alcotest.(check int) "it1 solver calls" 1 it1.Analyze.it_solver_calls;
    Alcotest.(check int) "it1 unsat" 1 it1.Analyze.it_unsat
  | its ->
    Alcotest.fail (Printf.sprintf "expected 2 iterations, got %d"
                     (List.length its))

(* ------------------------------------------------------------------ *)
(* flame profile                                                       *)
(* ------------------------------------------------------------------ *)

let test_flame_profile () =
  (* completion order: children first, then the root *)
  let records =
    parse_all
      [
        span 0.1 "child" 0.2 1;
        span 0.4 "child" 0.1 1;
        span 0.0 "root" 1.0 0;
        snap 1.1;
      ]
  in
  let a = Analyze.analyze records in
  Alcotest.(check int) "no orphans" 0 a.Analyze.a_orphan_spans;
  let frame path =
    match
      List.find_opt (fun f -> f.Analyze.fr_path = path) a.Analyze.a_frames
    with
    | Some f -> f
    | None -> Alcotest.fail ("missing frame " ^ String.concat ";" path)
  in
  let root = frame [ "root" ] and child = frame [ "root"; "child" ] in
  Alcotest.(check int) "child count" 2 child.Analyze.fr_count;
  Alcotest.(check (float 1e-9)) "child total" 0.3 child.Analyze.fr_total;
  Alcotest.(check (float 1e-9)) "child self" 0.3 child.Analyze.fr_self;
  Alcotest.(check (float 1e-9)) "root total" 1.0 root.Analyze.fr_total;
  (* root self-time excludes its children *)
  Alcotest.(check (float 1e-9)) "root self" 0.7 root.Analyze.fr_self;
  (* hottest self-time first *)
  match a.Analyze.a_frames with
  | first :: _ ->
    Alcotest.(check (list string)) "hottest first" [ "root" ]
      first.Analyze.fr_path
  | [] -> Alcotest.fail "no frames"

let test_orphan_spans () =
  (* a depth-2 span whose depth-1 parent never completed *)
  let records =
    parse_all [ span 0.1 "deep" 0.1 2; span 0.0 "root" 1.0 0; snap 1.1 ]
  in
  let a = Analyze.analyze records in
  Alcotest.(check int) "orphan counted" 1 a.Analyze.a_orphan_spans

(* ------------------------------------------------------------------ *)
(* loading from disk                                                   *)
(* ------------------------------------------------------------------ *)

let test_load_roundtrip () =
  let path = Filename.temp_file "analyze_test" ".jsonl" in
  let oc = open_out path in
  List.iter
    (fun j ->
      output_string oc (Json.to_string j);
      output_char oc '\n')
    (loop_trace [ 0.1; 0.2 ]);
  close_out oc;
  (match Analyze.load path with
  | Error msg -> Alcotest.fail msg
  | Ok records ->
    let lr = the_loop (Analyze.analyze records) in
    Alcotest.(check int) "iterations" 2
      (List.length lr.Analyze.lr_iterations));
  Sys.remove path

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_load_errors () =
  (match Analyze.load "/nonexistent/trace.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a missing file");
  let path = Filename.temp_file "analyze_test" ".jsonl" in
  let oc = open_out path in
  output_string oc "{\"t\":0.0,\"kind\":\"metrics\",\"metrics\":{}}\n";
  output_string oc "not json\n";
  close_out oc;
  (match Analyze.load path with
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names line 2" msg)
      true (contains msg "line 2")
  | Ok _ -> Alcotest.fail "accepted a malformed line");
  let empty = Filename.temp_file "analyze_test" ".jsonl" in
  (match Analyze.load empty with
  | Error msg ->
    Alcotest.(check bool) "empty trace flagged" true (contains msg "empty")
  | Ok _ -> Alcotest.fail "accepted an empty trace");
  Sys.remove path;
  Sys.remove empty

(* ------------------------------------------------------------------ *)
(* cross-trace diff                                                    *)
(* ------------------------------------------------------------------ *)

let test_key_figures () =
  let doc =
    Json.Obj
      [
        ( "benchmarks",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "ogis/x");
                  ( "fresh",
                    Json.Obj
                      [
                        ("seconds", Json.Float 1.5);
                        ("conflicts", Json.Int 100);
                        ("buckets", Json.List [ Json.Int 9 ]);
                      ] );
                ];
            ] );
      ]
  in
  let figs = Analyze.key_figures doc in
  Alcotest.(check (option (float 1e-9))) "named list descended" (Some 1.5)
    (List.assoc_opt "benchmarks.ogis/x.fresh.seconds" figs);
  Alcotest.(check (option (float 1e-9))) "ints too" (Some 100.0)
    (List.assoc_opt "benchmarks.ogis/x.fresh.conflicts" figs);
  Alcotest.(check bool) "buckets skipped" true
    (List.for_all (fun (k, _) -> not (contains k "buckets")) figs)

let test_diff_thresholds () =
  let base =
    [
      ("loop.seconds", 1.0);
      ("loop.conflicts", 100.0);
      ("loop.iterations", 10.0);
      ("fast.seconds", 0.01);
      ("loop.unclassified_quantity", 1.0);
    ]
  in
  let cur =
    [
      ("loop.seconds", 2.0) (* 2.0x > 1.5 -> regression *);
      ("loop.conflicts", 50.0) (* 0.5x < 1/1.4 -> improvement *);
      ("loop.iterations", 11.0) (* 1.1x, within 1.25 -> quiet *);
      ("fast.seconds", 0.04) (* both under min_seconds -> skipped *);
      ("loop.unclassified_quantity", 99.0) (* no class -> ignored *);
    ]
  in
  let findings = Analyze.diff ~base cur in
  Alcotest.(check int) "two findings" 2 (List.length findings);
  Alcotest.(check bool) "regression flagged" true
    (Analyze.regressed findings);
  (match findings with
  | first :: _ ->
    (* regressions sort before improvements *)
    Alcotest.(check string) "regression first" "loop.seconds"
      first.Analyze.f_key;
    Alcotest.(check bool) "is regression" true first.Analyze.f_regressed
  | [] -> Alcotest.fail "no findings");
  let improvement =
    List.find (fun f -> not f.Analyze.f_regressed) findings
  in
  Alcotest.(check string) "improvement key" "loop.conflicts"
    improvement.Analyze.f_key

let test_diff_self_is_quiet () =
  (* a summary diffed against itself never regresses *)
  let a = Analyze.analyze (parse_all (loop_trace [ 0.1; 0.2; 0.3 ])) in
  let figs = Analyze.key_figures (Analyze.summary_json a) in
  Alcotest.(check (list string)) "no findings" []
    (List.map
       (fun f -> f.Analyze.f_key)
       (Analyze.diff ~base:figs figs))

(* ------------------------------------------------------------------ *)
(* end to end: analyze a real traced OGIS run                          *)
(* ------------------------------------------------------------------ *)

let test_traced_ogis_analysis () =
  Obs.reset ();
  let sink, records = Obs.memory_sink () in
  Obs.add_sink sink;
  Obs.enable ();
  let spec =
    {
      Ogis.Encode.width = 8;
      ninputs = 1;
      noutputs = 1;
      library = [ Ogis.Component.dec; Ogis.Component.and_ ];
    }
  in
  let oracle = function
    | [ x ] -> [ x land (x - 1) land 255 ]
    | _ -> assert false
  in
  let outcome = Ogis.Synth.synthesize spec oracle in
  Obs.shutdown ();
  (match outcome with
  | Budget.Converged (Ogis.Synth.Synthesized _) -> ()
  | _ -> Alcotest.fail "synthesis failed");
  let parsed = parse_all (records ()) in
  let a = Analyze.analyze parsed in
  Alcotest.(check bool) "complete" true a.Analyze.a_complete;
  Alcotest.(check int) "no orphan spans" 0 a.Analyze.a_orphan_spans;
  let lr =
    match
      List.find_opt (fun l -> l.Analyze.lr_loop = "ogis") a.Analyze.a_loops
    with
    | Some lr -> lr
    | None -> Alcotest.fail "no ogis loop in the trace"
  in
  Alcotest.(check bool) "not truncated" false lr.Analyze.lr_truncated;
  Alcotest.(check bool) "has iterations" true
    (List.length lr.Analyze.lr_iterations > 0);
  Alcotest.(check bool) "solver calls attributed" true
    (lr.Analyze.lr_solver_calls > 0);
  Alcotest.(check bool) "sat/unsat split covers all calls" true
    (lr.Analyze.lr_sat + lr.Analyze.lr_unsat <= lr.Analyze.lr_solver_calls);
  (* the report renders without assertion failures *)
  let buf = Buffer.create 256 in
  Analyze.pp_report (Format.formatter_of_buffer buf) a;
  Alcotest.(check bool) "report mentions the loop" true
    (contains (Buffer.contents buf) "ogis");
  (* and the machine summary round-trips through the JSON printer *)
  (match Json.parse (Json.to_string (Analyze.summary_json a)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  Obs.reset ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analyze"
    [
      ( "convergence",
        [
          Alcotest.test_case "converging loop" `Quick test_converging_loop;
          Alcotest.test_case "thrashing loop" `Quick test_thrashing_loop;
          Alcotest.test_case "steady loop" `Quick test_steady_loop;
          Alcotest.test_case "truncated loop" `Quick test_truncated_loop;
          Alcotest.test_case "per-iteration attribution" `Quick
            test_per_iteration_attribution;
        ] );
      ( "flame",
        [
          Alcotest.test_case "profile" `Quick test_flame_profile;
          Alcotest.test_case "orphans" `Quick test_orphan_spans;
        ] );
      ( "load",
        [
          Alcotest.test_case "roundtrip" `Quick test_load_roundtrip;
          Alcotest.test_case "errors" `Quick test_load_errors;
        ] );
      ( "diff",
        [
          Alcotest.test_case "key figures" `Quick test_key_figures;
          Alcotest.test_case "thresholds" `Quick test_diff_thresholds;
          Alcotest.test_case "self-diff quiet" `Quick test_diff_self_is_quiet;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "traced ogis analysis" `Quick
            test_traced_ogis_analysis;
        ] );
    ]
