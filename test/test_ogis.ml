(* Tests for oracle-guided component-based synthesis: the straight-line
   program representation, the location-variable encoding, the OGIS loop
   on the paper's Fig. 8 benchmarks, unrealizability reporting (Fig. 7),
   and SMT-based equivalence checking of the synthesized programs. *)

module Bv = Smt.Bv
module Component = Ogis.Component
module Straightline = Ogis.Straightline
module Encode = Ogis.Encode
module Synth = Ogis.Synth
module Deob = Ogis.Deobfuscate
module B = Prog.Benchmarks

let w = 16

(* ------------------------------------------------------------------ *)
(* Straight-line programs                                              *)
(* ------------------------------------------------------------------ *)

let xor_swap =
  (* t0 = x0^x1; t1 = t0^x1 (=x0); t2 = t0^t1 (=x1); return (t1, t2) *)
  Straightline.make ~width:w ~ninputs:2
    [
      { Straightline.comp = Component.xor; args = [ 0; 1 ] };
      { Straightline.comp = Component.xor; args = [ 2; 1 ] };
      { Straightline.comp = Component.xor; args = [ 2; 3 ] };
    ]
    ~outputs:[ 4; 3 ]

let test_straightline_eval () =
  Alcotest.(check (list int)) "swap" [ 7; 3 ] (Straightline.eval xor_swap [ 3; 7 ]);
  Alcotest.(check (list int))
    "swap equal values" [ 5; 5 ]
    (Straightline.eval xor_swap [ 5; 5 ])

let test_straightline_validation () =
  let line comp args = { Straightline.comp; args } in
  Alcotest.check_raises "forward reference"
    (Invalid_argument "Straightline.make: forward or invalid reference")
    (fun () ->
      ignore
        (Straightline.make ~width:w ~ninputs:1
           [ line Component.not_ [ 2 ] ]
           ~outputs:[ 1 ]));
  Alcotest.check_raises "arity"
    (Invalid_argument "Straightline.make: arity mismatch") (fun () ->
      ignore
        (Straightline.make ~width:w ~ninputs:1
           [ line Component.add [ 0 ] ]
           ~outputs:[ 1 ]));
  Alcotest.check_raises "bad output"
    (Invalid_argument "Straightline.make: bad output") (fun () ->
      ignore (Straightline.make ~width:w ~ninputs:1 [] ~outputs:[ 1 ]))

(* tiny substring helper *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_straightline_pp () =
  let rendered = Format.asprintf "%a" Straightline.pp xor_swap in
  Alcotest.(check bool) "mentions xor" true (contains rendered "x0 ^ x1")

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let test_loc_width () =
  let spec lib ninputs =
    { Encode.width = w; ninputs; noutputs = 1; library = lib }
  in
  Alcotest.(check int) "3 locations -> 2 bits" 2
    (Encode.loc_width (spec [ Component.add ] 2));
  Alcotest.(check int) "7 locations -> 3 bits" 3
    (Encode.loc_width (spec Component.fig8_p2 3))

let test_synthesize_candidate_consistent () =
  let spec =
    { Encode.width = w; ninputs = 2; noutputs = 1; library = [ Component.add ] }
  in
  let examples = [ ([ 1; 2 ], [ 3 ]); ([ 10; 20 ], [ 30 ]) ] in
  match Encode.synthesize_candidate spec ~examples with
  | `Unrealizable | `Unknown _ -> Alcotest.fail "candidate must exist"
  | `Candidate prog ->
    List.iter
      (fun (ins, outs) ->
        Alcotest.(check (list int)) "consistent" outs (Straightline.eval prog ins))
      examples

let test_synthesize_candidate_none () =
  (* x0+x1 cannot produce these I/O pairs *)
  let spec =
    { Encode.width = w; ninputs = 2; noutputs = 1; library = [ Component.add ] }
  in
  let examples = [ ([ 1; 2 ], [ 3 ]); ([ 1; 2 ], [ 4 ]) ] in
  match Encode.synthesize_candidate spec ~examples with
  | `Unrealizable -> ()
  | `Candidate _ -> Alcotest.fail "contradictory examples accepted"
  | `Unknown _ -> Alcotest.fail "unexpected unknown"

let test_distinguishing_input () =
  let spec =
    {
      Encode.width = w;
      ninputs = 2;
      noutputs = 1;
      library = [ Component.add; Component.xor ];
    }
  in
  (* on (0,0) add and xor agree; a distinguishing input must exist *)
  let examples = [ ([ 0; 0 ], [ 0 ]) ] in
  match Encode.synthesize_candidate spec ~examples with
  | `Unrealizable | `Unknown _ -> Alcotest.fail "candidate must exist"
  | `Candidate cand -> (
    match Encode.distinguishing_input spec ~examples cand with
    | `Unique | `Unknown _ -> Alcotest.fail "add and xor are distinguishable"
    | `Input ins ->
      Alcotest.(check int) "input arity" 2 (List.length ins))

(* ------------------------------------------------------------------ *)
(* Full loop                                                           *)
(* ------------------------------------------------------------------ *)

let check_equiv name spec prog spec_fn =
  match Synth.verify_against spec prog ~spec_fn with
  | Ok () -> ()
  | Error cex ->
    Alcotest.failf "%s: not equivalent, cex=%s" name
      (String.concat "," (List.map string_of_int cex))

let test_synthesize_turn_off_rightmost_bit () =
  (* Hacker's Delight: x & (x-1) with library {dec, and} *)
  let spec =
    {
      Encode.width = w;
      ninputs = 1;
      noutputs = 1;
      library = [ Component.dec; Component.and_ ];
    }
  in
  let oracle = function
    | [ x ] -> [ x land (x - 1) land 0xFFFF ]
    | _ -> assert false
  in
  match Synth.synthesize spec oracle with
  | Budget.Converged (Synth.Synthesized (prog, stats)) ->
    check_equiv "rightmost bit" spec prog (function
      | [ x ] -> [ Bv.band x (Bv.bsub x (Bv.const ~width:w 1)) ]
      | _ -> assert false);
    Alcotest.(check bool) "few oracle queries" true (stats.Synth.oracle_queries <= 16)
  | _ -> Alcotest.fail "synthesis failed"

let test_synthesize_isolate_rightmost_bit () =
  (* x & -x with library {neg, and} *)
  let spec =
    {
      Encode.width = w;
      ninputs = 1;
      noutputs = 1;
      library = [ Component.neg; Component.and_ ];
    }
  in
  let oracle = function
    | [ x ] -> [ x land -x land 0xFFFF ]
    | _ -> assert false
  in
  match Synth.synthesize spec oracle with
  | Budget.Converged (Synth.Synthesized (prog, _)) ->
    check_equiv "isolate bit" spec prog (function
      | [ x ] -> [ Bv.band x (Bv.bneg x) ]
      | _ -> assert false)
  | _ -> Alcotest.fail "synthesis failed"

let test_unrealizable () =
  (* xor cannot be expressed with one adder *)
  let spec =
    { Encode.width = w; ninputs = 2; noutputs = 1; library = [ Component.add ] }
  in
  let oracle = function
    | [ x; y ] -> [ x lxor y ]
    | _ -> assert false
  in
  match Synth.synthesize spec oracle with
  | Budget.Converged (Synth.Unrealizable _) -> ()
  | Budget.Converged (Synth.Synthesized (p, _)) ->
    Alcotest.failf "bogus program: %s" (Format.asprintf "%a" Straightline.pp p)
  | Budget.Exhausted _ -> Alcotest.fail "unbudgeted run exhausted"

let test_verify_against_cex () =
  let spec =
    { Encode.width = w; ninputs = 2; noutputs = 1; library = [ Component.add ] }
  in
  let prog =
    Straightline.make ~width:w ~ninputs:2
      [ { Straightline.comp = Component.add; args = [ 0; 1 ] } ]
      ~outputs:[ 2 ]
  in
  match
    Synth.verify_against spec prog ~spec_fn:(function
      | [ x; y ] -> [ Bv.bsub x y ]
      | _ -> assert false)
  with
  | Ok () -> Alcotest.fail "x+y is not x-y"
  | Error [ x; y ] ->
    Alcotest.(check bool) "cex separates" true
      ((x + y) land 0xFFFF <> (x - y) land 0xFFFF)
  | Error _ -> Alcotest.fail "bad cex arity"

(* ------------------------------------------------------------------ *)
(* Fig. 8 deobfuscation benchmarks                                     *)
(* ------------------------------------------------------------------ *)

(* the test suite runs Fig. 8 at width 8 to keep the uniqueness proofs
   small; the benchmark harness reproduces them at the full 16 bits *)
let w8 = 8

let test_fig8_p1 () =
  match
    Deob.run ~library:Component.fig8_p1 (B.interchange_obs_w ~width:w8)
  with
  | Error _ -> Alcotest.fail "P1 deobfuscation failed"
  | Ok r ->
    let spec =
      {
        Encode.width = w8;
        ninputs = 2;
        noutputs = 2;
        library = Component.fig8_p1;
      }
    in
    check_equiv "P1 swaps" spec r.Deob.clean (function
      | [ s; d ] -> [ d; s ]
      | _ -> assert false);
    Alcotest.(check int) "three lines" 3
      (List.length r.Deob.clean.Straightline.lines)

let test_fig8_p2 () =
  match
    Deob.run ~library:Component.fig8_p2 (B.multiply45_obs_w ~width:w8)
  with
  | Error _ -> Alcotest.fail "P2 deobfuscation failed"
  | Ok r ->
    let spec =
      {
        Encode.width = w8;
        ninputs = 1;
        noutputs = 1;
        library = Component.fig8_p2;
      }
    in
    check_equiv "P2 multiplies by 45" spec r.Deob.clean (function
      | [ y ] -> [ Bv.bmul y (Bv.const ~width:w8 45) ]
      | _ -> assert false)

let test_oracle_of_program () =
  let oracle = Deob.oracle_of_program B.multiply45_obs in
  Alcotest.(check (list int)) "oracle computes 45y" [ 45 * 7 ] (oracle [ 7 ])

(* ------------------------------------------------------------------ *)
(* Hacker's Delight suite                                              *)
(* ------------------------------------------------------------------ *)

let test_hd_suite () =
  List.iter
    (fun b ->
      let o = Ogis.Hd_suite.run b in
      (match o.Ogis.Hd_suite.result with
      | Ok _ -> ()
      | Error _ -> Alcotest.failf "%s: synthesis failed" b.Ogis.Hd_suite.name);
      Alcotest.(check bool)
        (b.Ogis.Hd_suite.name ^ " verified")
        true o.Ogis.Hd_suite.verified)
    Ogis.Hd_suite.all

let test_hd_results_match_reference () =
  (* sample the synthesized programs against the reference on inputs the
     loop never queried *)
  List.iter
    (fun b ->
      match (Ogis.Hd_suite.run b).Ogis.Hd_suite.result with
      | Error _ -> Alcotest.failf "%s failed" b.Ogis.Hd_suite.name
      | Ok (prog, _) ->
        List.iter
          (fun x ->
            let ins = List.init b.Ogis.Hd_suite.arity (fun i -> (x + i) land 0xFF) in
            Alcotest.(check (list int))
              (Printf.sprintf "%s on %d" b.Ogis.Hd_suite.name x)
              (b.Ogis.Hd_suite.reference ~width:8 ins)
              (Ogis.Straightline.eval prog ins))
          [ 3; 77; 128; 200; 255 ])
    Ogis.Hd_suite.all

let test_hd_find () =
  Alcotest.(check string) "lookup" "hd03-isolate-rightmost-1"
    (Ogis.Hd_suite.find "hd03-isolate-rightmost-1").Ogis.Hd_suite.name;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Ogis.Hd_suite.find "hd99"))

let () =
  Alcotest.run "ogis"
    [
      ( "straightline",
        [
          Alcotest.test_case "eval xor swap" `Quick test_straightline_eval;
          Alcotest.test_case "validation" `Quick test_straightline_validation;
          Alcotest.test_case "pretty printing" `Quick test_straightline_pp;
        ] );
      ( "encode",
        [
          Alcotest.test_case "location width" `Quick test_loc_width;
          Alcotest.test_case "candidate consistent with examples" `Quick
            test_synthesize_candidate_consistent;
          Alcotest.test_case "contradictory examples rejected" `Quick
            test_synthesize_candidate_none;
          Alcotest.test_case "distinguishing input exists" `Quick
            test_distinguishing_input;
        ] );
      ( "loop",
        [
          Alcotest.test_case "x & (x-1)" `Quick
            test_synthesize_turn_off_rightmost_bit;
          Alcotest.test_case "x & -x" `Quick test_synthesize_isolate_rightmost_bit;
          Alcotest.test_case "unrealizable reported" `Quick test_unrealizable;
          Alcotest.test_case "verify_against counterexample" `Quick
            test_verify_against_cex;
        ] );
      ( "fig8",
        [
          Alcotest.test_case "oracle wrapper" `Quick test_oracle_of_program;
          Alcotest.test_case "P1 interchange" `Quick test_fig8_p1;
          Alcotest.test_case "P2 multiply45" `Quick test_fig8_p2;
        ] );
      ( "hackers-delight",
        [
          Alcotest.test_case "all benchmarks synthesize + verify" `Quick
            test_hd_suite;
          Alcotest.test_case "results match references pointwise" `Quick
            test_hd_results_match_reference;
          Alcotest.test_case "lookup" `Quick test_hd_find;
        ] );
    ]
