(* Tests for the CEGAR instance: transition systems, explicit-state
   reachability, localization abstraction, SAT-based BMC, and the full
   refinement loop of Fig. 3. *)

module Ts = Mc.Ts
module Reach = Mc.Reach
module Abstraction = Mc.Abstraction
module Bmc = Mc.Bmc
module Cegar = Mc.Cegar
module Systems = Mc.Systems

(* ------------------------------------------------------------------ *)
(* Transition systems                                                  *)
(* ------------------------------------------------------------------ *)

let test_ts_eval () =
  let e = Ts.And (Ts.V 0, Ts.Or (Ts.In 0, Ts.Not (Ts.V 1))) in
  let eval s i = Ts.eval e ~state:s ~input:i in
  Alcotest.(check bool) "true case" true (eval [| true; false |] [| false |]);
  Alcotest.(check bool) "input flips it" true (eval [| true; true |] [| true |]);
  Alcotest.(check bool) "false case" false (eval [| true; true |] [| false |]);
  Alcotest.(check bool) "v0 gates" false (eval [| false; false |] [| true |])

let test_ts_validation () =
  Alcotest.check_raises "latch range" (Invalid_argument "Ts: latch out of range")
    (fun () ->
      ignore
        (Ts.make ~name:"x" ~num_latches:1 ~num_inputs:0 ~init:[| false |]
           ~next:[| Ts.V 3 |] ~bad:Ts.F))

let test_counter_step () =
  let t = Systems.mod_counter ~bits:3 ~modulus:6 ~bad_value:7 () in
  let s = ref t.Ts.init in
  for _ = 1 to 7 do
    s := Ts.step t ~state:!s ~input:[| true |]
  done;
  (* 7 enabled steps mod 6 = state 1 *)
  Alcotest.(check (array bool)) "wraps at 6" [| true; false; false |] !s;
  let s' = Ts.step t ~state:!s ~input:[| false |] in
  Alcotest.(check (array bool)) "disabled holds" !s s'

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)
(* ------------------------------------------------------------------ *)

let test_reach_unsafe_counter () =
  let t = Systems.mod_counter ~bits:3 ~modulus:8 ~bad_value:5 () in
  match Reach.check t with
  | Reach.Cex trace ->
    Alcotest.(check int) "shortest trace" 5 (List.length trace);
    Alcotest.(check bool) "replay reaches bad" true (Reach.replay t trace)
  | Reach.Safe _ -> Alcotest.fail "counter reaches 5"

let test_reach_safe_counter () =
  let t = Systems.mod_counter ~bits:3 ~modulus:6 ~bad_value:7 () in
  match Reach.check t with
  | Reach.Safe { states_explored } ->
    Alcotest.(check bool) "explored the mod-6 orbit" true (states_explored >= 6)
  | Reach.Cex _ -> Alcotest.fail "7 is unreachable modulo 6"

let test_reach_initial_bad () =
  let t = Systems.mod_counter ~bits:2 ~modulus:4 ~bad_value:0 () in
  match Reach.check t with
  | Reach.Cex [] -> ()
  | _ -> Alcotest.fail "initial state is bad"

(* ------------------------------------------------------------------ *)
(* Abstraction                                                         *)
(* ------------------------------------------------------------------ *)

let test_localization_overapproximates () =
  (* hiding latches must not make an unsafe system look safe *)
  let t = Systems.mod_counter ~bits:3 ~modulus:8 ~bad_value:5 () in
  let a = Abstraction.localize t ~visible:[ 0; 2 ] in
  (match Reach.check a.Abstraction.abstract with
  | Reach.Cex _ -> ()
  | Reach.Safe _ -> Alcotest.fail "abstraction lost a concrete cex");
  Alcotest.(check int) "abstract latch count" 2
    a.Abstraction.abstract.Ts.num_latches;
  Alcotest.(check int) "hidden latch became an input" 2
    a.Abstraction.abstract.Ts.num_inputs

let test_localization_junk_invisible () =
  let t = Systems.mod_counter ~junk:6 ~bits:3 ~modulus:6 ~bad_value:7 () in
  let a = Abstraction.localize t ~visible:[ 0; 1; 2 ] in
  match Reach.check a.Abstraction.abstract with
  | Reach.Safe _ -> ()
  | Reach.Cex _ -> Alcotest.fail "counter logic alone proves safety"

let test_referenced_hidden () =
  let t = Systems.mod_counter ~bits:3 ~modulus:8 ~bad_value:5 () in
  let a = Abstraction.localize t ~visible:[ 2 ] in
  (* latch 2's next function and the bad predicate mention latches 0, 1 *)
  Alcotest.(check (list int)) "refinement candidates" [ 0; 1 ]
    (List.sort compare (Abstraction.referenced_hidden a))

(* ------------------------------------------------------------------ *)
(* BMC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_bmc_finds_cex () =
  let t = Systems.mod_counter ~bits:3 ~modulus:8 ~bad_value:5 () in
  (match Bmc.check t ~depth:4 with
  | `No_cex -> ()
  | `Cex _ -> Alcotest.fail "bad_value 5 needs 5 steps"
  | `Unknown _ -> Alcotest.fail "unexpected unknown");
  match Bmc.check t ~depth:5 with
  | `Cex trace ->
    Alcotest.(check int) "length" 5 (List.length trace);
    Alcotest.(check bool) "replays" true (Reach.replay t trace)
  | `No_cex | `Unknown _ -> Alcotest.fail "cex exists at depth 5"

let test_bmc_safe () =
  let t = Systems.mod_counter ~bits:3 ~modulus:6 ~bad_value:7 () in
  Alcotest.(check bool) "no cex at any tested depth" true
    (Bmc.check t ~depth:20 = `No_cex)

let test_bmc_agrees_with_reach () =
  (* differential: BMC at a generous depth agrees with explicit search *)
  List.iter
    (fun t ->
      let r = Reach.check t in
      let b = Bmc.check t ~depth:12 in
      match (r, b) with
      | _, `Unknown _ -> Alcotest.failf "%s: unexpected unknown" t.Ts.name
      | Reach.Safe _, `No_cex -> ()
      | Reach.Cex _, `Cex _ -> ()
      | Reach.Safe _, `Cex _ -> Alcotest.failf "%s: BMC invented a cex" t.Ts.name
      | Reach.Cex tr, `No_cex when List.length tr > 12 -> ()
      | Reach.Cex _, `No_cex -> Alcotest.failf "%s: BMC missed a cex" t.Ts.name)
    [
      Systems.mod_counter ~bits:3 ~modulus:8 ~bad_value:5 ();
      Systems.mod_counter ~bits:3 ~modulus:6 ~bad_value:7 ();
      Systems.mod_counter ~bits:2 ~modulus:3 ~bad_value:2 ();
      Systems.shift_register ~len:4;
      Systems.request_grant;
    ]

(* ------------------------------------------------------------------ *)
(* CEGAR                                                               *)
(* ------------------------------------------------------------------ *)

let test_cegar_safe_with_small_abstraction () =
  let t = Systems.mod_counter ~junk:8 ~bits:3 ~modulus:6 ~bad_value:7 () in
  match Cegar.verify t with
  | Budget.Converged (Cegar.Safe { abstract_latches; _ }) ->
    Alcotest.(check bool)
      (Printf.sprintf "junk latches stay hidden (visible=%d)" abstract_latches)
      true (abstract_latches <= 3)
  | Budget.Converged (Cegar.Unsafe _) -> Alcotest.fail "system is safe"
  | Budget.Exhausted _ -> Alcotest.fail "unbudgeted run exhausted"

let test_cegar_unsafe_validated () =
  let t = Systems.mod_counter ~junk:4 ~bits:3 ~modulus:8 ~bad_value:5 () in
  match Cegar.verify t with
  | Budget.Converged (Cegar.Unsafe { trace; _ }) ->
    Alcotest.(check bool) "trace replays concretely" true (Reach.replay t trace)
  | Budget.Converged (Cegar.Safe _) -> Alcotest.fail "system is unsafe"
  | Budget.Exhausted _ -> Alcotest.fail "unbudgeted run exhausted"

let test_cegar_request_grant () =
  match Cegar.verify Systems.request_grant with
  | Budget.Converged (Cegar.Unsafe { trace; _ }) ->
    Alcotest.(check int) "two-step bug" 2 (List.length trace)
  | Budget.Converged (Cegar.Safe _) -> Alcotest.fail "arbiter bug must be found"
  | Budget.Exhausted _ -> Alcotest.fail "unbudgeted run exhausted"

let test_cegar_refines_shift_register () =
  (* the property needs the whole chain: CEGAR must refine all the way *)
  let t = Systems.shift_register ~len:5 in
  match Cegar.verify t with
  | Budget.Converged (Cegar.Safe { abstract_latches; iterations; _ }) ->
    Alcotest.(check bool) "needed several refinements" true (iterations >= 3);
    Alcotest.(check bool) "most latches visible" true (abstract_latches >= 5)
  | Budget.Converged (Cegar.Unsafe _) ->
    Alcotest.fail "shift register is safe"
  | Budget.Exhausted _ -> Alcotest.fail "unbudgeted run exhausted"

let test_dtree_candidates_rank_relevant_latches () =
  (* counter bits separate reachable from bad states; junk latches do not *)
  let t = Systems.mod_counter ~junk:5 ~bits:3 ~modulus:8 ~bad_value:5 () in
  match Cegar.decision_tree_candidates t ~visible:[] ~samples:64 ~seed:3 with
  | [] -> Alcotest.fail "no candidates"
  | first :: _ ->
    Alcotest.(check bool)
      (Printf.sprintf "top candidate %d is a counter bit" first)
      true (first < 3)

let test_cegar_decision_tree_strategy () =
  (* differential: the learning-based refinement reaches the same
     verdicts as the syntactic one *)
  List.iter
    (fun t ->
      let verdict = function
        | Budget.Converged (Cegar.Safe _) -> `Safe
        | Budget.Converged (Cegar.Unsafe _) -> `Unsafe
        | Budget.Exhausted _ -> `Exhausted
      in
      let expected = verdict (Cegar.verify t) in
      let got =
        verdict
          (Cegar.verify
             ~refinement:(Cegar.Decision_tree { samples = 64; seed = 1 })
             t)
      in
      if expected <> got then Alcotest.failf "%s: strategies disagree" t.Ts.name)
    [
      Systems.mod_counter ~junk:4 ~bits:3 ~modulus:6 ~bad_value:7 ();
      Systems.mod_counter ~bits:3 ~modulus:8 ~bad_value:5 ();
      Systems.shift_register ~len:4;
      Systems.request_grant;
    ]

let test_cegar_agrees_with_reach () =
  List.iter
    (fun t ->
      let expected =
        match Reach.check t with Reach.Safe _ -> `Safe | Reach.Cex _ -> `Unsafe
      in
      let got =
        match Cegar.verify t with
        | Budget.Converged (Cegar.Safe _) -> `Safe
        | Budget.Converged (Cegar.Unsafe _) -> `Unsafe
        | Budget.Exhausted _ -> `Exhausted
      in
      if expected <> got then Alcotest.failf "%s: CEGAR disagrees" t.Ts.name)
    [
      Systems.mod_counter ~bits:4 ~modulus:11 ~bad_value:9 ();
      Systems.mod_counter ~bits:4 ~modulus:11 ~bad_value:12 ();
      Systems.mod_counter ~junk:3 ~bits:2 ~modulus:4 ~bad_value:3 ();
      Systems.shift_register ~len:3;
      Systems.request_grant;
    ]

(* ------------------------------------------------------------------ *)
(* Random transition systems: the three engines must agree             *)
(* ------------------------------------------------------------------ *)

let gen_ts =
  QCheck2.Gen.(
    let* num_latches = int_range 2 4 in
    let* num_inputs = int_range 1 2 in
    let gen_expr =
      sized_size (int_range 0 3) @@ fix (fun self n ->
          if n = 0 then
            oneof
              [
                oneofl [ Ts.T; Ts.F ];
                (let* i = int_range 0 (num_latches - 1) in
                 return (Ts.V i));
                (let* i = int_range 0 (num_inputs - 1) in
                 return (Ts.In i));
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                (let* a = sub in
                 return (Ts.Not a));
                (let* a = sub and* b = sub in
                 let* op =
                   oneofl
                     [
                       (fun a b -> Ts.And (a, b));
                       (fun a b -> Ts.Or (a, b));
                       (fun a b -> Ts.Xor (a, b));
                     ]
                 in
                 return (op a b));
              ])
    in
    let gen_state_expr =
      (* bad must not mention inputs *)
      sized_size (int_range 0 3) @@ fix (fun self n ->
          if n = 0 then
            oneof
              [
                oneofl [ Ts.T; Ts.F ];
                (let* i = int_range 0 (num_latches - 1) in
                 return (Ts.V i));
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                (let* a = sub in
                 return (Ts.Not a));
                (let* a = sub and* b = sub in
                 let* op =
                   oneofl
                     [ (fun a b -> Ts.And (a, b)); (fun a b -> Ts.Or (a, b)) ]
                 in
                 return (op a b));
              ])
    in
    let* init = array_size (return num_latches) bool in
    let* next = array_size (return num_latches) gen_expr in
    let* bad = gen_state_expr in
    return (Ts.make ~name:"rand" ~num_latches ~num_inputs ~init ~next ~bad))

let print_ts (t : Ts.t) =
  Format.asprintf "latches=%d inputs=%d bad=%a" t.Ts.num_latches t.Ts.num_inputs
    Ts.pp_expr t.Ts.bad

let prop_engines_agree =
  QCheck2.Test.make ~name:"Reach, BMC and CEGAR agree on random systems"
    ~count:150 ~print:print_ts gen_ts (fun t ->
      let reach = Reach.check t in
      let bmc = Bmc.check t ~depth:20 in
      let cegar = Cegar.verify t in
      (* any counterexample within 2^4 states is found within depth 20 *)
      match (reach, bmc, cegar) with
      | Reach.Safe _, `No_cex, Budget.Converged (Cegar.Safe _) -> true
      | Reach.Cex r, `Cex b, Budget.Converged (Cegar.Unsafe { trace; _ }) ->
        Reach.replay t r && Reach.replay t b && Reach.replay t trace
      | _ -> false)

let prop_localization_sound =
  QCheck2.Test.make
    ~name:"hiding latches never hides a real counterexample" ~count:150
    ~print:print_ts gen_ts (fun t ->
      match Reach.check t with
      | Reach.Safe _ -> true
      | Reach.Cex _ ->
        (* any abstraction must also report a counterexample *)
        let a = Abstraction.localize t ~visible:[ 0 ] in
        (match Reach.check a.Abstraction.abstract with
        | Reach.Cex _ -> true
        | Reach.Safe _ -> false))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mc"
    [
      ( "ts",
        [
          Alcotest.test_case "expression evaluation" `Quick test_ts_eval;
          Alcotest.test_case "validation" `Quick test_ts_validation;
          Alcotest.test_case "counter semantics" `Quick test_counter_step;
        ] );
      ( "reach",
        [
          Alcotest.test_case "unsafe counter" `Quick test_reach_unsafe_counter;
          Alcotest.test_case "safe counter" `Quick test_reach_safe_counter;
          Alcotest.test_case "initially bad" `Quick test_reach_initial_bad;
        ] );
      ( "abstraction",
        [
          Alcotest.test_case "over-approximates" `Quick
            test_localization_overapproximates;
          Alcotest.test_case "junk latches hidden" `Quick
            test_localization_junk_invisible;
          Alcotest.test_case "refinement candidates" `Quick
            test_referenced_hidden;
        ] );
      ( "bmc",
        [
          Alcotest.test_case "finds counterexample at the right depth" `Quick
            test_bmc_finds_cex;
          Alcotest.test_case "safe system" `Quick test_bmc_safe;
          Alcotest.test_case "agrees with explicit reachability" `Quick
            test_bmc_agrees_with_reach;
        ] );
      ( "cegar",
        [
          Alcotest.test_case "safe via small abstraction" `Quick
            test_cegar_safe_with_small_abstraction;
          Alcotest.test_case "unsafe with validated trace" `Quick
            test_cegar_unsafe_validated;
          Alcotest.test_case "arbiter bug" `Quick test_cegar_request_grant;
          Alcotest.test_case "refines when necessary" `Quick
            test_cegar_refines_shift_register;
          Alcotest.test_case "decision-tree candidates rank by relevance"
            `Quick test_dtree_candidates_rank_relevant_latches;
          Alcotest.test_case "decision-tree refinement agrees" `Quick
            test_cegar_decision_tree_strategy;
          Alcotest.test_case "agrees with explicit reachability" `Quick
            test_cegar_agrees_with_reach;
        ] );
      ("random-systems", qsuite [ prop_engines_agree; prop_localization_sound ]);
    ]
