(* Tests for the program substrate: interpreter vs reference semantics,
   loop unrolling, CFG path enumeration, symbolic execution and SMT-backed
   test generation. *)

module Bv = Smt.Bv
module Lang = Prog.Lang
module Interp = Prog.Interp
module Unroll = Prog.Unroll
module Cfg = Prog.Cfg
module Paths = Prog.Paths
module Symexec = Prog.Symexec
module Testgen = Prog.Testgen
module B = Prog.Benchmarks

let out1 p inputs =
  match Interp.run p inputs with
  | [ (_, value) ] -> value
  | other ->
    Alcotest.failf "expected one output, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let test_toy () =
  Alcotest.(check int) "flag=0" 13 (out1 B.toy [ ("flag", 0); ("x", 10) ]);
  Alcotest.(check int) "flag=1" 12 (out1 B.toy [ ("flag", 1); ("x", 10) ])

let test_modexp_against_reference () =
  let p = B.modexp () in
  List.iter
    (fun (base, exp) ->
      Alcotest.(check int)
        (Printf.sprintf "modexp %d^%d" base exp)
        (B.modexp_reference ~base ~exp ())
        (out1 p [ ("base", base); ("exp", exp) ]))
    [ (2, 0); (2, 1); (2, 255); (3, 100); (7, 77); (250, 255); (123, 200) ]

let test_multiply45_obs () =
  List.iter
    (fun y ->
      Alcotest.(check int)
        (Printf.sprintf "45 * %d" y)
        (Bv.truncate ~width:16 (45 * y))
        (out1 B.multiply45_obs [ ("y", y) ]);
      Alcotest.(check int)
        (Printf.sprintf "clean 45 * %d" y)
        (Bv.truncate ~width:16 (45 * y))
        (out1 B.multiply45 [ ("y", y) ]))
    [ 0; 1; 2; 17; 100; 1000; 65535 ]

let test_interchange_obs () =
  List.iter
    (fun (s, d) ->
      let check p =
        match Interp.run p [ ("src", s); ("dest", d) ] with
        | [ ("src", s'); ("dest", d') ] ->
          Alcotest.(check (pair int int))
            (Printf.sprintf "%s swaps (%d,%d)" p.Lang.name s d)
            (d, s) (s', d')
        | _ -> Alcotest.fail "bad outputs"
      in
      check B.interchange_obs;
      check B.interchange)
    [ (0, 0); (1, 2); (42, 42); (65535, 1); (12345, 54321) ]

let test_trace_branches () =
  (* bitcount over 4 bits: the loop latch test runs per iteration plus
     the guard; each iteration also records the bit test *)
  let p = B.bitcount () in
  let tr = Interp.trace_branches p [ ("x", 0b0101) ] in
  (* guard (true), then per iteration: bit test + latch test *)
  Alcotest.(check int) "branch count" 9 (List.length tr);
  let bit_tests =
    (* entries 1,3,5,7 are the bit tests for bits 0..3 *)
    List.filteri (fun i _ -> i mod 2 = 1) tr
  in
  Alcotest.(check (list bool)) "bit pattern observed"
    [ true; false; true; false ] bit_tests

let test_interp_fuel () =
  let p =
    Lang.make ~name:"loop" ~width:8 ~inputs:[] ~outputs:[]
      [ Lang.While (Bv.tru, []) ]
  in
  Alcotest.check_raises "fuel exhausted" Interp.Out_of_fuel (fun () ->
      ignore (Interp.run ~fuel:10 p []))

let test_interp_assume () =
  let p =
    Lang.make ~name:"assume" ~width:8 ~inputs:[ "x" ] ~outputs:[]
      [ Lang.Assume (Bv.eq (Bv.var ~width:8 "x") (Bv.const ~width:8 1)) ]
  in
  ignore (Interp.run p [ ("x", 1) ]);
  Alcotest.check_raises "assumption failure" Interp.Assumption_failed (fun () ->
      ignore (Interp.run p [ ("x", 2) ]))

let prop_modexp_matches_reference =
  QCheck2.Test.make ~name:"interp modexp = reference modexp" ~count:200
    ~print:(fun (b, e) -> Printf.sprintf "base=%d exp=%d" b e)
    QCheck2.Gen.(pair (int_range 0 65535) (int_range 0 255))
    (fun (base, exp) ->
      out1 (B.modexp ()) [ ("base", base); ("exp", exp) ]
      = B.modexp_reference ~base ~exp ())

let prop_multiply45 =
  QCheck2.Test.make ~name:"obfuscated and clean multiply45 agree" ~count:200
    ~print:string_of_int
    QCheck2.Gen.(int_range 0 65535)
    (fun y ->
      out1 B.multiply45_obs [ ("y", y) ] = out1 B.multiply45 [ ("y", y) ])

let prop_interchange =
  QCheck2.Test.make ~name:"obfuscated and clean interchange agree" ~count:200
    ~print:(fun (s, d) -> Printf.sprintf "src=%d dest=%d" s d)
    QCheck2.Gen.(pair (int_range 0 65535) (int_range 0 65535))
    (fun (s, d) ->
      Interp.run B.interchange_obs [ ("src", s); ("dest", d) ]
      = Interp.run B.interchange [ ("src", s); ("dest", d) ])

(* ------------------------------------------------------------------ *)
(* Unrolling and CFG                                                   *)
(* ------------------------------------------------------------------ *)

let test_unroll_loop_free () =
  let p = Unroll.unroll ~bound:8 (B.modexp ()) in
  Alcotest.(check bool) "loop free" true (Lang.is_loop_free p);
  Alcotest.(check bool)
    "original has loop" false
    (Lang.is_loop_free (B.modexp ()))

let test_unroll_preserves_semantics () =
  let p = B.modexp () and u = Unroll.unroll ~bound:8 (B.modexp ()) in
  List.iter
    (fun (base, exp) ->
      let inputs = [ ("base", base); ("exp", exp) ] in
      Alcotest.(check int)
        (Printf.sprintf "unrolled modexp %d^%d" base exp)
        (out1 p inputs) (out1 u inputs))
    [ (2, 255); (3, 100); (17, 0); (251, 137) ]

let test_unroll_cuts_paths () =
  (* under-unrolling makes complete executions violate the Assume *)
  let u = Unroll.unroll ~bound:3 (B.modexp ()) in
  Alcotest.check_raises "cut path" Interp.Assumption_failed (fun () ->
      ignore (Interp.run u [ ("base", 2); ("exp", 255) ]))

let test_cfg_structure () =
  let u = Unroll.unroll ~bound:4 (B.bitcount ()) in
  let g = Cfg.of_program u in
  (* structural paths: exit possible after 0..4 iterations of the loop,
     with a diamond per completed iteration: 1 + 2 + 4 + 8 + 16 = 31 *)
  Alcotest.(check int) "structural path count" 31 (Paths.count g);
  Alcotest.(check int)
    "enumeration matches count" 31
    (List.length (List.of_seq (Paths.enumerate g)))

let test_cfg_rejects_loops () =
  Alcotest.check_raises "loops rejected"
    (Invalid_argument "Cfg.of_program: program contains a loop") (fun () ->
      ignore (Cfg.of_program (B.modexp ())))

let test_path_vectors () =
  let u = Unroll.unroll ~bound:2 (B.bitcount ~bits:2 ()) in
  let g = Cfg.of_program u in
  Paths.enumerate g
  |> Seq.iter (fun path ->
         let v = Paths.vector g path in
         Alcotest.(check int)
           "vector weight = path length" (List.length path)
           (Array.fold_left ( + ) 0 v);
         match Paths.of_vector g v with
         | Some path' -> Alcotest.(check (list int)) "roundtrip" path path'
         | None -> Alcotest.fail "of_vector failed")

(* ------------------------------------------------------------------ *)
(* Symbolic execution and test generation                              *)
(* ------------------------------------------------------------------ *)

let test_feasible_counts () =
  let u = Unroll.unroll ~bound:4 (B.bitcount ()) in
  let g = Cfg.of_program u in
  let feasible =
    Paths.enumerate g
    |> Seq.filter (fun path ->
           match Testgen.feasible u g path with
           | `Test _ -> true
           | `Infeasible | `Unknown _ -> false)
    |> List.of_seq
  in
  (* only complete 4-iteration executions are feasible: one per bit mask *)
  Alcotest.(check int) "feasible paths" 16 (List.length feasible)

let test_testgen_drives_path () =
  let u = Unroll.unroll ~bound:4 (B.bitcount ()) in
  let g = Cfg.of_program u in
  Paths.enumerate g
  |> Seq.iter (fun path ->
         match Testgen.feasible u g path with
         | `Infeasible | `Unknown _ -> ()
         | `Test inputs ->
           Alcotest.(check bool)
             "generated test drives its path" true
             (Testgen.check_drives u g path inputs))

let test_symexec_outputs_match_interp () =
  let u = Unroll.unroll ~bound:4 (B.bitcount ()) in
  let g = Cfg.of_program u in
  Paths.enumerate g
  |> Seq.iter (fun path ->
         match Testgen.feasible u g path with
         | `Infeasible | `Unknown _ -> ()
         | `Test inputs ->
           let r = Symexec.exec u g path in
           let env = Bv.env_of_alist inputs in
           let symbolic =
             List.map
               (fun (x, t) -> (x, Bv.eval_term env t))
               (Symexec.output_terms u r)
           in
           Alcotest.(check (list (pair string int)))
             "symbolic outputs = concrete outputs" (Interp.run u inputs)
             symbolic)

let test_modexp_path_space () =
  let u = Unroll.unroll ~bound:8 (B.modexp ()) in
  let g = Cfg.of_program u in
  (* 511 structural paths; checking all for feasibility is done in the
     bench harness — here we spot-check the two extreme paths *)
  Alcotest.(check int) "structural" 511 (Paths.count g);
  let all = List.of_seq (Paths.enumerate g) in
  let feasible =
    List.filter
      (fun p ->
        match Testgen.feasible u g p with
        | `Test _ -> true
        | `Infeasible | `Unknown _ -> false)
      all
  in
  Alcotest.(check int) "feasible = 2^8" 256 (List.length feasible)

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                     *)
(* ------------------------------------------------------------------ *)

module Syntax = Prog.Syntax

let modexp_source =
  {|
// square-and-multiply modular exponentiation
program modexp (base, exp) -> (result) width 16 {
  result := 1;
  b := base % 251;
  i := 0;
  while (i < 8) {
    if (((exp >> i) & 1) == 1) {
      result := (result * b) % 251;
    }
    b := (b * b) % 251;
    i := i + 1;
  }
}
|}

let test_parse_modexp () =
  let p = Syntax.parse modexp_source in
  Alcotest.(check string) "name" "modexp" p.Lang.name;
  Alcotest.(check int) "width" 16 p.Lang.width;
  (* behaves exactly like the library's modexp *)
  List.iter
    (fun (base, exp) ->
      let inputs = [ ("base", base); ("exp", exp) ] in
      Alcotest.(check int)
        (Printf.sprintf "%d^%d" base exp)
        (out1 (B.modexp ()) inputs)
        (out1 p inputs))
    [ (2, 255); (123, 77); (250, 128) ]

let test_roundtrip_benchmarks () =
  List.iter
    (fun p ->
      let p' = Syntax.parse (Syntax.to_string p) in
      if p <> p' then
        Alcotest.failf "%s: print/parse changed the program:@.%s" p.Lang.name
          (Syntax.to_string p'))
    [
      B.toy;
      B.modexp ();
      B.bitcount ();
      B.interchange_obs;
      B.multiply45_obs;
      B.multiply45;
      B.deceptive ();
    ]

let test_parse_precedence () =
  let prog body = Printf.sprintf "program p (a) -> (x) width 8 { %s }" body in
  let first_assign src =
    match (Syntax.parse (prog src)).Lang.body with
    | [ Lang.Assign (_, e) ] -> e
    | _ -> Alcotest.fail "expected one assignment"
  in
  (* constant folding makes precedence directly observable *)
  Alcotest.(check bool) "mul binds tighter than add" true
    (first_assign "x := 1 + 2 * 3;" = Smt.Bv.const ~width:8 7);
  Alcotest.(check bool) "parens" true
    (first_assign "x := (1 + 2) * 3;" = Smt.Bv.const ~width:8 9);
  Alcotest.(check bool) "shift binds looser than add" true
    (first_assign "x := 1 << 2 + 3;" = Smt.Bv.const ~width:8 32);
  Alcotest.(check bool) "unary minus" true
    (first_assign "x := -1;" = Smt.Bv.const ~width:8 255)

let test_parse_constructs () =
  let p =
    Syntax.parse
      {|program p (a) -> (x) width 8 {
          assume (a != 0);
          if (a < 10 && !(a == 3)) { x := (a == 5 ? 1 : 2); } else { skip; }
        }|}
  in
  Alcotest.(check int) "two statements" 2 (List.length p.Lang.body);
  Alcotest.(check (list int))
    "ite picks 1" [ 1 ]
    (List.map snd (Interp.run p [ ("a", 5) ]));
  Alcotest.(check (list int))
    "ite picks 2" [ 2 ]
    (List.map snd (Interp.run p [ ("a", 4) ]))

let test_parse_errors () =
  let bad src expected_line =
    match Syntax.parse src with
    | exception Syntax.Parse_error { line; _ } ->
      Alcotest.(check int) ("line of " ^ src) expected_line line
    | _ -> Alcotest.failf "accepted %S" src
  in
  bad "program p () -> () width 8 { @ }" 1;
  bad "program p () -> () width 8 {\n  x = 1;\n}" 2;
  bad "program p () -> () width 99 { }" 1;
  bad "program p () -> () width 8 { } trailing" 1

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "prog"
    [
      ( "interp",
        [
          Alcotest.test_case "toy program (fig 4)" `Quick test_toy;
          Alcotest.test_case "modexp vs reference" `Quick
            test_modexp_against_reference;
          Alcotest.test_case "multiply45 obfuscated" `Quick test_multiply45_obs;
          Alcotest.test_case "interchange obfuscated" `Quick
            test_interchange_obs;
          Alcotest.test_case "branch traces" `Quick test_trace_branches;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          Alcotest.test_case "assume" `Quick test_interp_assume;
        ] );
      ( "interp-qcheck",
        qsuite [ prop_modexp_matches_reference; prop_multiply45; prop_interchange ]
      );
      ( "unroll",
        [
          Alcotest.test_case "produces loop-free code" `Quick
            test_unroll_loop_free;
          Alcotest.test_case "preserves semantics" `Quick
            test_unroll_preserves_semantics;
          Alcotest.test_case "cuts over-bound paths" `Quick
            test_unroll_cuts_paths;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "path counting" `Quick test_cfg_structure;
          Alcotest.test_case "rejects loops" `Quick test_cfg_rejects_loops;
          Alcotest.test_case "path vectors roundtrip" `Quick test_path_vectors;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "parse modexp source" `Quick test_parse_modexp;
          Alcotest.test_case "print/parse roundtrip on benchmarks" `Quick
            test_roundtrip_benchmarks;
          Alcotest.test_case "operator precedence" `Quick test_parse_precedence;
          Alcotest.test_case "assume / ite / skip / else" `Quick
            test_parse_constructs;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_parse_errors;
        ] );
      ( "symexec",
        [
          Alcotest.test_case "feasible path count (bitcount)" `Quick
            test_feasible_counts;
          Alcotest.test_case "generated tests drive their paths" `Quick
            test_testgen_drives_path;
          Alcotest.test_case "symbolic outputs match interpreter" `Quick
            test_symexec_outputs_match_interp;
          Alcotest.test_case "modexp path space (256 feasible)" `Slow
            test_modexp_path_space;
        ] );
    ]
