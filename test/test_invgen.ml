(* Tests for the invariant-generation instance: AIG semantics, bit-parallel
   simulation, candidate extraction, temporal induction and the full
   strengthen-the-property pipeline. *)

module Aig = Invgen.Aig
module Candidates = Invgen.Candidates
module Induction = Invgen.Induction
module Engine = Invgen.Engine

(* ------------------------------------------------------------------ *)
(* AIG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_aig_gates () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  let ab = Aig.and2 g a b in
  let o = Aig.or2 g a b in
  let x = Aig.xor2 g a b in
  List.iter
    (fun (va, vb) ->
      let input_values = [| va; vb |] in
      let e l = Aig.eval g ~latch_values:[||] ~input_values l in
      Alcotest.(check bool) "and" (va && vb) (e ab);
      Alcotest.(check bool) "or" (va || vb) (e o);
      Alcotest.(check bool) "xor" (va <> vb) (e x))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_aig_strash () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  let x = Aig.and2 g a b and y = Aig.and2 g b a in
  Alcotest.(check int) "structural hashing merges" x y;
  Alcotest.(check int) "and with true folds" a (Aig.and2 g a Aig.true_);
  Alcotest.(check int) "and with false folds" Aig.false_ (Aig.and2 g a Aig.false_);
  Alcotest.(check int) "and with complement folds" Aig.false_
    (Aig.and2 g a (Aig.neg a))

let test_aig_latch_semantics () =
  let g = Aig.create () in
  let x = Aig.input g in
  let l = Aig.latch g in
  Aig.connect g l x;
  let s0 = Aig.initial_state g in
  Alcotest.(check (array bool)) "init" [| false |] s0;
  let s1 = Aig.next_state g ~latch_values:s0 ~input_values:[| true |] in
  Alcotest.(check (array bool)) "latched the input" [| true |] s1

let test_aig_validate () =
  let g = Aig.create () in
  let _l = Aig.latch g in
  Alcotest.check_raises "unconnected latch"
    (Invalid_argument "Aig.validate: latch 0 not connected") (fun () ->
      Aig.validate g)

let test_simulation_consistent () =
  (* lane 0 of the word simulation agrees with scalar simulation when we
     replay the same inputs — check a deterministic circuit instead *)
  let aig, _ = Engine.counter_mod5 () in
  let sig_ = Aig.simulate_words aig ~frames:10 ~seed:1 in
  (* deterministic: every lane identical; compare against scalar run *)
  let state = ref (Aig.initial_state aig) in
  for f = 0 to 9 do
    List.iteri
      (fun k l ->
        let scalar = !state.(k) in
        let word = sig_.(Aig.node_of l).(f) in
        let expected = if scalar then (1 lsl 62) - 1 else 0 in
        Alcotest.(check int)
          (Printf.sprintf "frame %d latch %d" f k)
          expected word)
      (Aig.latches aig);
    state := Aig.next_state aig ~latch_values:!state ~input_values:[||]
  done

(* ------------------------------------------------------------------ *)
(* Candidates                                                          *)
(* ------------------------------------------------------------------ *)

let test_candidates_stuck_bit () =
  let aig, _ = Engine.stuck_bit in
  let cands = Candidates.from_simulation aig in
  let is_const_false = function
    | Candidates.Equiv (_, b) -> b = Aig.false_
    | _ -> false
  in
  Alcotest.(check bool) "finds a stuck-at-0 candidate" true
    (List.exists is_const_false cands)

let test_candidates_twin_equivalence () =
  let aig, miter = Engine.twin_registers ~len:3 in
  let cands = Candidates.from_simulation aig in
  ignore miter;
  let equivs =
    List.filter (function Candidates.Equiv (_, b) -> b <> Aig.false_ && b <> Aig.true_ | _ -> false) cands
  in
  Alcotest.(check bool) "stage equivalences proposed" true
    (List.length equivs >= 3)

let test_candidates_hold_on_simulated_states () =
  let aig, _ = Engine.counter_mod5 () in
  let cands = Candidates.from_simulation aig in
  (* replay the concrete reachable orbit and check every candidate *)
  let state = ref (Aig.initial_state aig) in
  for _ = 0 to 10 do
    List.iter
      (fun c ->
        Alcotest.(check bool) "consistent with reachable states" true
          (Candidates.holds_in aig ~latch_values:!state ~input_values:[||] c))
      cands;
    state := Aig.next_state aig ~latch_values:!state ~input_values:[||]
  done

(* ------------------------------------------------------------------ *)
(* Induction                                                           *)
(* ------------------------------------------------------------------ *)

(* every run in this suite is unbudgeted, so exhaustion is a failure *)
let conv = function
  | Budget.Converged x -> x
  | Budget.Exhausted _ -> Alcotest.fail "unbudgeted run exhausted"

let test_filter_keeps_true_invariants () =
  let aig, _ = Engine.counter_mod5 () in
  let cands = Candidates.from_simulation aig in
  let proven = conv (Induction.filter_inductive aig cands) in
  Alcotest.(check bool) "something survives" true (proven <> []);
  (* survivors hold in all 5 reachable states *)
  let state = ref (Aig.initial_state aig) in
  for _ = 0 to 5 do
    List.iter
      (fun c ->
        Alcotest.(check bool) "proven invariant holds" true
          (Candidates.holds_in aig ~latch_values:!state ~input_values:[||] c))
      proven;
    state := Aig.next_state aig ~latch_values:!state ~input_values:[||]
  done

let test_filter_drops_non_invariants () =
  (* a free-running latch driven by an input admits no constant/equiv *)
  let aig = Aig.create () in
  let x = Aig.input aig in
  let l = Aig.latch aig in
  Aig.connect aig l x;
  let bogus = [ Candidates.Equiv (l, Aig.false_); Candidates.Equiv (l, Aig.true_) ] in
  Alcotest.(check int) "all dropped" 0
    (List.length (conv (Induction.filter_inductive aig bogus)))

(* ------------------------------------------------------------------ *)
(* End-to-end                                                          *)
(* ------------------------------------------------------------------ *)

let test_mod5_needs_strengthening () =
  let aig, bad = Engine.counter_mod5 () in
  let r = conv (Engine.run aig ~bad) in
  (match r.Engine.verdict_unaided with
  | Induction.Unknown -> ()
  | Induction.Proved -> Alcotest.fail "count=7 must not be plainly inductive"
  | Induction.Cex_in_base -> Alcotest.fail "initial state is good"
  | Induction.Aborted _ -> Alcotest.fail "unbudgeted query aborted");
  match r.Engine.verdict with
  | Induction.Proved -> ()
  | _ -> Alcotest.fail "invariants must make the property provable"

let test_ring_counter_proved () =
  let aig, bad = Engine.ring_counter ~n:5 in
  let r = conv (Engine.run aig ~bad) in
  Alcotest.(check bool) "proved with invariants" true
    (r.Engine.verdict = Induction.Proved)

let test_twin_registers_proved () =
  let aig, bad = Engine.twin_registers ~len:4 in
  let r = conv (Engine.run aig ~bad) in
  (match r.Engine.verdict_unaided with
  | Induction.Proved -> Alcotest.fail "miter needs the stage equivalences"
  | _ -> ());
  Alcotest.(check bool) "equivalences prove the miter" true
    (r.Engine.verdict = Induction.Proved)

let test_stuck_bit_proved () =
  let aig, bad = Engine.stuck_bit in
  let r = conv (Engine.run aig ~bad) in
  Alcotest.(check bool) "alarm never fires" true
    (r.Engine.verdict = Induction.Proved)

let test_k_induction_depth () =
  (* the mod-5 counter's bad state 7 has the unreachable predecessor
     chain 5 -> 6 -> 7 and 5 itself has no predecessor: k = 1 and k = 2
     induction fail, k = 3 proves with no invariants at all *)
  let aig, bad = Engine.counter_mod5 () in
  let v k = Induction.prove_property ~k aig ~bad ~invariants:[] in
  Alcotest.(check bool) "k=1 unknown" true (v 1 = Induction.Unknown);
  Alcotest.(check bool) "k=2 unknown" true (v 2 = Induction.Unknown);
  Alcotest.(check bool) "k=3 proved" true (v 3 = Induction.Proved)

let test_k_induction_base () =
  (* a latch that rises at step 1: deeper base cases must catch it *)
  let aig = Aig.create () in
  let l = Aig.latch aig in
  Aig.connect aig l Aig.true_;
  Alcotest.(check bool) "k=1 base ok but step fails" true
    (Induction.prove_property ~k:1 aig ~bad:l ~invariants:[]
    = Induction.Unknown);
  Alcotest.(check bool) "k=2 base sees the bad state" true
    (Induction.prove_property ~k:2 aig ~bad:l ~invariants:[]
    = Induction.Cex_in_base)

let test_reachable_bad_not_proved () =
  (* sanity: a reachable bad state must never be "proved" safe *)
  let aig = Aig.create () in
  let x = Aig.input aig in
  let l = Aig.latch aig in
  Aig.connect aig l x;
  let r = conv (Engine.run aig ~bad:l) in
  Alcotest.(check bool) "not proved" true (r.Engine.verdict <> Induction.Proved)

(* ------------------------------------------------------------------ *)
(* Random circuits: proven invariants really are invariant             *)
(* ------------------------------------------------------------------ *)

let gen_aig =
  QCheck2.Gen.(
    let* n_inputs = int_range 1 2 in
    let* n_latches = int_range 2 4 in
    let* n_gates = int_range 2 6 in
    let* gate_choices = list_size (return (n_gates * 3)) (int_range 0 1000) in
    let* latch_nexts = list_size (return n_latches) (int_range 0 1000) in
    let* inits = list_size (return n_latches) bool in
    return (n_inputs, n_latches, gate_choices, latch_nexts, inits))

let build_aig (n_inputs, _n_latches, gate_choices, latch_nexts, inits) =
  let aig = Aig.create () in
  let inputs = List.init n_inputs (fun _ -> Aig.input aig) in
  let latches = List.map (fun init -> Aig.latch ~init aig) inits in
  let pool = ref (Aig.true_ :: (inputs @ latches)) in
  let pick code =
    let l = List.length !pool in
    let lit = List.nth !pool (code mod l) in
    if code / l mod 2 = 1 then Aig.neg lit else lit
  in
  let rec build = function
    | a :: b :: _op :: rest ->
      let g = Aig.and2 aig (pick a) (pick b) in
      pool := g :: !pool;
      build rest
    | _ -> ()
  in
  build gate_choices;
  List.iter2 (fun l nx -> Aig.connect aig l (pick nx)) latches latch_nexts;
  aig

let prop_proven_invariants_hold =
  QCheck2.Test.make
    ~name:"proven invariants hold along random concrete walks" ~count:100
    ~print:(fun (n_inputs, n_latches, _, _, _) ->
      Printf.sprintf "inputs=%d latches=%d" n_inputs n_latches)
    gen_aig
    (fun spec ->
      let aig = build_aig spec in
      let proven =
        conv (Induction.filter_inductive aig (Candidates.from_simulation aig))
      in
      (* walk 40 steps with fixed pseudo-random inputs and check every
         proven candidate at every visited state *)
      let rng = Random.State.make [| 17 |] in
      let state = ref (Aig.initial_state aig) in
      let ok = ref true in
      for _ = 0 to 40 do
        let input_values =
          Array.init (Aig.num_inputs aig) (fun _ -> Random.State.bool rng)
        in
        List.iter
          (fun c ->
            if not (Candidates.holds_in aig ~latch_values:!state ~input_values c)
            then ok := false)
          proven;
        state := Aig.next_state aig ~latch_values:!state ~input_values
      done;
      !ok)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "invgen"
    [
      ( "aig",
        [
          Alcotest.test_case "gate semantics" `Quick test_aig_gates;
          Alcotest.test_case "structural hashing" `Quick test_aig_strash;
          Alcotest.test_case "latch semantics" `Quick test_aig_latch_semantics;
          Alcotest.test_case "validation" `Quick test_aig_validate;
          Alcotest.test_case "word simulation = scalar simulation" `Quick
            test_simulation_consistent;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "stuck bit constant" `Quick test_candidates_stuck_bit;
          Alcotest.test_case "twin register equivalences" `Quick
            test_candidates_twin_equivalence;
          Alcotest.test_case "consistent with reachable states" `Quick
            test_candidates_hold_on_simulated_states;
        ] );
      ( "induction",
        [
          Alcotest.test_case "keeps true invariants" `Quick
            test_filter_keeps_true_invariants;
          Alcotest.test_case "drops non-invariants" `Quick
            test_filter_drops_non_invariants;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "mod-5 counter needs strengthening" `Quick
            test_mod5_needs_strengthening;
          Alcotest.test_case "ring counter" `Quick test_ring_counter_proved;
          Alcotest.test_case "twin registers" `Quick test_twin_registers_proved;
          Alcotest.test_case "stuck bit" `Quick test_stuck_bit_proved;
          Alcotest.test_case "reachable bad is never proved" `Quick
            test_reachable_bad_not_proved;
          Alcotest.test_case "k-induction depth vs strengthening" `Quick
            test_k_induction_depth;
          Alcotest.test_case "k-induction base case" `Quick
            test_k_induction_base;
        ] );
      ("random-circuits", qsuite [ prop_proven_invariants_hold ]);
    ]
