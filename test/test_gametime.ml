(* Tests for GameTime: exact rational linear algebra, feasible basis path
   extraction (including the paper's "9 basis paths for modexp" claim),
   the game-theoretic learner, and end-to-end WCET analysis against the
   cycle-accurate platform. *)

module Q = Gametime.Rational
module Linalg = Gametime.Linalg
module Basis = Gametime.Basis
module Learner = Gametime.Learner
module Gt = Gametime.Analysis
module Lang = Prog.Lang
module Cfg = Prog.Cfg
module Paths = Prog.Paths
module Unroll = Prog.Unroll
module Testgen = Prog.Testgen
module B = Prog.Benchmarks
module Platform = Microarch.Platform

(* ------------------------------------------------------------------ *)
(* Rationals                                                           *)
(* ------------------------------------------------------------------ *)

let test_rational_basics () =
  let q a b = Q.make a b in
  Alcotest.(check bool) "1/2 + 1/3 = 5/6" true (Q.equal (Q.add (q 1 2) (q 1 3)) (q 5 6));
  Alcotest.(check bool) "normalized" true (Q.equal (q 2 4) (q 1 2));
  Alcotest.(check bool) "sign in denominator" true (Q.equal (q 1 (-2)) (q (-1) 2));
  Alcotest.(check bool) "mul" true (Q.equal (Q.mul (q 2 3) (q 3 4)) (q 1 2));
  Alcotest.(check bool) "div" true (Q.equal (Q.div (q 1 2) (q 1 4)) (Q.of_int 2));
  Alcotest.(check int) "compare" (-1) (Q.compare (q 1 3) (q 1 2));
  Alcotest.check_raises "zero denominator"
    (Invalid_argument "Rational.make: zero denominator") (fun () ->
      ignore (q 1 0))

let gen_q =
  QCheck2.Gen.(
    let* n = int_range (-20) 20 and* d = int_range 1 20 in
    return (Q.make n d))

let prop_rational_field =
  QCheck2.Test.make ~name:"rational field laws" ~count:300
    ~print:(fun (a, b, c) -> Format.asprintf "%a %a %a" Q.pp a Q.pp b Q.pp c)
    QCheck2.Gen.(triple gen_q gen_q gen_q)
    (fun (a, b, c) ->
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c))
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.sub a a) Q.zero
      && (Q.is_zero b || Q.equal (Q.mul (Q.div a b) b) a))

(* ------------------------------------------------------------------ *)
(* Linear algebra                                                      *)
(* ------------------------------------------------------------------ *)

let test_span_rank () =
  let s = Linalg.empty_span ~dim:3 in
  Alcotest.(check bool) "e1 independent" true
    (Linalg.add_if_independent s [| 1; 0; 0 |]);
  Alcotest.(check bool) "e1+e2 independent" true
    (Linalg.add_if_independent s [| 1; 1; 0 |]);
  Alcotest.(check bool) "e2 dependent" false
    (Linalg.add_if_independent s [| 0; 1; 0 |]);
  Alcotest.(check bool) "e3 independent" true
    (Linalg.add_if_independent s [| 1; 1; 1 |]);
  Alcotest.(check int) "rank 3" 3 (Linalg.rank s);
  Alcotest.(check bool) "anything now in span" true
    (Linalg.in_span s [| 7; -2; 13 |])

let test_solve_exact () =
  let basis = [ [| 1; 0; 1 |]; [| 0; 1; 1 |] ] in
  (match Linalg.solve basis [| 2; 3; 5 |] with
  | Some coeffs ->
    Alcotest.(check bool) "coeff 0 = 2" true (Q.equal coeffs.(0) (Q.of_int 2));
    Alcotest.(check bool) "coeff 1 = 3" true (Q.equal coeffs.(1) (Q.of_int 3))
  | None -> Alcotest.fail "solvable system reported unsolvable");
  match Linalg.solve basis [| 1; 0; 0 |] with
  | Some _ -> Alcotest.fail "target outside span accepted"
  | None -> ()

let prop_solve_recovers_combination =
  let gen =
    QCheck2.Gen.(
      let* dim = int_range 2 6 in
      let* k = int_range 1 4 in
      let vec = array_size (return dim) (int_range 0 3) in
      let* basis = list_size (return k) vec in
      let* coeffs = list_size (return k) (int_range (-3) 3) in
      return (basis, coeffs))
  in
  QCheck2.Test.make ~name:"solve recovers linear combinations" ~count:300
    ~print:(fun (basis, coeffs) ->
      Printf.sprintf "basis=%s coeffs=%s"
        (String.concat ","
           (List.map
              (fun v ->
                "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int v)) ^ "]")
              basis))
        (String.concat ";" (List.map string_of_int coeffs)))
    gen
    (fun (basis, coeffs) ->
      let dim = Array.length (List.hd basis) in
      let target = Array.make dim 0 in
      List.iter2
        (fun v c -> Array.iteri (fun i x -> target.(i) <- target.(i) + (c * x)) v)
        basis coeffs;
      match Linalg.solve basis target with
      | None -> false
      | Some sol ->
        (* the solution need not equal [coeffs] (basis may be dependent);
           verify it reproduces the target instead *)
        let recon = Array.make dim Q.zero in
        List.iteri
          (fun j v ->
            Array.iteri
              (fun i x -> recon.(i) <- Q.add recon.(i) (Q.mul sol.(j) (Q.of_int x)))
              v)
          basis;
        Array.for_all2 (fun r t -> Q.equal r (Q.of_int t)) recon target)

(* ------------------------------------------------------------------ *)
(* Basis path extraction                                               *)
(* ------------------------------------------------------------------ *)

(* every run in this suite is unbudgeted, so exhaustion is a failure *)
let conv = function
  | Budget.Converged x -> x
  | Budget.Exhausted _ -> Alcotest.fail "unbudgeted run exhausted"

let is_feasible u g path =
  match Testgen.feasible u g path with
  | `Test _ -> true
  | `Infeasible | `Unknown _ -> false

let bitcount_setup bits =
  let u = Unroll.unroll ~bound:bits (B.bitcount ~bits ()) in
  let g = Cfg.of_program u in
  (u, g)

let test_basis_bitcount () =
  let u, g = bitcount_setup 4 in
  let basis = conv (Basis.extract u g) in
  (* one diamond per iteration: affine dimension bits+1 *)
  Alcotest.(check int) "basis size" 5 (List.length basis);
  let span = Linalg.empty_span ~dim:(Cfg.num_edges g) in
  List.iter
    (fun b ->
      Alcotest.(check bool) "vectors independent" true
        (Linalg.add_if_independent span b.Basis.vector))
    basis;
  List.iter
    (fun b ->
      Alcotest.(check bool) "test drives path" true
        (Testgen.check_drives u g b.Basis.path b.Basis.test))
    basis

let test_basis_spans_feasible_paths () =
  let u, g = bitcount_setup 4 in
  let basis = conv (Basis.extract u g) in
  let vectors = List.map (fun b -> b.Basis.vector) basis in
  Paths.enumerate g
  |> Seq.iter (fun path ->
         if is_feasible u g path then
           match Linalg.solve vectors (Paths.vector g path) with
           | Some _ -> ()
           | None -> Alcotest.fail "feasible path outside basis span")

let test_modexp_nine_basis_paths () =
  (* the paper's Section 3.3 headline: 256 paths, 9 basis paths *)
  let u = Unroll.unroll ~bound:8 (B.modexp ()) in
  let g = Cfg.of_program u in
  let basis = conv (Basis.extract u g) in
  Alcotest.(check int) "9 basis paths" 9 (List.length basis)

(* ------------------------------------------------------------------ *)
(* Learner: exactness on a synthetically linear platform               *)
(* ------------------------------------------------------------------ *)

(* a platform whose time is exactly a fixed weight vector dotted with the
   executed path's edge vector: the structure hypothesis holds with
   pi = 0, so prediction must be exact *)
let linear_platform u g weights =
  let feasible =
    Paths.enumerate g
    |> Seq.filter (is_feasible u g)
    |> List.of_seq
  in
  fun inputs ->
    let path =
      List.find (fun path -> Testgen.check_drives u g path inputs) feasible
    in
    List.fold_left (fun acc e -> acc + weights.(e)) 0 path

let test_learner_exact_on_linear_platform () =
  let u, g = bitcount_setup 4 in
  let m = Cfg.num_edges g in
  let weights = Array.init m (fun i -> 1 + ((i * 7) mod 13)) in
  let platform = linear_platform u g weights in
  let basis = conv (Basis.extract u g) in
  let model = Learner.learn ~seed:42 ~platform basis in
  Paths.enumerate g
  |> Seq.iter (fun path ->
         if is_feasible u g path then begin
           let expected =
             float_of_int (List.fold_left (fun a e -> a + weights.(e)) 0 path)
           in
           match Learner.predict model (Paths.vector g path) with
           | None -> Alcotest.fail "feasible path not predictable"
           | Some got ->
             Alcotest.(check (float 1e-6)) "exact prediction" expected got
         end)

(* ------------------------------------------------------------------ *)
(* Barycentric spanner                                                 *)
(* ------------------------------------------------------------------ *)

module Spanner = Gametime.Spanner

let feasible_with_tests u g =
  Paths.enumerate g
  |> Seq.filter_map (fun path ->
         match Testgen.feasible u g path with
         | `Test test -> Some (path, test)
         | `Infeasible | `Unknown _ -> None)
  |> List.of_seq

let test_spanner_coordinates () =
  let u, g = bitcount_setup 3 in
  let basis = conv (Basis.extract u g) in
  (* each basis vector has unit coordinates in the basis *)
  List.iteri
    (fun i b ->
      match Spanner.coordinates basis b.Basis.vector with
      | None -> Alcotest.fail "basis vector outside its own span"
      | Some co ->
        Array.iteri
          (fun j x ->
            Alcotest.(check (float 1e-9))
              "unit coordinate"
              (if i = j then 1.0 else 0.0)
              x)
          co)
    basis

let test_spanner_two_spanner () =
  let u, g = bitcount_setup 4 in
  let basis = conv (Basis.extract u g) in
  let candidates = feasible_with_tests u g in
  let spanner = Spanner.barycentric basis ~candidates g in
  Alcotest.(check int) "size preserved" (List.length basis)
    (List.length spanner);
  let q = Spanner.max_coordinate spanner ~candidates g in
  Alcotest.(check bool)
    (Printf.sprintf "c-spanner quality %.2f <= 2" q)
    true (q <= 2.0 +. 1e-6);
  (* the spanner must still span every feasible path *)
  List.iter
    (fun (path, _) ->
      if Spanner.coordinates spanner (Paths.vector g path) = None then
        Alcotest.fail "spanner lost span")
    candidates

let test_spanner_no_worse_than_greedy () =
  let u, g = bitcount_setup 4 in
  let basis = conv (Basis.extract u g) in
  let candidates = feasible_with_tests u g in
  let spanner = Spanner.barycentric basis ~candidates g in
  Alcotest.(check bool) "max coordinate not increased" true
    (Spanner.max_coordinate spanner ~candidates g
    <= Spanner.max_coordinate basis ~candidates g +. 1e-6)

let test_spanner_prediction_still_exact () =
  let u, g = bitcount_setup 4 in
  let m = Cfg.num_edges g in
  let weights = Array.init m (fun i -> 1 + ((i * 5) mod 11)) in
  let platform = linear_platform u g weights in
  let t = conv (Gt.analyze ~bound:4 ~seed:5 ~platform (B.bitcount ())) in
  let t = Gt.refine_with_spanner ~seed:5 ~platform t in
  Paths.enumerate g
  |> Seq.iter (fun path ->
         if is_feasible u g path then begin
           let expected =
             float_of_int (List.fold_left (fun a e -> a + weights.(e)) 0 path)
           in
           match Gt.predict_path t path with
           | None -> Alcotest.fail "path not predictable after refinement"
           | Some got ->
             Alcotest.(check (float 1e-6)) "exact prediction" expected got
         end)

(* ------------------------------------------------------------------ *)
(* End to end against the cycle-accurate platform                      *)
(* ------------------------------------------------------------------ *)

let modexp_analysis bits =
  let p = B.modexp ~bits () in
  let pf = Platform.create p in
  let platform = Platform.time pf in
  let t =
    conv (Gt.analyze ~bound:bits ~seed:7 ~pin:[ ("base", 123) ] ~platform p)
  in
  (t, platform)

let test_wcet_modexp4 () =
  let t, platform = modexp_analysis 4 in
  let w = Gt.wcet t ~platform in
  (* ground truth: measure every exponent exhaustively *)
  let true_max =
    List.fold_left
      (fun acc e -> max acc (platform [ ("base", 123); ("exp", e) ]))
      0
      (List.init 16 (fun i -> i))
  in
  Alcotest.(check int) "WCET test case achieves the true maximum" true_max
    w.Gt.measured_cycles;
  (* the worst case sets all exponent bits *)
  Alcotest.(check int) "worst exponent is 15" 15
    (List.assoc "exp" w.Gt.test land 15)

let test_answer_ta () =
  let t, platform = modexp_analysis 4 in
  let w = Gt.wcet t ~platform in
  (match Gt.answer_ta t ~platform ~tau:w.Gt.measured_cycles with
  | `Yes -> ()
  | `No _ -> Alcotest.fail "tau = WCET must be YES");
  match Gt.answer_ta t ~platform ~tau:(w.Gt.measured_cycles - 1) with
  | `No test ->
    Alcotest.(check bool) "witness exceeds tau" true
      (platform test > w.Gt.measured_cycles - 1)
  | `Yes -> Alcotest.fail "tau < WCET must be NO"

let test_prediction_accuracy_modexp4 () =
  let t, platform = modexp_analysis 4 in
  let paths = Gt.feasible_paths t in
  Alcotest.(check int) "16 feasible paths" 16 (List.length paths);
  List.iter
    (fun (path, test) ->
      let measured = float_of_int (platform test) in
      match Gt.predict_path t path with
      | None -> Alcotest.fail "unpredictable feasible path"
      | Some predicted ->
        let err = abs_float (predicted -. measured) /. measured in
        if err > 0.05 then
          Alcotest.failf "prediction off by %.1f%% (%.0f vs %.0f)" (100. *. err)
            predicted measured)
    paths

let test_more_trials_reduce_noise_error () =
  (* with a randomized starting environment, measurements are noisy; the
     probabilistic-soundness story of Section 3.3 needs more trials to
     tighten the model. Compare mean error at 1 vs 40 trials/path against
     a long-run average ground truth. *)
  let p = B.modexp ~bits:4 () in
  (* tiny caches with a heavy miss penalty make the adversarial starting
     state matter *)
  let cachecfg = { Microarch.Cache.lines = 4; line_bytes = 8; miss_penalty = 40 } in
  let pf =
    Platform.create ~icache:cachecfg ~dcache:cachecfg ~noise_seed:9 p
  in
  let platform = Platform.time pf in
  let truth test =
    let n = 400 in
    let s = ref 0 in
    for _ = 1 to n do
      s := !s + platform test
    done;
    float_of_int !s /. float_of_int n
  in
  let mean_err t =
    let paths = Gt.feasible_paths t in
    let errs =
      List.filter_map
        (fun (path, test) ->
          Option.map
            (fun pred -> abs_float (pred -. truth test))
            (Gt.predict_path t path))
        paths
    in
    List.fold_left ( +. ) 0.0 errs /. float_of_int (List.length errs)
  in
  (* average the model error across several learner seeds *)
  let avg_err trials =
    let seeds = [ 1; 2; 3; 4; 5 ] in
    let total =
      List.fold_left
        (fun acc seed ->
          acc
          +. mean_err
               (conv
                  (Gt.analyze ~bound:4 ~trials ~seed ~pin:[ ("base", 123) ]
                     ~platform p)))
        0.0 seeds
    in
    total /. float_of_int (List.length seeds)
  in
  let e_few = avg_err 5 and e_many = avg_err 300 in
  Alcotest.(check bool)
    (Printf.sprintf "more trials help (%.1f -> %.1f cycles)" e_few e_many)
    true (e_many < e_few)

let test_hypothesis_quality () =
  (* exactly linear platform: mu_hat must vanish and the margin hold *)
  let u, g = bitcount_setup 4 in
  let m = Cfg.num_edges g in
  let weights = Array.init m (fun i -> 1 + ((i * 7) mod 13)) in
  let platform = linear_platform u g weights in
  let t = conv (Gt.analyze ~bound:4 ~seed:3 ~platform (B.bitcount ())) in
  let q = Gt.hypothesis_quality t ~platform in
  Alcotest.(check (float 1e-6)) "mu_hat = 0 when H holds exactly" 0.0 q.Gt.mu_hat;
  Alcotest.(check bool) "margin ok" true q.Gt.margin_ok;
  Alcotest.(check int) "all paths checked" 16 q.Gt.paths_checked;
  (* real platform: mu_hat is nonzero but small relative to the times *)
  let t, platform = modexp_analysis 4 in
  let q = Gt.hypothesis_quality t ~platform in
  Alcotest.(check bool) "perturbation detected" true (q.Gt.mu_hat > 0.0);
  Alcotest.(check bool) "perturbation small" true (q.Gt.mu_hat < 50.0)

let test_distributions_close () =
  let t, platform = modexp_analysis 4 in
  let pred = Gt.predicted_distribution t in
  let meas = Gt.measured_distribution t ~platform in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 in
  Alcotest.(check int) "same mass" (total meas) (total pred);
  let mean d =
    let s = List.fold_left (fun a (v, n) -> a +. float_of_int (v * n)) 0.0 d in
    s /. float_of_int (total d)
  in
  let dm = abs_float (mean pred -. mean meas) /. mean meas in
  if dm > 0.02 then Alcotest.failf "distribution means differ by %.2f%%" (100. *. dm)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "gametime"
    [
      ( "rational",
        Alcotest.test_case "basics" `Quick test_rational_basics
        :: qsuite [ prop_rational_field ] );
      ( "linalg",
        [
          Alcotest.test_case "span and rank" `Quick test_span_rank;
          Alcotest.test_case "solve" `Quick test_solve_exact;
        ]
        @ qsuite [ prop_solve_recovers_combination ] );
      ( "basis",
        [
          Alcotest.test_case "bitcount basis" `Quick test_basis_bitcount;
          Alcotest.test_case "basis spans feasible paths" `Quick
            test_basis_spans_feasible_paths;
          Alcotest.test_case "modexp has 9 basis paths (paper)" `Slow
            test_modexp_nine_basis_paths;
        ] );
      ( "learner",
        [
          Alcotest.test_case "exact on a linear platform" `Quick
            test_learner_exact_on_linear_platform;
        ] );
      ( "spanner",
        [
          Alcotest.test_case "basis coordinates are units" `Quick
            test_spanner_coordinates;
          Alcotest.test_case "produces a 2-spanner" `Quick
            test_spanner_two_spanner;
          Alcotest.test_case "no worse than greedy" `Quick
            test_spanner_no_worse_than_greedy;
          Alcotest.test_case "prediction still exact after refinement" `Quick
            test_spanner_prediction_still_exact;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "WCET on modexp4" `Quick test_wcet_modexp4;
          Alcotest.test_case "problem TA" `Quick test_answer_ta;
          Alcotest.test_case "per-path prediction accuracy" `Quick
            test_prediction_accuracy_modexp4;
          Alcotest.test_case "distribution shape" `Quick test_distributions_close;
          Alcotest.test_case "trials vs environment noise" `Quick
            test_more_trials_reduce_noise_error;
          Alcotest.test_case "hypothesis quality estimators" `Quick
            test_hypothesis_quality;
        ] );
    ]
