(* Tests for the live telemetry plane: rate computation over snapshot
   pairs (including counter resets mid-window), the ticker's bounded
   ring, the stats endpoint round trip from another domain, the stall
   watchdog, the progress-event contract, and the scheduler metrics the
   pool reports. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Live = Obs.Live

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let events_named name records =
  List.filter
    (fun r ->
      Option.bind (Json.member "kind" r) Json.to_str = Some "event"
      && Option.bind (Json.member "name" r) Json.to_str = Some name)
    records

let attr_of k r =
  Option.bind (Json.member "attrs" r) (fun a -> Json.member k a)

(* ------------------------------------------------------------------ *)
(* rates                                                               *)
(* ------------------------------------------------------------------ *)

let test_rates_between () =
  let sample ts metrics = { Live.ts; metrics } in
  let prev =
    sample 10.0 [ ("a", Metrics.Counter 100); ("g", Metrics.Gauge 5.0) ]
  in
  let cur =
    sample 12.0
      [
        ("a", Metrics.Counter 300); ("b", Metrics.Counter 50);
        ("g", Metrics.Gauge 9.0); ("z", Metrics.Counter 0);
      ]
  in
  let rates = Live.rates_between ~prev ~cur in
  Alcotest.(check (float 1e-9)) "delta over dt" 100.0 (List.assoc "a" rates);
  (* a counter born inside the window contributes its whole value *)
  Alcotest.(check (float 1e-9)) "new counter" 25.0 (List.assoc "b" rates);
  Alcotest.(check bool) "gauges have no rate" false (List.mem_assoc "g" rates);
  Alcotest.(check bool) "untouched counters omitted" false
    (List.mem_assoc "z" rates);
  (* a reset inside the window: growth since the reset, never negative *)
  let after_reset = sample 14.0 [ ("a", Metrics.Counter 40) ] in
  Alcotest.(check (float 1e-9))
    "reset mid-window" 10.0
    (List.assoc "a" (Live.rates_between ~prev ~cur:after_reset));
  Alcotest.(check bool) "non-positive dt yields nothing" true
    (Live.rates_between ~prev:cur ~cur:prev = [])

(* ------------------------------------------------------------------ *)
(* ticker ring                                                         *)
(* ------------------------------------------------------------------ *)

let test_ticker_ring () =
  Obs.reset ();
  let c = Metrics.counter "live.test_ring" in
  (* interval far in the future: only the initial sample and our manual
     ticks land in the ring *)
  let t = Live.start ~interval_ms:600_000 ~capacity:3 () in
  for i = 1 to 4 do
    Metrics.add c 10;
    ignore i;
    Live.tick_now t
  done;
  let samples = Live.samples t in
  Alcotest.(check int) "ring keeps the newest capacity" 3
    (List.length samples);
  let ts = List.map (fun s -> s.Live.ts) samples in
  Alcotest.(check bool) "timestamps strictly increase" true
    (List.sort_uniq compare ts = ts);
  (match Live.latest t with
  | Some s -> (
    match List.assoc_opt "live.test_ring" s.Live.metrics with
    | Some (Metrics.Counter v) ->
      Alcotest.(check int) "latest sees the final value" 40 v
    | _ -> Alcotest.fail "counter missing from latest sample")
  | None -> Alcotest.fail "no latest sample");
  Alcotest.(check bool) "window spans the ring" true
    (Live.window_seconds t >= 0.0);
  (* a registry reset between ticks must not produce negative rates *)
  Metrics.reset ();
  Metrics.add c 3;
  Live.tick_now t;
  let samples = Live.samples t in
  let n = List.length samples in
  let prev = List.nth samples (n - 2) and cur = List.nth samples (n - 1) in
  (match List.assoc_opt "live.test_ring" (Live.rates_between ~prev ~cur) with
  | None -> Alcotest.fail "no rate after reset"
  | Some rate ->
    Alcotest.(check bool) "rate is non-negative" true (rate >= 0.0);
    let dt = cur.Live.ts -. prev.Live.ts in
    Alcotest.(check int) "delta is the post-reset growth" 3
      (int_of_float (Float.round (rate *. dt))));
  Live.stop t;
  Live.stop t;
  (* stop is idempotent *)
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* stats endpoint                                                      *)
(* ------------------------------------------------------------------ *)

let test_statsd_roundtrip () =
  Obs.reset ();
  Obs.enable ();
  let c = Metrics.counter "live.socket_hits" in
  Metrics.add c 42;
  let lp = Obs.Loop.start "livetest" in
  Obs.Loop.iteration lp 3;
  let ticker = Live.start ~interval_ms:600_000 () in
  Live.tick_now ticker;
  let path = Filename.temp_file "sciduction_stats" ".sock" in
  (match Obs.Statsd.start ~path ~ticker () with
  | Error msg -> Alcotest.fail msg
  | Ok server ->
    (* scrape from a second domain, the way a real client process
       would hit the socket from outside the run *)
    let fetch target =
      Domain.join
        (Domain.spawn (fun () -> Obs.Statsd.fetch ~path ~target ()))
    in
    (match fetch "/json" with
    | Error msg -> Alcotest.fail msg
    | Ok body -> (
      match Json.parse (String.trim body) with
      | Error msg -> Alcotest.fail ("endpoint JSON does not parse: " ^ msg)
      | Ok doc ->
        Alcotest.(check bool) "schema tag" true
          (Option.bind (Json.member "schema" doc) Json.to_str
          = Some "sciduction.stats/1");
        (match
           Option.bind (Json.member "metrics" doc) (Json.member "live.socket_hits")
         with
        | Some (Json.Int 42) -> ()
        | _ -> Alcotest.fail "counter missing from /json");
        (match Json.member "loops" doc with
        | Some (Json.List [ loop ]) ->
          Alcotest.(check bool) "loop name served" true
            (Option.bind (Json.member "loop" loop) Json.to_str
            = Some "livetest");
          Alcotest.(check bool) "loop iteration served" true
            (Option.bind (Json.member "iteration" loop) Json.to_int = Some 3)
        | _ -> Alcotest.fail "expected exactly one active loop")));
    (match fetch "/metrics" with
    | Error msg -> Alcotest.fail msg
    | Ok body ->
      Alcotest.(check bool) "prometheus counter" true
        (contains body "sciduction_live_socket_hits 42");
      Alcotest.(check bool) "prometheus loop gauge" true
        (contains body "sciduction_loop_iteration{loop=\"livetest\"} 3"));
    (match fetch "/no-such-page" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "unknown target should be a 404");
    Obs.Statsd.stop server;
    Alcotest.(check bool) "socket file removed on stop" false
      (Sys.file_exists path);
    Obs.Statsd.stop server (* idempotent *));
  Live.stop ticker;
  Obs.Loop.finish lp;
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* stall watchdog                                                      *)
(* ------------------------------------------------------------------ *)

let test_watchdog_stall_then_recover () =
  Obs.reset ();
  let sink, records = Obs.memory_sink () in
  Obs.add_sink sink;
  Obs.enable ();
  let lp = Obs.Loop.start "wdog" in
  Obs.Loop.iteration lp 0;
  (* fresh loop inside a generous window: nothing to flag *)
  Obs.check_stalls ~window:60.0;
  Unix.sleepf 0.02;
  Obs.check_stalls ~window:0.01;
  (* already flagged: not reported again while still stalled *)
  Obs.check_stalls ~window:0.01;
  (* an advancing iteration clears the flag... *)
  Obs.Loop.iteration lp 1;
  Unix.sleepf 0.02;
  (* ...so a second quiet spell is a second, distinct stall *)
  Obs.check_stalls ~window:0.01;
  Obs.Loop.finish lp;
  (* finished loops can never stall *)
  Obs.check_stalls ~window:0.000001;
  Obs.shutdown ();
  let stalls = events_named "stall_detected" (records ()) in
  Alcotest.(check int) "stall, recovery, stall" 2 (List.length stalls);
  List.iter
    (fun r ->
      Alcotest.(check bool) "stall names its loop" true
        (Option.bind (Json.member "loop" r) Json.to_str = Some "wdog");
      match Option.bind (attr_of "seconds_stalled" r) Json.to_float with
      | Some s -> Alcotest.(check bool) "positive stall age" true (s > 0.0)
      | None -> Alcotest.fail "stall without seconds_stalled")
    stalls;
  Alcotest.(check int) "stalls counted in the registry" 2
    (Metrics.counter_value (Metrics.counter "obs.stalls_detected"));
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* progress events                                                     *)
(* ------------------------------------------------------------------ *)

let test_progress_reports_max_iteration () =
  Obs.reset ();
  let sink, records = Obs.memory_sink () in
  Obs.add_sink sink;
  Obs.enable ();
  Obs.set_progress_interval 1e-9;
  let lp = Obs.Loop.start "prog" in
  (* a parallel sweep can emit its fetch-and-add indices out of order;
     the sleeps make each iteration's timestamp pass the tiny interval
     so every iteration yields a progress record *)
  List.iter
    (fun i ->
      Unix.sleepf 0.002;
      Obs.Loop.iteration lp i ~attrs:[ ("depth", Obs.Int (10 * i)) ])
    [ 0; 2; 1; 5; 4 ];
  Obs.Loop.finish lp;
  Obs.shutdown ();
  let prog = events_named "progress" (records ()) in
  let reported =
    List.map
      (fun r ->
        match Option.bind (attr_of "iteration" r) Json.to_int with
        | Some i -> i
        | None -> Alcotest.fail "progress without iteration")
      prog
  in
  (* max-so-far of [0; 2; 1; 5; 4], monotone despite the disorder *)
  Alcotest.(check (list int)) "progress reports the running max"
    [ 0; 2; 2; 5; 5 ] reported;
  (* the iteration's own attributes ride along *)
  (match prog with
  | first :: _ -> (
    match Option.bind (attr_of "depth" first) Json.to_int with
    | Some 0 -> ()
    | _ -> Alcotest.fail "progress lost the iteration attrs")
  | [] -> Alcotest.fail "no progress records");
  Obs.reset ()

let test_progress_rate_limited () =
  Obs.reset ();
  let sink, records = Obs.memory_sink () in
  Obs.add_sink sink;
  Obs.enable ();
  (* a huge interval: only the first iteration of the run reports *)
  Obs.set_progress_interval 1000.0;
  let lp = Obs.Loop.start "prog" in
  for i = 0 to 19 do
    Obs.Loop.iteration lp i
  done;
  Obs.Loop.finish lp;
  Obs.shutdown ();
  Alcotest.(check int) "at most one progress per interval" 1
    (List.length (events_named "progress" (records ())));
  Obs.reset ()

let test_progress_off_by_default () =
  Obs.reset ();
  let sink, records = Obs.memory_sink () in
  Obs.add_sink sink;
  Obs.enable ();
  let lp = Obs.Loop.start "silent" in
  for i = 0 to 9 do
    Obs.Loop.iteration lp i
  done;
  Obs.Loop.finish lp;
  Obs.shutdown ();
  Alcotest.(check int) "no progress channel unless asked for" 0
    (List.length (events_named "progress" (records ())));
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* scheduler metrics                                                   *)
(* ------------------------------------------------------------------ *)

let test_par_metrics () =
  Obs.reset ();
  let results =
    Par.Pool.with_pool ~jobs:2 (fun p ->
        let futs = List.init 8 (fun i -> Par.submit p (fun () -> i * i)) in
        Par.await_all p futs)
  in
  Alcotest.(check (list int)) "pool still computes"
    (List.init 8 (fun i -> i * i))
    results;
  let cval name = Metrics.counter_value (Metrics.counter name) in
  Alcotest.(check int) "every submit counted" 8 (cval "par.tasks_submitted");
  Alcotest.(check int) "every task completed" 8 (cval "par.tasks_completed");
  (* each task ran exactly once: either help-run by the submitter
     ("stolen") or on a worker (one busy observation) *)
  let busy =
    match List.assoc_opt "par.worker_busy_us" (Metrics.snapshot ()) with
    | Some (Metrics.Histogram { count; _ }) -> count
    | _ -> 0
  in
  Alcotest.(check int) "stolen + worker-run covers the batch" 8
    (cval "par.tasks_stolen" + busy);
  Alcotest.(check bool) "queue drained" true
    (Metrics.gauge_value (Metrics.gauge "par.queue_depth") = 0.0);
  Obs.reset ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "live"
    [
      ( "rates",
        [
          Alcotest.test_case "rates_between" `Quick test_rates_between;
          Alcotest.test_case "ticker ring" `Quick test_ticker_ring;
        ] );
      ( "statsd",
        [
          Alcotest.test_case "socket round trip" `Quick test_statsd_roundtrip;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "stall then recover" `Quick
            test_watchdog_stall_then_recover;
        ] );
      ( "progress",
        [
          Alcotest.test_case "reports max iteration" `Quick
            test_progress_reports_max_iteration;
          Alcotest.test_case "rate limited" `Quick test_progress_rate_limited;
          Alcotest.test_case "off by default" `Quick
            test_progress_off_by_default;
        ] );
      ( "scheduler",
        [ Alcotest.test_case "pool metrics" `Quick test_par_metrics ] );
    ]
