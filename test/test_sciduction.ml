(* Tests for the sciduction framework: oracle combinators, soundness
   reports, Table 1 rendering, and a worked end-to-end instance tying the
   framework types to the OGIS application. *)

module Framework = Sciduction.Framework
module Oracles = Sciduction.Oracles
module Soundness = Sciduction.Soundness
module Instances = Sciduction.Instances

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

let test_counting () =
  let c = Oracles.counting (fun x -> x * 2) in
  Alcotest.(check int) "initially zero" 0 (c.Oracles.count ());
  Alcotest.(check int) "answer" 14 (c.Oracles.oracle 7);
  ignore (c.Oracles.oracle 1);
  Alcotest.(check int) "two queries" 2 (c.Oracles.count ());
  c.Oracles.reset ();
  Alcotest.(check int) "reset" 0 (c.Oracles.count ())

let test_memoizing () =
  let calls = ref 0 in
  let f x =
    incr calls;
    x + 1
  in
  let m = Oracles.memoizing f in
  Alcotest.(check int) "first" 6 (m 5);
  Alcotest.(check int) "cached" 6 (m 5);
  Alcotest.(check int) "underlying called once" 1 !calls;
  Alcotest.(check int) "different query" 8 (m 7);
  Alcotest.(check int) "called twice total" 2 !calls

let test_log_to () =
  let log = ref [] in
  let f = Oracles.log_to log (fun x -> -x) in
  ignore (f 1);
  ignore (f 2);
  Alcotest.(check (list (pair int int))) "log order" [ (2, -2); (1, -1) ] !log

(* ------------------------------------------------------------------ *)
(* Soundness                                                           *)
(* ------------------------------------------------------------------ *)

let test_conclude () =
  let r =
    Soundness.conclude ~hypothesis:"guards are hyperboxes"
      (Soundness.Proved "monotone dynamics on a finite grid")
  in
  Alcotest.(check bool) "sound conclusion" true (contains r.Soundness.conclusion "sound");
  let r =
    Soundness.conclude ~hypothesis:"library sufficient"
      (Soundness.Refuted "cex found")
  in
  Alcotest.(check bool) "warns" true
    (contains r.Soundness.conclusion "invalid")

let test_run_test () =
  let ok = Soundness.run_test ~hypothesis:"h" ~method_:"equivalence check" (fun () -> Ok ()) in
  (match ok.Soundness.validity with
  | Soundness.Tested { passed = true; _ } -> ()
  | _ -> Alcotest.fail "expected passed test");
  let bad =
    Soundness.run_test ~hypothesis:"h" ~method_:"equivalence check" (fun () ->
        Error [ 1; 2 ])
  in
  match bad.Soundness.validity with
  | Soundness.Tested { passed = false; _ } -> ()
  | _ -> Alcotest.fail "expected failed test"

(* ------------------------------------------------------------------ *)
(* Decision trees                                                      *)
(* ------------------------------------------------------------------ *)

module Dtree = Sciduction.Dtree

let all_inputs n =
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> code land (1 lsl i) <> 0))

let learn_fn n f =
  let examples = List.map (fun x -> (x, f x)) (all_inputs n) in
  (Dtree.learn ~nfeatures:n examples, examples)

let test_dtree_learns_exactly () =
  List.iter
    (fun (name, n, f) ->
      let tree, examples = learn_fn n f in
      Alcotest.(check (float 1e-9)) (name ^ " accuracy") 1.0
        (Dtree.training_accuracy tree examples))
    [
      ("single feature", 3, fun x -> x.(1));
      ("and", 2, fun x -> x.(0) && x.(1));
      ("xor", 2, fun x -> x.(0) <> x.(1));
      ("majority of 3", 3, fun x ->
        (if x.(0) then 1 else 0) + (if x.(1) then 1 else 0)
        + (if x.(2) then 1 else 0)
        >= 2);
    ]

let test_dtree_ignores_irrelevant_features () =
  (* only feature 2 matters; the tree should use just that one *)
  let tree, _ = learn_fn 5 (fun x -> x.(2)) in
  Alcotest.(check (list int)) "features used" [ 2 ] (Dtree.features_used tree);
  Alcotest.(check int) "depth 1" 1 (Dtree.depth tree)

let test_dtree_constant_labels () =
  let tree, _ = learn_fn 3 (fun _ -> true) in
  Alcotest.(check int) "single leaf" 1 (Dtree.size tree);
  Alcotest.(check bool) "classifies true" true
    (Dtree.classify tree [| false; true; false |])

let test_dtree_majority_on_contradictions () =
  (* identical inputs with conflicting labels: majority wins *)
  let x = [| true |] in
  let tree = Dtree.learn ~nfeatures:1 [ (x, true); (x, true); (x, false) ] in
  Alcotest.(check bool) "majority" true (Dtree.classify tree x)

let test_dtree_max_depth () =
  (* xor over 4 features needs depth 4; cap at 2 and check it respects it *)
  let f x = x.(0) <> x.(1) <> x.(2) <> x.(3) in
  let examples = List.map (fun x -> (x, f x)) (all_inputs 4) in
  let tree = Dtree.learn ~nfeatures:4 ~max_depth:2 examples in
  Alcotest.(check bool) "depth capped" true (Dtree.depth tree <= 2)

(* ------------------------------------------------------------------ *)
(* Instances and Table 1                                               *)
(* ------------------------------------------------------------------ *)

let test_table1 () =
  Alcotest.(check int) "three applications" 3 (List.length Instances.table1);
  Alcotest.(check int) "three 2.4 instances" 3 (List.length Instances.section24);
  let rendered = Format.asprintf "%a" Instances.pp_table Instances.table1 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains rendered needle))
    [ "Timing analysis"; "hyperboxes"; "distinguishing inputs"; "SMT" ]

(* a live instance: OGIS on the paper's P2 benchmark, at width 8 *)
let test_live_ogis_instance () =
  let width = 8 in
  let library = Ogis.Component.fig8_p2 in
  let spec = { Ogis.Encode.width; ninputs = 1; noutputs = 1; library } in
  let oracle =
    Oracles.counting
      (Ogis.Deobfuscate.oracle_of_program
         (Prog.Benchmarks.multiply45_obs_w ~width))
  in
  let hypothesis =
    {
      Framework.h_name = "loop-free over {shl2, shl3, add, add}";
      h_description = "straight-line compositions of the component library";
      member = (fun (p : Ogis.Straightline.t) -> List.length p.Ogis.Straightline.lines = 4);
      strict = true;
      primitive =
        Some
          (fun p (ins, outs) -> Ogis.Straightline.eval p ins = outs);
    }
  in
  let inductive =
    {
      Framework.i_name = "distinguishing-input learner";
      i_description = "OGIS loop over the I/O oracle";
      infer =
        (fun seeds ->
          match
            Ogis.Synth.synthesize ~initial_inputs:(List.map fst seeds) spec
              oracle.Oracles.oracle
          with
          | Budget.Converged (Ogis.Synth.Synthesized (p, _)) -> Some p
          | _ -> None);
    }
  in
  let deductive =
    {
      Framework.d_name = "QF_BV SMT solver";
      d_description = "candidate + distinguishing-input queries";
      lightweight =
        Framework.Lower_complexity
          "NP queries instead of the Sigma2 synthesis problem";
      solve = (fun fs -> Smt.Solver.check_formulas fs);
    }
  in
  let inst =
    {
      Framework.name = "component-based synthesis";
      problem = "deobfuscate multiply45Obs";
      hypothesis;
      inductive;
      deductive;
      soundness = Framework.Sound_if_hypothesis_valid;
    }
  in
  (* run the instance end to end through the framework record *)
  (match inst.Framework.inductive.Framework.infer [ ([ 0 ], [ 0 ]); ([ 1 ], [ 45 ]) ] with
  | None -> Alcotest.fail "instance failed to synthesize"
  | Some p ->
    Alcotest.(check bool) "artifact in C_H" true
      (inst.Framework.hypothesis.Framework.member p);
    Alcotest.(check (list int)) "computes 45y" [ (45 * 3) land 0xFF ]
      (Ogis.Straightline.eval p [ 3 ]));
  Alcotest.(check bool) "oracle was consulted" true (oracle.Oracles.count () > 0);
  let rendered = Format.asprintf "%a" Framework.describe inst in
  Alcotest.(check bool) "description mentions soundness" true
    (contains rendered "sound if valid(H)")

let () =
  Alcotest.run "sciduction"
    [
      ( "oracles",
        [
          Alcotest.test_case "counting" `Quick test_counting;
          Alcotest.test_case "memoizing" `Quick test_memoizing;
          Alcotest.test_case "logging" `Quick test_log_to;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "conclude" `Quick test_conclude;
          Alcotest.test_case "run_test" `Quick test_run_test;
        ] );
      ( "dtree",
        [
          Alcotest.test_case "learns boolean functions exactly" `Quick
            test_dtree_learns_exactly;
          Alcotest.test_case "ignores irrelevant features" `Quick
            test_dtree_ignores_irrelevant_features;
          Alcotest.test_case "constant labels" `Quick test_dtree_constant_labels;
          Alcotest.test_case "majority on contradictions" `Quick
            test_dtree_majority_on_contradictions;
          Alcotest.test_case "max depth respected" `Quick test_dtree_max_depth;
        ] );
      ( "instances",
        [
          Alcotest.test_case "table 1" `Quick test_table1;
          Alcotest.test_case "live OGIS instance" `Quick test_live_ogis_instance;
        ] );
    ]
