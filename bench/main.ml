(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations called out in DESIGN.md and a Bechamel
   micro-benchmark suite over the computational kernels.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe fig6         -- one experiment
     (experiments: fig6 fig8 hd eq3 eq4 fig10 optimal table1 ablate
      perf par micro; `perf` compares fresh-solver loops against the
      persistent incremental sessions and writes BENCH_solver.json;
      `par` reruns the portfolio-SAT and BMC suites sequentially and
      under `--jobs N` worker domains and writes BENCH_par.json)

   Absolute numbers (cycle counts, wall-clock) depend on our simulated
   platform and homemade solver; EXPERIMENTS.md records the comparison
   against the paper's reported values. *)

module Bv = Smt.Bv
module B = Prog.Benchmarks
module Gt = Gametime.Analysis
module GtBasis = Gametime.Basis
module Platform = Microarch.Platform
module Box = Switchsynth.Box
module Fixpoint = Switchsynth.Fixpoint
module TS = Switchsynth.Transmission_synth
module T = Hybrid.Transmission
module Simulate = Hybrid.Simulate

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let subsection title = Format.printf "@.-- %s --@." title

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* every run in this harness is unbudgeted unless an experiment says
   otherwise, so exhaustion is a bug, not a result *)
let conv = function
  | Budget.Converged x -> x
  | Budget.Exhausted _ -> failwith "unbudgeted run exhausted"

(* ================================================================== *)
(* E1 / Fig. 6: modexp execution-time distribution                     *)
(* ================================================================== *)

let fig6 () =
  section "E1 (Fig. 6): GameTime on modexp, 8-bit exponent";
  let program = B.modexp () in
  let pf = Platform.create program in
  let platform = Platform.time pf in
  let (t : Gt.t), elapsed =
    timed (fun () ->
        conv
          (Gt.analyze ~bound:8 ~seed:2012 ~pin:[ ("base", 123) ] ~platform
             program))
  in
  Format.printf "analysis time: %.1fs (basis extraction + learning)@." elapsed;
  Format.printf "basis paths: %d    (paper: 9)@." (List.length t.Gt.basis);
  (* GameTime proper selects a barycentric-spanner basis (Seshia-Rakhlin);
     refine the greedy one before predicting *)
  let t = Gt.refine_with_spanner ~seed:2012 ~platform t in
  let paths = Gt.feasible_paths t in
  Format.printf "feasible program paths: %d    (paper: 256)@."
    (List.length paths);
  (* per-path prediction error *)
  let per_path =
    List.filter_map
      (fun (path, test) ->
        Option.map
          (fun pred -> (test, pred, platform test))
          (Gt.predict_path t path))
      paths
  in
  let mean_err =
    List.fold_left
      (fun a (_, p, m) -> a +. (abs_float (p -. float_of_int m) /. float_of_int m))
      0.0 per_path
    /. float_of_int (List.length per_path)
  in
  Format.printf "mean per-path prediction error: %.2f%%    (paper: 'perfect')@."
    (100.0 *. mean_err);
  (* WCET *)
  let w = Gt.wcet t ~platform in
  let true_max =
    List.fold_left
      (fun acc e -> max acc (platform [ ("base", 123); ("exp", e) ]))
      0
      (List.init 256 Fun.id)
  in
  Format.printf
    "WCET: predicted %.0f, measured at witness %d, exhaustive max %d@."
    w.Gt.predicted_cycles w.Gt.measured_cycles true_max;
  Format.printf "WCET witness exponent: %d    (paper: 255)@."
    (List.assoc "exp" w.Gt.test land 255);
  (* conditional soundness: how good is the (w, pi) hypothesis here? *)
  let q = Gt.hypothesis_quality t ~platform in
  Format.printf
    "structure hypothesis: mu_hat = %.1f cycles, rho_hat = %.1f, margin %s@."
    q.Gt.mu_hat q.Gt.rho_hat
    (if q.Gt.margin_ok then "holds (rho > mu)" else "VIOLATED");
  Format.printf "%a@."
    Sciduction.Soundness.pp
    (Sciduction.Soundness.conclude
       ~hypothesis:"(w, pi) path-linear timing with bounded perturbation"
       (Sciduction.Soundness.Tested
          { method_ = "exhaustive per-path residual measurement";
            passed = q.Gt.margin_ok }));
  (* the Fig. 6 histogram, in 25-cycle buckets *)
  subsection "distribution of execution times (25-cycle buckets)";
  let bucket v = v / 25 * 25 in
  let histo sel =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun row ->
        let b = bucket (sel row) in
        Hashtbl.replace tbl b (1 + Option.value (Hashtbl.find_opt tbl b) ~default:0))
      per_path;
    tbl
  in
  let measured = histo (fun (_, _, m) -> m) in
  let predicted = histo (fun (_, p, _) -> int_of_float (Float.round p)) in
  let keys =
    List.sort_uniq compare
      (Hashtbl.fold (fun k _ a -> k :: a) measured []
      @ Hashtbl.fold (fun k _ a -> k :: a) predicted [])
  in
  Format.printf "%8s  %9s %9s@." "cycles" "measured" "predicted";
  let chi = ref 0.0 in
  List.iter
    (fun k ->
      let m = Option.value (Hashtbl.find_opt measured k) ~default:0 in
      let p = Option.value (Hashtbl.find_opt predicted k) ~default:0 in
      chi := !chi +. (float_of_int ((m - p) * (m - p)) /. float_of_int (max 1 (m + p)));
      Format.printf "%8d  %9d %9d  %s|%s@." k m p (String.make (m / 2) '#')
        (String.make (p / 2) '*'))
    keys;
  Format.printf "histogram distance (chi^2-like): %.1f over %d paths@." !chi
    (List.length per_path)

(* ================================================================== *)
(* E2/E3 / Fig. 8: deobfuscation                                       *)
(* ================================================================== *)

let fig8 () =
  section "E2/E3 (Fig. 8): deobfuscation by oracle-guided synthesis";
  let run name program library spec_fn =
    subsection name;
    match Ogis.Deobfuscate.run ~library program with
    | Error _ -> Format.printf "!! synthesis failed@."
    | Ok r ->
      Format.printf "%a@." Ogis.Straightline.pp r.Ogis.Deobfuscate.clean;
      let spec =
        {
          Ogis.Encode.width = program.Prog.Lang.width;
          ninputs = List.length program.Prog.Lang.inputs;
          noutputs = List.length program.Prog.Lang.outputs;
          library;
        }
      in
      let verified =
        match
          Ogis.Synth.verify_against spec r.Ogis.Deobfuscate.clean ~spec_fn
        with
        | Ok () -> "verified equivalent"
        | Error _ -> "NOT EQUIVALENT"
      in
      Format.printf
        "%s; %.3fs, %d oracle queries, %d rounds    (paper: < 0.5 s)@."
        verified r.Ogis.Deobfuscate.seconds
        r.Ogis.Deobfuscate.stats.Ogis.Synth.oracle_queries
        r.Ogis.Deobfuscate.stats.Ogis.Synth.iterations
  in
  let width = 16 in
  run "P1: interchange (16-bit)"
    (B.interchange_obs_w ~width)
    Ogis.Component.fig8_p1
    (function [ s; d ] -> [ d; s ] | _ -> assert false);
  run "P2: multiply by 45 (16-bit)"
    (B.multiply45_obs_w ~width)
    Ogis.Component.fig8_p2
    (function
      | [ y ] -> [ Bv.bmul y (Bv.const ~width 45) ]
      | _ -> assert false)

(* ================================================================== *)
(* Hacker's Delight suite (the ICSE 2010 evaluation Sec. 4 builds on)   *)
(* ================================================================== *)

let hd () =
  section "Hacker's Delight suite (10 benchmarks, width 8)";
  Format.printf "%-30s %-8s %-8s %-9s %s@." "benchmark" "queries" "rounds"
    "verified" "seconds";
  List.iter
    (fun b ->
      let o = Ogis.Hd_suite.run b in
      match o.Ogis.Hd_suite.result with
      | Ok (_, stats) ->
        Format.printf "%-30s %-8d %-8d %-9b %.2f@." b.Ogis.Hd_suite.name
          stats.Ogis.Synth.oracle_queries stats.Ogis.Synth.iterations
          o.Ogis.Hd_suite.verified o.Ogis.Hd_suite.seconds
      | Error _ ->
        Format.printf "%-30s %-8s %-8s %-9s --@." b.Ogis.Hd_suite.name "--"
          "--" "FAILED")
    Ogis.Hd_suite.all

(* ================================================================== *)
(* E4/E5 (Eq. 3 / Eq. 4): transmission guards                          *)
(* ================================================================== *)

let guard_table result paper =
  Format.printf "%-6s %-22s %-18s %s@." "guard" "synthesized" "paper" "delta";
  List.iter
    (fun (label, b) ->
      let lo, hi = List.assoc label paper in
      let delta =
        if Box.is_empty b then "--"
        else
          Printf.sprintf "%.2f"
            (max
               (abs_float (b.Box.lo.(0) -. lo))
               (abs_float (b.Box.hi.(0) -. hi)))
      in
      Format.printf "%-6s %-22s [%6.2f, %6.2f]   %s@." label
        (Format.asprintf "%a" Box.pp1 b)
        lo hi delta)
    result.Fixpoint.guards

let eq3 () =
  section "E4 (Eq. 3): switching guards for safety";
  let r, elapsed = timed (fun () -> TS.synthesize ()) in
  Format.printf "%d fixpoint iterations, %d simulator queries, %.1fs@."
    r.Fixpoint.iterations r.Fixpoint.labels_queried elapsed;
  guard_table r TS.paper_eq3;
  let exact =
    List.for_all
      (fun (label, b) ->
        let lo, hi = List.assoc label TS.paper_eq3 in
        (not (Box.is_empty b))
        && abs_float (b.Box.lo.(0) -. lo) <= 0.011
        && abs_float (b.Box.hi.(0) -. hi) <= 0.011)
      r.Fixpoint.guards
  in
  Format.printf "all 12 guards within one grid cell of the paper: %b@." exact

let eq4 () =
  section "E5 (Eq. 4): switching guards with a 5s dwell requirement";
  let r, elapsed = timed (fun () -> TS.synthesize ~dwell:5.0 ()) in
  Format.printf "%d fixpoint iterations, %d simulator queries, %.1fs@."
    r.Fixpoint.iterations r.Fixpoint.labels_queried elapsed;
  guard_table r TS.paper_eq4;
  let matching =
    List.length
      (List.filter
         (fun (label, b) ->
           let lo, hi = List.assoc label TS.paper_eq4 in
           (not (Box.is_empty b))
           && abs_float (b.Box.lo.(0) -. lo) <= 0.02
           && abs_float (b.Box.hi.(0) -. hi) <= 0.02)
         r.Fixpoint.guards)
  in
  Format.printf
    "%d of 12 guards match the paper within 0.02; the rest differ because@."
    matching;
  Format.printf
    "the paper's dwell semantics is under-specified (see EXPERIMENTS.md).@."

(* ================================================================== *)
(* E6 / Fig. 10: closed-loop trace                                     *)
(* ================================================================== *)

let fig10 () =
  section "E6 (Fig. 10): transmission trace through all six gears";
  let r = TS.synthesize ~dwell:5.0 () in
  let guard label y =
    let b = Fixpoint.guard_fn r label in
    if label = "g33D" then
      y.(1) >= b.Box.hi.(0) -. 0.1 && y.(1) <= b.Box.hi.(0)
    else if label = "g1ND" then y.(1) <= 0.02
    else Box.mem b [| y.(1) |]
  in
  let run =
    Simulate.run_policy T.system ~guard
      ~plan:[ "gN1U"; "g12U"; "g23U"; "g33D"; "g32D"; "g21D"; "g1ND" ]
      ~min_dwell:5.0 ~sample_every:4.0 ~dt:0.01 ~max_time:300.0 [| 0.0; 0.0 |]
  in
  let samples = run.Simulate.samples and outcome = run.Simulate.outcome in
  Format.printf "%-8s %-5s %-8s %-6s@." "t (s)" "mode" "omega" "eta";
  List.iter
    (fun (s : Simulate.sample) ->
      let mode = T.system.Hybrid.Mds.modes.(s.Simulate.mode).Hybrid.Mds.name in
      let omega = s.Simulate.state.(1) in
      let gear =
        match mode with
        | "G1U" | "G1D" -> 1
        | "G2U" | "G2D" -> 2
        | "G3U" | "G3D" -> 3
        | _ -> 0
      in
      let eta = if gear = 0 then 0.0 else T.eta gear omega in
      Format.printf "%-8.1f %-5s %-8.2f %-6.2f %s@." s.Simulate.time mode omega
        eta
        (String.make (int_of_float omega) '*'))
    samples;
  let top =
    List.fold_left (fun m (s : Simulate.sample) -> max m s.Simulate.state.(1)) 0.0 samples
  in
  let violations =
    List.filter
      (fun (s : Simulate.sample) ->
        not (T.system.Hybrid.Mds.safe s.Simulate.mode s.Simulate.state))
      samples
  in
  let modes_seen =
    List.sort_uniq compare (List.map (fun (s : Simulate.sample) -> s.Simulate.mode) samples)
  in
  Format.printf
    "@.outcome: %s; top speed %.1f (paper: ~36.7); modes visited %d/7; phi_S violations %d@."
    (match outcome with
    | `Completed -> "completed"
    | `Unsafe -> "UNSAFE"
    | `Timeout -> "timeout")
    top (List.length modes_seen) (List.length violations)


(* ================================================================== *)
(* Optimal switching (Section 6 direction; EMSOFT 2011)                *)
(* ================================================================== *)

let optimal () =
  section "Optimal switching logic (Sec. 6 / EMSOFT'11 direction)";
  let guards = TS.synthesize () in
  let plan = [ "gN1U"; "g12U"; "g23U"; "g33D"; "g32D"; "g21D"; "g1ND" ] in
  Format.printf
    "Within the synthesized safe guards, pick switching thresholds by@.";
  Format.printf "coordinate descent over simulated cost:@.";
  List.iter
    (fun (name, obj) ->
      let r = Switchsynth.Optimal.optimize guards ~plan ~dwell:0.0 obj in
      Format.printf
        "@.%s: cost %.4f vs first-opportunity %.4f (%d simulations)@." name
        r.Switchsynth.Optimal.cost r.Switchsynth.Optimal.baseline_cost
        r.Switchsynth.Optimal.evaluations;
      List.iter
        (fun (l, th) -> Format.printf "  %-5s switch at omega = %.2f@." l th)
        r.Switchsynth.Optimal.policy)
    [
      ("minimize completion time", Switchsynth.Optimal.Minimize_time);
      ( "maximize mean efficiency",
        Switchsynth.Optimal.Maximize_mean_efficiency );
    ];
  Format.printf
    "@.(The efficiency-optimal upshifts land at the analytic gear@.";
  Format.printf
    " crossovers eta1=eta2 at omega=15 and eta2=eta3 at omega=25.)@."

(* ================================================================== *)
(* E7 / Table 1                                                        *)
(* ================================================================== *)

let table1 () =
  section "E7 (Table 1): the three demonstrated applications";
  Format.printf "%a@." Sciduction.Instances.pp_table Sciduction.Instances.table1;
  Format.printf "@.Section 2.4 instances also implemented here:@.%a@."
    Sciduction.Instances.pp_table Sciduction.Instances.section24

(* ================================================================== *)
(* Ablations (DESIGN.md)                                               *)
(* ================================================================== *)

let ablate_gametime () =
  subsection "A1: GameTime WCET vs longest-syntactic-path heuristic";
  (* the 'deceptive' kernel's long branch arm is the CHEAP one *)
  let bits = 4 in
  let program = B.deceptive ~bits () in
  let pf = Platform.create program in
  let platform = Platform.time pf in
  let t =
    conv (Gt.analyze ~bound:bits ~seed:7 ~pin:[ ("d", 9999) ] ~platform program)
  in
  let w = Gt.wcet t ~platform in
  let paths = Gt.feasible_paths t in
  let _, naive_test =
    List.fold_left
      (fun ((bp, _) as best) ((p, _) as cand) ->
        if List.length p > List.length bp then cand else best)
      (List.hd paths) (List.tl paths)
  in
  let naive_cycles = platform naive_test in
  let true_max =
    List.fold_left
      (fun acc x -> max acc (platform [ ("x", x); ("d", 9999) ]))
      0
      (List.init (1 lsl bits) Fun.id)
  in
  Format.printf
    "true WCET %d | GameTime %d | longest-syntactic-path heuristic %d (under-estimates by %d)@."
    true_max w.Gt.measured_cycles naive_cycles (true_max - naive_cycles)

let ablate_ogis () =
  subsection "A2: distinguishing inputs vs random examples";
  let width = 8 in
  (* two problems: Fig. 8's multiplier (easy for random sampling because
     almost any input separates wrong candidates) and a 'needle' — an
     equality test whose wrong candidates agree with the oracle on all
     but one or two of the 256 inputs *)
  let p2_spec =
    {
      Ogis.Encode.width;
      ninputs = 1;
      noutputs = 1;
      library = Ogis.Component.fig8_p2;
    }
  in
  let p2_oracle =
    Ogis.Deobfuscate.oracle_of_program (B.multiply45_obs_w ~width)
  in
  let p2_correct prog =
    Ogis.Synth.verify_against p2_spec prog ~spec_fn:(function
      | [ y ] -> [ Bv.bmul y (Bv.const ~width 45) ]
      | _ -> assert false)
    = Ok ()
  in
  let needle_spec =
    {
      Ogis.Encode.width;
      ninputs = 1;
      noutputs = 1;
      library =
        [
          Ogis.Component.const ~width 0xAB;
          Ogis.Component.const ~width 0;
          Ogis.Component.xor;
          Ogis.Component.ule01;
        ];
    }
  in
  let needle_oracle = function
    | [ x ] -> [ (if x = 0xAB then 1 else 0) ]
    | _ -> assert false
  in
  let needle_correct prog =
    Ogis.Synth.verify_against needle_spec prog ~spec_fn:(function
      | [ x ] ->
        [
          Bv.ite
            (Bv.eq x (Bv.const ~width 0xAB))
            (Bv.const ~width 1) (Bv.const ~width 0);
        ]
      | _ -> assert false)
    = Ok ()
  in
  let random_cegis spec oracle correct =
    let rng = Random.State.make [| 3 |] in
    let queries = ref 0 in
    let ask x =
      incr queries;
      (x, oracle x)
    in
    let rec loop examples fuel =
      if fuel = 0 then "gave up"
      else
        match Ogis.Encode.synthesize_candidate spec ~examples with
        | `Unrealizable -> "unrealizable?!"
        | `Unknown _ -> "solver gave up?!"
        | `Candidate cand ->
          if correct cand then Printf.sprintf "%4d oracle queries" !queries
          else begin
            let rec find k =
              if k = 0 then None
              else
                let x = [ Random.State.int rng 256 ] in
                let _, fx = ask x in
                if Ogis.Straightline.eval cand x <> fx then Some (x, fx)
                else find (k - 1)
            in
            match find 2000 with
            | None -> "stuck on a wrong candidate"
            | Some ex -> loop (ex :: examples) (fuel - 1)
          end
    in
    loop [ ask [ 0 ] ] 64
  in
  let distinguishing spec oracle correct =
    match Ogis.Synth.synthesize ~initial_inputs:[ [ 0 ] ] spec oracle with
    | Budget.Converged (Ogis.Synth.Synthesized (p, stats)) ->
      Printf.sprintf "%4d oracle queries (correct=%b)"
        stats.Ogis.Synth.oracle_queries (correct p)
    | _ -> "failed"
  in
  Format.printf "P2 multiplier:   distinguishing %s | random %s@."
    (distinguishing p2_spec p2_oracle p2_correct)
    (random_cegis p2_spec p2_oracle p2_correct);
  Format.printf "needle (x=0xAB): distinguishing %s | random %s@."
    (distinguishing needle_spec needle_oracle needle_correct)
    (random_cegis needle_spec needle_oracle needle_correct)

let ablate_grid () =
  subsection "A3: hyperbox grid resolution vs guard quality (Eq. 3)";
  List.iter
    (fun grid ->
      let r = TS.synthesize ~grid () in
      let worst =
        List.fold_left
          (fun acc (label, b) ->
            let lo, hi = List.assoc label TS.paper_eq3 in
            if Box.is_empty b then acc
            else
              max acc
                (max
                   (abs_float (b.Box.lo.(0) -. lo))
                   (abs_float (b.Box.hi.(0) -. hi))))
          0.0 r.Fixpoint.guards
      in
      Format.printf
        "grid %-5g: %5d simulator queries, worst deviation from paper %.3f@."
        grid r.Fixpoint.labels_queried worst)
    [ 1.0; 0.1; 0.01 ]

let ablate_sat () =
  subsection "A4: CDCL vs reference DPLL (random 3-SAT near threshold)";
  (* pigeonhole is resolution-hard, so learning cannot help there; on
     random 3-SAT at clause ratio 4.26 clause learning pays off quickly *)
  let random_3sat ~nvars ~seed =
    let rng = Random.State.make [| seed |] in
    let nclauses = int_of_float (4.26 *. float_of_int nvars) in
    List.init nclauses (fun _ ->
        List.init 3 (fun _ ->
            Smt.Lit.make (Random.State.int rng nvars) (Random.State.bool rng)))
  in
  List.iter
    (fun nvars ->
      let clauses = random_3sat ~nvars ~seed:(nvars * 7) in
      let r_cdcl = ref Smt.Sat.Sat in
      let _, t_cdcl =
        timed (fun () ->
            let s = Smt.Sat.create () in
            for _ = 1 to nvars do
              ignore (Smt.Sat.new_var s)
            done;
            List.iter (Smt.Sat.add_clause s) clauses;
            r_cdcl := Smt.Sat.solve s)
      in
      let r_dpll = ref (Smt.Dpll.Unsat) in
      let _, t_dpll =
        timed (fun () -> r_dpll := Smt.Dpll.solve ~nvars clauses)
      in
      let agree =
        match (!r_cdcl, !r_dpll) with
        | Smt.Sat.Sat, Smt.Dpll.Sat _ | Smt.Sat.Unsat, Smt.Dpll.Unsat -> true
        | _ -> false
      in
      Format.printf
        "3-SAT n=%-3d (%s): CDCL %.3fs, DPLL %.3fs (%.0fx), agree=%b@." nvars
        (match !r_cdcl with
        | Smt.Sat.Sat -> "sat"
        | Smt.Sat.Unsat -> "unsat"
        | Smt.Sat.Unknown _ -> "unknown")
        t_cdcl t_dpll
        (t_dpll /. max 1e-9 t_cdcl)
        agree)
    [ 40; 60; 80 ]


let ablate_spanner () =
  subsection "A5: greedy basis vs barycentric spanner (modexp, 6-bit)";
  let program = B.modexp ~bits:6 () in
  let pf = Platform.create program in
  let platform = Platform.time pf in
  let t =
    conv (Gt.analyze ~bound:6 ~seed:11 ~pin:[ ("base", 123) ] ~platform program)
  in
  let candidates = Gt.feasible_paths t in
  let report label (t : Gt.t) =
    let errs =
      List.filter_map
        (fun (path, test) ->
          Option.map
            (fun pred ->
              let m = float_of_int (platform test) in
              abs_float (pred -. m) /. m)
            (Gt.predict_path t path))
        candidates
    in
    let mean = List.fold_left ( +. ) 0.0 errs /. float_of_int (List.length errs) in
    let worst = List.fold_left max 0.0 errs in
    Format.printf
      "%-12s max|coordinate| %.2f, mean prediction error %.2f%%, worst %.2f%%@."
      label
      (Gametime.Spanner.max_coordinate t.Gt.basis ~candidates t.Gt.cfg)
      (100. *. mean) (100. *. worst)
  in
  report "greedy" t;
  report "spanner" (Gt.refine_with_spanner ~seed:11 ~platform t)


let ablate_refinement () =
  subsection "A7: CEGAR refinement — syntactic vs decision-tree learning";
  List.iter
    (fun (name, t) ->
      let iters r =
        match r with
        | Mc.Cegar.Safe { iterations; abstract_latches; _ } ->
          Printf.sprintf "safe, %d iters, %d latches" iterations abstract_latches
        | Mc.Cegar.Unsafe { iterations; _ } ->
          Printf.sprintf "unsafe, %d iters" iterations
      in
      Format.printf "%-24s most-referenced: %-26s decision-tree: %s@." name
        (iters (conv (Mc.Cegar.verify t)))
        (iters
           (conv
              (Mc.Cegar.verify
                 ~refinement:(Mc.Cegar.Decision_tree { samples = 64; seed = 5 })
                 t))))
    [
      ("counter + 8 junk", Mc.Systems.mod_counter ~junk:8 ~bits:3 ~modulus:6 ~bad_value:7 ());
      ("shift register 6", Mc.Systems.shift_register ~len:6);
      ("unsafe counter", Mc.Systems.mod_counter ~junk:4 ~bits:3 ~modulus:8 ~bad_value:5 ());
    ]


let ablate_platforms () =
  subsection "A6: GameTime portability across platform variants (modexp, 6-bit)";
  let program = B.modexp ~bits:6 () in
  List.iter
    (fun (name, pf) ->
      let platform = Platform.time pf in
      let t =
        conv
          (Gt.analyze ~bound:6 ~seed:13 ~pin:[ ("base", 123) ] ~platform
             program)
      in
      let t = Gt.refine_with_spanner ~seed:13 ~platform t in
      let w = Gt.wcet t ~platform in
      let true_max =
        List.fold_left
          (fun acc e -> max acc (platform [ ("base", 123); ("exp", e) ]))
          0
          (List.init 64 Fun.id)
      in
      let q = Gt.hypothesis_quality t ~platform in
      Format.printf
        "%-26s WCET %4d / true %4d %s  mu_hat %5.1f  rho_hat %5.1f@." name
        w.Gt.measured_cycles true_max
        (if w.Gt.measured_cycles = true_max then "(exact)" else "(UNDER) ")
        q.Gt.mu_hat q.Gt.rho_hat)
    [
      ("static not-taken", Platform.create program);
      ( "backward-taken predictor",
        Platform.create ~predictor:Microarch.Machine.Backward_taken program );
      ( "bimodal predictor",
        Platform.create ~predictor:(Microarch.Machine.Bimodal 64) program );
      ( "tiny caches",
        Platform.create
          ~icache:{ Microarch.Cache.lines = 4; line_bytes = 8; miss_penalty = 20 }
          ~dcache:{ Microarch.Cache.lines = 2; line_bytes = 4; miss_penalty = 20 }
          program );
    ]

let ablate () =
  section "Ablations";
  ablate_gametime ();
  ablate_spanner ();
  ablate_refinement ();
  ablate_platforms ();
  ablate_ogis ();
  ablate_grid ();
  ablate_sat ()

(* ================================================================== *)
(* Solver incrementality: fresh-solver baseline vs persistent sessions *)
(* ================================================================== *)

(* The solver-perf document from the last [perf] run, kept in memory so
   [--check-baseline] can diff it without re-reading the file. *)
let perf_doc = ref None

(* Each workload runs its counterexample-guided loop twice: once with
   [~reuse:false] (a fresh solver per query, the pre-incremental
   behaviour) and once with the persistent sessions. Process-wide SAT
   counters are reset around each run so the fresh-solver side is
   measured even though its per-instance stats die with each solver. *)
let perf () =
  section "Solver incrementality: fresh solvers vs persistent sessions";
  (* the whole metrics registry is reset around each run, so each side's
     snapshot isolates its own solver work (per-instance stats die with
     each fresh solver, registry totals don't) *)
  let measure f =
    Obs.Metrics.reset ();
    let r, seconds = timed f in
    (r, seconds, Smt.Sat.global_stats (), Obs.Metrics.snapshot ())
  in
  let results = ref [] in
  let row name ~baseline ~incremental ~agree =
    let rb, tb, gb, sb = measure baseline in
    let ri, ti, gi, si = measure incremental in
    if not (agree rb ri) then
      Format.printf "!! %s: baseline and incremental runs disagree@." name;
    let speedup = tb /. max 1e-9 ti in
    Format.printf
      "%-24s fresh %7.3fs %5d solves %8d conflicts | incr %7.3fs %5d solves \
       %8d conflicts | %5.2fx@."
      name tb gb.Smt.Sat.g_solves gb.Smt.Sat.g_conflicts ti
      gi.Smt.Sat.g_solves gi.Smt.Sat.g_conflicts speedup;
    results := (name, (tb, gb, sb), (ti, gi, si), speedup) :: !results
  in
  (* OGIS deobfuscation: masked-needle predicates ((x ^ M) & K <= 1)
     behind dead mixing, synthesized from a single seed probe so the
     loop must discover the mask through distinguishing inputs. Three
     instances run back to back inside the row; each instance's
     refinement trajectory is deterministic, so the aggregate ratio is
     reproducible. *)
  let needle_library ~width k m =
    Ogis.Component.[ const ~width k; const ~width m; xor; and_; ule01 ]
  in
  let needle_program ~width:w name k m =
    let open Smt.Bv in
    let t = var ~width:w in
    let c = const ~width:w in
    Prog.Lang.make ~name ~width:w ~inputs:[ "x" ] ~outputs:[ "y" ]
      [
        Prog.Lang.Assign ("a", bxor (t "x") (c m));
        Prog.Lang.Assign ("junk", badd (bmul (t "x") (c 0x5D)) (t "a"));
        Prog.Lang.Assign ("b", band (t "a") (c k));
        Prog.Lang.Assign ("junk", bxor (t "junk") (bnot (t "b")));
        Prog.Lang.Assign ("y", ite (ule (t "b") (c 1)) (c 1) (c 0));
      ]
  in
  let needles =
    [ ("a", 0xAB, 0xC5A); ("b", 0xAB, 0xD2C); ("c", 0xAB, 0xD3C) ]
  in
  let run_needles reuse =
    List.map
      (fun (tag, k, m) ->
        let width = 12 in
        match
          Ogis.Deobfuscate.run ~max_iterations:128 ~initial_inputs:[ [ 0 ] ]
            ~reuse
            ~library:(needle_library ~width k m)
            (needle_program ~width ("needle12" ^ tag) k m)
        with
        | Ok _ -> (tag, true)
        | Error _ -> (tag, false))
      needles
  in
  row "ogis/needle12-deob-x3"
    ~baseline:(fun () -> run_needles false)
    ~incremental:(fun () -> run_needles true)
    ~agree:(fun b i ->
      (* the two modes take different (both valid) refinement
         trajectories; agreement means both deobfuscated everything *)
      List.for_all (fun (_, ok) -> ok) b && List.for_all (fun (_, ok) -> ok) i);
  (* CEGAR: minimal initial abstraction (only latch 0 visible) on a
     mod-41 counter with an unreachable bad value. Each refinement
     reveals one more counter bit and concretizes a twice-as-deep
     spurious abstract counterexample, so one BMC session spans the
     whole loop. Wall clock is split with the explicit-state
     reachability checks of the abstractions, which both modes pay
     alike, so the expected speedup is modest; the row is kept honest
     rather than tuned. *)
  let cegar_ts =
    Mc.Systems.mod_counter ~junk:8 ~bits:6 ~modulus:41 ~bad_value:63 ()
  in
  let cegar_outcome = function
    | Mc.Cegar.Safe { iterations; _ } -> (true, iterations)
    | Mc.Cegar.Unsafe { iterations; _ } -> (false, iterations)
  in
  row "cegar/counter6-minabs+junk8"
    ~baseline:(fun () ->
      cegar_outcome
        (conv (Mc.Cegar.verify ~initial_visible:[ 0 ] ~reuse:false cegar_ts)))
    ~incremental:(fun () ->
      cegar_outcome (conv (Mc.Cegar.verify ~initial_visible:[ 0 ] cegar_ts)))
    ~agree:( = );
  (* BMC: depth sweep on a mod-11 counter whose bad value is outside the
     counting range; every query is UNSAT, consecutive unrollings differ
     by one frame, and the junk latches pad each frame, so conflict
     clauses transfer almost wholesale between depths. *)
  let bmc_ts =
    Mc.Systems.mod_counter ~junk:10 ~bits:4 ~modulus:11 ~bad_value:15 ()
  in
  let bmc_depth = 40 in
  row
    (Printf.sprintf "bmc/modcounter4+junk10-d0-%d" bmc_depth)
    ~baseline:(fun () ->
      (true, List.length
         (List.filter
            (fun d ->
              match Mc.Bmc.check bmc_ts ~depth:d with
              | `Cex _ -> true
              | `No_cex | `Unknown _ -> false)
            (List.init (bmc_depth + 1) Fun.id))))
    ~incremental:(fun () ->
      let sess = Mc.Bmc.new_session bmc_ts in
      (true, List.length
         (List.filter
            (fun d ->
              match Mc.Bmc.check_depth sess ~depth:d with
              | `Cex _ -> true
              | `No_cex | `Unknown _ -> false)
            (List.init (bmc_depth + 1) Fun.id))))
    ~agree:( = );
  let rows = List.rev !results in
  let twofold =
    List.length (List.filter (fun (_, _, _, s) -> s >= 2.0) rows)
  in
  Format.printf "@.%d of %d workloads at >= 2x speedup@." twofold
    (List.length rows);
  (* machine-readable record for CI artifacts and EXPERIMENTS.md; each
     side embeds its registry snapshot next to the legacy headline keys *)
  let json_of_snapshot snap =
    Obs.Json.Obj
      (List.filter_map
         (fun (name, v) ->
           match v with
           | Obs.Metrics.Counter 0 -> None
           | Obs.Metrics.Counter c -> Some (name, Obs.Json.Int c)
           | Obs.Metrics.Gauge 0.0 -> None
           | Obs.Metrics.Gauge g -> Some (name, Obs.Json.Float g)
           | Obs.Metrics.Histogram { count = 0; _ } -> None
           | Obs.Metrics.Histogram { count; sum; max; _ } ->
             Some
               ( name,
                 Obs.Json.Obj
                   [
                     ("count", Obs.Json.Int count);
                     ("sum", Obs.Json.Int sum);
                     ("max", Obs.Json.Int max);
                   ] ))
         snap)
  in
  let side (seconds, (g : Smt.Sat.global_stats), snap) =
    Obs.Json.Obj
      [
        ("seconds", Obs.Json.Float seconds);
        ("solves", Obs.Json.Int g.Smt.Sat.g_solves);
        ("conflicts", Obs.Json.Int g.Smt.Sat.g_conflicts);
        ("propagations", Obs.Json.Int g.Smt.Sat.g_propagations);
        ("metrics", json_of_snapshot snap);
      ]
  in
  let doc =
    Obs.Json.Obj
      [
        ( "benchmarks",
          Obs.Json.List
            (List.map
               (fun (name, fresh, incr, speedup) ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.String name);
                     ("fresh", side fresh);
                     ("incremental", side incr);
                     ("speedup", Obs.Json.Float speedup);
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_solver.json" in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  perf_doc := Some doc;
  Format.printf "wrote BENCH_solver.json@."

(* ================================================================== *)
(* Baseline regression gate                                            *)
(* ================================================================== *)

(* `bench/main.exe --check-baseline BENCH_baseline.json` reruns the
   solver-perf suite and diffs its figures against the committed
   baseline with Obs.Analyze's thresholds, so CI catches solver
   regressions the same way trace_report catches loop regressions.
   Writes BENCH_gate.json next to BENCH_solver.json and exits non-zero
   when any figure regresses past its threshold. *)
let check_baseline path =
  let read_json path =
    match open_in path with
    | exception Sys_error msg -> Error msg
    | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Obs.Json.parse s
  in
  section (Printf.sprintf "Baseline gate: current perf vs %s" path);
  if !perf_doc = None then perf ();
  let doc = Option.get !perf_doc in
  match read_json path with
  | Error msg ->
    Format.printf "cannot read baseline %s: %s@." path msg;
    exit 2
  | Ok baseline ->
    let findings =
      Obs.Analyze.diff
        ~base:(Obs.Analyze.key_figures baseline)
        (Obs.Analyze.key_figures doc)
    in
    Format.printf "%a@." Obs.Analyze.pp_findings findings;
    let regressed = Obs.Analyze.regressed findings in
    let gate =
      Obs.Json.Obj
        [
          ("baseline", Obs.Json.String path);
          ("findings", Obs.Analyze.findings_json findings);
          ( "verdict",
            Obs.Json.String (if regressed then "FAIL" else "PASS") );
        ]
    in
    let oc = open_out "BENCH_gate.json" in
    output_string oc (Obs.Json.to_string gate);
    output_char oc '\n';
    close_out oc;
    Format.printf "verdict: %s (BENCH_gate.json)@."
      (if regressed then "FAIL" else "PASS");
    if regressed then exit 1

(* ================================================================== *)
(* Parallel fan-out: sequential vs --jobs N (writes BENCH_par.json)    *)
(* ================================================================== *)

(* set by the --jobs flag; 0 means "SCIDUCTION_JOBS or 4" *)
let par_jobs = ref 0

(* last doc written to BENCH_par.json, for the parallel gate *)
let par_doc : Obs.Json.t option ref = ref None

let read_json_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Obs.Json.parse s

(* baseline snapshot taken by the driver *before* any experiment runs:
   [par] rewrites BENCH_par.json, so when the gate's baseline path is
   the same file the read must happen first or the portfolio check
   degenerates into comparing the current run against itself *)
let par_baseline : (Obs.Json.t, string) result option ref = ref None

(* Planted 3-SAT at clause ratio 4.2: clauses are random except that
   each keeps at least one positive literal, so the all-true assignment
   is a model. The vanilla solver (phase false) starts in the all-false
   corner and has to climb out conflict by conflict, while a phase-true
   portfolio member reads the planted model off in zero conflicts — the
   race finishes at the speed of its luckiest configuration, which is
   exactly the algorithmic win a portfolio buys (and the only kind
   available on a single-core machine, where fan-out adds no cycles). *)
let planted_3sat ~nvars ~seed =
  let rng = Random.State.make [| seed |] in
  let nclauses = int_of_float (6.0 *. float_of_int nvars) in
  let rec clause () =
    let c =
      List.init 3 (fun _ ->
          Smt.Lit.make (Random.State.int rng nvars) (Random.State.bool rng))
    in
    if List.exists Smt.Lit.sign c then c else clause ()
  in
  { Smt.Dimacs.nvars; clauses = List.init nclauses (fun _ -> clause ()) }

let par () =
  let jobs = if !par_jobs > 0 then !par_jobs else Par.env_jobs ~default:4 () in
  section (Printf.sprintf "Parallel fan-out: sequential vs --jobs %d" jobs);
  Par.Pool.with_pool ~jobs @@ fun pool ->
  let inst name t_seq t_par ok =
    Obs.Json.Obj
      [
        ("name", Obs.Json.String name);
        ("seconds_sequential", Obs.Json.Float t_seq);
        ("seconds_parallel", Obs.Json.Float t_par);
        ("speedup", Obs.Json.Float (t_seq /. max 1e-9 t_par));
        ("verdicts_agree", Obs.Json.Bool ok);
      ]
  in
  let suite name rows =
    let tot sel = List.fold_left (fun a r -> a +. sel r) 0.0 rows in
    let ts = tot (fun (_, s, _, _) -> s) and tp = tot (fun (_, _, p, _) -> p) in
    let agree = List.for_all (fun (_, _, _, ok) -> ok) rows in
    let speedup = ts /. max 1e-9 tp in
    Format.printf
      "suite total: sequential %.3fs | parallel %.3fs | %.2fx | all verdicts \
       agree: %b@."
      ts tp speedup agree;
    Obs.Json.Obj
      [
        ("name", Obs.Json.String name);
        ( "instances",
          Obs.Json.List (List.map (fun (n, s, p, ok) -> inst n s p ok) rows) );
        ("seconds_sequential", Obs.Json.Float ts);
        ("seconds_parallel", Obs.Json.Float tp);
        ("speedup", Obs.Json.Float speedup);
        ("verdicts_agree", Obs.Json.Bool agree);
      ]
  in
  subsection "portfolio SAT (planted 3-SAT, vanilla phase starts all-false)";
  let nvars = 300 in
  let sat_rows =
    List.map
      (fun i ->
        let name = Printf.sprintf "planted-n%d-%d" nvars i in
        let p = planted_3sat ~nvars ~seed:(1009 * (i + 1)) in
        let seq, t_seq = timed (fun () -> Smt.Portfolio.solve p) in
        let prl, t_par = timed (fun () -> Smt.Portfolio.solve ~pool p) in
        let agree = seq.Smt.Portfolio.result = prl.Smt.Portfolio.result in
        let model_ok =
          match prl.Smt.Portfolio.model with
          | Some m -> Smt.Dpll.eval m p.Smt.Dimacs.clauses
          | None -> prl.Smt.Portfolio.result <> Smt.Sat.Sat
        in
        Format.printf
          "%-18s seq %7.3fs | par %7.3fs (winner cfg %d of %d) | %6.2fx | \
           agree=%b@."
          name t_seq t_par prl.Smt.Portfolio.winner prl.Smt.Portfolio.raced
          (t_seq /. max 1e-9 t_par)
          (agree && model_ok);
        (name, t_seq, t_par, agree && model_ok))
      [ 0; 1; 2; 3 ]
  in
  let sat_suite = suite "portfolio_sat" sat_rows in
  subsection "BMC depth sweep (work-stealing ranged claims)";
  (* The parallel sweep guarantees the verdict and, on unsafe systems,
     the minimal counterexample depth — not the concrete trace, which
     may differ between claim schedules. Agreement therefore means:
     same verdict, same depth, and the parallel trace actually drives
     the concrete system into a bad state in exactly that many steps
     (replayed, so a bogus trace cannot pass). *)
  let trace_reaches_bad ts trace =
    let state =
      List.fold_left
        (fun st input -> Mc.Ts.step ts ~state:st ~input)
        ts.Mc.Ts.init trace
    in
    Mc.Ts.is_bad ts state
  in
  let bmc_rows =
    List.map
      (fun (name, ts, max_depth) ->
        let seq, t_seq = timed (fun () -> conv (Mc.Bmc.sweep ts ~max_depth)) in
        let prl, t_par =
          timed (fun () -> conv (Mc.Bmc.sweep ~pool ts ~max_depth))
        in
        let agree =
          match (seq, prl) with
          | None, None -> true
          | Some (d1, _), Some (d2, tr2) ->
            d1 = d2 && List.length tr2 = d2 && trace_reaches_bad ts tr2
          | _ -> false
        in
        Format.printf "%-18s seq %7.3fs | par %7.3fs | %6.2fx | agree=%b@."
          name t_seq t_par
          (t_seq /. max 1e-9 t_par)
          agree;
        (name, t_seq, t_par, agree))
      [
        (* overhead canaries: far too small for parallelism to pay;
           kept to show the claim queue does not tax tiny instances *)
        ( "safe-mod11-d24",
          Mc.Systems.mod_counter ~junk:10 ~bits:4 ~modulus:11 ~bad_value:15 (),
          24 );
        ( "unsafe-mod8-d24",
          Mc.Systems.mod_counter ~junk:4 ~bits:3 ~modulus:8 ~bad_value:5 (),
          24 );
        (* the real workloads (>= 100ms sequential): long
           propagation-bound sweeps where one ranged claim replaces
           dozens of per-depth queries and their per-iteration harness
           cost *)
        ("safe-shift400-d450", Mc.Systems.shift_register ~len:400, 450);
        ("safe-shift600-d700", Mc.Systems.shift_register ~len:600, 700);
      ]
  in
  let bmc_suite = suite "bmc_sweep" bmc_rows in
  let doc =
    Obs.Json.Obj
      [
        ("jobs", Obs.Json.Int jobs);
        ("suites", Obs.Json.List [ sat_suite; bmc_suite ]);
      ]
  in
  par_doc := Some doc;
  let oc = open_out "BENCH_par.json" in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote BENCH_par.json@.";
  (* speedups are machine-dependent and only reported; verdict agreement
     is the contract, so divergence fails the run *)
  if
    not
      (List.for_all (fun (_, _, _, ok) -> ok) sat_rows
      && List.for_all (fun (_, _, _, ok) -> ok) bmc_rows)
  then begin
    Format.printf "!! parallel verdicts diverged from sequential@.";
    exit 1
  end

(* `bench/main.exe par --check-baseline BENCH_par.json` gates the
   cooperative-parallelism figures: the BMC sweep must actually beat
   the sequential loop (speedup >= 1.0 at the requested job count), and
   the portfolio may not regress more than 20% against the committed
   baseline's speedup. Verdict divergence already fails inside [par]
   before this gate runs. Writes BENCH_par_gate.json; exits 2 on an
   unreadable baseline, 1 on a failed gate. *)
let check_par_baseline path =
  let suite_speedup name doc =
    match Obs.Json.member "suites" doc with
    | Some (Obs.Json.List suites) ->
      List.find_map
        (fun s ->
          match Obs.Json.member "name" s with
          | Some (Obs.Json.String n) when n = name ->
            Option.bind (Obs.Json.member "speedup" s) Obs.Json.to_float
          | _ -> None)
        suites
    | _ -> None
  in
  section (Printf.sprintf "Parallel gate: current par suite vs %s" path);
  let baseline =
    match !par_baseline with
    | Some snapshot -> snapshot
    | None -> read_json_file path
  in
  if !par_doc = None then par ();
  let doc = Option.get !par_doc in
  match baseline with
  | Error msg ->
    Format.printf "cannot read baseline %s: %s@." path msg;
    exit 2
  | Ok base -> (
    match
      ( suite_speedup "bmc_sweep" doc,
        suite_speedup "portfolio_sat" doc,
        suite_speedup "portfolio_sat" base )
    with
    | Some bmc, Some sat, Some base_sat ->
      let sat_floor = 0.8 *. base_sat in
      let bmc_ok = bmc >= 1.0 in
      let sat_ok = sat >= sat_floor in
      Format.printf "bmc_sweep speedup %.2fx (gate: >= 1.00x): %s@." bmc
        (if bmc_ok then "PASS" else "FAIL");
      Format.printf
        "portfolio_sat speedup %.2fx (gate: >= %.2fx, 80%% of baseline \
         %.2fx): %s@."
        sat sat_floor base_sat
        (if sat_ok then "PASS" else "FAIL");
      let ok = bmc_ok && sat_ok in
      let gate =
        Obs.Json.Obj
          [
            ("baseline", Obs.Json.String path);
            ("bmc_speedup", Obs.Json.Float bmc);
            ("portfolio_speedup", Obs.Json.Float sat);
            ("portfolio_floor", Obs.Json.Float sat_floor);
            ("verdict", Obs.Json.String (if ok then "PASS" else "FAIL"));
          ]
      in
      let oc = open_out "BENCH_par_gate.json" in
      output_string oc (Obs.Json.to_string gate);
      output_char oc '\n';
      close_out oc;
      Format.printf "verdict: %s (BENCH_par_gate.json)@."
        (if ok then "PASS" else "FAIL");
      if not ok then exit 1
    | _ ->
      Format.printf "baseline %s lacks the par suite figures@." path;
      exit 2)

(* ================================================================== *)
(* Bechamel micro-benchmarks                                           *)
(* ================================================================== *)

let micro () =
  section "Micro-benchmarks (Bechamel; ns per run)";
  let open Bechamel in
  let php5 =
    Test.make ~name:"sat/pigeonhole-5-unsat"
      (Staged.stage (fun () ->
           let n = 5 in
           let v i h = (i * n) + h in
           let s = Smt.Sat.create () in
           for _ = 1 to (n + 1) * n do
             ignore (Smt.Sat.new_var s)
           done;
           for i = 0 to n do
             Smt.Sat.add_clause s (List.init n (fun h -> Smt.Lit.pos (v i h)))
           done;
           for h = 0 to n - 1 do
             for i = 0 to n do
               for j = i + 1 to n do
                 Smt.Sat.add_clause s
                   [ Smt.Lit.neg_of (v i h); Smt.Lit.neg_of (v j h) ]
               done
             done
           done;
           ignore (Smt.Sat.solve s)))
  in
  let xor_swap =
    Test.make ~name:"smt/xor-swap-16bit-unsat"
      (Staged.stage (fun () ->
           let a = Bv.var ~width:16 "a" and b = Bv.var ~width:16 "b" in
           let a1 = Bv.bxor a b in
           let b1 = Bv.bxor a1 b in
           let a2 = Bv.bxor a1 b1 in
           let good = Bv.fand (Bv.eq b1 a) (Bv.eq a2 b) in
           ignore (Smt.Solver.check_formulas [ Bv.fnot good ])))
  in
  let ogis_p1 =
    Test.make ~name:"ogis/p1-interchange-8bit"
      (Staged.stage (fun () ->
           ignore
             (Ogis.Deobfuscate.run ~library:Ogis.Component.fig8_p1
                (B.interchange_obs_w ~width:8))))
  in
  let basis =
    Test.make ~name:"gametime/basis-bitcount4"
      (Staged.stage (fun () ->
           let u = Prog.Unroll.unroll ~bound:4 (B.bitcount ()) in
           let g = Prog.Cfg.of_program u in
           ignore (GtBasis.extract u g)))
  in
  let eq3_bench =
    Test.make ~name:"switchsynth/eq3-grid0.1"
      (Staged.stage (fun () -> ignore (TS.synthesize ~grid:0.1 ())))
  in
  let cegar =
    Test.make ~name:"cegar/counter+junk6"
      (Staged.stage (fun () ->
           ignore
             (Mc.Cegar.verify
                (Mc.Systems.mod_counter ~junk:6 ~bits:3 ~modulus:6 ~bad_value:7
                   ()))))
  in
  let invg =
    Test.make ~name:"invgen/mod5-pipeline"
      (Staged.stage (fun () ->
           let aig, bad = Invgen.Engine.counter_mod5 () in
           ignore (Invgen.Engine.run aig ~bad)))
  in
  let lstar_bench =
    Test.make ~name:"lstar/learn-no11"
      (Staged.stage (fun () ->
           let no_11 =
             Lstar.Dfa.make ~alphabet:2 ~start:0
               ~accept:[| true; true; false |]
               ~delta:[| [| 0; 1 |]; [| 0; 2 |]; [| 2; 2 |] |]
           in
           ignore (Lstar.Learner.learn_exact ~target:no_11 ())))
  in
  let tests =
    [ php5; xor_swap; ogis_p1; basis; eq3_bench; cegar; invg; lstar_bench ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"perf" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e9 then Format.printf "%-32s %8.2f s/run@." name (ns /. 1e9)
      else if ns >= 1e6 then
        Format.printf "%-32s %8.2f ms/run@." name (ns /. 1e6)
      else Format.printf "%-32s %8.2f us/run@." name (ns /. 1e3))
    rows

(* ================================================================== *)
(* Budget metering overhead (EXPERIMENTS.md)                           *)
(* ================================================================== *)

(* Every loop now threads a Budget.meter through its iterations and
   solver calls; this experiment measures what that accounting costs by
   running the same workloads unbudgeted and under caps generous enough
   never to trip. Both runs converge to identical answers, so the delta
   is pure metering overhead. *)
(* warm up, then batch each measurement to >= ~50ms and take the best
   of three so the sub-millisecond loops aren't measuring noise *)
let best_of f =
  let _, t1 = timed f in
  let reps = max 1 (int_of_float (0.05 /. max 1e-9 t1)) in
  let rec go k acc =
    if k = 0 then acc
    else
      let _, t =
        timed (fun () ->
            for _ = 1 to reps do
              f ()
            done)
      in
      go (k - 1) (min acc (t /. float_of_int reps))
  in
  go 3 infinity

let budget_overhead () =
  section "Budget metering overhead (generous caps, identical workloads)";
  let generous =
    Budget.limited ~iterations:1_000_000 ~conflicts:max_int ~seconds:3600.0 ()
  in
  let row name plain budgeted =
    let t_plain = best_of (fun () -> ignore (plain ())) in
    let t_budget = best_of (fun () -> ignore (budgeted ())) in
    Format.printf "%-26s unbudgeted %8.4fs | budgeted %8.4fs | %+6.2f%%@." name
      t_plain t_budget
      (100.0 *. ((t_budget -. t_plain) /. max 1e-9 t_plain))
  in
  let cegar_ts =
    Mc.Systems.mod_counter ~junk:8 ~bits:6 ~modulus:41 ~bad_value:63 ()
  in
  row "cegar/counter6+junk8"
    (fun () -> conv (Mc.Cegar.verify ~initial_visible:[ 0 ] cegar_ts))
    (fun () ->
      conv (Mc.Cegar.verify ~budget:generous ~initial_visible:[ 0 ] cegar_ts));
  let bmc_ts =
    Mc.Systems.mod_counter ~junk:10 ~bits:4 ~modulus:11 ~bad_value:15 ()
  in
  row "bmc/sweep-d24"
    (fun () -> conv (Mc.Bmc.sweep bmc_ts ~max_depth:24))
    (fun () -> conv (Mc.Bmc.sweep ~budget:generous bmc_ts ~max_depth:24));
  let p1_spec =
    {
      Ogis.Encode.width = 8;
      ninputs = 2;
      noutputs = 1;
      library = Ogis.Component.fig8_p1;
    }
  in
  let p1_oracle = Ogis.Deobfuscate.oracle_of_program (B.interchange_obs_w ~width:8) in
  row "ogis/p1-interchange-8bit"
    (fun () -> Ogis.Synth.synthesize p1_spec p1_oracle)
    (fun () -> Ogis.Synth.synthesize ~budget:generous p1_spec p1_oracle);
  let aig, bad = Invgen.Engine.counter_mod5 () in
  row "invgen/mod5-pipeline"
    (fun () -> conv (Invgen.Engine.run aig ~bad))
    (fun () -> conv (Invgen.Engine.run ~budget:generous aig ~bad));
  let no_11 =
    Lstar.Dfa.make ~alphabet:2 ~start:0
      ~accept:[| true; true; false |]
      ~delta:[| [| 0; 1 |]; [| 0; 2 |]; [| 2; 2 |] |]
  in
  row "lstar/learn-no11"
    (fun () -> conv (Lstar.Learner.learn_exact ~target:no_11 ()))
    (fun () ->
      conv (Lstar.Learner.learn_exact ~budget:generous ~target:no_11 ()))

(* ================================================================== *)
(* Live telemetry plane overhead (EXPERIMENTS.md)                      *)
(* ================================================================== *)

(* The live plane's contract is that it only *reads*: the ticker
   samples the registry from its own domain, the stats socket serves
   whatever the ticker last saw, and the progress channel piggybacks on
   iteration events the trace layer already handles. This experiment
   runs the deobfuscation and BMC workloads three ways: everything off
   (the shipping default — counters still bump, nothing else runs),
   with tracing enabled (the pre-existing cost of building event
   records), and with tracing plus the full plane — a 100 ms ticker, a
   live stats socket, a 100 ms progress channel and watchdog polls.
   The traced -> live delta is what the plane itself costs a run that
   was already being observed; that is the number EXPERIMENTS.md
   budgets at <= 2%. *)
let live_overhead () =
  section "Live telemetry plane overhead (ticker + stats socket + progress)";
  let row name work =
    Obs.reset ();
    let t_off = best_of (fun () -> ignore (work ())) in
    Obs.reset ();
    Obs.enable ();
    let t_traced = best_of (fun () -> ignore (work ())) in
    Obs.set_progress_interval 0.1;
    let sock = Filename.temp_file "sciduction_bench" ".sock" in
    let ticker =
      Obs.Live.start ~interval_ms:100
        ~on_tick:(fun () -> Obs.check_stalls ~window:5.0)
        ()
    in
    let server =
      match Obs.Statsd.start ~path:sock ~ticker () with
      | Ok s -> s
      | Error msg ->
        Obs.Live.stop ticker;
        Obs.reset ();
        failwith ("stats socket: " ^ msg)
    in
    let t_live =
      Fun.protect
        ~finally:(fun () ->
          Obs.Statsd.stop server;
          Obs.Live.stop ticker;
          Obs.reset ())
        (fun () -> best_of (fun () -> ignore (work ())))
    in
    Format.printf
      "%-26s off %8.4fs | traced %8.4fs | live %8.4fs | plane %+6.2f%%@." name
      t_off t_traced t_live
      (100.0 *. ((t_live -. t_traced) /. max 1e-9 t_traced))
  in
  let p1_spec =
    {
      Ogis.Encode.width = 8;
      ninputs = 2;
      noutputs = 1;
      library = Ogis.Component.fig8_p1;
    }
  in
  let p1_oracle =
    Ogis.Deobfuscate.oracle_of_program (B.interchange_obs_w ~width:8)
  in
  row "ogis/p1-interchange-8bit" (fun () ->
      Ogis.Synth.synthesize p1_spec p1_oracle);
  let bmc_ts =
    Mc.Systems.mod_counter ~junk:10 ~bits:4 ~modulus:11 ~bad_value:15 ()
  in
  row "bmc/sweep-d24" (fun () -> conv (Mc.Bmc.sweep bmc_ts ~max_depth:24))

(* ================================================================== *)
(* Proof plane overhead (EXPERIMENTS.md)                               *)
(* ================================================================== *)

(* DRAT logging renders one line per asserted and learnt clause into an
   in-memory buffer; the filesystem is touched only on buffer overflow
   or certificate issue. Two gates: enabled overhead must stay <= 5%,
   and a disabled run must log exactly zero proof bytes (the hooks are
   a match on an option field, so "0% disabled" is structural — we
   verify the structure rather than trying to measure a 0% delta under
   timer noise). The run exits nonzero past either gate. *)
let proof_overhead () =
  section "Proof plane overhead (DRAT logging + certificates)";
  let worst = ref 0.0 in
  let bytes_ctr = Obs.Metrics.counter "proof.bytes" in
  let row name work =
    let prefix = Filename.temp_file "sciduction_proof" "" in
    let cleanup () =
      Smt.Proof.disable ();
      let dir = Filename.dirname prefix and base = Filename.basename prefix in
      Array.iter
        (fun f ->
          if
            String.length f >= String.length base
            && String.sub f 0 (String.length base) = base
          then Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
    in
    Fun.protect ~finally:cleanup (fun () ->
        (* machine drift (frequency scaling, noisy neighbours) swings
           single runs by +-10%, far above the overhead being measured.
           So: back-to-back off/on pairs, each arm batched to >= ~50ms,
           and the median of the pairwise ratios — drift hits both
           members of a pair equally and cancels in the ratio *)
        let _, t1 = timed (fun () -> ignore (work ())) in
        (* ~200ms per arm: long enough to average out scheduler jitter,
           which on a shared box swings 15ms batches by +-15% *)
        let reps = max 1 (int_of_float (0.2 /. max 1e-9 t1)) in
        let arm () =
          let _, t =
            timed (fun ()  ->
                for _ = 1 to reps do
                  ignore (work ())
                done)
          in
          t /. float_of_int reps
        in
        let npairs = 7 in
        let logged_when_off = ref 0 in
        let off_arm () =
          let before = Obs.Metrics.counter_value bytes_ctr in
          let t = arm () in
          logged_when_off :=
            !logged_when_off + (Obs.Metrics.counter_value bytes_ctr - before);
          t
        in
        let on_arm () =
          Smt.Proof.enable ~prefix;
          let t = arm () in
          Smt.Proof.disable ();
          t
        in
        let measure () =
          let pairs =
            (* alternate which arm goes first: heap state and frequency
               drift within a pair would otherwise always tax arm two *)
            List.init npairs (fun k ->
                Gc.full_major ();
                if k land 1 = 0 then
                  let t_off = off_arm () in
                  (t_off, on_arm ())
                else
                  let t_on = on_arm () in
                  (off_arm (), t_on))
          in
          let ratios =
            List.sort compare (List.map (fun (o, n) -> n /. o) pairs)
          in
          let median = List.nth ratios (npairs / 2) in
          let t_off = List.fold_left (fun a (o, _) -> min a o) infinity pairs in
          (t_off, median)
        in
        let t_off, median = measure () in
        (* the median of 7 pairwise ratios still wanders by a couple of
           points between invocations; a single breach gets one
           re-measure before it fails the gate, so only a reproducible
           regression trips it *)
        let t_off, median =
          if 100.0 *. (median -. 1.0) > 5.0 then begin
            Format.printf "%-26s breach at %+.2f%%, re-measuring@." name
              (100.0 *. (median -. 1.0));
            let t_off', median' = measure () in
            if median' < median then (t_off', median') else (t_off, median)
          end
          else (t_off, median)
        in
        let pct = 100.0 *. (median -. 1.0) in
        if pct > !worst then worst := pct;
        Format.printf "%-26s off %8.4fs | proof %8.4fs | %+6.2f%%@." name
          t_off (t_off *. median) pct;
        if !logged_when_off <> 0 then begin
          Format.printf
            "proof overhead gate FAILED: %d bytes logged with the plane \
             disabled@."
            !logged_when_off;
          exit 1
        end)
  in
  let p1_spec =
    {
      Ogis.Encode.width = 8;
      ninputs = 2;
      noutputs = 1;
      library = Ogis.Component.fig8_p1;
    }
  in
  let p1_oracle =
    Ogis.Deobfuscate.oracle_of_program (B.interchange_obs_w ~width:8)
  in
  row "ogis/p1-interchange-8bit" (fun () ->
      Ogis.Synth.synthesize p1_spec p1_oracle);
  (* CEGAR runs BMC sweeps on its abstractions, so this row covers the
     model-checking side too — with enough search per logged clause to
     be a fair measurement. (A bare toy-system BMC sweep is decided by
     unit propagation, so it measures logging bandwidth against an
     encoder that does almost no solving: ~10% there, but that is the
     cost of writing 74 KiB of proof against 14ms of work, not a
     per-conflict tax; EXPERIMENTS.md records both.) *)
  let cegar_ts =
    Mc.Systems.mod_counter ~junk:8 ~bits:6 ~modulus:41 ~bad_value:63 ()
  in
  row "cegar/counter6+junk8" (fun () ->
      conv (Mc.Cegar.verify ~initial_visible:[ 0 ] cegar_ts));
  if !worst > 5.0 then begin
    Format.printf
      "proof overhead gate FAILED: worst enabled overhead %+.2f%% > 5%%@."
      !worst;
    exit 1
  end

(* ================================================================== *)
(* Verification server: cache and warm-session reuse (BENCH_serve)     *)
(* ================================================================== *)

(* One in-process daemon on a temp socket, driven through the real
   client and wire protocol, so the measured latencies include JSONL
   framing and scheduling. Three paths on one BMC family:

   - cold: the first submission; the daemon does the full sweep
   - cached: the identical query again; a content-addressed cache hit
   - warm: a deeper query on the same family, resuming the daemon's
     incremental session past the depths the cold sweep already proved;
     its baseline is a cold one-shot run of the same deeper job.

   The gated daemon runs with its write-ahead journal enabled, so the
   speedups already absorb the fsync-per-ack durability cost; a second
   measurement prices that cost directly by running the same cold jobs
   against a journaling and a plain daemon.

   Writes BENCH_serve.json. Gates: cached >= 10x over cold, warm >= 2x
   over the one-shot baseline, journal overhead <= 5% of the cold path
   (one re-measure before failing, since these ratios ride on single
   runs of ~100ms sweeps). *)
let serve_bench () =
  section "Verification server: result cache and warm sessions";
  let tmp name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sciduction_bench_%d%s" (Unix.getpid ()) name)
  in
  let rm_f path = try Sys.remove path with Sys_error _ -> () in
  let submit_on socket spec =
    match Server.Client.submit ~socket spec with
    | Ok o -> o
    | Error (`Server f) -> failwith ("serve bench: " ^ f.Server.Client.fmessage)
    | Error (`Transport m) -> failwith ("serve bench: " ^ m)
  in
  let socket = tmp ".sock" and journal = tmp ".journal" in
  rm_f journal;
  match Server.Daemon.start ~socket ~journal () with
  | Error e -> failwith ("serve bench: " ^ e)
  | Ok d ->
    Fun.protect ~finally:(fun () ->
        Server.Daemon.stop d;
        rm_f journal)
    @@ fun () ->
    let submit spec = submit_on socket spec in
    let system =
      {
        Server.Jobs.shift = None;
        junk = 10;
        bits = 4;
        modulus = 11;
        bad_value = 15;
      }
    in
    let shallow = Server.Jobs.Bmc { system; max_depth = 20 } in
    let deep = Server.Jobs.Bmc { system; max_depth = 24 } in
    let ms t = t *. 1e3 in
    let measure () =
      let o_cold, t_cold = timed (fun () -> submit shallow) in
      if o_cold.Server.Client.cached then
        failwith "serve bench: first submission cannot be a cache hit";
      let o_hit, t_cached = timed (fun () -> submit shallow) in
      if not o_hit.Server.Client.cached then
        failwith "serve bench: identical repeat missed the cache";
      let _, t_deep_cold =
        timed (fun () ->
            ignore (Server.Jobs.run deep : Server.Jobs.outcome))
      in
      let o_warm, t_warm = timed (fun () -> submit deep) in
      if o_warm.Server.Client.cached then
        failwith "serve bench: the deeper query cannot be a cache hit";
      (t_cold, t_cached, t_deep_cold, t_warm)
    in
    let t_cold, t_cached, t_deep_cold, t_warm = measure () in
    let s_cached = t_cold /. max 1e-9 t_cached in
    let s_warm = t_deep_cold /. max 1e-9 t_warm in
    Format.printf "%-26s cold %8.2fms | cached %8.3fms | %8.1fx@."
      "bmc/d20-repeat" (ms t_cold) (ms t_cached) s_cached;
    Format.printf "%-26s cold %8.2fms | warm   %8.2fms | %8.1fx@."
      "bmc/d24-overlap" (ms t_deep_cold) (ms t_warm) s_warm;
    (* journal overhead: the same three cold d20-class sweeps against a
       plain and a journaling daemon; the WAL (fsync per ack + three
       unsynced records per job) must stay within 5% of the cold path.
       The jobs must be solve-dominated like the gated cold path —
       against sub-millisecond toys the fixed ~0.5ms WAL cost reads as
       a >100% regression that no real workload sees. *)
    let overhead_specs =
      List.init 3 (fun i ->
          Server.Jobs.Bmc
            {
              system =
                {
                  Server.Jobs.shift = None;
                  junk = 12 + i;
                  bits = 6;
                  modulus = 61;
                  bad_value = 63;
                };
              max_depth = 60;
            })
    in
    let cold_batch ?journal name =
      let socket = tmp (Printf.sprintf ".%s.sock" name) in
      match Server.Daemon.start ~socket ?journal () with
      | Error e -> failwith ("serve bench: " ^ e)
      | Ok d ->
        Fun.protect ~finally:(fun () -> Server.Daemon.stop d) @@ fun () ->
        let _, t =
          timed (fun () ->
              List.iter
                (fun spec ->
                  ignore (submit_on socket spec : Server.Client.outcome))
                overhead_specs)
        in
        t
    in
    (* this container's run-to-run noise (GC, CPU contention) swings a
       lone ~40ms batch by far more than the sub-millisecond WAL cost
       being measured, so a single A/B comparison is meaningless.
       Measure like the proof bench: back-to-back plain/wal pairs with
       alternating arm order, Gc.full_major between, median of the
       per-pair ratios — pairing cancels the drift. *)
    let measure_overhead () =
      let wal = tmp ".wal.journal" in
      let one_pair i =
        rm_f wal;
        Fun.protect ~finally:(fun () -> rm_f wal) @@ fun () ->
        Gc.full_major ();
        if i mod 2 = 0 then
          let p = cold_batch "plain" in
          let w = cold_batch ~journal:wal "wal" in
          w /. max 1e-9 p
        else
          let w = cold_batch ~journal:wal "wal" in
          let p = cold_batch "plain" in
          w /. max 1e-9 p
      in
      let ratios = List.sort compare (List.init 5 one_pair) in
      (List.nth ratios 2 -. 1.0) *. 100.0
    in
    let journal_overhead_pct = measure_overhead () in
    Format.printf "%-26s journal overhead %+.1f%% of the cold path@."
      "bmc/d60-journal" journal_overhead_pct;
    let doc =
      Obs.Json.Obj
        [
          ("experiment", Obs.Json.String "serve");
          ("cold_ms", Obs.Json.Float (ms t_cold));
          ("cached_ms", Obs.Json.Float (ms t_cached));
          ("cached_speedup", Obs.Json.Float s_cached);
          ("deep_cold_ms", Obs.Json.Float (ms t_deep_cold));
          ("warm_ms", Obs.Json.Float (ms t_warm));
          ("warm_speedup", Obs.Json.Float s_warm);
          ("journal_overhead_pct", Obs.Json.Float journal_overhead_pct);
          ("headline_speedup", Obs.Json.Float (Float.max s_cached s_warm));
        ]
    in
    let oc = open_out "BENCH_serve.json" in
    output_string oc (Obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Format.printf "wrote BENCH_serve.json@.";
    if s_cached < 10.0 then begin
      Format.printf
        "serve gate FAILED: cached repeat only %.1fx over cold (< 10x)@."
        s_cached;
      exit 1
    end;
    if s_warm < 2.0 then begin
      (* the warm ratio is two single runs; scheduler noise gets one
         retry before it counts as a regression *)
      Format.printf "serve gate: warm %.1fx < 2x, re-measuring@." s_warm;
      let _, _, t_deep_cold, t_warm = measure () in
      let s_warm = t_deep_cold /. max 1e-9 t_warm in
      Format.printf "%-26s cold %8.2fms | warm   %8.2fms | %8.1fx@."
        "bmc/d24-overlap(retry)" (ms t_deep_cold) (ms t_warm) s_warm;
      if s_warm < 2.0 then begin
        Format.printf
          "serve gate FAILED: warm overlap only %.1fx over cold (< 2x)@."
          s_warm;
        exit 1
      end
    end;
    if journal_overhead_pct > 5.0 then begin
      (* two single batches; scheduler noise gets one retry too *)
      Format.printf "serve gate: journal overhead %+.1f%% > 5%%, re-measuring@."
        journal_overhead_pct;
      let pct = measure_overhead () in
      Format.printf "%-26s journal overhead %+.1f%% of the cold path@."
        "bmc/d60-journal(retry)" pct;
      if pct > 5.0 then begin
        Format.printf
          "serve gate FAILED: journal overhead %+.1f%% of the cold path \
           (> 5%%)@."
          pct;
        exit 1
      end
    end

(* ================================================================== *)

let experiments =
  [
    ("fig6", fig6);
    ("fig8", fig8);
    ("hd", hd);
    ("eq3", eq3);
    ("eq4", eq4);
    ("fig10", fig10);
    ("optimal", optimal);
    ("table1", table1);
    ("ablate", ablate);
    ("perf", perf);
    ("par", par);
    ("micro", micro);
    ("budget", budget_overhead);
    ("live", live_overhead);
    ("proof", proof_overhead);
    ("serve", serve_bench);
  ]

(* the proof-plane gate is opt-in: it reruns two solver-heavy loops
   three ways, so it only fires when named explicitly *)
let default_experiments =
  List.filter (fun (name, _) -> name <> "proof") experiments

let () =
  let rec split_baseline acc = function
    | [] -> (List.rev acc, None)
    | [ "--check-baseline" ] ->
      Format.printf "--check-baseline expects a file@.";
      exit 2
    | "--check-baseline" :: file :: rest -> (List.rev acc @ rest, Some file)
    | [ "--jobs" ] ->
      Format.printf "--jobs expects a positive integer@.";
      exit 2
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        par_jobs := n;
        split_baseline acc rest
      | _ ->
        Format.printf "--jobs expects a positive integer, got %s@." n;
        exit 2)
    | name :: rest -> split_baseline (name :: acc) rest
  in
  let names, baseline =
    split_baseline [] (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match (names, baseline) with
    | [], Some _ -> [] (* gate only: check_baseline runs perf itself *)
    | [], None -> List.map fst default_experiments
    | names, _ -> names
  in
  (match baseline with
  | Some path when List.mem "par" requested ->
    par_baseline := Some (read_json_file path)
  | _ -> ());
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Format.printf "unknown experiment %s; available: %s@." name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested;
  (* with `par` among the experiments the baseline gates the parallel
     suite; otherwise it gates the solver-perf suite as before *)
  Option.iter
    (fun path ->
      if List.mem "par" requested then check_par_baseline path
      else check_baseline path)
    baseline
