test/test_ogis.ml: Alcotest Format List Ogis Printf Prog Smt String
