test/test_smt.ml: Alcotest Array Format List Printf QCheck2 QCheck_alcotest Smt String
