test/test_microarch.ml: Alcotest Format List Microarch Printf Prog QCheck2 QCheck_alcotest Smt
