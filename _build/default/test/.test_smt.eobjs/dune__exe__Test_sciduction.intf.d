test/test_sciduction.mli:
