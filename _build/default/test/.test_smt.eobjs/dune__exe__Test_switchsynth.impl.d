test/test_switchsynth.ml: Alcotest Array Format Hybrid Lazy List Printf QCheck2 QCheck_alcotest Switchsynth
