test/test_lstar.mli:
