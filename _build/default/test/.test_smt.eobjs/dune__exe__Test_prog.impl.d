test/test_prog.ml: Alcotest Array List Printf Prog QCheck2 QCheck_alcotest Seq Smt
