test/test_invgen.ml: Alcotest Array Invgen List Printf QCheck2 QCheck_alcotest Random
