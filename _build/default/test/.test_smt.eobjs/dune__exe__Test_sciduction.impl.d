test/test_sciduction.ml: Alcotest Array Format List Ogis Prog Sciduction Smt String
