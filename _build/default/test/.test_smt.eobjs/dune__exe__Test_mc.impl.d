test/test_mc.ml: Alcotest Format List Mc Printf QCheck2 QCheck_alcotest
