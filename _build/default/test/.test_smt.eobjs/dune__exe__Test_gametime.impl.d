test/test_gametime.ml: Alcotest Array Format Gametime List Microarch Option Printf Prog QCheck2 QCheck_alcotest Seq String
