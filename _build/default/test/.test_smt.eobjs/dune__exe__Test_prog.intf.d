test/test_prog.mli:
