test/test_lstar.ml: Alcotest Format List Lstar Printf QCheck2 QCheck_alcotest String
