test/test_switchsynth.mli:
