test/test_ogis.mli:
