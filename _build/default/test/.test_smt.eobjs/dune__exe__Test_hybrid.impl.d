test/test_hybrid.ml: Alcotest Array Hybrid List Printf
