test/test_invgen.mli:
