test/test_gametime.mli:
