(* Tests for the hybrid-systems substrate: RK4 integration accuracy, the
   transmission model of Fig. 9, and mode-level simulation semantics. *)

module Ode = Hybrid.Ode
module Mds = Hybrid.Mds
module T = Hybrid.Transmission
module Simulate = Hybrid.Simulate

let close ?(eps = 1e-6) name expected got =
  if abs_float (expected -. got) > eps then
    Alcotest.failf "%s: expected %.9f got %.9f" name expected got

(* ------------------------------------------------------------------ *)
(* ODE                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rk4_exponential () =
  (* dx/dt = x, x(0) = 1: x(1) = e *)
  let flow y = [| y.(0) |] in
  let t, y =
    Ode.integrate flow ~dt:0.001 ~max_time:1.0 [| 1.0 |] ~stop:(fun ~t:_ _ ->
        false)
  in
  close "final time" ~eps:1e-9 1.0 t;
  close "e" ~eps:1e-6 (exp 1.0) y.(0)

let test_rk4_harmonic () =
  (* x'' = -x: energy x^2 + v^2 conserved *)
  let flow y = [| y.(1); -.y.(0) |] in
  let _, y =
    Ode.integrate flow ~dt:0.001 ~max_time:10.0 [| 1.0; 0.0 |]
      ~stop:(fun ~t:_ _ -> false)
  in
  close "energy" ~eps:1e-6 1.0 ((y.(0) *. y.(0)) +. (y.(1) *. y.(1)));
  close "x(10) = cos 10" ~eps:1e-5 (cos 10.0) y.(0)

let test_rk4_stop () =
  let flow y = [| y.(0) |] in
  let t, y =
    Ode.integrate flow ~dt:0.01 ~max_time:10.0 [| 1.0 |] ~stop:(fun ~t:_ y ->
        y.(0) >= 2.0)
  in
  Alcotest.(check bool) "stopped near ln 2" true (abs_float (t -. log 2.0) < 0.02);
  Alcotest.(check bool) "value >= 2" true (y.(0) >= 2.0)

let test_rk4_stop_at_zero () =
  (* stop is evaluated on the initial state *)
  let flow y = [| y.(0) |] in
  let t, _ =
    Ode.integrate flow ~dt:0.01 ~max_time:10.0 [| 5.0 |] ~stop:(fun ~t:_ y ->
        y.(0) >= 2.0)
  in
  close "stopped immediately" ~eps:1e-12 0.0 t

(* ------------------------------------------------------------------ *)
(* Transmission model                                                  *)
(* ------------------------------------------------------------------ *)

let test_eta_peaks () =
  for gear = 1 to 3 do
    close
      (Printf.sprintf "eta%d peak" gear)
      ~eps:1e-9 1.0
      (T.eta gear T.a.(gear - 1))
  done

let test_eta_threshold () =
  for gear = 1 to 3 do
    let lo, hi = T.eta_threshold gear in
    close (Printf.sprintf "eta%d(lo)" gear) ~eps:1e-9 0.5 (T.eta gear lo);
    close (Printf.sprintf "eta%d(hi)" gear) ~eps:1e-9 0.5 (T.eta gear hi);
    (* the Eq. 3 guard bounds are grid roundings of these thresholds *)
    close
      (Printf.sprintf "hi%d near paper value" gear)
      ~eps:0.01 hi
      (match gear with 1 -> 16.70 | 2 -> 26.70 | _ -> 36.70)
  done

let test_safety_predicate () =
  let g1u = Mds.mode_index T.system "G1U" in
  let n = Mds.mode_index T.system "N" in
  Alcotest.(check bool) "slow is safe" true (T.system.Mds.safe g1u [| 0.; 2. |]);
  Alcotest.(check bool) "peak is safe" true (T.system.Mds.safe g1u [| 0.; 10. |]);
  Alcotest.(check bool) "inefficient is unsafe" false
    (T.system.Mds.safe g1u [| 0.; 30. |]);
  Alcotest.(check bool) "negative speed unsafe" false
    (T.system.Mds.safe g1u [| 0.; -0.1 |]);
  Alcotest.(check bool) "overspeed unsafe" false
    (T.system.Mds.safe n [| 0.; 61. |]);
  Alcotest.(check bool) "neutral at any legal speed safe" true
    (T.system.Mds.safe n [| 0.; 59. |])

let test_topology () =
  Alcotest.(check int) "7 modes" 7 (Array.length T.system.Mds.modes);
  Alcotest.(check int) "12 transitions" 12 (Array.length T.system.Mds.transitions);
  let g2u = Mds.mode_index T.system "G2U" in
  let out = List.map (fun (t : Mds.transition) -> t.Mds.label) (Mds.outgoing T.system g2u) in
  Alcotest.(check (list string)) "G2U outgoing" [ "g22U"; "g23U" ] out;
  let inc = List.map (fun (t : Mds.transition) -> t.Mds.label) (Mds.incoming T.system g2u) in
  Alcotest.(check (list string)) "G2U incoming" [ "g12U"; "g22U" ] inc;
  Alcotest.check_raises "unknown mode"
    (Invalid_argument "Mds.mode_index: unknown mode G4U") (fun () ->
      ignore (Mds.mode_index T.system "G4U"))

(* ------------------------------------------------------------------ *)
(* Mode simulation                                                     *)
(* ------------------------------------------------------------------ *)

let g1u = Mds.mode_index T.system "G1U"

let interval lo hi y = lo <= y.(1) && y.(1) <= hi

let test_in_mode_exit () =
  match
    Simulate.in_mode T.system ~mode:g1u
      ~exits:[ ("g12U", interval 13.3 26.7) ]
      ~dt:0.01 ~max_time:200.0 [| 0.0; 0.0 |]
  with
  | Simulate.Exit (label, y, t) ->
    Alcotest.(check string) "exits via g12U" "g12U" label;
    Alcotest.(check bool) "speed at exit" true (abs_float (y.(1) -. 13.3) < 0.05);
    Alcotest.(check bool) "takes positive time" true (t > 1.0)
  | _ -> Alcotest.fail "expected exit"

let test_in_mode_unsafe_entry () =
  match
    Simulate.in_mode T.system ~mode:g1u
      ~exits:[ ("g12U", interval 13.3 26.7) ]
      ~dt:0.01 ~max_time:10.0 [| 0.0; 30.0 |]
  with
  | Simulate.Unsafe (_, t) -> close "unsafe at entry" ~eps:1e-12 0.0 t
  | _ -> Alcotest.fail "expected unsafe"

let test_in_mode_timeout () =
  match
    Simulate.in_mode T.system ~mode:(Mds.mode_index T.system "N")
      ~exits:[ ("gN1U", interval 50.0 60.0) ]
      ~dt:0.01 ~max_time:1.0 [| 0.0; 0.0 |]
  with
  | Simulate.Timeout _ -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_in_mode_dwell_delays_exit () =
  (* the guard is true immediately, but the dwell forbids exiting early *)
  match
    Simulate.in_mode T.system ~mode:g1u
      ~exits:[ ("g11U", interval 0.0 16.7) ]
      ~min_dwell:2.0 ~dt:0.01 ~max_time:10.0 [| 0.0; 1.0 |]
  with
  | Simulate.Exit (_, _, t) ->
    Alcotest.(check bool) "exit after dwell" true (t >= 2.0 -. 1e-9)
  | _ -> Alcotest.fail "expected exit"

let test_in_mode_exit_beats_unsafety () =
  (* decelerating through omega = 0: the point guard is crossed in the
     same step that omega would go negative; the exit must win *)
  let g1d = Mds.mode_index T.system "G1D" in
  match
    Simulate.in_mode T.system ~mode:g1d
      ~exits:
        [
          ( "g1ND",
            let prev = ref None in
            fun y ->
              let cur = y.(1) in
              let hit =
                match !prev with
                | None -> cur = 0.0
                | Some p -> (p >= 0.0 && cur <= 0.0) || cur = 0.0
              in
              prev := Some cur;
              hit );
        ]
      ~dt:0.01 ~max_time:100.0 [| 0.0; 5.0 |]
  with
  | Simulate.Exit (label, _, _) -> Alcotest.(check string) "g1ND" "g1ND" label
  | Simulate.Unsafe _ -> Alcotest.fail "unsafe should not precede the exit"
  | Simulate.Timeout _ -> Alcotest.fail "timeout"

let test_run_policy_plan_mismatch () =
  Alcotest.check_raises "bad plan"
    (Invalid_argument "Simulate.run_policy: g23U does not leave mode G1U")
    (fun () ->
      ignore
        (Simulate.run_policy T.system
           ~guard:(fun _ _ -> true)
           ~plan:[ "gN1U"; "g23U" ] ~dt:0.01 ~max_time:1.0 [| 0.0; 0.0 |]))

let () =
  Alcotest.run "hybrid"
    [
      ( "ode",
        [
          Alcotest.test_case "exponential growth" `Quick test_rk4_exponential;
          Alcotest.test_case "harmonic oscillator" `Quick test_rk4_harmonic;
          Alcotest.test_case "stop condition" `Quick test_rk4_stop;
          Alcotest.test_case "stop at t=0" `Quick test_rk4_stop_at_zero;
        ] );
      ( "transmission",
        [
          Alcotest.test_case "efficiency peaks at a_i" `Quick test_eta_peaks;
          Alcotest.test_case "eta threshold = Eq.3 bounds" `Quick
            test_eta_threshold;
          Alcotest.test_case "safety predicate" `Quick test_safety_predicate;
          Alcotest.test_case "topology of Fig. 9" `Quick test_topology;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "exit via guard" `Quick test_in_mode_exit;
          Alcotest.test_case "unsafe entry" `Quick test_in_mode_unsafe_entry;
          Alcotest.test_case "timeout" `Quick test_in_mode_timeout;
          Alcotest.test_case "dwell delays exit" `Quick
            test_in_mode_dwell_delays_exit;
          Alcotest.test_case "exit beats unsafety in one step" `Quick
            test_in_mode_exit_beats_unsafety;
          Alcotest.test_case "policy plan mismatch" `Quick
            test_run_policy_plan_mismatch;
        ] );
    ]
