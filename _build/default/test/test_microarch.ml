(* Tests for the microarchitecture substrate. The central property is
   differential: running a compiled program on the cycle-accurate machine
   computes the same outputs as the reference interpreter. Timing tests
   check the properties GameTime relies on: determinism and genuine
   path-dependence. *)

module Bv = Smt.Bv
module Lang = Prog.Lang
module Interp = Prog.Interp
module B = Prog.Benchmarks
module Compile = Microarch.Compile
module Machine = Microarch.Machine
module Platform = Microarch.Platform
module Cache = Microarch.Cache

let compiled_outputs p inputs =
  (Machine.run (Compile.compile p) inputs).Machine.outputs

let check_against_interp name p inputs =
  Alcotest.(check (list (pair string int)))
    name (Interp.run p inputs) (compiled_outputs p inputs)

(* ------------------------------------------------------------------ *)
(* Functional correctness                                              *)
(* ------------------------------------------------------------------ *)

let test_compile_toy () =
  check_against_interp "toy flag=0" B.toy [ ("flag", 0); ("x", 7) ];
  check_against_interp "toy flag=1" B.toy [ ("flag", 1); ("x", 7) ]

let test_compile_modexp () =
  List.iter
    (fun (base, exp) ->
      check_against_interp
        (Printf.sprintf "modexp %d^%d" base exp)
        (B.modexp ())
        [ ("base", base); ("exp", exp) ])
    [ (2, 0); (2, 255); (7, 77); (251, 128); (123, 200) ]

let test_compile_fig8 () =
  List.iter
    (fun y -> check_against_interp "multiply45Obs" B.multiply45_obs [ ("y", y) ])
    [ 0; 3; 999; 65535 ];
  List.iter
    (fun (s, d) ->
      check_against_interp "interchangeObs" B.interchange_obs
        [ ("src", s); ("dest", d) ])
    [ (0, 0); (5, 9); (65535, 1) ]

let prop_compiled_matches_interp =
  QCheck2.Test.make ~name:"compiled modexp = interpreted modexp" ~count:100
    ~print:(fun (b, e) -> Printf.sprintf "base=%d exp=%d" b e)
    QCheck2.Gen.(pair (int_range 0 65535) (int_range 0 255))
    (fun (base, exp) ->
      let inputs = [ ("base", base); ("exp", exp) ] in
      Interp.run (B.modexp ()) inputs = compiled_outputs (B.modexp ()) inputs)

(* random structured programs: the strongest differential test of the
   compiler + machine against the reference interpreter *)
let gen_program =
  QCheck2.Gen.(
    let width = 8 in
    let var_names = [ "a"; "b"; "x"; "y" ] in
    let gen_var = oneofl var_names in
    let gen_expr =
      sized_size (int_range 0 2) @@ fix (fun self n ->
          if n = 0 then
            oneof
              [
                (let* v = int_range 0 255 in
                 return (Smt.Bv.const ~width v));
                (let* x = gen_var in
                 return (Smt.Bv.var ~width x));
              ]
          else
            let sub = self (n / 2) in
            let* a = sub and* b = sub in
            let* op =
              oneofl
                Smt.Bv.[ badd; bsub; bmul; band; bor; bxor; bshl; blshr; burem ]
            in
            return (op a b))
    in
    let gen_cond =
      let* a = gen_expr and* b = gen_expr in
      let* op = oneofl Smt.Bv.[ eq; ult; ule; neq ] in
      return (op a b)
    in
    let rec gen_stmts depth budget =
      if budget = 0 then return []
      else
        let* stmt =
          if depth = 0 then
            let* x = gen_var and* e = gen_expr in
            return (Lang.Assign (x, e))
          else
            frequency
              [
                ( 3,
                  let* x = gen_var and* e = gen_expr in
                  return (Lang.Assign (x, e)) );
                ( 1,
                  let* c = gen_cond in
                  let* t = gen_stmts (depth - 1) 2 and* f = gen_stmts (depth - 1) 2 in
                  return (Lang.If (c, t, f)) );
                ( 1,
                  (* a bounded counting loop; the counter is private to
                     this nesting depth so nested loops cannot clobber
                     each other's counters *)
                  let* k = int_range 1 3 in
                  let* body = gen_stmts (depth - 1) 2 in
                  let iv = Printf.sprintf "i%d" depth in
                  let i = Smt.Bv.var ~width iv in
                  return
                    (Lang.If
                       ( Smt.Bv.tru,
                         [
                           Lang.Assign (iv, Smt.Bv.const ~width 0);
                           Lang.While
                             ( Smt.Bv.ult i (Smt.Bv.const ~width k),
                               body
                               @ [
                                   Lang.Assign
                                     (iv, Smt.Bv.badd i (Smt.Bv.const ~width 1));
                                 ] );
                         ],
                         [] )) );
              ]
        in
        let* rest = gen_stmts depth (budget - 1) in
        return (stmt :: rest)
    in
    let* body = gen_stmts 2 4 in
    let* inputs = return [ "a"; "b" ] in
    return
      (Lang.make ~name:"rand" ~width ~inputs ~outputs:var_names body))

let print_program p = Format.asprintf "%a" Prog.Lang.pp p

let prop_random_programs_compile_correctly =
  QCheck2.Test.make ~name:"random programs: machine = interpreter" ~count:150
    ~print:(fun (p, a, b) -> Printf.sprintf "%s with a=%d b=%d" (print_program p) a b)
    QCheck2.Gen.(triple gen_program (int_range 0 255) (int_range 0 255))
    (fun (p, a, b) ->
      let inputs = [ ("a", a); ("b", b) ] in
      Interp.run p inputs = compiled_outputs p inputs)

let prop_compiled_ite =
  (* Bv.ite compiles through branches; exercise it directly *)
  let p =
    Lang.make ~name:"ite" ~width:16 ~inputs:[ "x" ] ~outputs:[ "r" ]
      [
        Lang.Assign
          ( "r",
            Bv.ite
              (Bv.ult (Bv.var ~width:16 "x") (Bv.const ~width:16 100))
              (Bv.badd (Bv.var ~width:16 "x") (Bv.const ~width:16 1))
              (Bv.bsub (Bv.var ~width:16 "x") (Bv.const ~width:16 1)) );
      ]
  in
  QCheck2.Test.make ~name:"compiled ite = interpreted ite" ~count:100
    ~print:string_of_int
    QCheck2.Gen.(int_range 0 65535)
    (fun x ->
      Interp.run p [ ("x", x) ] = compiled_outputs p [ ("x", x) ])

let test_trap_on_failed_assume () =
  let p =
    Lang.make ~name:"assume_false" ~width:8 ~inputs:[ "x" ] ~outputs:[]
      [ Lang.Assume (Bv.eq (Bv.var ~width:8 "x") (Bv.const ~width:8 0)) ]
  in
  let c = Compile.compile p in
  ignore (Machine.run c [ ("x", 0) ]);
  Alcotest.check_raises "trap" Machine.Trap_executed (fun () ->
      ignore (Machine.run c [ ("x", 1) ]))

let test_fuel () =
  let p =
    Lang.make ~name:"spin" ~width:8 ~inputs:[] ~outputs:[]
      [ Lang.While (Bv.tru, []) ]
  in
  Alcotest.check_raises "fuel" Machine.Out_of_fuel (fun () ->
      ignore (Machine.run ~fuel:100 (Compile.compile p) []))

(* ------------------------------------------------------------------ *)
(* Timing behaviour                                                    *)
(* ------------------------------------------------------------------ *)

let test_timing_deterministic () =
  let pf = Platform.create (B.modexp ()) in
  let inputs = [ ("base", 123); ("exp", 77) ] in
  Alcotest.(check int)
    "same input, same cycles"
    (Platform.time pf inputs) (Platform.time pf inputs)

let test_timing_path_dependent () =
  let pf = Platform.create (B.modexp ()) in
  let t0 = Platform.time pf [ ("base", 123); ("exp", 0) ] in
  let t255 = Platform.time pf [ ("base", 123); ("exp", 255) ] in
  Alcotest.(check bool)
    (Printf.sprintf "exp=255 (%d cy) slower than exp=0 (%d cy)" t255 t0)
    true (t255 > t0)

let test_timing_monotone_in_popcount () =
  (* more set exponent bits => more multiply work; spot-check a chain *)
  let pf = Platform.create (B.modexp ()) in
  let time exp = Platform.time pf [ ("base", 200); ("exp", exp) ] in
  let t1 = time 1 and t3 = time 3 and t15 = time 15 in
  Alcotest.(check bool) "1 bit < 2 bits" true (t1 < t3);
  Alcotest.(check bool) "2 bits < 4 bits" true (t3 < t15)

let test_mul_early_termination () =
  (* multiplying by a small constant is faster than by a large one *)
  let make name k =
    Lang.make ~name ~width:16 ~inputs:[ "x" ] ~outputs:[ "r" ]
      [
        Lang.Assign
          ("r", Bv.bmul (Bv.var ~width:16 "x") (Bv.const ~width:16 k));
      ]
  in
  let t_small = Platform.time (Platform.create (make "mul_small" 1)) [ ("x", 3) ] in
  let t_large =
    Platform.time (Platform.create (make "mul_large" 0xFFFF)) [ ("x", 3) ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "small multiplier (%d cy) < large (%d cy)" t_small t_large)
    true (t_small < t_large)

let test_noisy_platform () =
  let pf = Platform.create ~noise_seed:42 (B.modexp ~bits:4 ()) in
  let inputs = [ ("base", 200); ("exp", 11) ] in
  let times = List.init 30 (fun _ -> Platform.time pf inputs) in
  let distinct = List.sort_uniq compare times in
  Alcotest.(check bool) "noise produces varying timings" true
    (List.length distinct > 1);
  (* functional behaviour is unaffected by cache noise *)
  let r = Platform.run pf inputs in
  Alcotest.(check (list (pair string int)))
    "outputs unaffected"
    (Interp.run (B.modexp ~bits:4 ()) inputs)
    r.Machine.outputs

let test_cold_cache_misses () =
  let pf = Platform.create (B.modexp ()) in
  let r = Platform.run pf [ ("base", 5); ("exp", 170) ] in
  Alcotest.(check bool)
    "cold start has icache misses" true
    (r.Machine.stats.Machine.icache_misses > 0);
  Alcotest.(check bool)
    "loop brings icache hits" true
    (r.Machine.stats.Machine.icache_hits > r.Machine.stats.Machine.icache_misses)

let test_branch_prediction () =
  let inputs = [ ("base", 123); ("exp", 170) ] in
  let time predictor =
    Platform.time (Platform.create ~predictor (B.modexp ())) inputs
  in
  let t_static = time Machine.Static_not_taken in
  let t_backward = time Machine.Backward_taken in
  let t_bimodal = time (Machine.Bimodal 64) in
  Alcotest.(check bool)
    (Printf.sprintf "loop prediction helps (static %d, backward %d, bimodal %d)"
       t_static t_backward t_bimodal)
    true
    (t_backward < t_static && t_bimodal < t_static);
  (* functional behaviour is independent of the predictor *)
  List.iter
    (fun predictor ->
      Alcotest.(check (list (pair string int)))
        "outputs unchanged"
        (Interp.run (B.modexp ()) inputs)
        (Platform.run (Platform.create ~predictor (B.modexp ())) inputs)
          .Machine.outputs)
    [ Machine.Static_not_taken; Machine.Backward_taken; Machine.Bimodal 16 ]

let test_bimodal_counts_mispredictions () =
  let pf = Platform.create ~predictor:(Machine.Bimodal 64) (B.modexp ()) in
  let r = Platform.run pf [ ("base", 7); ("exp", 255) ] in
  Alcotest.(check bool) "some mispredictions while warming up" true
    (r.Machine.stats.Machine.mispredictions > 0);
  Alcotest.(check bool) "far fewer than branches executed" true
    (r.Machine.stats.Machine.mispredictions * 4
    < r.Machine.stats.Machine.instructions)

let test_bimodal_size_validated () =
  let c = Compile.compile B.toy in
  Alcotest.check_raises "power of two"
    (Invalid_argument "Machine.run: bimodal table size must be a power of two")
    (fun () ->
      ignore (Machine.run ~predictor:(Machine.Bimodal 5) c [ ("flag", 1) ]))

let test_cache_direct_mapped () =
  let c = Cache.create { Cache.lines = 2; line_bytes = 4; miss_penalty = 10 } in
  Alcotest.(check int) "first access misses" 10 (Cache.access c 0);
  Alcotest.(check int) "same line hits" 0 (Cache.access c 3);
  Alcotest.(check int) "other line misses" 10 (Cache.access c 4);
  Alcotest.(check int) "conflicting line evicts" 10 (Cache.access c 8);
  Alcotest.(check int) "original was evicted" 10 (Cache.access c 0);
  Alcotest.(check int) "hits counted" 1 (Cache.hits c);
  Alcotest.(check int) "misses counted" 4 (Cache.misses c)

let test_cache_reset () =
  let c = Cache.create { Cache.lines = 2; line_bytes = 4; miss_penalty = 7 } in
  ignore (Cache.access c 0);
  Cache.reset c;
  Alcotest.(check int) "miss again after reset" 7 (Cache.access c 0);
  Alcotest.(check int) "stats cleared" 1 (Cache.misses c)

let test_register_pressure () =
  (* build a deliberately deep right-leaning expression *)
  let rec deep n =
    if n = 0 then Bv.var ~width:16 "x"
    else Bv.badd (Bv.const ~width:16 1) (deep (n - 1))
  in
  let p =
    Lang.make ~name:"deep" ~width:16 ~inputs:[ "x" ] ~outputs:[ "r" ]
      [ Lang.Assign ("r", deep 20) ]
  in
  Alcotest.check_raises "register pressure" Compile.Register_pressure (fun () ->
      ignore (Compile.compile p))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "microarch"
    [
      ( "compile",
        [
          Alcotest.test_case "toy" `Quick test_compile_toy;
          Alcotest.test_case "modexp" `Quick test_compile_modexp;
          Alcotest.test_case "fig8 programs" `Quick test_compile_fig8;
          Alcotest.test_case "assume traps" `Quick test_trap_on_failed_assume;
          Alcotest.test_case "fuel bound" `Quick test_fuel;
          Alcotest.test_case "register pressure detected" `Quick
            test_register_pressure;
        ] );
      ( "compile-qcheck",
        qsuite
          [
            prop_compiled_matches_interp;
            prop_compiled_ite;
            prop_random_programs_compile_correctly;
          ] );
      ( "timing",
        [
          Alcotest.test_case "deterministic" `Quick test_timing_deterministic;
          Alcotest.test_case "path dependent" `Quick test_timing_path_dependent;
          Alcotest.test_case "monotone in exponent popcount" `Quick
            test_timing_monotone_in_popcount;
          Alcotest.test_case "early-termination multiplier" `Quick
            test_mul_early_termination;
          Alcotest.test_case "cold cache misses" `Quick test_cold_cache_misses;
          Alcotest.test_case "noisy environment varies timing" `Quick
            test_noisy_platform;
          Alcotest.test_case "branch prediction reduces cycles" `Quick
            test_branch_prediction;
          Alcotest.test_case "bimodal misprediction accounting" `Quick
            test_bimodal_counts_mispredictions;
          Alcotest.test_case "bimodal size validated" `Quick
            test_bimodal_size_validated;
        ] );
      ( "cache",
        [
          Alcotest.test_case "direct mapped behaviour" `Quick
            test_cache_direct_mapped;
          Alcotest.test_case "reset" `Quick test_cache_reset;
        ] );
    ]
